# Configure-time proof that Clang Thread Safety Analysis actually fires on
# the capability annotations in src/common/annotated_mutex.h. Only
# included when WNRS_THREAD_SAFETY is ON under Clang.
#
# Each seeded-violation snippet in tests/thread_safety/ is compiled twice:
#
#   1. control — analysis warnings NOT promoted to errors. The snippet
#      must COMPILE, proving it is valid C++; without this leg a snippet
#      broken by an unrelated syntax error would count as "rejected"
#      although the analysis never fired.
#   2. enforce — -Werror=thread-safety(-beta). The snippet must FAIL,
#      proving the rejection comes from the analysis itself.
#
# ok_locking.cc is the positive control: correct locking through every
# wrapper (MutexLock, ReaderLock, ReleasableLock, the CondVar wait loop,
# REQUIRES helpers) must stay clean under full enforcement — guarding
# against over-broad annotations that would reject the real tree.

set(WNRS_TS_SNIPPET_DIR ${CMAKE_SOURCE_DIR}/tests/thread_safety)
set(WNRS_TS_BASE_FLAGS "-Wthread-safety -Wthread-safety-beta")
set(WNRS_TS_ERROR_FLAGS
    "${WNRS_TS_BASE_FLAGS} -Werror=thread-safety -Werror=thread-safety-beta")

function(wnrs_thread_safety_try_compile snippet flags result_var log_var)
  try_compile(_wnrs_ts_ok ${CMAKE_BINARY_DIR}/thread_safety_check
    SOURCES ${WNRS_TS_SNIPPET_DIR}/${snippet}
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src"
      "-DCMAKE_CXX_FLAGS=${flags}"
    LINK_LIBRARIES Threads::Threads
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _wnrs_ts_log)
  set(${result_var} ${_wnrs_ts_ok} PARENT_SCOPE)
  set(${log_var} "${_wnrs_ts_log}" PARENT_SCOPE)
endfunction()

# One entry per seeded violation; keep in sync with tests/thread_safety/
# (DESIGN.md §16 documents what each one seeds).
set(WNRS_TS_VIOLATIONS
    unguarded_read.cc
    missing_requires.cc
    double_acquire.cc
    missing_release.cc
    excludes_violation.cc)

foreach(snippet IN LISTS WNRS_TS_VIOLATIONS)
  wnrs_thread_safety_try_compile(${snippet} "${WNRS_TS_BASE_FLAGS}"
                                 control_ok control_log)
  if(NOT control_ok)
    message(FATAL_ERROR
            "Thread-safety harness: control build of ${snippet} failed — the "
            "snippet is not valid C++, so its rejection would prove nothing.\n"
            "${control_log}")
  endif()
  wnrs_thread_safety_try_compile(${snippet} "${WNRS_TS_ERROR_FLAGS}"
                                 enforce_ok enforce_log)
  if(enforce_ok)
    message(FATAL_ERROR
            "Thread-safety harness: the analysis failed to reject ${snippet} "
            "— a seeded locking violation compiled clean under "
            "-Werror=thread-safety. The annotations in annotated_mutex.h "
            "have lost their teeth.")
  endif()
  message(STATUS "Thread-safety harness: ${snippet} rejected as expected")
endforeach()

wnrs_thread_safety_try_compile(ok_locking.cc "${WNRS_TS_ERROR_FLAGS}"
                               positive_ok positive_log)
if(NOT positive_ok)
  message(FATAL_ERROR
          "Thread-safety harness: ok_locking.cc (correct locking through "
          "every wrapper) was rejected — the annotations are over-broad.\n"
          "${positive_log}")
endif()
message(STATUS "Thread-safety harness: ok_locking.cc compiles clean")
