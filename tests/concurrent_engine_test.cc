// Concurrency tests for the snapshot-isolated engine core: many external
// threads querying one engine (through the facade and through explicit
// EngineSnapshot sessions) must produce results bit-identical to the
// serial run, including while mutations publish new snapshots. These
// tests are part of the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "data/generators.h"

namespace wnrs {
namespace {

constexpr size_t kThreads = 8;

enum class TaskKind {
  kReverseSkyline,
  kSafeRegion,
  kModifyWhyNot,
  kModifyBoth,
};

struct Task {
  TaskKind kind;
  size_t c = 0;
  Point q;
};

/// Canonical, exact string form of a task's answer, so serial and
/// concurrent runs can be compared for bit-identity regardless of the
/// result type.
std::string Canonical(const EngineSnapshot& snapshot, const Task& task) {
  std::string out;
  switch (task.kind) {
    case TaskKind::kReverseSkyline: {
      for (size_t c : snapshot.ReverseSkyline(task.q)) {
        out += StrFormat("%zu,", c);
      }
      return "rsl:" + out;
    }
    case TaskKind::kSafeRegion: {
      const std::shared_ptr<const SafeRegionResult> sr =
          snapshot.SafeRegion(task.q);
      out = StrFormat("sr:%zu:%d:", sr->customers_processed,
                      sr->truncated ? 1 : 0);
      for (const Rectangle& r : sr->region.rects()) {
        for (size_t i = 0; i < r.dims(); ++i) {
          out += StrFormat("%.17g,%.17g;", r.lo()[i], r.hi()[i]);
        }
      }
      return out;
    }
    case TaskKind::kModifyWhyNot: {
      const MwpResult r = snapshot.ModifyWhyNot(task.c, task.q);
      out = StrFormat("mwp:%d:", r.already_member ? 1 : 0);
      for (const Candidate& cand : r.candidates) {
        out += StrFormat("%.17g@", cand.cost);
        for (size_t i = 0; i < cand.point.dims(); ++i) {
          out += StrFormat("%.17g,", cand.point[i]);
        }
        out += ";";
      }
      return out;
    }
    case TaskKind::kModifyBoth: {
      const MwqResult r = snapshot.ModifyBoth(task.c, task.q);
      out = StrFormat("mwq:%d:%d:%.17g:", r.already_member ? 1 : 0,
                      r.overlap ? 1 : 0, r.best_cost);
      for (const Candidate& cand : r.query_candidates) {
        out += StrFormat("%.17g;", cand.cost);
      }
      out += ":";
      for (const Candidate& cand : r.why_not_candidates) {
        out += StrFormat("%.17g;", cand.cost);
      }
      return out;
    }
  }
  return out;
}

std::vector<Task> MakeTasks(const WhyNotEngine& engine, size_t num_queries,
                            size_t repeats) {
  const std::vector<Point>& pts = engine.products().points;
  std::vector<Task> tasks;
  for (size_t rep = 0; rep < repeats; ++rep) {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const Point& q = pts[qi];
      const size_t c = (qi + 7) % pts.size();
      tasks.push_back({TaskKind::kReverseSkyline, 0, q});
      tasks.push_back({TaskKind::kSafeRegion, 0, q});
      tasks.push_back({TaskKind::kModifyWhyNot, c, q});
      tasks.push_back({TaskKind::kModifyBoth, c, q});
    }
  }
  return tasks;
}

// >= 8 external threads, mixed request kinds, half through the facade's
// Snapshot() per thread and half through a shared snapshot: every answer
// must equal the serial one.
TEST(ConcurrentEngineTest, EightThreadsMixedKindsMatchSerial) {
  WhyNotEngine engine(GenerateCarDb(250, 5));
  const std::vector<Task> tasks = MakeTasks(engine, 5, 3);

  std::vector<std::string> expected(tasks.size());
  const EngineSnapshot serial = engine.Snapshot();
  for (size_t i = 0; i < tasks.size(); ++i) {
    expected[i] = Canonical(serial, tasks[i]);
  }

  std::vector<std::string> got(tasks.size());
  const EngineSnapshot shared = engine.Snapshot();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Odd threads pin their own session; even threads share one.
      const EngineSnapshot own = engine.Snapshot();
      const EngineSnapshot& snapshot = (t % 2 == 0) ? shared : own;
      for (size_t i = t; i < tasks.size(); i += kThreads) {
        got[i] = Canonical(snapshot, tasks[i]);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "task " << i;
  }
}

// The reference-returning facade is itself safe for concurrent callers
// (synchronized caches and stats): hammer it from 8 threads and compare
// against serial answers.
TEST(ConcurrentEngineTest, ConcurrentFacadeCallsMatchSerial) {
  WhyNotEngine engine(GenerateCarDb(200, 9));
  const std::vector<Task> tasks = MakeTasks(engine, 4, 2);

  std::vector<std::string> expected(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    expected[i] = Canonical(engine.Snapshot(), tasks[i]);
  }
  engine.ResetStats();

  std::vector<std::string> got(tasks.size());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < tasks.size(); i += kThreads) {
        // Exercise the facade paths (stats scopes, legacy SafeRegion
        // reference anchoring) rather than an explicit snapshot.
        switch (tasks[i].kind) {
          case TaskKind::kReverseSkyline:
            // wnrs-lint: allow-discard(races the call, not the answer)
            (void)engine.ReverseSkyline(tasks[i].q);
            break;
          case TaskKind::kSafeRegion:
            // wnrs-lint: allow-discard(races the call, not the answer)
            (void)engine.SafeRegion(tasks[i].q).region.Contains(tasks[i].q);
            break;
          case TaskKind::kModifyWhyNot:
            // wnrs-lint: allow-discard(races the call, not the answer)
            (void)engine.ModifyWhyNot(tasks[i].c, tasks[i].q);
            break;
          case TaskKind::kModifyBoth:
            // wnrs-lint: allow-discard(races the call, not the answer)
            (void)engine.ModifyBoth(tasks[i].c, tasks[i].q);
            break;
        }
        got[i] = Canonical(engine.Snapshot(), tasks[i]);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "task " << i;
  }
  // Cumulative stats attributed every outermost call.
  EXPECT_GT(engine.stats().engine_queries, 0u);
}

// A snapshot taken before a mutation answers against the old market state
// no matter what the engine does afterwards.
TEST(ConcurrentEngineTest, SnapshotIsolatedFromMutations) {
  WhyNotEngine engine(GenerateCarDb(150, 3));
  const Point q = engine.products().points[0];
  const EngineSnapshot before = engine.Snapshot();
  const std::vector<size_t> rsl_before = before.ReverseSkyline(q);
  const size_t products_before = before.products().size();

  // Mutate: add a clone of q (a new dominating product) and remove an
  // existing one.
  const size_t new_id = engine.AddProduct(q);
  ASSERT_TRUE(engine.RemoveProduct(1));

  // The old snapshot is frozen...
  EXPECT_EQ(before.products().size(), products_before);
  EXPECT_EQ(before.ReverseSkyline(q), rsl_before);
  EXPECT_FALSE(before.IsLiveProduct(new_id));
  EXPECT_TRUE(before.IsLiveProduct(1));

  // ...while the engine (and any new snapshot) sees the new state.
  const EngineSnapshot after = engine.Snapshot();
  EXPECT_EQ(after.products().size(), products_before + 1);
  EXPECT_TRUE(after.IsLiveProduct(new_id));
  EXPECT_FALSE(after.IsLiveProduct(1));
  EXPECT_EQ(after.ReverseSkyline(q), engine.ReverseSkyline(q));
}

// A session may outlive the engine that issued it: the snapshot pins the
// core (datasets, tree, thread pool) it was created over.
TEST(ConcurrentEngineTest, SnapshotOutlivesEngine) {
  auto engine = std::make_unique<WhyNotEngine>(GenerateCarDb(120, 4));
  const Point q = engine->products().points[2];
  const std::vector<size_t> expected = engine->ReverseSkyline(q);
  EngineSnapshot snapshot = engine->Snapshot();
  engine.reset();
  EXPECT_EQ(snapshot.ReverseSkyline(q), expected);
  EXPECT_FALSE(snapshot.ModifyBoth(5, q).query_candidates.empty());
}

// Readers holding snapshots race a mutator publishing new cores: every
// snapshot must stay self-consistent (identical answers when re-asked),
// and the final engine state must equal the same mutations run serially.
TEST(ConcurrentEngineTest, ConcurrentReadersWithMutationPublishing) {
  WhyNotEngine engine(GenerateCarDb(150, 11));
  const std::vector<Point> queries(engine.products().points.begin(),
                                   engine.products().points.begin() + 4);
  constexpr size_t kMutations = 6;

  std::atomic<bool> stop{false};
  std::atomic<size_t> inconsistencies{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      size_t iter = 0;
      while (!stop.load(std::memory_order_relaxed) || iter == 0) {
        const EngineSnapshot snapshot = engine.Snapshot();
        const Point& q = queries[(t + iter) % queries.size()];
        const std::vector<size_t> first = snapshot.ReverseSkyline(q);
        const MwqResult mwq = snapshot.ModifyBoth(t % 50, q);
        const std::vector<size_t> second = snapshot.ReverseSkyline(q);
        if (first != second || mwq.query_candidates.empty()) {
          inconsistencies.fetch_add(1, std::memory_order_relaxed);
        }
        ++iter;
      }
    });
  }

  // Mutator: interleaved inserts and removes, each publishing a snapshot.
  std::vector<Point> added;
  for (size_t m = 0; m < kMutations; ++m) {
    Point p = queries[m % queries.size()];
    p[0] += 1.0 + static_cast<double>(m);
    added.push_back(p);
    const size_t id = engine.AddProduct(p);
    if (m % 2 == 1) {
      EXPECT_TRUE(engine.RemoveProduct(id));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(inconsistencies.load(), 0u);

  // The concurrent run must land on the exact serial end state.
  WhyNotEngine serial(GenerateCarDb(150, 11));
  for (size_t m = 0; m < kMutations; ++m) {
    const size_t id = serial.AddProduct(added[m]);
    if (m % 2 == 1) {
      EXPECT_TRUE(serial.RemoveProduct(id));
    }
  }
  ASSERT_EQ(engine.products().size(), serial.products().size());
  for (const Point& q : queries) {
    EXPECT_EQ(engine.ReverseSkyline(q), serial.ReverseSkyline(q));
  }
  EXPECT_TRUE(engine.product_tree().CheckInvariants().ok());
}

// Concurrent mutations serialize against each other; ids stay unique and
// the tree invariants hold.
TEST(ConcurrentEngineTest, ConcurrentMutationsSerialize) {
  WhyNotEngine engine(GenerateCarDb(100, 13));
  const size_t before = engine.products().size();
  constexpr size_t kPerThread = 4;
  std::vector<std::vector<size_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        Point p = engine.Snapshot().products().points[t];
        p[1] += static_cast<double>(t * kPerThread + i + 1);
        ids[t].push_back(engine.AddProduct(p));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<size_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), kThreads * kPerThread);
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate product id assigned";
  EXPECT_EQ(engine.products().size(), before + kThreads * kPerThread);
  EXPECT_TRUE(engine.product_tree().CheckInvariants().ok());
}

}  // namespace
}  // namespace wnrs
