#include "core/explain.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/dominance.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

TEST(ExplainTest, MemberHasNothingToExplain) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const WhyNotExplanation ex =
      ExplainWhyNot(tree, ds.points, ds.points[1], PaperExampleQuery(), 1);
  EXPECT_TRUE(ex.already_member);
  EXPECT_TRUE(ex.culprits.empty());
  EXPECT_TRUE(ex.frontier.empty());
}

TEST(ExplainTest, PaperExampleCulprit) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const WhyNotExplanation ex =
      ExplainWhyNot(tree, ds.points, ds.points[0], PaperExampleQuery(), 0);
  EXPECT_FALSE(ex.already_member);
  EXPECT_EQ(ex.culprits, (std::vector<RStarTree::Id>{1}));
  EXPECT_EQ(ex.frontier, (std::vector<RStarTree::Id>{1}));
}

TEST(ExplainTest, FrontierIsTheQSideSkylineOfCulprits) {
  const Dataset ds = GenerateCarDb(800, 71);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(72);
  int exercised = 0;
  for (int trial = 0; trial < 40 && exercised < 15; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    const WhyNotExplanation ex = ExplainWhyNot(
        tree, ds.points, ds.points[c_idx], q,
        static_cast<RStarTree::Id>(c_idx));
    if (ex.already_member) continue;
    ++exercised;
    ASSERT_FALSE(ex.culprits.empty());
    ASSERT_FALSE(ex.frontier.empty());
    // Every frontier member is a culprit.
    for (RStarTree::Id f : ex.frontier) {
      EXPECT_TRUE(std::find(ex.culprits.begin(), ex.culprits.end(), f) !=
                  ex.culprits.end());
    }
    // No culprit dynamically dominates a frontier member w.r.t. q, and
    // every non-frontier culprit is dominated by someone.
    for (RStarTree::Id f : ex.frontier) {
      for (RStarTree::Id e : ex.culprits) {
        if (e == f) continue;
        EXPECT_FALSE(DynamicallyDominates(
            ds.points[static_cast<size_t>(e)],
            ds.points[static_cast<size_t>(f)], q))
            << "frontier id " << f << " dominated by culprit " << e;
      }
    }
    for (RStarTree::Id e : ex.culprits) {
      if (std::find(ex.frontier.begin(), ex.frontier.end(), e) !=
          ex.frontier.end()) {
        continue;
      }
      bool dominated = false;
      for (RStarTree::Id o : ex.culprits) {
        if (o != e && DynamicallyDominates(
                          ds.points[static_cast<size_t>(o)],
                          ds.points[static_cast<size_t>(e)], q)) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "non-frontier culprit " << e
                             << " not dominated";
    }
  }
  EXPECT_GE(exercised, 5);
}

TEST(ExplainTest, DeletingCulpritsAdmitsTheCustomer) {
  // Lemma 1: removing Λ from P puts c_t into RSL(q).
  const Dataset ds = GenerateCarDb(300, 73);
  Rng rng(74);
  int exercised = 0;
  for (int trial = 0; trial < 20 && exercised < 5; ++trial) {
    RStarTree tree = BulkLoadPoints(2, ds.points);
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    const WhyNotExplanation ex = ExplainWhyNot(
        tree, ds.points, ds.points[c_idx], q,
        static_cast<RStarTree::Id>(c_idx));
    if (ex.already_member || ex.culprits.size() > 200) continue;
    ++exercised;
    for (RStarTree::Id id : ex.culprits) {
      ASSERT_TRUE(tree.Delete(
          Rectangle::FromPoint(ds.points[static_cast<size_t>(id)]), id));
    }
    EXPECT_TRUE(WindowEmpty(tree, ds.points[c_idx], q,
                            static_cast<RStarTree::Id>(c_idx)));
  }
  EXPECT_GE(exercised, 3);
}

}  // namespace
}  // namespace wnrs
