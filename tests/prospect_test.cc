#include "core/prospect.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"

namespace wnrs {
namespace {

TEST(ProspectTest, PaperExampleRanksNonMembers) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  ProspectOptions options;
  options.max_prospects = 10;
  const std::vector<Prospect> prospects = RankProspects(engine, q, options);
  // Non-members are c1, c5, c7; all should be ranked.
  ASSERT_EQ(prospects.size(), 3u);
  std::vector<size_t> who;
  for (const Prospect& p : prospects) who.push_back(p.customer);
  std::sort(who.begin(), who.end());
  EXPECT_EQ(who, (std::vector<size_t>{0, 4, 6}));
  // c7 is the free win (case C1 of the paper's MWQ example).
  for (const Prospect& p : prospects) {
    if (p.customer == 6) {
      EXPECT_TRUE(p.free_win);
      EXPECT_EQ(p.cost, 0.0);
      EXPECT_FALSE(p.customer_move.has_value());
    } else {
      EXPECT_FALSE(p.free_win);
      EXPECT_GT(p.cost, 0.0);
      EXPECT_TRUE(p.customer_move.has_value());
    }
  }
  // Cost-ascending: the free win leads.
  EXPECT_EQ(prospects.front().customer, 6u);
  for (size_t i = 1; i < prospects.size(); ++i) {
    EXPECT_LE(prospects[i - 1].cost, prospects[i].cost);
  }
}

TEST(ProspectTest, MaxProspectsTruncates) {
  WhyNotEngine engine(PaperExampleDataset());
  ProspectOptions options;
  options.max_prospects = 1;
  const auto prospects =
      RankProspects(engine, PaperExampleQuery(), options);
  ASSERT_EQ(prospects.size(), 1u);
  EXPECT_EQ(prospects.front().customer, 6u);
}

TEST(ProspectTest, DistanceFilterLimitsCandidates) {
  WhyNotEngine engine(GenerateCarDb(1000, 51));
  const Point q({15000.0, 60000.0});
  ProspectOptions narrow;
  narrow.max_prospects = 1000;
  narrow.max_preference_distance = 10000.0;
  const auto near = RankProspects(engine, q, narrow);
  for (const Prospect& p : near) {
    EXPECT_LE(engine.customers().points[p.customer].L1Distance(q),
              10000.0);
  }
  ProspectOptions wide = narrow;
  wide.max_preference_distance = 50000.0;
  const auto far = RankProspects(engine, q, wide);
  EXPECT_GE(far.size(), near.size());
}

TEST(ProspectTest, SuggestionsAreActionable) {
  // Every suggested query move keeps all existing members, and free wins
  // really admit the prospect.
  WhyNotEngine engine(GenerateCarDb(600, 52));
  Rng rng(53);
  const Point q = engine.products().points[rng.NextUint64(600)];
  const std::vector<size_t> members = engine.ReverseSkyline(q);
  ProspectOptions options;
  options.max_prospects = 8;
  options.max_preference_distance = 30000.0;
  for (const Prospect& p : RankProspects(engine, q, options)) {
    for (size_t m : members) {
      EXPECT_TRUE(engine.IsReverseSkylineMember(m, p.query_move))
          << "member " << m << " lost by prospect " << p.customer;
    }
    if (p.free_win) {
      EXPECT_TRUE(
          engine.IsReverseSkylineMember(p.customer, p.query_move));
    }
  }
}

TEST(ProspectTest, ApproxModeAgreesOnFreeWins) {
  WhyNotEngine engine(GenerateCarDb(400, 54));
  engine.PrecomputeApproxDsls(10);
  Rng rng(55);
  const Point q = engine.products().points[rng.NextUint64(400)];
  ProspectOptions exact_options;
  exact_options.max_prospects = 200;
  exact_options.max_preference_distance = 40000.0;
  ProspectOptions approx_options = exact_options;
  approx_options.use_approx = true;
  const auto exact = RankProspects(engine, q, exact_options);
  const auto approx = RankProspects(engine, q, approx_options);
  // Approx free wins are a subset of exact free wins (smaller region).
  auto free_set = [](const std::vector<Prospect>& v) {
    std::vector<size_t> out;
    for (const Prospect& p : v) {
      if (p.free_win) out.push_back(p.customer);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto exact_free = free_set(exact);
  for (size_t c : free_set(approx)) {
    EXPECT_TRUE(std::binary_search(exact_free.begin(), exact_free.end(), c))
        << "approx-free customer " << c << " not exact-free";
  }
}

}  // namespace
}  // namespace wnrs
