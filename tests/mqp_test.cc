#include "core/mqp.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

class MqpTest : public ::testing::Test {
 protected:
  MqpTest()
      : data_(PaperExampleDataset()),
        tree_(BulkLoadPoints(2, data_.points)),
        cost_(CostModel::EqualWeightsFor(data_.Bounds())),
        q_(PaperExampleQuery()) {}

  Dataset data_;
  RStarTree tree_;
  CostModel cost_;
  Point q_;
};

TEST_F(MqpTest, AlreadyMemberShortCircuits) {
  const MqpResult r = ModifyQueryPoint(tree_, data_.points, data_.points[1],
                                       q_, cost_, 0, 1);
  EXPECT_TRUE(r.already_member);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_EQ(r.candidates[0].point, q_);
}

TEST_F(MqpTest, PaperExampleCandidates) {
  const MqpResult r = ModifyQueryPoint(tree_, data_.points, data_.points[0],
                                       q_, cost_, 0, 0);
  EXPECT_FALSE(r.already_member);
  ASSERT_EQ(r.candidates.size(), 2u);
  // (7.5, 55) is the cheaper option ("decrease the price at least 1K").
  EXPECT_TRUE(r.candidates[0].point.ApproxEquals(Point({7.5, 55.0})));
  EXPECT_TRUE(r.candidates[1].point.ApproxEquals(Point({8.5, 42.0})));
}

/// Nudges q* slightly toward c_t (shrinking its transformed coordinates)
/// and checks that c_t becomes a reverse-skyline member.
bool NudgedMembership(const RStarTree& tree, const Point& c_t,
                      const Point& q_star,
                      std::optional<RStarTree::Id> exclude) {
  for (double eps : {1e-9, 1e-7, 1e-5}) {
    Point nudged = q_star;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      nudged[i] += eps * (c_t[i] - nudged[i]);
    }
    if (WindowEmpty(tree, c_t, nudged, exclude)) return true;
  }
  return false;
}

class MqpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MqpPropertyTest, CandidatesAdmitTheCustomerAfterNudge) {
  const int dist = GetParam();
  Dataset ds;
  switch (dist) {
    case 0:
      ds = GenerateUniform(400, 2, 2401);
      break;
    case 1:
      ds = GenerateCorrelated(400, 2, 2402);
      break;
    case 2:
      ds = GenerateAnticorrelated(400, 2, 2403);
      break;
    default:
      ds = GenerateCarDb(400, 2404);
      break;
  }
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const CostModel cost = CostModel::EqualWeightsFor(ds.Bounds());
  Rng rng(900 + dist);
  int exercised = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    const Point& c_t = ds.points[c_idx];
    const MqpResult r = ModifyQueryPoint(
        tree, ds.points, c_t, q, cost, 0, static_cast<RStarTree::Id>(c_idx));
    if (r.already_member) continue;
    ++exercised;
    ASSERT_FALSE(r.candidates.empty());
    for (const Candidate& cand : r.candidates) {
      EXPECT_TRUE(NudgedMembership(tree, c_t, cand.point,
                                   static_cast<RStarTree::Id>(c_idx)))
          << "dist " << dist << " c_t " << c_t.ToString() << " q "
          << q.ToString() << " q* " << cand.point.ToString();
    }
    for (size_t i = 1; i < r.candidates.size(); ++i) {
      EXPECT_LE(r.candidates[i - 1].cost, r.candidates[i].cost);
    }
  }
  EXPECT_GT(exercised, 10);
}

INSTANTIATE_TEST_SUITE_P(Distributions, MqpPropertyTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(MqpFastTest, FastPathMatchesReferenceCandidates) {
  for (int dist = 0; dist < 4; ++dist) {
    Dataset ds;
    switch (dist) {
      case 0:
        ds = GenerateUniform(500, 2, 8801);
        break;
      case 1:
        ds = GenerateCorrelated(500, 2, 8802);
        break;
      case 2:
        ds = GenerateAnticorrelated(500, 2, 8803);
        break;
      default:
        ds = GenerateCarDb(500, 8804);
        break;
    }
    RStarTree tree = BulkLoadPoints(2, ds.points);
    const CostModel cost = CostModel::EqualWeightsFor(ds.Bounds());
    Rng rng(8850 + dist);
    for (int trial = 0; trial < 40; ++trial) {
      const size_t c_idx = rng.NextUint64(ds.points.size());
      const Point q = ds.points[rng.NextUint64(ds.points.size())];
      const auto exclude = static_cast<RStarTree::Id>(c_idx);
      const MqpResult slow = ModifyQueryPoint(tree, ds.points,
                                              ds.points[c_idx], q, cost, 0,
                                              exclude);
      const MqpResult fast = ModifyQueryPointFast(
          tree, ds.points, ds.points[c_idx], q, cost, 0, exclude);
      EXPECT_EQ(slow.already_member, fast.already_member);
      ASSERT_EQ(slow.candidates.size(), fast.candidates.size())
          << "dist " << dist << " trial " << trial;
      for (size_t i = 0; i < slow.candidates.size(); ++i) {
        EXPECT_TRUE(
            slow.candidates[i].point.ApproxEquals(fast.candidates[i].point))
            << slow.candidates[i].point.ToString() << " vs "
            << fast.candidates[i].point.ToString();
      }
    }
  }
}

TEST(MqpOrientationTest, CustomerAboveQuery) {
  std::vector<Point> products = {Point({6.0, 6.0}), Point({7.0, 7.5})};
  RStarTree tree = BulkLoadPoints(2, products);
  const CostModel cost =
      CostModel::EqualWeightsFor(Rectangle(Point({0, 0}), Point({10, 10})));
  const Point c_t({9.0, 9.0});
  const Point q({4.0, 4.0});
  const MqpResult r = ModifyQueryPoint(tree, products, c_t, q, cost, 0);
  ASSERT_FALSE(r.already_member);
  for (const Candidate& cand : r.candidates) {
    Point nudged = cand.point;
    for (size_t i = 0; i < 2; ++i) nudged[i] += 1e-7 * (c_t[i] - nudged[i]);
    EXPECT_TRUE(WindowEmpty(tree, c_t, nudged)) << cand.point.ToString();
  }
}

TEST(MqpStructureTest, CandidateCountIsFrontierPlusOne) {
  // A clean staircase of culprits: all on DSL(c_t), so |M| = |F| + 1
  // modulo dedup.
  std::vector<Point> products = {Point({4.0, 7.0}), Point({5.0, 6.0}),
                                 Point({6.0, 4.0})};
  RStarTree tree = BulkLoadPoints(2, products);
  const CostModel cost =
      CostModel::EqualWeightsFor(Rectangle(Point({0, 0}), Point({10, 10})));
  const Point c_t({3.0, 3.0});
  const Point q({8.0, 9.0});
  const MqpResult r = ModifyQueryPoint(tree, products, c_t, q, cost, 0);
  ASSERT_FALSE(r.already_member);
  EXPECT_EQ(r.culprits.size(), 3u);
  EXPECT_EQ(r.candidates.size(), 4u);
}

}  // namespace
}  // namespace wnrs
