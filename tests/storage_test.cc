#include "storage/storage_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "storage/buffer_pool.h"
#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/tree_store.h"

namespace wnrs {
namespace {

using storage::BufferPool;
using storage::DiskStorageManager;
using storage::kNewPage;
using storage::MemoryStorageManager;
using storage::PageId;

class StorageTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name) {
    paths_.push_back(::testing::TempDir() + "/" + name);
    return paths_.back();
  }
  std::vector<std::string> paths_;
};

uint64_t Counter(CounterId id) {
  return MetricsRegistry::Default().CounterValue(id);
}

// ---------------------------------------------------------------------------
// MemoryStorageManager

TEST_F(StorageTest, MemoryManagerAllocatesAndOverwrites) {
  MemoryStorageManager mgr(64);
  Result<PageId> a = mgr.WritePage(kNewPage, "alpha");
  Result<PageId> b = mgr.WritePage(kNewPage, "beta");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(mgr.page_count(), 2u);

  std::string out;
  ASSERT_TRUE(mgr.ReadPage(0, &out).ok());
  EXPECT_EQ(out, "alpha");
  ASSERT_TRUE(mgr.WritePage(0, "gamma").ok());
  ASSERT_TRUE(mgr.ReadPage(0, &out).ok());
  EXPECT_EQ(out, "gamma");
}

TEST_F(StorageTest, MemoryManagerRejectsBadRequests) {
  MemoryStorageManager mgr(8);
  std::string out;
  Status s = mgr.ReadPage(0, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("[page-index]"), std::string::npos);
  s = mgr.WritePage(kNewPage, std::string(9, 'x')).status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("[page-length]"), std::string::npos);
  EXPECT_FALSE(mgr.WritePage(3, "x").ok());
}

// ---------------------------------------------------------------------------
// DiskStorageManager

TEST_F(StorageTest, DiskManagerRoundTripsAcrossReopen) {
  const std::string path = Path("pages.bin");
  Rng rng(17);
  std::vector<std::string> payloads;
  {
    Result<std::unique_ptr<DiskStorageManager>> mgr =
        DiskStorageManager::Create(path, 128);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    for (int i = 0; i < 20; ++i) {
      std::string payload(static_cast<size_t>(rng.NextUint64(129)), '\0');
      for (char& c : payload) {
        c = static_cast<char>(rng.NextUint64(256));
      }
      payloads.push_back(payload);
      Result<PageId> id = (*mgr)->WritePage(kNewPage, payload);
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, static_cast<PageId>(i));
    }
    ASSERT_TRUE((*mgr)->Flush().ok());
  }
  Result<std::unique_ptr<DiskStorageManager>> mgr =
      DiskStorageManager::Open(path);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->page_count(), payloads.size());
  EXPECT_EQ((*mgr)->page_size(), 128u);
  for (size_t i = 0; i < payloads.size(); ++i) {
    std::string out;
    ASSERT_TRUE((*mgr)->ReadPage(static_cast<PageId>(i), &out).ok());
    EXPECT_EQ(out, payloads[i]);
  }
  // Read-only: writes refuse.
  EXPECT_FALSE((*mgr)->WritePage(0, "x").ok());
}

TEST_F(StorageTest, DiskManagerCountsPageTransferMetrics) {
  const std::string path = Path("metered.bin");
  Result<std::unique_ptr<DiskStorageManager>> mgr =
      DiskStorageManager::Create(path, 64);
  ASSERT_TRUE(mgr.ok());
  const uint64_t writes0 = Counter(CounterId::kStoragePageWrites);
  ASSERT_TRUE((*mgr)->WritePage(kNewPage, "pg").ok());
  EXPECT_EQ(Counter(CounterId::kStoragePageWrites), writes0 + 1);
  const uint64_t reads0 = Counter(CounterId::kStoragePageReads);
  std::string out;
  ASSERT_TRUE((*mgr)->ReadPage(0, &out).ok());
  EXPECT_EQ(Counter(CounterId::kStoragePageReads), reads0 + 1);
}

TEST_F(StorageTest, DiskManagerRejectsCorruptFiles) {
  const std::string path = Path("corrupt.bin");
  {
    Result<std::unique_ptr<DiskStorageManager>> mgr =
        DiskStorageManager::Create(path, 64);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->WritePage(kNewPage, "payload-zero").ok());
    ASSERT_TRUE((*mgr)->WritePage(kNewPage, "payload-one").ok());
    ASSERT_TRUE((*mgr)->Flush().ok());
  }
  std::string bytes;
  ASSERT_TRUE(storage::ReadFileToString(path, &bytes).ok());

  struct Case {
    const char* name;
    const char* want;  // Bracketed invariant expected in the message.
    std::string mutated;
  };
  std::string truncated = bytes.substr(0, 16);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0x7F);
  std::string bad_endian = bytes;
  bad_endian[8] = static_cast<char>(bad_endian[8] ^ 0x01);
  std::string bad_header_crc = bytes;
  bad_header_crc[12] = static_cast<char>(bad_header_crc[12] ^ 0x40);
  std::string missing_pages = bytes.substr(0, bytes.size() - 8);
  const Case cases[] = {
      {"truncated-header", "[truncated]", truncated},
      {"magic", "[magic]", bad_magic},
      {"version", "[version]", bad_version},
      // Flipping the endian marker also breaks the header CRC; the
      // endianness check runs first so the message names the real cause.
      {"endianness", "[endianness]", bad_endian},
      {"header-crc", "[header-crc]", bad_header_crc},
      {"missing-pages", "[truncated]", missing_pages},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string p = Path(std::string("corrupt-") + c.name + ".bin");
    ASSERT_TRUE(storage::WriteStringToFile(p, c.mutated).ok());
    Result<std::unique_ptr<DiskStorageManager>> mgr =
        DiskStorageManager::Open(p);
    ASSERT_FALSE(mgr.ok());
    EXPECT_NE(mgr.status().message().find(c.want), std::string::npos)
        << mgr.status().ToString();
  }

  // Flipped payload byte: open succeeds (header intact), the read of the
  // damaged page reports [page-crc], the sibling page still reads.
  std::string bad_payload = bytes;
  bad_payload[32 + 8 + 3] = static_cast<char>(bad_payload[32 + 8 + 3] ^ 0x10);
  const std::string p = Path("corrupt-payload.bin");
  ASSERT_TRUE(storage::WriteStringToFile(p, bad_payload).ok());
  Result<std::unique_ptr<DiskStorageManager>> mgr =
      DiskStorageManager::Open(p);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  std::string out;
  Status s = (*mgr)->ReadPage(0, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("[page-crc]"), std::string::npos);
  EXPECT_TRUE((*mgr)->ReadPage(1, &out).ok());
  EXPECT_EQ(out, "payload-one");

  // Out-of-range page index.
  s = (*mgr)->ReadPage(999, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("[page-index]"), std::string::npos);
}

TEST_F(StorageTest, DiskManagerRejectsUnreasonableGeometry) {
  EXPECT_FALSE(DiskStorageManager::Create(Path("geom.bin"), 0).ok());
  EXPECT_FALSE(
      DiskStorageManager::Create(Path("geom2.bin"), size_t{2} << 30).ok());
  EXPECT_FALSE(DiskStorageManager::Open("/nonexistent/nope.bin").ok());
}

// ---------------------------------------------------------------------------
// BufferPool

TEST_F(StorageTest, BufferPoolServesHitsWithoutBaseReads) {
  auto base = std::make_shared<MemoryStorageManager>(64);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(base->WritePage(kNewPage, "page-" + std::to_string(i)).ok());
  }
  BufferPool pool(base, 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.page_count(), 8u);

  const uint64_t misses0 = Counter(CounterId::kStorageCacheMisses);
  const uint64_t hits0 = Counter(CounterId::kStorageCacheHits);
  const uint64_t reads0 = Counter(CounterId::kStoragePageReads);

  std::string out;
  ASSERT_TRUE(pool.ReadPage(2, &out).ok());
  EXPECT_EQ(out, "page-2");
  ASSERT_TRUE(pool.ReadPage(2, &out).ok());
  ASSERT_TRUE(pool.ReadPage(2, &out).ok());
  EXPECT_EQ(Counter(CounterId::kStorageCacheMisses), misses0 + 1);
  EXPECT_EQ(Counter(CounterId::kStorageCacheHits), hits0 + 2);
  // Only the miss touched the base store.
  EXPECT_EQ(Counter(CounterId::kStoragePageReads), reads0 + 1);
  EXPECT_EQ(pool.resident(), 1u);
}

TEST_F(StorageTest, BufferPoolEvictsByClockAndStaysCorrect) {
  auto base = std::make_shared<MemoryStorageManager>(64);
  constexpr int kPages = 16;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(base->WritePage(kNewPage, StrFormat("v%d", i)).ok());
  }
  BufferPool pool(base, 3);
  Rng rng(23);
  for (int step = 0; step < 500; ++step) {
    const PageId id = static_cast<PageId>(rng.NextUint64(kPages));
    std::string out;
    ASSERT_TRUE(pool.ReadPage(id, &out).ok());
    EXPECT_EQ(out, StrFormat("v%u", id));
    EXPECT_LE(pool.resident(), 3u);
  }
}

TEST_F(StorageTest, BufferPoolKeepsEvictedPagesAliveForHolders) {
  auto base = std::make_shared<MemoryStorageManager>(64);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(base->WritePage(kNewPage, "held-" + std::to_string(i)).ok());
  }
  BufferPool pool(base, 1);
  Result<std::shared_ptr<const std::string>> page = pool.FetchPage(0);
  ASSERT_TRUE(page.ok());
  std::string out;
  ASSERT_TRUE(pool.ReadPage(1, &out).ok());  // Evicts page 0.
  ASSERT_TRUE(pool.ReadPage(2, &out).ok());
  EXPECT_EQ(**page, "held-0");  // Still alive for its holder.
}

TEST_F(StorageTest, BufferPoolWriteThroughUpdatesCachedFrame) {
  auto base = std::make_shared<MemoryStorageManager>(64);
  ASSERT_TRUE(base->WritePage(kNewPage, "old").ok());
  BufferPool pool(base, 2);
  std::string out;
  ASSERT_TRUE(pool.ReadPage(0, &out).ok());  // Cache the old bytes.
  ASSERT_TRUE(pool.WritePage(0, "new").ok());
  ASSERT_TRUE(pool.ReadPage(0, &out).ok());
  EXPECT_EQ(out, "new");
  // The base saw the write too.
  ASSERT_TRUE(base->ReadPage(0, &out).ok());
  EXPECT_EQ(out, "new");
}

// Serializes a MemoryStorageManager for multi-threaded use. BufferPool
// deliberately calls its base store outside mu_ (miss fetches must not
// serialize hits), so a base shared with writers has to be thread-safe
// on its own.
class LockedMemoryStore final : public storage::IStorageManager {
 public:
  explicit LockedMemoryStore(size_t page_size) : inner_(page_size) {}
  Status ReadPage(PageId id, std::string* out) override {
    MutexLock lock(mu_);
    return inner_.ReadPage(id, out);
  }
  Result<PageId> WritePage(PageId id, const std::string& data) override {
    MutexLock lock(mu_);
    return inner_.WritePage(id, data);
  }
  size_t page_count() const override {
    MutexLock lock(mu_);
    return inner_.page_count();
  }
  size_t page_size() const override {
    MutexLock lock(mu_);
    return inner_.page_size();
  }
  Status Flush() override { return Status::Ok(); }

 private:
  mutable Mutex mu_;
  MemoryStorageManager inner_ WNRS_GUARDED_BY(mu_);
};

// Hammers one pool from many threads with a capacity far below the page
// count, so every operation races installs and clock evictions on the
// shared frame table. Readers pin pages across evictions via FetchPage;
// writers publish versioned payloads, each page owned by exactly one
// writer thread (BufferPool's write-through does base write and frame
// install as two separate critical sections, so same-page write order is
// only defined within a thread). Run under TSan (ctest -R Storage in the
// sanitizer job) this pins the annotated-mutex migration of BufferPool:
// any path touching frames_ / frame_of_ / hand_ outside mu_ races here.
TEST_F(StorageTest, BufferPoolParallelReadersAndWritersStayConsistent) {
  constexpr int kPages = 16;
  constexpr int kThreads = 8;
  constexpr int kStepsPerThread = 400;
  auto base = std::make_shared<LockedMemoryStore>(64);
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(base->WritePage(kNewPage, StrFormat("p%d-v0", i)).ok());
  }
  BufferPool pool(base, 3);  // capacity << kPages: constant eviction.

  // gtest failure macros are not thread-safe off the main thread;
  // workers count violations and the main thread asserts afterwards.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &errors, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int step = 0; step < kStepsPerThread; ++step) {
        const uint64_t op = rng.NextUint64(4);
        if (op == 0) {
          // Write within this thread's page partition only.
          const PageId id = static_cast<PageId>(
              t + kThreads * static_cast<int>(rng.NextUint64(2)));
          if (!pool.WritePage(id, StrFormat("p%u-v%d", id, step + 1)).ok()) {
            ++errors;
          }
        } else if (op == 1) {
          const PageId id = static_cast<PageId>(rng.NextUint64(kPages));
          Result<std::shared_ptr<const std::string>> page = pool.FetchPage(id);
          if (!page.ok() ||
              (*page)->rfind(StrFormat("p%u-v", id), 0) != 0) {
            ++errors;
          }
        } else {
          const PageId id = static_cast<PageId>(rng.NextUint64(kPages));
          std::string out;
          if (!pool.ReadPage(id, &out).ok() ||
              out.rfind(StrFormat("p%u-v", id), 0) != 0) {
            ++errors;
          }
        }
        if (pool.resident() > pool.capacity()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(pool.resident(), 3u);

  // Quiesced, one last write per page pins write-through coherence: the
  // pool and the base must agree on the final bytes. (During the storm a
  // miss-path fetch racing a write can briefly re-install a stale page —
  // the pool only promises identical bytes for racing fetches — so the
  // coherence check happens single-threaded.)
  for (int i = 0; i < kPages; ++i) {
    const PageId id = static_cast<PageId>(i);
    ASSERT_TRUE(pool.WritePage(id, StrFormat("p%d-final", i)).ok());
    std::string via_pool;
    std::string via_base;
    ASSERT_TRUE(pool.ReadPage(id, &via_pool).ok());
    ASSERT_TRUE(base->ReadPage(id, &via_base).ok());
    EXPECT_EQ(via_pool, StrFormat("p%d-final", i));
    EXPECT_EQ(via_pool, via_base) << "page " << i;
  }
}

// ---------------------------------------------------------------------------
// RTreePageStore

TEST_F(StorageTest, TreeStoreRoundTripsThroughMemoryPages) {
  const Dataset ds = GenerateCarDb(2500, 41);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  MemoryStorageManager store(RTreePageStore::RequiredPageSize(tree));
  ASSERT_TRUE(RTreePageStore::Save(tree, &store).ok());

  Result<RStarTree> loaded = RTreePageStore::Load(&store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->max_entries(), tree.max_entries());
  ASSERT_TRUE(loaded->CheckInvariants().ok());

  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const double x0 = rng.NextDouble(500, 60000);
    const double y0 = rng.NextDouble(0, 180000);
    const Rectangle window(Point({x0, y0}), Point({x0 + 8000, y0 + 30000}));
    EXPECT_EQ(tree.RangeQueryIds(window), loaded->RangeQueryIds(window));
  }
}

TEST_F(StorageTest, TreeStoreRoundTripsThroughDiskAndBufferPool) {
  const Dataset ds = GenerateUniform(1200, 3, 43);
  RStarTree tree = BulkLoadPoints(3, ds.points);
  const std::string path = Path("tree.pages");
  ASSERT_TRUE(storage::SavePagedTree(tree, path).ok());

  const uint64_t hits0 = Counter(CounterId::kStorageCacheHits);
  const uint64_t misses0 = Counter(CounterId::kStorageCacheMisses);
  Result<RStarTree> loaded = storage::LoadPagedTree(path, 64);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), tree.size());
  ASSERT_TRUE(loaded->CheckInvariants().ok());
  // The load fetched every page through the pool at least once.
  EXPECT_GT(Counter(CounterId::kStorageCacheMisses), misses0);
  EXPECT_GE(Counter(CounterId::kStorageCacheHits), hits0);

  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const Point lo({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    Point hi = lo;
    for (size_t i = 0; i < 3; ++i) hi[i] += 0.2;
    const Rectangle window(lo, hi);
    EXPECT_EQ(tree.RangeQueryIds(window), loaded->RangeQueryIds(window));
  }
}

TEST_F(StorageTest, TreeStoreLoadedTreeSupportsMutation) {
  const Dataset ds = GenerateUniform(600, 2, 45);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  MemoryStorageManager store(RTreePageStore::RequiredPageSize(tree));
  ASSERT_TRUE(RTreePageStore::Save(tree, &store).ok());
  Result<RStarTree> loaded = RTreePageStore::Load(&store);
  ASSERT_TRUE(loaded.ok());
  loaded->Insert(Point({2.0, 2.0}), 999);
  EXPECT_TRUE(loaded->Delete(Rectangle::FromPoint(ds.points[0]), 0));
  ASSERT_TRUE(loaded->CheckInvariants().ok());
  EXPECT_EQ(loaded->size(), 600u);
}

TEST_F(StorageTest, TreeStoreEmptyAndSingleNodeTrees) {
  RStarTree empty(2);
  MemoryStorageManager store(RTreePageStore::RequiredPageSize(empty));
  ASSERT_TRUE(RTreePageStore::Save(empty, &store).ok());
  Result<RStarTree> loaded = RTreePageStore::Load(&store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  ASSERT_TRUE(loaded->CheckInvariants().ok());
}

TEST_F(StorageTest, TreeStoreRejectsCorruptMetadata) {
  RStarTree tree(2);
  tree.Insert(Point({1, 1}), 0);
  tree.Insert(Point({2, 2}), 1);
  MemoryStorageManager good(RTreePageStore::RequiredPageSize(tree));
  ASSERT_TRUE(RTreePageStore::Save(tree, &good).ok());

  // Replay the pages into a fresh store with page 0 (metadata) damaged.
  {
    MemoryStorageManager bad(good.page_size());
    std::string page;
    for (PageId id = 0; id < good.page_count(); ++id) {
      ASSERT_TRUE(good.ReadPage(id, &page).ok());
      if (id == 0) page[0] = static_cast<char>(page[0] ^ 0x5A);
      ASSERT_TRUE(bad.WritePage(kNewPage, page).ok());
    }
    EXPECT_FALSE(RTreePageStore::Load(&bad).ok());
  }
  // Declared node page out of range.
  {
    MemoryStorageManager bad(good.page_size());
    std::string page;
    ASSERT_TRUE(good.ReadPage(0, &page).ok());
    ASSERT_TRUE(bad.WritePage(kNewPage, page).ok());  // Metadata only.
    Result<RStarTree> r = RTreePageStore::Load(&bad);
    EXPECT_FALSE(r.ok());
  }
}

// ---------------------------------------------------------------------------
// Crc32

TEST_F(StorageTest, Crc32MatchesKnownVectorAndChains) {
  // The canonical CRC-32 ("123456789" -> 0xCBF43926).
  EXPECT_EQ(storage::Crc32("123456789", 9), 0xCBF43926u);
  // Seed-chaining equals one-shot.
  const std::string data = "hello, storage layer";
  const uint32_t whole = storage::Crc32(data.data(), data.size());
  const uint32_t part = storage::Crc32(data.data() + 5, data.size() - 5,
                                       storage::Crc32(data.data(), 5));
  EXPECT_EQ(whole, part);
}

}  // namespace
}  // namespace wnrs
