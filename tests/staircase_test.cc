#include "skyline/staircase.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace wnrs {
namespace {

TEST(StaircaseTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(
      StaircaseCandidates({}, 0, StaircaseMerge::kMin, Point({0, 0}))
          .empty());
}

TEST(StaircaseTest, SinglePointMinMergeMatchesAlgorithm1Example) {
  // Paper Section IV: u = (8, 48.5), anchor c1 = (5, 30) ->
  // {(5, 48.5), (8, 30)}.
  std::vector<Point> out = StaircaseCandidates(
      {Point({8.0, 48.5})}, 0, StaircaseMerge::kMin, Point({5.0, 30.0}));
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Point({5.0, 48.5}));
  EXPECT_EQ(out[1], Point({8.0, 30.0}));
}

TEST(StaircaseTest, SinglePointMaxMergeMatchesAlgorithm2Example) {
  // Paper Section V-A (transformed space): u = (2.5, 12), anchor
  // q_t = (3.5, 25) -> {(2.5, 25), (3.5, 12)}.
  std::vector<Point> out = StaircaseCandidates(
      {Point({2.5, 12.0})}, 0, StaircaseMerge::kMax, Point({3.5, 25.0}));
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Point({2.5, 25.0}));
  EXPECT_EQ(out[1], Point({3.5, 12.0}));
}

TEST(StaircaseTest, TwoPointsMaxMergeMatchesFig10) {
  // Fig. 10: DSL = {A, B} gives three rectangles: A extended in y,
  // max(A, B), B extended in x.
  const Point a({1.0, 5.0});
  const Point b({4.0, 2.0});
  const Point anchor({10.0, 20.0});
  std::vector<Point> out =
      StaircaseCandidates({a, b}, 0, StaircaseMerge::kMax, anchor);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Point({1.0, 20.0}));   // A with y -> anchor.
  EXPECT_EQ(out[1], Point({4.0, 5.0}));    // max merge.
  EXPECT_EQ(out[2], Point({10.0, 2.0}));   // B with x -> anchor.
}

TEST(StaircaseTest, TwoPointsMinMerge) {
  const Point u1({2.0, 8.0});
  const Point u2({6.0, 3.0});
  const Point anchor({0.0, 0.0});
  std::vector<Point> out =
      StaircaseCandidates({u1, u2}, 0, StaircaseMerge::kMin, anchor);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Point({0.0, 8.0}));  // u1 with sort dim -> anchor.
  EXPECT_EQ(out[1], Point({2.0, 3.0}));  // min merge.
  EXPECT_EQ(out[2], Point({6.0, 0.0}));  // u2 with other dims -> anchor.
}

TEST(StaircaseTest, OutputSizeIsKPlusOne) {
  std::vector<Point> pts;
  for (int i = 0; i < 9; ++i) {
    pts.push_back(Point({double(i), double(9 - i)}));
  }
  const std::vector<Point> out =
      StaircaseCandidates(pts, 0, StaircaseMerge::kMax, Point({20, 20}));
  EXPECT_EQ(out.size(), 10u);
}

TEST(StaircaseTest, SortDimensionOneWorks) {
  // Sorting on dim 1 mirrors the roles of the dimensions.
  const Point a({5.0, 1.0});
  const Point b({2.0, 4.0});
  const Point anchor({10.0, 10.0});
  std::vector<Point> out =
      StaircaseCandidates({a, b}, 1, StaircaseMerge::kMax, anchor);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Point({2.0, 10.0}));
  EXPECT_EQ(out[1], Point({5.0, 4.0}));
  EXPECT_EQ(out[2], Point({10.0, 1.0}));
}

TEST(StaircaseTest, DeduplicatesWhenAnchorEqualsPoint) {
  // Anchor equal to the single input point collapses both ends to the
  // same candidate.
  std::vector<Point> out = StaircaseCandidates(
      {Point({3.0, 4.0})}, 0, StaircaseMerge::kMax, Point({3.0, 4.0}));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Point({3.0, 4.0}));
}

TEST(StaircaseTest, ThreeDimensionalShapes) {
  const Point a({1.0, 5.0, 5.0});
  const Point b({4.0, 2.0, 4.0});
  const Point anchor({9.0, 9.0, 9.0});
  std::vector<Point> out =
      StaircaseCandidates({a, b}, 0, StaircaseMerge::kMax, anchor);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Point({1.0, 9.0, 9.0}));  // First: others anchored.
  EXPECT_EQ(out[1], Point({4.0, 5.0, 5.0}));  // Max merge.
  EXPECT_EQ(out[2], Point({9.0, 2.0, 4.0}));  // Last: sort dim anchored.
}

TEST(StaircaseTest, MinMergeCandidatesEscapeEveryThresholdBox) {
  // Property behind Algorithm 1 (2-D): every emitted candidate must be
  // strictly outside, or on the boundary of, each threshold's lower-left
  // box — i.e., >= the threshold in at least one dimension.
  const std::vector<Point> thresholds = {Point({2.0, 9.0}), Point({5.0, 6.0}),
                                         Point({8.0, 1.0})};
  const std::vector<Point> out = StaircaseCandidates(
      thresholds, 0, StaircaseMerge::kMin, Point({0.0, 0.0}));
  for (const Point& cand : out) {
    for (const Point& u : thresholds) {
      EXPECT_TRUE(cand[0] >= u[0] || cand[1] >= u[1])
          << cand.ToString() << " inside box of " << u.ToString();
    }
  }
}

}  // namespace
}  // namespace wnrs
