#include "index/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"

namespace wnrs {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string Path(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    return path_;
  }
  std::string path_;
};

TEST_F(SerializeTest, RoundTripsBulkLoadedTree) {
  const Dataset ds = GenerateCarDb(3000, 91);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const std::string path = Path("tree.txt");
  ASSERT_TRUE(SaveTree(tree, path).ok());

  Result<RStarTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->max_entries(), tree.max_entries());
  ASSERT_TRUE(loaded->CheckInvariants().ok());

  // Identical query answers.
  Rng rng(92);
  for (int trial = 0; trial < 30; ++trial) {
    const double x0 = rng.NextDouble(500, 60000);
    const double y0 = rng.NextDouble(0, 180000);
    const Rectangle window(Point({x0, y0}),
                           Point({x0 + 8000, y0 + 30000}));
    std::vector<RStarTree::Id> a = tree.RangeQueryIds(window);
    std::vector<RStarTree::Id> b = loaded->RangeQueryIds(window);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST_F(SerializeTest, RoundTripsInsertionBuiltTree) {
  RStarTree tree(3);
  Rng rng(93);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(Point({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()}),
                i);
  }
  const std::string path = Path("tree3d.txt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  Result<RStarTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 500u);
  ASSERT_TRUE(loaded->CheckInvariants().ok());
}

TEST_F(SerializeTest, LoadedTreeSupportsMutation) {
  const Dataset ds = GenerateUniform(800, 2, 94);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const std::string path = Path("mut.txt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  Result<RStarTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  loaded->Insert(Point({2.0, 2.0}), 999);
  EXPECT_TRUE(loaded->Delete(Rectangle::FromPoint(ds.points[0]), 0));
  ASSERT_TRUE(loaded->CheckInvariants().ok());
  EXPECT_EQ(loaded->size(), 800u);
}

TEST_F(SerializeTest, EmptyTreeRoundTrips) {
  RStarTree tree(2);
  const std::string path = Path("empty.txt");
  ASSERT_TRUE(SaveTree(tree, path).ok());
  Result<RStarTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(SerializeTest, RejectsGarbageAndTruncation) {
  const std::string path = Path("garbage.txt");
  std::ofstream(path) << "not a tree\n";
  EXPECT_FALSE(LoadTree(path).ok());

  // Truncated: valid header, missing nodes.
  std::ofstream(path, std::ios::trunc)
      << "wnrs-rtree 1\n2 1536 0.4 0.3 100 2\nI 2\n0 0 1 1\nL 1\n";
  EXPECT_FALSE(LoadTree(path).ok());

  EXPECT_FALSE(LoadTree("/nonexistent/nope.txt").ok());
}

TEST_F(SerializeTest, RejectsInconsistentMetadata) {
  // Structure says 2 points, header claims 5: invariant check refuses.
  const std::string path = Path("badmeta.txt");
  RStarTree tree(2);
  tree.Insert(Point({1, 1}), 0);
  tree.Insert(Point({2, 2}), 1);
  ASSERT_TRUE(SaveTree(tree, path).ok());
  // Patch the size field.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const size_t pos = content.find(" 2 1\nL");
  ASSERT_NE(pos, std::string::npos) << content;
  content.replace(pos, 4, " 5 1");
  std::ofstream(path, std::ios::trunc) << content;
  EXPECT_FALSE(LoadTree(path).ok());
}

}  // namespace
}  // namespace wnrs
