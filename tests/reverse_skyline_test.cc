#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/naive.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

std::vector<size_t> ToSizes(const std::vector<RStarTree::Id>& ids) {
  std::vector<size_t> out;
  out.reserve(ids.size());
  for (RStarTree::Id id : ids) out.push_back(static_cast<size_t>(id));
  return out;
}

TEST(ReverseSkylineTest, PaperExampleAllMethodsAgree) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point q = PaperExampleQuery();
  const std::vector<size_t> expected = {1, 2, 3, 5, 7};
  EXPECT_EQ(ReverseSkylineNaive(tree, ds.points, q, true), expected);
  EXPECT_EQ(ToSizes(BbrsReverseSkyline(tree, q)), expected);
  RStarTree ctree = BulkLoadPoints(2, ds.points);
  EXPECT_EQ(ToSizes(BbrsReverseSkylineBichromatic(ctree, tree, q, true)),
            expected);
}

TEST(GlobalSkylineTest, SupersetOfReverseSkyline) {
  const Dataset ds = GenerateUniform(800, 2, 5);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Point q({rng.NextDouble(), rng.NextDouble()});
    const std::vector<RStarTree::Id> gsl = GlobalSkylineCandidates(tree, q);
    const std::vector<RStarTree::Id> rsl = BbrsReverseSkyline(tree, q);
    for (RStarTree::Id r : rsl) {
      EXPECT_TRUE(std::binary_search(gsl.begin(), gsl.end(), r))
          << "RSL id " << r << " missing from global skyline";
    }
  }
}

class ReverseSkylineAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(ReverseSkylineAgreementTest, BbrsMatchesNaive) {
  const auto [dist, n] = GetParam();
  Dataset ds;
  switch (dist) {
    case 0:
      ds = GenerateUniform(n, 2, 100 + n);
      break;
    case 1:
      ds = GenerateCorrelated(n, 2, 100 + n);
      break;
    case 2:
      ds = GenerateAnticorrelated(n, 2, 100 + n);
      break;
    default:
      ds = GenerateCarDb(n, 100 + n);
      break;
  }
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(n);
  for (int trial = 0; trial < 5; ++trial) {
    // Query points follow the data distribution, as in the paper.
    Point q = ds.points[rng.NextUint64(ds.points.size())];
    const Rectangle bounds = ds.Bounds();
    for (size_t i = 0; i < 2; ++i) {
      q[i] += rng.NextGaussian(0.0, 0.01 * (bounds.hi()[i] - bounds.lo()[i]));
    }
    const std::vector<size_t> naive =
        ReverseSkylineNaive(tree, ds.points, q, true);
    EXPECT_EQ(ToSizes(BbrsReverseSkyline(tree, q)), naive)
        << "dist " << dist << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReverseSkylineAgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(size_t{100}, size_t{1000})));

TEST(ReverseSkylineTest, BichromaticSeparateRelations) {
  // Distinct product and customer sets: verify against a brute-force
  // oracle on every customer.
  const Dataset products = GenerateUniform(400, 2, 21);
  const Dataset customers = GenerateUniform(150, 2, 22);
  RStarTree ptree = BulkLoadPoints(2, products.points);
  RStarTree ctree = BulkLoadPoints(2, customers.points);
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const Point q({rng.NextDouble(), rng.NextDouble()});
    std::vector<size_t> expected;
    for (size_t c = 0; c < customers.points.size(); ++c) {
      if (WindowQueryBrute(products.points, customers.points[c], q)
              .empty()) {
        expected.push_back(c);
      }
    }
    EXPECT_EQ(ToSizes(BbrsReverseSkylineBichromatic(ctree, ptree, q, false)),
              expected);
    EXPECT_EQ(ReverseSkylineNaive(ptree, customers.points, q, false),
              expected);
  }
}

TEST(ReverseSkylineTest, QueryFarOutsideDataHasLargeRsl) {
  // A product far outside the data cloud on the "good" side dominates
  // nothing in anyone's window... every customer window centered at c
  // with q outside tends to include other products, so RSL is small; but
  // a q very close to a customer makes that customer a member.
  const Dataset ds = GenerateUniform(200, 2, 31);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point near = ds.points[0];
  Point q = near;
  q[0] += 1e-6;
  q[1] += 1e-6;
  const std::vector<size_t> rsl =
      ReverseSkylineNaive(tree, ds.points, q, true);
  EXPECT_TRUE(std::find(rsl.begin(), rsl.end(), 0u) != rsl.end());
}

TEST(ReverseSkylineTest, BbrsReadsFewerNodesThanNaive) {
  const Dataset ds = GenerateCarDb(20000, 41);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(42);
  const Point q = ds.points[rng.NextUint64(ds.points.size())];
  tree.ResetStats();
  const auto bbrs = BbrsReverseSkyline(tree, q);
  const uint64_t bbrs_reads = tree.stats().node_reads;
  tree.ResetStats();
  const auto naive = ReverseSkylineNaive(tree, ds.points, q, true);
  const uint64_t naive_reads = tree.stats().node_reads;
  EXPECT_EQ(ToSizes(bbrs), naive);
  EXPECT_LT(bbrs_reads, naive_reads / 2)
      << "BBRS " << bbrs_reads << " vs naive " << naive_reads;
}

}  // namespace
}  // namespace wnrs
