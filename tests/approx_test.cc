#include "skyline/approx.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace wnrs {
namespace {

std::vector<Point> Staircase(size_t n) {
  // A clean 2-D skyline: x ascending, y descending.
  std::vector<Point> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point({double(i), double(n - i)}));
  }
  return out;
}

TEST(ApproximateSkylineTest, SmallSkylineUnchanged) {
  const std::vector<Point> sk = Staircase(3);
  EXPECT_EQ(ApproximateSkyline(sk, 5), sk);
  EXPECT_EQ(ApproximateSkyline(sk, 3), sk);
}

TEST(ApproximateSkylineTest, KeepsFirstAndLast) {
  const std::vector<Point> sk = Staircase(100);
  for (size_t k : {2, 3, 10, 20}) {
    const std::vector<Point> approx = ApproximateSkyline(sk, k);
    ASSERT_FALSE(approx.empty());
    EXPECT_EQ(approx.front(), sk.front()) << "k=" << k;
    EXPECT_EQ(approx.back(), sk.back()) << "k=" << k;
  }
}

TEST(ApproximateSkylineTest, SizeTracksK) {
  const std::vector<Point> sk = Staircase(100);
  for (size_t k : {2, 5, 10, 25}) {
    const std::vector<Point> approx = ApproximateSkyline(sk, k);
    EXPECT_GE(approx.size(), k);
    EXPECT_LE(approx.size(), k + 2);
  }
}

TEST(ApproximateSkylineTest, OutputIsSubsetOfInput) {
  Rng rng(4);
  std::vector<Point> sk;
  double y = 100.0;
  for (int i = 0; i < 57; ++i) {
    y -= rng.NextDouble(0.1, 2.0);
    sk.push_back(Point({double(i) + rng.NextDouble(), y}));
  }
  const std::vector<Point> approx = ApproximateSkyline(sk, 7);
  for (const Point& p : approx) {
    EXPECT_NE(std::find(sk.begin(), sk.end(), p), sk.end());
  }
}

TEST(ApproximateSkylineTest, OutputStaysSortedOnSortDim) {
  const std::vector<Point> approx = ApproximateSkyline(Staircase(64), 9);
  for (size_t i = 1; i < approx.size(); ++i) {
    EXPECT_LE(approx[i - 1][0], approx[i][0]);
  }
}

TEST(ApproximateSkylineTest, UnsortedInputHandled) {
  std::vector<Point> sk = Staircase(40);
  std::reverse(sk.begin(), sk.end());
  const std::vector<Point> approx = ApproximateSkyline(sk, 4);
  EXPECT_EQ(approx.front(), Point({0.0, 40.0}));
  EXPECT_EQ(approx.back(), Point({39.0, 1.0}));
}

}  // namespace
}  // namespace wnrs
