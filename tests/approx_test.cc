#include "skyline/approx.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace wnrs {
namespace {

std::vector<Point> Staircase(size_t n) {
  // A clean 2-D skyline: x ascending, y descending.
  std::vector<Point> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point({double(i), double(n - i)}));
  }
  return out;
}

TEST(ApproximateSkylineTest, SmallSkylineUnchanged) {
  const std::vector<Point> sk = Staircase(3);
  EXPECT_EQ(ApproximateSkyline(sk, 5), sk);
  EXPECT_EQ(ApproximateSkyline(sk, 3), sk);
}

TEST(ApproximateSkylineTest, KeepsFirstAndLast) {
  const std::vector<Point> sk = Staircase(100);
  for (size_t k : {2, 3, 10, 20}) {
    const std::vector<Point> approx = ApproximateSkyline(sk, k);
    ASSERT_FALSE(approx.empty());
    EXPECT_EQ(approx.front(), sk.front()) << "k=" << k;
    EXPECT_EQ(approx.back(), sk.back()) << "k=" << k;
  }
}

TEST(ApproximateSkylineTest, SizeTracksK) {
  const std::vector<Point> sk = Staircase(100);
  for (size_t k : {2, 5, 10, 25}) {
    const std::vector<Point> approx = ApproximateSkyline(sk, k);
    EXPECT_GE(approx.size(), k);
    EXPECT_LE(approx.size(), k + 2);
  }
}

TEST(ApproximateSkylineTest, OutputIsSubsetOfInput) {
  Rng rng(4);
  std::vector<Point> sk;
  double y = 100.0;
  for (int i = 0; i < 57; ++i) {
    y -= rng.NextDouble(0.1, 2.0);
    sk.push_back(Point({double(i) + rng.NextDouble(), y}));
  }
  const std::vector<Point> approx = ApproximateSkyline(sk, 7);
  for (const Point& p : approx) {
    EXPECT_NE(std::find(sk.begin(), sk.end(), p), sk.end());
  }
}

TEST(ApproximateSkylineTest, OutputStaysSortedOnSortDim) {
  const std::vector<Point> approx = ApproximateSkyline(Staircase(64), 9);
  for (size_t i = 1; i < approx.size(); ++i) {
    EXPECT_LE(approx[i - 1][0], approx[i][0]);
  }
}

TEST(ApproximateSkylineTest, NonDivisibleSizeKeepsFirstEveryStrideAndLast) {
  // Regression: with n % k != 0 the loop emits ceil(n / stride) points —
  // up to ~2k of them — while the reserve assumed k + 2. The documented
  // contents ("first + every stride-th + last") must hold regardless.
  {
    // n = 10, k = 4: stride = 2, so indices 0, 2, 4, 6, 8 plus the last.
    const std::vector<Point> sk = Staircase(10);
    const std::vector<Point> approx = ApproximateSkyline(sk, 4);
    const std::vector<Point> expected = {sk[0], sk[2], sk[4],
                                         sk[6], sk[8], sk[9]};
    EXPECT_EQ(approx, expected);
  }
  {
    // n = 7, k = 4: stride = 1 keeps every point — 7 outputs, beyond the
    // old k + 2 = 6 reserve.
    const std::vector<Point> sk = Staircase(7);
    EXPECT_EQ(ApproximateSkyline(sk, 4), sk);
  }
  {
    // n = 11, k = 4: stride = 2 and the last index (10) is already a
    // stride point, so no duplicate tail is appended.
    const std::vector<Point> sk = Staircase(11);
    const std::vector<Point> expected = {sk[0], sk[2], sk[4],
                                         sk[6], sk[8], sk[10]};
    EXPECT_EQ(ApproximateSkyline(sk, 4), expected);
  }
}

TEST(ApproximateSkylineTest, UnsortedInputHandled) {
  std::vector<Point> sk = Staircase(40);
  std::reverse(sk.begin(), sk.end());
  const std::vector<Point> approx = ApproximateSkyline(sk, 4);
  EXPECT_EQ(approx.front(), Point({0.0, 40.0}));
  EXPECT_EQ(approx.back(), Point({39.0, 1.0}));
}

}  // namespace
}  // namespace wnrs
