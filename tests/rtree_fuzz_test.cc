// Randomized mixed-workload consistency test: the R*-tree must agree
// with a flat vector baseline under arbitrary interleavings of inserts,
// deletes and queries, while maintaining its structural invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "index/rtree.h"
#include "index/validate.h"

namespace wnrs {
namespace {

class RTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeFuzzTest, MixedWorkloadMatchesBaseline) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  RStarTree tree(2);
  std::map<RStarTree::Id, Point> baseline;
  RStarTree::Id next_id = 0;

  for (int op = 0; op < 4000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || baseline.empty()) {
      // Insert (sometimes duplicates of an existing point).
      Point p(2);
      if (!baseline.empty() && rng.NextBool(0.1)) {
        auto it = baseline.begin();
        std::advance(it, static_cast<long>(
                             rng.NextUint64(baseline.size())));
        p = it->second;
      } else {
        p[0] = rng.NextDouble(0, 100);
        p[1] = rng.NextDouble(0, 100);
      }
      tree.Insert(p, next_id);
      baseline.emplace(next_id, p);
      ++next_id;
    } else if (dice < 0.85) {
      // Delete a random live entry.
      auto it = baseline.begin();
      std::advance(it,
                   static_cast<long>(rng.NextUint64(baseline.size())));
      ASSERT_TRUE(tree.Delete(Rectangle::FromPoint(it->second), it->first))
          << "op " << op;
      baseline.erase(it);
    } else {
      // Range query vs baseline scan.
      const double x0 = rng.NextDouble(0, 95);
      const double y0 = rng.NextDouble(0, 95);
      const Rectangle window(
          Point({x0, y0}), Point({x0 + rng.NextDouble(0.5, 20),
                                  y0 + rng.NextDouble(0.5, 20)}));
      std::vector<RStarTree::Id> got = tree.RangeQueryIds(window);
      std::sort(got.begin(), got.end());
      std::vector<RStarTree::Id> expected;
      for (const auto& [id, p] : baseline) {
        if (window.Contains(p)) expected.push_back(id);
      }
      ASSERT_EQ(got, expected) << "op " << op;
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << "op " << op << ": " << tree.CheckInvariants().ToString();
      // Paranoid smoke: the deep validator (exact MBR tightness, fan-out,
      // parent links, leaf depth) must also hold mid-churn.
      ASSERT_TRUE(ValidateTree(tree).ok())
          << "op " << op << ": " << ValidateTree(tree).ToString();
    }
  }
  EXPECT_EQ(tree.size(), baseline.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_TRUE(ValidateTree(tree).ok()) << ValidateTree(tree).ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 1234, 987654321));

TEST(RTreeFuzzTest, SmallPageStress) {
  // A tiny fan-out maximizes split/reinsert/condense churn.
  RTreeOptions options;
  options.page_size_bytes = 200;  // max_entries >= 4 floor applies.
  Rng rng(77);
  RStarTree tree(2, options);
  std::map<RStarTree::Id, Point> baseline;
  for (RStarTree::Id id = 0; id < 600; ++id) {
    Point p({rng.NextDouble(0, 10), rng.NextDouble(0, 10)});
    tree.Insert(p, id);
    baseline.emplace(id, p);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  // Remove two-thirds.
  for (RStarTree::Id id = 0; id < 400; ++id) {
    ASSERT_TRUE(tree.Delete(Rectangle::FromPoint(baseline.at(id)), id));
    baseline.erase(id);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  ASSERT_TRUE(ValidateTree(tree).ok()) << ValidateTree(tree).ToString();
  std::vector<RStarTree::Id> all =
      tree.RangeQueryIds(Rectangle(Point({-1, -1}), Point({11, 11})));
  EXPECT_EQ(all.size(), baseline.size());
}

}  // namespace
}  // namespace wnrs
