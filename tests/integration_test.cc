// End-to-end invariants across the whole pipeline on realistic workloads:
// the properties the paper's evaluation section rests on (Section VI).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"
#include "data/workload.h"

namespace wnrs {
namespace {

class PipelineTest : public ::testing::TestWithParam<int> {
 protected:
  static Dataset MakeData(int dist, size_t n, uint64_t seed) {
    switch (dist) {
      case 0:
        return GenerateUniform(n, 2, seed);
      case 1:
        return GenerateCorrelated(n, 2, seed);
      case 2:
        return GenerateAnticorrelated(n, 2, seed);
      default:
        return GenerateCarDb(n, seed);
    }
  }
};

TEST_P(PipelineTest, WorkloadDrivenWhyNotRoundTrip) {
  const int dist = GetParam();
  WhyNotEngine engine(MakeData(dist, 800, 4000 + dist));
  const auto queries = SampleQueriesByRslSize(
      engine.customers(),
      [&](const Point& q) { return engine.ReverseSkyline(q); }, 1, 6, 1500,
      4100 + dist);
  ASSERT_FALSE(queries.empty());
  for (const WhyNotWorkloadQuery& wq : queries) {
    const size_t c = wq.why_not_index;
    // The why-not point is genuinely missing.
    ASSERT_FALSE(engine.IsReverseSkylineMember(c, wq.q));

    // Aspect 1: there is always at least one culprit.
    const WhyNotExplanation why = engine.Explain(c, wq.q);
    EXPECT_FALSE(why.already_member);
    EXPECT_FALSE(why.culprits.empty());
    EXPECT_FALSE(why.frontier.empty());
    EXPECT_LE(why.frontier.size(), why.culprits.size());

    // MWP produces candidates admitting the customer after the nudge.
    const MwpResult mwp = engine.ModifyWhyNot(c, wq.q);
    ASSERT_FALSE(mwp.candidates.empty());
    const std::optional<Point> strict =
        engine.NudgeToStrictMember(mwp.candidates.front().point, wq.q, c);
    EXPECT_TRUE(strict.has_value());

    // MWQ stays within budget: never more than MWP.
    const MwqResult mwq = engine.ModifyBoth(c, wq.q);
    EXPECT_LE(mwq.best_cost, mwp.candidates.front().cost + 1e-9);

    // MWQ keeps every existing reverse-skyline member at its suggested
    // q*.
    ASSERT_FALSE(mwq.query_candidates.empty());
    const Point& q_star = mwq.query_candidates.front().point;
    for (size_t member : wq.rsl) {
      EXPECT_TRUE(engine.IsReverseSkylineMember(member, q_star))
          << "dist " << dist << ": customer " << member << " lost";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, PipelineTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(PipelineInvariantTest, BichromaticPipelineRoundTrip) {
  // Distinct product and customer relations through the whole pipeline.
  Dataset products = GenerateCarDb(600, 4800);
  Dataset customers = GenerateCarDb(250, 4801);
  WhyNotEngine engine(std::move(products), std::move(customers));
  ASSERT_FALSE(engine.shared_relation());
  const auto queries = SampleQueriesByRslSize(
      engine.customers(),
      [&](const Point& q) { return engine.ReverseSkyline(q); }, 1, 5, 1500,
      4802);
  ASSERT_FALSE(queries.empty());
  for (const WhyNotWorkloadQuery& wq : queries) {
    const size_t c = wq.why_not_index;
    ASSERT_FALSE(engine.IsReverseSkylineMember(c, wq.q));
    const MwpResult mwp = engine.ModifyWhyNot(c, wq.q);
    ASSERT_FALSE(mwp.candidates.empty());
    const MwqResult mwq = engine.ModifyBoth(c, wq.q);
    EXPECT_LE(mwq.best_cost, mwp.candidates.front().cost + 1e-9);
    ASSERT_FALSE(mwq.query_candidates.empty());
    for (size_t member : wq.rsl) {
      EXPECT_TRUE(engine.IsReverseSkylineMember(
          member, mwq.query_candidates.front().point));
    }
    // No self-exclusion in bichromatic mode: a product identical to the
    // customer would genuinely block it, so Explain must never flag
    // already_member for a sampled non-member.
    EXPECT_FALSE(engine.Explain(c, wq.q).already_member);
  }
}

TEST(PipelineInvariantTest, SafeRegionCanonicalizationIsTransparent) {
  // Safe regions computed with aggressive canonicalization (threshold
  // crossed) answer membership identically to the raw intersections:
  // compare the engine's region against per-customer membership probes
  // at random locations.
  WhyNotEngine engine(GenerateAnticorrelated(700, 2, 4900));
  Rng rng(4901);
  int checked = 0;
  for (int trial = 0; trial < 25 && checked < 6; ++trial) {
    const Point q = engine.products().points[rng.NextUint64(700)];
    const std::vector<size_t> rsl = engine.ReverseSkyline(q);
    if (rsl.size() < 4 || rsl.size() > 12) continue;
    ++checked;
    const SafeRegionResult& sr = engine.SafeRegion(q);
    for (int s = 0; s < 300; ++s) {
      const Point probe({rng.NextDouble(), rng.NextDouble()});
      if (!sr.region.Contains(probe)) continue;
      // Inside the region (strictly or on the boundary): no member may be
      // lost except by boundary ties; accept either strict keep or a tie
      // at the exact border.
      size_t kept = 0;
      for (size_t member : rsl) {
        if (engine.IsReverseSkylineMember(member, probe)) ++kept;
      }
      EXPECT_GE(kept + 1, rsl.size())
          << "more than a boundary tie lost at " << probe.ToString();
    }
  }
  EXPECT_GE(checked, 3);
}

TEST(PipelineInvariantTest, SafeRegionAreaShrinksWithRslSize) {
  // Fig. 14's trend on a real workload: average safe-region area is
  // non-increasing as |RSL| grows (checked coarsely: the largest bucket
  // has a smaller area than the smallest).
  WhyNotEngine engine(GenerateCarDb(1500, 4200));
  const auto queries = SampleQueriesByRslSize(
      engine.customers(),
      [&](const Point& q) { return engine.ReverseSkyline(q); }, 1, 10, 3000,
      4300);
  ASSERT_GE(queries.size(), 4u);
  const Rectangle bounds = engine.universe();
  const double total_area = bounds.Volume();
  double first_area = -1.0;
  double last_area = -1.0;
  for (const WhyNotWorkloadQuery& wq : queries) {
    const double area =
        engine.SafeRegion(wq.q).region.UnionVolume() / total_area;
    if (first_area < 0) first_area = area;
    last_area = area;
  }
  EXPECT_LT(last_area, first_area + 1e-12);
}

TEST(PipelineInvariantTest, ApproxMwqFasterButNoWorseThanMwp) {
  WhyNotEngine engine(GenerateCarDb(800, 4400));
  engine.PrecomputeApproxDsls(10);
  const auto queries = SampleQueriesByRslSize(
      engine.customers(),
      [&](const Point& q) { return engine.ReverseSkyline(q); }, 1, 6, 1500,
      4500);
  ASSERT_FALSE(queries.empty());
  for (const WhyNotWorkloadQuery& wq : queries) {
    const MwqResult approx = engine.ModifyBothApprox(wq.why_not_index, wq.q);
    const MwpResult mwp = engine.ModifyWhyNot(wq.why_not_index, wq.q);
    ASSERT_FALSE(mwp.candidates.empty());
    EXPECT_LE(approx.best_cost, mwp.candidates.front().cost + 1e-9);
    // Approximate safe regions keep members too (subset of exact).
    ASSERT_FALSE(approx.query_candidates.empty());
    for (size_t member : wq.rsl) {
      EXPECT_TRUE(engine.IsReverseSkylineMember(
          member, approx.query_candidates.front().point));
    }
  }
}

TEST(PipelineInvariantTest, ExactMwqNeverWorseThanApproxMwq) {
  // The approximated safe region is a subset of the exact one, so the
  // exact MWQ can only do better (or equal).
  WhyNotEngine engine(GenerateAnticorrelated(500, 2, 4600));
  engine.PrecomputeApproxDsls(5);
  Rng rng(4700);
  int exercised = 0;
  for (int trial = 0; trial < 30 && exercised < 10; ++trial) {
    const Point q =
        engine.products().points[rng.NextUint64(engine.products().size())];
    if (engine.ReverseSkyline(q).size() > 8) continue;
    const size_t c = rng.NextUint64(engine.customers().size());
    const MwqResult exact = engine.ModifyBoth(c, q);
    const MwqResult approx = engine.ModifyBothApprox(c, q);
    if (exact.already_member) continue;
    ++exercised;
    EXPECT_LE(exact.best_cost, approx.best_cost + 1e-9);
  }
  EXPECT_GE(exercised, 5);
}

}  // namespace
}  // namespace wnrs
