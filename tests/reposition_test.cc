#include "core/reposition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"

namespace wnrs {
namespace {

TEST(RepositionTest, BaselineOptionIsNeutral) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const RepositionAnalysis analysis = AnalyzeRepositioning(engine, q, {q});
  ASSERT_EQ(analysis.options.size(), 1u);
  EXPECT_EQ(analysis.options.front().net(), 0);
  EXPECT_TRUE(analysis.options.front().gained.empty());
  EXPECT_TRUE(analysis.options.front().lost.empty());
  EXPECT_EQ(analysis.options.front().move_cost, 0.0);
  EXPECT_EQ(analysis.current_members,
            (std::vector<size_t>{1, 2, 3, 5, 7}));
}

TEST(RepositionTest, SafeRegionCandidatesLoseNobody) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const RepositionAnalysis analysis = AnalyzeRepositioning(engine, q);
  ASSERT_FALSE(analysis.options.empty());
  // Auto candidates come from inside SR(q), so no option loses anyone.
  for (const RepositionOption& option : analysis.options) {
    EXPECT_TRUE(option.lost.empty())
        << option.q_star.ToString() << " loses "
        << option.lost.size() << " member(s)";
  }
  // The paper's MWQ(c7) story in what-if form: some safe location gains
  // customers for free.
  const bool some_gain = std::any_of(
      analysis.options.begin(), analysis.options.end(),
      [](const RepositionOption& o) { return !o.gained.empty(); });
  EXPECT_TRUE(some_gain);
}

TEST(RepositionTest, ExplicitCandidateTradeoffsAreExact) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // A deliberately disruptive move: to the far corner of the market.
  const Point far({25.0, 21.0});
  const RepositionAnalysis analysis =
      AnalyzeRepositioning(engine, q, {far});
  ASSERT_EQ(analysis.options.size(), 1u);
  const RepositionOption& option = analysis.options.front();
  // Gained/lost must match per-customer membership probes.
  for (size_t c : option.gained) {
    EXPECT_TRUE(engine.IsReverseSkylineMember(c, far));
    EXPECT_FALSE(std::binary_search(analysis.current_members.begin(),
                                    analysis.current_members.end(), c));
  }
  for (size_t c : option.lost) {
    EXPECT_FALSE(engine.IsReverseSkylineMember(c, far));
    EXPECT_TRUE(std::binary_search(analysis.current_members.begin(),
                                   analysis.current_members.end(), c));
  }
  EXPECT_EQ(option.lost, engine.LostCustomers(q, far));
}

TEST(RepositionTest, SortedByNetThenCost) {
  WhyNotEngine engine(GenerateCarDb(400, 57));
  Rng rng(58);
  const Point q = engine.products().points[rng.NextUint64(400)];
  std::vector<Point> candidates;
  for (int i = 0; i < 12; ++i) {
    candidates.push_back(engine.products().points[rng.NextUint64(400)]);
  }
  const RepositionAnalysis analysis =
      AnalyzeRepositioning(engine, q, candidates, 12);
  for (size_t i = 1; i < analysis.options.size(); ++i) {
    const auto& a = analysis.options[i - 1];
    const auto& b = analysis.options[i];
    EXPECT_TRUE(a.net() > b.net() ||
                (a.net() == b.net() && a.move_cost <= b.move_cost));
  }
}

TEST(RepositionTest, MaxOptionsHonored) {
  WhyNotEngine engine(GenerateCarDb(300, 59));
  const Point q = engine.products().points[0];
  const RepositionAnalysis analysis = AnalyzeRepositioning(engine, q, {}, 3);
  EXPECT_LE(analysis.options.size(), 3u);
}

}  // namespace
}  // namespace wnrs
