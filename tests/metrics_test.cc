#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/generators.h"

namespace wnrs {
namespace {

TEST(MetricsTest, CountersStartAtZero) {
  MetricsRegistry registry;
  for (size_t i = 0; i < static_cast<size_t>(CounterId::kCounterIdCount);
       ++i) {
    EXPECT_EQ(registry.CounterValue(static_cast<CounterId>(i)), 0u);
  }
}

TEST(MetricsTest, CounterAddAccumulates) {
  MetricsRegistry registry;
  registry.Add(CounterId::kRTreeNodeReads, 1);
  registry.Add(CounterId::kRTreeNodeReads, 41);
  registry.Add(CounterId::kBbrsHeapPops, 7);
  EXPECT_EQ(registry.CounterValue(CounterId::kRTreeNodeReads), 42u);
  EXPECT_EQ(registry.CounterValue(CounterId::kBbrsHeapPops), 7u);
  EXPECT_EQ(registry.CounterValue(CounterId::kRTreeSplits), 0u);
}

TEST(MetricsTest, GaugeSetOverwrites) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GaugeValue(GaugeId::kRslCacheSize), 0);
  registry.SetGauge(GaugeId::kRslCacheSize, 128);
  registry.SetGauge(GaugeId::kRslCacheSize, 64);
  EXPECT_EQ(registry.GaugeValue(GaugeId::kRslCacheSize), 64);
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry registry;
  // Bucket 0 is [0, 1], bucket i is (2^(i-1), 2^i].
  registry.Record(HistogramId::kEngineQueryMicros, 0);
  registry.Record(HistogramId::kEngineQueryMicros, 1);
  registry.Record(HistogramId::kEngineQueryMicros, 2);
  registry.Record(HistogramId::kEngineQueryMicros, 3);
  registry.Record(HistogramId::kEngineQueryMicros, 4);
  registry.Record(HistogramId::kEngineQueryMicros, 1024);
  const HistogramSnapshot snap =
      registry.HistogramValue(HistogramId::kEngineQueryMicros);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 4 + 1024);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1024u);
  EXPECT_EQ(snap.buckets[0], 2u);  // 0 and 1
  EXPECT_EQ(snap.buckets[1], 1u);  // 2
  EXPECT_EQ(snap.buckets[2], 2u);  // 3 and 4
  EXPECT_EQ(snap.buckets[10], 1u);  // 1024 = 2^10
  EXPECT_EQ(snap.BucketUpperBound(0), 1u);
  EXPECT_EQ(snap.BucketUpperBound(10), 1024u);
  EXPECT_DOUBLE_EQ(snap.Mean(), (0.0 + 1 + 2 + 3 + 4 + 1024) / 6.0);
}

TEST(MetricsTest, HistogramHugeValueLandsInUnboundedBucket) {
  MetricsRegistry registry;
  registry.Record(HistogramId::kPoolQueueWaitMicros, UINT64_MAX);
  const HistogramSnapshot snap =
      registry.HistogramValue(HistogramId::kPoolQueueWaitMicros);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(snap.BucketUpperBound(kHistogramBuckets - 1), UINT64_MAX);
}

TEST(MetricsTest, ManyThreadsMergeAcrossShards) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) {
        registry.Add(CounterId::kWindowDominanceTests, 1);
      }
      registry.Record(HistogramId::kEngineQueryMicros, 64);
    });
  }
  for (std::thread& t : threads) t.join();
  // Joined threads have retired their shards; the fold must lose nothing.
  EXPECT_EQ(registry.CounterValue(CounterId::kWindowDominanceTests),
            kThreads * kAddsPerThread);
  const HistogramSnapshot snap =
      registry.HistogramValue(HistogramId::kEngineQueryMicros);
  EXPECT_EQ(snap.count, kThreads);
  EXPECT_EQ(snap.min, 64u);
  EXPECT_EQ(snap.max, 64u);
}

TEST(MetricsTest, LiveThreadWritesVisibleBeforeExit) {
  // Reads must merge live shards, not just retired ones.
  MetricsRegistry registry;
  registry.Add(CounterId::kRslCacheHits, 3);  // main thread's live shard
  EXPECT_EQ(registry.CounterValue(CounterId::kRslCacheHits), 3u);
}

TEST(MetricsTest, ResetZeroesCountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.Add(CounterId::kRTreeNodeReads, 9);
  registry.SetGauge(GaugeId::kPoolThreads, 4);
  registry.Record(HistogramId::kEngineQueryMicros, 100);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue(CounterId::kRTreeNodeReads), 0u);
  EXPECT_EQ(registry.GaugeValue(GaugeId::kPoolThreads), 0);
  const HistogramSnapshot snap =
      registry.HistogramValue(HistogramId::kEngineQueryMicros);
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
}

TEST(MetricsTest, CaptureQueryStatsDeltas) {
  MetricsRegistry registry;
  registry.Add(CounterId::kRTreeNodeReads, 10);
  const QueryStats before = registry.CaptureQueryStats();
  registry.Add(CounterId::kRTreeNodeReads, 5);
  registry.Add(CounterId::kCandidatesGenerated, 2);
  const QueryStats after = registry.CaptureQueryStats();
  const QueryStats delta = after - before;
  EXPECT_EQ(delta.rtree_node_reads, 5u);
  EXPECT_EQ(delta.candidates_generated, 2u);
  EXPECT_EQ(delta.bbrs_heap_pops, 0u);
  QueryStats sum;
  sum += delta;
  sum += delta;
  EXPECT_EQ(sum.rtree_node_reads, 10u);
}

TEST(MetricsTest, ToJsonContainsMetricNamesAndValues) {
  MetricsRegistry registry;
  registry.Add(CounterId::kRTreeNodeReads, 42);
  registry.SetGauge(GaugeId::kPoolThreads, 4);
  registry.Record(HistogramId::kEngineQueryMicros, 3);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"rtree.node_reads\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.threads\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine.query_us\""), std::string::npos) << json;
  // Structural sanity: balanced braces and brackets.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsTest, QueryStatsToJsonRoundTripsFieldNames) {
  QueryStats stats;
  stats.rtree_node_reads = 7;
  stats.window_probes = 3;
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"rtree_node_reads\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_probes\": 3"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsTest, NamesAreNonEmptyAndUnique) {
  std::vector<std::string> names;
  for (size_t i = 0; i < static_cast<size_t>(CounterId::kCounterIdCount);
       ++i) {
    names.emplace_back(MetricsRegistry::Name(static_cast<CounterId>(i)));
  }
  for (size_t i = 0; i < static_cast<size_t>(GaugeId::kGaugeIdCount); ++i) {
    names.emplace_back(MetricsRegistry::Name(static_cast<GaugeId>(i)));
  }
  for (size_t i = 0; i < static_cast<size_t>(HistogramId::kHistogramIdCount);
       ++i) {
    names.emplace_back(MetricsRegistry::Name(static_cast<HistogramId>(i)));
  }
  for (const std::string& name : names) EXPECT_FALSE(name.empty());
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

// The per-call work an engine does must not depend on the thread count:
// ModifyBothBatch warms the reverse-skyline and safe-region caches before
// fanning out, so the R*-tree node reads (and all other work counters) are
// identical whether the batch runs serially or on four workers.
TEST(MetricsEngineTest, BatchNodeReadsIndependentOfThreadCount) {
  const Point q = GenerateCarDb(2000, 424242).points[7];
  std::vector<size_t> whos;
  for (size_t i = 0; i < 24; ++i) whos.push_back(i * 37 % 2000);

  QueryStats per_thread_count[2];
  const size_t thread_counts[2] = {1, 4};
  for (size_t variant = 0; variant < 2; ++variant) {
    WhyNotEngineOptions options;
    options.num_threads = thread_counts[variant];
    WhyNotEngine engine(GenerateCarDb(2000, 424242), options);
    const std::vector<MwqResult> results = engine.ModifyBothBatch(whos, q);
    ASSERT_EQ(results.size(), whos.size());
    per_thread_count[variant] = engine.stats();
  }

  const QueryStats& serial = per_thread_count[0];
  const QueryStats& parallel = per_thread_count[1];
  EXPECT_GT(serial.rtree_node_reads, 0u);
  EXPECT_EQ(serial.rtree_node_reads, parallel.rtree_node_reads);
  EXPECT_EQ(serial.bbrs_heap_pops, parallel.bbrs_heap_pops);
  EXPECT_EQ(serial.bbrs_dominance_tests, parallel.bbrs_dominance_tests);
  EXPECT_EQ(serial.window_probes, parallel.window_probes);
  EXPECT_EQ(serial.candidates_generated, parallel.candidates_generated);
  EXPECT_EQ(serial.candidates_examined, parallel.candidates_examined);
  EXPECT_EQ(serial.engine_queries, 1u);
  EXPECT_EQ(parallel.engine_queries, 1u);
}

TEST(MetricsEngineTest, LastQueryStatsTracksSingleCall) {
  WhyNotEngine engine(GenerateCarDb(500, 777));
  const Point q = GenerateCarDb(500, 777).points[3];
  // wnrs-lint: allow-discard(only the stats ledger is under test)
  (void)engine.Explain(0, q);
  const QueryStats first = engine.last_query_stats();
  EXPECT_EQ(first.engine_queries, 1u);
  EXPECT_GT(first.rtree_node_reads, 0u);
  // wnrs-lint: allow-discard(only the stats ledger is under test)
  (void)engine.Explain(1, q);
  EXPECT_EQ(engine.stats().engine_queries, 2u);
  EXPECT_EQ(engine.last_query_stats().engine_queries, 1u);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().engine_queries, 0u);
}

}  // namespace
}  // namespace wnrs
