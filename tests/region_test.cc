#include "geometry/region.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wnrs {
namespace {

Rectangle Rect(double x0, double y0, double x1, double y1) {
  return Rectangle(Point({x0, y0}), Point({x1, y1}));
}

TEST(RectRegionTest, AddDropsEmptyRectangles) {
  RectRegion region;
  region.Add(Rect(2, 2, 1, 1));  // Empty (lo > hi).
  EXPECT_TRUE(region.empty());
  region.Add(Rect(0, 0, 1, 1));
  EXPECT_EQ(region.size(), 1u);
}

TEST(RectRegionTest, ContainsAnyConstituent) {
  RectRegion region({Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)});
  EXPECT_TRUE(region.Contains(Point({0.5, 0.5})));
  EXPECT_TRUE(region.Contains(Point({6, 6})));
  EXPECT_FALSE(region.Contains(Point({3, 3})));
}

TEST(RectRegionTest, IntersectPairwise) {
  RectRegion a({Rect(0, 0, 2, 2), Rect(4, 0, 6, 2)});
  RectRegion b({Rect(1, 1, 5, 3)});
  RectRegion inter = a.Intersect(b);
  EXPECT_EQ(inter.size(), 2u);
  EXPECT_TRUE(inter.Contains(Point({1.5, 1.5})));
  EXPECT_TRUE(inter.Contains(Point({4.5, 1.5})));
  EXPECT_FALSE(inter.Contains(Point({3, 1.5})));
}

TEST(RectRegionTest, IntersectWithDisjointIsEmpty) {
  RectRegion a({Rect(0, 0, 1, 1)});
  RectRegion b({Rect(5, 5, 6, 6)});
  EXPECT_TRUE(a.Intersect(b).empty());
}

TEST(RectRegionTest, PruneContainedRemovesNestedAndDuplicates) {
  RectRegion region({Rect(0, 0, 4, 4), Rect(1, 1, 2, 2), Rect(0, 0, 4, 4)});
  region.PruneContained();
  EXPECT_EQ(region.size(), 1u);
  EXPECT_EQ(region.rects().front(), Rect(0, 0, 4, 4));
}

TEST(RectRegionTest, PruneKeepsPartialOverlaps) {
  RectRegion region({Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)});
  region.PruneContained();
  EXPECT_EQ(region.size(), 2u);
}

TEST(RectRegionTest, UnionVolumeDisjoint) {
  RectRegion region({Rect(0, 0, 1, 1), Rect(2, 2, 4, 3)});
  EXPECT_DOUBLE_EQ(region.UnionVolume(), 3.0);
}

TEST(RectRegionTest, UnionVolumeCountsOverlapOnce) {
  RectRegion region({Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)});
  EXPECT_DOUBLE_EQ(region.UnionVolume(), 7.0);
}

TEST(RectRegionTest, UnionVolumeNestedEqualsOuter) {
  RectRegion region({Rect(0, 0, 4, 4), Rect(1, 1, 2, 2)});
  EXPECT_DOUBLE_EQ(region.UnionVolume(), 16.0);
}

TEST(RectRegionTest, UnionVolume3D) {
  RectRegion region({Rectangle(Point({0, 0, 0}), Point({2, 2, 2})),
                     Rectangle(Point({1, 1, 1}), Point({3, 3, 3}))});
  // 8 + 8 - 1 overlap.
  EXPECT_DOUBLE_EQ(region.UnionVolume(), 15.0);
}

TEST(RectRegionTest, UnionVolumeMonteCarloAgreement) {
  // Property: exact sweep volume matches Monte Carlo estimation on random
  // rectangle soup.
  Rng rng(99);
  RectRegion region;
  for (int i = 0; i < 12; ++i) {
    const double x0 = rng.NextDouble(0, 8);
    const double y0 = rng.NextDouble(0, 8);
    region.Add(Rect(x0, y0, x0 + rng.NextDouble(0.5, 3),
                    y0 + rng.NextDouble(0.5, 3)));
  }
  const double exact = region.UnionVolume();
  int hits = 0;
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    Point p({rng.NextDouble(0, 11), rng.NextDouble(0, 11)});
    if (region.Contains(p)) ++hits;
  }
  const double mc = 11.0 * 11.0 * hits / samples;
  EXPECT_NEAR(exact, mc, 0.05 * 11 * 11);
}

TEST(RectRegionTest, BoundingBox) {
  RectRegion region({Rect(0, 0, 1, 1), Rect(4, -2, 5, 0)});
  const Rectangle box = region.BoundingBox();
  EXPECT_EQ(box.lo(), Point({0, -2}));
  EXPECT_EQ(box.hi(), Point({5, 1}));
  EXPECT_TRUE(RectRegion().BoundingBox().IsEmpty());
}

TEST(RectRegionTest, NearestPointPicksClosestRect) {
  RectRegion region({Rect(0, 0, 1, 1), Rect(10, 0, 11, 1)});
  double dist = -1.0;
  const Point near = region.NearestPointTo(Point({9, 0.5}), &dist);
  EXPECT_EQ(near, Point({10, 0.5}));
  EXPECT_DOUBLE_EQ(dist, 1.0);
  // Inside a rect: distance 0, identity point.
  const Point inside = region.NearestPointTo(Point({0.5, 0.5}), &dist);
  EXPECT_EQ(inside, Point({0.5, 0.5}));
  EXPECT_DOUBLE_EQ(dist, 0.0);
}

TEST(RectRegionTest, ClipTo) {
  RectRegion region({Rect(0, 0, 4, 4), Rect(10, 10, 12, 12)});
  region.ClipTo(Rect(2, 2, 8, 8));
  EXPECT_EQ(region.size(), 1u);
  EXPECT_EQ(region.rects().front(), Rect(2, 2, 4, 4));
}

TEST(RectRegionTest, CanonicalizePreservesMembership) {
  Rng rng(17);
  RectRegion region;
  for (int i = 0; i < 25; ++i) {
    const double x0 = rng.NextDouble(0, 8);
    const double y0 = rng.NextDouble(0, 8);
    region.Add(Rect(x0, y0, x0 + rng.NextDouble(0.2, 4),
                    y0 + rng.NextDouble(0.2, 4)));
  }
  RectRegion canonical = region;
  canonical.Canonicalize();
  // A disjoint decomposition of overlapping soup may have more pieces
  // than the overlapping form (its payoff is collapsing the redundancy of
  // iterated intersections), but it is bounded by the slab grid.
  EXPECT_LE(canonical.size(), region.size() * region.size());
  EXPECT_NEAR(canonical.UnionVolume(), region.UnionVolume(), 1e-9);
  for (int s = 0; s < 20000; ++s) {
    const Point p({rng.NextDouble(-0.5, 12.5), rng.NextDouble(-0.5, 12.5)});
    EXPECT_EQ(canonical.Contains(p), region.Contains(p)) << p.ToString();
  }
}

TEST(RectRegionTest, CanonicalizeProducesDisjointInteriors) {
  Rng rng(18);
  RectRegion region;
  for (int i = 0; i < 15; ++i) {
    const double x0 = rng.NextDouble(0, 5);
    const double y0 = rng.NextDouble(0, 5);
    region.Add(Rect(x0, y0, x0 + rng.NextDouble(0.5, 3),
                    y0 + rng.NextDouble(0.5, 3)));
  }
  region.Canonicalize();
  const auto& rects = region.rects();
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      EXPECT_LE(rects[i].OverlapVolume(rects[j]), 1e-12)
          << rects[i].ToString() << " overlaps " << rects[j].ToString();
    }
  }
}

TEST(RectRegionTest, CanonicalizeKeepsUncoveredDegenerateRects) {
  RectRegion region({Rect(0, 0, 2, 2), Rect(5, 5, 5, 8),  // Line segment.
                     Rect(1, 1, 1, 1.5)});                // Covered segment.
  region.Canonicalize();
  EXPECT_TRUE(region.Contains(Point({5, 7})));   // Segment preserved.
  EXPECT_TRUE(region.Contains(Point({1, 1.2})));
  EXPECT_FALSE(region.Contains(Point({5, 9})));
  EXPECT_EQ(region.size(), 2u);  // Covered degenerate pruned.
}

TEST(RectRegionTest, CanonicalizeMergesAdjacentSlabs) {
  // Two side-by-side rectangles with identical y-structure collapse to
  // one.
  RectRegion region({Rect(0, 0, 1, 3), Rect(1, 0, 2, 3)});
  region.Canonicalize();
  ASSERT_EQ(region.size(), 1u);
  EXPECT_EQ(region.rects().front(), Rect(0, 0, 2, 3));
}

TEST(RectRegionTest, CanonicalizeEmptyAndSingle) {
  RectRegion empty;
  empty.Canonicalize();
  EXPECT_TRUE(empty.empty());
  RectRegion one({Rect(0, 0, 1, 1)});
  one.Canonicalize();
  EXPECT_EQ(one.size(), 1u);
}

TEST(RectRegionTest, Canonicalize3DFallsBackToPrune) {
  RectRegion region({Rectangle(Point({0, 0, 0}), Point({4, 4, 4})),
                     Rectangle(Point({1, 1, 1}), Point({2, 2, 2}))});
  region.Canonicalize();
  EXPECT_EQ(region.size(), 1u);
}

TEST(RectRegionTest, IntersectIsCommutativeOnMembership) {
  Rng rng(5);
  RectRegion a;
  RectRegion b;
  for (int i = 0; i < 6; ++i) {
    double x0 = rng.NextDouble(0, 5);
    double y0 = rng.NextDouble(0, 5);
    a.Add(Rect(x0, y0, x0 + rng.NextDouble(0, 3), y0 + rng.NextDouble(0, 3)));
    x0 = rng.NextDouble(0, 5);
    y0 = rng.NextDouble(0, 5);
    b.Add(Rect(x0, y0, x0 + rng.NextDouble(0, 3), y0 + rng.NextDouble(0, 3)));
  }
  const RectRegion ab = a.Intersect(b);
  const RectRegion ba = b.Intersect(a);
  for (int s = 0; s < 5000; ++s) {
    const Point p({rng.NextDouble(0, 8), rng.NextDouble(0, 8)});
    EXPECT_EQ(ab.Contains(p), ba.Contains(p)) << p.ToString();
    // Membership in the intersection == membership in both inputs.
    EXPECT_EQ(ab.Contains(p), a.Contains(p) && b.Contains(p))
        << p.ToString();
  }
}

}  // namespace
}  // namespace wnrs
