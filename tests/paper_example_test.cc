// Integration tests pinning every worked number in the paper's running
// example (Figs. 1-13 and the Section IV/V examples): the car relation of
// Fig. 1(a) with query q(8.5K, 55K).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "data/generators.h"
#include "geometry/transform.h"
#include "index/bulk_load.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/naive.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bnl.h"
#include "skyline/dynamic.h"

namespace wnrs {
namespace {

// Point indices in PaperExampleDataset(): pt1 = 0, ..., pt8 = 7.
constexpr size_t kPt1 = 0;
constexpr size_t kPt2 = 1;
constexpr size_t kPt3 = 2;
constexpr size_t kPt4 = 3;
constexpr size_t kPt5 = 4;
constexpr size_t kPt6 = 5;
constexpr size_t kPt7 = 6;
constexpr size_t kPt8 = 7;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : data_(PaperExampleDataset()),
        q_(PaperExampleQuery()),
        engine_(PaperExampleDataset()) {}

  Dataset data_;
  Point q_;
  WhyNotEngine engine_;
};

TEST_F(PaperExampleTest, StaticSkylineIsPt1Pt3Pt5) {
  // Fig. 1(b): SK = {p1, p3, p5}.
  const std::vector<size_t> sk = SkylineIndicesBnl(data_.points);
  EXPECT_EQ(sk, (std::vector<size_t>{kPt1, kPt3, kPt5}));
}

TEST_F(PaperExampleTest, DynamicSkylineOfQIsPt2Pt6) {
  // Fig. 2(a): DSL(q) = {p2, p6}.
  const std::vector<size_t> dsl = DynamicSkylineIndices(data_.points, q_);
  EXPECT_EQ(dsl, (std::vector<size_t>{kPt2, kPt6}));
}

TEST_F(PaperExampleTest, DynamicSkylineOfC2ContainsP1P4P6) {
  // Section I: with pt2 as customer c2 and the others as products,
  // DSL(c2) = {p1, p4, p6}.
  const Point c2 = data_.points[kPt2];
  const std::vector<size_t> dsl =
      DynamicSkylineIndices(data_.points, c2, /*exclude_index=*/kPt2);
  EXPECT_EQ(dsl, (std::vector<size_t>{kPt1, kPt4, kPt6}));
}

TEST_F(PaperExampleTest, QEntersDynamicSkylineOfC2) {
  // Fig. 2(b): q is in the dynamic skyline of c2.
  const Point c2 = data_.points[kPt2];
  EXPECT_TRUE(InDynamicSkyline(data_.points, c2, q_, kPt2));
}

TEST_F(PaperExampleTest, WindowQueryOfC2IsEmptyAndOfC1ReturnsP2) {
  // Fig. 4: window_query(c2, q) = {} and window_query(c1, q) = {p2}.
  RStarTree tree = BulkLoadPoints(2, data_.points);
  EXPECT_TRUE(WindowQuery(tree, data_.points[kPt2], q_, kPt2).empty());
  const std::vector<RStarTree::Id> lambda =
      WindowQuery(tree, data_.points[kPt1], q_, kPt1);
  EXPECT_EQ(lambda, (std::vector<RStarTree::Id>{kPt2}));
}

TEST_F(PaperExampleTest, ReverseSkylineOfQ) {
  // Section V-B example: RSL(q) = {c2, c3, c4, c6, c8}.
  const std::vector<size_t> expected = {kPt2, kPt3, kPt4, kPt6, kPt8};
  EXPECT_EQ(engine_.ReverseSkyline(q_), expected);

  // Naive and BBRS agree.
  RStarTree tree = BulkLoadPoints(2, data_.points);
  EXPECT_EQ(ReverseSkylineNaive(tree, data_.points, q_,
                                /*shared_relation=*/true),
            expected);
  const std::vector<RStarTree::Id> bbrs = BbrsReverseSkyline(tree, q_);
  EXPECT_EQ(bbrs, (std::vector<RStarTree::Id>{kPt2, kPt3, kPt4, kPt6,
                                              kPt8}));
}

TEST_F(PaperExampleTest, ExplainWhyNotC1BlamesP2) {
  // Section III, aspect 1: "c1 finds p2 more interesting than q".
  const WhyNotExplanation ex = engine_.Explain(kPt1, q_);
  EXPECT_FALSE(ex.already_member);
  EXPECT_EQ(ex.culprits, (std::vector<RStarTree::Id>{kPt2}));
  EXPECT_EQ(ex.frontier, (std::vector<RStarTree::Id>{kPt2}));
}

TEST_F(PaperExampleTest, MwpMovesC1ToThePaperLocations) {
  // Section IV example: c1* in {(5K, 48.5K), (8K, 30K)}.
  const MwpResult result = engine_.ModifyWhyNot(kPt1, q_);
  EXPECT_FALSE(result.already_member);
  ASSERT_EQ(result.candidates.size(), 2u);
  std::vector<Point> locations;
  for (const Candidate& c : result.candidates) locations.push_back(c.point);
  std::sort(locations.begin(), locations.end());
  EXPECT_TRUE(locations[0].ApproxEquals(Point({5.0, 48.5})))
      << locations[0].ToString();
  EXPECT_TRUE(locations[1].ApproxEquals(Point({8.0, 30.0})))
      << locations[1].ToString();
}

TEST_F(PaperExampleTest, MwpCandidatesNudgeToStrictMembership) {
  const MwpResult result = engine_.ModifyWhyNot(kPt1, q_);
  for (const Candidate& cand : result.candidates) {
    const std::optional<Point> strict =
        engine_.NudgeToStrictMember(cand.point, q_, kPt1);
    ASSERT_TRUE(strict.has_value()) << cand.point.ToString();
  }
}

TEST_F(PaperExampleTest, MqpMovesQToThePaperLocations) {
  // Section V-A example: q* in {(8.5K, 42K), (7.5K, 55K)}.
  const MqpResult result = engine_.ModifyQuery(kPt1, q_);
  EXPECT_FALSE(result.already_member);
  ASSERT_EQ(result.candidates.size(), 2u);
  std::vector<Point> locations;
  for (const Candidate& c : result.candidates) locations.push_back(c.point);
  std::sort(locations.begin(), locations.end());
  EXPECT_TRUE(locations[0].ApproxEquals(Point({7.5, 55.0})))
      << locations[0].ToString();
  EXPECT_TRUE(locations[1].ApproxEquals(Point({8.5, 42.0})))
      << locations[1].ToString();
}

TEST_F(PaperExampleTest, SafeRegionCoversThePaperRectanglesTightly) {
  // Section V-B example: the paper reports SR(q) = {(7.5,50)-(10,58)} +
  // {(7.5,50)-(12.5,54)}. Its first rectangle is sub-optimal: q* = (9,65)
  // provably keeps all five reverse-skyline customers (hand-verified, and
  // property-checked by SafeRegionKeepsEveryReverseSkylinePoint below),
  // yet lies outside the paper's region. Our merged-rectangle
  // construction yields the tight region {(7.5,50)-(10,70)} +
  // {(7.5,50)-(12.5,54)}, a strict superset of the paper's. See
  // EXPERIMENTS.md.
  const SafeRegionResult& sr = engine_.SafeRegion(q_);
  EXPECT_FALSE(sr.truncated);
  EXPECT_EQ(sr.customers_processed, 5u);

  // q stays inside its own safe region (Lemma 2).
  EXPECT_TRUE(sr.region.Contains(q_));

  // Superset of the paper's published region (sampled corners/centers).
  for (const Rectangle& paper_rect :
       {Rectangle(Point({7.5, 50.0}), Point({10.0, 58.0})),
        Rectangle(Point({7.5, 50.0}), Point({12.5, 54.0}))}) {
    EXPECT_TRUE(sr.region.Contains(paper_rect.lo()));
    EXPECT_TRUE(sr.region.Contains(paper_rect.hi()));
    EXPECT_TRUE(sr.region.Contains(paper_rect.Center()));
  }

  std::vector<Rectangle> rects = sr.region.rects();
  ASSERT_EQ(rects.size(), 2u);
  std::sort(rects.begin(), rects.end(),
            [](const Rectangle& a, const Rectangle& b) {
              return a.hi() < b.hi();
            });
  EXPECT_TRUE(rects[0].lo().ApproxEquals(Point({7.5, 50.0})))
      << rects[0].ToString();
  EXPECT_TRUE(rects[0].hi().ApproxEquals(Point({10.0, 70.0})))
      << rects[0].ToString();
  EXPECT_TRUE(rects[1].lo().ApproxEquals(Point({7.5, 50.0})))
      << rects[1].ToString();
  EXPECT_TRUE(rects[1].hi().ApproxEquals(Point({12.5, 54.0})))
      << rects[1].ToString();

  // The region boundary is genuinely tight: just past the top of the
  // first rectangle, customer c6 is lost.
  EXPECT_FALSE(engine_.IsReverseSkylineMember(kPt6, Point({9.0, 70.5})));
}

TEST_F(PaperExampleTest, SafeRegionKeepsEveryReverseSkylinePoint) {
  // Definition 7: moving q anywhere within SR(q) keeps RSL(q).
  const SafeRegionResult& sr = engine_.SafeRegion(q_);
  const std::vector<size_t> before = engine_.ReverseSkyline(q_);
  // Probe a grid of locations inside each safe rectangle.
  for (const Rectangle& rect : sr.region.rects()) {
    for (double fx : {0.25, 0.5, 0.75}) {
      for (double fy : {0.25, 0.5, 0.75}) {
        Point q_star({rect.lo()[0] + fx * (rect.hi()[0] - rect.lo()[0]),
                      rect.lo()[1] + fy * (rect.hi()[1] - rect.lo()[1])});
        for (size_t c : before) {
          EXPECT_TRUE(engine_.IsReverseSkylineMember(c, q_star))
              << "lost customer " << c << " at " << q_star.ToString();
        }
      }
    }
  }
}

TEST_F(PaperExampleTest, DdrBarOfC7MatchesTheMergedRectangles) {
  // Section V-B example: three of the paper's four DDR̄(c7) rectangles
  // come from successive-pair merges; we verify those exactly.
  // (See DESIGN.md §3 for the documented inconsistency around the
  // fourth.)
  const Point c7 = data_.points[kPt7];
  const std::vector<size_t> dsl =
      DynamicSkylineIndices(data_.points, c7, kPt7);
  // DSL(c7) = {p3, p5, p6, p8} (transformed).
  EXPECT_EQ(dsl, (std::vector<size_t>{kPt3, kPt5, kPt6, kPt8}));
}

TEST_F(PaperExampleTest, MwqCaseC1ForC7MovesQOnly) {
  // Section V-B example: DDR̄(c7) overlaps SR(q); overlap =
  // {(7.5,60)-(10,70)} and the new q is (8.5, 60).
  const MwqResult result = engine_.ModifyBoth(kPt7, q_);
  EXPECT_FALSE(result.already_member);
  EXPECT_TRUE(result.overlap);
  EXPECT_EQ(result.best_cost, 0.0);
  ASSERT_FALSE(result.query_candidates.empty());
  // The paper's (8.5, 60) lies on the closed boundary of the overlap;
  // the engine returns it nudged into the interior for strict membership.
  EXPECT_TRUE(result.query_candidates.front().point.ApproxEquals(
      Point({8.5, 60.0}), 1e-4))
      << result.query_candidates.front().point.ToString();
  EXPECT_TRUE(result.why_not_candidates.empty());
  // The returned location is a strict member: moving q there really makes
  // c7 a reverse-skyline customer.
  EXPECT_TRUE(engine_.IsReverseSkylineMember(
      kPt7, result.query_candidates.front().point));
}

TEST_F(PaperExampleTest, MwqCaseC2ForC1MovesQToSafeCornerAndMovesC1) {
  // Section V-B example: DDR̄(c1) misses SR(q); the best corner is
  // q* = (7.5, 50).
  const MwqResult result = engine_.ModifyBoth(kPt1, q_);
  EXPECT_FALSE(result.already_member);
  EXPECT_FALSE(result.overlap);
  ASSERT_FALSE(result.query_candidates.empty());
  // (Corners are nudged a hair into the safe-rectangle interior.)
  EXPECT_TRUE(result.query_candidates.front().point.ApproxEquals(
      Point({7.5, 50.0}), 1e-6))
      << result.query_candidates.front().point.ToString();
  ASSERT_FALSE(result.why_not_candidates.empty());
  EXPECT_GT(result.best_cost, 0.0);
  // MWQ never costs more than MWP (Section VI-A.1).
  const MwpResult mwp = engine_.ModifyWhyNot(kPt1, q_);
  ASSERT_FALSE(mwp.candidates.empty());
  EXPECT_LE(result.best_cost, mwp.candidates.front().cost + 1e-12);
}

}  // namespace
}  // namespace wnrs
