#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/generators.h"
#include "storage/crc32.h"
#include "storage/engine_store.h"
#include "storage/file_io.h"

namespace wnrs {
namespace {

/// Engine bundle round-trip: an engine reopened from disk must answer
/// every query bit-identically to the engine it was saved from — MWP,
/// MQP, MWQ, reverse skylines, and safe regions, through both the mmap
/// and the buffered slab path. This is the contract the persistence CI
/// job re-proves across processes.
class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& d : dirs_) {
      for (const char* f :
           {storage::kBundleDataFile, storage::kBundleTreeFile,
            storage::kBundleCustomerTreeFile, storage::kBundlePackedFile,
            storage::kBundlePackedCustomerFile}) {
        std::remove((d + "/" + f).c_str());
      }
      std::remove(d.c_str());
    }
  }
  std::string Dir(const std::string& name) {
    dirs_.push_back(::testing::TempDir() + "/" + name);
    return dirs_.back();
  }
  std::vector<std::string> dirs_;
};

void ExpectCandidatesIdentical(const std::vector<Candidate>& a,
                               const std::vector<Candidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point, b[i].point);
    EXPECT_EQ(a[i].cost, b[i].cost);  // Bit-identical, not approximate.
  }
}

/// Drives the same query set against both engines and requires
/// bit-identical answers (the acceptance bar of the storage backend).
void ExpectEnginesAnswerIdentically(const WhyNotEngine& original,
                                    const WhyNotEngine& reopened,
                                    const std::vector<Point>& queries,
                                    const std::vector<size_t>& whos) {
  ASSERT_EQ(original.products().size(), reopened.products().size());
  ASSERT_EQ(original.customers().size(), reopened.customers().size());
  ASSERT_EQ(original.shared_relation(), reopened.shared_relation());
  ASSERT_EQ(original.universe(), reopened.universe());
  for (const Point& q : queries) {
    SCOPED_TRACE(q.ToString());
    EXPECT_EQ(original.ReverseSkyline(q), reopened.ReverseSkyline(q));

    const SafeRegionResult& sr_a = original.SafeRegion(q);
    const SafeRegionResult& sr_b = reopened.SafeRegion(q);
    ASSERT_EQ(sr_a.region.rects().size(), sr_b.region.rects().size());
    for (size_t i = 0; i < sr_a.region.rects().size(); ++i) {
      EXPECT_EQ(sr_a.region.rects()[i], sr_b.region.rects()[i]);
    }
    EXPECT_EQ(sr_a.truncated, sr_b.truncated);

    for (size_t c : whos) {
      SCOPED_TRACE(c);
      const MwpResult mwp_a = original.ModifyWhyNot(c, q);
      const MwpResult mwp_b = reopened.ModifyWhyNot(c, q);
      EXPECT_EQ(mwp_a.already_member, mwp_b.already_member);
      EXPECT_EQ(mwp_a.culprits, mwp_b.culprits);
      ExpectCandidatesIdentical(mwp_a.candidates, mwp_b.candidates);

      const MqpResult mqp_a = original.ModifyQuery(c, q);
      const MqpResult mqp_b = reopened.ModifyQuery(c, q);
      EXPECT_EQ(mqp_a.already_member, mqp_b.already_member);
      EXPECT_EQ(mqp_a.culprits, mqp_b.culprits);
      ExpectCandidatesIdentical(mqp_a.candidates, mqp_b.candidates);

      const MwqResult mwq_a = original.ModifyBoth(c, q);
      const MwqResult mwq_b = reopened.ModifyBoth(c, q);
      EXPECT_EQ(mwq_a.already_member, mwq_b.already_member);
      EXPECT_EQ(mwq_a.overlap, mwq_b.overlap);
      EXPECT_EQ(mwq_a.best_cost, mwq_b.best_cost);
      ExpectCandidatesIdentical(mwq_a.query_candidates,
                                mwq_b.query_candidates);
      ExpectCandidatesIdentical(mwq_a.why_not_candidates,
                                mwq_b.why_not_candidates);
    }
  }
}

std::vector<Point> CarDbQueries() {
  return {Point({14000, 70000}), Point({30000, 30000}),
          Point({8000, 150000}), Point({45000, 10000})};
}

TEST_F(PersistenceTest, SharedRelationRoundTripsAt10k) {
  // The acceptance-bar dataset size: >= 10k products.
  const Dataset ds = GenerateCarDb(10000, 301);
  WhyNotEngineOptions options;
  const WhyNotEngine original(ds, options);
  const std::string dir = Dir("bundle10k");
  ASSERT_TRUE(original.Save(dir).ok());

  // Both slab paths must agree with the in-memory engine.
  for (bool mmap_packed : {true, false}) {
    SCOPED_TRACE(mmap_packed ? "mmap" : "buffered");
    WhyNotEngineOptions open_options;
    open_options.storage.mmap_packed = mmap_packed;
    Result<std::unique_ptr<WhyNotEngine>> reopened =
        WhyNotEngine::Open(dir, open_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectEnginesAnswerIdentically(original, **reopened, CarDbQueries(),
                                   {3, 77, 4321, 9999});
  }
}

TEST_F(PersistenceTest, BichromaticRoundTrips) {
  const Dataset products = GenerateUniform(3000, 2, 302);
  Dataset customers = GenerateUniform(800, 2, 303);
  const WhyNotEngine original(products, customers, {});
  const std::string dir = Dir("bichromatic");
  ASSERT_TRUE(original.Save(dir).ok());

  Result<std::unique_ptr<WhyNotEngine>> reopened = WhyNotEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const std::vector<Point> queries = {Point({0.3, 0.4}), Point({0.8, 0.1})};
  ExpectEnginesAnswerIdentically(original, **reopened, queries,
                                 {0, 200, 799});
}

TEST_F(PersistenceTest, MutatedEngineRoundTripsTombstonesAndUniverse) {
  const Dataset ds = GenerateCarDb(2000, 304);
  WhyNotEngine original(ds, WhyNotEngineOptions{});
  // Mutate: remove a few products, add one OUTSIDE the original bounds so
  // the persisted universe (and with it the cost model) must come from
  // the bundle, not from a recomputation over the points.
  ASSERT_TRUE(original.RemoveProduct(10));
  ASSERT_TRUE(original.RemoveProduct(1234));
  const size_t added = original.AddProduct(Point({99000.0, 500000.0}));
  EXPECT_EQ(added, 2000u);

  const std::string dir = Dir("mutated");
  ASSERT_TRUE(original.Save(dir).ok());
  Result<std::unique_ptr<WhyNotEngine>> reopened = WhyNotEngine::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  EXPECT_FALSE((*reopened)->IsLiveProduct(10));
  EXPECT_FALSE((*reopened)->IsLiveProduct(1234));
  EXPECT_TRUE((*reopened)->IsLiveProduct(2000));
  EXPECT_EQ(original.universe(), (*reopened)->universe());
  ExpectEnginesAnswerIdentically(original, **reopened, CarDbQueries(),
                                 {3, 500, 2000});

  // The reopened engine keeps mutating correctly.
  ASSERT_TRUE((*reopened)->TryRemoveProduct(2000).ok());
  EXPECT_FALSE((*reopened)->IsLiveProduct(2000));
}

TEST_F(PersistenceTest, OpenWithoutPackedPathRefreezesOnDemand) {
  const Dataset ds = GenerateCarDb(1500, 305);
  WhyNotEngineOptions no_packed;
  no_packed.use_packed_read_path = false;
  const WhyNotEngine original(ds, no_packed);
  const std::string dir = Dir("nopacked");
  ASSERT_TRUE(original.Save(dir).ok());
  // The bundle has no slab; opening with the packed path on re-freezes
  // from the loaded dynamic tree.
  EXPECT_FALSE(
      storage::FileExists(dir + "/" + storage::kBundlePackedFile));
  WhyNotEngineOptions packed;
  packed.use_packed_read_path = true;
  Result<std::unique_ptr<WhyNotEngine>> reopened =
      WhyNotEngine::Open(dir, packed);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectEnginesAnswerIdentically(original, **reopened, CarDbQueries(),
                                 {42, 999});
}

TEST_F(PersistenceTest, ParanoidChecksPassOnReopenedEngine) {
  const Dataset ds = GenerateCarDb(1200, 306);
  WhyNotEngineOptions options;
  options.paranoid_checks = true;
  const WhyNotEngine original(ds, options);
  const std::string dir = Dir("paranoid");
  ASSERT_TRUE(original.Save(dir).ok());
  Result<std::unique_ptr<WhyNotEngine>> reopened =
      WhyNotEngine::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Point q({14000, 70000});
  EXPECT_EQ(original.ReverseSkyline(q), (*reopened)->ReverseSkyline(q));
}

TEST_F(PersistenceTest, RejectsCorruptBundles) {
  const Dataset ds = GenerateUniform(400, 2, 307);
  const WhyNotEngine original(ds, WhyNotEngineOptions{});
  const std::string dir = Dir("corrupt");
  ASSERT_TRUE(original.Save(dir).ok());

  // Missing directory / missing files.
  EXPECT_FALSE(WhyNotEngine::Open("/nonexistent/bundle").ok());

  const std::string data_path =
      dir + "/" + std::string(storage::kBundleDataFile);
  std::string bytes;
  ASSERT_TRUE(storage::ReadFileToString(data_path, &bytes).ok());

  // Flipped byte in the payload: [data-crc].
  std::string bad = bytes;
  bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x11);
  ASSERT_TRUE(storage::WriteStringToFile(data_path, bad).ok());
  Result<std::unique_ptr<WhyNotEngine>> r = WhyNotEngine::Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("[data-crc]"), std::string::npos)
      << r.status().ToString();

  // Trailing garbage after the payload: [trailing-bytes] (the CRC is
  // position-checked, so appending also breaks it — seed the specific
  // case through LoadBundleData's own reader instead).
  ASSERT_TRUE(storage::WriteStringToFile(data_path, bytes).ok());

  // Slab/tree mismatch: replace the packed slab with one frozen from a
  // different engine — rejected by the parity validator, never served.
  const Dataset other = GenerateUniform(400, 2, 308);
  const WhyNotEngine decoy(other, WhyNotEngineOptions{});
  const std::string decoy_dir = Dir("decoy");
  ASSERT_TRUE(decoy.Save(decoy_dir).ok());
  std::string decoy_slab;
  ASSERT_TRUE(storage::ReadFileToString(
                  decoy_dir + "/" + storage::kBundlePackedFile, &decoy_slab)
                  .ok());
  ASSERT_TRUE(storage::WriteStringToFile(
                  dir + "/" + storage::kBundlePackedFile, decoy_slab)
                  .ok());
  r = WhyNotEngine::Open(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("[packed-parity]"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PersistenceTest, BundleDataFormatRejectsTrailingBytes) {
  storage::EngineBundleData data;
  data.shared_relation = true;
  data.products.dims = 2;
  data.products.points = {Point({1.0, 2.0}), Point({3.0, 4.0})};
  data.universe = Rectangle(Point({1.0, 2.0}), Point({3.0, 4.0}));
  const std::string dir = Dir("format");
  ASSERT_TRUE(storage::EnsureDirectory(dir).ok());
  const std::string path = dir + "/" + std::string(storage::kBundleDataFile);
  ASSERT_TRUE(storage::SaveBundleData(data, path).ok());
  Result<storage::EngineBundleData> ok = storage::LoadBundleData(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->products.points.size(), 2u);
  EXPECT_TRUE(ok->shared_relation);

  // Append bytes and re-stamp a valid CRC over the longer payload: the
  // reader must still refuse with [trailing-bytes], not silently accept.
  std::string bytes;
  ASSERT_TRUE(storage::ReadFileToString(path, &bytes).ok());
  std::string longer = bytes.substr(0, bytes.size() - 4);
  longer += std::string(6, '\x5A');
  const uint32_t crc = storage::Crc32(longer.data(), longer.size());
  longer.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(storage::WriteStringToFile(path, longer).ok());
  Result<storage::EngineBundleData> r = storage::LoadBundleData(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("[trailing-bytes]"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace wnrs
