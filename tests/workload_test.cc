#include "data/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/naive.h"

namespace wnrs {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : data_(GenerateCarDb(2000, 13)),
        tree_(BulkLoadPoints(2, data_.points)) {}

  RslFn MakeRslFn() {
    return [this](const Point& q) {
      return ReverseSkylineNaive(tree_, data_.points, q, true);
    };
  }

  Dataset data_;
  RStarTree tree_;
};

TEST_F(WorkloadTest, BucketsHaveRequestedRslSizes) {
  const auto queries =
      SampleQueriesByRslSize(data_, MakeRslFn(), 1, 8, 4000, 99);
  ASSERT_FALSE(queries.empty());
  std::set<size_t> seen;
  for (const WhyNotWorkloadQuery& wq : queries) {
    EXPECT_GE(wq.rsl.size(), 1u);
    EXPECT_LE(wq.rsl.size(), 8u);
    EXPECT_TRUE(seen.insert(wq.rsl.size()).second)
        << "duplicate bucket " << wq.rsl.size();
  }
  // Most buckets should be fillable on 2k points.
  EXPECT_GE(queries.size(), 4u);
}

TEST_F(WorkloadTest, RslMatchesOracle) {
  const auto queries =
      SampleQueriesByRslSize(data_, MakeRslFn(), 1, 5, 2000, 7);
  for (const WhyNotWorkloadQuery& wq : queries) {
    EXPECT_EQ(wq.rsl, ReverseSkylineNaive(tree_, data_.points, wq.q, true));
  }
}

TEST_F(WorkloadTest, WhyNotPointIsOutsideRsl) {
  const auto queries =
      SampleQueriesByRslSize(data_, MakeRslFn(), 1, 6, 2000, 17);
  for (const WhyNotWorkloadQuery& wq : queries) {
    EXPECT_EQ(std::find(wq.rsl.begin(), wq.rsl.end(), wq.why_not_index),
              wq.rsl.end());
    EXPECT_LT(wq.why_not_index, data_.points.size());
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  const auto a = SampleQueriesByRslSize(data_, MakeRslFn(), 1, 4, 1000, 3);
  const auto b = SampleQueriesByRslSize(data_, MakeRslFn(), 1, 4, 1000, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].q, b[i].q);
    EXPECT_EQ(a[i].rsl, b[i].rsl);
    EXPECT_EQ(a[i].why_not_index, b[i].why_not_index);
  }
}

TEST_F(WorkloadTest, RespectsAttemptBudget) {
  // A tiny budget fills few (possibly zero) buckets but must not loop
  // forever or crash.
  const auto queries =
      SampleQueriesByRslSize(data_, MakeRslFn(), 1, 15, 5, 3);
  EXPECT_LE(queries.size(), 5u);
}

}  // namespace
}  // namespace wnrs
