#include "geometry/svg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wnrs {
namespace {

Rectangle Viewport() { return Rectangle(Point({0, 0}), Point({10, 5})); }

TEST(SvgCanvasTest, HeaderFollowsViewportAspect) {
  SvgCanvas canvas(Viewport(), 800.0);
  const std::string svg = canvas.ToString();
  EXPECT_NE(svg.find("<svg "), std::string::npos);
  EXPECT_NE(svg.find("width=\"800\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"400\""), std::string::npos);  // 5/10 aspect.
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgCanvasTest, RectMapsDataToPixelsWithYFlip) {
  SvgCanvas canvas(Viewport(), 100.0);  // 10 px per data-x unit.
  canvas.AddRect(Rectangle(Point({1, 1}), Point({3, 2})), "#fff");
  const std::string svg = canvas.ToString();
  // x = 1 -> 10 px; rect top is data y=2 -> 50 - 2*10 = 30 px.
  EXPECT_NE(svg.find("<rect x=\"10.00\" y=\"30.00\" width=\"20.00\" "
                     "height=\"10.00\""),
            std::string::npos)
      << svg;
}

TEST(SvgCanvasTest, EmptyRectSkipped) {
  SvgCanvas canvas(Viewport());
  canvas.AddRect(Rectangle(Point({3, 3}), Point({1, 1})), "#fff");
  // Only the background rect is present.
  const std::string svg = canvas.ToString();
  size_t count = 0;
  for (size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SvgCanvasTest, RegionAndMarkers) {
  SvgCanvas canvas(Viewport());
  canvas.AddRegion(RectRegion({Rectangle(Point({0, 0}), Point({1, 1})),
                               Rectangle(Point({2, 2}), Point({3, 3}))}),
                   "#00ff00");
  canvas.AddPoint(Point({5, 2.5}), "#ff0000", 4.0, "q");
  canvas.AddText(Point({1, 1}), "hello");
  const std::string svg = canvas.ToString();
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find(">q</text>"), std::string::npos);
  EXPECT_NE(svg.find(">hello</text>"), std::string::npos);
}

TEST(SvgCanvasTest, WriteToRoundTrips) {
  const std::string path = ::testing::TempDir() + "/canvas.svg";
  SvgCanvas canvas(Viewport());
  canvas.AddPoint(Point({1, 1}), "#123456");
  ASSERT_TRUE(canvas.WriteTo(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), canvas.ToString());
  std::remove(path.c_str());
}

TEST(SvgCanvasTest, WriteToBadPathFails) {
  SvgCanvas canvas(Viewport());
  EXPECT_FALSE(canvas.WriteTo("/nonexistent/dir/x.svg").ok());
}

}  // namespace
}  // namespace wnrs
