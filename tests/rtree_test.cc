#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"

namespace wnrs {
namespace {

std::vector<Point> RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) p[i] = rng.NextDouble(0, 100);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<RStarTree::Id> BruteRange(const std::vector<Point>& points,
                                      const Rectangle& window) {
  std::vector<RStarTree::Id> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (window.Contains(points[i])) {
      out.push_back(static_cast<RStarTree::Id>(i));
    }
  }
  return out;
}

TEST(RTreeTest, FanOutFollowsPageSize) {
  RTreeOptions options;
  options.page_size_bytes = 1536;
  RStarTree tree(2, options);
  // 2-D entry = 4 doubles + 1 id = 40 bytes; (1536 - 16) / 40 = 38.
  EXPECT_EQ(tree.max_entries(), 38u);
  EXPECT_EQ(tree.min_entries(), 15u);
}

TEST(RTreeTest, EmptyTreeBehaves) {
  RStarTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.RangeQueryIds(Rectangle(Point({0, 0}), Point({1, 1})))
                  .empty());
  EXPECT_TRUE(tree.NearestNeighbors(Point({0, 0}), 3).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, InsertAndExactRangeQuery) {
  RStarTree tree(2);
  const std::vector<Point> points = RandomPoints(500, 2, 1);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  EXPECT_EQ(tree.size(), 500u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();

  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const double x0 = rng.NextDouble(0, 90);
    const double y0 = rng.NextDouble(0, 90);
    const Rectangle window(Point({x0, y0}),
                           Point({x0 + rng.NextDouble(1, 30),
                                  y0 + rng.NextDouble(1, 30)}));
    std::vector<RStarTree::Id> got = tree.RangeQueryIds(window);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(points, window));
  }
}

TEST(RTreeTest, RangeQueryEarlyTermination) {
  RStarTree tree(2);
  const std::vector<Point> points = RandomPoints(200, 2, 3);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  int visited = 0;
  tree.RangeQuery(Rectangle(Point({0, 0}), Point({100, 100})),
                  [&](const Rectangle&, RStarTree::Id) {
                    ++visited;
                    return visited < 5;
                  });
  EXPECT_EQ(visited, 5);
}

TEST(RTreeTest, AnyInRangeWithPredicate) {
  RStarTree tree(2);
  tree.Insert(Point({1, 1}), 0);
  tree.Insert(Point({2, 2}), 1);
  const Rectangle window(Point({0, 0}), Point({3, 3}));
  EXPECT_TRUE(tree.AnyInRange(window));
  EXPECT_TRUE(tree.AnyInRange(
      window, [](const Rectangle&, RStarTree::Id id) { return id == 1; }));
  EXPECT_FALSE(tree.AnyInRange(
      window, [](const Rectangle&, RStarTree::Id id) { return id == 9; }));
  EXPECT_FALSE(tree.AnyInRange(Rectangle(Point({5, 5}), Point({6, 6}))));
}

TEST(RTreeTest, NearestNeighborsMatchBruteForce) {
  RStarTree tree(2);
  const std::vector<Point> points = RandomPoints(300, 2, 4);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Point query({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    const auto got = tree.NearestNeighbors(query, 7);
    ASSERT_EQ(got.size(), 7u);
    // Brute-force distances.
    std::vector<double> dists;
    for (const Point& p : points) dists.push_back(p.L2Distance(query));
    std::sort(dists.begin(), dists.end());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_NEAR(got[k].second, dists[k], 1e-9);
    }
    // Results are sorted ascending.
    for (size_t k = 1; k < got.size(); ++k) {
      EXPECT_LE(got[k - 1].second, got[k].second);
    }
  }
}

TEST(RTreeTest, DeleteRemovesAndKeepsInvariants) {
  RStarTree tree(2);
  const std::vector<Point> points = RandomPoints(400, 2, 6);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  Rng rng(7);
  std::set<size_t> removed;
  for (int k = 0; k < 250; ++k) {
    size_t victim = rng.NextUint64(points.size());
    while (removed.count(victim) > 0) {
      victim = rng.NextUint64(points.size());
    }
    ASSERT_TRUE(tree.Delete(Rectangle::FromPoint(points[victim]),
                            static_cast<RStarTree::Id>(victim)));
    removed.insert(victim);
    if (k % 25 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok())
          << tree.CheckInvariants().ToString();
    }
  }
  EXPECT_EQ(tree.size(), points.size() - removed.size());
  // Remaining points still discoverable.
  const Rectangle all(Point({-1, -1}), Point({101, 101}));
  std::vector<RStarTree::Id> ids = tree.RangeQueryIds(all);
  EXPECT_EQ(ids.size(), points.size() - removed.size());
  for (RStarTree::Id id : ids) {
    EXPECT_EQ(removed.count(static_cast<size_t>(id)), 0u);
  }
}

TEST(RTreeTest, DeleteNonexistentReturnsFalse) {
  RStarTree tree(2);
  tree.Insert(Point({1, 1}), 0);
  EXPECT_FALSE(tree.Delete(Rectangle::FromPoint(Point({9, 9})), 0));
  EXPECT_FALSE(tree.Delete(Rectangle::FromPoint(Point({1, 1})), 5));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, DeleteToEmptyAndReuse) {
  RStarTree tree(2);
  for (int i = 0; i < 50; ++i) {
    tree.Insert(Point({static_cast<double>(i), 0.0}), i);
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Delete(
        Rectangle::FromPoint(Point({static_cast<double>(i), 0.0})), i));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // The tree is reusable after emptying.
  tree.Insert(Point({5, 5}), 99);
  EXPECT_EQ(tree.RangeQueryIds(Rectangle(Point({4, 4}), Point({6, 6}))),
            (std::vector<RStarTree::Id>{99}));
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RStarTree tree(2);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Point({1.0, 1.0}), i);
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.RangeQueryIds(Rectangle(Point({1, 1}), Point({1, 1})))
                .size(),
            100u);
}

TEST(RTreeTest, RectangleEntries) {
  RStarTree tree(2);
  tree.Insert(Rectangle(Point({0, 0}), Point({2, 2})), 0);
  tree.Insert(Rectangle(Point({5, 5}), Point({7, 7})), 1);
  EXPECT_EQ(tree.RangeQueryIds(Rectangle(Point({1, 1}), Point({6, 6})))
                .size(),
            2u);
  EXPECT_EQ(tree.RangeQueryIds(Rectangle(Point({3, 3}), Point({4, 4})))
                .size(),
            0u);
}

TEST(RTreeTest, MoveSemantics) {
  RStarTree tree(2);
  tree.Insert(Point({1, 1}), 7);
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.RangeQueryIds(Rectangle(Point({0, 0}), Point({2, 2}))),
            (std::vector<RStarTree::Id>{7}));
}

TEST(RTreeTest, StatsCountNodeReads) {
  RStarTree tree(2);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(Point({static_cast<double>(i % 37), std::floor(i / 37.0)}),
                i);
  }
  tree.ResetStats();
  tree.RangeQueryIds(Rectangle(Point({0, 0}), Point({1, 1})));
  EXPECT_GT(tree.stats().node_reads, 0u);
  const uint64_t after_one = tree.stats().node_reads;
  tree.RangeQueryIds(Rectangle(Point({0, 0}), Point({40, 40})));
  EXPECT_GT(tree.stats().node_reads, after_one);
}

class RTreeScaleTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeScaleTest, InvariantsAndQueriesAtScale) {
  const size_t n = GetParam();
  RStarTree tree(2);
  const std::vector<Point> points = RandomPoints(n, 2, 1000 + n);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  // Height grows logarithmically.
  EXPECT_LE(tree.height(),
            2 + static_cast<size_t>(std::log(static_cast<double>(n)) /
                                    std::log(double(tree.min_entries()))));
  Rng rng(n);
  for (int trial = 0; trial < 10; ++trial) {
    const double x0 = rng.NextDouble(0, 95);
    const double y0 = rng.NextDouble(0, 95);
    const Rectangle window(Point({x0, y0}), Point({x0 + 5, y0 + 5}));
    std::vector<RStarTree::Id> got = tree.RangeQueryIds(window);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(points, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeScaleTest,
                         ::testing::Values(10, 100, 1000, 5000));

class RTreeDimsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeDimsTest, WorksAcrossDimensionalities) {
  const size_t dims = GetParam();
  RStarTree tree(dims);
  const std::vector<Point> points = RandomPoints(300, dims, dims * 17);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  Point lo(dims);
  Point hi(dims);
  for (size_t i = 0; i < dims; ++i) {
    lo[i] = 20;
    hi[i] = 70;
  }
  const Rectangle window(lo, hi);
  std::vector<RStarTree::Id> got = tree.RangeQueryIds(window);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteRange(points, window));
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeDimsTest, ::testing::Values(1, 2, 3, 5));

class RTreePageSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreePageSizeTest, InvariantsForAllPageSizes) {
  RTreeOptions options;
  options.page_size_bytes = GetParam();
  RStarTree tree(2, options);
  const std::vector<Point> points = RandomPoints(1500, 2, GetParam());
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(
      tree.RangeQueryIds(Rectangle(Point({-1, -1}), Point({101, 101})))
          .size(),
      1500u);
}

INSTANTIATE_TEST_SUITE_P(PageSizes, RTreePageSizeTest,
                         ::testing::Values(256, 512, 1536, 4096, 16384));

}  // namespace
}  // namespace wnrs
