#include "index/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace wnrs {
namespace {

std::vector<Point> RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) p[i] = rng.NextDouble(0, 100);
    points.push_back(std::move(p));
  }
  return points;
}

TEST(BulkLoadTest, EmptyInput) {
  RStarTree tree = BulkLoadStr(2, {});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BulkLoadTest, SingleEntry) {
  RStarTree tree = BulkLoadPoints(2, {Point({1, 2})});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.RangeQueryIds(Rectangle(Point({0, 0}), Point({3, 3}))),
            (std::vector<RStarTree::Id>{0}));
}

class BulkLoadSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BulkLoadSizeTest, InvariantsAndCompleteness) {
  const size_t n = GetParam();
  const std::vector<Point> points = RandomPoints(n, 2, 42 + n);
  RStarTree tree = BulkLoadPoints(2, points);
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  // Every point is present under its own id.
  std::vector<RStarTree::Id> all =
      tree.RangeQueryIds(Rectangle(Point({-1, -1}), Point({101, 101})));
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(all[i], static_cast<RStarTree::Id>(i));
  }
}

// Sizes straddling node-capacity boundaries (max_entries = 38 for 2-D,
// 1536-byte pages) to exercise the remainder-balancing logic.
INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizeTest,
                         ::testing::Values(2, 37, 38, 39, 40, 75, 76, 77,
                                           1443, 1444, 1445, 20000));

TEST(BulkLoadTest, QueriesMatchInsertionBuiltTree) {
  const std::vector<Point> points = RandomPoints(3000, 2, 9);
  RStarTree bulk = BulkLoadPoints(2, points);
  RStarTree incremental(2);
  for (size_t i = 0; i < points.size(); ++i) {
    incremental.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    const double x0 = rng.NextDouble(0, 90);
    const double y0 = rng.NextDouble(0, 90);
    const Rectangle window(Point({x0, y0}),
                           Point({x0 + rng.NextDouble(1, 20),
                                  y0 + rng.NextDouble(1, 20)}));
    std::vector<RStarTree::Id> a = bulk.RangeQueryIds(window);
    std::vector<RStarTree::Id> b = incremental.RangeQueryIds(window);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(BulkLoadTest, BulkLoadedTreeSupportsMutation) {
  const std::vector<Point> points = RandomPoints(500, 2, 77);
  RStarTree tree = BulkLoadPoints(2, points);
  tree.Insert(Point({200, 200}), 999);
  EXPECT_EQ(tree.size(), 501u);
  EXPECT_TRUE(tree.Delete(Rectangle::FromPoint(points[0]), 0));
  EXPECT_EQ(tree.size(), 500u);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(BulkLoadTest, ThreeDimensional) {
  const std::vector<Point> points = RandomPoints(2000, 3, 5);
  RStarTree tree = BulkLoadPoints(3, points);
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), 2000u);
}

TEST(BulkLoadTest, BetterClusteredThanInsertion) {
  // STR packing should need no more node reads than insertion-built trees
  // for small windows (a smoke test of packing quality, not a strict
  // guarantee per query).
  const std::vector<Point> points = RandomPoints(5000, 2, 123);
  RStarTree bulk = BulkLoadPoints(2, points);
  RStarTree incremental(2);
  for (size_t i = 0; i < points.size(); ++i) {
    incremental.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  bulk.ResetStats();
  incremental.ResetStats();
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const double x0 = rng.NextDouble(0, 95);
    const double y0 = rng.NextDouble(0, 95);
    const Rectangle window(Point({x0, y0}), Point({x0 + 3, y0 + 3}));
    bulk.RangeQueryIds(window);
    incremental.RangeQueryIds(window);
  }
  EXPECT_LE(bulk.stats().node_reads, incremental.stats().node_reads * 2);
}

}  // namespace
}  // namespace wnrs
