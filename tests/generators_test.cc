#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wnrs {
namespace {

double Correlation(const std::vector<Point>& points) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(points.size());
  for (const Point& p : points) {
    sx += p[0];
    sy += p[1];
    sxx += p[0] * p[0];
    syy += p[1] * p[1];
    sxy += p[0] * p[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  return cov / std::sqrt(vx * vy);
}

TEST(GeneratorsTest, SizesAndDimsRespected) {
  EXPECT_EQ(GenerateUniform(100, 3, 1).points.size(), 100u);
  EXPECT_EQ(GenerateUniform(100, 3, 1).dims, 3u);
  EXPECT_EQ(GenerateCorrelated(50, 2, 1).points.size(), 50u);
  EXPECT_EQ(GenerateAnticorrelated(50, 4, 1).points.size(), 50u);
  EXPECT_EQ(GenerateClustered(50, 2, 1, 5, 0.05).points.size(), 50u);
  EXPECT_EQ(GenerateCarDb(50, 1).points.size(), 50u);
  EXPECT_EQ(GenerateCarDb(50, 1).dims, 2u);
}

TEST(GeneratorsTest, Deterministic) {
  const Dataset a = GenerateUniform(100, 2, 42);
  const Dataset b = GenerateUniform(100, 2, 42);
  EXPECT_EQ(a.points, b.points);
  const Dataset c = GenerateCarDb(100, 9);
  const Dataset d = GenerateCarDb(100, 9);
  EXPECT_EQ(c.points, d.points);
}

TEST(GeneratorsTest, SeedsChangeData) {
  EXPECT_FALSE(GenerateUniform(100, 2, 1).points ==
               GenerateUniform(100, 2, 2).points);
}

TEST(GeneratorsTest, UniformInUnitBox) {
  const Dataset ds = GenerateUniform(5000, 2, 3);
  for (const Point& p : ds.points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LT(p[0], 1.0);
    EXPECT_GE(p[1], 0.0);
    EXPECT_LT(p[1], 1.0);
  }
  // Near-zero correlation.
  EXPECT_NEAR(Correlation(ds.points), 0.0, 0.05);
}

TEST(GeneratorsTest, CorrelatedHasHighPositiveCorrelation) {
  const Dataset ds = GenerateCorrelated(5000, 2, 4);
  EXPECT_GT(Correlation(ds.points), 0.8);
}

TEST(GeneratorsTest, AnticorrelatedHasNegativeCorrelation) {
  const Dataset ds = GenerateAnticorrelated(5000, 2, 5);
  EXPECT_LT(Correlation(ds.points), -0.3);
  for (const Point& p : ds.points) {
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[0], 1.0);
  }
}

TEST(GeneratorsTest, CarDbRangesAndShape) {
  const Dataset ds = GenerateCarDb(20000, 6);
  double min_price = 1e18;
  double max_price = 0;
  double max_mileage = 0;
  for (const Point& p : ds.points) {
    min_price = std::min(min_price, p[0]);
    max_price = std::max(max_price, p[0]);
    max_mileage = std::max(max_mileage, p[1]);
    EXPECT_GE(p[1], 0.0);
  }
  EXPECT_GE(min_price, 500.0);
  EXPECT_LE(max_price, 90000.0);
  EXPECT_LE(max_mileage, 250000.0);
  // Mild price-mileage anti-correlation, like the real CarDB.
  EXPECT_LT(Correlation(ds.points), -0.2);
}

TEST(GeneratorsTest, CarDbIsSparse) {
  // "The distribution of data is sparse": no exact duplicates expected in
  // a continuous mixture sample.
  Dataset ds = GenerateCarDb(5000, 7);
  std::sort(ds.points.begin(), ds.points.end());
  EXPECT_EQ(std::adjacent_find(ds.points.begin(), ds.points.end()),
            ds.points.end());
}

TEST(GeneratorsTest, SkylineSizeOrdering) {
  // Skyline cardinality: correlated < uniform < anti-correlated (the
  // classic Börzsönyi property the experiments rely on).
  auto skyline_size = [](const Dataset& ds) {
    size_t count = 0;
    for (size_t i = 0; i < ds.points.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < ds.points.size() && !dominated; ++j) {
        if (i == j) continue;
        bool weak = true;
        bool strict = false;
        for (size_t d = 0; d < 2; ++d) {
          if (ds.points[j][d] > ds.points[i][d]) weak = false;
          if (ds.points[j][d] < ds.points[i][d]) strict = true;
        }
        dominated = weak && strict;
      }
      if (!dominated) ++count;
    }
    return count;
  };
  const size_t co = skyline_size(GenerateCorrelated(2000, 2, 8));
  const size_t un = skyline_size(GenerateUniform(2000, 2, 8));
  const size_t ac = skyline_size(GenerateAnticorrelated(2000, 2, 8));
  EXPECT_LT(co, un);
  EXPECT_LT(un, ac);
}

TEST(GeneratorsTest, PaperExampleMatchesFig1a) {
  const Dataset ds = PaperExampleDataset();
  ASSERT_EQ(ds.points.size(), 8u);
  EXPECT_EQ(ds.points[0], Point({5.0, 30.0}));
  EXPECT_EQ(ds.points[7], Point({16.0, 80.0}));
  EXPECT_EQ(PaperExampleQuery(), Point({8.5, 55.0}));
}

TEST(GeneratorsTest, ClusteredStaysInUnitBox) {
  const Dataset ds = GenerateClustered(2000, 3, 11, 8, 0.1);
  for (const Point& p : ds.points) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_GE(p[i], 0.0);
      EXPECT_LE(p[i], 1.0);
    }
  }
}

}  // namespace
}  // namespace wnrs
