// Randomized consistency of the mutable engine: interleaved product
// additions/removals and reverse-skyline queries must match a fresh
// engine rebuilt from the live points after every mutation batch.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"

namespace wnrs {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, MutationsMatchRebuiltEngine) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Dataset ds = GenerateCarDb(300, seed);
  WhyNotEngine engine{Dataset(ds)};

  // Track the live set alongside the engine: id -> live?
  std::vector<Point> points = ds.points;
  std::vector<bool> live(points.size(), true);

  for (int round = 0; round < 12; ++round) {
    // Mutation batch.
    for (int m = 0; m < 8; ++m) {
      if (rng.NextBool(0.5)) {
        Point p({rng.NextDouble(1000, 60000), rng.NextDouble(0, 200000)});
        const size_t id = engine.AddProduct(p);
        ASSERT_EQ(id, points.size());
        points.push_back(std::move(p));
        live.push_back(true);
      } else {
        // Remove a random live product.
        size_t victim = rng.NextUint64(points.size());
        for (size_t probe = 0; probe < points.size(); ++probe) {
          const size_t id = (victim + probe) % points.size();
          if (live[id]) {
            victim = id;
            break;
          }
        }
        if (!live[victim]) continue;
        ASSERT_TRUE(engine.RemoveProduct(victim));
        live[victim] = false;
      }
    }

    // Oracle: a fresh engine over only the live points, with an id map.
    Dataset live_ds;
    live_ds.dims = 2;
    std::vector<size_t> id_of_live;
    for (size_t id = 0; id < points.size(); ++id) {
      if (live[id]) {
        live_ds.points.push_back(points[id]);
        id_of_live.push_back(id);
      }
    }
    WhyNotEngine oracle{std::move(live_ds)};

    for (int trial = 0; trial < 4; ++trial) {
      Point q = points[rng.NextUint64(points.size())];
      q[0] += rng.NextGaussian(0.0, 300.0);
      q[1] += rng.NextGaussian(0.0, 1500.0);
      std::vector<size_t> got = engine.ReverseSkyline(q);
      std::vector<size_t> expected;
      for (size_t idx : oracle.ReverseSkyline(q)) {
        expected.push_back(id_of_live[idx]);
      }
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "seed " << seed << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(11, 22, 33));

// Paranoid-mode smoke: with paranoid_checks on, the engine re-validates
// the index after construction and every mutation, and every answer
// against the deep semantic validators (WNRS_CHECK-fatal on violation).
// Surviving a fuzzed mutation/query mix IS the assertion; the seeded
// corruptions in validate_test.cc prove the validators would fire.
TEST(EngineParanoidSmokeTest, FuzzedMutationsAndQueriesPassParanoidChecks) {
  WhyNotEngineOptions options;
  options.paranoid_checks = true;
  const Dataset ds = GenerateCarDb(120, 99);
  WhyNotEngine engine{Dataset(ds), options};  // Validated at construction.
  Rng rng(99);

  for (int round = 0; round < 3; ++round) {
    Point p({rng.NextDouble(1000, 60000), rng.NextDouble(0, 200000)});
    const size_t id = engine.AddProduct(p);  // Index re-validated here.
    EXPECT_GE(id, ds.points.size());
    ASSERT_TRUE(engine.RemoveProduct(static_cast<size_t>(round)));

    Point q = ds.points[rng.NextUint64(ds.points.size())];
    q[0] += rng.NextGaussian(0.0, 300.0);
    q[1] += rng.NextGaussian(0.0, 1500.0);
    const std::vector<size_t> rsl = engine.ReverseSkyline(q);
    const size_t who = 5 + static_cast<size_t>(round);
    const MwpResult mwp = engine.ModifyWhyNot(who, q);   // Answer validated.
    EXPECT_FALSE(mwp.already_member && mwp.candidates.empty());
    const MqpResult mqp = engine.ModifyQuery(who, q);    // Answer validated.
    EXPECT_FALSE(mqp.already_member && mqp.candidates.empty());
    const SafeRegionResult& sr = engine.SafeRegion(q);   // Region validated.
    EXPECT_TRUE(sr.region.Contains(q));
    const MwqResult mwq = engine.ModifyBoth(who, q);     // Answer validated.
    EXPECT_GE(mwq.best_cost, 0.0);
  }
}

}  // namespace
}  // namespace wnrs
