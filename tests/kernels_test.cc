#include "geometry/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "geometry/dominance.h"
#include "geometry/kernels_scalar.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "geometry/transform.h"

namespace wnrs {
namespace {

// Parity suite for the dispatched kernels: whatever backend the build
// resolved to (AVX2, NEON, or scalar) must agree bit for bit with the
// scalar references in scalar_kernels:: AND with the Point-based
// predicates in geometry/dominance.h / geometry/transform.h. The fuzz
// draws deliberately inject NaN, ±0, ±inf, and denormals — exactly the
// inputs where branchy and branch-free formulations historically
// diverged. CI runs this test in both the WNRS_SIMD=ON and =OFF builds.

constexpr size_t kDims[] = {1, 2, 3, 4, 5, 7};
constexpr size_t kCounts[] = {0, 1, 3, 7, 8, 9, 16, 17, 64, 65};
constexpr int kRounds = 6;

double DrawCoord(Rng& rng) {
  static const double kSpecial[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      1e300,
      -1e300,
  };
  if (rng.NextBool(0.25)) {
    return kSpecial[rng.NextUint64(sizeof(kSpecial) / sizeof(kSpecial[0]))];
  }
  return rng.NextDouble(-10.0, 10.0);
}

std::vector<double> DrawSpan(Rng& rng, size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = DrawCoord(rng);
  return out;
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// SoA planes shaped exactly like the frozen PackedRTree slab: NaN-padded
// to KernelPad(n), lo plane j followed by hi plane j. `points_only`
// freezes hi == lo (degenerate boxes, the leaf-entry case).
struct SoaFixture {
  std::vector<double> slab;
  size_t stride = 0;
  size_t d = 0;

  SoaPlanes planes() const { return {slab.data(), stride, d}; }
  double lo(size_t k, size_t j) const { return slab[j * stride + k]; }
  double hi(size_t k, size_t j) const { return slab[(d + j) * stride + k]; }
  Point LoPoint(size_t k) const {
    std::vector<double> c(d);
    for (size_t j = 0; j < d; ++j) c[j] = lo(k, j);
    return Point(std::move(c));
  }
  Rectangle Rect(size_t k) const {
    std::vector<double> l(d);
    std::vector<double> h(d);
    for (size_t j = 0; j < d; ++j) {
      l[j] = lo(k, j);
      h[j] = hi(k, j);
    }
    return Rectangle(Point(std::move(l)), Point(std::move(h)));
  }
};

SoaFixture MakePlanes(Rng& rng, size_t n, size_t d, bool points_only) {
  SoaFixture f;
  f.d = d;
  f.stride = KernelPad(n);
  f.slab.assign(2 * d * f.stride,
                std::numeric_limits<double>::quiet_NaN());
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < d; ++j) {
      const double a = DrawCoord(rng);
      const double b = points_only ? a : DrawCoord(rng);
      f.slab[j * f.stride + k] = std::min(a, b);
      f.slab[(d + j) * f.stride + k] = std::max(a, b);
    }
  }
  return f;
}

TEST(KernelDispatchTest, BackendIsNamed) {
  const std::string backend = KernelBackend();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar")
      << backend;
  // The scalar build (WNRS_SIMD=OFF or unsupported CPU) must report
  // "scalar" — the dispatcher has no other fallback.
  if (internal::SimdKernelOps() == nullptr) {
    EXPECT_EQ(backend, "scalar");
  } else {
    EXPECT_EQ(backend, internal::SimdKernelOps()->backend);
  }
}

TEST(KernelFuzzTest, DominatesBatchAgreesWithScalarAndPoint) {
  Rng rng(0xD0);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<double> pts = DrawSpan(rng, n * d);
        const std::vector<double> p = DrawSpan(rng, d);
        std::vector<unsigned char> got(KernelPad(n), 0xAA);
        std::vector<unsigned char> ref(KernelPad(n), 0xBB);
        DominatesBatch(pts.data(), n, d, p.data(), got.data());
        scalar_kernels::DominatesBatch(pts.data(), n, d, p.data(),
                                       ref.data());
        ASSERT_EQ(std::memcmp(got.data(), ref.data(), n), 0)
            << "d=" << d << " n=" << n;
        const Point pp(p);
        for (size_t i = 0; i < n; ++i) {
          const Point a(std::vector<double>(pts.begin() + i * d,
                                            pts.begin() + (i + 1) * d));
          ASSERT_EQ(got[i] != 0, Dominates(a, pp))
              << "d=" << d << " n=" << n << " i=" << i;
          ASSERT_EQ(got[i] != 0, DominatesSpan(pts.data() + i * d, p.data(), d));
        }
      }
    }
  }
}

TEST(KernelFuzzTest, DynamicallyDominatesBatchAgreesWithScalarAndPoint) {
  Rng rng(0xD1);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<double> pts = DrawSpan(rng, n * d);
        const std::vector<double> p = DrawSpan(rng, d);
        const std::vector<double> origin = DrawSpan(rng, d);
        std::vector<unsigned char> got(KernelPad(n), 0xAA);
        std::vector<unsigned char> ref(KernelPad(n), 0xBB);
        DynamicallyDominatesBatch(pts.data(), n, d, p.data(), origin.data(),
                                  got.data());
        scalar_kernels::DynamicallyDominatesBatch(pts.data(), n, d, p.data(),
                                                  origin.data(), ref.data());
        ASSERT_EQ(std::memcmp(got.data(), ref.data(), n), 0)
            << "d=" << d << " n=" << n;
        const Point pp(p);
        const Point po(origin);
        for (size_t i = 0; i < n; ++i) {
          const Point a(std::vector<double>(pts.begin() + i * d,
                                            pts.begin() + (i + 1) * d));
          ASSERT_EQ(got[i] != 0, DynamicallyDominates(a, pp, po))
              << "d=" << d << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelFuzzTest, DominatedByAnyAgreesWithFirstHitScan) {
  Rng rng(0xD2);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<double> pts = DrawSpan(rng, n * d);
        const std::vector<double> p = DrawSpan(rng, d);
        const bool got = DominatedByAny(pts.data(), n, d, p.data());
        const bool ref = scalar_kernels::DominatedByAny(pts.data(), n, d,
                                                        p.data());
        ASSERT_EQ(got, ref) << "d=" << d << " n=" << n;
        bool expect = false;
        const Point pp(p);
        for (size_t i = 0; i < n && !expect; ++i) {
          expect = Dominates(Point(std::vector<double>(
                                 pts.begin() + i * d,
                                 pts.begin() + (i + 1) * d)),
                             pp);
        }
        ASSERT_EQ(got, expect) << "d=" << d << " n=" << n;
      }
    }
  }
}

// A single dominating point planted at every index of buffers whose
// lengths straddle the kScanBlock boundary: the tail handling after the
// last full block is where an off-by-one would hide.
TEST(KernelEdgeTest, DominatedByAnyScanBlockTail) {
  using kernel_detail::kScanBlock;
  const size_t d = 3;
  const std::vector<double> p = {0.5, 0.5, 0.5};
  for (size_t n : {kScanBlock - 1, kScanBlock, kScanBlock + 1,
                   2 * kScanBlock - 1, 2 * kScanBlock, 2 * kScanBlock + 1,
                   4 * kScanBlock + 5}) {
    for (size_t hit = 0; hit < n; ++hit) {
      // Every point ties with p (no strict dimension) except `hit`.
      std::vector<double> pts(n * d, 0.5);
      pts[hit * d + 1] = 0.25;
      EXPECT_TRUE(DominatedByAny(pts.data(), n, d, p.data()))
          << "n=" << n << " hit=" << hit;
      EXPECT_TRUE(scalar_kernels::DominatedByAny(pts.data(), n, d, p.data()));
      pts[hit * d + 1] = 0.5;
      EXPECT_FALSE(DominatedByAny(pts.data(), n, d, p.data())) << "n=" << n;
      EXPECT_FALSE(scalar_kernels::DominatedByAny(pts.data(), n, d,
                                                  p.data()));
    }
  }
}

TEST(KernelFuzzTest, BoxOverlapMaskAgreesWithRectangleIntersects) {
  Rng rng(0xD3);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const SoaFixture f = MakePlanes(rng, n, d, /*points_only=*/false);
        std::vector<double> wlo(d);
        std::vector<double> whi(d);
        for (size_t j = 0; j < d; ++j) {
          const double a = DrawCoord(rng);
          const double b = DrawCoord(rng);
          wlo[j] = std::min(a, b);
          whi[j] = std::max(a, b);
        }
        std::vector<unsigned char> got(KernelPad(n), 0xAA);
        std::vector<unsigned char> ref(KernelPad(n), 0xBB);
        BoxOverlapMaskSoa(f.planes(), 0, n, wlo.data(), whi.data(),
                          got.data());
        scalar_kernels::BoxOverlapMaskSoa(f.planes(), 0, n, wlo.data(),
                                          whi.data(), ref.data());
        ASSERT_EQ(std::memcmp(got.data(), ref.data(), n), 0)
            << "d=" << d << " n=" << n;
        const Rectangle window{Point(wlo), Point(whi)};
        for (size_t k = 0; k < n; ++k) {
          ASSERT_EQ(got[k] != 0, f.Rect(k).Intersects(window))
              << "d=" << d << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(KernelFuzzTest, MinDistCornerBatchMatchesRectToDistanceSpace) {
  Rng rng(0xD4);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const SoaFixture f = MakePlanes(rng, n, d, /*points_only=*/false);
        const std::vector<double> origin = DrawSpan(rng, d);
        const size_t cap = KernelPad(n);
        std::vector<double> got_c(d * cap, -1.0);
        std::vector<double> ref_c(d * cap, -2.0);
        std::vector<double> got_d(cap, -1.0);
        std::vector<double> ref_d(cap, -2.0);
        MinDistCornerBatchSoa(f.planes(), 0, n, origin.data(), got_c.data(),
                              cap, got_d.data());
        scalar_kernels::MinDistCornerBatchSoa(f.planes(), 0, n, origin.data(),
                                              ref_c.data(), cap,
                                              ref_d.data());
        const Point po(origin);
        for (size_t k = 0; k < n; ++k) {
          const Point expect = RectToDistanceSpace(f.Rect(k), po).lo();
          for (size_t j = 0; j < d; ++j) {
            ASSERT_TRUE(BitEqual(got_c[j * cap + k], ref_c[j * cap + k]))
                << "d=" << d << " n=" << n << " k=" << k << " j=" << j;
            ASSERT_TRUE(BitEqual(got_c[j * cap + k], expect[j]))
                << "d=" << d << " n=" << n << " k=" << k << " j=" << j;
          }
          ASSERT_TRUE(BitEqual(got_d[k], ref_d[k])) << "k=" << k;
          ASSERT_TRUE(BitEqual(got_d[k], expect.L1Norm()))
              << "d=" << d << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(KernelFuzzTest, MinDistCornerBatchIdentityMap) {
  Rng rng(0xD5);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      const SoaFixture f = MakePlanes(rng, n, d, /*points_only=*/false);
      const size_t cap = KernelPad(n);
      std::vector<double> got_c(d * cap, -1.0);
      std::vector<double> ref_c(d * cap, -2.0);
      std::vector<double> got_d(cap, -1.0);
      std::vector<double> ref_d(cap, -2.0);
      MinDistCornerBatchSoa(f.planes(), 0, n, nullptr, got_c.data(), cap,
                            got_d.data());
      scalar_kernels::MinDistCornerBatchSoa(f.planes(), 0, n, nullptr,
                                            ref_c.data(), cap, ref_d.data());
      for (size_t k = 0; k < n; ++k) {
        for (size_t j = 0; j < d; ++j) {
          ASSERT_TRUE(BitEqual(got_c[j * cap + k], ref_c[j * cap + k]));
          ASSERT_TRUE(BitEqual(got_c[j * cap + k], f.lo(k, j)))
              << "d=" << d << " n=" << n << " k=" << k << " j=" << j;
        }
        ASSERT_TRUE(BitEqual(got_d[k], ref_d[k]));
        ASSERT_TRUE(BitEqual(got_d[k], f.LoPoint(k).L1Norm()))
            << "d=" << d << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(KernelFuzzTest, ToDistanceSpaceBatchMatchesPointTransform) {
  Rng rng(0xD6);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const SoaFixture f = MakePlanes(rng, n, d, /*points_only=*/true);
        const std::vector<double> origin = DrawSpan(rng, d);
        const size_t cap = KernelPad(n);
        std::vector<double> got_c(d * cap, -1.0);
        std::vector<double> ref_c(d * cap, -2.0);
        std::vector<double> got_d(cap, -1.0);
        std::vector<double> ref_d(cap, -2.0);
        ToDistanceSpaceBatchSoa(f.planes(), 0, n, origin.data(), got_c.data(),
                                cap, got_d.data());
        scalar_kernels::ToDistanceSpaceBatchSoa(f.planes(), 0, n,
                                                origin.data(), ref_c.data(),
                                                cap, ref_d.data());
        const Point po(origin);
        for (size_t k = 0; k < n; ++k) {
          const Point expect = ToDistanceSpace(f.LoPoint(k), po);
          for (size_t j = 0; j < d; ++j) {
            ASSERT_TRUE(BitEqual(got_c[j * cap + k], ref_c[j * cap + k]))
                << "d=" << d << " n=" << n << " k=" << k << " j=" << j;
            ASSERT_TRUE(BitEqual(got_c[j * cap + k], expect[j]))
                << "d=" << d << " n=" << n << " k=" << k << " j=" << j;
          }
          ASSERT_TRUE(BitEqual(got_d[k], ref_d[k]));
          ASSERT_TRUE(BitEqual(got_d[k], expect.L1Norm()))
              << "d=" << d << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(KernelFuzzTest, InWindowMaskAgreesWithScalarAndPoint) {
  Rng rng(0xD7);
  for (size_t d : kDims) {
    for (size_t n : kCounts) {
      for (int round = 0; round < kRounds; ++round) {
        const SoaFixture f = MakePlanes(rng, n, d, /*points_only=*/true);
        const std::vector<double> c = DrawSpan(rng, d);
        const std::vector<double> q = DrawSpan(rng, d);
        std::vector<unsigned char> got(KernelPad(n), 0xAA);
        std::vector<unsigned char> ref(KernelPad(n), 0xBB);
        InWindowMaskSoa(f.planes(), 0, n, c.data(), q.data(), got.data());
        scalar_kernels::InWindowMaskSoa(f.planes(), 0, n, c.data(), q.data(),
                                        ref.data());
        ASSERT_EQ(std::memcmp(got.data(), ref.data(), n), 0)
            << "d=" << d << " n=" << n;
        const Point pc(c);
        const Point pq(q);
        for (size_t k = 0; k < n; ++k) {
          ASSERT_EQ(got[k] != 0, InWindow(f.LoPoint(k), pc, pq))
              << "d=" << d << " n=" << n << " k=" << k;
          ASSERT_EQ(got[k] != 0,
                    InWindowSpan(f.slab.data() + k, f.stride, c.data(),
                                 q.data(), d));
        }
      }
    }
  }
}

TEST(KernelFuzzTest, SpanPrimitivesMatchPointImplementations) {
  Rng rng(0xD8);
  for (size_t d : kDims) {
    for (int round = 0; round < 64; ++round) {
      const std::vector<double> a = DrawSpan(rng, d);
      const std::vector<double> b = DrawSpan(rng, d);
      EXPECT_EQ(DominatesSpan(a.data(), b.data(), d),
                Dominates(Point(a), Point(b)));
      std::vector<double> t(d);
      ToDistanceSpaceSpan(a.data(), 1, b.data(), d, t.data());
      const Point expect = ToDistanceSpace(Point(a), Point(b));
      for (size_t j = 0; j < d; ++j) {
        EXPECT_TRUE(BitEqual(t[j], expect[j]));
      }
      EXPECT_TRUE(BitEqual(L1NormSpan(a.data(), d), Point(a).L1Norm()));
    }
  }
}

// Directed non-finite cases: a NaN coordinate makes a point incomparable
// in that dimension, so it can never dominate nor be dominated through
// it; ±0 are the same value for dominance purposes.
TEST(KernelEdgeTest, NanAndSignedZeroSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_FALSE(Dominates(Point({nan, 0.0}), Point({1.0, 1.0})));
  EXPECT_FALSE(Dominates(Point({1.0, 1.0}), Point({nan, 2.0})));
  EXPECT_EQ(CompareDominance(Point({nan, 0.0}), Point({1.0, 1.0})),
            DominanceRelation::kIncomparable);
  EXPECT_EQ(CompareDominance(Point({0.0, nan}), Point({0.0, nan})),
            DominanceRelation::kIncomparable);

  // ±0 tie: neither strict anywhere, so no dominance, and CompareDominance
  // sees equality (0.0 == -0.0 under IEEE).
  EXPECT_FALSE(Dominates(Point({-0.0, -0.0}), Point({0.0, 0.0})));
  EXPECT_FALSE(Dominates(Point({0.0, 0.0}), Point({-0.0, -0.0})));
  EXPECT_EQ(CompareDominance(Point({-0.0, 0.0}), Point({0.0, -0.0})),
            DominanceRelation::kEqual);

  // Infinities order normally: -inf dominates every finite point.
  EXPECT_TRUE(Dominates(Point({-inf, -inf}), Point({0.0, 0.0})));
  EXPECT_FALSE(Dominates(Point({inf, 0.0}), Point({1.0, 1.0})));

  // The batch kernels agree on the same directed inputs.
  const double pts[] = {nan, 0.0, -0.0, -0.0, -inf, -inf};
  const double p[] = {0.0, 0.0};
  unsigned char out[3] = {9, 9, 9};
  DominatesBatch(pts, 3, 2, p, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
  EXPECT_TRUE(DominatedByAny(pts, 3, 2, p));
  EXPECT_FALSE(DominatedByAny(pts, 2, 2, p));
}

// Dynamic dominance around a NaN origin coordinate: every transformed
// coordinate is NaN, so nothing dominates anything.
TEST(KernelEdgeTest, NanOriginNeverDynamicallyDominates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Point origin({nan, 0.0});
  EXPECT_FALSE(
      DynamicallyDominates(Point({0.0, 0.0}), Point({5.0, 5.0}), origin));
  const double pts[] = {0.0, 0.0};
  const double p[] = {5.0, 5.0};
  const double o[] = {nan, 0.0};
  unsigned char out[1] = {9};
  DynamicallyDominatesBatch(pts, 1, 2, p, o, out);
  EXPECT_EQ(out[0], 0);
}

// n == 0 and d edge dims: kernels must be well-defined no-ops.
TEST(KernelEdgeTest, EmptyInputsAreNoOps) {
  const double p[] = {1.0};
  EXPECT_FALSE(DominatedByAny(nullptr, 0, 1, p));
  unsigned char out[KernelPad(0)];
  std::memset(out, 0xCC, sizeof(out));
  DominatesBatch(nullptr, 0, 1, p, out);
  SoaFixture f;
  f.d = 1;
  f.stride = KernelPad(0);
  f.slab.assign(2 * f.stride, std::numeric_limits<double>::quiet_NaN());
  BoxOverlapMaskSoa(f.planes(), 0, 0, p, p, out);
  InWindowMaskSoa(f.planes(), 0, 0, p, p, out);
  std::vector<double> c(f.stride);
  std::vector<double> dist(f.stride);
  MinDistCornerBatchSoa(f.planes(), 0, 0, nullptr, c.data(), f.stride,
                        dist.data());
  ToDistanceSpaceBatchSoa(f.planes(), 0, 0, p, c.data(), f.stride,
                          dist.data());
}

// Node-interior ranges: kernels must honor `first` and not assume the
// scan starts at entry 0 (nodes occupy interior index ranges of the
// packed slab).
TEST(KernelFuzzTest, InteriorRangesMatchZeroBasedScans) {
  Rng rng(0xD9);
  const size_t d = 3;
  const size_t total = 40;
  const SoaFixture f = MakePlanes(rng, total, d, /*points_only=*/false);
  const std::vector<double> origin = DrawSpan(rng, d);
  for (size_t first : {0u, 1u, 7u, 13u}) {
    for (size_t count : {0u, 1u, 5u, 11u}) {
      ASSERT_LE(first + count, total);
      const size_t cap = KernelPad(count);
      std::vector<double> got_c(d * cap);
      std::vector<double> got_d(cap);
      MinDistCornerBatchSoa(f.planes(), first, count, origin.data(),
                            got_c.data(), cap, got_d.data());
      const Point po(origin);
      for (size_t k = 0; k < count; ++k) {
        const Point expect = RectToDistanceSpace(f.Rect(first + k), po).lo();
        for (size_t j = 0; j < d; ++j) {
          ASSERT_TRUE(BitEqual(got_c[j * cap + k], expect[j]))
              << "first=" << first << " k=" << k << " j=" << j;
        }
        ASSERT_TRUE(BitEqual(got_d[k], expect.L1Norm()));
      }
    }
  }
}

}  // namespace
}  // namespace wnrs
