// Near-optimality oracles: in 2-D, Algorithm 1's candidate set should
// contain (up to the closed-boundary epsilon) the minimum-cost feasible
// movement, and Algorithm 2's should contain the minimum-cost query
// movement. Verified against dense grid search over the data space.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "core/mqp.h"
#include "core/mwp.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

constexpr int kGrid = 160;

struct GridEnv {
  explicit GridEnv(Dataset dataset)
      : data(std::move(dataset)),
        tree(BulkLoadPoints(2, data.points)),
        bounds(data.Bounds()),
        cost(CostModel::EqualWeightsFor(bounds)) {}

  Point Cell(int ix, int iy) const {
    return Point({bounds.lo()[0] +
                      (ix + 0.5) / kGrid * (bounds.hi()[0] - bounds.lo()[0]),
                  bounds.lo()[1] +
                      (iy + 0.5) / kGrid * (bounds.hi()[1] - bounds.lo()[1])});
  }

  Dataset data;
  RStarTree tree;
  Rectangle bounds;
  CostModel cost;
};

TEST(MwpOptimalityTest, BestCandidateMatchesGridSearch) {
  GridEnv env(GenerateCarDb(250, 81));
  Rng rng(82);
  int exercised = 0;
  for (int trial = 0; trial < 30 && exercised < 6; ++trial) {
    const size_t c_idx = rng.NextUint64(env.data.points.size());
    const Point q = env.data.points[rng.NextUint64(env.data.points.size())];
    const Point& c_t = env.data.points[c_idx];
    const auto exclude = static_cast<RStarTree::Id>(c_idx);
    const MwpResult r = ModifyWhyNotPoint(env.tree, env.data.points, c_t, q,
                                          env.cost, 0, exclude);
    if (r.already_member) continue;
    ++exercised;

    // Grid search: cheapest strictly-feasible customer location.
    double grid_best = std::numeric_limits<double>::infinity();
    for (int ix = 0; ix < kGrid; ++ix) {
      for (int iy = 0; iy < kGrid; ++iy) {
        const Point cand = env.Cell(ix, iy);
        if (!WindowEmpty(env.tree, cand, q, exclude)) continue;
        grid_best =
            std::min(grid_best, env.cost.WhyNotMoveCost(c_t, cand));
      }
    }
    if (!std::isfinite(grid_best)) continue;  // Grid too coarse here.
    ASSERT_FALSE(r.candidates.empty());
    // The algorithm's best (a boundary infimum) must not exceed the grid
    // optimum. (No lower bound: the feasible sliver past the boundary can
    // be thinner than a grid cell, so the algorithm legitimately finds
    // answers the grid cannot certify; their feasibility is established
    // by the epsilon-nudge membership test below.)
    const Candidate& best = r.candidates.front();
    EXPECT_LE(best.cost, grid_best + 1e-9)
        << "grid found a cheaper strict solution than the algorithm";
    bool feasible = false;
    for (double eps : {1e-9, 1e-7, 1e-5}) {
      Point nudged = best.point;
      for (size_t i = 0; i < 2; ++i) nudged[i] += eps * (q[i] - nudged[i]);
      if (WindowEmpty(env.tree, nudged, q, exclude)) {
        feasible = true;
        break;
      }
    }
    EXPECT_TRUE(feasible) << best.point.ToString();
  }
  EXPECT_GE(exercised, 3);
}

TEST(MqpOptimalityTest, BestCandidateMatchesGridSearch) {
  GridEnv env(GenerateCarDb(250, 83));
  Rng rng(84);
  int exercised = 0;
  for (int trial = 0; trial < 30 && exercised < 6; ++trial) {
    const size_t c_idx = rng.NextUint64(env.data.points.size());
    const Point q = env.data.points[rng.NextUint64(env.data.points.size())];
    const Point& c_t = env.data.points[c_idx];
    const auto exclude = static_cast<RStarTree::Id>(c_idx);
    const MqpResult r = ModifyQueryPoint(env.tree, env.data.points, c_t, q,
                                         env.cost, 0, exclude);
    if (r.already_member) continue;
    ++exercised;

    double grid_best = std::numeric_limits<double>::infinity();
    for (int ix = 0; ix < kGrid; ++ix) {
      for (int iy = 0; iy < kGrid; ++iy) {
        const Point cand = env.Cell(ix, iy);
        if (!WindowEmpty(env.tree, c_t, cand, exclude)) continue;
        grid_best = std::min(grid_best, env.cost.QueryMoveCost(q, cand));
      }
    }
    if (!std::isfinite(grid_best)) continue;
    ASSERT_FALSE(r.candidates.empty());
    const Candidate& best = r.candidates.front();
    EXPECT_LE(best.cost, grid_best + 1e-9);
    bool feasible = false;
    for (double eps : {1e-9, 1e-7, 1e-5}) {
      Point nudged = best.point;
      for (size_t i = 0; i < 2; ++i) {
        nudged[i] += eps * (c_t[i] - nudged[i]);
      }
      if (WindowEmpty(env.tree, c_t, nudged, exclude)) {
        feasible = true;
        break;
      }
    }
    EXPECT_TRUE(feasible) << best.point.ToString();
  }
  EXPECT_GE(exercised, 3);
}

}  // namespace
}  // namespace wnrs
