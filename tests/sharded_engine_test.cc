// Differential testing of the sharded engine: every request kind, at
// several shard counts, must answer bit-identically to the single-core
// engine over the same data — values, orderings, costs, and error
// strings. The sharded engine's whole correctness story is "same answer,
// different execution layout", so the assertions here are exact
// (EXPECT_EQ on doubles included: the merges must reproduce the same
// arithmetic, not an approximation of it).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "serve/backend.h"
#include "shard/sharded_backend.h"
#include "shard/sharded_engine.h"

namespace wnrs {
namespace {

using shard::ShardedBackend;
using shard::ShardedEngine;
using shard::ShardedEngineOptions;

void ExpectPointEq(const Point& a, const Point& b, const char* what) {
  ASSERT_EQ(a.dims(), b.dims()) << what;
  for (size_t i = 0; i < a.dims(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " dim " << i;
  }
}

void ExpectCandidatesEq(const std::vector<Candidate>& a,
                        const std::vector<Candidate>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cost, b[i].cost) << what << " candidate " << i;
    ExpectPointEq(a[i].point, b[i].point, what);
  }
}

void ExpectExplanationEq(const WhyNotExplanation& a,
                         const WhyNotExplanation& b) {
  EXPECT_EQ(a.already_member, b.already_member);
  EXPECT_EQ(a.culprits, b.culprits);
  EXPECT_EQ(a.frontier, b.frontier);
}

void ExpectMwpEq(const MwpResult& a, const MwpResult& b) {
  EXPECT_EQ(a.already_member, b.already_member);
  EXPECT_EQ(a.culprits, b.culprits);
  ExpectCandidatesEq(a.candidates, b.candidates, "mwp");
}

void ExpectMqpEq(const MqpResult& a, const MqpResult& b) {
  EXPECT_EQ(a.already_member, b.already_member);
  EXPECT_EQ(a.culprits, b.culprits);
  ExpectCandidatesEq(a.candidates, b.candidates, "mqp");
}

void ExpectSafeRegionEq(const SafeRegionResult& a, const SafeRegionResult& b) {
  EXPECT_EQ(a.customers_processed, b.customers_processed);
  EXPECT_EQ(a.truncated, b.truncated);
  ASSERT_EQ(a.region.size(), b.region.size());
  for (size_t i = 0; i < a.region.size(); ++i) {
    ExpectPointEq(a.region.rects()[i].lo(), b.region.rects()[i].lo(), "sr lo");
    ExpectPointEq(a.region.rects()[i].hi(), b.region.rects()[i].hi(), "sr hi");
  }
}

void ExpectMwqEq(const MwqResult& a, const MwqResult& b) {
  EXPECT_EQ(a.already_member, b.already_member);
  EXPECT_EQ(a.overlap, b.overlap);
  EXPECT_EQ(a.best_cost, b.best_cost);
  ExpectCandidatesEq(a.query_candidates, b.query_candidates, "mwq query");
  ExpectCandidatesEq(a.why_not_candidates, b.why_not_candidates,
                     "mwq why-not");
}

/// Asserts every request kind agrees between the two engines for (c, q),
/// under both answer semantics.
void ExpectAllKindsAgree(const WhyNotEngine& single, const ShardedEngine& shd,
                         size_t c, const Point& q) {
  SCOPED_TRACE(::testing::Message() << "c=" << c << " q=" << q.ToString());
  EXPECT_EQ(single.ReverseSkyline(q), shd.ReverseSkyline(q));
  EXPECT_EQ(single.IsReverseSkylineMember(c, q),
            shd.IsReverseSkylineMember(c, q));
  ExpectExplanationEq(single.Explain(c, q), shd.Explain(c, q));
  for (const Semantics semantics : {Semantics::kBoundary, Semantics::kStrict}) {
    ExpectMwpEq(single.ModifyWhyNot(c, q, semantics),
                shd.ModifyWhyNot(c, q, semantics));
    ExpectMqpEq(single.ModifyQuery(c, q, semantics),
                shd.ModifyQuery(c, q, semantics));
    ExpectMwqEq(single.ModifyBoth(c, q, semantics),
                shd.ModifyBoth(c, q, semantics));
  }
  ExpectSafeRegionEq(*single.Snapshot().SafeRegion(q), *shd.SafeRegion(q));
}

class ShardParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardParityTest, SharedRelationAllKindsMatchSingleEngine) {
  const size_t num_shards = GetParam();
  const Dataset ds = GenerateCarDb(160, 7);
  WhyNotEngine single{Dataset(ds)};
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine shd{Dataset(ds), options};
  EXPECT_EQ(shd.num_shards(), num_shards);

  Rng rng(1000 + num_shards);
  for (int trial = 0; trial < 6; ++trial) {
    Point q = ds.points[rng.NextUint64(ds.points.size())];
    q[0] += rng.NextGaussian(0.0, 300.0);
    q[1] += rng.NextGaussian(0.0, 1500.0);
    const size_t c = rng.NextUint64(ds.points.size());
    ExpectAllKindsAgree(single, shd, c, q);
  }

  // Batch answers merge per-customer in request order.
  const Point q = ds.points[3];
  const std::vector<size_t> whos = {2, 17, 80, 159};
  const std::vector<MwqResult> a = single.ModifyBothBatch(whos, q);
  const std::vector<MwqResult> b = shd.ModifyBothBatch(whos, q);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectMwqEq(a[i], b[i]);
}

TEST_P(ShardParityTest, BichromaticReverseSkylineIsShardIntersection) {
  const size_t num_shards = GetParam();
  const Dataset products = GenerateCarDb(140, 11);
  const Dataset customers = GenerateCarDb(60, 12);
  WhyNotEngine single{Dataset(products), Dataset(customers)};
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine shd{Dataset(products), Dataset(customers), options};
  EXPECT_FALSE(shd.shared_relation());

  Rng rng(2000 + num_shards);
  for (int trial = 0; trial < 6; ++trial) {
    Point q = products.points[rng.NextUint64(products.points.size())];
    q[0] += rng.NextGaussian(0.0, 300.0);
    q[1] += rng.NextGaussian(0.0, 1500.0);
    const size_t c = rng.NextUint64(customers.points.size());
    ExpectAllKindsAgree(single, shd, c, q);
  }
}

TEST_P(ShardParityTest, ApproxPipelineMatchesSingleEngine) {
  const size_t num_shards = GetParam();
  const Dataset ds = GenerateCarDb(120, 21);
  WhyNotEngine single{Dataset(ds)};
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine shd{Dataset(ds), options};
  single.PrecomputeApproxDsls(4);
  shd.PrecomputeApproxDsls(4);
  ASSERT_TRUE(shd.HasApproxDsls());
  EXPECT_EQ(shd.approx_k(), 4u);

  // The stored samples are query-equivalent, not byte-equivalent (for
  // DSLs of <= k points the in-store order may differ; see
  // ShardedEngine::PrecomputeApproxDsls) — so compare what consumers
  // observe: the approximated safe region and Algorithm 4 over it.
  Rng rng(3000 + num_shards);
  for (int trial = 0; trial < 4; ++trial) {
    Point q = ds.points[rng.NextUint64(ds.points.size())];
    q[0] += rng.NextGaussian(0.0, 300.0);
    q[1] += rng.NextGaussian(0.0, 1500.0);
    const size_t c = rng.NextUint64(ds.points.size());
    SCOPED_TRACE(::testing::Message() << "c=" << c << " q=" << q.ToString());
    ExpectSafeRegionEq(*single.Snapshot().ApproxSafeRegion(q),
                       *shd.ApproxSafeRegion(q));
    for (const Semantics semantics :
         {Semantics::kBoundary, Semantics::kStrict}) {
      ExpectMwqEq(single.ModifyBothApprox(c, q, semantics),
                  shd.ModifyBothApprox(c, q, semantics));
    }
    const std::vector<size_t> whos = {c, (c + 7) % ds.points.size()};
    const std::vector<MwqResult> a =
        single.ModifyBothBatch(whos, q, /*use_approx=*/true);
    const std::vector<MwqResult> b =
        shd.ModifyBothBatch(whos, q, /*use_approx=*/true);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ExpectMwqEq(a[i], b[i]);
  }
}

// Tie-prone grid coordinates: duplicated points and equal-coordinate
// culprits land on shard boundaries, where a wrong merge (dropping
// duplicates, reordering equal-cost candidates) would first show up.
TEST_P(ShardParityTest, GridTiesSurviveShardBoundaries) {
  const size_t num_shards = GetParam();
  Dataset ds;
  ds.name = "grid";
  ds.dims = 2;
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) {
      ds.points.push_back(Point({static_cast<double>(x) * 10.0,
                                 static_cast<double>(y) * 10.0}));
    }
  }
  // Exact duplicates: both must be reported everywhere one is.
  ds.points.push_back(Point({20.0, 30.0}));
  ds.points.push_back(Point({40.0, 10.0}));
  WhyNotEngine single{Dataset(ds)};
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine shd{Dataset(ds), options};

  for (const double qx : {0.0, 15.0, 25.0, 30.0, 55.0}) {
    const Point q({qx, 65.0 - qx});
    for (const size_t c : {size_t{0}, size_t{14}, size_t{21}, size_t{36},
                           size_t{37}}) {
      ExpectAllKindsAgree(single, shd, c, q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardParityTest,
                         ::testing::Values(1, 2, 4, 7));

// Interleaved mutations: both engines absorb the same add/remove stream
// (same global ids) and must stay in lockstep. The sharded engine
// re-freezes only the touched tile per mutation; parity across a long
// random stream is what proves the untouched snapshots stay valid.
TEST(ShardMutationTest, RandomMutationStreamKeepsParity) {
  const uint64_t seed = 42;
  Rng rng(seed);
  const Dataset ds = GenerateCarDb(150, seed);
  WhyNotEngine single{Dataset(ds)};
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine shd{Dataset(ds), options};

  std::vector<bool> live(ds.points.size(), true);
  size_t next_id = ds.points.size();
  for (int round = 0; round < 6; ++round) {
    for (int m = 0; m < 6; ++m) {
      if (rng.NextBool(0.5)) {
        const Point p(
            {rng.NextDouble(1000, 60000), rng.NextDouble(0, 200000)});
        const size_t a = single.AddProduct(p);
        const size_t b = shd.AddProduct(p);
        ASSERT_EQ(a, next_id);
        ASSERT_EQ(b, next_id);
        ++next_id;
        live.push_back(true);
      } else {
        size_t victim = rng.NextUint64(live.size());
        for (size_t probe = 0; probe < live.size(); ++probe) {
          const size_t id = (victim + probe) % live.size();
          if (live[id]) {
            victim = id;
            break;
          }
        }
        if (!live[victim]) continue;
        ASSERT_TRUE(single.RemoveProduct(victim));
        ASSERT_TRUE(shd.RemoveProduct(victim));
        live[victim] = false;
        EXPECT_FALSE(shd.IsLiveProduct(victim));
      }
    }
    for (int trial = 0; trial < 3; ++trial) {
      Point q = ds.points[rng.NextUint64(ds.points.size())];
      q[0] += rng.NextGaussian(0.0, 300.0);
      q[1] += rng.NextGaussian(0.0, 1500.0);
      size_t c = rng.NextUint64(live.size());
      while (!live[c]) c = (c + 1) % live.size();
      ExpectAllKindsAgree(single, shd, c, q);
    }
  }
}

// A snapshot taken before a mutation answers from the pre-mutation state.
TEST(ShardMutationTest, SnapshotsAreIsolatedFromMutations) {
  const Dataset ds = GenerateCarDb(80, 5);
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine shd{Dataset(ds), options};
  const Point q = ds.points[10];
  const ShardedEngine::Session before = shd.Snapshot();
  const std::vector<size_t> rsl_before = before.ReverseSkyline(q);
  for (size_t id : rsl_before) {
    ASSERT_TRUE(shd.RemoveProduct(id));
  }
  EXPECT_EQ(before.ReverseSkyline(q), rsl_before);
  EXPECT_NE(shd.ReverseSkyline(q), rsl_before);
}

// Error parity: the Try* layer must return the same Status codes and the
// same messages as the single engine, so the wire protocol is
// indistinguishable across execution layouts.
TEST(ShardErrorTest, TryLayerMatchesSingleEngineStatusStrings) {
  const Dataset ds = GenerateCarDb(50, 9);
  WhyNotEngine single{Dataset(ds)};
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine shd{Dataset(ds), options};
  const auto ssnap = single.Snapshot();
  const auto dsnap = shd.Snapshot();
  const Point good = ds.points[0];

  const Point wrong_dims({1.0, 2.0, 3.0});
  const Point non_finite({std::nan(""), 2.0});
  for (const Point& bad : {wrong_dims, non_finite}) {
    const auto a = ssnap.TryReverseSkyline(bad);
    const auto b = dsnap.TryReverseSkyline(bad);
    ASSERT_FALSE(a.ok());
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }
  {
    const auto a = ssnap.TryExplain(9999, good);
    const auto b = dsnap.TryExplain(9999, good);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }
  {
    const auto a = ssnap.TryApproxSafeRegion(good);
    const auto b = dsnap.TryApproxSafeRegion(good);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }
  {
    const auto a = single.TryRemoveProduct(9999);
    const auto b = shd.TryRemoveProduct(9999);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.ToString(), b.ToString());
  }
  ASSERT_TRUE(single.RemoveProduct(3));
  ASSERT_TRUE(shd.RemoveProduct(3));
  {
    const auto a = single.TryRemoveProduct(3);
    const auto b = shd.TryRemoveProduct(3);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.ToString(), b.ToString());
  }
  {
    const auto a = single.Snapshot().TryModifyBoth(3, good,
                                                   Semantics::kBoundary);
    const auto b = shd.Snapshot().TryModifyBoth(3, good, Semantics::kBoundary);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }
  {
    const auto a = single.TryAddProduct(non_finite);
    const auto b = shd.TryAddProduct(non_finite);
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().ToString(), b.status().ToString());
  }
}

// The serve-layer adapter answers through the same Try* layer.
TEST(ShardBackendTest, BackendSnapshotMatchesEngine) {
  const Dataset ds = GenerateCarDb(60, 4);
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine shd{Dataset(ds), options};
  const ShardedBackend backend(&shd);
  const auto snapshot = backend.Snapshot();
  const Point q = ds.points[7];
  const auto got = snapshot->TryReverseSkyline(q);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), shd.ReverseSkyline(q));
  const auto mwq = snapshot->TryModifyBoth(5, q, Semantics::kBoundary);
  ASSERT_TRUE(mwq.ok());
  ExpectMwqEq(mwq.value(), shd.ModifyBoth(5, q));
}

// StrTiles is the partitioner the sharded engine is built on; pin its
// contract (exact tile count, balanced sizes, ascending ids, an exact
// partition, determinism) independently of the engine tests above.
TEST(ShardTilingTest, StrTilesFormBalancedDeterministicPartition) {
  const Dataset ds = GenerateCarDb(103, 31);
  for (const size_t want : {size_t{1}, size_t{4}, size_t{7}, size_t{200}}) {
    const auto tiles = StrTiles(ds.dims, ds.points, want);
    const auto again = StrTiles(ds.dims, ds.points, want);
    EXPECT_EQ(tiles, again);
    ASSERT_EQ(tiles.size(), std::min(want, ds.points.size()));
    size_t lo = ds.points.size();
    size_t hi = 0;
    std::vector<bool> seen(ds.points.size(), false);
    for (const std::vector<size_t>& tile : tiles) {
      ASSERT_FALSE(tile.empty());
      lo = std::min(lo, tile.size());
      hi = std::max(hi, tile.size());
      EXPECT_TRUE(std::is_sorted(tile.begin(), tile.end()));
      for (size_t id : tile) {
        ASSERT_LT(id, seen.size());
        EXPECT_FALSE(seen[id]) << "id " << id << " in two tiles";
        seen[id] = true;
      }
    }
    EXPECT_LE(hi - lo, 1u) << "tile sizes must differ by at most one";
    EXPECT_TRUE(
        std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }));
  }
}

}  // namespace
}  // namespace wnrs
