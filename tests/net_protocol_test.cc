// Tests for the binary wire protocol: seeded randomized round-trips for
// every request kind and payload alternative (bit-identical doubles),
// plus adversarial decoding — truncation at every byte boundary,
// oversized lengths, bad magic/version, and seeded garbage — which must
// fail with a Status, never abort or over-allocate.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/wire.h"

namespace wnrs {
namespace net {
namespace {

using serve::RequestKind;
using serve::WhyNotRequest;
using serve::WhyNotResponse;

Point RandomPoint(Rng& rng, size_t dims) {
  std::vector<double> coords(dims);
  for (auto& c : coords) c = rng.NextDouble(-1e6, 1e6);
  return Point(std::move(coords));
}

std::vector<Candidate> RandomCandidates(Rng& rng, size_t count, size_t dims) {
  std::vector<Candidate> candidates(count);
  for (auto& c : candidates) {
    c.point = RandomPoint(rng, dims);
    c.cost = rng.NextDouble(0.0, 1e3);
  }
  return candidates;
}

std::vector<RStarTree::Id> RandomIds(Rng& rng, size_t count) {
  std::vector<RStarTree::Id> ids(count);
  for (auto& id : ids) id = static_cast<RStarTree::Id>(rng.NextUint64(1u << 20));
  return ids;
}

WhyNotRequest RandomRequest(Rng& rng) {
  WhyNotRequest request;
  request.kind = static_cast<RequestKind>(rng.NextUint64(serve::kNumRequestKinds));
  request.q = RandomPoint(rng, 1 + rng.NextUint64(5));
  request.c = rng.NextUint64(1000);
  request.semantics = rng.NextBool() ? Semantics::kStrict : Semantics::kBoundary;
  if (rng.NextBool()) {
    request.timeout = std::chrono::microseconds(rng.NextUint64(10'000'000));
  }
  request.priority = static_cast<int32_t>(rng.NextUint64(201)) - 100;
  return request;
}

void ExpectRequestsEqual(const WhyNotRequest& a, const WhyNotRequest& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.q, b.q);  // exact coordinate equality: doubles are bit-cast
  EXPECT_EQ(a.c, b.c);
  EXPECT_EQ(a.semantics, b.semantics);
  EXPECT_EQ(a.timeout, b.timeout);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_FALSE(b.deadline.has_value());  // never crosses the wire
}

void ExpectCandidatesEqual(const std::vector<Candidate>& a,
                           const std::vector<Candidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point, b[i].point);
    EXPECT_EQ(a[i].cost, b[i].cost);
  }
}

WhyNotResponse RandomResponseEnvelope(Rng& rng) {
  WhyNotResponse response;
  response.kind = static_cast<RequestKind>(rng.NextUint64(serve::kNumRequestKinds));
  response.status = rng.NextBool()
                        ? Status::Ok()
                        : Status::DeadlineExceeded("expired in queue");
  response.completed = rng.NextBool();
  response.shared_batch = rng.NextBool();
  response.queue_wait = std::chrono::microseconds(rng.NextUint64(1'000'000));
  return response;
}

void ExpectEnvelopesEqual(const WhyNotResponse& a, const WhyNotResponse& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.status.code(), b.status.code());
  if (!a.status.ok()) {
    EXPECT_EQ(a.status.message(), b.status.message());
  }
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shared_batch, b.shared_batch);
  EXPECT_EQ(a.queue_wait, b.queue_wait);
  EXPECT_EQ(a.payload_tag(), b.payload_tag());
}

/// Round-trips a response and returns the decoded copy (checking the
/// envelope and id along the way).
WhyNotResponse RoundTrip(uint64_t id, const WhyNotResponse& response) {
  const std::string frame = EncodeResponseFrame(id, response);
  auto header = DecodeFrameHeader(frame.data(), frame.size());
  EXPECT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().type, FrameType::kResponse);
  EXPECT_EQ(header.value().payload_len, frame.size() - kFrameHeaderSize);
  auto decoded = DecodeResponsePayload(
      std::string_view(frame).substr(kFrameHeaderSize));
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, id);
  ExpectEnvelopesEqual(response, decoded.value().response);
  return std::move(decoded).value().response;
}

TEST(NetProtocolTest, RequestRoundTripAllKinds) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const uint64_t id = rng.NextUint64();
    const WhyNotRequest request = RandomRequest(rng);
    const std::string frame = EncodeRequestFrame(id, request);

    auto header = DecodeFrameHeader(frame.data(), frame.size());
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header.value().type, FrameType::kRequest);
    ASSERT_EQ(header.value().payload_len, frame.size() - kFrameHeaderSize);

    auto decoded = DecodeRequestPayload(
        std::string_view(frame).substr(kFrameHeaderSize));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().request_id, id);
    ExpectRequestsEqual(request, decoded.value().request);
  }
}

TEST(NetProtocolTest, RequestRoundTripSpecialDoubles) {
  WhyNotRequest request;
  request.kind = RequestKind::kReverseSkyline;
  request.q = Point({0.0, -0.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::denorm_min(),
                     std::nextafter(1.0, 2.0)});
  const std::string frame = EncodeRequestFrame(7, request);
  auto decoded =
      DecodeRequestPayload(std::string_view(frame).substr(kFrameHeaderSize));
  ASSERT_TRUE(decoded.ok());
  const Point& q = decoded.value().request.q;
  ASSERT_EQ(q.dims(), 5u);
  for (size_t i = 0; i < q.dims(); ++i) {
    // Bit-level equality, stricter than operator== (distinguishes -0.0).
    EXPECT_EQ(std::signbit(q[i]), std::signbit(request.q[i]));
    EXPECT_EQ(q[i], request.q[i]);
  }
}

TEST(NetProtocolTest, ResponseRoundTripEveryPayloadAlternative) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const size_t dims = 1 + rng.NextUint64(4);

    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      r.payload = std::monostate{};
      RoundTrip(rng.NextUint64(), r);
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      std::vector<size_t> rsl(rng.NextUint64(20));
      for (auto& v : rsl) v = rng.NextUint64(10'000);
      r.payload = rsl;
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      EXPECT_EQ(back.reverse_skyline(), rsl);
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      WhyNotExplanation e;
      e.already_member = rng.NextBool();
      e.culprits = RandomIds(rng, rng.NextUint64(20));
      e.frontier = RandomIds(rng, rng.NextUint64(10));
      r.payload = e;
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      EXPECT_EQ(back.explanation().already_member, e.already_member);
      EXPECT_EQ(back.explanation().culprits, e.culprits);
      EXPECT_EQ(back.explanation().frontier, e.frontier);
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      MwpResult m;
      m.already_member = rng.NextBool();
      m.culprits = RandomIds(rng, rng.NextUint64(20));
      m.candidates = RandomCandidates(rng, rng.NextUint64(10), dims);
      r.payload = m;
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      EXPECT_EQ(back.mwp().culprits, m.culprits);
      ExpectCandidatesEqual(back.mwp().candidates, m.candidates);
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      MqpResult m;
      m.already_member = rng.NextBool();
      m.culprits = RandomIds(rng, rng.NextUint64(20));
      m.candidates = RandomCandidates(rng, rng.NextUint64(10), dims);
      r.payload = m;
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      EXPECT_EQ(back.mqp().culprits, m.culprits);
      ExpectCandidatesEqual(back.mqp().candidates, m.candidates);
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      auto sr = std::make_shared<SafeRegionResult>();
      sr->customers_processed = rng.NextUint64(500);
      sr->truncated = rng.NextBool();
      std::vector<Rectangle> rects;
      for (size_t k = rng.NextUint64(8); k > 0; --k) {
        const Point lo = RandomPoint(rng, dims);
        std::vector<double> hi(dims);
        for (size_t d = 0; d < dims; ++d) {
          hi[d] = lo[d] + rng.NextDouble(0.0, 10.0);
        }
        rects.emplace_back(lo, Point(std::move(hi)));
      }
      sr->region = RectRegion(rects);
      r.payload = std::shared_ptr<const SafeRegionResult>(sr);
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      ASSERT_NE(back.safe_region(), nullptr);
      EXPECT_EQ(back.safe_region()->customers_processed,
                sr->customers_processed);
      EXPECT_EQ(back.safe_region()->truncated, sr->truncated);
      ASSERT_EQ(back.safe_region()->region.size(), sr->region.size());
      for (size_t k = 0; k < sr->region.size(); ++k) {
        EXPECT_EQ(back.safe_region()->region.rects()[k],
                  sr->region.rects()[k]);
      }
    }
    {
      WhyNotResponse r = RandomResponseEnvelope(rng);
      MwqResult m;
      m.already_member = rng.NextBool();
      m.overlap = rng.NextBool();
      m.query_candidates = RandomCandidates(rng, rng.NextUint64(8), dims);
      m.why_not_candidates = RandomCandidates(rng, rng.NextUint64(8), dims);
      m.best_cost = rng.NextDouble(0.0, 100.0);
      r.payload = m;
      const WhyNotResponse back = RoundTrip(rng.NextUint64(), r);
      EXPECT_EQ(back.mwq().overlap, m.overlap);
      EXPECT_EQ(back.mwq().best_cost, m.best_cost);
      ExpectCandidatesEqual(back.mwq().query_candidates, m.query_candidates);
      ExpectCandidatesEqual(back.mwq().why_not_candidates,
                            m.why_not_candidates);
    }
  }
}

TEST(NetProtocolTest, NullSafeRegionPointerRoundTrips) {
  WhyNotResponse r;
  r.payload = std::shared_ptr<const SafeRegionResult>(nullptr);
  ASSERT_EQ(r.payload_tag(), WhyNotResponse::kSafeRegionPayload);
  const WhyNotResponse back = RoundTrip(1, r);
  EXPECT_EQ(back.payload_tag(), WhyNotResponse::kSafeRegionPayload);
  EXPECT_EQ(back.safe_region(), nullptr);
}

TEST(NetProtocolTest, HeaderRejectsBadMagicVersionTypeAndLength) {
  WhyNotRequest request;
  request.q = Point({1.0, 2.0});
  std::string frame = EncodeRequestFrame(1, request);

  EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderSize - 1).ok());

  std::string bad = frame;
  bad[0] ^= 0x01;  // magic
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size()).ok());

  bad = frame;
  bad[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size()).ok());

  bad = frame;
  bad[5] = 9;  // unknown frame type
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size()).ok());

  // Oversized declared payload length.
  bad = frame;
  {
    std::string len;
    WireWriter w(&len);
    w.U32(kMaxFramePayload + 1);
    bad.replace(kFrameHeaderSize - 4, 4, len);
  }
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size()).ok());
}

TEST(NetProtocolTest, TruncationAtEveryLengthFailsCleanly) {
  Rng rng(11);
  const WhyNotRequest request = RandomRequest(rng);
  const std::string req_frame = EncodeRequestFrame(3, request);
  const std::string_view req_payload =
      std::string_view(req_frame).substr(kFrameHeaderSize);
  for (size_t len = 0; len < req_payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequestPayload(req_payload.substr(0, len)).ok())
        << "request truncated to " << len << " decoded";
  }

  WhyNotResponse response = RandomResponseEnvelope(rng);
  MwqResult m;
  m.query_candidates = RandomCandidates(rng, 3, 2);
  m.why_not_candidates = RandomCandidates(rng, 2, 2);
  m.best_cost = 1.5;
  response.payload = m;
  const std::string resp_frame = EncodeResponseFrame(3, response);
  const std::string_view resp_payload =
      std::string_view(resp_frame).substr(kFrameHeaderSize);
  for (size_t len = 0; len < resp_payload.size(); ++len) {
    EXPECT_FALSE(DecodeResponsePayload(resp_payload.substr(0, len)).ok())
        << "response truncated to " << len << " decoded";
  }
}

TEST(NetProtocolTest, TrailingGarbageIsRejected) {
  Rng rng(13);
  const std::string req_frame = EncodeRequestFrame(5, RandomRequest(rng));
  std::string req_payload(std::string_view(req_frame).substr(kFrameHeaderSize));
  req_payload.push_back('\0');
  EXPECT_FALSE(DecodeRequestPayload(req_payload).ok());

  const std::string resp_frame =
      EncodeResponseFrame(5, RandomResponseEnvelope(rng));
  std::string resp_payload(
      std::string_view(resp_frame).substr(kFrameHeaderSize));
  resp_payload.push_back('\0');
  EXPECT_FALSE(DecodeResponsePayload(resp_payload).ok());
}

TEST(NetProtocolTest, GarbagePayloadsNeverCrashOrOverAllocate) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage(rng.NextUint64(64), '\0');
    for (auto& b : garbage) b = static_cast<char>(rng.NextUint64(256));
    // Decoders must return (ok or error) without aborting; results with
    // giant declared counts must have been rejected before allocation.
    (void)DecodeRequestPayload(garbage);
    (void)DecodeResponsePayload(garbage);
  }
  // A corrupt count field: header of a valid response, then a payload
  // claiming 2^32-1 reverse-skyline entries with no bytes behind it.
  std::string payload;
  WireWriter w(&payload);
  w.U64(1);                       // request id
  w.U8(0);                        // kind
  w.U8(0);                        // status: ok
  w.U8(1);                        // completed
  w.U8(0);                        // shared_batch
  w.U8(WhyNotResponse::kReverseSkylinePayload);
  w.U64(0);                       // queue wait
  w.Bytes("");                    // status message
  w.U32(0xFFFFFFFFu);             // absurd element count
  EXPECT_FALSE(DecodeResponsePayload(payload).ok());
}

TEST(NetProtocolTest, UnknownEnumIdsAreRejected) {
  EXPECT_EQ(serve::RequestKindFromWire(serve::kNumRequestKinds),
            std::nullopt);
  EXPECT_EQ(serve::StatusCodeFromWire(200), std::nullopt);
  EXPECT_EQ(serve::SemanticsFromWire(2), std::nullopt);

  // A frame carrying an unknown kind id decodes to an error, not a guess.
  Rng rng(19);
  const std::string frame = EncodeRequestFrame(9, RandomRequest(rng));
  std::string payload(std::string_view(frame).substr(kFrameHeaderSize));
  payload[8] = static_cast<char>(serve::kNumRequestKinds);  // kind byte
  EXPECT_FALSE(DecodeRequestPayload(payload).ok());
}

}  // namespace
}  // namespace net
}  // namespace wnrs
