#include "index/packed_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "index/rtree.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bbs.h"

namespace wnrs {
namespace {

std::vector<Point> RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) p[i] = rng.NextDouble(0, 100);
    points.push_back(std::move(p));
  }
  return points;
}

RStarTree BuildTree(const std::vector<Point>& points, size_t dims) {
  RStarTree tree(dims);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<RStarTree::Id>(i));
  }
  return tree;
}

/// Runs the dynamic and packed form of one query and asserts bit-identical
/// results AND identical node-read counts — the freeze contract.
template <typename DynFn, typename PackFn>
void ExpectParity(RStarTree& tree, PackedRTree& packed, const DynFn& dyn,
                  const PackFn& pack, const std::string& what) {
  tree.ResetStats();
  packed.ResetStats();
  const auto dyn_out = dyn();
  const uint64_t dyn_reads = tree.stats().node_reads;
  const auto packed_out = pack();
  const uint64_t packed_reads = packed.stats().node_reads;
  EXPECT_EQ(dyn_out, packed_out) << what;
  EXPECT_EQ(dyn_reads, packed_reads) << what << " node reads";
}

TEST(PackedRTreeTest, EmptyTreeFreezes) {
  RStarTree tree(2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  EXPECT_EQ(packed.dims(), 2u);
  EXPECT_EQ(packed.size(), 0u);
  EXPECT_EQ(packed.height(), 1u);
  // Mirrors the dynamic root: one empty leaf always exists.
  EXPECT_EQ(packed.num_nodes(), 1u);
  EXPECT_EQ(packed.num_entries(), 0u);
  EXPECT_TRUE(packed.node(packed.root()).is_leaf);
  EXPECT_TRUE(packed.CheckInvariants().ok())
      << packed.CheckInvariants().ToString();
  EXPECT_TRUE(
      packed.RangeQueryIds(Rectangle(Point({0, 0}), Point({1, 1}))).empty());
  EXPECT_TRUE(BbsSkyline(packed).empty());
}

TEST(PackedRTreeTest, SingleLeafMatchesDynamic) {
  const std::vector<Point> points = RandomPoints(5, 2, 11);
  RStarTree tree = BuildTree(points, 2);
  ASSERT_EQ(tree.height(), 1u);
  PackedRTree packed = PackedRTree::Freeze(tree);
  EXPECT_EQ(packed.size(), 5u);
  EXPECT_EQ(packed.num_nodes(), 1u);
  EXPECT_TRUE(packed.CheckInvariants().ok())
      << packed.CheckInvariants().ToString();
  const Rectangle all(Point({-1, -1}), Point({101, 101}));
  EXPECT_EQ(packed.RangeQueryIds(all), tree.RangeQueryIds(all));
  EXPECT_EQ(BbsSkyline(packed), BbsSkyline(tree));
}

TEST(PackedRTreeTest, FreezePreservesShape) {
  const std::vector<Point> points = RandomPoints(2000, 2, 21);
  RStarTree tree = BuildTree(points, 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  EXPECT_EQ(packed.dims(), tree.dims());
  EXPECT_EQ(packed.size(), tree.size());
  EXPECT_EQ(packed.height(), tree.height());
  EXPECT_GE(packed.num_entries(), packed.size());
  ASSERT_TRUE(packed.CheckInvariants().ok())
      << packed.CheckInvariants().ToString();
}

TEST(PackedRTreeTest, MoveSemantics) {
  RStarTree tree = BuildTree(RandomPoints(300, 2, 31), 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const Rectangle window(Point({10, 10}), Point({60, 60}));
  const std::vector<PackedRTree::Id> expected = packed.RangeQueryIds(window);
  PackedRTree moved = std::move(packed);
  EXPECT_EQ(moved.size(), 300u);
  EXPECT_EQ(moved.RangeQueryIds(window), expected);
  EXPECT_TRUE(moved.CheckInvariants().ok());
}

// Pins the RangeQueryIds sorted-output contract on both paths — the
// engine's CustomersInRange relies on it instead of re-sorting.
TEST(PackedRTreeTest, RangeQueryIdsSortedAndEquivalent) {
  const std::vector<Point> points = RandomPoints(1500, 2, 41);
  RStarTree tree = BuildTree(points, 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const double x0 = rng.NextDouble(0, 90);
    const double y0 = rng.NextDouble(0, 90);
    const Rectangle window(Point({x0, y0}),
                           Point({x0 + rng.NextDouble(1, 30),
                                  y0 + rng.NextDouble(1, 30)}));
    ExpectParity(
        tree, packed, [&] { return tree.RangeQueryIds(window); },
        [&] { return packed.RangeQueryIds(window); }, "range query");
    const std::vector<RStarTree::Id> ids = tree.RangeQueryIds(window);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

class PackedBbsParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PackedBbsParityTest, SkylineIdsAndNodeReadsMatch) {
  const size_t n = GetParam();
  const std::vector<Point> points = RandomPoints(n, 2, 100 + n);
  RStarTree tree = BuildTree(points, 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  ExpectParity(
      tree, packed, [&] { return BbsSkyline(tree); },
      [&] { return BbsSkyline(packed); }, "bbs skyline");
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackedBbsParityTest,
                         ::testing::Values(1, 10, 100, 1000, 5000));

TEST(PackedRTreeTest, DynamicSkylineParityFuzzed) {
  const std::vector<Point> points = RandomPoints(1200, 2, 51);
  RStarTree tree = BuildTree(points, 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  Rng rng(52);
  for (int trial = 0; trial < 25; ++trial) {
    const Point origin(
        {rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    std::optional<RStarTree::Id> exclude;
    if (trial % 3 == 0) {
      exclude = static_cast<RStarTree::Id>(rng.NextUint64(points.size()));
    }
    ExpectParity(
        tree, packed,
        [&] { return BbsDynamicSkyline(tree, origin, exclude); },
        [&] { return BbsDynamicSkyline(packed, origin, exclude); },
        "dynamic skyline");
  }
}

TEST(PackedRTreeTest, WindowProbesParityFuzzed) {
  const std::vector<Point> points = RandomPoints(1000, 2, 61);
  RStarTree tree = BuildTree(points, 2);
  PackedRTree packed = PackedRTree::Freeze(tree);
  Rng rng(62);
  for (int trial = 0; trial < 30; ++trial) {
    const Point& c = points[rng.NextUint64(points.size())];
    const Point q({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    std::optional<RStarTree::Id> exclude;
    if (trial % 2 == 0) {
      exclude = static_cast<RStarTree::Id>(rng.NextUint64(points.size()));
    }
    // WindowQuery emits in traversal order; the structure-preserving
    // freeze makes even that order identical.
    ExpectParity(
        tree, packed, [&] { return WindowQuery(tree, c, q, exclude); },
        [&] { return WindowQuery(packed, c, q, exclude); }, "window query");
    tree.ResetStats();
    packed.ResetStats();
    const bool dyn_empty = WindowEmpty(tree, c, q, exclude);
    const uint64_t dyn_reads = tree.stats().node_reads;
    const bool packed_empty = WindowEmpty(packed, c, q, exclude);
    EXPECT_EQ(dyn_empty, packed_empty);
    EXPECT_EQ(dyn_reads, packed.stats().node_reads) << "window empty reads";
    ExpectParity(
        tree, packed, [&] { return WindowSkyline(tree, c, q, q, exclude); },
        [&] { return WindowSkyline(packed, c, q, q, exclude); },
        "window skyline (origin q)");
    ExpectParity(
        tree, packed, [&] { return WindowSkyline(tree, c, q, c, exclude); },
        [&] { return WindowSkyline(packed, c, q, c, exclude); },
        "window skyline (origin c)");
  }
}

TEST(PackedRTreeTest, GlobalSkylineAndBbrsParityFuzzed) {
  const Dataset data = GenerateCarDb(1500, 71);
  RStarTree tree = BuildTree(data.points, data.dims);
  PackedRTree packed = PackedRTree::Freeze(tree);
  Rng rng(72);
  for (int trial = 0; trial < 12; ++trial) {
    const Point& q = data.points[rng.NextUint64(data.size())];
    std::optional<RStarTree::Id> exclude;
    if (trial % 2 == 0) {
      exclude = static_cast<RStarTree::Id>(rng.NextUint64(data.size()));
    }
    ExpectParity(
        tree, packed,
        [&] { return GlobalSkylineCandidates(tree, q, exclude); },
        [&] { return GlobalSkylineCandidates(packed, q, exclude); },
        "global skyline");
    ExpectParity(
        tree, packed, [&] { return BbrsReverseSkyline(tree, q); },
        [&] { return BbrsReverseSkyline(packed, q); }, "bbrs");
  }
}

TEST(PackedRTreeTest, BichromaticBbrsParityFuzzed) {
  const Dataset customers = GenerateCarDb(900, 81);
  const Dataset products = GenerateCarDb(1100, 82);
  RStarTree ctree = BuildTree(customers.points, customers.dims);
  RStarTree ptree = BuildTree(products.points, products.dims);
  PackedRTree cpacked = PackedRTree::Freeze(ctree);
  PackedRTree ppacked = PackedRTree::Freeze(ptree);
  Rng rng(83);
  for (int trial = 0; trial < 8; ++trial) {
    const Point& q = products.points[rng.NextUint64(products.size())];
    ctree.ResetStats();
    ptree.ResetStats();
    cpacked.ResetStats();
    ppacked.ResetStats();
    const auto dyn = BbrsReverseSkylineBichromatic(ctree, ptree, q);
    const uint64_t dyn_reads =
        ctree.stats().node_reads + ptree.stats().node_reads;
    const auto pck = BbrsReverseSkylineBichromatic(cpacked, ppacked, q);
    const uint64_t pck_reads =
        cpacked.stats().node_reads + ppacked.stats().node_reads;
    EXPECT_EQ(dyn, pck);
    EXPECT_EQ(dyn_reads, pck_reads);
  }
}

TEST(PackedRTreeTest, BichromaticSharedRelationParity) {
  const Dataset data = GenerateCarDb(800, 91);
  RStarTree ctree = BuildTree(data.points, data.dims);
  RStarTree ptree = BuildTree(data.points, data.dims);
  PackedRTree cpacked = PackedRTree::Freeze(ctree);
  PackedRTree ppacked = PackedRTree::Freeze(ptree);
  Rng rng(92);
  for (int trial = 0; trial < 6; ++trial) {
    const Point& q = data.points[rng.NextUint64(data.size())];
    const auto dyn = BbrsReverseSkylineBichromatic(
        ctree, ptree, q, /*shared_relation=*/true);
    const auto pck = BbrsReverseSkylineBichromatic(
        cpacked, ppacked, q, /*shared_relation=*/true);
    EXPECT_EQ(dyn, pck);
    // Shared-relation bichromatic agrees with monochromatic BBRS.
    EXPECT_EQ(pck, BbrsReverseSkyline(ppacked, q));
  }
}

// Clone() is structure-preserving, so a freeze of the clone must be
// indistinguishable from a freeze of the original — the property the
// engine's copy-on-write mutations lean on.
TEST(PackedRTreeTest, PostCloneFreezeParity) {
  const std::vector<Point> points = RandomPoints(1000, 2, 101);
  RStarTree tree = BuildTree(points, 2);
  RStarTree clone = tree.Clone();
  PackedRTree packed = PackedRTree::Freeze(tree);
  PackedRTree packed_clone = PackedRTree::Freeze(clone);
  EXPECT_EQ(packed.num_nodes(), packed_clone.num_nodes());
  EXPECT_EQ(packed.num_entries(), packed_clone.num_entries());
  Rng rng(102);
  for (int trial = 0; trial < 10; ++trial) {
    const Point q({rng.NextDouble(0, 100), rng.NextDouble(0, 100)});
    packed.ResetStats();
    packed_clone.ResetStats();
    EXPECT_EQ(BbsDynamicSkyline(packed, q), BbsDynamicSkyline(packed_clone, q));
    EXPECT_EQ(packed.stats().node_reads, packed_clone.stats().node_reads);
  }
  // A mutation of the clone does not disturb the frozen image.
  clone.Insert(Point({50, 50}), 7777);
  EXPECT_EQ(packed_clone.size(), 1000u);
  EXPECT_TRUE(packed_clone.CheckInvariants().ok());
}

class PackedDimsParityTest : public ::testing::TestWithParam<size_t> {};

// Exercises the dimension-templated kernel fast paths (d = 2, 3, 4) and
// the generic fallback (d = 5).
TEST_P(PackedDimsParityTest, ParityAcrossDimensionalities) {
  const size_t dims = GetParam();
  const Dataset data = GenerateAnticorrelated(700, dims, 200 + dims);
  RStarTree tree = BuildTree(data.points, dims);
  PackedRTree packed = PackedRTree::Freeze(tree);
  ASSERT_TRUE(packed.CheckInvariants().ok())
      << packed.CheckInvariants().ToString();
  ExpectParity(
      tree, packed, [&] { return BbsSkyline(tree); },
      [&] { return BbsSkyline(packed); }, "bbs skyline");
  Rng rng(300 + dims);
  for (int trial = 0; trial < 8; ++trial) {
    const Point& q = data.points[rng.NextUint64(data.size())];
    ExpectParity(
        tree, packed, [&] { return BbsDynamicSkyline(tree, q); },
        [&] { return BbsDynamicSkyline(packed, q); }, "dynamic skyline");
    ExpectParity(
        tree, packed, [&] { return BbrsReverseSkyline(tree, q); },
        [&] { return BbrsReverseSkyline(packed, q); }, "bbrs");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PackedDimsParityTest,
                         ::testing::Values(2, 3, 4, 5));

TEST(PackedRTreeTest, DuplicateAndDegenerateData) {
  RStarTree tree(2);
  for (int i = 0; i < 120; ++i) tree.Insert(Point({1.0, 1.0}), i);
  PackedRTree packed = PackedRTree::Freeze(tree);
  ASSERT_TRUE(packed.CheckInvariants().ok());
  const Rectangle window(Point({1, 1}), Point({1, 1}));
  EXPECT_EQ(packed.RangeQueryIds(window), tree.RangeQueryIds(window));
  EXPECT_EQ(BbsSkyline(packed), BbsSkyline(tree));
}

TEST(PackedRTreeTest, FreezeRecordsMetrics) {
  RStarTree tree = BuildTree(RandomPoints(500, 2, 111), 2);
  const QueryStats before = MetricsRegistry::Default().CaptureQueryStats();
  PackedRTree packed = PackedRTree::Freeze(tree);
  const QueryStats delta =
      MetricsRegistry::Default().CaptureQueryStats() - before;
  EXPECT_EQ(delta.packed_freezes, 1u);
  EXPECT_GT(delta.packed_freeze_ns, 0u);
  packed.ResetStats();
  const QueryStats q0 = MetricsRegistry::Default().CaptureQueryStats();
  BbsSkyline(packed);
  const QueryStats q1 = MetricsRegistry::Default().CaptureQueryStats() - q0;
  // Packed node reads feed both the shared rtree counter and their own.
  EXPECT_EQ(q1.packed_node_reads, packed.stats().node_reads);
  EXPECT_EQ(q1.rtree_node_reads, packed.stats().node_reads);
}

}  // namespace
}  // namespace wnrs
