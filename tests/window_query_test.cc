#include "reverse_skyline/window_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "geometry/dominance.h"
#include "data/generators.h"
#include "index/bulk_load.h"

namespace wnrs {
namespace {

TEST(WindowRectTest, ExtentsAreDistancesToQ) {
  const Rectangle w = WindowRect(Point({5, 30}), Point({8.5, 55}));
  EXPECT_EQ(w.lo(), Point({1.5, 5.0}));
  EXPECT_EQ(w.hi(), Point({8.5, 55.0}));
}

TEST(WindowRectTest, DegenerateWhenCEqualsQ) {
  const Rectangle w = WindowRect(Point({3, 3}), Point({3, 3}));
  EXPECT_EQ(w.lo(), w.hi());
}

TEST(WindowQueryTest, PaperExample) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point q = PaperExampleQuery();
  EXPECT_EQ(WindowQuery(tree, ds.points[0], q, 0),
            (std::vector<RStarTree::Id>{1}));
  EXPECT_TRUE(WindowQuery(tree, ds.points[1], q, 1).empty());
  EXPECT_FALSE(WindowEmpty(tree, ds.points[0], q, 0));
  EXPECT_TRUE(WindowEmpty(tree, ds.points[1], q, 1));
}

TEST(WindowQueryTest, ExcludeIdSkipsSelf) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point q = PaperExampleQuery();
  // Without exclusion, c2's own tuple dominates q w.r.t. itself.
  EXPECT_FALSE(WindowEmpty(tree, ds.points[1], q));
  EXPECT_TRUE(WindowEmpty(tree, ds.points[1], q, 1));
}

TEST(WindowQueryTest, TreeMatchesBruteForce) {
  const Dataset ds = GenerateUniform(500, 2, 55);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(56);
  for (int trial = 0; trial < 100; ++trial) {
    const Point c({rng.NextDouble(), rng.NextDouble()});
    const Point q({rng.NextDouble(), rng.NextDouble()});
    std::vector<RStarTree::Id> via_tree = WindowQuery(tree, c, q);
    std::sort(via_tree.begin(), via_tree.end());
    const std::vector<size_t> brute = WindowQueryBrute(ds.points, c, q);
    ASSERT_EQ(via_tree.size(), brute.size());
    for (size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(static_cast<size_t>(via_tree[i]), brute[i]);
    }
    EXPECT_EQ(WindowEmpty(tree, c, q), brute.empty());
  }
}

TEST(WindowQueryTest, MirrorPointNotReturned) {
  // A product that mirrors q around c ties in every dimension and must
  // not count as a culprit.
  std::vector<Point> products = {Point({2.0, 2.0})};  // Mirror of q=(4,4)
                                                      // around c=(3,3).
  RStarTree tree = BulkLoadPoints(2, products);
  EXPECT_TRUE(WindowQuery(tree, Point({3, 3}), Point({4, 4})).empty());
}

TEST(WindowQueryTest, ProductAtCAlwaysDominates) {
  // A product exactly at c dominates any q != c.
  std::vector<Point> products = {Point({3.0, 3.0})};
  RStarTree tree = BulkLoadPoints(2, products);
  EXPECT_FALSE(WindowEmpty(tree, Point({3, 3}), Point({4, 4})));
  // Unless it is excluded (shared relation).
  EXPECT_TRUE(WindowEmpty(tree, Point({3, 3}), Point({4, 4}), 0));
}

TEST(WindowSkylineTest, MatchesBruteForceFrontier) {
  const Dataset ds = GenerateCarDb(800, 66);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(67);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point& c = ds.points[c_idx];
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    for (const Point& origin : {q, c}) {
      // Oracle: window query then skyline of the transformed contents.
      const std::vector<size_t> lambda =
          WindowQueryBrute(ds.points, c, q, c_idx);
      std::vector<size_t> expected;
      for (size_t a : lambda) {
        bool dominated = false;
        for (size_t b : lambda) {
          if (a == b) continue;
          if (DynamicallyDominates(ds.points[b], ds.points[a], origin)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) expected.push_back(a);
      }
      std::vector<RStarTree::Id> got = WindowSkyline(
          tree, c, q, origin, static_cast<RStarTree::Id>(c_idx));
      ASSERT_EQ(got.size(), expected.size())
          << "trial " << trial << " origin " << origin.ToString();
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(static_cast<size_t>(got[i]), expected[i]);
      }
    }
  }
}

TEST(WindowSkylineTest, EmptyWindowGivesEmptyFrontier) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point q = PaperExampleQuery();
  EXPECT_TRUE(WindowSkyline(tree, ds.points[1], q, q, 1).empty());
  EXPECT_EQ(WindowSkyline(tree, ds.points[0], q, q, 0),
            (std::vector<RStarTree::Id>{1}));
}

TEST(WindowSkylineTest, TouchesFewerNodesThanFullWindowQuery) {
  const Dataset ds = GenerateUniform(50000, 2, 68);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  // Huge window: c in one corner, q in the other.
  const Point c({0.05, 0.05});
  const Point q({0.95, 0.95});
  tree.ResetStats();
  const auto frontier = WindowSkyline(tree, c, q, q);
  const uint64_t fast_reads = tree.stats().node_reads;
  tree.ResetStats();
  const auto lambda = WindowQuery(tree, c, q);
  const uint64_t full_reads = tree.stats().node_reads;
  EXPECT_LT(frontier.size(), lambda.size() / 10);
  EXPECT_LT(fast_reads, full_reads / 4)
      << "fast " << fast_reads << " full " << full_reads;
}

TEST(WindowQueryTest, EarlyExitTouchesFewerNodes) {
  const Dataset ds = GenerateUniform(20000, 2, 77);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point c({0.5, 0.5});
  const Point q({0.1, 0.1});  // Huge window: many culprits.
  tree.ResetStats();
  ASSERT_FALSE(WindowEmpty(tree, c, q));
  const uint64_t probe_reads = tree.stats().node_reads;
  tree.ResetStats();
  WindowQuery(tree, c, q);
  const uint64_t full_reads = tree.stats().node_reads;
  EXPECT_LT(probe_reads, full_reads / 4);
}

}  // namespace
}  // namespace wnrs
