// End-to-end loopback tests for WnrsServer/WnrsClient: answers received
// over the wire must be bit-identical to direct engine calls for all
// seven request kinds, scheduler statuses (deadline miss, admission
// reject, shutdown) must map onto wire responses, pipelining must answer
// in order, and malformed frames must produce an error response followed
// by a clean close — never a crash.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "net/client.h"
#include "net/socket_io.h"
#include "net/wire.h"

namespace wnrs {
namespace net {
namespace {

using serve::RequestKind;
using serve::WhyNotRequest;
using serve::WhyNotResponse;

WhyNotEngine MakeEngine(size_t n = 150, uint64_t seed = 5) {
  WhyNotEngineOptions options;
  options.num_threads = 1;
  return WhyNotEngine(GenerateCarDb(n, seed), options);
}

WhyNotRequest MakeRequest(RequestKind kind, const Point& q, size_t c = 0) {
  WhyNotRequest request;
  request.kind = kind;
  request.q = q;
  request.c = c;
  return request;
}

/// Bounded wait for a server-side condition driven by a client-side
/// send (the network makes an in-process handshake impossible).
template <typename Pred>
void AwaitOrFail(Pred pred, const char* what) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ExpectCandidatesEqual(const std::vector<Candidate>& a,
                           const std::vector<Candidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point, b[i].point);  // exact: doubles travel bit-cast
    EXPECT_EQ(a[i].cost, b[i].cost);
  }
}

TEST(NetServerTest, LoopbackAnswersMatchDirectEngineForAllKinds) {
  WhyNotEngine engine = MakeEngine();
  engine.PrecomputeApproxDsls(4);
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const Point q = engine.products().points[3];
  const size_t c = 11;

  auto r = client.value()->Call(MakeRequest(RequestKind::kReverseSkyline, q));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r.value().status.ok()) << r.value().status.ToString();
  EXPECT_TRUE(r.value().completed);
  EXPECT_EQ(r.value().reverse_skyline(), engine.ReverseSkyline(q));

  r = client.value()->Call(MakeRequest(RequestKind::kExplain, q, c));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  const WhyNotExplanation explain = engine.Explain(c, q);
  EXPECT_EQ(r.value().explanation().culprits, explain.culprits);
  EXPECT_EQ(r.value().explanation().frontier, explain.frontier);

  r = client.value()->Call(MakeRequest(RequestKind::kModifyWhyNot, q, c));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  const MwpResult mwp = engine.ModifyWhyNot(c, q);
  EXPECT_EQ(r.value().mwp().culprits, mwp.culprits);
  ExpectCandidatesEqual(r.value().mwp().candidates, mwp.candidates);

  r = client.value()->Call(MakeRequest(RequestKind::kModifyQuery, q, c));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  const MqpResult mqp = engine.ModifyQuery(c, q);
  EXPECT_EQ(r.value().mqp().culprits, mqp.culprits);
  ExpectCandidatesEqual(r.value().mqp().candidates, mqp.candidates);

  r = client.value()->Call(MakeRequest(RequestKind::kSafeRegion, q));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  ASSERT_NE(r.value().safe_region(), nullptr);
  const SafeRegionResult direct_sr = engine.SafeRegion(q);
  ASSERT_EQ(r.value().safe_region()->region.size(), direct_sr.region.size());
  for (size_t i = 0; i < direct_sr.region.size(); ++i) {
    EXPECT_EQ(r.value().safe_region()->region.rects()[i],
              direct_sr.region.rects()[i]);
  }
  EXPECT_EQ(r.value().safe_region()->truncated, direct_sr.truncated);

  r = client.value()->Call(MakeRequest(RequestKind::kModifyBoth, q, c));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  const MwqResult mwq = engine.ModifyBoth(c, q);
  EXPECT_EQ(r.value().mwq().overlap, mwq.overlap);
  EXPECT_EQ(r.value().mwq().best_cost, mwq.best_cost);
  ExpectCandidatesEqual(r.value().mwq().query_candidates,
                        mwq.query_candidates);
  ExpectCandidatesEqual(r.value().mwq().why_not_candidates,
                        mwq.why_not_candidates);

  r = client.value()->Call(MakeRequest(RequestKind::kModifyBothApprox, q, c));
  ASSERT_TRUE(r.ok() && r.value().status.ok());
  const MwqResult approx = engine.ModifyBothApprox(c, q);
  EXPECT_EQ(r.value().mwq().best_cost, approx.best_cost);
  ExpectCandidatesEqual(r.value().mwq().query_candidates,
                        approx.query_candidates);

  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.frames_received, 7u);
  EXPECT_EQ(stats.responses_sent, 7u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

TEST(NetServerTest, EngineErrorsTravelAsStatusNotCrash) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  const Point q = engine.products().points[0];

  // Out-of-range customer index.
  auto r = client.value()->Call(
      MakeRequest(RequestKind::kModifyWhyNot, q, engine.customers().size()));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value().payload_tag(), WhyNotResponse::kNoPayload);
  EXPECT_FALSE(r.value().status.message().empty());

  // Approx MWQ without the precomputed store.
  r = client.value()->Call(MakeRequest(RequestKind::kModifyBothApprox, q, 4));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status.code(), StatusCode::kFailedPrecondition);
}

TEST(NetServerTest, DeadlineMissMapsOntoWireStatus) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());

  // A zero relative timeout is expired the moment Submit resolves it.
  WhyNotRequest request =
      MakeRequest(RequestKind::kModifyBoth, engine.products().points[0], 7);
  request.timeout = std::chrono::microseconds(0);
  auto r = client.value()->Call(request);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(r.value().completed);
  EXPECT_EQ(r.value().payload_tag(), WhyNotResponse::kNoPayload);
  EXPECT_EQ(server.value()->scheduler().stats().deadline_misses, 1u);
}

TEST(NetServerTest, AdmissionRejectMapsOntoWireStatus) {
  WhyNotEngine engine = MakeEngine();
  ServerOptions options;
  options.scheduler.start_paused = true;
  options.scheduler.max_queue_depth = 1;
  auto server = WnrsServer::Start(&engine, options);
  ASSERT_TRUE(server.ok());
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  const Point q = engine.products().points[0];

  // First request fills the paused queue...
  ASSERT_TRUE(
      client.value()->Send(1, MakeRequest(RequestKind::kReverseSkyline, q))
          .ok());
  AwaitOrFail([&] { return server.value()->scheduler().queue_depth() == 1; },
              "first request never reached the scheduler queue");
  // ...so the second is rejected by admission control at Submit.
  ASSERT_TRUE(
      client.value()->Send(2, MakeRequest(RequestKind::kSafeRegion, q)).ok());
  AwaitOrFail(
      [&] {
        return server.value()->scheduler().stats().admission_rejects == 1;
      },
      "second request was never rejected");
  server.value()->scheduler().Resume();

  // One connection answers in submission order: ok first, reject second.
  auto r1 = client.value()->Receive();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().request_id, 1u);
  EXPECT_TRUE(r1.value().response.status.ok());
  auto r2 = client.value()->Receive();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2.value().request_id, 2u);
  EXPECT_EQ(r2.value().response.status.code(), StatusCode::kResourceExhausted);
}

TEST(NetServerTest, PipelinedRequestsAnswerInOrder) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());

  constexpr uint64_t kRequests = 20;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    const Point q = engine.products().points[id % 5];
    ASSERT_TRUE(
        client.value()
            ->Send(id, MakeRequest(RequestKind::kReverseSkyline, q))
            .ok());
  }
  for (uint64_t id = 1; id <= kRequests; ++id) {
    auto r = client.value()->Receive();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().request_id, id);
    EXPECT_TRUE(r.value().response.status.ok());
  }
}

TEST(NetServerTest, MalformedPayloadGetsErrorResponseThenClose) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());
  auto fd = TcpConnect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(fd.ok());

  // Valid header, garbage payload whose first 8 bytes still carry an id.
  std::string frame;
  WireWriter w(&frame);
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(FrameType::kRequest));
  w.U16(0);
  w.U32(12);
  w.U64(77);  // salvageable request id
  w.U32(0xDEADBEEFu);
  ASSERT_TRUE(SendAll(fd.value(), frame).ok());

  auto response = ReadFrame(fd.value());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response.value().has_value());
  auto decoded = DecodeResponsePayload(response.value()->second);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, 77u);
  EXPECT_EQ(decoded.value().response.status.code(),
            StatusCode::kInvalidArgument);

  // After a framing error the server closes the connection.
  auto eof = ReadFrame(fd.value());
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
  CloseFd(fd.value());
  EXPECT_EQ(server.value()->stats().decode_errors, 1u);
}

TEST(NetServerTest, BadMagicClosesConnection) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());
  auto fd = TcpConnect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(fd.ok());

  std::string junk(kFrameHeaderSize, '\x5A');
  ASSERT_TRUE(SendAll(fd.value(), junk).ok());
  // The error response (id 0) arrives, then EOF.
  auto response = ReadFrame(fd.value());
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().has_value());
  auto decoded = DecodeResponsePayload(response.value()->second);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, 0u);
  EXPECT_FALSE(decoded.value().response.status.ok());
  auto eof = ReadFrame(fd.value());
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
  CloseFd(fd.value());
}

TEST(NetServerTest, StopStillAnswersAdmittedRequests) {
  WhyNotEngine engine = MakeEngine();
  ServerOptions options;
  options.scheduler.start_paused = true;
  auto server = WnrsServer::Start(&engine, options);
  ASSERT_TRUE(server.ok());
  auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.value()
                  ->Send(5, MakeRequest(RequestKind::kReverseSkyline,
                                        engine.products().points[0]))
                  .ok());
  AwaitOrFail([&] { return server.value()->scheduler().queue_depth() == 1; },
              "request never reached the scheduler queue");
  // Stop with the scheduler still paused: the queued request resolves
  // Unavailable and its response is flushed before the socket closes.
  server.value()->Stop();

  auto r = client.value()->Receive();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().request_id, 5u);
  EXPECT_EQ(r.value().response.status.code(), StatusCode::kUnavailable);
  // Next read sees the close.
  EXPECT_FALSE(client.value()->Receive().ok());
}

// Pinned regression: Stop must be safe to call from several threads at
// once, with live connections mid-request. Before stop_mu_ serialized
// it, a racing second caller saw stopped_ already set and returned
// while the first was still joining reader/writer threads — callers
// could then destroy the server under its own live threads — and the
// shutdown walk iterated connections_ without mu_ against AcceptLoop's
// emplace_back. Every caller must return only after the teardown is
// fully complete.
TEST(NetServerTest, ConcurrentStopJoinsEverythingExactlyOnce) {
  for (int round = 0; round < 10; ++round) {
    WhyNotEngine engine = MakeEngine(60, 7);
    auto server = WnrsServer::Start(&engine);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    const uint16_t port = server.value()->port();

    // Live connections with pipelined in-flight requests so Stop races
    // real reader/writer traffic, not idle sockets.
    constexpr size_t kClients = 3;
    std::vector<std::unique_ptr<WnrsClient>> clients;
    for (size_t i = 0; i < kClients; ++i) {
      auto client = WnrsClient::Connect("127.0.0.1", port);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (uint64_t id = 0; id < 3; ++id) {
        ASSERT_TRUE(
            (*client)
                ->Send(id, MakeRequest(RequestKind::kReverseSkyline,
                                       engine.products().points[i]))
                .ok());
      }
      clients.push_back(std::move(*client));
    }

    constexpr int kStoppers = 4;
    std::atomic<int> ready{0};
    std::vector<std::thread> stoppers;
    stoppers.reserve(kStoppers);
    for (int t = 0; t < kStoppers; ++t) {
      stoppers.emplace_back([&] {
        // Spin barrier: all callers enter Stop together.
        ++ready;
        while (ready.load() < kStoppers) {
        }
        server.value()->Stop();
      });
    }
    for (std::thread& th : stoppers) th.join();

    // Every Stop returned only after full teardown: the listener is
    // closed (fresh connects refuse) and each connection was shut down
    // cleanly, so draining a client ends in a definite close, not a hang.
    EXPECT_FALSE(WnrsClient::Connect("127.0.0.1", port).ok());
    for (std::unique_ptr<WnrsClient>& client : clients) {
      while (client->Receive().ok()) {
      }
    }
    // Stop after Stop is a no-op (also exercised by the destructor).
    server.value()->Stop();
  }
}

TEST(NetServerTest, MultipleConnectionsServeConcurrently) {
  WhyNotEngine engine = MakeEngine();
  auto server = WnrsServer::Start(&engine);
  ASSERT_TRUE(server.ok());

  constexpr size_t kClients = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = WnrsClient::Connect("127.0.0.1", server.value()->port());
      ASSERT_TRUE(client.ok());
      const Point q = engine.products().points[t];
      const std::vector<size_t> expected = engine.ReverseSkyline(q);
      for (int i = 0; i < 5; ++i) {
        auto r =
            client.value()->Call(MakeRequest(RequestKind::kReverseSkyline, q));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_TRUE(r.value().status.ok());
        EXPECT_EQ(r.value().reverse_skyline(), expected);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server.value()->stats().connections_accepted, kClients);
  EXPECT_EQ(server.value()->stats().responses_sent, kClients * 5);
}

}  // namespace
}  // namespace net
}  // namespace wnrs
