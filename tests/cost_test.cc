#include "core/cost.h"

#include <gtest/gtest.h>

namespace wnrs {
namespace {

TEST(MinMaxNormalizerTest, UnitCubeMapping) {
  const MinMaxNormalizer norm(Rectangle(Point({0, 10}), Point({2, 20})));
  EXPECT_EQ(norm.Normalize(Point({0, 10})), Point({0, 0}));
  EXPECT_EQ(norm.Normalize(Point({2, 20})), Point({1, 1}));
  EXPECT_EQ(norm.Normalize(Point({1, 15})), Point({0.5, 0.5}));
}

TEST(MinMaxNormalizerTest, DenormalizeInverts) {
  const MinMaxNormalizer norm(Rectangle(Point({-3, 5}), Point({7, 8})));
  const Point p({1.25, 6.5});
  EXPECT_TRUE(norm.Denormalize(norm.Normalize(p)).ApproxEquals(p));
}

TEST(MinMaxNormalizerTest, OutOfBoundsExtrapolates) {
  const MinMaxNormalizer norm(Rectangle(Point({0, 0}), Point({10, 10})));
  EXPECT_EQ(norm.Normalize(Point({20, -10})), Point({2, -1}));
}

TEST(MinMaxNormalizerTest, DegenerateDimensionMapsToZero) {
  const MinMaxNormalizer norm(Rectangle(Point({5, 0}), Point({5, 10})));
  EXPECT_EQ(norm.Normalize(Point({5, 5}))[0], 0.0);
  EXPECT_DOUBLE_EQ(
      norm.NormalizedWeightedL1(Point({5, 0}), Point({5, 10}), {0.5, 0.5}),
      0.5);
}

TEST(EqualWeightsTest, SumToOne) {
  const std::vector<double> w = EqualWeights(4);
  ASSERT_EQ(w.size(), 4u);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
}

TEST(CostModelTest, PaperQuickstartCosts) {
  // Universe = paper example bounds: price [2.5, 26], mileage [20, 90].
  const Rectangle bounds(Point({2.5, 20}), Point({26, 90}));
  const CostModel cost = CostModel::EqualWeightsFor(bounds);
  // MWP option (8, 30) from c1 = (5, 30): price moves 3 of 23.5.
  EXPECT_NEAR(cost.WhyNotMoveCost(Point({5, 30}), Point({8, 30})),
              0.5 * 3.0 / 23.5, 1e-12);
  // MQP option (7.5, 55) from q = (8.5, 55): price moves 1 of 23.5.
  EXPECT_NEAR(cost.QueryMoveCost(Point({8.5, 55}), Point({7.5, 55})),
              0.5 * 1.0 / 23.5, 1e-12);
}

TEST(CostModelTest, CustomWeights) {
  const Rectangle bounds(Point({0, 0}), Point({1, 1}));
  const CostModel cost(bounds, {1.0, 0.0}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(cost.QueryMoveCost(Point({0, 0}), Point({0.5, 0.5})),
                   0.5);
  EXPECT_DOUBLE_EQ(cost.WhyNotMoveCost(Point({0, 0}), Point({0.5, 0.5})),
                   0.5);
  EXPECT_DOUBLE_EQ(cost.QueryMoveCost(Point({0, 0}), Point({0.0, 0.9})),
                   0.0);
}

TEST(CostModelTest, CostIsSymmetricAndZeroAtIdentity) {
  const Rectangle bounds(Point({0, 0}), Point({4, 4}));
  const CostModel cost = CostModel::EqualWeightsFor(bounds);
  const Point a({1, 2});
  const Point b({3, 0});
  EXPECT_DOUBLE_EQ(cost.WhyNotMoveCost(a, b), cost.WhyNotMoveCost(b, a));
  EXPECT_DOUBLE_EQ(cost.WhyNotMoveCost(a, a), 0.0);
}

TEST(SortCandidatesTest, OrdersByCostThenPoint) {
  std::vector<Candidate> cands = {{Point({2, 2}), 0.5},
                                  {Point({1, 1}), 0.2},
                                  {Point({0, 0}), 0.5}};
  SortCandidates(&cands);
  EXPECT_EQ(cands[0].point, Point({1, 1}));
  EXPECT_EQ(cands[1].point, Point({0, 0}));
  EXPECT_EQ(cands[2].point, Point({2, 2}));
}

}  // namespace
}  // namespace wnrs
