#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace wnrs {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeFollowsHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, EachIndexRunsExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10000;
    std::vector<int> hits(kN, 0);
    pool.ParallelFor(0, kN, [&](size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(kN))
        << "threads=" << threads;
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i], 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, RespectsRangeOffset) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(30, 70, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], (i >= 30 && i < 70) ? 1 : 0) << "i=" << i;
  }
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelMapMatchesSerialMap) {
  ThreadPool pool(4);
  constexpr size_t kN = 2048;
  const std::vector<double> out =
      pool.ParallelMap<double>(kN, [](size_t i) { return 0.5 * i; });
  ASSERT_EQ(out.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], 0.5 * i);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 64;
  std::vector<std::vector<int>> hits(kOuter,
                                     std::vector<int>(kInner, 0));
  pool.ParallelFor(0, kOuter, [&](size_t o) {
    pool.ParallelFor(0, kInner, [&](size_t i) { ++hits[o][i]; });
  });
  for (size_t o = 0; o < kOuter; ++o) {
    for (size_t i = 0; i < kInner; ++i) {
      ASSERT_EQ(hits[o][i], 1) << "o=" << o << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SingleElementRangeMayStillParallelizeInside) {
  ThreadPool pool(4);
  std::vector<int> hits(256, 0);
  // A one-element outer loop runs inline without marking the thread as
  // inside a parallel region, so the inner loop can still use the pool.
  pool.ParallelFor(0, 1, [&](size_t) {
    pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "i=" << i;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSerializedSafely) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<int> a(kN, 0);
  std::vector<int> b(kN, 0);
  std::thread other(
      [&] { pool.ParallelFor(0, kN, [&](size_t i) { ++a[i]; }); });
  pool.ParallelFor(0, kN, [&](size_t i) { ++b[i]; });
  other.join();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], 1);
    ASSERT_EQ(b[i], 1);
  }
}

TEST(ThreadPoolTest, ManySmallJobsDoNotLeakOrHang) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.ParallelFor(0, 8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500u * 8u);
}

TEST(ThreadPoolTest, OneThreadPoolOwnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.ParallelFor(0, ran.size(),
                   [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);
  }
}

}  // namespace
}  // namespace wnrs
