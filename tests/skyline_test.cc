#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/dominance.h"
#include "index/bulk_load.h"
#include "skyline/bbs.h"
#include "skyline/bnl.h"
#include "skyline/dnc.h"
#include "skyline/dynamic.h"
#include "skyline/sfs.h"

namespace wnrs {
namespace {

/// Quadratic reference skyline.
std::vector<size_t> BruteSkyline(const std::vector<Point>& points) {
  std::vector<size_t> out;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && Dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

TEST(BnlTest, EmptyAndSingle) {
  EXPECT_TRUE(SkylineIndicesBnl({}).empty());
  EXPECT_EQ(SkylineIndicesBnl({Point({1, 2})}),
            (std::vector<size_t>{0}));
}

TEST(BnlTest, PaperExample) {
  EXPECT_EQ(SkylineIndicesBnl(PaperExampleDataset().points),
            (std::vector<size_t>{0, 2, 4}));
}

TEST(BnlTest, DuplicatesAllKept) {
  const std::vector<Point> points = {Point({1, 1}), Point({1, 1}),
                                     Point({2, 2})};
  EXPECT_EQ(SkylineIndicesBnl(points), (std::vector<size_t>{0, 1}));
}

TEST(BnlTest, TotallyOrderedChainKeepsMinimum) {
  std::vector<Point> points;
  for (int i = 10; i >= 0; --i) {
    points.push_back(Point({double(i), double(i)}));
  }
  EXPECT_EQ(SkylineIndicesBnl(points), (std::vector<size_t>{10}));
}

TEST(BnlTest, AntiChainKeepsEverything) {
  std::vector<Point> points;
  for (int i = 0; i <= 10; ++i) {
    points.push_back(Point({double(i), double(10 - i)}));
  }
  EXPECT_EQ(SkylineIndicesBnl(points).size(), 11u);
}

TEST(BnlTest, SkylinePointsWrapper) {
  const std::vector<Point> sk =
      SkylineBnl({Point({2, 1}), Point({1, 2}), Point({3, 3})});
  EXPECT_EQ(sk.size(), 2u);
}

class SkylineDistributionTest
    : public ::testing::TestWithParam<std::tuple<int, size_t, size_t>> {};

TEST_P(SkylineDistributionTest, BnlMatchesBruteForce) {
  const auto [dist, n, dims] = GetParam();
  Dataset ds;
  switch (dist) {
    case 0:
      ds = GenerateUniform(n, dims, n * dims);
      break;
    case 1:
      ds = GenerateCorrelated(n, dims, n * dims);
      break;
    default:
      ds = GenerateAnticorrelated(n, dims, n * dims);
      break;
  }
  EXPECT_EQ(SkylineIndicesBnl(ds.points), BruteSkyline(ds.points));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineDistributionTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(size_t{50}, size_t{500}),
                       ::testing::Values(size_t{2}, size_t{3}, size_t{4})));

TEST(SfsTest, MatchesBnlAcrossDistributions) {
  for (int dist = 0; dist < 3; ++dist) {
    for (size_t dims : {size_t{2}, size_t{3}}) {
      Dataset ds;
      switch (dist) {
        case 0:
          ds = GenerateUniform(700, dims, 31 + dims);
          break;
        case 1:
          ds = GenerateCorrelated(700, dims, 32 + dims);
          break;
        default:
          ds = GenerateAnticorrelated(700, dims, 33 + dims);
          break;
      }
      EXPECT_EQ(SkylineIndicesSfs(ds.points), SkylineIndicesBnl(ds.points))
          << "dist " << dist << " dims " << dims;
    }
  }
}

TEST(SfsTest, EdgeCases) {
  EXPECT_TRUE(SkylineIndicesSfs({}).empty());
  EXPECT_EQ(SkylineIndicesSfs({Point({1, 2})}), (std::vector<size_t>{0}));
  // Duplicates: both kept, like BNL.
  EXPECT_EQ(SkylineIndicesSfs({Point({1, 1}), Point({1, 1})}),
            (std::vector<size_t>{0, 1}));
}

TEST(SfsTest, PaperExample) {
  EXPECT_EQ(SkylineIndicesSfs(PaperExampleDataset().points),
            (std::vector<size_t>{0, 2, 4}));
}

TEST(DncTest, MatchesBnlAcrossDistributions) {
  for (int dist = 0; dist < 3; ++dist) {
    Dataset ds;
    switch (dist) {
      case 0:
        ds = GenerateUniform(900, 2, 41);
        break;
      case 1:
        ds = GenerateCorrelated(900, 2, 42);
        break;
      default:
        ds = GenerateAnticorrelated(900, 2, 43);
        break;
    }
    EXPECT_EQ(SkylineIndicesDnc(ds.points), SkylineIndicesBnl(ds.points))
        << "dist " << dist;
  }
}

TEST(DncTest, TiesAndDuplicates) {
  // Equal-x columns, equal-y rows, and exact duplicates.
  const std::vector<Point> pts = {Point({1, 5}), Point({1, 3}),
                                  Point({1, 3}), Point({2, 3}),
                                  Point({3, 1}), Point({3, 1}),
                                  Point({4, 1})};
  EXPECT_EQ(SkylineIndicesDnc(pts), SkylineIndicesBnl(pts));
}

TEST(DncTest, EdgeCasesAndHigherDims) {
  EXPECT_TRUE(SkylineIndicesDnc({}).empty());
  EXPECT_EQ(SkylineIndicesDnc({Point({7, 7})}), (std::vector<size_t>{0}));
  // 3-D falls back but stays correct.
  const Dataset ds = GenerateUniform(300, 3, 44);
  EXPECT_EQ(SkylineIndicesDnc(ds.points), SkylineIndicesBnl(ds.points));
}

TEST(DncTest, PaperExample) {
  EXPECT_EQ(SkylineIndicesDnc(PaperExampleDataset().points),
            (std::vector<size_t>{0, 2, 4}));
}

TEST(BbsTest, MatchesBnlOnRandomData) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Dataset ds = GenerateUniform(800, 2, seed);
    RStarTree tree = BulkLoadPoints(2, ds.points);
    std::vector<RStarTree::Id> bbs = BbsSkyline(tree);
    std::sort(bbs.begin(), bbs.end());
    const std::vector<size_t> bnl = SkylineIndicesBnl(ds.points);
    ASSERT_EQ(bbs.size(), bnl.size()) << "seed " << seed;
    for (size_t i = 0; i < bbs.size(); ++i) {
      EXPECT_EQ(static_cast<size_t>(bbs[i]), bnl[i]);
    }
  }
}

TEST(BbsTest, MatchesBnlOnAnticorrelated) {
  const Dataset ds = GenerateAnticorrelated(1000, 2, 7);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  std::vector<RStarTree::Id> bbs = BbsSkyline(tree);
  std::sort(bbs.begin(), bbs.end());
  const std::vector<size_t> bnl = SkylineIndicesBnl(ds.points);
  ASSERT_EQ(bbs.size(), bnl.size());
  for (size_t i = 0; i < bbs.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(bbs[i]), bnl[i]);
  }
}

TEST(BbsTest, PrunesNodes) {
  // BBS should touch far fewer nodes than a full scan on correlated data.
  const Dataset ds = GenerateCorrelated(20000, 2, 3);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  tree.ResetStats();
  BbsSkyline(tree);
  const uint64_t bbs_reads = tree.stats().node_reads;
  tree.ResetStats();
  tree.RangeQueryIds(Rectangle(Point({-1, -1}), Point({2, 2})));
  const uint64_t scan_reads = tree.stats().node_reads;
  EXPECT_LT(bbs_reads, scan_reads / 2);
}

TEST(DynamicSkylineTest, PaperAnchors) {
  const Dataset ds = PaperExampleDataset();
  const Point q = PaperExampleQuery();
  EXPECT_EQ(DynamicSkylineIndices(ds.points, q),
            (std::vector<size_t>{1, 5}));
  EXPECT_EQ(DynamicSkylineIndices(ds.points, ds.points[1], 1),
            (std::vector<size_t>{0, 3, 5}));
}

TEST(DynamicSkylineTest, BbsDynamicMatchesBruteTransform) {
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    const Dataset ds = GenerateUniform(600, 2, seed);
    RStarTree tree = BulkLoadPoints(2, ds.points);
    Rng rng(seed);
    for (int trial = 0; trial < 5; ++trial) {
      const Point origin({rng.NextDouble(), rng.NextDouble()});
      std::vector<RStarTree::Id> bbs = BbsDynamicSkyline(tree, origin);
      std::sort(bbs.begin(), bbs.end());
      const std::vector<size_t> brute =
          DynamicSkylineIndices(ds.points, origin);
      ASSERT_EQ(bbs.size(), brute.size());
      for (size_t i = 0; i < bbs.size(); ++i) {
        EXPECT_EQ(static_cast<size_t>(bbs[i]), brute[i]);
      }
    }
  }
}

TEST(DynamicSkylineTest, ExcludeIdIsHonored) {
  const Dataset ds = PaperExampleDataset();
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Point c2 = ds.points[1];
  // Without exclusion, c2's own tuple (distance 0) dominates everything.
  const std::vector<RStarTree::Id> with_self = BbsDynamicSkyline(tree, c2);
  EXPECT_EQ(with_self, (std::vector<RStarTree::Id>{1}));
  // With exclusion, the paper's DSL(c2).
  std::vector<RStarTree::Id> without = BbsDynamicSkyline(tree, c2, 1);
  std::sort(without.begin(), without.end());
  EXPECT_EQ(without, (std::vector<RStarTree::Id>{0, 3, 5}));
}

TEST(DynamicSkylineTest, InDynamicSkylineMembership) {
  const Dataset ds = PaperExampleDataset();
  const Point q = PaperExampleQuery();
  // q is in DSL(c2) but not DSL(c1).
  EXPECT_TRUE(InDynamicSkyline(ds.points, ds.points[1], q, 1));
  EXPECT_FALSE(InDynamicSkyline(ds.points, ds.points[0], q, 0));
}

TEST(DynamicSkylinePropertyTest, SkylineMembersAreMutuallyNonDominated) {
  const Dataset ds = GenerateAnticorrelated(400, 3, 21);
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    Point origin(3);
    for (size_t i = 0; i < 3; ++i) origin[i] = rng.NextDouble();
    const std::vector<size_t> dsl = DynamicSkylineIndices(ds.points, origin);
    for (size_t a : dsl) {
      for (size_t b : dsl) {
        if (a == b) continue;
        EXPECT_FALSE(
            DynamicallyDominates(ds.points[a], ds.points[b], origin));
      }
    }
    // And every non-member is dominated by some member.
    std::vector<bool> in_dsl(ds.points.size(), false);
    for (size_t i : dsl) in_dsl[i] = true;
    for (size_t i = 0; i < ds.points.size(); ++i) {
      if (in_dsl[i]) continue;
      bool dominated = false;
      for (size_t s : dsl) {
        if (DynamicallyDominates(ds.points[s], ds.points[i], origin)) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "point " << i << " escaped the skyline";
    }
  }
}

}  // namespace
}  // namespace wnrs
