#include "skyline/ddr.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "skyline/dynamic.h"

namespace wnrs {
namespace {

TEST(MaxExtentsTest, CoversUniverseFromAnyCenter) {
  const Rectangle universe(Point({0, 0}), Point({10, 10}));
  EXPECT_EQ(MaxExtents(Point({2, 9}), universe), Point({8, 9}));
  EXPECT_EQ(MaxExtents(Point({5, 5}), universe), Point({5, 5}));
  EXPECT_EQ(MaxExtents(Point({0, 0}), universe), Point({10, 10}));
}

TEST(DdrTest, EmptyDslYieldsWholeBox) {
  const Rectangle universe(Point({0, 0}), Point({10, 10}));
  const Point c({4, 6});
  const RectRegion region =
      AntiDominanceRegion(c, {}, MaxExtents(c, universe));
  ASSERT_EQ(region.size(), 1u);
  EXPECT_TRUE(region.Contains(Point({0, 0})));
  EXPECT_TRUE(region.Contains(Point({10, 10})));
}

TEST(DdrTest, RectangleCountIsDslSizePlusOne) {
  const Rectangle universe(Point({0, 0}), Point({100, 100}));
  const Point c({50, 50});
  std::vector<Point> dsl = {Point({2, 30}), Point({10, 20}), Point({25, 5})};
  const RectRegion region =
      AntiDominanceRegion(c, dsl, MaxExtents(c, universe));
  EXPECT_EQ(region.size(), 4u);
}

/// Membership oracle: x is in the true anti-dominance region of c iff no
/// DSL point dominates x's transformed image.
bool InTrueAdr(const Point& x, const Point& c,
               const std::vector<Point>& dsl_t) {
  const Point t = ToDistanceSpace(x, c);
  for (const Point& s : dsl_t) {
    if (Dominates(s, t)) return false;
  }
  return true;
}

TEST(DdrPropertyTest, RegionMatchesMembershipOracle) {
  // Build DDR̄ from the DSL of random customers over random data and
  // compare rectangle membership against the oracle at random probes.
  // Rectangle membership may differ from the oracle only on the closed
  // staircase boundary (measure zero), which random probes never hit.
  Rng rng(6);
  const Dataset ds = GenerateUniform(300, 2, 15);
  const Rectangle universe(Point({0, 0}), Point({1, 1}));
  for (int trial = 0; trial < 10; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point& c = ds.points[c_idx];
    const std::vector<size_t> dsl =
        DynamicSkylineIndices(ds.points, c, c_idx);
    std::vector<Point> dsl_t;
    for (size_t i : dsl) dsl_t.push_back(ToDistanceSpace(ds.points[i], c));
    RectRegion region = AntiDominanceRegion(c, dsl_t, MaxExtents(c, universe));
    region.ClipTo(universe);
    for (int probe = 0; probe < 2000; ++probe) {
      const Point x({rng.NextDouble(), rng.NextDouble()});
      EXPECT_EQ(region.Contains(x), InTrueAdr(x, c, dsl_t))
          << "customer " << c.ToString() << " probe " << x.ToString();
    }
  }
}

TEST(DdrTest, CustomerItselfIsAlwaysInside) {
  const Dataset ds = GenerateUniform(200, 2, 77);
  const Rectangle universe = ds.Bounds();
  Rng rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point& c = ds.points[c_idx];
    const std::vector<size_t> dsl =
        DynamicSkylineIndices(ds.points, c, c_idx);
    std::vector<Point> dsl_t;
    for (size_t i : dsl) dsl_t.push_back(ToDistanceSpace(ds.points[i], c));
    const RectRegion region =
        AntiDominanceRegion(c, dsl_t, MaxExtents(c, universe));
    EXPECT_TRUE(region.Contains(c));
  }
}

TEST(ApproxDdrTest, SubsetOfExactRegion) {
  // The approximated region must never contain a point outside the exact
  // region (Fig. 16: it only *misses* area).
  Rng rng(91);
  const Dataset ds = GenerateAnticorrelated(400, 2, 92);
  const Rectangle universe(Point({0, 0}), Point({1, 1}));
  for (int trial = 0; trial < 5; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point& c = ds.points[c_idx];
    const std::vector<size_t> dsl =
        DynamicSkylineIndices(ds.points, c, c_idx);
    std::vector<Point> dsl_t;
    for (size_t i : dsl) dsl_t.push_back(ToDistanceSpace(ds.points[i], c));
    RectRegion exact = AntiDominanceRegion(c, dsl_t, MaxExtents(c, universe));
    // Sample the skyline to k = 3.
    std::vector<Point> sampled = dsl_t;
    if (sampled.size() > 3) {
      std::vector<Point> keep;
      for (size_t i = 0; i < sampled.size(); i += sampled.size() / 3) {
        keep.push_back(sampled[i]);
      }
      keep.push_back(sampled.back());
      sampled = keep;
    }
    RectRegion approx =
        ApproxAntiDominanceRegion(c, sampled, MaxExtents(c, universe));
    for (int probe = 0; probe < 2000; ++probe) {
      const Point x({rng.NextDouble(), rng.NextDouble()});
      if (approx.Contains(x)) {
        EXPECT_TRUE(InTrueAdr(x, c, sampled))
            << x.ToString() << " in approx region but dominated";
      }
    }
    (void)exact;
  }
}

TEST(ApproxDdrTest, EmptySampleYieldsWholeBox) {
  const Rectangle universe(Point({0, 0}), Point({10, 10}));
  const Point c({4, 6});
  const RectRegion region =
      ApproxAntiDominanceRegion(c, {}, MaxExtents(c, universe));
  ASSERT_EQ(region.size(), 1u);
  EXPECT_TRUE(region.Contains(Point({10, 10})));
}

}  // namespace
}  // namespace wnrs
