#include "core/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/random.h"
#include "data/generators.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

TEST(EngineTest, SharedRelationAccessors) {
  WhyNotEngine engine(PaperExampleDataset());
  EXPECT_TRUE(engine.shared_relation());
  EXPECT_EQ(engine.products().size(), 8u);
  EXPECT_EQ(&engine.products(), &engine.customers());
  EXPECT_EQ(engine.universe().lo(), Point({2.5, 20.0}));
  EXPECT_EQ(engine.universe().hi(), Point({26.0, 90.0}));
}

TEST(EngineTest, BichromaticMode) {
  WhyNotEngine engine(GenerateUniform(200, 2, 1),
                      GenerateUniform(50, 2, 2));
  EXPECT_FALSE(engine.shared_relation());
  EXPECT_EQ(engine.products().size(), 200u);
  EXPECT_EQ(engine.customers().size(), 50u);
  Rng rng(3);
  const Point q({rng.NextDouble(), rng.NextDouble()});
  const std::vector<size_t> rsl = engine.ReverseSkyline(q);
  for (size_t c = 0; c < engine.customers().size(); ++c) {
    const bool member = engine.IsReverseSkylineMember(c, q);
    const bool listed =
        std::find(rsl.begin(), rsl.end(), c) != rsl.end();
    EXPECT_EQ(member, listed) << "customer " << c;
  }
}

TEST(EngineTest, SafeRegionIsCachedPerQuery) {
  WhyNotEngine engine(GenerateCarDb(300, 5));
  const Point q1 = engine.products().points[0];
  const SafeRegionResult& sr1 = engine.SafeRegion(q1);
  const SafeRegionResult& sr1_again = engine.SafeRegion(q1);
  EXPECT_EQ(&sr1, &sr1_again);  // Same cached object.
  const Point q2 = engine.products().points[1];
  engine.SafeRegion(q2);  // Evicts q1's entry.
  // Recompute for q1 still yields a region containing q1.
  EXPECT_TRUE(engine.SafeRegion(q1).region.Contains(q1));
}

TEST(EngineTest, ApproxRequiresPrecompute) {
  WhyNotEngine engine(GenerateCarDb(100, 6));
  EXPECT_FALSE(engine.HasApproxDsls());
  engine.PrecomputeApproxDsls(5);
  EXPECT_TRUE(engine.HasApproxDsls());
  const Point q = engine.products().points[0];
  const SafeRegionResult& sr = engine.ApproxSafeRegion(q);
  EXPECT_TRUE(sr.region.Contains(q));
}

TEST(EngineTest, ApproxMwqNeverBeatsMwpNorLosesToIt) {
  // Paper Tables V/VI: Approx-MWQ results are "no worse than MWP".
  WhyNotEngine engine(GenerateCarDb(400, 7));
  engine.PrecomputeApproxDsls(10);
  Rng rng(8);
  int exercised = 0;
  for (int trial = 0; trial < 30 && exercised < 10; ++trial) {
    const Point q =
        engine.products().points[rng.NextUint64(engine.products().size())];
    if (engine.ReverseSkyline(q).size() > 8) continue;
    const size_t c = rng.NextUint64(engine.customers().size());
    const MwqResult approx = engine.ModifyBothApprox(c, q);
    if (approx.already_member) continue;
    ++exercised;
    const MwpResult mwp = engine.ModifyWhyNot(c, q);
    ASSERT_FALSE(mwp.candidates.empty());
    const double approx_cost = approx.best_cost;
    EXPECT_LE(approx_cost, mwp.candidates.front().cost + 1e-9);
  }
  EXPECT_GE(exercised, 5);
}

TEST(EngineTest, MqpEvaluationCostChargesLostCustomers) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // Moving inside the safe region costs nothing.
  EXPECT_NEAR(engine.MqpEvaluationCost(q, Point({8.5, 56.0})), 0.0, 1e-9);
  // Moving far away both exits the region and loses customers.
  EXPECT_GT(engine.MqpEvaluationCost(q, Point({25.0, 20.0})), 0.1);
}

TEST(EngineTest, CustomWeightsBiasCosts) {
  WhyNotEngineOptions options;
  options.beta = {1.0, 0.0};  // Only price movement costs.
  WhyNotEngine engine(PaperExampleDataset(), options);
  const MwpResult r = engine.ModifyWhyNot(0, PaperExampleQuery());
  ASSERT_EQ(r.candidates.size(), 2u);
  // (5, 48.5) moves only mileage -> zero cost under beta = (1, 0).
  EXPECT_TRUE(r.candidates[0].point.ApproxEquals(Point({5.0, 48.5})));
  EXPECT_EQ(r.candidates[0].cost, 0.0);
}

TEST(EngineTest, NudgeToStrictMemberFixesBoundaryAnswers) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const MwpResult r = engine.ModifyWhyNot(0, q);
  for (const Candidate& cand : r.candidates) {
    const std::optional<Point> strict =
        engine.NudgeToStrictMember(cand.point, q, 0);
    ASSERT_TRUE(strict.has_value());
    // ... but the nudged point passes a real window probe.
    EXPECT_TRUE(strict->ApproxEquals(cand.point, 1e-3));
  }
}

TEST(EngineTest, ConstrainedSafeRegionIsClippedAndContainsQ) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // Only prices within [8, 12] allowed (Section V-B: "limiting certain
  // product feature").
  const Rectangle limits(Point({8.0, 20.0}), Point({12.0, 90.0}));
  const SafeRegionResult sr = engine.ConstrainedSafeRegion(q, limits);
  EXPECT_TRUE(sr.region.Contains(q));
  for (const Rectangle& r : sr.region.rects()) {
    EXPECT_TRUE(limits.ContainsRect(r)) << r.ToString();
  }
  // Unconstrained SR reaches price 7.5; constrained must not.
  EXPECT_FALSE(sr.region.Contains(Point({7.6, 52.0})));
  EXPECT_TRUE(engine.SafeRegion(q).region.Contains(Point({7.6, 52.0})));
}

TEST(EngineTest, ConstrainedSafeRegionKeepsQEvenOutsideLimits) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const Rectangle limits(Point({20.0, 20.0}), Point({26.0, 90.0}));
  const SafeRegionResult sr = engine.ConstrainedSafeRegion(q, limits);
  EXPECT_TRUE(sr.region.Contains(q));  // Degenerate {q} re-added.
}

TEST(EngineTest, ModifyBothConstrainedNeverBeatsUnconstrained) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const Rectangle limits(Point({8.0, 20.0}), Point({12.0, 90.0}));
  const MwqResult constrained = engine.ModifyBothConstrained(0, q, limits);
  const MwqResult free = engine.ModifyBoth(0, q);
  EXPECT_GE(constrained.best_cost, free.best_cost - 1e-12);
  // And the constrained q* honors the limits (up to the zero-move
  // fallback at q).
  ASSERT_FALSE(constrained.query_candidates.empty());
  const Point& q_star = constrained.query_candidates.front().point;
  EXPECT_TRUE(limits.Contains(q_star) || q_star.ApproxEquals(q, 1e-9))
      << q_star.ToString();
}

TEST(EngineTest, LostCustomersMatchesMembership) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // Inside the safe region: nothing lost.
  EXPECT_TRUE(engine.LostCustomers(q, Point({8.5, 56.0})).empty());
  // Far away: someone is lost.
  const std::vector<size_t> lost = engine.LostCustomers(q, Point({25.0, 21.0}));
  EXPECT_FALSE(lost.empty());
  for (size_t c : lost) {
    EXPECT_FALSE(engine.IsReverseSkylineMember(c, Point({25.0, 21.0})));
  }
}

TEST(EngineTest, BatchReusesSafeRegionAndMatchesSingles) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const std::vector<size_t> whos = {0, 4, 6};
  const std::vector<MwqResult> batch = engine.ModifyBothBatch(whos, q);
  ASSERT_EQ(batch.size(), whos.size());
  for (size_t i = 0; i < whos.size(); ++i) {
    const MwqResult single = engine.ModifyBoth(whos[i], q);
    EXPECT_EQ(batch[i].overlap, single.overlap);
    EXPECT_DOUBLE_EQ(batch[i].best_cost, single.best_cost);
  }
}

TEST(EngineTest, ApproxDslStoreRoundTrips) {
  WhyNotEngine engine(GenerateCarDb(300, 21));
  engine.PrecomputeApproxDsls(5);
  const std::string path = ::testing::TempDir() + "/approx_store.txt";
  ASSERT_TRUE(engine.SaveApproxDsls(path).ok());

  WhyNotEngine fresh(GenerateCarDb(300, 21));
  EXPECT_FALSE(fresh.HasApproxDsls());
  ASSERT_TRUE(fresh.LoadApproxDsls(path).ok());
  EXPECT_TRUE(fresh.HasApproxDsls());
  EXPECT_EQ(fresh.approx_k(), 5u);

  // Identical answers from the loaded store.
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    const Point q = engine.products().points[rng.NextUint64(300)];
    const size_t c = rng.NextUint64(300);
    const MwqResult a = engine.ModifyBothApprox(c, q);
    const MwqResult b = fresh.ModifyBothApprox(c, q);
    EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.overlap, b.overlap);
  }
  std::remove(path.c_str());
}

TEST(EngineTest, ApproxDslStoreRejectsMismatchedEngine) {
  WhyNotEngine engine(GenerateCarDb(300, 21));
  engine.PrecomputeApproxDsls(5);
  const std::string path = ::testing::TempDir() + "/approx_store2.txt";
  ASSERT_TRUE(engine.SaveApproxDsls(path).ok());
  WhyNotEngine other(GenerateCarDb(200, 21));  // Different cardinality.
  EXPECT_FALSE(other.LoadApproxDsls(path).ok());
  std::remove(path.c_str());
}

TEST(EngineTest, SaveWithoutPrecomputeFails) {
  WhyNotEngine engine(PaperExampleDataset());
  EXPECT_EQ(engine.SaveApproxDsls("/tmp/never.txt").code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, AddProductChangesAnswers) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // c1 is blocked only by p2; add an even better-matching product and the
  // culprit set grows.
  ASSERT_FALSE(engine.IsReverseSkylineMember(0, q));
  const size_t new_id = engine.AddProduct(Point({6.0, 40.0}));
  EXPECT_EQ(new_id, 8u);
  EXPECT_TRUE(engine.IsLiveProduct(new_id));
  const WhyNotExplanation why = engine.Explain(0, q);
  EXPECT_EQ(why.culprits.size(), 2u);
}

TEST(EngineTest, RemoveProductCanAdmitTheCustomer) {
  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  // Deleting Λ admits c_t (Lemma 1): removing p2 puts c1 into RSL(q).
  ASSERT_FALSE(engine.IsReverseSkylineMember(0, q));
  ASSERT_TRUE(engine.RemoveProduct(1));
  EXPECT_FALSE(engine.IsLiveProduct(1));
  EXPECT_TRUE(engine.IsReverseSkylineMember(0, q));
  // Removal is idempotent-fail.
  EXPECT_FALSE(engine.RemoveProduct(1));
  EXPECT_FALSE(engine.RemoveProduct(999));
}

TEST(EngineTest, MutationInvalidatesApproxStoreAndCaches) {
  WhyNotEngine engine(GenerateCarDb(200, 31));
  engine.PrecomputeApproxDsls(5);
  ASSERT_TRUE(engine.HasApproxDsls());
  const Point q = engine.products().points[0];
  // wnrs-lint: allow-discard(warms the safe-region cache; the invalidation
  // below is the behavior under test)
  (void)engine.SafeRegion(q);
  // wnrs-lint: allow-discard(the new id is irrelevant — the test observes
  // the approx-store drop, not the product)
  (void)engine.AddProduct(Point({12345.0, 67890.0}));
  EXPECT_FALSE(engine.HasApproxDsls());
  // Safe region recomputes against the new market without error.
  EXPECT_TRUE(engine.SafeRegion(q).region.Contains(q));
}

TEST(EngineTest, AddProductOutsideUniverseExtendsIt) {
  WhyNotEngine engine(PaperExampleDataset());
  const Rectangle before = engine.universe();
  // wnrs-lint: allow-discard(only the universe extension is observed)
  (void)engine.AddProduct(Point({100.0, 300.0}));
  EXPECT_TRUE(engine.universe().ContainsRect(before));
  EXPECT_TRUE(engine.universe().Contains(Point({100.0, 300.0})));
}

TEST(EngineTest, ApproxPathForwardsFastFrontierOption) {
  // Regression: ModifyBothApprox used to drop options_.fast_frontier, so
  // fast_frontier = false silently still took the fast path. The two
  // paths return identical candidates; the observable difference is the
  // I/O work (the reference path materializes the culprit set Λ, the
  // fast path extracts only the window-skyline frontier).
  const Dataset data = GenerateCarDb(2000, 91);
  WhyNotEngineOptions slow_options;
  slow_options.fast_frontier = false;
  WhyNotEngine fast(data);  // fast_frontier = true by default.
  WhyNotEngine slow(data, slow_options);
  fast.PrecomputeApproxDsls(6);
  slow.PrecomputeApproxDsls(6);

  // Find a why-not case answered through C2 (corner MWP calls) — C1
  // never invokes the frontier machinery.
  const Point q = data.points[11];
  // wnrs-lint: allow-discard(warms both engines' caches so the deltas
  // below isolate the answer itself)
  (void)fast.ApproxSafeRegion(q);
  // wnrs-lint: allow-discard(cache warmup, as above)
  (void)slow.ApproxSafeRegion(q);
  // wnrs-lint: allow-discard(cache warmup, as above)
  (void)fast.ReverseSkyline(q);
  // wnrs-lint: allow-discard(cache warmup, as above)
  (void)slow.ReverseSkyline(q);
  bool exercised = false;
  for (size_t c = 0; c < data.points.size() && !exercised; ++c) {
    if (fast.IsReverseSkylineMember(c, q)) continue;
    const uint64_t fast_before = fast.product_tree().stats().node_reads;
    const MwqResult fr = fast.ModifyBothApprox(c, q);
    const uint64_t fast_reads =
        fast.product_tree().stats().node_reads - fast_before;
    if (fr.overlap || fr.already_member) continue;  // C1: no MWP calls.
    const uint64_t slow_before = slow.product_tree().stats().node_reads;
    const MwqResult sr = slow.ModifyBothApprox(c, q);
    const uint64_t slow_reads =
        slow.product_tree().stats().node_reads - slow_before;
    EXPECT_DOUBLE_EQ(fr.best_cost, sr.best_cost) << "customer " << c;
    // With the option forwarded, the reference path does strictly more
    // node reads than the pruned frontier extraction.
    EXPECT_GT(slow_reads, fast_reads) << "customer " << c;
    exercised = true;
  }
  EXPECT_TRUE(exercised) << "no C2 why-not case found; weaken the query";
}

TEST(EngineTest, LoadApproxDslsRejectsKBelowTwo) {
  WhyNotEngine engine(GenerateCarDb(3, 101));
  const std::string path = ::testing::TempDir() + "/approx_store_k0.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    // A store claiming k=0 over 3 customers with one 2-D point each.
    out << "wnrs-approx-dsl 1\n0 2 3\n";
    out << "1 0.5 0.5\n1 0.25 0.75\n1 0.75 0.25\n";
  }
  const Status status = engine.LoadApproxDsls(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("k >= 2"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(engine.HasApproxDsls());
  std::remove(path.c_str());
}

TEST(EngineTest, LoadApproxDslsRejectsNonFiniteCoordinates) {
  WhyNotEngine engine(GenerateCarDb(2, 102));
  const std::string path = ::testing::TempDir() + "/approx_store_nan.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "wnrs-approx-dsl 1\n5 2 2\n";
    out << "1 0.5 nan\n1 0.25 0.75\n";
  }
  const Status status = engine.LoadApproxDsls(path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.ToString();
  EXPECT_FALSE(engine.HasApproxDsls());
  std::remove(path.c_str());
}

// ---- Try* layer: non-aborting counterparts of the checked entry points.

TEST(EngineTest, TryVariantsReturnErrorsInsteadOfAborting) {
  WhyNotEngine engine(GenerateCarDb(200, 21));
  const Point q = engine.products().points[4];

  // Wrong-dimensional query.
  const Point bad_q(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(engine.TryReverseSkyline(bad_q).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.TrySafeRegion(bad_q).status().code(),
            StatusCode::kInvalidArgument);

  // Out-of-range why-not customer.
  const size_t bad_c = engine.customers().size();
  EXPECT_EQ(engine.TryModifyWhyNot(bad_c, q).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.TryModifyQuery(bad_c, q).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.TryModifyBoth(bad_c, q).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.TryExplain(bad_c, q).status().code(),
            StatusCode::kOutOfRange);

  // Approx MWQ before PrecomputeApproxDsls.
  EXPECT_EQ(engine.TryModifyBothApprox(7, q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.TryApproxSafeRegion(q).status().code(),
            StatusCode::kFailedPrecondition);

  // Valid input goes through and matches the aborting forms.
  const Result<std::vector<size_t>> rsl = engine.TryReverseSkyline(q);
  ASSERT_TRUE(rsl.ok()) << rsl.status().ToString();
  EXPECT_EQ(rsl.value(), engine.ReverseSkyline(q));
  const Result<MwqResult> mwq = engine.TryModifyBoth(7, q);
  ASSERT_TRUE(mwq.ok());
  EXPECT_EQ(mwq.value().best_cost, engine.ModifyBoth(7, q).best_cost);
}

TEST(EngineTest, TryAddAndRemoveProductValidate) {
  WhyNotEngine engine(GenerateCarDb(100, 22));
  const size_t before = engine.products().size();

  const Result<size_t> bad =
      engine.TryAddProduct(Point(std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.products().size(), before);

  const Result<size_t> added =
      engine.TryAddProduct(engine.products().points[0]);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(engine.products().size(), before + 1);
  EXPECT_TRUE(engine.IsLiveProduct(added.value()));

  EXPECT_EQ(engine.TryRemoveProduct(before + 100).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(engine.TryRemoveProduct(added.value()).ok());
  // Double-remove reports NotFound (tombstoned).
  EXPECT_EQ(engine.TryRemoveProduct(added.value()).code(),
            StatusCode::kNotFound);
}

// ---- Semantics::kStrict: candidates are nudged off the boundary into
// strict reverse-skyline membership.

TEST(EngineTest, StrictMwpCandidatesAreStrictMembers) {
  WhyNotEngine engine(GenerateCarDb(250, 23));
  bool exercised = false;
  for (size_t qi = 0; qi < 6 && !exercised; ++qi) {
    const Point& q = engine.products().points[qi];
    for (size_t c = 0; c < 40; ++c) {
      if (engine.IsReverseSkylineMember(c, q)) continue;
      const MwpResult boundary = engine.ModifyWhyNot(c, q);
      const MwpResult strict =
          engine.ModifyWhyNot(c, q, Semantics::kStrict);
      if (boundary.candidates.empty()) continue;
      ASSERT_EQ(strict.candidates.size(), boundary.candidates.size());
      for (const Candidate& cand : strict.candidates) {
        // Strict membership: the moved customer's window is empty.
        EXPECT_TRUE(WindowEmpty(engine.product_tree(), cand.point, q,
                                static_cast<RStarTree::Id>(c)))
            << "customer " << c;
      }
      // Nudging moves past the boundary, so cost never decreases.
      EXPECT_GE(strict.candidates.front().cost,
                boundary.candidates.front().cost - 1e-12);
      exercised = true;
      break;
    }
  }
  EXPECT_TRUE(exercised) << "no why-not case found; widen the scan";
}

TEST(EngineTest, StrictMqpCandidatesAreStrictMembers) {
  WhyNotEngine engine(GenerateCarDb(250, 24));
  bool exercised = false;
  for (size_t qi = 0; qi < 6 && !exercised; ++qi) {
    const Point& q = engine.products().points[qi];
    for (size_t c = 0; c < 40; ++c) {
      if (engine.IsReverseSkylineMember(c, q)) continue;
      const MqpResult strict = engine.ModifyQuery(c, q, Semantics::kStrict);
      if (strict.candidates.empty() || strict.already_member) continue;
      const Point& cp = engine.customers().points[c];
      for (const Candidate& cand : strict.candidates) {
        // Under the nudged query q*, customer c is a strict member.
        EXPECT_TRUE(WindowEmpty(engine.product_tree(), cp, cand.point,
                                static_cast<RStarTree::Id>(c)))
            << "customer " << c;
      }
      exercised = true;
      break;
    }
  }
  EXPECT_TRUE(exercised) << "no why-not case found; widen the scan";
}

TEST(EngineTest, StrictSemanticsDefaultsToBoundary) {
  WhyNotEngine engine(GenerateCarDb(150, 25));
  const Point& q = engine.products().points[2];
  const MwpResult defaulted = engine.ModifyWhyNot(9, q);
  const MwpResult boundary = engine.ModifyWhyNot(9, q, Semantics::kBoundary);
  ASSERT_EQ(defaulted.candidates.size(), boundary.candidates.size());
  for (size_t i = 0; i < defaulted.candidates.size(); ++i) {
    EXPECT_EQ(defaulted.candidates[i].point, boundary.candidates[i].point);
    EXPECT_EQ(defaulted.candidates[i].cost, boundary.candidates[i].cost);
  }
}

TEST(EngineTest, ReverseSkylineMatchesPerCustomerMembership) {
  WhyNotEngine engine(GenerateAnticorrelated(300, 2, 9));
  Rng rng(10);
  for (int trial = 0; trial < 5; ++trial) {
    const Point q =
        engine.products().points[rng.NextUint64(engine.products().size())];
    const std::vector<size_t> rsl = engine.ReverseSkyline(q);
    for (size_t c = 0; c < engine.customers().size(); ++c) {
      const bool listed = std::find(rsl.begin(), rsl.end(), c) != rsl.end();
      EXPECT_EQ(engine.IsReverseSkylineMember(c, q), listed);
    }
  }
}

}  // namespace
}  // namespace wnrs
