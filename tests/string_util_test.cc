#include "common/string_util.h"

#include <gtest/gtest.h>

namespace wnrs {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(ParseDouble("  7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%0512d", 1);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '1');
}

}  // namespace
}  // namespace wnrs
