#include "geometry/rectangle.h"

#include <gtest/gtest.h>

namespace wnrs {
namespace {

Rectangle Rect(double x0, double y0, double x1, double y1) {
  return Rectangle(Point({x0, y0}), Point({x1, y1}));
}

TEST(RectangleTest, EmptyDetection) {
  EXPECT_TRUE(Rectangle().IsEmpty());
  EXPECT_FALSE(Rect(0, 0, 1, 1).IsEmpty());
  EXPECT_TRUE(Rect(2, 0, 1, 1).IsEmpty());
  // Degenerate (zero-extent) rectangles are not empty.
  EXPECT_FALSE(Rect(1, 1, 1, 1).IsEmpty());
}

TEST(RectangleTest, FromCornersNormalizesOrder) {
  const Rectangle r = Rectangle::FromCorners(Point({3, 0}), Point({1, 2}));
  EXPECT_EQ(r.lo(), Point({1, 0}));
  EXPECT_EQ(r.hi(), Point({3, 2}));
}

TEST(RectangleTest, FromPointIsDegenerate) {
  const Rectangle r = Rectangle::FromPoint(Point({2, 3}));
  EXPECT_TRUE(r.Contains(Point({2, 3})));
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
}

TEST(RectangleTest, ContainsClosedSemantics) {
  const Rectangle r = Rect(0, 0, 2, 2);
  EXPECT_TRUE(r.Contains(Point({0, 0})));
  EXPECT_TRUE(r.Contains(Point({2, 2})));
  EXPECT_TRUE(r.Contains(Point({1, 1})));
  EXPECT_FALSE(r.Contains(Point({2.0001, 1})));
  EXPECT_FALSE(r.Contains(Point({-0.0001, 1})));
}

TEST(RectangleTest, ContainsRect) {
  const Rectangle outer = Rect(0, 0, 4, 4);
  EXPECT_TRUE(outer.ContainsRect(Rect(1, 1, 2, 2)));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect(1, 1, 5, 2)));
  // Empty rectangles are contained in anything.
  EXPECT_TRUE(outer.ContainsRect(Rect(3, 3, 1, 1)));
}

TEST(RectangleTest, IntersectionBasics) {
  const Rectangle a = Rect(0, 0, 2, 2);
  const Rectangle b = Rect(1, 1, 3, 3);
  ASSERT_TRUE(a.Intersects(b));
  const auto inter = a.Intersection(b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(inter->lo(), Point({1, 1}));
  EXPECT_EQ(inter->hi(), Point({2, 2}));
}

TEST(RectangleTest, TouchingRectanglesIntersectDegenerately) {
  const Rectangle a = Rect(0, 0, 1, 1);
  const Rectangle b = Rect(1, 0, 2, 1);
  ASSERT_TRUE(a.Intersects(b));
  const auto inter = a.Intersection(b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_DOUBLE_EQ(inter->Volume(), 0.0);
}

TEST(RectangleTest, DisjointNoIntersection) {
  const Rectangle a = Rect(0, 0, 1, 1);
  const Rectangle b = Rect(2, 2, 3, 3);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_FALSE(a.Intersection(b).has_value());
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.0);
}

TEST(RectangleTest, BoundingUnion) {
  const Rectangle u = Rect(0, 0, 1, 1).BoundingUnion(Rect(2, -1, 3, 0.5));
  EXPECT_EQ(u.lo(), Point({0, -1}));
  EXPECT_EQ(u.hi(), Point({3, 1}));
  // Union with empty is identity.
  EXPECT_EQ(Rect(0, 0, 1, 1).BoundingUnion(Rectangle(Point({5, 5}),
                                                     Point({4, 4}))),
            Rect(0, 0, 1, 1));
}

TEST(RectangleTest, VolumeMarginCenterExtent) {
  const Rectangle r = Rect(0, 0, 2, 5);
  EXPECT_DOUBLE_EQ(r.Volume(), 10.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), Point({1, 2.5}));
  EXPECT_DOUBLE_EQ(r.Extent(0), 2.0);
  EXPECT_DOUBLE_EQ(r.Extent(1), 5.0);
}

TEST(RectangleTest, NearestPointClamps) {
  const Rectangle r = Rect(0, 0, 2, 2);
  EXPECT_EQ(r.NearestPointTo(Point({5, 1})), Point({2, 1}));
  EXPECT_EQ(r.NearestPointTo(Point({-1, -1})), Point({0, 0}));
  EXPECT_EQ(r.NearestPointTo(Point({1, 1})), Point({1, 1}));
}

TEST(RectangleTest, Distances) {
  const Rectangle r = Rect(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(r.MinL1Distance(Point({5, 3})), 4.0);
  EXPECT_DOUBLE_EQ(r.MinL1Distance(Point({1, 1})), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistSquared(Point({5, 3})), 10.0);
  EXPECT_DOUBLE_EQ(r.MinDistSquared(Point({1, 3})), 1.0);
}

TEST(RectangleTest, EnlargementAndOverlap) {
  const Rectangle a = Rect(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Rect(0, 0, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Rect(0, 0, 4, 2)), 4.0);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(Rect(1, 1, 3, 3)), 1.0);
}

TEST(RectangleTest, ThreeDimensional) {
  const Rectangle r(Point({0, 0, 0}), Point({1, 2, 3}));
  EXPECT_DOUBLE_EQ(r.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 6.0);
  EXPECT_TRUE(r.Contains(Point({0.5, 1.5, 2.5})));
  EXPECT_FALSE(r.Contains(Point({0.5, 1.5, 3.5})));
}

}  // namespace
}  // namespace wnrs
