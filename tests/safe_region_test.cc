#include "core/safe_region.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/naive.h"
#include "reverse_skyline/window_query.h"
#include "skyline/approx.h"
#include "skyline/bbs.h"
#include "geometry/transform.h"

namespace wnrs {
namespace {

struct Fixture {
  explicit Fixture(Dataset dataset)
      : data(std::move(dataset)), tree(BulkLoadPoints(2, data.points)) {}

  std::vector<size_t> Rsl(const Point& q) const {
    return ReverseSkylineNaive(tree, data.points, q, true);
  }

  SafeRegionResult Exact(const Point& q) const {
    return ComputeSafeRegion(tree, data.points, data.points, Rsl(q), q,
                             data.Bounds(), /*shared_relation=*/true);
  }

  Dataset data;
  RStarTree tree;
};

TEST(SafeRegionTest, PaperExampleRegion) {
  Fixture fx(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const SafeRegionResult sr = fx.Exact(q);
  EXPECT_EQ(sr.customers_processed, 5u);
  EXPECT_TRUE(sr.region.Contains(q));
  EXPECT_EQ(sr.region.size(), 2u);
}

TEST(SafeRegionTest, EmptyRslGivesWholeUniverse) {
  Fixture fx(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const SafeRegionResult sr =
      ComputeSafeRegion(fx.tree, fx.data.points, fx.data.points, {}, q,
                        fx.data.Bounds(), true);
  ASSERT_EQ(sr.region.size(), 1u);
  EXPECT_EQ(sr.region.rects().front(), fx.data.Bounds());
}

TEST(SafeRegionPropertyTest, EverySafePointKeepsTheReverseSkyline) {
  // Definition 7 on random data: sample points inside SR(q) and verify no
  // reverse-skyline customer is lost.
  Fixture fx(GenerateCarDb(600, 301));
  Rng rng(302);
  int verified_queries = 0;
  for (int trial = 0; trial < 30 && verified_queries < 8; ++trial) {
    const Point q = fx.data.points[rng.NextUint64(fx.data.points.size())];
    const std::vector<size_t> rsl = fx.Rsl(q);
    if (rsl.empty() || rsl.size() > 12) continue;
    ++verified_queries;
    const SafeRegionResult sr = fx.Exact(q);
    ASSERT_TRUE(sr.region.Contains(q));
    for (const Rectangle& rect : sr.region.rects()) {
      // Degenerate faces are closed-boundary artifacts where membership
      // ties; only full-dimensional rectangles are probed.
      if (rect.Extent(0) <= 0.0 || rect.Extent(1) <= 0.0) continue;
      for (int s = 0; s < 20; ++s) {
        Point q_star(2);
        for (size_t i = 0; i < 2; ++i) {
          q_star[i] =
              rng.NextDouble(rect.lo()[i], std::nextafter(rect.hi()[i],
                                                          rect.lo()[i]));
        }
        for (size_t c : rsl) {
          EXPECT_TRUE(WindowEmpty(fx.tree, fx.data.points[c], q_star,
                                  static_cast<RStarTree::Id>(c)))
              << "customer " << c << " lost at " << q_star.ToString()
              << " for q " << q.ToString();
        }
      }
    }
  }
  EXPECT_GE(verified_queries, 5);
}

TEST(SafeRegionPropertyTest, ShrinksAsRslGrows) {
  // Fig. 14's driving property: intersecting more anti-dominance regions
  // never grows the safe region. Verify monotonicity along prefixes of
  // RSL(q).
  Fixture fx(GenerateUniform(500, 2, 303));
  Rng rng(304);
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = fx.data.points[rng.NextUint64(fx.data.points.size())];
    const std::vector<size_t> rsl = fx.Rsl(q);
    if (rsl.size() < 3) continue;
    double prev = std::numeric_limits<double>::infinity();
    for (size_t prefix = 1; prefix <= rsl.size(); ++prefix) {
      const std::vector<size_t> subset(rsl.begin(),
                                       rsl.begin() + prefix);
      SafeRegionResult sr =
          ComputeSafeRegion(fx.tree, fx.data.points, fx.data.points, subset,
                            q, fx.data.Bounds(), true);
      const double area = sr.region.UnionVolume();
      EXPECT_LE(area, prev + 1e-9);
      prev = area;
    }
  }
}

TEST(SafeRegionTest, TruncationFlagHonorsCap) {
  Fixture fx(GenerateAnticorrelated(800, 2, 305));
  Rng rng(306);
  SafeRegionOptions options;
  options.max_rectangles = 2;
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = fx.data.points[rng.NextUint64(fx.data.points.size())];
    const std::vector<size_t> rsl = fx.Rsl(q);
    if (rsl.size() < 2) continue;
    const SafeRegionResult sr =
        ComputeSafeRegion(fx.tree, fx.data.points, fx.data.points, rsl, q,
                          fx.data.Bounds(), true, options);
    EXPECT_LE(sr.region.size(), 2u);
  }
}

TEST(ApproxSafeRegionTest, SubsetOfExactAndStillSafe) {
  Fixture fx(GenerateCarDb(500, 307));
  // Precompute approximated DSLs with k = 5.
  std::vector<std::vector<Point>> approx_dsls(fx.data.points.size());
  for (size_t c = 0; c < fx.data.points.size(); ++c) {
    const std::vector<RStarTree::Id> dsl = BbsDynamicSkyline(
        fx.tree, fx.data.points[c], static_cast<RStarTree::Id>(c));
    std::vector<Point> transformed;
    for (RStarTree::Id id : dsl) {
      transformed.push_back(ToDistanceSpace(
          fx.data.points[static_cast<size_t>(id)], fx.data.points[c]));
    }
    approx_dsls[c] = ApproximateSkyline(std::move(transformed), 5);
  }

  Rng rng(308);
  int checked = 0;
  for (int trial = 0; trial < 30 && checked < 6; ++trial) {
    const Point q = fx.data.points[rng.NextUint64(fx.data.points.size())];
    const std::vector<size_t> rsl = fx.Rsl(q);
    if (rsl.empty() || rsl.size() > 10) continue;
    ++checked;
    const SafeRegionResult exact = fx.Exact(q);
    const SafeRegionResult approx = ComputeApproxSafeRegion(
        fx.data.points, approx_dsls, rsl, q, fx.data.Bounds());
    // Approximate region is a subset of the exact one (probe by samples).
    for (const Rectangle& rect : approx.region.rects()) {
      if (rect.Extent(0) <= 0.0 || rect.Extent(1) <= 0.0) continue;
      for (int s = 0; s < 30; ++s) {
        Point p(2);
        for (size_t i = 0; i < 2; ++i) {
          p[i] = rng.NextDouble(rect.lo()[i],
                                std::nextafter(rect.hi()[i], rect.lo()[i]));
        }
        EXPECT_TRUE(exact.region.Contains(p))
            << p.ToString() << " in approx SR but not exact SR";
        // And still safe.
        for (size_t c : rsl) {
          EXPECT_TRUE(WindowEmpty(fx.tree, fx.data.points[c], p,
                                  static_cast<RStarTree::Id>(c)));
        }
      }
    }
  }
  EXPECT_GE(checked, 3);
}

}  // namespace
}  // namespace wnrs
