#include "common/status.h"

#include <gtest/gtest.h>

namespace wnrs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing here");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("x");
  EXPECT_EQ(r.value_or("y"), "x");
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  WNRS_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::NotFound("outer");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace wnrs
