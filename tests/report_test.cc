#include "core/report.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace wnrs {
namespace {

TEST(ReportTest, PaperExampleMentionsEveryAspect) {
  WhyNotEngine engine(PaperExampleDataset());
  const std::string report =
      RenderWhyNotReport(engine, 0, PaperExampleQuery());
  EXPECT_NE(report.find("customer #0"), std::string::npos);
  EXPECT_NE(report.find("cause: 1 product(s)"), std::string::npos);
  EXPECT_NE(report.find("#1 (7.5, 42)"), std::string::npos);  // p2.
  EXPECT_NE(report.find("option A"), std::string::npos);
  EXPECT_NE(report.find("(8, 30)"), std::string::npos);
  EXPECT_NE(report.find("(5, 48.5)"), std::string::npos);
  EXPECT_NE(report.find("option B"), std::string::npos);
  EXPECT_NE(report.find("(7.5, 55)"), std::string::npos);
  EXPECT_NE(report.find("option C"), std::string::npos);
  EXPECT_NE(report.find("safe region of q"), std::string::npos);
}

TEST(ReportTest, MemberShortCircuits) {
  WhyNotEngine engine(PaperExampleDataset());
  const std::string report =
      RenderWhyNotReport(engine, 1, PaperExampleQuery());
  EXPECT_NE(report.find("already in the reverse skyline"),
            std::string::npos);
  EXPECT_EQ(report.find("option A"), std::string::npos);
}

TEST(ReportTest, FreeWinRendersZeroCost) {
  WhyNotEngine engine(PaperExampleDataset());
  const std::string report =
      RenderWhyNotReport(engine, 6, PaperExampleQuery());  // c7, case C1.
  EXPECT_NE(report.find("ZERO cost"), std::string::npos);
}

TEST(ReportTest, CapsAreHonored) {
  WhyNotEngine engine(GenerateCarDb(500, 61));
  ReportOptions options;
  options.max_candidates = 1;
  options.max_culprits_listed = 2;
  options.include_safe_region = false;
  // Find a why-not case.
  for (size_t c = 0; c < 100; ++c) {
    const Point q = engine.products().points[(c + 37) % 500];
    if (engine.IsReverseSkylineMember(c, q)) continue;
    const std::string report = RenderWhyNotReport(engine, c, q, options);
    EXPECT_EQ(report.find("safe region of q"), std::string::npos);
    return;
  }
  FAIL() << "no why-not case found";
}

}  // namespace
}  // namespace wnrs
