#include "geometry/transform.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wnrs {
namespace {

TEST(TransformTest, ToDistanceSpaceBasics) {
  const Point origin({8.5, 55.0});
  // Paper Fig. 2(a): p2(7.5, 42) maps to (1, 13) w.r.t. q.
  EXPECT_EQ(ToDistanceSpace(Point({7.5, 42.0}), origin), Point({1.0, 13.0}));
  EXPECT_EQ(ToDistanceSpace(origin, origin), Point({0.0, 0.0}));
}

TEST(TransformTest, RectToDistanceSpaceOriginInside) {
  const Rectangle r(Point({0, 0}), Point({4, 4}));
  const Rectangle t = RectToDistanceSpace(r, Point({1, 3}));
  EXPECT_EQ(t.lo(), Point({0, 0}));
  EXPECT_EQ(t.hi(), Point({3, 3}));
}

TEST(TransformTest, RectToDistanceSpaceOriginOutside) {
  const Rectangle r(Point({2, 2}), Point({4, 6}));
  const Rectangle t = RectToDistanceSpace(r, Point({0, 10}));
  EXPECT_EQ(t.lo(), Point({2, 4}));
  EXPECT_EQ(t.hi(), Point({4, 8}));
}

TEST(TransformTest, RectTransformBoundsAllContainedPoints) {
  // Property: for random rectangles and random contained points, the
  // transformed point lies inside the transformed rectangle.
  Rng rng(31);
  for (int trial = 0; trial < 2000; ++trial) {
    Point lo(2);
    Point hi(2);
    Point origin(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.NextDouble(-5, 5);
      hi[i] = lo[i] + rng.NextDouble(0, 4);
      origin[i] = rng.NextDouble(-6, 6);
    }
    const Rectangle r(lo, hi);
    const Rectangle t = RectToDistanceSpace(r, origin);
    Point inside(2);
    for (size_t i = 0; i < 2; ++i) {
      inside[i] = rng.NextDouble(lo[i], hi[i]);
    }
    const Point mapped = ToDistanceSpace(inside, origin);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_GE(mapped[i], t.lo()[i] - 1e-12);
      EXPECT_LE(mapped[i], t.hi()[i] + 1e-12);
    }
  }
}

TEST(TransformTest, SymmetricRectAround) {
  const Rectangle r = SymmetricRectAround(Point({5, 5}), Point({7, 4}));
  EXPECT_EQ(r.lo(), Point({3, 4}));
  EXPECT_EQ(r.hi(), Point({7, 6}));
}

TEST(TransformTest, InWindowMatchesPaperExample) {
  // Fig. 4(b): p2 is in c1's window w.r.t. q; Fig. 4(a): nothing is in
  // c2's window.
  const Point q({8.5, 55.0});
  EXPECT_TRUE(InWindow(Point({7.5, 42.0}), Point({5.0, 30.0}), q));
  EXPECT_FALSE(InWindow(Point({5.0, 30.0}), Point({7.5, 42.0}), q));
}

TEST(TransformTest, InWindowRequiresStrictness) {
  // A mirror image of q ties in every dimension and is not "in the
  // window" (it does not dynamically dominate q).
  const Point c({0.0, 0.0});
  const Point q({2.0, 2.0});
  EXPECT_FALSE(InWindow(Point({-2.0, -2.0}), c, q));
  EXPECT_TRUE(InWindow(Point({-2.0, -1.0}), c, q));
}

}  // namespace
}  // namespace wnrs
