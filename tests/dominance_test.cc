#include "geometry/dominance.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wnrs {
namespace {

TEST(DominanceTest, BasicRelations) {
  EXPECT_TRUE(Dominates(Point({1.0, 1.0}), Point({2.0, 2.0})));
  EXPECT_TRUE(Dominates(Point({1.0, 2.0}), Point({2.0, 2.0})));
  EXPECT_FALSE(Dominates(Point({1.0, 3.0}), Point({2.0, 2.0})));
  // Equal points do not dominate each other (Definition 1 needs strict).
  EXPECT_FALSE(Dominates(Point({1.0, 1.0}), Point({1.0, 1.0})));
}

TEST(DominanceTest, AsymmetricAndIrreflexive) {
  const Point a({1.0, 1.0});
  const Point b({2.0, 3.0});
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, a));
}

TEST(DominanceTest, WeakAndStrictVariants) {
  EXPECT_TRUE(WeaklyDominates(Point({1.0, 1.0}), Point({1.0, 1.0})));
  EXPECT_FALSE(StrictlyDominatesAllDims(Point({1.0, 1.0}),
                                        Point({1.0, 2.0})));
  EXPECT_TRUE(StrictlyDominatesAllDims(Point({0.0, 0.0}),
                                       Point({1.0, 2.0})));
}

TEST(DominanceTest, CompareDominanceAllOutcomes) {
  EXPECT_EQ(CompareDominance(Point({1.0, 1.0}), Point({2.0, 2.0})),
            DominanceRelation::kFirstDominates);
  EXPECT_EQ(CompareDominance(Point({2.0, 2.0}), Point({1.0, 1.0})),
            DominanceRelation::kSecondDominates);
  EXPECT_EQ(CompareDominance(Point({1.0, 1.0}), Point({1.0, 1.0})),
            DominanceRelation::kEqual);
  EXPECT_EQ(CompareDominance(Point({1.0, 2.0}), Point({2.0, 1.0})),
            DominanceRelation::kIncomparable);
}

TEST(DynamicDominanceTest, PaperDefinition) {
  // Paper Fig. 2(a): p2(7.5, 42) dynamically dominates p1(5, 30) w.r.t.
  // q(8.5, 55).
  const Point q({8.5, 55.0});
  EXPECT_TRUE(
      DynamicallyDominates(Point({7.5, 42.0}), Point({5.0, 30.0}), q));
  EXPECT_FALSE(
      DynamicallyDominates(Point({5.0, 30.0}), Point({7.5, 42.0}), q));
}

TEST(DynamicDominanceTest, MirrorImagesTieEverywhere) {
  // Two points equidistant from the origin in every dimension do not
  // dominate each other.
  const Point origin({0.0, 0.0});
  EXPECT_FALSE(
      DynamicallyDominates(Point({1.0, -2.0}), Point({-1.0, 2.0}), origin));
  EXPECT_FALSE(
      DynamicallyDominates(Point({-1.0, 2.0}), Point({1.0, -2.0}), origin));
}

TEST(DynamicDominanceTest, SelfNeverDominatesSelf) {
  const Point origin({3.0, 4.0});
  const Point p({1.0, 9.0});
  EXPECT_FALSE(DynamicallyDominates(p, p, origin));
}

TEST(DominancePropertyTest, TransitivityOnRandomPoints) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    Point a(3);
    Point b(3);
    Point c(3);
    for (size_t i = 0; i < 3; ++i) {
      a[i] = rng.NextDouble(0, 4);
      b[i] = rng.NextDouble(0, 4);
      c[i] = rng.NextDouble(0, 4);
    }
    if (Dominates(a, b) && Dominates(b, c)) {
      EXPECT_TRUE(Dominates(a, c))
          << a.ToString() << b.ToString() << c.ToString();
    }
  }
}

TEST(DominancePropertyTest, DynamicEqualsStaticAfterTransform) {
  // DynamicallyDominates(a, b, o) must agree with Dominates on the
  // |o - x| transform, by Definition 2.
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    Point a(2);
    Point b(2);
    Point o(2);
    for (size_t i = 0; i < 2; ++i) {
      a[i] = rng.NextDouble(-5, 5);
      b[i] = rng.NextDouble(-5, 5);
      o[i] = rng.NextDouble(-5, 5);
    }
    Point ta(2);
    Point tb(2);
    for (size_t i = 0; i < 2; ++i) {
      ta[i] = std::abs(o[i] - a[i]);
      tb[i] = std::abs(o[i] - b[i]);
    }
    EXPECT_EQ(DynamicallyDominates(a, b, o), Dominates(ta, tb));
  }
}

}  // namespace
}  // namespace wnrs
