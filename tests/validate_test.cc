// Seeded-corruption tests for the deep invariant validators: every
// deliberately corrupted structure or answer must be rejected with a
// Status whose message names the violated invariant in [brackets], and
// every healthy one must pass. These pin the contract that
// WhyNotEngineOptions::paranoid_checks relies on — a validator that stays
// silent on corruption would turn paranoid mode into a no-op.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/validate.h"
#include "data/generators.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "index/serialize.h"
#include "index/validate.h"
#include "storage/file_io.h"

namespace wnrs {
namespace {

testing::AssertionResult MessageNames(const Status& s,
                                      const std::string& invariant) {
  if (s.ok()) {
    return testing::AssertionFailure()
           << "status is OK but corruption should have been rejected with "
           << invariant;
  }
  if (s.message().find(invariant) == std::string::npos) {
    return testing::AssertionFailure()
           << "status does not name " << invariant << ": " << s.ToString();
  }
  return testing::AssertionSuccess();
}

RStarTree BuildCarDbTree(size_t n, uint64_t seed) {
  const Dataset ds = GenerateCarDb(n, seed);
  RStarTree tree(2);
  for (size_t id = 0; id < ds.points.size(); ++id) {
    tree.Insert(ds.points[id], static_cast<RStarTree::Id>(id));
  }
  return tree;
}

RStarTree::Node* MutableRoot(const RStarTree& tree) {
  return const_cast<RStarTree::Node*>(tree.root());
}

/// First leaf on the leftmost path; the tests corrupt leaves so no child
/// subtrees are orphaned when entries are duplicated or erased.
RStarTree::Node* LeftmostLeaf(const RStarTree& tree) {
  RStarTree::Node* node = MutableRoot(tree);
  while (!node->is_leaf) node = node->entries.front().child;
  return node;
}

Rectangle UnionOfEntries(const RStarTree::Node& node) {
  Rectangle mbr = node.entries.front().mbr;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    mbr = mbr.BoundingUnion(node.entries[i].mbr);
  }
  return mbr;
}

/// After shrinking a node, re-tighten every ancestor entry MBR so the
/// only violated invariant is the one the test intends to seed.
void RetightenAncestors(RStarTree::Node* node) {
  while (node->parent != nullptr) {
    RStarTree::Node* parent = node->parent;
    for (RStarTree::Entry& e : parent->entries) {
      if (e.child == node) {
        e.mbr = UnionOfEntries(*node);
        break;
      }
    }
    node = parent;
  }
}

AnswerValidationInput MakeInput(const EngineSnapshot& snap) {
  AnswerValidationInput in;
  in.products_tree = &snap.product_tree();
  in.customers = &snap.customers().points;
  in.shared_relation = snap.shared_relation();
  in.universe = snap.universe();
  in.cost_model = &snap.cost_model();
  return in;
}

// ---------------------------------------------------------------------------
// Index-layer validators.

TEST(ValidateTreeTest, HealthyTreeAndPackedImagePass) {
  const RStarTree tree = BuildCarDbTree(400, 7);
  ASSERT_GE(tree.height(), 2u);
  EXPECT_TRUE(ValidateTree(tree).ok()) << ValidateTree(tree).ToString();

  const PackedRTree packed = PackedRTree::Freeze(tree);
  EXPECT_TRUE(ValidatePacked(packed).ok())
      << ValidatePacked(packed).ToString();
  EXPECT_TRUE(ValidatePackedMatchesDynamic(packed, tree).ok())
      << ValidatePackedMatchesDynamic(packed, tree).ToString();
}

TEST(ValidateTreeTest, EmptyTreePasses) {
  const RStarTree tree(2);
  EXPECT_TRUE(ValidateTree(tree).ok()) << ValidateTree(tree).ToString();
}

TEST(ValidateTreeTest, InflatedChildMbrIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  RStarTree::Node* root = MutableRoot(tree);
  ASSERT_FALSE(root->is_leaf);

  const Rectangle original = root->entries.front().mbr;
  Point inflated_hi = original.hi();
  inflated_hi[0] += 1000.0;
  root->entries.front().mbr = Rectangle(original.lo(), inflated_hi);

  const Status s = ValidateTree(tree);
  EXPECT_TRUE(MessageNames(s, "[mbr-containment]"));
  EXPECT_NE(s.message().find("inflated"), std::string::npos) << s.ToString();

  root->entries.front().mbr = original;
  EXPECT_TRUE(ValidateTree(tree).ok());
}

TEST(ValidateTreeTest, ShrunkenChildMbrIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  RStarTree::Node* root = MutableRoot(tree);
  ASSERT_FALSE(root->is_leaf);

  const Rectangle original = root->entries.front().mbr;
  root->entries.front().mbr =
      Rectangle::FromPoint(original.Center());

  EXPECT_TRUE(MessageNames(ValidateTree(tree), "[mbr-containment]"));

  root->entries.front().mbr = original;
  EXPECT_TRUE(ValidateTree(tree).ok());
}

TEST(ValidateTreeTest, OverfullNodeIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  RStarTree::Node* leaf = LeftmostLeaf(tree);
  const size_t original_size = leaf->entries.size();

  // Duplicating an existing entry keeps every ancestor MBR tight, so the
  // fan-out bound is the first (and only) structural check to fire.
  while (leaf->entries.size() <= tree.max_entries()) {
    leaf->entries.push_back(leaf->entries.front());
  }

  const Status s = ValidateTree(tree);
  EXPECT_TRUE(MessageNames(s, "[fanout-bounds]"));
  EXPECT_NE(s.message().find("overfull"), std::string::npos) << s.ToString();

  leaf->entries.resize(original_size);
  EXPECT_TRUE(ValidateTree(tree).ok());
}

TEST(ValidateTreeTest, UnderfullNodeIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  RStarTree::Node* leaf = LeftmostLeaf(tree);
  ASSERT_NE(leaf->parent, nullptr) << "need height >= 2 for a non-root leaf";
  ASSERT_GE(tree.min_entries(), 2u);

  leaf->entries.resize(tree.min_entries() - 1);
  RetightenAncestors(leaf);

  const Status s = ValidateTree(tree);
  EXPECT_TRUE(MessageNames(s, "[fanout-bounds]"));
  EXPECT_NE(s.message().find("underfull"), std::string::npos) << s.ToString();
}

TEST(ValidateTreeTest, BrokenParentLinkIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  RStarTree::Node* leaf = LeftmostLeaf(tree);
  RStarTree::Node* real_parent = leaf->parent;
  ASSERT_NE(real_parent, nullptr);

  leaf->parent = leaf;  // Any wrong pointer will do.
  EXPECT_TRUE(MessageNames(ValidateTree(tree), "[parent-links]"));

  leaf->parent = real_parent;
  EXPECT_TRUE(ValidateTree(tree).ok());
}

TEST(ValidatePackedTest, MismatchedSlabIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  const PackedRTree packed = PackedRTree::Freeze(tree);
  ASSERT_TRUE(ValidatePackedMatchesDynamic(packed, tree).ok());

  // The image was frozen from an earlier tree state; any later mutation
  // must be detected.
  tree.Insert(Point({12345.0, 54321.0}), 400);
  EXPECT_TRUE(
      MessageNames(ValidatePackedMatchesDynamic(packed, tree),
                   "[packed-parity]"));
}

TEST(ValidatePackedTest, BitLevelMbrDriftIsRejected) {
  RStarTree tree = BuildCarDbTree(400, 7);
  const PackedRTree packed = PackedRTree::Freeze(tree);

  // Same shape, same size — one leaf MBR nudged by half a unit. Parity is
  // bit-identical doubles, so even a tiny drift must be rejected.
  RStarTree::Node* leaf = LeftmostLeaf(tree);
  const Rectangle original = leaf->entries.front().mbr;
  Point shifted_lo = original.lo();
  shifted_lo[0] += 0.5;
  leaf->entries.front().mbr = Rectangle(shifted_lo, original.hi());

  EXPECT_TRUE(
      MessageNames(ValidatePackedMatchesDynamic(packed, tree),
                   "[packed-parity]"));

  leaf->entries.front().mbr = original;
  EXPECT_TRUE(ValidatePackedMatchesDynamic(packed, tree).ok());
}

// ---------------------------------------------------------------------------
// Core-layer validators, over the paper's worked example (q = (8.5, 55),
// RSL(q) = {pt2, pt3, pt4, pt6, pt8}, c1 = index 0 is the why-not
// customer).

class AnswerValidateTest : public ::testing::Test {
 protected:
  AnswerValidateTest()
      : engine_(PaperExampleDataset()),
        snap_(engine_.Snapshot()),
        q_(PaperExampleQuery()),
        in_(MakeInput(snap_)),
        rsl_(engine_.ReverseSkyline(q_)) {}

  static constexpr size_t kWhyNot = 0;  // c1 is not in RSL(q).

  WhyNotEngine engine_;
  EngineSnapshot snap_;
  Point q_;
  AnswerValidationInput in_;
  std::vector<size_t> rsl_;
};

TEST_F(AnswerValidateTest, GenuineAnswersPass) {
  ASSERT_FALSE(rsl_.empty());
  const SafeRegionResult& sr = engine_.SafeRegion(q_);
  EXPECT_TRUE(ValidateSafeRegion(in_, rsl_, q_, sr).ok())
      << ValidateSafeRegion(in_, rsl_, q_, sr).ToString();

  const MwpResult mwp = engine_.ModifyWhyNot(kWhyNot, q_);
  EXPECT_TRUE(ValidateMwpAnswer(in_, kWhyNot, q_, mwp).ok())
      << ValidateMwpAnswer(in_, kWhyNot, q_, mwp).ToString();

  const MqpResult mqp = engine_.ModifyQuery(kWhyNot, q_);
  EXPECT_TRUE(ValidateMqpAnswer(in_, kWhyNot, q_, mqp).ok())
      << ValidateMqpAnswer(in_, kWhyNot, q_, mqp).ToString();

  const MwqResult mwq = engine_.ModifyBoth(kWhyNot, q_);
  EXPECT_TRUE(ValidateMwqAnswer(in_, kWhyNot, q_, rsl_, mwq).ok())
      << ValidateMwqAnswer(in_, kWhyNot, q_, rsl_, mwq).ToString();
}

TEST_F(AnswerValidateTest, ShrunkenSafeRegionIsRejected) {
  // A region shrunken past q itself violates Lemma 2 (q is always safe).
  SafeRegionResult shrunken;
  Point far = q_;
  far[0] += 1000.0;
  shrunken.region.Add(Rectangle::FromPoint(far));
  EXPECT_TRUE(MessageNames(ValidateSafeRegion(in_, rsl_, q_, shrunken),
                           "[sr-q-membership]"));
}

TEST_F(AnswerValidateTest, InflatedSafeRegionIsRejected) {
  SafeRegionResult inflated = *snap_.SafeRegion(q_);
  ASSERT_TRUE(ValidateSafeRegion(in_, rsl_, q_, inflated).ok());
  // Claiming the whole universe is safe must lose a member at some
  // sampled point (the universe corners are far from every DDR̄).
  inflated.region.Add(in_.universe);
  EXPECT_TRUE(MessageNames(ValidateSafeRegion(in_, rsl_, q_, inflated),
                           "[sr-soundness]"));
}

TEST_F(AnswerValidateTest, OutOfOrderMwpCandidatesAreRejected) {
  MwpResult bad = engine_.ModifyWhyNot(kWhyNot, q_);
  ASSERT_FALSE(bad.already_member);
  ASSERT_GE(bad.candidates.size(), 2u);
  bad.candidates.back().cost = bad.candidates.front().cost - 1.0;
  EXPECT_TRUE(MessageNames(ValidateMwpAnswer(in_, kWhyNot, q_, bad),
                           "[answer-order]"));
}

TEST_F(AnswerValidateTest, WrongMwpCostIsRejected) {
  MwpResult bad = engine_.ModifyWhyNot(kWhyNot, q_);
  ASSERT_FALSE(bad.candidates.empty());
  bad.candidates.front().cost -= 0.125;  // Still ascending; wrong vs beta.
  EXPECT_TRUE(MessageNames(ValidateMwpAnswer(in_, kWhyNot, q_, bad),
                           "[answer-cost]"));
}

TEST_F(AnswerValidateTest, NonMemberMwpCandidateIsRejected) {
  MwpResult bad = engine_.ModifyWhyNot(kWhyNot, q_);
  ASSERT_FALSE(bad.candidates.empty());
  // "Move" the customer to where it already stands — a location known NOT
  // to be a reverse-skyline member — with the honest (zero) beta cost, so
  // only the membership probe can object.
  const Point& c_t = snap_.customers().points[kWhyNot];
  bad.candidates.front().point = c_t;
  bad.candidates.front().cost = 0.0;
  EXPECT_TRUE(MessageNames(ValidateMwpAnswer(in_, kWhyNot, q_, bad),
                           "[mwp-membership]"));
}

TEST_F(AnswerValidateTest, NonMemberMqpCandidateIsRejected) {
  MqpResult bad = engine_.ModifyQuery(kWhyNot, q_);
  ASSERT_FALSE(bad.already_member);
  ASSERT_FALSE(bad.candidates.empty());
  // Leaving q where it is keeps c1 out of RSL(q); honest zero alpha cost.
  bad.candidates.front().point = q_;
  bad.candidates.front().cost = 0.0;
  EXPECT_TRUE(MessageNames(ValidateMqpAnswer(in_, kWhyNot, q_, bad),
                           "[mqp-membership]"));
}

TEST_F(AnswerValidateTest, MwqQueryMoveLosingACustomerIsRejected) {
  MwqResult bad = engine_.ModifyBoth(kWhyNot, q_);
  ASSERT_TRUE(ValidateMwqAnswer(in_, kWhyNot, q_, rsl_, bad).ok());
  ASSERT_FALSE(rsl_.empty());
  // Propose moving q to the worst corner of the universe — far outside
  // SR(q) — with the honestly re-derived alpha cost, so the lost-customer
  // probe is the check that fires.
  const Point worst = in_.universe.hi();
  bad.query_candidates.assign(
      {Candidate{worst, in_.cost_model->QueryMoveCost(q_, worst)}});
  EXPECT_TRUE(MessageNames(ValidateMwqAnswer(in_, kWhyNot, q_, rsl_, bad),
                           "[mwq-no-lost-customer]"));
}

TEST_F(AnswerValidateTest, WrongMwqBestCostIsRejected) {
  MwqResult bad = engine_.ModifyBoth(kWhyNot, q_);
  ASSERT_FALSE(bad.already_member);
  // C2 answers with no reported candidates have no cost to cross-check.
  ASSERT_TRUE(bad.overlap || (!bad.query_candidates.empty() &&
                              !bad.why_not_candidates.empty()));
  bad.best_cost += 1.0;  // Breaks C1's zero-cost rule or C2's cheapest-move.
  EXPECT_TRUE(MessageNames(ValidateMwqAnswer(in_, kWhyNot, q_, rsl_, bad),
                           "[answer-cost]"));
}

TEST(ValidateTreeTest, LoadTreeRejectsTrailingGarbage) {
  const Dataset ds = GenerateUniform(200, 2, 97);
  RStarTree tree(2);
  for (size_t i = 0; i < ds.points.size(); ++i) {
    tree.Insert(ds.points[i], static_cast<RStarTree::Id>(i));
  }
  const std::string path = ::testing::TempDir() + "/trailing.tree.txt";
  ASSERT_TRUE(SaveTree(tree, path).ok());

  std::string contents;
  ASSERT_TRUE(storage::ReadFileToString(path, &contents).ok());
  ASSERT_TRUE(
      storage::WriteStringToFile(path, contents + "\nstray tokens").ok());
  Result<RStarTree> r = LoadTree(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("[trailing-bytes]"), std::string::npos)
      << r.status().ToString();

  // Whitespace-only padding after the last node is not data and loads.
  ASSERT_TRUE(storage::WriteStringToFile(path, contents + "\n  \n").ok());
  Result<RStarTree> ok = LoadTree(path);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), tree.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wnrs
