#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace wnrs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BoundedUintWithinBound) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextUint64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  // All residues should appear over 1000 draws.
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, UniformityChiSquareSanity) {
  // 16 buckets over [0,1): counts should be near-uniform.
  Rng rng(314159);
  const int n = 160000;
  int buckets[16] = {};
  for (int i = 0; i < n; ++i) {
    ++buckets[static_cast<int>(rng.NextDouble() * 16)];
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // 15 dof; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 40.0);
}

}  // namespace
}  // namespace wnrs
