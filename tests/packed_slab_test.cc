#include "storage/packed_slab.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "index/packed_rtree.h"
#include "index/validate.h"
#include "storage/file_io.h"

namespace wnrs {
namespace {

class PackedSlabTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name) {
    paths_.push_back(::testing::TempDir() + "/" + name);
    return paths_.back();
  }
  std::vector<std::string> paths_;
};

/// Byte-level structural equality of two packed trees: shape scalars,
/// node arena, every entry MBR, and the refs slab.
void ExpectPackedIdentical(const PackedRTree& a, const PackedRTree& b) {
  ASSERT_EQ(a.dims(), b.dims());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.height(), b.height());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_entries(), b.num_entries());
  ASSERT_EQ(a.max_node_entries(), b.max_node_entries());
  ASSERT_EQ(a.plane_stride(), b.plane_stride());
  for (uint32_t n = 0; n < a.num_nodes(); ++n) {
    ASSERT_EQ(a.node(n).first_entry, b.node(n).first_entry);
    ASSERT_EQ(a.node(n).entry_count, b.node(n).entry_count);
    ASSERT_EQ(a.node(n).is_leaf, b.node(n).is_leaf);
  }
  for (uint32_t e = 0; e < a.num_entries(); ++e) {
    for (size_t j = 0; j < a.dims(); ++j) {
      ASSERT_EQ(a.entry_lo(e, j), b.entry_lo(e, j));
      ASSERT_EQ(a.entry_hi(e, j), b.entry_hi(e, j));
    }
    ASSERT_EQ(a.refs_data()[e], b.refs_data()[e]);
  }
}

TEST_F(PackedSlabTest, MappedOpenRoundTripsBitIdentically) {
  const Dataset ds = GenerateCarDb(4000, 71);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const std::string path = Path("cardb.slab");
  ASSERT_TRUE(storage::SavePacked(packed, path).ok());

  Result<PackedRTree> opened = storage::OpenPackedMapped(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectPackedIdentical(packed, *opened);
  ASSERT_TRUE(opened->CheckInvariants().ok());
  ASSERT_TRUE(ValidatePacked(*opened).ok());
  ASSERT_TRUE(ValidatePackedMatchesDynamic(*opened, tree).ok());

  Rng rng(72);
  for (int trial = 0; trial < 30; ++trial) {
    const double x0 = rng.NextDouble(500, 60000);
    const double y0 = rng.NextDouble(0, 180000);
    const Rectangle window(Point({x0, y0}), Point({x0 + 8000, y0 + 30000}));
    EXPECT_EQ(packed.RangeQueryIds(window), opened->RangeQueryIds(window));
    EXPECT_EQ(tree.RangeQueryIds(window), opened->RangeQueryIds(window));
  }
}

TEST_F(PackedSlabTest, BufferedOpenMatchesMappedOpen) {
  const Dataset ds = GenerateUniform(2000, 3, 73);
  RStarTree tree = BulkLoadPoints(3, ds.points);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const std::string path = Path("uniform.slab");
  ASSERT_TRUE(storage::SavePacked(packed, path).ok());

  Result<PackedRTree> mapped = storage::OpenPackedMapped(path);
  Result<PackedRTree> buffered = storage::OpenPackedBuffered(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_FALSE(buffered->is_mapped());
  ExpectPackedIdentical(*mapped, *buffered);
  ASSERT_TRUE(ValidatePackedMatchesDynamic(*buffered, tree).ok());
}

TEST_F(PackedSlabTest, MappedTreeAliasesTheFile) {
#if defined(__unix__) || defined(__APPLE__)
  const Dataset ds = GenerateUniform(500, 2, 74);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const std::string path = Path("mapped.slab");
  ASSERT_TRUE(storage::SavePacked(packed, path).ok());
  Result<PackedRTree> opened = storage::OpenPackedMapped(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->is_mapped());
#else
  GTEST_SKIP() << "no mmap on this platform";
#endif
}

TEST_F(PackedSlabTest, EmptyAndTinyTreesRoundTrip) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}}) {
    RStarTree tree(2);
    for (size_t i = 0; i < n; ++i) {
      tree.Insert(Point({static_cast<double>(i), 1.0}),
                  static_cast<RStarTree::Id>(i));
    }
    PackedRTree packed = PackedRTree::Freeze(tree);
    const std::string path = Path("tiny" + std::to_string(n) + ".slab");
    ASSERT_TRUE(storage::SavePacked(packed, path).ok());
    Result<PackedRTree> opened = storage::OpenPackedMapped(path);
    ASSERT_TRUE(opened.ok()) << "n=" << n << ": "
                             << opened.status().ToString();
    ExpectPackedIdentical(packed, *opened);
  }
}

TEST_F(PackedSlabTest, RejectsSeededCorruption) {
  const Dataset ds = GenerateUniform(800, 2, 75);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const std::string path = Path("victim.slab");
  ASSERT_TRUE(storage::SavePacked(packed, path).ok());
  std::string bytes;
  ASSERT_TRUE(storage::ReadFileToString(path, &bytes).ok());

  struct Case {
    const char* name;
    const char* want;
    std::string mutated;
  };
  std::string truncated_header = bytes.substr(0, 64);
  std::string truncated_body = bytes.substr(0, bytes.size() / 2);
  std::string bad_magic = bytes;
  bad_magic[1] = 'X';
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0x7E);
  std::string bad_endian = bytes;
  bad_endian[8] = static_cast<char>(bad_endian[8] ^ 0xFF);
  std::string bad_header = bytes;
  bad_header[16] = static_cast<char>(bad_header[16] ^ 0x01);  // dims lsb
  std::string trailing = bytes + "extra";
  std::string bad_nodes = bytes;
  bad_nodes[128 + 5] = static_cast<char>(bad_nodes[128 + 5] ^ 0x20);
  std::string bad_tail = bytes;
  bad_tail[bytes.size() - 3] = static_cast<char>(bad_tail[bytes.size() - 3] ^ 0x08);

  const Case cases[] = {
      {"truncated-header", "[truncated]", truncated_header},
      {"truncated-body", "[slab-layout]", truncated_body},
      {"magic", "[magic]", bad_magic},
      {"version", "[version]", bad_version},
      {"endianness", "[endianness]", bad_endian},
      {"dimension-flip", "[header-crc]", bad_header},
      {"trailing-bytes", "[slab-layout]", trailing},
      {"node-arena-flip", "[nodes-crc]", bad_nodes},
      {"refs-flip", "[refs-crc]", bad_tail},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string p = Path(std::string("victim-") + c.name + ".slab");
    ASSERT_TRUE(storage::WriteStringToFile(p, c.mutated).ok());
    for (bool mapped : {true, false}) {
      Result<PackedRTree> r =
          mapped ? storage::OpenPackedMapped(p) : storage::OpenPackedBuffered(p);
      ASSERT_FALSE(r.ok()) << (mapped ? "mapped" : "buffered");
      EXPECT_NE(r.status().message().find(c.want), std::string::npos)
          << r.status().ToString();
    }
  }
  EXPECT_FALSE(storage::OpenPackedMapped("/nonexistent/no.slab").ok());
}

TEST_F(PackedSlabTest, ChecksumSweepIsOptionalButValidationIsNot) {
  const Dataset ds = GenerateUniform(300, 2, 76);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  PackedRTree packed = PackedRTree::Freeze(tree);
  const std::string path = Path("nocrc.slab");
  ASSERT_TRUE(storage::SavePacked(packed, path).ok());

  // verify_checksums=false still opens a pristine file fine.
  Result<PackedRTree> opened =
      storage::OpenPackedMapped(path, /*verify_checksums=*/false);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectPackedIdentical(packed, *opened);

  // Structural damage that CRC would catch is also caught without the
  // sweep when it breaks a packed invariant: zero out a node's entry
  // window so [mbr-containment]/[tree-shape] style checks fire.
  std::string bytes;
  ASSERT_TRUE(storage::ReadFileToString(path, &bytes).ok());
  std::string bad = bytes;
  // Corrupt the root node's entry_count (node arena starts at 128;
  // entry_count is bytes 4..7 of the 12-byte node record).
  bad[128 + 4] = static_cast<char>(0xFF);
  bad[128 + 5] = static_cast<char>(0xFF);
  const std::string p = Path("nocrc-bad.slab");
  ASSERT_TRUE(storage::WriteStringToFile(p, bad).ok());
  EXPECT_FALSE(
      storage::OpenPackedMapped(p, /*verify_checksums=*/false).ok());
}

}  // namespace
}  // namespace wnrs
