#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"

namespace wnrs {
namespace {

WhyNotEngineOptions PackedOptions(bool packed) {
  WhyNotEngineOptions options;
  options.num_threads = 1;
  options.use_packed_read_path = packed;
  return options;
}

/// A mix of query points the engines have not memoized yet: dataset
/// points nudged off-grid so every call is an RSL-cache miss.
std::vector<Point> FreshQueries(const Dataset& data, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> queries;
  queries.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    Point q = data.points[rng.NextUint64(data.size())];
    for (size_t i = 0; i < q.dims(); ++i) {
      q[i] += rng.NextDouble(-0.01, 0.01) * (q[i] + 1.0);
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectSameCandidates(const std::vector<Candidate>& a,
                          const std::vector<Candidate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point, b[i].point) << "candidate " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << "candidate " << i;
  }
}

// The packed read path must be invisible in every answer: reverse
// skylines, membership probes, range queries, and the three modification
// algorithms agree bit for bit with the dynamic-tree engine.
TEST(PackedEngineTest, SharedRelationAnswersIdentical) {
  const Dataset data = GenerateCarDb(1200, 9001);
  WhyNotEngine packed_engine(GenerateCarDb(1200, 9001), PackedOptions(true));
  WhyNotEngine plain_engine(GenerateCarDb(1200, 9001), PackedOptions(false));
  Rng rng(9002);
  for (const Point& q : FreshQueries(data, 10, 9003)) {
    EXPECT_EQ(packed_engine.ReverseSkyline(q), plain_engine.ReverseSkyline(q));
    const size_t c = rng.NextUint64(data.size());
    EXPECT_EQ(packed_engine.IsReverseSkylineMember(c, q),
              plain_engine.IsReverseSkylineMember(c, q));
    const Rectangle window(Point({q[0] * 0.8, q[1] * 0.8}),
                           Point({q[0] * 1.2, q[1] * 1.2}));
    EXPECT_EQ(packed_engine.CustomersInRange(window),
              plain_engine.CustomersInRange(window));
  }
}

TEST(PackedEngineTest, WhyNotAlgorithmsIdentical) {
  const Dataset data = GenerateCarDb(800, 9101);
  WhyNotEngine packed_engine(GenerateCarDb(800, 9101), PackedOptions(true));
  WhyNotEngine plain_engine(GenerateCarDb(800, 9101), PackedOptions(false));
  Rng rng(9102);
  for (const Point& q : FreshQueries(data, 5, 9103)) {
    const size_t c = rng.NextUint64(data.size());
    const MwpResult mwp_a = packed_engine.ModifyWhyNot(c, q);
    const MwpResult mwp_b = plain_engine.ModifyWhyNot(c, q);
    EXPECT_EQ(mwp_a.already_member, mwp_b.already_member);
    EXPECT_EQ(mwp_a.culprits, mwp_b.culprits);
    ExpectSameCandidates(mwp_a.candidates, mwp_b.candidates);

    const MqpResult mqp_a = packed_engine.ModifyQuery(c, q);
    const MqpResult mqp_b = plain_engine.ModifyQuery(c, q);
    EXPECT_EQ(mqp_a.already_member, mqp_b.already_member);
    EXPECT_EQ(mqp_a.culprits, mqp_b.culprits);
    ExpectSameCandidates(mqp_a.candidates, mqp_b.candidates);

    const MwqResult mwq_a = packed_engine.ModifyBoth(c, q);
    const MwqResult mwq_b = plain_engine.ModifyBoth(c, q);
    EXPECT_EQ(mwq_a.already_member, mwq_b.already_member);
    EXPECT_EQ(mwq_a.overlap, mwq_b.overlap);
    EXPECT_EQ(mwq_a.best_cost, mwq_b.best_cost);
    ExpectSameCandidates(mwq_a.query_candidates, mwq_b.query_candidates);
    ExpectSameCandidates(mwq_a.why_not_candidates, mwq_b.why_not_candidates);

    const Point q_star({q[0] * 1.1, q[1] * 0.9});
    EXPECT_EQ(packed_engine.LostCustomers(q, q_star),
              plain_engine.LostCustomers(q, q_star));
  }
}

TEST(PackedEngineTest, BichromaticAnswersIdentical) {
  const Dataset products = GenerateCarDb(700, 9201);
  const Dataset customers = GenerateCarDb(500, 9202);
  WhyNotEngine packed_engine(GenerateCarDb(700, 9201),
                             GenerateCarDb(500, 9202), PackedOptions(true));
  WhyNotEngine plain_engine(GenerateCarDb(700, 9201),
                            GenerateCarDb(500, 9202), PackedOptions(false));
  for (const Point& q : FreshQueries(products, 8, 9203)) {
    EXPECT_EQ(packed_engine.ReverseSkyline(q), plain_engine.ReverseSkyline(q));
  }
}

// Node-read counts are part of the parity contract: the packed path does
// the same traversal, so the shared rtree.node_reads counter moves by the
// same amount, and every one of those reads is attributed to
// packed.node_reads on the packed engine (and none on the dynamic one).
TEST(PackedEngineTest, NodeReadParityAndAttribution) {
  const Dataset data = GenerateCarDb(1000, 9301);
  WhyNotEngine packed_engine(GenerateCarDb(1000, 9301), PackedOptions(true));
  WhyNotEngine plain_engine(GenerateCarDb(1000, 9301), PackedOptions(false));
  for (const Point& q : FreshQueries(data, 6, 9302)) {
    packed_engine.ResetStats();
    plain_engine.ResetStats();
    ASSERT_EQ(packed_engine.ReverseSkyline(q), plain_engine.ReverseSkyline(q));
    const QueryStats packed_stats = packed_engine.stats();
    const QueryStats plain_stats = plain_engine.stats();
    EXPECT_EQ(packed_stats.rtree_node_reads, plain_stats.rtree_node_reads);
    EXPECT_GT(packed_stats.rtree_node_reads, 0u);
    EXPECT_EQ(packed_stats.packed_node_reads, packed_stats.rtree_node_reads);
    EXPECT_EQ(plain_stats.packed_node_reads, 0u);
    // BBRS work counters match too (the packed global-skyline scan keeps
    // exact dominance-test parity).
    EXPECT_EQ(packed_stats.bbrs_heap_pops, plain_stats.bbrs_heap_pops);
    EXPECT_EQ(packed_stats.bbrs_dominance_tests,
              plain_stats.bbrs_dominance_tests);
    EXPECT_EQ(packed_stats.bbrs_pruned_entries,
              plain_stats.bbrs_pruned_entries);
  }
}

// Each snapshot publish (construction, AddProduct, RemoveProduct) freezes
// exactly one packed image per tree it rebuilds; the dynamic-only engine
// never freezes.
TEST(PackedEngineTest, FreezeAccounting) {
  const Dataset data = GenerateCarDb(400, 9401);
  MetricsRegistry& registry = MetricsRegistry::Default();

  QueryStats before = registry.CaptureQueryStats();
  WhyNotEngine packed_engine(GenerateCarDb(400, 9401), PackedOptions(true));
  EXPECT_EQ((registry.CaptureQueryStats() - before).packed_freezes, 1u);

  before = registry.CaptureQueryStats();
  const size_t new_id = packed_engine.AddProduct(data.points[0]);
  EXPECT_EQ((registry.CaptureQueryStats() - before).packed_freezes, 1u);

  before = registry.CaptureQueryStats();
  EXPECT_TRUE(packed_engine.RemoveProduct(new_id));
  EXPECT_EQ((registry.CaptureQueryStats() - before).packed_freezes, 1u);

  before = registry.CaptureQueryStats();
  WhyNotEngine bichromatic(GenerateCarDb(300, 9402), GenerateCarDb(200, 9403),
                           PackedOptions(true));
  EXPECT_EQ((registry.CaptureQueryStats() - before).packed_freezes, 2u);

  before = registry.CaptureQueryStats();
  WhyNotEngine plain_engine(GenerateCarDb(400, 9401), PackedOptions(false));
  plain_engine.ReverseSkyline(data.points[1]);
  const QueryStats plain_delta = registry.CaptureQueryStats() - before;
  EXPECT_EQ(plain_delta.packed_freezes, 0u);
  EXPECT_EQ(plain_delta.packed_node_reads, 0u);
}

// Mutations re-freeze the packed image, so answers stay identical across
// an add/remove cycle.
TEST(PackedEngineTest, MutationsKeepParity) {
  const Dataset data = GenerateCarDb(500, 9501);
  WhyNotEngine packed_engine(GenerateCarDb(500, 9501), PackedOptions(true));
  WhyNotEngine plain_engine(GenerateCarDb(500, 9501), PackedOptions(false));
  const std::vector<Point> queries = FreshQueries(data, 5, 9502);
  auto expect_parity = [&] {
    for (const Point& q : queries) {
      EXPECT_EQ(packed_engine.ReverseSkyline(q),
                plain_engine.ReverseSkyline(q));
    }
  };
  expect_parity();

  Point added = data.points[3];
  added[0] *= 0.97;
  added[1] *= 1.03;
  const size_t id_a = packed_engine.AddProduct(added);
  const size_t id_b = plain_engine.AddProduct(added);
  ASSERT_EQ(id_a, id_b);
  expect_parity();

  ASSERT_TRUE(packed_engine.RemoveProduct(7));
  ASSERT_TRUE(plain_engine.RemoveProduct(7));
  expect_parity();
}

// Eight threads hammer a packed snapshot while the engine mutates
// underneath; every answer must match the dynamic-path engine's answer
// for the pre-mutation state (snapshot isolation + read-path parity).
TEST(PackedEngineTest, ConcurrentSnapshotQueriesMatch) {
  const Dataset data = GenerateCarDb(600, 9601);
  WhyNotEngineOptions packed_options = PackedOptions(true);
  packed_options.num_threads = 2;
  WhyNotEngine packed_engine(GenerateCarDb(600, 9601), packed_options);
  WhyNotEngine plain_engine(GenerateCarDb(600, 9601), PackedOptions(false));

  const std::vector<Point> queries = FreshQueries(data, 24, 9602);
  std::vector<std::vector<size_t>> expected;
  expected.reserve(queries.size());
  for (const Point& q : queries) {
    expected.push_back(plain_engine.ReverseSkyline(q));
  }

  const EngineSnapshot snapshot = packed_engine.Snapshot();
  // Mutate after taking the snapshot: the snapshot must keep answering
  // against the frozen pre-mutation image.
  // wnrs-lint: allow-discard(the mutation itself is the point; the
  // snapshot under test must not observe it)
  (void)packed_engine.AddProduct(data.points[11]);

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size();
           i += kThreads) {
        if (snapshot.ReverseSkyline(queries[i]) != expected[i]) {
          mismatches.fetch_add(1);
        }
        const size_t c = (i * 131) % 600;
        if (snapshot.IsReverseSkylineMember(c, queries[i]) !=
            plain_engine.IsReverseSkylineMember(c, queries[i])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace wnrs
