#include "core/mwq.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/mwp.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/naive.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

struct Fixture {
  explicit Fixture(Dataset dataset)
      : data(std::move(dataset)),
        tree(BulkLoadPoints(2, data.points)),
        cost(CostModel::EqualWeightsFor(data.Bounds())) {}

  std::vector<size_t> Rsl(const Point& q) const {
    return ReverseSkylineNaive(tree, data.points, q, true);
  }

  SafeRegionResult Sr(const Point& q) const {
    return ComputeSafeRegion(tree, data.points, data.points, Rsl(q), q,
                             data.Bounds(), true);
  }

  MwqResult Mwq(size_t c, const Point& q) const {
    return ModifyQueryAndWhyNotPoint(tree, data.points, data.points[c], q,
                                     Sr(q).region, data.Bounds(), cost, 0,
                                     static_cast<RStarTree::Id>(c));
  }

  Dataset data;
  RStarTree tree;
  CostModel cost;
};

TEST(MwqTest, AlreadyMemberShortCircuits) {
  Fixture fx(PaperExampleDataset());
  const MwqResult r = fx.Mwq(1, PaperExampleQuery());
  EXPECT_TRUE(r.already_member);
  EXPECT_EQ(r.best_cost, 0.0);
}

TEST(MwqTest, PaperCaseC1AndC2) {
  Fixture fx(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  const MwqResult c7 = fx.Mwq(6, q);
  EXPECT_TRUE(c7.overlap);
  EXPECT_EQ(c7.best_cost, 0.0);
  const MwqResult c1 = fx.Mwq(0, q);
  EXPECT_FALSE(c1.overlap);
  EXPECT_GT(c1.best_cost, 0.0);
}

class MwqPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MwqPropertyTest, InvariantsOnRandomWorkloads) {
  const int dist = GetParam();
  Dataset ds;
  switch (dist) {
    case 0:
      ds = GenerateUniform(300, 2, 3501);
      break;
    case 1:
      ds = GenerateAnticorrelated(300, 2, 3502);
      break;
    default:
      ds = GenerateCarDb(300, 3503);
      break;
  }
  Fixture fx(std::move(ds));
  Rng rng(3600 + dist);
  int exercised = 0;
  for (int trial = 0; trial < 40 && exercised < 15; ++trial) {
    const Point q = fx.data.points[rng.NextUint64(fx.data.points.size())];
    const std::vector<size_t> rsl = fx.Rsl(q);
    if (rsl.size() > 10) continue;
    const size_t c_idx = rng.NextUint64(fx.data.points.size());
    const MwqResult r = fx.Mwq(c_idx, q);
    if (r.already_member) continue;
    ++exercised;

    const MwpResult mwp = ModifyWhyNotPoint(
        fx.tree, fx.data.points, fx.data.points[c_idx], q, fx.cost, 0,
        static_cast<RStarTree::Id>(c_idx));
    ASSERT_FALSE(mwp.candidates.empty());

    if (r.overlap) {
      // C1: zero cost, and the returned q* really admits the customer
      // while keeping every existing member.
      EXPECT_EQ(r.best_cost, 0.0);
      ASSERT_FALSE(r.query_candidates.empty());
      const Point& q_star = r.query_candidates.front().point;
      EXPECT_TRUE(WindowEmpty(fx.tree, fx.data.points[c_idx], q_star,
                              static_cast<RStarTree::Id>(c_idx)));
      for (size_t c : rsl) {
        EXPECT_TRUE(WindowEmpty(fx.tree, fx.data.points[c], q_star,
                                static_cast<RStarTree::Id>(c)))
            << "existing customer " << c << " lost in case C1";
      }
    } else {
      // C2: cost never exceeds plain MWP (Table III/IV's headline
      // property: MWQ <= MWP; equality when SR degenerates to q).
      EXPECT_GT(r.best_cost, 0.0);
      EXPECT_LE(r.best_cost, mwp.candidates.front().cost + 1e-9)
          << "MWQ worse than MWP for q " << q.ToString();
      ASSERT_FALSE(r.why_not_candidates.empty());
      // The recommended q* stays inside the safe region (never loses
      // existing members).
      ASSERT_FALSE(r.query_candidates.empty());
      const SafeRegionResult sr = fx.Sr(q);
      EXPECT_TRUE(sr.region.Contains(r.query_candidates.front().point));
    }
  }
  EXPECT_GE(exercised, 5);
}

INSTANTIATE_TEST_SUITE_P(Distributions, MwqPropertyTest,
                         ::testing::Values(0, 1, 2));

TEST(MwqTest, EmptyRslActsLikeUnconstrainedQueryMove) {
  // With no existing reverse-skyline customers the safe region is the
  // whole universe, so MWQ always lands in case C1 with zero cost.
  Fixture fx(GenerateUniform(200, 2, 3701));
  Rng rng(3702);
  int checked = 0;
  for (int trial = 0; trial < 30 && checked < 5; ++trial) {
    const Point q({rng.NextDouble(), rng.NextDouble()});
    if (!fx.Rsl(q).empty()) continue;
    const size_t c_idx = rng.NextUint64(fx.data.points.size());
    const MwqResult r = fx.Mwq(c_idx, q);
    if (r.already_member) continue;
    ++checked;
    EXPECT_TRUE(r.overlap);
    EXPECT_EQ(r.best_cost, 0.0);
  }
}

}  // namespace
}  // namespace wnrs
