// Seeded violation: acquires the same (non-recursive) mutex twice — a
// guaranteed self-deadlock at run time. Must compile in the harness's
// control build (try_compile never runs the binary) and be rejected
// under -Werror=thread-safety (cmake/ThreadSafetyCheck.cmake).
#include "common/annotated_mutex.h"

int main() {
  wnrs::Mutex mu;
  mu.Lock();
  mu.Lock();  // BAD: mu is already held by this thread.
  mu.Unlock();
  mu.Unlock();
  return 0;
}
