// Seeded violation: calls a WNRS_EXCLUDES function with the excluded
// mutex held — with non-recursive mutexes that is a self-deadlock. Must
// compile in the harness's control build and be rejected under
// -Werror=thread-safety (cmake/ThreadSafetyCheck.cmake).
#include "common/annotated_mutex.h"

namespace {

class Widget {
 public:
  void Refresh() WNRS_EXCLUDES(mu_) {
    wnrs::MutexLock lock(mu_);
    ++generation_;
  }
  // BAD: calls Refresh (which re-acquires mu_) while holding mu_.
  void Touch() {
    wnrs::MutexLock lock(mu_);
    Refresh();
  }

 private:
  wnrs::Mutex mu_;
  int generation_ WNRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.Touch();
  return 0;
}
