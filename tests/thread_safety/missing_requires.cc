// Seeded violation: calls a WNRS_REQUIRES helper without holding the
// required mutex. Must compile in the harness's control build and be
// rejected under -Werror=thread-safety (cmake/ThreadSafetyCheck.cmake).
#include "common/annotated_mutex.h"

namespace {

class Table {
 public:
  void InsertLocked(int v) WNRS_REQUIRES(mu_) { last_ = v; }
  // BAD: calls the must-hold-lock helper with mu_ not held.
  void Insert(int v) { InsertLocked(v); }

 private:
  wnrs::Mutex mu_;
  int last_ WNRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Insert(1);
  return 0;
}
