// Seeded violation: a function returns with a manually acquired mutex
// still held (lock leak). Must compile in the harness's control build
// and be rejected under -Werror=thread-safety
// (cmake/ThreadSafetyCheck.cmake).
#include "common/annotated_mutex.h"

namespace {

wnrs::Mutex mu;
int value WNRS_GUARDED_BY(mu) = 0;

int TakeAndForget() {
  mu.Lock();
  return value;  // BAD: no Unlock on this path.
}

}  // namespace

int main() { return TakeAndForget(); }
