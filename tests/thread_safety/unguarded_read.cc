// Seeded violation: reads a WNRS_GUARDED_BY field without holding its
// mutex. Must compile in the harness's control build (valid C++) and be
// rejected under -Werror=thread-safety (cmake/ThreadSafetyCheck.cmake).
#include "common/annotated_mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    wnrs::MutexLock lock(mu_);
    ++value_;
  }
  // BAD: touches value_ with mu_ not held.
  int Read() const { return value_; }

 private:
  mutable wnrs::Mutex mu_;
  int value_ WNRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read();
}
