// Positive control for cmake/ThreadSafetyCheck.cmake: correct locking
// through every wrapper — MutexLock, ReaderLock, ReleasableLock, the
// CondVar while-loop wait, and a REQUIRES helper — must compile clean
// under -Werror=thread-safety. Guards against over-broad annotations in
// annotated_mutex.h that would start rejecting the real tree.
#include "common/annotated_mutex.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    wnrs::MutexLock lock(mu_);
    items_[count_++ % 8] = v;
    cv_.NotifyOne();
  }
  int BlockingPop() {
    wnrs::MutexLock lock(mu_);
    while (count_ == 0) cv_.Wait(mu_);
    return items_[--count_ % 8];
  }
  int PushAndRelease(int v) {
    wnrs::ReleasableLock lock(mu_);
    items_[count_++ % 8] = v;
    const int depth = count_;
    lock.Release();
    return depth;  // Returned without the lock: already copied out.
  }

 private:
  wnrs::Mutex mu_;
  wnrs::CondVar cv_;
  int items_[8] WNRS_GUARDED_BY(mu_) = {};
  int count_ WNRS_GUARDED_BY(mu_) = 0;
};

class Config {
 public:
  void Publish(int v) {
    wnrs::MutexLock lock(mu_);
    value_ = v;
  }
  int Read() const {
    wnrs::ReaderLock lock(mu_);
    return value_;
  }
  void UpdateLocked(int v) WNRS_REQUIRES(mu_) { value_ = v; }
  void Update(int v) {
    wnrs::MutexLock lock(mu_);
    UpdateLocked(v);
  }

 private:
  mutable wnrs::SharedMutex mu_;
  int value_ WNRS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  // wnrs-lint: allow-discard(compile-time harness; values are unused)
  (void)q.PushAndRelease(2);
  // wnrs-lint: allow-discard(compile-time harness; values are unused)
  (void)q.BlockingPop();
  Config c;
  c.Publish(3);
  c.Update(4);
  return c.Read();
}
