#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generators.h"

namespace wnrs {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string TempPath(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    return path_;
  }
  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  const Dataset ds = GenerateCarDb(200, 3);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const Result<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dims, ds.dims);
  ASSERT_EQ(loaded->points.size(), ds.points.size());
  for (size_t i = 0; i < ds.points.size(); ++i) {
    EXPECT_TRUE(loaded->points[i].ApproxEquals(ds.points[i], 1e-12));
  }
}

TEST_F(CsvTest, RoundTripPreservesExactDoubles) {
  Dataset ds;
  ds.dims = 2;
  ds.points = {Point({0.1, 1.0 / 3.0}), Point({1e-300, 1e300})};
  const std::string path = TempPath("exact.csv");
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const Result<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->points, ds.points);  // %.17g round-trips exactly.
}

TEST_F(CsvTest, LoadMissingFileFails) {
  const Result<Dataset> r = LoadCsv("/nonexistent/nope.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, LoadRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "d0,d1\n1,2\n3\n";
  const Result<Dataset> r = LoadCsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, LoadRejectsNonNumeric) {
  const std::string path = TempPath("alpha.csv");
  std::ofstream(path) << "d0,d1\n1,two\n";
  const Result<Dataset> r = LoadCsv(path);
  EXPECT_FALSE(r.ok());
}

TEST_F(CsvTest, LoadSkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "d0,d1\n1,2\n\n3,4\n";
  const Result<Dataset> r = LoadCsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->points.size(), 2u);
}

TEST_F(CsvTest, EmptyDatasetRoundTrips) {
  Dataset ds;
  ds.dims = 3;
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  const Result<Dataset> r = LoadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dims, 3u);
  EXPECT_TRUE(r->points.empty());
}

TEST_F(CsvTest, SaveToUnwritablePathFails) {
  const Dataset ds = PaperExampleDataset();
  EXPECT_FALSE(SaveCsv(ds, "/nonexistent/dir/file.csv").ok());
}

}  // namespace
}  // namespace wnrs
