#include "core/mwp.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

class MwpTest : public ::testing::Test {
 protected:
  MwpTest()
      : data_(PaperExampleDataset()),
        tree_(BulkLoadPoints(2, data_.points)),
        cost_(CostModel::EqualWeightsFor(data_.Bounds())),
        q_(PaperExampleQuery()) {}

  Dataset data_;
  RStarTree tree_;
  CostModel cost_;
  Point q_;
};

TEST_F(MwpTest, AlreadyMemberShortCircuits) {
  // c2 is already in RSL(q).
  const MwpResult r = ModifyWhyNotPoint(tree_, data_.points, data_.points[1],
                                        q_, cost_, 0, 1);
  EXPECT_TRUE(r.already_member);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_EQ(r.candidates[0].point, data_.points[1]);
  EXPECT_EQ(r.candidates[0].cost, 0.0);
}

TEST_F(MwpTest, PaperExampleCandidates) {
  const MwpResult r = ModifyWhyNotPoint(tree_, data_.points, data_.points[0],
                                        q_, cost_, 0, 0);
  EXPECT_FALSE(r.already_member);
  EXPECT_EQ(r.culprits, (std::vector<RStarTree::Id>{1}));
  ASSERT_EQ(r.candidates.size(), 2u);
  // Cost-ascending: (8, 30) moves price 3/23.5*0.5; (5, 48.5) moves
  // mileage 18.5/70*0.5.
  EXPECT_TRUE(r.candidates[0].point.ApproxEquals(Point({8.0, 30.0})));
  EXPECT_TRUE(r.candidates[1].point.ApproxEquals(Point({5.0, 48.5})));
  EXPECT_LT(r.candidates[0].cost, r.candidates[1].cost);
}

TEST_F(MwpTest, CandidatesAreMutuallyNonDominatedInCost) {
  // "No two points in M dominate each other" (Section IV): no candidate
  // should be strictly cheaper in every dimension's movement.
  const MwpResult r = ModifyWhyNotPoint(tree_, data_.points, data_.points[0],
                                        q_, cost_, 0, 0);
  const Point& c1 = data_.points[0];
  for (const Candidate& a : r.candidates) {
    for (const Candidate& b : r.candidates) {
      if (a.point == b.point) continue;
      bool a_no_worse_everywhere = true;
      bool a_better_somewhere = false;
      for (size_t i = 0; i < 2; ++i) {
        const double move_a = std::abs(a.point[i] - c1[i]);
        const double move_b = std::abs(b.point[i] - c1[i]);
        if (move_a > move_b) a_no_worse_everywhere = false;
        if (move_a < move_b) a_better_somewhere = true;
      }
      EXPECT_FALSE(a_no_worse_everywhere && a_better_somewhere)
          << a.point.ToString() << " dominates " << b.point.ToString();
    }
  }
}

/// Nudges a candidate slightly toward q and checks strict membership.
bool NudgedMember(const RStarTree& tree, const Point& cand, const Point& q,
                  std::optional<RStarTree::Id> exclude) {
  for (double eps : {1e-9, 1e-7, 1e-5}) {
    Point nudged = cand;
    for (size_t i = 0; i < nudged.dims(); ++i) {
      nudged[i] += eps * (q[i] - nudged[i]);
    }
    if (WindowEmpty(tree, nudged, q, exclude)) return true;
  }
  return false;
}

class MwpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MwpPropertyTest, CandidatesBecomeMembersAfterNudge) {
  const int dist = GetParam();
  Dataset ds;
  switch (dist) {
    case 0:
      ds = GenerateUniform(400, 2, 1201);
      break;
    case 1:
      ds = GenerateCorrelated(400, 2, 1202);
      break;
    case 2:
      ds = GenerateAnticorrelated(400, 2, 1203);
      break;
    default:
      ds = GenerateCarDb(400, 1204);
      break;
  }
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const CostModel cost = CostModel::EqualWeightsFor(ds.Bounds());
  Rng rng(500 + dist);
  int exercised = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    const Point& c_t = ds.points[c_idx];
    const MwpResult r = ModifyWhyNotPoint(
        tree, ds.points, c_t, q, cost, 0,
        static_cast<RStarTree::Id>(c_idx));
    if (r.already_member) continue;
    ++exercised;
    ASSERT_FALSE(r.candidates.empty());
    for (const Candidate& cand : r.candidates) {
      EXPECT_TRUE(NudgedMember(tree, cand.point, q,
                               static_cast<RStarTree::Id>(c_idx)))
          << "dist " << dist << " c_t " << c_t.ToString() << " q "
          << q.ToString() << " cand " << cand.point.ToString();
      EXPECT_GE(cand.cost, 0.0);
    }
    // Candidates are sorted by cost.
    for (size_t i = 1; i < r.candidates.size(); ++i) {
      EXPECT_LE(r.candidates[i - 1].cost, r.candidates[i].cost);
    }
  }
  EXPECT_GT(exercised, 10);
}

INSTANTIATE_TEST_SUITE_P(Distributions, MwpPropertyTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(MwpFastTest, FastPathMatchesReferenceCandidates) {
  for (int dist = 0; dist < 4; ++dist) {
    Dataset ds;
    switch (dist) {
      case 0:
        ds = GenerateUniform(500, 2, 9901);
        break;
      case 1:
        ds = GenerateCorrelated(500, 2, 9902);
        break;
      case 2:
        ds = GenerateAnticorrelated(500, 2, 9903);
        break;
      default:
        ds = GenerateCarDb(500, 9904);
        break;
    }
    RStarTree tree = BulkLoadPoints(2, ds.points);
    const CostModel cost = CostModel::EqualWeightsFor(ds.Bounds());
    Rng rng(9950 + dist);
    for (int trial = 0; trial < 40; ++trial) {
      const size_t c_idx = rng.NextUint64(ds.points.size());
      const Point q = ds.points[rng.NextUint64(ds.points.size())];
      const auto exclude = static_cast<RStarTree::Id>(c_idx);
      const MwpResult slow = ModifyWhyNotPoint(tree, ds.points,
                                               ds.points[c_idx], q, cost, 0,
                                               exclude);
      const MwpResult fast = ModifyWhyNotPointFast(
          tree, ds.points, ds.points[c_idx], q, cost, 0, exclude);
      EXPECT_EQ(slow.already_member, fast.already_member);
      ASSERT_EQ(slow.candidates.size(), fast.candidates.size())
          << "dist " << dist << " trial " << trial;
      for (size_t i = 0; i < slow.candidates.size(); ++i) {
        EXPECT_TRUE(
            slow.candidates[i].point.ApproxEquals(fast.candidates[i].point))
            << slow.candidates[i].point.ToString() << " vs "
            << fast.candidates[i].point.ToString();
      }
    }
  }
}

TEST(MwpFastTest, FastFrontierIsSubsetOfCulprits) {
  const Dataset ds = GenerateCarDb(1000, 9905);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const CostModel cost = CostModel::EqualWeightsFor(ds.Bounds());
  Rng rng(9906);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point q = ds.points[rng.NextUint64(ds.points.size())];
    const auto exclude = static_cast<RStarTree::Id>(c_idx);
    const MwpResult slow = ModifyWhyNotPoint(tree, ds.points,
                                             ds.points[c_idx], q, cost, 0,
                                             exclude);
    const MwpResult fast = ModifyWhyNotPointFast(
        tree, ds.points, ds.points[c_idx], q, cost, 0, exclude);
    if (slow.already_member) continue;
    EXPECT_LE(fast.culprits.size(), slow.culprits.size());
    for (RStarTree::Id id : fast.culprits) {
      EXPECT_TRUE(std::find(slow.culprits.begin(), slow.culprits.end(),
                            id) != slow.culprits.end());
    }
  }
}

TEST(MwpOrientationTest, WorksWhenWhyNotIsAboveQuery) {
  // c_t dominates... sits up-right of q: the mirrored orientation path.
  std::vector<Point> products = {Point({6.0, 6.0}), Point({5.5, 5.5})};
  Dataset ds;
  ds.dims = 2;
  ds.points = products;
  RStarTree tree = BulkLoadPoints(2, products);
  const CostModel cost =
      CostModel::EqualWeightsFor(Rectangle(Point({0, 0}), Point({10, 10})));
  const Point c_t({9.0, 9.0});
  const Point q({4.0, 4.0});
  const MwpResult r = ModifyWhyNotPoint(tree, products, c_t, q, cost, 0);
  ASSERT_FALSE(r.already_member);
  EXPECT_EQ(r.culprits.size(), 2u);
  for (const Candidate& cand : r.candidates) {
    Point nudged = cand.point;
    for (size_t i = 0; i < 2; ++i) nudged[i] += 1e-7 * (q[i] - nudged[i]);
    EXPECT_TRUE(WindowEmpty(tree, nudged, q))
        << cand.point.ToString();
  }
}

TEST(MwpOrientationTest, MixedOrientation3D) {
  std::vector<Point> products = {Point({4.0, 6.0, 5.0})};
  RStarTree tree = BulkLoadPoints(3, products);
  const CostModel cost = CostModel::EqualWeightsFor(
      Rectangle(Point({0, 0, 0}), Point({10, 10, 10})));
  const Point c_t({2.0, 9.0, 5.0});
  const Point q({6.0, 3.0, 6.0});
  const MwpResult r = ModifyWhyNotPoint(tree, products, c_t, q, cost, 0);
  if (!r.already_member) {
    for (const Candidate& cand : r.candidates) {
      Point nudged = cand.point;
      for (size_t i = 0; i < 3; ++i) nudged[i] += 1e-7 * (q[i] - nudged[i]);
      EXPECT_TRUE(WindowEmpty(tree, nudged, q)) << cand.point.ToString();
    }
  }
}

}  // namespace
}  // namespace wnrs
