#include "geometry/point.h"

#include <gtest/gtest.h>

namespace wnrs {
namespace {

TEST(PointTest, ConstructionVariants) {
  EXPECT_EQ(Point().dims(), 0u);
  EXPECT_TRUE(Point().empty());

  Point origin(3);
  EXPECT_EQ(origin.dims(), 3u);
  EXPECT_EQ(origin[0], 0.0);
  EXPECT_EQ(origin[2], 0.0);

  Point p({1.0, 2.0});
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_EQ(p[1], 2.0);

  Point from_vec(std::vector<double>{4.0, 5.0, 6.0});
  EXPECT_EQ(from_vec.dims(), 3u);
  EXPECT_EQ(from_vec[2], 6.0);
}

TEST(PointTest, MutationThroughIndex) {
  Point p(2);
  p[0] = 3.5;
  EXPECT_EQ(p[0], 3.5);
}

TEST(PointTest, EqualityAndOrdering) {
  EXPECT_EQ(Point({1.0, 2.0}), Point({1.0, 2.0}));
  EXPECT_FALSE(Point({1.0, 2.0}) == Point({1.0, 3.0}));
  EXPECT_TRUE(Point({1.0, 2.0}) < Point({1.0, 3.0}));
  EXPECT_TRUE(Point({0.0, 9.0}) < Point({1.0, 0.0}));
}

TEST(PointTest, ApproxEquals) {
  EXPECT_TRUE(Point({1.0}).ApproxEquals(Point({1.0 + 1e-12})));
  EXPECT_FALSE(Point({1.0}).ApproxEquals(Point({1.1})));
  EXPECT_TRUE(Point({1.0}).ApproxEquals(Point({1.05}), 0.1));
  // Dimension mismatch is just "not equal".
  EXPECT_FALSE(Point({1.0}).ApproxEquals(Point({1.0, 2.0})));
}

TEST(PointTest, Norms) {
  EXPECT_DOUBLE_EQ(Point({3.0, -4.0}).L1Norm(), 7.0);
  EXPECT_DOUBLE_EQ(Point({3.0, -4.0}).L2Distance(Point({0.0, 0.0})), 5.0);
}

TEST(PointTest, Distances) {
  const Point a({1.0, 2.0});
  const Point b({4.0, -2.0});
  EXPECT_DOUBLE_EQ(a.L1Distance(b), 7.0);
  EXPECT_DOUBLE_EQ(a.L2Distance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.L1Distance(a), 0.0);
}

TEST(PointTest, WeightedL1Distance) {
  const Point a({0.0, 0.0});
  const Point b({2.0, 10.0});
  EXPECT_DOUBLE_EQ(a.WeightedL1Distance(b, {0.5, 0.1}), 2.0);
  EXPECT_DOUBLE_EQ(a.WeightedL1Distance(b, {0.0, 0.0}), 0.0);
}

TEST(PointTest, ToStringFormatsCompactly) {
  EXPECT_EQ(Point({8.5, 55.0}).ToString(), "(8.5, 55)");
  EXPECT_EQ(Point({1.0}).ToString(), "(1)");
}

}  // namespace
}  // namespace wnrs
