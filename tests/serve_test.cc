// Tests for the deadline-aware RequestScheduler: result parity with the
// direct engine API, pinned deadline-miss and same-q batch-sharing
// behavior, admission control, graceful degradation on malformed input,
// and shutdown semantics. Deterministic scheduling states are arranged
// with start_paused + Resume, never with sleeps.

#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "data/generators.h"

namespace wnrs {
namespace serve {
namespace {

WhyNotEngine MakeEngine(size_t n = 200, uint64_t seed = 5) {
  WhyNotEngineOptions options;
  options.num_threads = 1;
  return WhyNotEngine(GenerateCarDb(n, seed), options);
}

WhyNotRequest MakeRequest(RequestKind kind, const Point& q, size_t c = 0) {
  WhyNotRequest request;
  request.kind = kind;
  request.q = q;
  request.c = c;
  return request;
}

TEST(ServeTest, ResultsMatchDirectEngineCalls) {
  const WhyNotEngine engine = MakeEngine();
  RequestScheduler scheduler(&engine);
  const Point q = engine.products().points[3];
  const size_t c = 11;

  WhyNotResponse r =
      scheduler.SubmitAndWait(MakeRequest(RequestKind::kReverseSkyline, q));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.reverse_skyline(), engine.ReverseSkyline(q));

  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kExplain, q, c));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.explanation().culprits, engine.Explain(c, q).culprits);

  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyWhyNot, q, c));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const MwpResult mwp = engine.ModifyWhyNot(c, q);
  ASSERT_EQ(r.mwp().candidates.size(), mwp.candidates.size());
  for (size_t i = 0; i < mwp.candidates.size(); ++i) {
    EXPECT_EQ(r.mwp().candidates[i].cost, mwp.candidates[i].cost);
    EXPECT_EQ(r.mwp().candidates[i].point, mwp.candidates[i].point);
  }

  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyQuery, q, c));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const MqpResult mqp = engine.ModifyQuery(c, q);
  ASSERT_EQ(r.mqp().candidates.size(), mqp.candidates.size());

  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kSafeRegion, q));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_NE(r.safe_region(), nullptr);
  EXPECT_EQ(r.safe_region()->region.size(), engine.SafeRegion(q).region.size());

  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyBoth, q, c));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.mwq().best_cost, engine.ModifyBoth(c, q).best_cost);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.admission_rejects, 0u);
}

TEST(ServeTest, StrictSemanticsThreadsThrough) {
  const WhyNotEngine engine = MakeEngine();
  RequestScheduler scheduler(&engine);
  const Point q = engine.products().points[3];
  WhyNotRequest request = MakeRequest(RequestKind::kModifyWhyNot, q, 11);
  request.semantics = Semantics::kStrict;
  const WhyNotResponse r = scheduler.SubmitAndWait(request);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const MwpResult strict =
      engine.ModifyWhyNot(11, q, Semantics::kStrict);
  ASSERT_EQ(r.mwp().candidates.size(), strict.candidates.size());
  for (size_t i = 0; i < strict.candidates.size(); ++i) {
    EXPECT_EQ(r.mwp().candidates[i].point, strict.candidates[i].point);
  }
}

// A request whose deadline has already passed when the dispatcher reaches
// it is answered DeadlineExceeded without running.
TEST(ServeTest, ExpiredDeadlineIsMissWithoutExecution) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[0];

  WhyNotRequest request = MakeRequest(RequestKind::kModifyBoth, q, 7);
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  std::future<WhyNotResponse> expired = scheduler.Submit(request);
  // Same q, no deadline: proves the batch-mate still runs.
  std::future<WhyNotResponse> fine =
      scheduler.Submit(MakeRequest(RequestKind::kModifyBoth, q, 7));
  scheduler.Resume();

  const WhyNotResponse r1 = expired.get();
  EXPECT_EQ(r1.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(r1.completed);
  EXPECT_TRUE(r1.mwq().query_candidates.empty());

  const WhyNotResponse r2 = fine.get();
  EXPECT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_TRUE(r2.completed);

  EXPECT_EQ(scheduler.stats().deadline_misses, 1u);
}

// Same-q requests queued together dispatch as one batch: one shared
// snapshot computation, batch_share_hits counts the riders.
TEST(ServeTest, SameQueryRequestsShareOneBatch) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[5];

  std::vector<std::future<WhyNotResponse>> futures;
  for (size_t c : {3u, 9u, 14u, 21u}) {
    futures.push_back(
        scheduler.Submit(MakeRequest(RequestKind::kModifyBoth, q, c)));
  }
  EXPECT_EQ(scheduler.queue_depth(), 4u);
  scheduler.Resume();

  for (auto& f : futures) {
    const WhyNotResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.shared_batch);
    EXPECT_FALSE(r.mwq().query_candidates.empty());
  }
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.batch_share_hits, 3u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(scheduler.queue_depth(), 0u);
}

// max_batch caps how many same-q requests one dispatch absorbs.
TEST(ServeTest, MaxBatchCapsSharing) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  options.max_batch = 2;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[5];

  std::vector<std::future<WhyNotResponse>> futures;
  for (size_t i = 0; i < 4; ++i) {
    futures.push_back(
        scheduler.Submit(MakeRequest(RequestKind::kReverseSkyline, q)));
  }
  scheduler.Resume();
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().status.ok());
  }
  // Two batches of two -> one rider each.
  EXPECT_EQ(scheduler.stats().batch_share_hits, 2u);
}

// Higher priority dispatches first even when submitted later.
TEST(ServeTest, PriorityOrdersDispatch) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler scheduler(&engine, options);
  const Point q_low = engine.products().points[1];
  const Point q_high = engine.products().points[2];

  WhyNotRequest low = MakeRequest(RequestKind::kReverseSkyline, q_low);
  WhyNotRequest high = MakeRequest(RequestKind::kReverseSkyline, q_high);
  high.priority = 10;
  std::future<WhyNotResponse> f_low = scheduler.Submit(low);
  std::future<WhyNotResponse> f_high = scheduler.Submit(high);
  scheduler.Resume();

  const WhyNotResponse r_low = f_low.get();
  const WhyNotResponse r_high = f_high.get();
  ASSERT_TRUE(r_low.status.ok());
  ASSERT_TRUE(r_high.status.ok());
  // The high-priority request waited no longer than the earlier-submitted
  // low-priority one (it jumped the queue).
  EXPECT_LE(r_high.queue_wait.count(), r_low.queue_wait.count());
}

TEST(ServeTest, AdmissionControlRejectsWhenQueueFull) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  options.max_queue_depth = 2;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[0];

  std::future<WhyNotResponse> f1 =
      scheduler.Submit(MakeRequest(RequestKind::kReverseSkyline, q));
  std::future<WhyNotResponse> f2 =
      scheduler.Submit(MakeRequest(RequestKind::kSafeRegion, q));
  std::future<WhyNotResponse> f3 =
      scheduler.Submit(MakeRequest(RequestKind::kModifyBoth, q, 4));

  // The third is rejected immediately (the scheduler is paused, so no
  // queue slot can have freed up).
  const WhyNotResponse r3 = f3.get();
  EXPECT_EQ(r3.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(r3.completed);
  EXPECT_EQ(scheduler.stats().admission_rejects, 1u);

  scheduler.Resume();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  EXPECT_EQ(scheduler.stats().completed, 2u);
}

// Malformed requests come back as error responses, never aborts.
TEST(ServeTest, InvalidRequestsDegradeGracefully) {
  const WhyNotEngine engine = MakeEngine();
  RequestScheduler scheduler(&engine);
  const Point q = engine.products().points[0];

  // Customer index out of range.
  WhyNotResponse r = scheduler.SubmitAndWait(
      MakeRequest(RequestKind::kModifyWhyNot, q, engine.customers().size()));
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(r.completed);

  // Wrong-dimensional query point.
  r = scheduler.SubmitAndWait(
      MakeRequest(RequestKind::kReverseSkyline, Point({1.0, 2.0, 3.0})));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // Approx MWQ without a precomputed approx store.
  r = scheduler.SubmitAndWait(
      MakeRequest(RequestKind::kModifyBothApprox, q, 4));
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);

  // A bad request inside a same-q batch fails alone; its batch-mates
  // still succeed.
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler paused(&engine, options);
  std::future<WhyNotResponse> good =
      paused.Submit(MakeRequest(RequestKind::kModifyBoth, q, 4));
  std::future<WhyNotResponse> bad = paused.Submit(
      MakeRequest(RequestKind::kModifyBoth, q, engine.customers().size()));
  paused.Resume();
  EXPECT_TRUE(good.get().status.ok());
  EXPECT_EQ(bad.get().status.code(), StatusCode::kOutOfRange);
}

// The response payload is a tagged variant; the tag must track the kind
// for successes and stay kNoPayload for failures.
TEST(ServeTest, PayloadTagTracksRequestKind) {
  const WhyNotEngine engine = MakeEngine();
  RequestScheduler scheduler(&engine);
  const Point q = engine.products().points[3];

  WhyNotResponse r =
      scheduler.SubmitAndWait(MakeRequest(RequestKind::kReverseSkyline, q));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kReverseSkylinePayload);
  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kExplain, q, 11));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kExplanationPayload);
  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyWhyNot, q, 11));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kMwpPayload);
  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyQuery, q, 11));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kMqpPayload);
  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kSafeRegion, q));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kSafeRegionPayload);
  r = scheduler.SubmitAndWait(MakeRequest(RequestKind::kModifyBoth, q, 11));
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kMwqPayload);

  // Failure: no payload, and every accessor returns its empty default.
  r = scheduler.SubmitAndWait(
      MakeRequest(RequestKind::kModifyWhyNot, q, engine.customers().size()));
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kNoPayload);
  EXPECT_TRUE(r.reverse_skyline().empty());
  EXPECT_TRUE(r.mwp().candidates.empty());
  EXPECT_EQ(r.safe_region(), nullptr);
  EXPECT_EQ(r.mwq().best_cost, 0.0);
}

// A relative timeout is resolved against the Submit timestamp: a zero
// timeout is already expired when the dispatcher reaches it, a generous
// one completes.
TEST(ServeTest, TimeoutResolvesAgainstSubmitTime) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[0];

  WhyNotRequest expired = MakeRequest(RequestKind::kReverseSkyline, q);
  expired.timeout = std::chrono::microseconds(0);
  WhyNotRequest fine = MakeRequest(RequestKind::kReverseSkyline, q);
  fine.timeout = std::chrono::hours(1);
  std::future<WhyNotResponse> f_expired = scheduler.Submit(expired);
  std::future<WhyNotResponse> f_fine = scheduler.Submit(fine);
  scheduler.Resume();

  EXPECT_EQ(f_expired.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(f_fine.get().status.ok());
  EXPECT_EQ(scheduler.stats().deadline_misses, 1u);
}

// When both an absolute deadline and a relative timeout are set, the
// earlier effective deadline wins in either direction.
TEST(ServeTest, DeadlineTimeoutPrecedenceEarlierWins) {
  const auto now = std::chrono::steady_clock::now();
  WhyNotRequest request;

  EXPECT_FALSE(EffectiveDeadline(request, now).has_value());

  request.timeout = std::chrono::seconds(1);
  EXPECT_EQ(EffectiveDeadline(request, now),
            now + std::chrono::seconds(1));

  // Timeout tightens a later absolute deadline...
  request.deadline = now + std::chrono::seconds(10);
  EXPECT_EQ(EffectiveDeadline(request, now),
            now + std::chrono::seconds(1));

  // ...and an earlier absolute deadline beats a longer timeout.
  request.deadline = now + std::chrono::milliseconds(1);
  request.timeout = std::chrono::seconds(10);
  EXPECT_EQ(EffectiveDeadline(request, now),
            now + std::chrono::milliseconds(1));

  request.timeout.reset();
  EXPECT_EQ(EffectiveDeadline(request, now),
            now + std::chrono::milliseconds(1));
}

// Pinned regression: SubmitAndWait after Shutdown must return (with
// Unavailable) immediately instead of blocking, and Submit's future must
// already be fulfilled when Submit returns.
TEST(ServeTest, SubmitAfterShutdownFulfillsImmediately) {
  const WhyNotEngine engine = MakeEngine();
  RequestScheduler scheduler(&engine);
  const Point q = engine.products().points[0];
  scheduler.Shutdown();

  const WhyNotResponse r =
      scheduler.SubmitAndWait(MakeRequest(RequestKind::kReverseSkyline, q));
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.payload_tag(), WhyNotResponse::kNoPayload);

  std::future<WhyNotResponse> f =
      scheduler.Submit(MakeRequest(RequestKind::kModifyBoth, q, 3));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f.get().status.code(), StatusCode::kUnavailable);
}

TEST(ServeTest, ShutdownFailsQueuedRequests) {
  const WhyNotEngine engine = MakeEngine();
  SchedulerOptions options;
  options.start_paused = true;
  RequestScheduler scheduler(&engine, options);
  const Point q = engine.products().points[0];

  std::future<WhyNotResponse> f =
      scheduler.Submit(MakeRequest(RequestKind::kReverseSkyline, q));
  scheduler.Shutdown();
  const WhyNotResponse r = f.get();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(r.completed);

  // Submitting after shutdown is also Unavailable, and Shutdown is
  // idempotent.
  const WhyNotResponse r2 =
      scheduler.SubmitAndWait(MakeRequest(RequestKind::kReverseSkyline, q));
  EXPECT_EQ(r2.status.code(), StatusCode::kUnavailable);
  scheduler.Shutdown();
}

// Pinned regression: Shutdown must be callable from several threads at
// once. Before shutdown_mu_ serialized it, two racing callers could
// both observe dispatcher_.joinable() and call join() on the same
// std::thread concurrently — undefined behavior (and a terminate() in
// practice when the loser joins an already-joined thread). Run under
// TSan in the sanitizer job this also pins the dispatcher_ handoff.
TEST(ServeTest, ConcurrentShutdownIsSerializedAndIdempotent) {
  for (int round = 0; round < 20; ++round) {
    const WhyNotEngine engine = MakeEngine(60, 7);
    RequestScheduler scheduler(&engine);
    const Point q = engine.products().points[0];
    // In-flight work so Shutdown races a live dispatcher, not an idle one.
    std::future<WhyNotResponse> f =
        scheduler.Submit(MakeRequest(RequestKind::kReverseSkyline, q));

    constexpr int kCallers = 4;
    std::atomic<int> ready{0};
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&] {
        // Spin barrier: maximize the window where all callers enter
        // Shutdown together.
        ++ready;
        while (ready.load() < kCallers) {
        }
        scheduler.Shutdown();
      });
    }
    for (std::thread& th : callers) th.join();

    // The raced request resolved one way or the other (executed or
    // failed Unavailable), and every post-Shutdown submit refuses.
    const WhyNotResponse r = f.get();
    EXPECT_TRUE(r.status.ok() || r.status.code() == StatusCode::kUnavailable)
        << r.status.ToString();
    EXPECT_EQ(scheduler.SubmitAndWait(MakeRequest(RequestKind::kReverseSkyline,
                                                  q))
                  .status.code(),
              StatusCode::kUnavailable);
  }
}

TEST(ServeTest, RequestKindNamesAreStable) {
  EXPECT_STREQ(RequestKindName(RequestKind::kReverseSkyline),
               "reverse_skyline");
  EXPECT_STREQ(RequestKindName(RequestKind::kModifyBoth), "modify_both");
  EXPECT_STREQ(RequestKindName(RequestKind::kModifyBothApprox),
               "modify_both_approx");
}

}  // namespace
}  // namespace serve
}  // namespace wnrs
