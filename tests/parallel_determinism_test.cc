// Determinism guarantees of the parallel execution layer: every engine
// answer must be identical under num_threads = 1 (bit-exact serial
// fallback) and num_threads = 8, and the query-keyed reverse-skyline
// memo must return the same answers before and after invalidation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"

namespace wnrs {
namespace {

WhyNotEngineOptions WithThreads(size_t n) {
  WhyNotEngineOptions options;
  options.num_threads = n;
  return options;
}

void ExpectSameMwq(const MwqResult& a, const MwqResult& b,
                   const std::string& label) {
  EXPECT_EQ(a.already_member, b.already_member) << label;
  EXPECT_EQ(a.overlap, b.overlap) << label;
  EXPECT_EQ(a.best_cost, b.best_cost) << label;  // Bit-exact.
  ASSERT_EQ(a.query_candidates.size(), b.query_candidates.size()) << label;
  for (size_t i = 0; i < a.query_candidates.size(); ++i) {
    EXPECT_EQ(a.query_candidates[i].point, b.query_candidates[i].point)
        << label << " query candidate " << i;
    EXPECT_EQ(a.query_candidates[i].cost, b.query_candidates[i].cost)
        << label << " query candidate " << i;
  }
  ASSERT_EQ(a.why_not_candidates.size(), b.why_not_candidates.size())
      << label;
  for (size_t i = 0; i < a.why_not_candidates.size(); ++i) {
    EXPECT_EQ(a.why_not_candidates[i].point, b.why_not_candidates[i].point)
        << label << " why-not candidate " << i;
    EXPECT_EQ(a.why_not_candidates[i].cost, b.why_not_candidates[i].cost)
        << label << " why-not candidate " << i;
  }
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ParallelDeterminismTest, ReverseSkylineIdenticalAcrossThreadCounts) {
  const Dataset data = GenerateCarDb(500, 77);
  WhyNotEngine serial(data, WithThreads(1));
  WhyNotEngine parallel(data, WithThreads(8));
  Rng rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = data.points[rng.NextUint64(data.points.size())];
    EXPECT_EQ(serial.ReverseSkyline(q), parallel.ReverseSkyline(q))
        << "trial " << trial;
  }
}

TEST(ParallelDeterminismTest,
     BichromaticReverseSkylineIdenticalAcrossThreadCounts) {
  const Dataset products = GenerateUniform(400, 2, 11);
  const Dataset customers = GenerateUniform(150, 2, 12);
  WhyNotEngine serial(products, customers, WithThreads(1));
  WhyNotEngine parallel(products, customers, WithThreads(8));
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const Point q = products.points[rng.NextUint64(products.points.size())];
    EXPECT_EQ(serial.ReverseSkyline(q), parallel.ReverseSkyline(q))
        << "trial " << trial;
  }
}

TEST(ParallelDeterminismTest, ModifyBothBatchIdenticalAcrossThreadCounts) {
  const Dataset data = GenerateCarDb(400, 31);
  WhyNotEngine serial(data, WithThreads(1));
  WhyNotEngine parallel(data, WithThreads(8));
  const Point q = data.points[7];
  std::vector<size_t> whos;
  for (size_t c = 0; c < 32; ++c) whos.push_back(c * 11 % data.points.size());
  const std::vector<MwqResult> a = serial.ModifyBothBatch(whos, q);
  const std::vector<MwqResult> b = parallel.ModifyBothBatch(whos, q);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectSameMwq(a[i], b[i], "batch entry " + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest,
     ApproxBatchAndPrecomputeIdenticalAcrossThreadCounts) {
  const Dataset data = GenerateCarDb(300, 47);
  WhyNotEngine serial(data, WithThreads(1));
  WhyNotEngine parallel(data, WithThreads(8));
  serial.PrecomputeApproxDsls(8);
  parallel.PrecomputeApproxDsls(8);

  // The precomputed stores must be byte-identical on disk: the offline
  // pass writes one independent slot per customer regardless of schedule.
  const std::string path_a = ::testing::TempDir() + "/dsl_serial.txt";
  const std::string path_b = ::testing::TempDir() + "/dsl_parallel.txt";
  ASSERT_TRUE(serial.SaveApproxDsls(path_a).ok());
  ASSERT_TRUE(parallel.SaveApproxDsls(path_b).ok());
  EXPECT_EQ(FileContents(path_a), FileContents(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  const Point q = data.points[3];
  const std::vector<size_t> whos = {0, 5, 9, 17, 42, 99, 128, 250};
  const std::vector<MwqResult> a =
      serial.ModifyBothBatch(whos, q, /*use_approx=*/true);
  const std::vector<MwqResult> b =
      parallel.ModifyBothBatch(whos, q, /*use_approx=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectSameMwq(a[i], b[i], "approx batch entry " + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, LostCustomersAndMqpCostIdentical) {
  const Dataset data = GenerateCarDb(350, 53);
  WhyNotEngine serial(data, WithThreads(1));
  WhyNotEngine parallel(data, WithThreads(8));
  Rng rng(54);
  for (int trial = 0; trial < 8; ++trial) {
    const Point q = data.points[rng.NextUint64(data.points.size())];
    const Point q_star = data.points[rng.NextUint64(data.points.size())];
    EXPECT_EQ(serial.LostCustomers(q, q_star),
              parallel.LostCustomers(q, q_star))
        << "trial " << trial;
    EXPECT_EQ(serial.MqpEvaluationCost(q, q_star),
              parallel.MqpEvaluationCost(q, q_star))
        << "trial " << trial;  // Bit-exact: parallel costs summed in order.
  }
}

TEST(ParallelDeterminismTest, RslCacheInvalidatedByProductMutations) {
  WhyNotEngine engine(GenerateCarDb(200, 61), WithThreads(4));
  WhyNotEngine reference(GenerateCarDb(200, 61), WithThreads(1));
  const Point q = engine.products().points[5];

  // Warm the memo, then hit it: identical answer both times.
  const std::vector<size_t> cold = engine.ReverseSkyline(q);
  EXPECT_EQ(cold, engine.ReverseSkyline(q));
  EXPECT_EQ(cold, reference.ReverseSkyline(q));

  // A mutation must drop the memo: the cached answer may no longer hold.
  const size_t added = engine.AddProduct(q);  // A twin of q at q itself.
  // wnrs-lint: allow-discard(mirrors `added` above; ids match by
  // construction since both engines saw identical mutations)
  (void)reference.AddProduct(q);
  const std::vector<size_t> after_add = engine.ReverseSkyline(q);
  EXPECT_EQ(after_add, reference.ReverseSkyline(q));

  ASSERT_TRUE(engine.RemoveProduct(added));
  ASSERT_TRUE(reference.RemoveProduct(added));
  const std::vector<size_t> after_remove = engine.ReverseSkyline(q);
  EXPECT_EQ(after_remove, reference.ReverseSkyline(q));
  // Removing the twin restores the original market.
  EXPECT_EQ(after_remove, cold);
}

TEST(ParallelDeterminismTest, SafeRegionUsesRslMemo) {
  // SafeRegion and the memo must agree on RSL(q) — the safe region built
  // from a stale RSL would silently lose customers.
  WhyNotEngine engine(GenerateCarDb(250, 67), WithThreads(4));
  const Point q = engine.products().points[9];
  const std::vector<size_t> rsl = engine.ReverseSkyline(q);
  const SafeRegionResult& sr = engine.SafeRegion(q);
  for (size_t c : rsl) {
    // Every member must still be a member anywhere in SR(q); probe q.
    EXPECT_TRUE(engine.IsReverseSkylineMember(c, q)) << "member " << c;
  }
  EXPECT_TRUE(sr.region.Contains(q));
}

}  // namespace
}  // namespace wnrs
