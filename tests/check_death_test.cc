// Programmer-error contracts: dimension mismatches and precondition
// violations abort via WNRS_CHECK rather than corrupting state.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generators.h"
#include "geometry/dominance.h"
#include "index/rtree.h"
#include "skyline/approx.h"

namespace wnrs {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, PointDistanceDimensionMismatch) {
  const Point a({1.0, 2.0});
  const Point b({1.0, 2.0, 3.0});
  EXPECT_DEATH((void)a.L1Distance(b), "Check failed");
}

TEST(CheckDeathTest, DominanceDimensionMismatch) {
  EXPECT_DEATH((void)Dominates(Point({1.0}), Point({1.0, 2.0})),
               "Check failed");
}

TEST(CheckDeathTest, RectangleCornerDimensionMismatch) {
  EXPECT_DEATH(Rectangle(Point({0.0}), Point({1.0, 1.0})), "Check failed");
}

TEST(CheckDeathTest, RTreeInsertWrongDims) {
  RStarTree tree(2);
  EXPECT_DEATH(tree.Insert(Point({1.0, 2.0, 3.0}), 0), "Check failed");
}

TEST(CheckDeathTest, RTreeZeroDims) {
  EXPECT_DEATH(RStarTree(0), "Check failed");
}

TEST(CheckDeathTest, ApproximateSkylineNeedsKAtLeastTwo) {
  EXPECT_DEATH((void)ApproximateSkyline({Point({1.0, 1.0})}, 1),
               "Check failed");
}

TEST(CheckDeathTest, EngineRejectsEmptyDataset) {
  Dataset empty;
  empty.dims = 2;
  EXPECT_DEATH(WhyNotEngine{std::move(empty)}, "Check failed");
}

TEST(CheckDeathTest, EngineRejectsMismatchedBichromaticDims) {
  Dataset products = GenerateUniform(10, 2, 1);
  Dataset customers = GenerateUniform(10, 3, 1);
  EXPECT_DEATH(WhyNotEngine(std::move(products), std::move(customers)),
               "Check failed");
}

TEST(CheckDeathTest, ApproxSafeRegionWithoutPrecompute) {
  WhyNotEngine engine(PaperExampleDataset());
  EXPECT_DEATH((void)engine.ApproxSafeRegion(PaperExampleQuery()),
               "Check failed");
}

}  // namespace
}  // namespace wnrs
