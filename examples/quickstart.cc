// Quickstart: the whole why-not pipeline in ~60 lines, on the paper's own
// running example (Fig. 1(a), q = (8.5K, 55K)).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "data/generators.h"

int main() {
  using wnrs::Point;

  // One relation of 8 car tuples (price $K, mileage K-miles) serves as
  // both the product set P and the customer-preference set C.
  wnrs::WhyNotEngine engine(wnrs::PaperExampleDataset());
  const Point q = wnrs::PaperExampleQuery();

  std::printf("query product q = %s\n", q.ToString().c_str());

  // 1. Who is interested in q? (reverse skyline)
  std::printf("reverse skyline of q: ");
  for (size_t c : engine.ReverseSkyline(q)) {
    std::printf("c%zu ", c + 1);
  }
  std::printf("\n");

  // 2. Why is customer c1 missing? (aspect 1: the culprits)
  const size_t c1 = 0;
  const wnrs::WhyNotExplanation why = engine.Explain(c1, q);
  std::printf("why-not c1: customer prefers product(s) ");
  for (auto id : why.culprits) std::printf("p%lld ", static_cast<long long>(id) + 1);
  std::printf("over q\n");

  // 3. What could the customer change? (Algorithm 1: MWP)
  const wnrs::MwpResult mwp = engine.ModifyWhyNot(c1, q);
  for (const wnrs::Candidate& cand : mwp.candidates) {
    std::printf("  MWP: move c1 to %s (cost %.6f)\n",
                cand.point.ToString().c_str(), cand.cost);
  }

  // 4. What could the seller change? (Algorithm 2: MQP)
  const wnrs::MqpResult mqp = engine.ModifyQuery(c1, q);
  for (const wnrs::Candidate& cand : mqp.candidates) {
    std::printf("  MQP: move q to %s (cost %.6f)\n",
                cand.point.ToString().c_str(), cand.cost);
  }

  // 5. Where can q move without losing existing customers? (Algorithm 3)
  const wnrs::SafeRegionResult& sr = engine.SafeRegion(q);
  std::printf("safe region: %s (area %.2f)\n",
              sr.region.ToString().c_str(), sr.region.UnionVolume());

  // 6. The best of both worlds (Algorithm 4: MWQ).
  const wnrs::MwqResult mwq = engine.ModifyBoth(c1, q);
  std::printf("MWQ: %s; best q* = %s, cost %.6f\n",
              mwq.overlap ? "safe region overlaps DDR(c1) - move q only"
                          : "no overlap - move q to a safe corner and c1",
              mwq.query_candidates.front().point.ToString().c_str(),
              mwq.best_cost);
  return 0;
}
