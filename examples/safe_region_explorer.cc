// Safe-region explorer: renders SR(q) and the anti-dominance region of a
// why-not customer as ASCII art over the data space, making Algorithm 3/4
// geometry visible in a terminal. Uses the paper's running example by
// default; pass a size to explore a synthetic market instead.
//
//   ./build/examples/safe_region_explorer          # paper example
//   ./build/examples/safe_region_explorer 2000     # synthetic

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"
#include "geometry/transform.h"
#include "skyline/bbs.h"
#include "skyline/ddr.h"

namespace {

using namespace wnrs;

constexpr int kWidth = 72;
constexpr int kHeight = 28;

void Render(const WhyNotEngine& engine, const Point& q, size_t why_not) {
  const Rectangle u = engine.universe();
  const SafeRegionResult& sr = engine.SafeRegion(q);

  // Why-not customer's anti-dominance region.
  const Point& c_t = engine.customers().points[why_not];
  const std::vector<RStarTree::Id> dsl = BbsDynamicSkyline(
      engine.product_tree(), c_t, static_cast<RStarTree::Id>(why_not));
  std::vector<Point> dsl_t;
  for (RStarTree::Id id : dsl) {
    dsl_t.push_back(ToDistanceSpace(
        engine.products().points[static_cast<size_t>(id)], c_t));
  }
  RectRegion ddr_bar =
      AntiDominanceRegion(c_t, dsl_t, MaxExtents(c_t, u));
  ddr_bar.ClipTo(u);

  std::printf(
      "legend: '.' data space  ':' DDR(c_t)  '#' safe region SR(q)\n"
      "        '%%' overlap     'q' query     'c' why-not customer\n\n");
  for (int row = 0; row < kHeight; ++row) {
    for (int col = 0; col < kWidth; ++col) {
      // Map the cell center into data space (y axis up).
      const double fx = (col + 0.5) / kWidth;
      const double fy = 1.0 - (row + 0.5) / kHeight;
      const Point p({u.lo()[0] + fx * (u.hi()[0] - u.lo()[0]),
                     u.lo()[1] + fy * (u.hi()[1] - u.lo()[1])});
      const bool in_sr = sr.region.Contains(p);
      const bool in_ddr = ddr_bar.Contains(p);
      char glyph = '.';
      if (in_sr && in_ddr) {
        glyph = '%';
      } else if (in_sr) {
        glyph = '#';
      } else if (in_ddr) {
        glyph = ':';
      }
      // Markers win over regions.
      auto near = [&](const Point& m) {
        return std::abs(m[0] - p[0]) <
                   0.6 * (u.hi()[0] - u.lo()[0]) / kWidth &&
               std::abs(m[1] - p[1]) <
                   0.6 * (u.hi()[1] - u.lo()[1]) / kHeight;
      };
      if (near(q)) glyph = 'q';
      if (near(c_t)) glyph = 'c';
      std::putchar(glyph);
    }
    std::putchar('\n');
  }

  std::printf("\nSR(q): %s\n", sr.region.ToString().c_str());
  const MwqResult mwq = engine.ModifyBoth(why_not, q);
  if (mwq.overlap) {
    std::printf(
        "case C1: regions overlap ('%%' cells) — move q to %s at zero "
        "cost.\n",
        mwq.query_candidates.front().point.ToString().c_str());
  } else {
    std::printf(
        "case C2: no overlap — move q to the safe corner %s, then the "
        "customer to %s (cost %.6f).\n",
        mwq.query_candidates.front().point.ToString().c_str(),
        mwq.why_not_candidates.empty()
            ? "<none>"
            : mwq.why_not_candidates.front().point.ToString().c_str(),
        mwq.best_cost);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wnrs;
  if (argc > 1) {
    const size_t n = std::strtoul(argv[1], nullptr, 10);
    WhyNotEngine engine(GenerateAnticorrelated(n, 2, 3));
    Rng rng(4);
    // Find a query with a few reverse-skyline points and a why-not
    // customer.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      const Point q =
          engine.products().points[rng.NextUint64(n)];
      const std::vector<size_t> rsl = engine.ReverseSkyline(q);
      if (rsl.empty() || rsl.size() > 6) continue;
      size_t why_not = rng.NextUint64(n);
      if (engine.IsReverseSkylineMember(why_not, q)) continue;
      std::printf("synthetic market (%zu points), q = %s, |RSL| = %zu, "
                  "why-not customer #%zu\n\n",
                  n, q.ToString().c_str(), rsl.size(), why_not);
      Render(engine, q, why_not);
      return 0;
    }
    std::fprintf(stderr, "could not find a suitable query; try another n\n");
    return 1;
  }

  WhyNotEngine engine(PaperExampleDataset());
  const Point q = PaperExampleQuery();
  std::printf("paper running example: q = %s, why-not customer c1\n\n",
              q.ToString().c_str());
  Render(engine, q, 0);
  return 0;
}
