// Targeted-marketing scenario (paper, Section VI: "An extended customer
// list for targeted marketing can be found by answering why-not questions
// in reverse skyline queries"): rank the customers just outside a
// product's reverse skyline by how cheaply they could be won, using the
// precomputed-approximation path for interactive speed.
//
//   ./build/examples/targeted_marketing [n] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/prospect.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  WhyNotEngine engine(GenerateCarDb(n, seed));
  std::printf("market: %zu listings / customer preferences\n", n);

  // Offline: precompute approximated dynamic skylines (Section VI-B.1).
  WallTimer timer;
  engine.PrecomputeApproxDsls(/*k=*/10);
  std::printf("offline: approximated DSL store built in %.1fs (k=10)\n\n",
              timer.ElapsedSeconds());

  const Point q({12000.0, 70000.0});
  const std::vector<size_t> rsl = engine.ReverseSkyline(q);
  std::printf("product q = ($%.0f, %.0f mi): %zu interested customers\n",
              q[0], q[1], rsl.size());

  // Score nearby non-members by their cheapest win (Approx-MWQ), via the
  // library's prospect-ranking API.
  timer.Restart();
  ProspectOptions options;
  options.max_prospects = 10;
  options.max_preference_distance = 25000.0;
  options.use_approx = true;
  const std::vector<Prospect> prospects = RankProspects(engine, q, options);
  std::printf("ranked prospects within $25k (L1) of q in %.1f ms\n\n",
              timer.ElapsedMillis());

  std::printf("top prospects (cheapest wins first):\n");
  std::printf("%-10s %-24s %-12s %s\n", "customer", "preference", "win cost",
              "note");
  for (const Prospect& p : prospects) {
    const Point& pref = engine.customers().points[p.customer];
    std::printf("#%-9zu ($%-8.0f %8.0f mi) %-12.6f %s\n", p.customer,
                pref[0], pref[1], p.cost,
                p.free_win ? "free: reposition q inside its safe region"
                           : "requires customer-side movement");
  }

  // The marketing takeaway: how many prospects are free wins?
  const size_t free_wins = static_cast<size_t>(std::count_if(
      prospects.begin(), prospects.end(),
      [](const Prospect& p) { return p.free_win; }));
  std::printf(
      "\n%zu of %zu scored prospects are winnable for free (safe-region "
      "repositioning only),\nwithout losing any of the %zu existing "
      "customers.\n",
      free_wins, prospects.size(), rsl.size());
  return 0;
}
