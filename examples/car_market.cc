// Car-market scenario (the paper's motivating use case, at realistic
// scale): a dealer lists a used car and uses why-not analysis to widen
// its customer base without alienating the customers already interested.
//
//   ./build/examples/car_market [n_listings] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("Building a market of %zu listings (price $, mileage mi)...\n",
              n);
  WallTimer timer;
  WhyNotEngine engine(GenerateCarDb(n, seed));
  std::printf("indexed in %.2fs (R*-tree, 1536-byte pages)\n\n",
              timer.ElapsedSeconds());

  // The dealer's new listing: a mid-market car.
  const Point q({17500.0, 52000.0});
  std::printf("new listing q = ($%.0f, %.0f mi)\n", q[0], q[1]);

  timer.Restart();
  const std::vector<size_t> rsl = engine.ReverseSkyline(q);
  std::printf("%zu customers have q on their dynamic skyline (%.1f ms)\n",
              rsl.size(), timer.ElapsedMillis());

  // Pick a few nearby customers who are NOT interested and explain why.
  Rng rng(seed + 1);
  size_t analyzed = 0;
  for (int attempt = 0; attempt < 10000 && analyzed < 3; ++attempt) {
    const size_t c = rng.NextUint64(engine.customers().size());
    const Point& pref = engine.customers().points[c];
    if (pref.L1Distance(q) > 30000.0) continue;  // Stay in-market.
    if (engine.IsReverseSkylineMember(c, q)) continue;
    ++analyzed;

    std::printf("\n=== why-not customer #%zu, preference ($%.0f, %.0f mi)\n",
                c, pref[0], pref[1]);
    const WhyNotExplanation why = engine.Explain(c, q);
    std::printf("  blocked by %zu better-matching listing(s); binding: ",
                why.culprits.size());
    for (auto id : why.frontier) {
      const Point& p = engine.products().points[static_cast<size_t>(id)];
      std::printf("($%.0f, %.0f mi) ", p[0], p[1]);
    }
    std::printf("\n");

    // Option A: persuade the customer (MWP).
    const MwpResult mwp = engine.ModifyWhyNot(c, q);
    if (!mwp.candidates.empty()) {
      const Candidate& best = mwp.candidates.front();
      std::printf("  MWP : nudge the customer to ($%.0f, %.0f mi), cost %.4f\n",
                  best.point[0], best.point[1], best.cost);
    }

    // Option B: reprice the car, ignoring existing customers (MQP).
    const MqpResult mqp = engine.ModifyQuery(c, q);
    if (!mqp.candidates.empty()) {
      const Candidate& best = mqp.candidates.front();
      std::printf(
          "  MQP : relist at ($%.0f, %.0f mi), cost %.4f (may lose "
          "existing customers!)\n",
          best.point[0], best.point[1],
          engine.MqpEvaluationCost(q, best.point));
    }

    // Option C: move within the safe region, then negotiate (MWQ).
    const MwqResult mwq = engine.ModifyBoth(c, q);
    if (mwq.overlap) {
      const Candidate& best = mwq.query_candidates.front();
      std::printf(
          "  MWQ : relist at ($%.0f, %.0f mi) — FREE: keeps all %zu "
          "existing customers and wins this one\n",
          best.point[0], best.point[1], rsl.size());
    } else if (!mwq.why_not_candidates.empty()) {
      const Candidate& q_move = mwq.query_candidates.front();
      const Candidate& c_move = mwq.why_not_candidates.front();
      std::printf(
          "  MWQ : relist at ($%.0f, %.0f mi) (safe) + nudge customer to "
          "($%.0f, %.0f mi), cost %.4f\n",
          q_move.point[0], q_move.point[1], c_move.point[0],
          c_move.point[1], mwq.best_cost);
    }
  }

  // Show that the safe region is reusable across why-not questions.
  timer.Restart();
  const SafeRegionResult& sr = engine.SafeRegion(q);
  std::printf(
      "\nsafe region of q: %zu rectangle(s), %.3g%% of the market space "
      "(cached for further questions; first computation %.1f ms)\n",
      sr.region.size(),
      100.0 * sr.region.UnionVolume() / engine.universe().Volume(),
      timer.ElapsedMillis());
  return 0;
}
