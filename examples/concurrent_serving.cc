// Concurrent serving walkthrough: several analyst threads fire why-not
// requests at one engine through the deadline-aware RequestScheduler
// while the market keeps changing (listings added and withdrawn). Shows
// snapshot isolation (in-flight requests answer against the state they
// were dispatched on), same-q batch sharing, deadlines, and admission
// control.
//
//   ./build/examples/concurrent_serving [n_listings] [seed]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/generators.h"
#include "serve/scheduler.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  WhyNotEngine engine(GenerateCarDb(n, seed));
  std::printf("market: %zu listings; serving through RequestScheduler\n\n",
              engine.products().size());

  serve::SchedulerOptions options;
  options.max_queue_depth = 256;
  serve::RequestScheduler scheduler(&engine, options);

  // Three analysts ask about the SAME new listing at once: the scheduler
  // batches the same-q requests and computes SR(q)/RSL(q) once.
  const Point q = engine.products().points[42];
  std::vector<std::future<serve::WhyNotResponse>> batch;
  for (size_t c : {11u, 99u, 512u}) {
    serve::WhyNotRequest request;
    request.kind = serve::RequestKind::kModifyBoth;
    request.q = q;
    request.c = c % engine.customers().size();
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(500);
    batch.push_back(scheduler.Submit(request));
  }
  for (auto& f : batch) {
    const serve::WhyNotResponse r = f.get();
    std::printf("MWQ %-18s shared_batch=%d best_cost=%.6f wait=%lldus\n",
                r.status.ok() ? "ok" : r.status.ToString().c_str(),
                r.shared_batch ? 1 : 0, r.mwq().best_cost,
                static_cast<long long>(r.queue_wait.count()));
  }

  // Meanwhile the market mutates: queued work keeps its snapshot, new
  // dispatches see the new state.
  const size_t added = engine.AddProduct(q);
  std::printf("\nlisting %zu added; next dispatch sees %zu products\n",
              added, engine.Snapshot().products().size());

  // A request with an impossible deadline degrades gracefully.
  serve::WhyNotRequest late;
  late.kind = serve::RequestKind::kSafeRegion;
  late.q = q;
  late.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  const serve::WhyNotResponse miss = scheduler.SubmitAndWait(late);
  std::printf("expired-deadline request -> %s (completed=%d)\n",
              miss.status.ToString().c_str(), miss.completed ? 1 : 0);

  // Malformed input comes back as a status, not an abort.
  serve::WhyNotRequest bad;
  bad.kind = serve::RequestKind::kModifyWhyNot;
  bad.q = q;
  bad.c = engine.customers().size();  // out of range
  std::printf("bad customer index    -> %s\n",
              scheduler.SubmitAndWait(bad).status.ToString().c_str());

  const serve::SchedulerStats stats = scheduler.stats();
  std::printf(
      "\nscheduler stats: submitted=%llu completed=%llu "
      "batch_share_hits=%llu deadline_misses=%llu admission_rejects=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.batch_share_hits),
      static_cast<unsigned long long>(stats.deadline_misses),
      static_cast<unsigned long long>(stats.admission_rejects));
  return 0;
}
