// Cross-process persistence check: `save` builds an engine from a CSV,
// answers a deterministic query set, and writes both the bundle and the
// answers; `check` reopens the bundle in a fresh process (mmap and
// buffered slab paths both), recomputes the same answers, and fails
// unless they are bit-identical to the saved ones. The CI persistence
// job runs save and check as separate processes, so the comparison
// crosses a process boundary — nothing can leak through memory.
//
//   wnrs_persist save <data.csv> <bundle_dir> <answers.txt>
//   wnrs_persist check <bundle_dir> <answers.txt>
//
// Answers are serialized with %a (hex float), so equality of the text
// is equality of every bit of every coordinate and cost.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "data/csv.h"
#include "storage/file_io.h"

namespace {

using namespace wnrs;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wnrs_persist save <data.csv> <bundle_dir> <answers.txt>\n"
               "  wnrs_persist check <bundle_dir> <answers.txt>\n");
  return 2;
}

void AppendHex(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %a", v);
  *out += buf;
}

void AppendPoint(std::string* out, const Point& p) {
  for (size_t j = 0; j < p.dims(); ++j) AppendHex(out, p[j]);
}

void AppendCandidates(std::string* out, const std::vector<Candidate>& cs) {
  *out += StrFormat(" n=%zu", cs.size());
  for (const Candidate& c : cs) {
    AppendPoint(out, c.point);
    AppendHex(out, c.cost);
  }
}

/// The full answer transcript of a deterministic query set: reverse
/// skylines, MWP / MQP / MWQ answers, and safe regions. Equal text ==
/// bit-identical answers.
std::string BuildAnswers(const WhyNotEngine& engine) {
  const size_t n = engine.products().size();
  const size_t customers = engine.customers().size();
  constexpr size_t kQueries = 8;
  std::string out;
  for (size_t i = 0; i < kQueries; ++i) {
    const Point& q = engine.products().points[(i + 1) * n / (kQueries + 1)];
    const size_t c = (i * 7 + 3) % customers;

    out += StrFormat("q%zu", i);
    AppendPoint(&out, q);
    out += "\nrsl";
    for (size_t id : engine.ReverseSkyline(q)) {
      out += StrFormat(" %zu", id);
    }

    const MwpResult mwp = engine.ModifyWhyNot(c, q);
    out += StrFormat("\nmwp c=%zu member=%d", c, mwp.already_member ? 1 : 0);
    AppendCandidates(&out, mwp.candidates);

    const MqpResult mqp = engine.ModifyQuery(c, q);
    out += StrFormat("\nmqp member=%d", mqp.already_member ? 1 : 0);
    AppendCandidates(&out, mqp.candidates);

    const MwqResult mwq = engine.ModifyBoth(c, q);
    out += StrFormat("\nmwq member=%d overlap=%d", mwq.already_member ? 1 : 0,
                     mwq.overlap ? 1 : 0);
    AppendHex(&out, mwq.best_cost);
    AppendCandidates(&out, mwq.query_candidates);
    AppendCandidates(&out, mwq.why_not_candidates);

    const SafeRegionResult& sr = engine.SafeRegion(q);
    out += StrFormat("\nsr rects=%zu", sr.region.rects().size());
    for (const Rectangle& r : sr.region.rects()) {
      AppendPoint(&out, r.lo());
      AppendPoint(&out, r.hi());
    }
    out += "\n";
  }
  return out;
}

int CmdSave(int argc, char** argv) {
  if (argc != 5) return Usage();
  Result<Dataset> data = LoadCsv(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "load %s: %s\n", argv[2],
                 data.status().ToString().c_str());
    return 1;
  }
  const WhyNotEngine engine(std::move(data).value(), WhyNotEngineOptions{});
  const std::string answers = BuildAnswers(engine);
  Status s = engine.Save(argv[3]);
  if (!s.ok()) {
    std::fprintf(stderr, "save bundle: %s\n", s.ToString().c_str());
    return 1;
  }
  s = storage::WriteStringToFile(argv[4], answers);
  if (!s.ok()) {
    std::fprintf(stderr, "save answers: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved bundle %s (%zu products) and answers %s\n", argv[3],
              engine.products().size(), argv[4]);
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc != 4) return Usage();
  std::string expected;
  Status s = storage::ReadFileToString(argv[3], &expected);
  if (!s.ok()) {
    std::fprintf(stderr, "load answers: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const bool mmap_packed : {true, false}) {
    WhyNotEngineOptions options;
    options.storage.mmap_packed = mmap_packed;
    Result<std::unique_ptr<WhyNotEngine>> engine =
        WhyNotEngine::Open(argv[2], options);
    if (!engine.ok()) {
      std::fprintf(stderr, "open bundle (%s): %s\n",
                   mmap_packed ? "mmap" : "buffered",
                   engine.status().ToString().c_str());
      return 1;
    }
    const std::string actual = BuildAnswers(**engine);
    if (actual != expected) {
      size_t pos = 0;
      while (pos < actual.size() && pos < expected.size() &&
             actual[pos] == expected[pos]) {
        ++pos;
      }
      std::fprintf(stderr,
                   "ANSWER MISMATCH (%s path): reopened engine diverges "
                   "from the saved answers at byte %zu\n",
                   mmap_packed ? "mmap" : "buffered", pos);
      return 1;
    }
    std::printf("check ok (%s path): %zu answer bytes bit-identical\n",
                mmap_packed ? "mmap" : "buffered", actual.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "save") == 0) return CmdSave(argc, argv);
  if (std::strcmp(argv[1], "check") == 0) return CmdCheck(argc, argv);
  return Usage();
}
