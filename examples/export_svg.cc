// Renders the paper's running example (Figs. 8-13 territory) as SVG
// files: the data points, the safe region of q, the anti-dominance
// region of the why-not customer, and the answer locations of MWP, MQP
// and MWQ. Writes to the given directory (default: current).
//
//   ./build/examples/export_svg [out_dir]

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "data/generators.h"
#include "geometry/svg.h"
#include "geometry/transform.h"
#include "skyline/bbs.h"
#include "skyline/ddr.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  WhyNotEngine engine(PaperExampleDataset());
  const Dataset& data = engine.products();
  const Point q = PaperExampleQuery();
  const size_t why_not = 0;  // c1

  // Pad the universe a little so markers near the border stay visible.
  const Rectangle u = engine.universe();
  const Rectangle viewport(
      Point({u.lo()[0] - 2.0, u.lo()[1] - 6.0}),
      Point({u.hi()[0] + 2.0, u.hi()[1] + 6.0}));
  SvgCanvas canvas(viewport, 900.0, 700.0);

  // Anti-dominance region of the why-not customer (light red).
  const Point& c_t = data.points[why_not];
  const std::vector<RStarTree::Id> dsl = BbsDynamicSkyline(
      engine.product_tree(), c_t, static_cast<RStarTree::Id>(why_not));
  std::vector<Point> dsl_t;
  for (RStarTree::Id id : dsl) {
    dsl_t.push_back(
        ToDistanceSpace(data.points[static_cast<size_t>(id)], c_t));
  }
  RectRegion ddr_bar = AntiDominanceRegion(c_t, dsl_t, MaxExtents(c_t, u));
  ddr_bar.ClipTo(u);
  canvas.AddRegion(ddr_bar, "#e9967a", "#c0392b", 0.25);

  // Safe region of q (light green).
  const SafeRegionResult& sr = engine.SafeRegion(q);
  canvas.AddRegion(sr.region, "#2ecc71", "#1e8449", 0.45);

  // Data points.
  for (size_t i = 0; i < data.points.size(); ++i) {
    canvas.AddPoint(data.points[i], "#2c3e50", 4.0,
                    "pt" + std::to_string(i + 1));
  }
  canvas.AddPoint(q, "#8e44ad", 6.0, "q");

  // Answers.
  const MwpResult mwp = engine.ModifyWhyNot(why_not, q);
  for (const Candidate& cand : mwp.candidates) {
    canvas.AddPoint(cand.point, "#e67e22", 5.0, "c1*");
  }
  const MqpResult mqp = engine.ModifyQuery(why_not, q);
  for (const Candidate& cand : mqp.candidates) {
    canvas.AddPoint(cand.point, "#16a085", 5.0, "q*");
  }
  const MwqResult mwq = engine.ModifyBoth(why_not, q);
  canvas.AddPoint(mwq.query_candidates.front().point, "#c0392b", 5.0,
                  "q* (MWQ)");

  const std::string path = out_dir + "/paper_example.svg";
  const Status s = canvas.WriteTo(path);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s\n"
      "  red   region: DDR(c1) — where q would have to be for c1 to care\n"
      "  green region: SR(q)   — where q may move without losing anyone\n"
      "  orange marks: MWP answers; teal: MQP answers; dark red: MWQ q*\n",
      path.c_str());
  return 0;
}
