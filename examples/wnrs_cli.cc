// Command-line front end to the library — generate data, run reverse
// skylines, and answer why-not questions from the shell.
//
//   wnrs_cli generate <CarDB|UN|CO|AC> <n> <seed> <out.csv>
//   wnrs_cli rsl <data.csv> <coord>...
//   wnrs_cli whynot <data.csv> <customer_index> <coord>...
//   wnrs_cli saferegion <data.csv> <coord>...
//
// The CSV doubles as both the product set and the customer-preference
// set (the paper's experimental setting).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/report.h"
#include "data/csv.h"
#include "data/generators.h"

namespace {

using namespace wnrs;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wnrs_cli generate <CarDB|UN|CO|AC> <n> <seed> <out.csv>\n"
               "  wnrs_cli rsl <data.csv> <coord>...\n"
               "  wnrs_cli whynot <data.csv> <customer_index> <coord>...\n"
               "  wnrs_cli saferegion <data.csv> <coord>...\n");
  return 2;
}

Result<Dataset> LoadOrDie(const std::string& path) { return LoadCsv(path); }

Point ParsePoint(char** argv, int begin, int end) {
  std::vector<double> coords;
  for (int i = begin; i < end; ++i) {
    coords.push_back(std::strtod(argv[i], nullptr));
  }
  return Point(std::move(coords));
}

int CmdGenerate(int argc, char** argv) {
  if (argc != 6) return Usage();
  const std::string kind = argv[2];
  const size_t n = std::strtoul(argv[3], nullptr, 10);
  const uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  Dataset ds;
  if (kind == "CarDB") {
    ds = GenerateCarDb(n, seed);
  } else if (kind == "UN") {
    ds = GenerateUniform(n, 2, seed);
  } else if (kind == "CO") {
    ds = GenerateCorrelated(n, 2, seed);
  } else if (kind == "AC") {
    ds = GenerateAnticorrelated(n, 2, seed);
  } else {
    return Usage();
  }
  const Status s = SaveCsv(ds, argv[5]);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu %zu-dimensional points to %s\n", ds.points.size(),
              ds.dims, argv[5]);
  return 0;
}

int CmdRsl(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Result<Dataset> ds = LoadOrDie(argv[2]);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Point q = ParsePoint(argv, 3, argc);
  if (q.dims() != ds->dims) {
    std::fprintf(stderr, "error: q has %zu coords, data has %zu dims\n",
                 q.dims(), ds->dims);
    return 1;
  }
  WhyNotEngine engine(*ds);
  const std::vector<size_t> rsl = engine.ReverseSkyline(q);
  std::printf("RSL(%s): %zu customer(s)\n", q.ToString().c_str(),
              rsl.size());
  for (size_t c : rsl) {
    std::printf("  #%zu %s\n", c, ds->points[c].ToString().c_str());
  }
  return 0;
}

int CmdWhyNot(int argc, char** argv) {
  if (argc < 5) return Usage();
  const Result<Dataset> ds = LoadOrDie(argv[2]);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const size_t customer = std::strtoul(argv[3], nullptr, 10);
  if (customer >= ds->points.size()) {
    std::fprintf(stderr, "error: customer index out of range\n");
    return 1;
  }
  const Point q = ParsePoint(argv, 4, argc);
  WhyNotEngine engine(*ds);
  std::fputs(RenderWhyNotReport(engine, customer, q).c_str(), stdout);
  return 0;
}

int CmdSafeRegion(int argc, char** argv) {
  if (argc < 4) return Usage();
  const Result<Dataset> ds = LoadOrDie(argv[2]);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Point q = ParsePoint(argv, 3, argc);
  WhyNotEngine engine(*ds);
  const SafeRegionResult& sr = engine.SafeRegion(q);
  std::printf("SR(%s): %zu rectangle(s), area %.6g (%.4g%% of universe)\n",
              q.ToString().c_str(), sr.region.size(),
              sr.region.UnionVolume(),
              100.0 * sr.region.UnionVolume() / engine.universe().Volume());
  for (const Rectangle& r : sr.region.rects()) {
    std::printf("  %s\n", r.ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "rsl") == 0) return CmdRsl(argc, argv);
  if (std::strcmp(argv[1], "whynot") == 0) return CmdWhyNot(argc, argv);
  if (std::strcmp(argv[1], "saferegion") == 0) {
    return CmdSafeRegion(argc, argv);
  }
  return Usage();
}
