// Extension beyond the paper: the evaluation section is strictly 2-D
// (price, mileage). Every algorithm here is implemented for general d, so
// this bench exercises the full pipeline on 3-D synthetic data — quality
// shapes (MWQ <= MWP) must survive the dimensionality bump even though
// the staircase candidate generation is only guaranteed minimal in 2-D.

#include "bench_util.h"

int main() {
  using namespace wnrs;
  using namespace wnrs::bench;
  std::printf(
      "=== Extension: 3-D why-not quality (beyond the paper's 2-D eval) "
      "===\n");
  const struct {
    int dist;
    const char* label;
  } kConfigs[] = {{0, "UN-20K (3-D)"}, {2, "AC-20K (3-D)"}};
  for (const auto& config : kConfigs) {
    WallTimer timer;
    Dataset ds = config.dist == 0 ? GenerateUniform(20000, 3, 8800)
                                  : GenerateAnticorrelated(20000, 3, 8801);
    WhyNotEngine engine(std::move(ds));
    // 3-D reverse skylines are larger than 2-D ones (weaker dominance),
    // so the buckets reach farther.
    const auto workload = MakeWorkload(engine, 3000, 8900, 1, 30);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(config.label, rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
  }
  return 0;
}
