// Extension beyond the paper: the evaluation section is strictly 2-D
// (price, mileage). Every algorithm here is implemented for general d, so
// this bench exercises the full pipeline on 3-D synthetic data — quality
// shapes (MWQ <= MWP) must survive the dimensionality bump even though
// the staircase candidate generation is only guaranteed minimal in 2-D.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Extension: 3-D why-not quality (beyond the paper's 2-D eval) "
      "===\n");
  BenchReporter reporter("ext_3d_whynot", args);
  struct Config {
    int dist;
    const char* label;
  };
  const std::vector<Config> configs =
      args.short_mode ? std::vector<Config>{{0, "UN-10K (3-D)"}}
                      : std::vector<Config>{{0, "UN-20K (3-D)"},
                                            {2, "AC-20K (3-D)"}};
  const size_t n = args.short_mode ? 10000 : 20000;
  const size_t attempts = args.short_mode ? 1000 : 3000;
  for (const auto& config : configs) {
    reporter.Begin(config.label);
    WallTimer timer;
    Dataset ds = config.dist == 0 ? GenerateUniform(n, 3, 8800)
                                  : GenerateAnticorrelated(n, 3, 8801);
    WhyNotEngine engine(std::move(ds));
    // 3-D reverse skylines are larger than 2-D ones (weaker dominance),
    // so the buckets reach farther.
    const auto workload = MakeWorkload(engine, attempts, 8900, 1, 30);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(config.label, rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
