// Cold start: how fast a process reaches "first answer served" when the
// catalog lives on disk. Both sides start from files — a cold process
// has nothing in RAM — and both end by answering one reverse-skyline
// query, so each config is a complete time-to-first-answer.
//
// Index level (the packed slab itself):
//   rebuild        parse products.csv, bulk-load the R*-tree, freeze the
//                  packed slab, answer.
//   mmap-open      OpenPackedMapped on the saved slab (zero-copy mmap +
//                  header/CRC/structural validation), answer.
//   buffered-open  OpenPackedBuffered (the no-mmap fallback), answer.
//
// Engine level (the full bundle: datasets + paged trees + slab):
//   engine-rebuild      parse products.csv, construct WhyNotEngine,
//                       answer. Materializing the dynamic R*-tree for
//                       the mutation path bounds this from below; the
//                       bundle saves the parse + bulk-load + freeze.
//   engine-save         publish the bundle (page writes show up in the
//                       storage_page_writes counter).
//   engine-mmap-open    WhyNotEngine::Open with the slab mmapped; tree
//                       pages stream through the BufferPool, so the
//                       storage_page_reads / storage_cache_* counters
//                       land in this record.
//   engine-buffered-open  the same with mmap disabled.
//
// The CI perf gate holds the headline claim — mmap-open under a tenth
// of rebuild — and a softer engine-level bound:
//   --improvement cold_start/mmap-open/rebuild:wall_ms:0.1
//   --improvement cold_start/engine-mmap-open/engine-rebuild:wall_ms:0.5

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "data/csv.h"
#include "index/bulk_load.h"
#include "reverse_skyline/bbrs.h"
#include "storage/engine_store.h"
#include "storage/packed_slab.h"

namespace wnrs::bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchReporter reporter("cold_start", args);

  const size_t n = args.short_mode ? 50'000 : 250'000;
  const Dataset data = MakeDataset("CarDB", n, 9300);
  const Point first_query = data.points[n / 2];
  const std::string csv_path = "cold_start_products.csv";
  const std::string slab_path = "cold_start.slab";
  const std::string dir = "cold_start_bundle";

  // Untimed setup: put the products and the slab on disk.
  if (!SaveCsv(data, csv_path).ok()) return 1;
  {
    const RStarTree setup_tree = BulkLoadPoints(data.dims, data.points);
    const PackedRTree setup_packed = PackedRTree::Freeze(setup_tree);
    if (!storage::SavePacked(setup_packed, slab_path).ok()) return 1;
  }

  // --- index level: rebuild vs slab opens. ---
  size_t rebuild_rsl = 0;
  reporter.Begin("rebuild");
  {
    Result<Dataset> products = LoadCsv(csv_path);
    if (!products.ok()) return 1;
    const RStarTree tree =
        BulkLoadPoints(products.value().dims, products.value().points);
    const PackedRTree packed = PackedRTree::Freeze(tree);
    rebuild_rsl = BbrsReverseSkyline(packed, first_query).size();
  }
  reporter.End();

  struct SlabTiming {
    const char* label;
    double wall_ms = 0.0;
    size_t rsl = 0;
    bool mapped = false;
  };
  SlabTiming slab_timings[] = {{"mmap-open"}, {"buffered-open"}};
  WallTimer timer;
  for (SlabTiming& t : slab_timings) {
    const bool use_mmap = t.label[0] == 'm';
    reporter.Begin(t.label);
    timer.Restart();
    Result<PackedRTree> opened = use_mmap
                                     ? storage::OpenPackedMapped(slab_path)
                                     : storage::OpenPackedBuffered(slab_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", t.label,
                   opened.status().ToString().c_str());
      return 1;
    }
    t.rsl = BbrsReverseSkyline(opened.value(), first_query).size();
    t.wall_ms = timer.ElapsedMillis();
    t.mapped = opened->is_mapped();
    reporter.End();
  }

  // --- engine level: full-bundle rebuild vs save vs opens. ---
  size_t engine_rebuild_rsl = 0;
  reporter.Begin("engine-rebuild");
  {
    Result<Dataset> products = LoadCsv(csv_path);
    if (!products.ok()) return 1;
    const WhyNotEngine engine(std::move(products).value(),
                              WhyNotEngineOptions{});
    engine_rebuild_rsl = engine.ReverseSkyline(first_query).size();
  }
  reporter.End();

  const WhyNotEngine publisher(data, WhyNotEngineOptions{});
  reporter.Begin("engine-save");
  const Status saved = publisher.Save(dir);
  reporter.End();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }

  SlabTiming engine_timings[] = {{"engine-mmap-open"},
                                 {"engine-buffered-open"}};
  for (SlabTiming& t : engine_timings) {
    WhyNotEngineOptions open_options;
    open_options.storage.mmap_packed = t.label[7] == 'm';
    reporter.Begin(t.label);
    timer.Restart();
    Result<std::unique_ptr<WhyNotEngine>> opened =
        WhyNotEngine::Open(dir, open_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", t.label,
                   opened.status().ToString().c_str());
      return 1;
    }
    t.rsl = (*opened)->ReverseSkyline(first_query).size();
    t.wall_ms = timer.ElapsedMillis();
    reporter.End();
  }

  std::printf("\n--- cold start: CarDB-%zu, first query |RSL| = %zu ---\n",
              n, rebuild_rsl);
  std::printf("%-22s %12s %10s\n", "path", "wall (ms)", "|RSL|");
  int failures = 0;
  for (const SlabTiming& t : slab_timings) {
    std::printf("%-22s %12.2f %10zu\n", t.label, t.wall_ms, t.rsl);
    if (t.rsl != rebuild_rsl) ++failures;
  }
  for (const SlabTiming& t : engine_timings) {
    std::printf("%-22s %12.2f %10zu\n", t.label, t.wall_ms, t.rsl);
    if (t.rsl != engine_rebuild_rsl) ++failures;
  }
  if (failures != 0 || engine_rebuild_rsl != rebuild_rsl) {
    std::fprintf(stderr,
                 "PARITY FAILURE: an open path answered a different "
                 "reverse skyline than its rebuild\n");
    return 1;
  }
  std::printf("slab mapped zero-copy: %s\n",
              slab_timings[0].mapped ? "yes" : "no (buffered fallback)");

  std::remove(csv_path.c_str());
  std::remove(slab_path.c_str());
  for (const char* f :
       {storage::kBundleDataFile, storage::kBundleTreeFile,
        storage::kBundleCustomerTreeFile, storage::kBundlePackedFile,
        storage::kBundlePackedCustomerFile}) {
    std::remove((dir + "/" + f).c_str());
  }
  std::remove(dir.c_str());

  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace wnrs::bench

int main(int argc, char** argv) { return wnrs::bench::Run(argc, argv); }
