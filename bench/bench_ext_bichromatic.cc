// Extension beyond the paper: the paper defines reverse skylines
// bichromatically (products P vs customer preferences C, Definition 3)
// but evaluates with a single relation playing both roles. This bench
// runs the full why-not pipeline with genuinely distinct product and
// customer sets and reports quality and timing.

#include "bench_util.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Extension: bichromatic why-not (distinct P and C) ===\n");
  BenchReporter reporter("ext_bichromatic", args);
  const std::vector<size_t> sizes =
      args.short_mode ? std::vector<size_t>{20000}
                      : std::vector<size_t>{20000, 100000};
  for (const size_t n : sizes) {
    reporter.Begin(StrFormat("CarDB-%zuK", n / 1000));
    WallTimer timer;
    // Products and customers drawn from shifted market segments: the
    // customer population prefers slightly cheaper, higher-mileage cars
    // than the listings offer.
    Dataset products = GenerateCarDb(n, 9000 + n);
    Dataset customers = GenerateCarDb(n / 2, 9500 + n);
    for (Point& c : customers.points) {
      c[0] *= 0.9;
      c[1] *= 1.1;
    }
    customers.name = "CarDB-customers";
    WhyNotEngine engine(std::move(products), std::move(customers));
    const auto workload = MakeWorkload(engine, 3000, 9900 + n, 1, 12);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(
        StrFormat("bichromatic CarDB %zuK products / %zuK customers",
                  n / 1000, n / 2000),
        rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
