// Reproduces Fig. 17: "Execution time of MWP, MQP, and Approx-MWQ" — with
// precomputed approximated DSLs the online MWQ cost collapses (the paper:
// "from mins to secs"), because the safe region no longer needs a fresh
// DSL computation per reverse-skyline point.

#include "bench_util.h"
#include "core/safe_region.h"

namespace {

using namespace wnrs;
using namespace wnrs::bench;

void RunConfig(const char* kind, size_t n, size_t k, uint64_t seed,
               size_t max_rsl) {
  WhyNotEngine engine(MakeDataset(kind, n, seed));
  WallTimer precompute_timer;
  engine.PrecomputeApproxDsls(k);
  const double precompute_s = precompute_timer.ElapsedSeconds();
  const auto workload = MakeWorkload(engine, 3000, seed + 7, 1, max_rsl);
  std::printf("\n--- %s-%zuK (k=%zu, offline precompute %.1fs) ---\n", kind,
              n / 1000, k, precompute_s);
  std::printf("%-8s %-10s %-10s %-14s %-14s %-16s %-14s\n", "|RSL|",
              "MWP(ms)", "MQP(ms)", "SR-exact(ms)", "SR-approx(ms)",
              "Approx-MWQ(ms)", "MWQ(ms)");
  for (const WhyNotWorkloadQuery& wq : workload) {
    WallTimer timer;
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyWhyNot(wq.why_not_index, wq.q);
    const double mwp_ms = timer.ElapsedMillis();

    timer.Restart();
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyQuery(wq.why_not_index, wq.q);
    const double mqp_ms = timer.ElapsedMillis();

    // Exact safe region (per-query DSL computation) vs approximated safe
    // region (intersections over the precomputed store only) — the
    // contrast the paper's "mins to secs" claim rests on.
    SafeRegionOptions sr_options;
    timer.Restart();
    const SafeRegionResult exact_sr = ComputeSafeRegion(
        engine.product_tree(), engine.products().points,
        engine.customers().points, wq.rsl, wq.q, engine.universe(),
        engine.shared_relation(), sr_options);
    const double exact_sr_ms = timer.ElapsedMillis();
    (void)exact_sr;

    // Approximated SR, engine-cached per query point (distinct per row,
    // so the first computation below is cold).
    timer.Restart();
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ApproxSafeRegion(wq.q);
    const double approx_sr_ms = timer.ElapsedMillis();

    timer.Restart();
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyBothApprox(wq.why_not_index, wq.q);
    const double approx_mwq_ms = timer.ElapsedMillis();

    timer.Restart();
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyBoth(wq.why_not_index, wq.q);
    const double mwq_ms = timer.ElapsedMillis();

    std::printf("%-8zu %-10.3f %-10.3f %-14.3f %-14.3f %-16.3f %-14.3f\n",
                wq.rsl.size(), mwp_ms, mqp_ms, exact_sr_ms, approx_sr_ms,
                approx_mwq_ms, mwq_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Fig. 17: execution time with precomputed approx DSLs ===\n");
  BenchReporter reporter("fig17_approx_exec_time", args);
  auto run = [&](const char* kind, size_t n, size_t k, uint64_t seed,
                 size_t max_rsl) {
    reporter.Begin(StrFormat("%s-%zuK-k%zu", kind, n / 1000, k));
    RunConfig(kind, n, k, seed, max_rsl);
    reporter.End();
  };
  if (args.short_mode) {
    run("CarDB", 20000, 10, 6100, 8);
  } else {
    run("CarDB", 100000, 10, 6100, 15);
    run("CarDB", 200000, 20, 6200, 15);
    run("UN", 100000, 10, 6300, 15);
    run("AC", 100000, 10, 6400, 15);
  }
  return reporter.Write() ? 0 : 1;
}
