// Ablation micro-benchmarks for the R*-tree substrate: page size (the
// paper fixes 1536 bytes), bulk loading vs repeated insertion, and the
// query primitives the why-not pipeline leans on.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"

namespace wnrs {
namespace {

Dataset MakeData(size_t n) { return GenerateCarDb(n, 42); }

void BM_RTreeInsertBuild(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RStarTree tree(2);
    for (size_t i = 0; i < ds.points.size(); ++i) {
      tree.Insert(ds.points[i], static_cast<RStarTree::Id>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsertBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RStarTree tree = BulkLoadPoints(2, ds.points);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(50000)->Arg(200000)->Unit(benchmark::kMillisecond);

void BM_WindowProbePageSize(benchmark::State& state) {
  const Dataset ds = MakeData(100000);
  RTreeOptions options;
  options.page_size_bytes = static_cast<size_t>(state.range(0));
  RStarTree tree = BulkLoadPoints(2, ds.points, options);
  Rng rng(7);
  const Point q = ds.points[123];
  size_t i = 0;
  for (auto _ : state) {
    const Point& c = ds.points[(i++ * 7919) % ds.points.size()];
    benchmark::DoNotOptimize(WindowEmpty(tree, c, q));
  }
}
BENCHMARK(BM_WindowProbePageSize)
    ->Arg(512)
    ->Arg(1536)
    ->Arg(4096)
    ->Arg(16384);

void BM_RangeQuerySelectivity(benchmark::State& state) {
  const Dataset ds = MakeData(100000);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Rectangle bounds = ds.Bounds();
  // Window covering 10^-range(0) of each dimension.
  const double frac = std::pow(10.0, -static_cast<double>(state.range(0)));
  Rng rng(9);
  for (auto _ : state) {
    Point lo(2);
    Point hi(2);
    for (size_t d = 0; d < 2; ++d) {
      const double extent = (bounds.hi()[d] - bounds.lo()[d]) * frac;
      lo[d] = rng.NextDouble(bounds.lo()[d], bounds.hi()[d] - extent);
      hi[d] = lo[d] + extent;
    }
    benchmark::DoNotOptimize(tree.RangeQueryIds(Rectangle(lo, hi)).size());
  }
}
BENCHMARK(BM_RangeQuerySelectivity)->Arg(1)->Arg(2)->Arg(3);

void BM_NearestNeighbors(benchmark::State& state) {
  const Dataset ds = MakeData(100000);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(11);
  for (auto _ : state) {
    const Point p({rng.NextDouble(500, 80000), rng.NextDouble(0, 200000)});
    benchmark::DoNotOptimize(
        tree.NearestNeighbors(p, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_NearestNeighbors)->Arg(1)->Arg(10)->Arg(100);

void BM_RTreeDelete(benchmark::State& state) {
  const Dataset ds = MakeData(20000);
  for (auto _ : state) {
    state.PauseTiming();
    RStarTree tree = BulkLoadPoints(2, ds.points);
    state.ResumeTiming();
    for (size_t i = 0; i < 1000; ++i) {
      // wnrs-lint: allow-discard(bulk-loaded ids 0..999 are present by
      // construction; a CHECK here would perturb the timed region)
      (void)tree.Delete(Rectangle::FromPoint(ds.points[i]),
                        static_cast<RStarTree::Id>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RTreeDelete)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wnrs

BENCHMARK_MAIN();
