// Ablation micro-benchmarks for the why-not core: the branch-and-bound
// window-skyline frontier vs the Λ-materializing reference (identical
// answers), and exact vs approximated safe-region construction.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/engine.h"
#include "data/generators.h"
#include "index/bulk_load.h"

namespace wnrs {
namespace {

struct Env {
  explicit Env(size_t n)
      : data(GenerateCarDb(n, 42)),
        tree(BulkLoadPoints(2, data.points)),
        cost(CostModel::EqualWeightsFor(data.Bounds())) {}

  std::pair<size_t, Point> Draw(Rng* rng) const {
    const size_t c = rng->NextUint64(data.points.size());
    Point q = data.points[rng->NextUint64(data.points.size())];
    return {c, std::move(q)};
  }

  Dataset data;
  RStarTree tree;
  CostModel cost;
};

void BM_MwpReference(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto [c, q] = env.Draw(&rng);
    benchmark::DoNotOptimize(
        ModifyWhyNotPoint(env.tree, env.data.points, env.data.points[c], q,
                          env.cost, 0, static_cast<RStarTree::Id>(c))
            .candidates.size());
  }
}
BENCHMARK(BM_MwpReference)->Arg(20000)->Arg(100000);

void BM_MwpFast(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto [c, q] = env.Draw(&rng);
    benchmark::DoNotOptimize(
        ModifyWhyNotPointFast(env.tree, env.data.points, env.data.points[c],
                              q, env.cost, 0, static_cast<RStarTree::Id>(c))
            .candidates.size());
  }
}
BENCHMARK(BM_MwpFast)->Arg(20000)->Arg(100000)->Arg(200000);

void BM_MqpReference(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto [c, q] = env.Draw(&rng);
    benchmark::DoNotOptimize(
        ModifyQueryPoint(env.tree, env.data.points, env.data.points[c], q,
                         env.cost, 0, static_cast<RStarTree::Id>(c))
            .candidates.size());
  }
}
BENCHMARK(BM_MqpReference)->Arg(20000)->Arg(100000);

void BM_MqpFast(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto [c, q] = env.Draw(&rng);
    benchmark::DoNotOptimize(
        ModifyQueryPointFast(env.tree, env.data.points, env.data.points[c],
                             q, env.cost, 0, static_cast<RStarTree::Id>(c))
            .candidates.size());
  }
}
BENCHMARK(BM_MqpFast)->Arg(20000)->Arg(100000)->Arg(200000);

void BM_SafeRegionExact(benchmark::State& state) {
  WhyNotEngine engine(GenerateCarDb(static_cast<size_t>(state.range(0)), 42));
  Rng rng(9);
  for (auto _ : state) {
    const Point q =
        engine.products().points[rng.NextUint64(engine.products().size())];
    const std::vector<size_t> rsl = engine.ReverseSkyline(q);
    SafeRegionOptions options;
    benchmark::DoNotOptimize(
        ComputeSafeRegion(engine.product_tree(), engine.products().points,
                          engine.customers().points, rsl, q,
                          engine.universe(), engine.shared_relation(),
                          options)
            .region.size());
  }
}
BENCHMARK(BM_SafeRegionExact)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_FullMwq(benchmark::State& state) {
  WhyNotEngine engine(GenerateCarDb(static_cast<size_t>(state.range(0)), 42));
  Rng rng(10);
  for (auto _ : state) {
    const size_t c = rng.NextUint64(engine.customers().size());
    const Point q =
        engine.products().points[rng.NextUint64(engine.products().size())];
    benchmark::DoNotOptimize(engine.ModifyBoth(c, q).best_cost);
  }
}
BENCHMARK(BM_FullMwq)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wnrs

BENCHMARK_MAIN();
