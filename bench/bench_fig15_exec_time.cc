// Reproduces Fig. 15: "Execution time of MWP, MQP, Safe Region (SR) and
// MWQ in CarDB and synthetic datasets" per |RSL| bucket.
//
// Expected shapes: MWP and MQP are orders of magnitude cheaper than MWQ;
// SR computation dominates MWQ and grows with |RSL|.

#include "bench_util.h"
#include "core/mwq.h"
#include "core/safe_region.h"

namespace {

using namespace wnrs;
using namespace wnrs::bench;

void RunConfig(const char* kind, size_t n, uint64_t seed, size_t max_rsl) {
  WhyNotEngine engine(MakeDataset(kind, n, seed));
  const auto workload = MakeWorkload(engine, 3000, seed + 7, 1, max_rsl);
  std::printf("\n--- %s-%zuK ---\n", kind, n / 1000);
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "|RSL|", "MWP (ms)",
              "MQP (ms)", "SR (ms)", "MWQ (ms)");
  for (const WhyNotWorkloadQuery& wq : workload) {
    WallTimer timer;
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyWhyNot(wq.why_not_index, wq.q);
    const double mwp_ms = timer.ElapsedMillis();

    timer.Restart();
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)engine.ModifyQuery(wq.why_not_index, wq.q);
    const double mqp_ms = timer.ElapsedMillis();

    // The free functions bypass the engine's per-query SR cache, so the
    // timings below include computing the DSL of every reverse-skyline
    // point — the dominant cost the paper reports.
    SafeRegionOptions sr_options;
    timer.Restart();
    const SafeRegionResult sr = ComputeSafeRegion(
        engine.product_tree(), engine.products().points,
        engine.customers().points, wq.rsl, wq.q, engine.universe(),
        engine.shared_relation(), sr_options);
    const double sr_ms = timer.ElapsedMillis();

    timer.Restart();
    const SafeRegionResult sr2 = ComputeSafeRegion(
        engine.product_tree(), engine.products().points,
        engine.customers().points, wq.rsl, wq.q, engine.universe(),
        engine.shared_relation(), sr_options);
    // wnrs-lint: allow-discard(timed region measures the call, not the answer)
    (void)ModifyQueryAndWhyNotPoint(
        engine.product_tree(), engine.products().points,
        engine.customers().points[wq.why_not_index], wq.q, sr2.region,
        engine.universe(), engine.cost_model(), 0,
        engine.shared_relation()
            ? std::optional<RStarTree::Id>(
                  static_cast<RStarTree::Id>(wq.why_not_index))
            : std::nullopt);
    const double mwq_ms = timer.ElapsedMillis();

    std::printf("%-8zu %-12.3f %-12.3f %-12.3f %-12.3f\n", wq.rsl.size(),
                mwp_ms, mqp_ms, sr_ms, mwq_ms);
    (void)sr;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Fig. 15: execution time of MWP, MQP, SR and MWQ ===\n"
      "(SR and MWQ are timed without the per-query SR cache, so each "
      "includes\ncomputing the DSL of every reverse-skyline point, as in "
      "the paper.)\n");
  BenchReporter reporter("fig15_exec_time", args);
  auto run = [&](const char* kind, size_t n, uint64_t seed, size_t max_rsl) {
    reporter.Begin(StrFormat("%s-%zuK", kind, n / 1000));
    RunConfig(kind, n, seed, max_rsl);
    reporter.End();
  };
  if (args.short_mode) {
    run("CarDB", 20000, 5100, 8);
  } else {
    run("CarDB", 100000, 5100, 15);
    run("CarDB", 200000, 5200, 15);
    run("UN", 100000, 5300, 15);
    run("AC", 100000, 5400, 15);
  }
  return reporter.Write() ? 0 : 1;
}
