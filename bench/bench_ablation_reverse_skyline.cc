// Ablation micro-benchmarks for reverse-skyline computation: naive
// window-probing vs BBRS (global-skyline candidates + verification), and
// the bichromatic pruned traversal.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/generators.h"
#include "index/bulk_load.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/naive.h"

namespace wnrs {
namespace {

void BM_ReverseSkylineNaive(benchmark::State& state) {
  const Dataset ds = GenerateCarDb(static_cast<size_t>(state.range(0)), 42);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(7);
  for (auto _ : state) {
    const Point& q = ds.points[rng.NextUint64(ds.points.size())];
    benchmark::DoNotOptimize(
        ReverseSkylineNaive(tree, ds.points, q, true).size());
  }
}
BENCHMARK(BM_ReverseSkylineNaive)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_ReverseSkylineBbrs(benchmark::State& state) {
  const Dataset ds = GenerateCarDb(static_cast<size_t>(state.range(0)), 42);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(7);
  for (auto _ : state) {
    const Point& q = ds.points[rng.NextUint64(ds.points.size())];
    benchmark::DoNotOptimize(BbrsReverseSkyline(tree, q).size());
  }
}
BENCHMARK(BM_ReverseSkylineBbrs)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_ReverseSkylineBichromatic(benchmark::State& state) {
  const Dataset products =
      GenerateCarDb(static_cast<size_t>(state.range(0)), 42);
  const Dataset customers =
      GenerateCarDb(static_cast<size_t>(state.range(0)) / 4, 43);
  RStarTree ptree = BulkLoadPoints(2, products.points);
  RStarTree ctree = BulkLoadPoints(2, customers.points);
  Rng rng(8);
  for (auto _ : state) {
    const Point& q = products.points[rng.NextUint64(products.points.size())];
    benchmark::DoNotOptimize(
        BbrsReverseSkylineBichromatic(ctree, ptree, q).size());
  }
}
BENCHMARK(BM_ReverseSkylineBichromatic)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_GlobalSkylineCandidates(benchmark::State& state) {
  const Dataset ds = GenerateCarDb(static_cast<size_t>(state.range(0)), 42);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(9);
  for (auto _ : state) {
    const Point& q = ds.points[rng.NextUint64(ds.points.size())];
    benchmark::DoNotOptimize(GlobalSkylineCandidates(tree, q).size());
  }
}
BENCHMARK(BM_GlobalSkylineCandidates)->Arg(50000)->Arg(200000);

}  // namespace
}  // namespace wnrs

BENCHMARK_MAIN();
