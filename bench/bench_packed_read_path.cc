// Dynamic vs packed read path: the same BBS / BBRS / window-query
// workloads executed once against the pointer-based R*-tree and once
// against its frozen PackedRTree image. Results are bit-identical by
// construction (the parity tests pin that); this bench measures what the
// arena layout and the span kernels buy in wall time, and records the
// node-read counters so the regression gate can assert that packed work
// equals dynamic work while packed time beats dynamic time.
//
// Configs come in dynamic/packed pairs per algorithm:
//   bbs-{dynamic,packed}     BbsDynamicSkyline per workload query
//   bbrs-{dynamic,packed}    BbrsReverseSkyline per workload query
//   window-{dynamic,packed}  WindowSkyline + WindowEmpty probes
// plus a "freeze" config capturing the publish-time cost of
// PackedRTree::Freeze itself.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "reverse_skyline/bbrs.h"
#include "reverse_skyline/window_query.h"
#include "skyline/bbs.h"

namespace wnrs::bench {
namespace {

struct Workload {
  std::vector<Point> queries;     // BBS origins / BBRS query products.
  std::vector<Point> customers;   // Window-query customers (paired).
};

Workload MakeQueries(const Dataset& data, size_t count, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.queries.reserve(count);
  w.customers.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    Point q = data.points[rng.NextUint64(data.size())];
    for (size_t i = 0; i < q.dims(); ++i) {
      q[i] *= rng.NextDouble(0.95, 1.05);
    }
    w.queries.push_back(std::move(q));
    w.customers.push_back(data.points[rng.NextUint64(data.size())]);
  }
  return w;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchReporter reporter("packed_read_path", args);

  const size_t n = args.short_mode ? 20'000 : 100'000;
  const size_t num_queries = args.short_mode ? 12 : 48;
  const Dataset data = MakeDataset("CarDB", n, 9100);
  const Workload workload = MakeQueries(data, num_queries, 9101);

  RStarTree tree(data.dims);
  for (size_t i = 0; i < data.points.size(); ++i) {
    tree.Insert(data.points[i], static_cast<RStarTree::Id>(i));
  }

  reporter.Begin("freeze");
  PackedRTree packed = PackedRTree::Freeze(tree);
  reporter.End();

  // Checksums keep the optimizer honest and double as a cheap parity
  // assertion between the paired configs.
  size_t dynamic_sum = 0;
  size_t packed_sum = 0;

  struct Timing {
    const char* label;
    double dynamic_ms = 0.0;
    double packed_ms = 0.0;
  };
  std::vector<Timing> timings;

  WallTimer timer;

  // --- BBS: dynamic skyline per query origin. ---
  Timing bbs{"bbs"};
  reporter.Begin("bbs-dynamic");
  timer.Restart();
  for (const Point& q : workload.queries) {
    dynamic_sum += BbsDynamicSkyline(tree, q).size();
  }
  bbs.dynamic_ms = timer.ElapsedMillis();
  reporter.End();
  reporter.Begin("bbs-packed");
  timer.Restart();
  for (const Point& q : workload.queries) {
    packed_sum += BbsDynamicSkyline(packed, q).size();
  }
  bbs.packed_ms = timer.ElapsedMillis();
  reporter.End();
  timings.push_back(bbs);

  // --- BBRS: full reverse skyline per query product. ---
  Timing bbrs{"bbrs"};
  reporter.Begin("bbrs-dynamic");
  timer.Restart();
  for (const Point& q : workload.queries) {
    dynamic_sum += BbrsReverseSkyline(tree, q).size();
  }
  bbrs.dynamic_ms = timer.ElapsedMillis();
  reporter.End();
  reporter.Begin("bbrs-packed");
  timer.Restart();
  for (const Point& q : workload.queries) {
    packed_sum += BbrsReverseSkyline(packed, q).size();
  }
  bbrs.packed_ms = timer.ElapsedMillis();
  reporter.End();
  timings.push_back(bbrs);

  // --- Window queries: the frontier skyline plus the emptiness probe
  // that dominates BBRS verification. ---
  Timing window{"window"};
  reporter.Begin("window-dynamic");
  timer.Restart();
  for (size_t k = 0; k < workload.queries.size(); ++k) {
    const Point& q = workload.queries[k];
    const Point& c = workload.customers[k];
    dynamic_sum += WindowSkyline(tree, c, q, q).size();
    dynamic_sum += WindowEmpty(tree, c, q) ? 1 : 0;
  }
  window.dynamic_ms = timer.ElapsedMillis();
  reporter.End();
  reporter.Begin("window-packed");
  timer.Restart();
  for (size_t k = 0; k < workload.queries.size(); ++k) {
    const Point& q = workload.queries[k];
    const Point& c = workload.customers[k];
    packed_sum += WindowSkyline(packed, c, q, q).size();
    packed_sum += WindowEmpty(packed, c, q) ? 1 : 0;
  }
  window.packed_ms = timer.ElapsedMillis();
  reporter.End();
  timings.push_back(window);

  std::printf("\n--- packed read path: CarDB-%zu, %zu queries ---\n", n,
              num_queries);
  std::printf("%-10s %14s %14s %10s\n", "workload", "dynamic (ms)",
              "packed (ms)", "speedup");
  for (const Timing& t : timings) {
    std::printf("%-10s %14.2f %14.2f %9.2fx\n", t.label, t.dynamic_ms,
                t.packed_ms,
                t.packed_ms > 0.0 ? t.dynamic_ms / t.packed_ms : 0.0);
  }
  if (dynamic_sum != packed_sum) {
    std::fprintf(stderr,
                 "PARITY FAILURE: dynamic checksum %zu != packed %zu\n",
                 dynamic_sum, packed_sum);
    return 1;
  }
  std::printf("parity checksum: %zu (dynamic == packed)\n", dynamic_sum);

  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace wnrs::bench

int main(int argc, char** argv) { return wnrs::bench::Run(argc, argv); }
