// Reproduces Fig. 14: "CarDB datasets: RSL size vs. Safe Region area" —
// the safe region shrinks as the number of reverse-skyline points grows.
// Areas are normalized by the data-universe area.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Fig. 14: |RSL| vs safe-region area (normalized) ===\n");
  BenchReporter reporter("fig14_safe_region_area", args);
  const std::vector<size_t> sizes =
      args.short_mode ? std::vector<size_t>{20000}
                      : std::vector<size_t>{50000, 100000, 200000};
  const size_t max_rsl = args.short_mode ? 8 : 15;
  for (const size_t n : sizes) {
    reporter.Begin(StrFormat("CarDB-%zuK", n / 1000));
    WallTimer timer;
    WhyNotEngine engine(MakeDataset("CarDB", n, 1000 + n));
    const auto workload = MakeWorkload(engine, 4000, 77 + n, 1, max_rsl);
    const double universe_area = engine.universe().Volume();
    std::printf("\n--- CarDB-%zuK ---\n", n / 1000);
    std::printf("%-8s %-14s %-10s\n", "|RSL|", "SR area", "rects");
    double prev_area = -1.0;
    size_t monotone_violations = 0;
    for (const WhyNotWorkloadQuery& wq : workload) {
      const SafeRegionResult& sr = engine.SafeRegion(wq.q);
      const double area = sr.region.UnionVolume() / universe_area;
      std::printf("%-8zu %-14.6e %-10zu\n", wq.rsl.size(), area,
                  sr.region.size());
      if (prev_area >= 0.0 && area > prev_area) ++monotone_violations;
      prev_area = area;
    }
    std::printf(
        "shape: area trend is decreasing (%zu local upticks over %zu "
        "buckets), %.1fs\n",
        monotone_violations, workload.size(), timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
