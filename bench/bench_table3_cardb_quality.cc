// Reproduces Table III: "Quality of results in CarDB datasets" —
// best solution cost of MWP vs MQP vs MWQ for queries with |RSL| = 1..15
// on the CarDB surrogate at 50K, 100K and 200K tuples.
//
// Expected shapes (paper Section VI-A): MWQ <= MWP everywhere (equality
// when the safe region degenerates), MWQ cheaper than MQP in most rows,
// and zero-cost MWQ rows when DDR̄(c_t) overlaps SR(q) (small |RSL|).

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Table III: quality of results in CarDB datasets ===\n");
  BenchReporter reporter("table3_cardb_quality", args);
  const std::vector<size_t> sizes =
      args.short_mode ? std::vector<size_t>{20000}
                      : std::vector<size_t>{50000, 100000, 200000};
  const size_t max_rsl = args.short_mode ? 8 : 15;
  for (const size_t n : sizes) {
    reporter.Begin(StrFormat("CarDB-%zuK", n / 1000));
    WallTimer timer;
    WhyNotEngine engine(MakeDataset("CarDB", n, 1000 + n));
    const auto workload = MakeWorkload(engine, 4000, 77 + n, 1, max_rsl);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(StrFormat("CarDB-%zuK", n / 1000), rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
