// Reproduces Table III: "Quality of results in CarDB datasets" —
// best solution cost of MWP vs MQP vs MWQ for queries with |RSL| = 1..15
// on the CarDB surrogate at 50K, 100K and 200K tuples.
//
// Expected shapes (paper Section VI-A): MWQ <= MWP everywhere (equality
// when the safe region degenerates), MWQ cheaper than MQP in most rows,
// and zero-cost MWQ rows when DDR̄(c_t) overlaps SR(q) (small |RSL|).

#include "bench_util.h"

int main() {
  using namespace wnrs;
  using namespace wnrs::bench;
  std::printf("=== Table III: quality of results in CarDB datasets ===\n");
  const struct {
    size_t n;
    const char* label;
  } kConfigs[] = {
      {50000, "(a) CarDB-50K"},
      {100000, "(b) CarDB-100K"},
      {200000, "(c) CarDB-200K"},
  };
  for (const auto& config : kConfigs) {
    WallTimer timer;
    WhyNotEngine engine(MakeDataset("CarDB", config.n, 1000 + config.n));
    const auto workload = MakeWorkload(engine, 4000, 77 + config.n);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(config.label, rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
  }
  return 0;
}
