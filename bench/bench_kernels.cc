// Microbenchmarks for the geometry kernels: every hot predicate measured
// once through the dispatched entry point (the explicit SIMD backend when
// the build and CPU provide one) and once through the scalar reference in
// scalar_kernels::. The paired "-simd" / "-scalar" configs feed the CI
// improvement gates — the vector path must beat the scalar path on the
// same host in the same run — and the post-run checksums double as a
// parity assertion between the two implementations (they are required to
// be bit-identical, so any checksum divergence is a bug, not noise).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "geometry/kernels.h"

namespace wnrs::bench {
namespace {

struct KernelInputs {
  size_t d = 0;
  size_t n = 0;
  size_t cap = 0;               // KernelPad(n): plane stride
  std::vector<double> points;   // n x d dense, point-major
  std::vector<double> probe;    // mid-range point: mixed dominance results
  std::vector<double> zeros;    // probe nothing dominates: full-depth scans
  std::vector<double> origin;   // distance-space origin
  std::vector<double> slab;     // SoA planes, NaN-padded like the packed slab
  std::vector<double> wlo, whi; // overlap window
  std::vector<double> c, q;     // InWindow customer / query

  SoaPlanes planes() const { return {slab.data(), cap, d}; }
};

KernelInputs MakeInputs(size_t d, size_t n, uint64_t seed) {
  Rng rng(seed);
  KernelInputs in;
  in.d = d;
  in.n = n;
  in.cap = KernelPad(n);
  in.points.resize(n * d);
  for (double& v : in.points) v = rng.NextDouble();
  in.probe.resize(d);
  for (double& v : in.probe) v = rng.NextDouble(0.4, 0.6);
  in.zeros.assign(d, 0.0);
  in.origin.resize(d);
  for (double& v : in.origin) v = rng.NextDouble(0.3, 0.7);
  in.slab.assign(2 * d * in.cap, std::numeric_limits<double>::quiet_NaN());
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < d; ++j) {
      const double lo = rng.NextDouble();
      in.slab[j * in.cap + k] = lo;
      in.slab[(d + j) * in.cap + k] = lo + rng.NextDouble(0.0, 0.1);
    }
  }
  in.wlo.resize(d);
  in.whi.resize(d);
  for (size_t j = 0; j < d; ++j) {
    in.wlo[j] = rng.NextDouble(0.0, 0.4);
    in.whi[j] = in.wlo[j] + rng.NextDouble(0.2, 0.5);
  }
  in.c.resize(d);
  in.q.resize(d);
  for (double& v : in.c) v = rng.NextDouble();
  for (double& v : in.q) v = rng.NextDouble();
  return in;
}

uint64_t MaskSum(const unsigned char* mask, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += mask[i];
  return sum;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchReporter reporter("kernels", args);

  // Even short mode runs each config for tens of milliseconds: the CI
  // improvement gates compare paired configs within one run, and a
  // single scheduler preemption (~ms) must not be able to flip a
  // comparison between two 4 ms regions.
  const size_t n = 4096;
  const size_t iters = args.short_mode ? 2500 : 12000;
  std::printf("kernel backend: %s (%zu entries x %zu iterations)\n",
              KernelBackend(), n, iters);

  uint64_t sink = 0;
  bool parity_ok = true;

  struct Timing {
    std::string label;
    double simd_ms = 0.0;
    double scalar_ms = 0.0;
  };
  std::vector<Timing> timings;
  WallTimer timer;

  for (size_t d : {size_t{2}, size_t{4}}) {
    const KernelInputs in = MakeInputs(d, n, 0x5EED00 + d);
    std::vector<unsigned char> mask(in.cap, 0);
    std::vector<double> corners(d * in.cap, 0.0);
    std::vector<double> dist(in.cap, 0.0);

    // Times `body` under the given config name; `checksum` runs outside
    // the measured region (every iteration recomputes the same outputs,
    // and the kernels live in another TU, so the calls cannot fold).
    const auto measure = [&](const std::string& cfg, const auto& body,
                             const auto& checksum, double* ms) {
      body();  // untimed warmup: fault in the scratch buffers
      reporter.Begin(cfg);
      timer.Restart();
      for (size_t i = 0; i < iters; ++i) body();
      *ms = timer.ElapsedMillis();
      reporter.End();
      return checksum();
    };

    const auto gate_pair = [&](const char* kernel, const auto& simd_body,
                               const auto& scalar_body,
                               const auto& checksum) {
      const std::string base = StrFormat("%s-d%zu-", kernel, d);
      Timing t;
      t.label = StrFormat("%s-d%zu", kernel, d);
      const uint64_t simd_sum =
          measure(base + "simd", simd_body, checksum, &t.simd_ms);
      const uint64_t scalar_sum =
          measure(base + "scalar", scalar_body, checksum, &t.scalar_ms);
      if (simd_sum != scalar_sum) {
        std::fprintf(stderr,
                     "PARITY FAILURE: %s checksum %llu (dispatched) != "
                     "%llu (scalar)\n",
                     t.label.c_str(),
                     static_cast<unsigned long long>(simd_sum),
                     static_cast<unsigned long long>(scalar_sum));
        parity_ok = false;
      }
      sink ^= simd_sum;
      timings.push_back(std::move(t));
    };

    const auto mask_sum = [&] { return MaskSum(mask.data(), n); };
    const auto dist_sum = [&] {
      double s = 0.0;
      for (size_t k = 0; k < n; ++k) s += dist[k];
      uint64_t bits = 0;
      std::memcpy(&bits, &s, sizeof(bits));
      return bits;
    };

    gate_pair(
        "dominates",
        [&] {
          DominatesBatch(in.points.data(), n, d, in.probe.data(),
                         mask.data());
        },
        [&] {
          scalar_kernels::DominatesBatch(in.points.data(), n, d,
                                         in.probe.data(), mask.data());
        },
        mask_sum);

    gate_pair(
        "dyndom",
        [&] {
          DynamicallyDominatesBatch(in.points.data(), n, d, in.probe.data(),
                                    in.origin.data(), mask.data());
        },
        [&] {
          scalar_kernels::DynamicallyDominatesBatch(
              in.points.data(), n, d, in.probe.data(), in.origin.data(),
              mask.data());
        },
        mask_sum);

    // `zeros` is dominated by nothing, so every call scans the full
    // buffer — the worst case of the skyline-membership probe.
    gate_pair(
        "anydom",
        [&] {
          mask[0] = static_cast<unsigned char>(
              DominatedByAny(in.points.data(), n, d, in.zeros.data()));
        },
        [&] {
          mask[0] = static_cast<unsigned char>(scalar_kernels::DominatedByAny(
              in.points.data(), n, d, in.zeros.data()));
        },
        [&] { return MaskSum(mask.data(), 1); });

    gate_pair(
        "overlap",
        [&] {
          BoxOverlapMaskSoa(in.planes(), 0, n, in.wlo.data(), in.whi.data(),
                            mask.data());
        },
        [&] {
          scalar_kernels::BoxOverlapMaskSoa(in.planes(), 0, n, in.wlo.data(),
                                            in.whi.data(), mask.data());
        },
        mask_sum);

    gate_pair(
        "mindist",
        [&] {
          MinDistCornerBatchSoa(in.planes(), 0, n, in.origin.data(),
                                corners.data(), in.cap, dist.data());
        },
        [&] {
          scalar_kernels::MinDistCornerBatchSoa(in.planes(), 0, n,
                                                in.origin.data(),
                                                corners.data(), in.cap,
                                                dist.data());
        },
        dist_sum);

    gate_pair(
        "todist",
        [&] {
          ToDistanceSpaceBatchSoa(in.planes(), 0, n, in.origin.data(),
                                  corners.data(), in.cap, dist.data());
        },
        [&] {
          scalar_kernels::ToDistanceSpaceBatchSoa(in.planes(), 0, n,
                                                  in.origin.data(),
                                                  corners.data(), in.cap,
                                                  dist.data());
        },
        dist_sum);

    gate_pair(
        "inwindow",
        [&] {
          InWindowMaskSoa(in.planes(), 0, n, in.c.data(), in.q.data(),
                          mask.data());
        },
        [&] {
          scalar_kernels::InWindowMaskSoa(in.planes(), 0, n, in.c.data(),
                                          in.q.data(), mask.data());
        },
        mask_sum);
  }

  std::printf("\n--- kernels: %zu entries/call, %zu calls/config ---\n", n,
              iters);
  std::printf("%-14s %14s %14s %10s\n", "kernel", "scalar (ms)",
              "dispatched (ms)", "speedup");
  for (const Timing& t : timings) {
    std::printf("%-14s %14.2f %14.2f %9.2fx\n", t.label.c_str(), t.scalar_ms,
                t.simd_ms,
                t.simd_ms > 0.0 ? t.scalar_ms / t.simd_ms : 0.0);
  }
  std::printf("checksum sink: %llu\n",
              static_cast<unsigned long long>(sink));
  if (!parity_ok) return 1;

  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace wnrs::bench

int main(int argc, char** argv) { return wnrs::bench::Run(argc, argv); }
