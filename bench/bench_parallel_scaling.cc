// Scaling of the parallel execution layer: wall-clock time and speedup
// of batch MWQ answering (ModifyBothBatch) and offline approx-DSL
// precomputation (PrecomputeApproxDsls) at 1/2/4/8 threads.
//
// Expected shape on a multi-core host: near-linear scaling for the
// precompute pass (independent per-customer BBS runs) and sublinear but
// clearly >1x scaling for batch MWQ (the shared safe-region computation
// is serial; the per-why-not refinement fans out). On a single-core
// host all rows collapse to ~1x — the speedup column, not the absolute
// times, is the quantity of interest.
//
// Every thread count is its own JSON record (`...-1t` through `...-8t`),
// so CI can gate the 4-thread row against the 1-thread row within one
// run; the reporter's `host_cores` field lets the regression checker
// skip those gates on runners without enough cores to scale.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"

namespace {

using namespace wnrs;
using namespace wnrs::bench;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

WhyNotEngine MakeEngine(const Dataset& data, size_t num_threads) {
  WhyNotEngineOptions options;
  options.num_threads = num_threads;
  return WhyNotEngine(data, options);
}

void BenchBatchMwq(BenchReporter& reporter, const Dataset& data,
                   const std::string& config_prefix, size_t batch_size) {
  // One fixed query with a non-trivial reverse skyline, answered for a
  // batch of why-not customers — the paper's Section V batch setting.
  const Point q = data.points[7];
  std::vector<size_t> whos;
  for (size_t c = 0; c < batch_size; ++c) {
    whos.push_back(c * 13 % data.points.size());
  }

  std::printf("\n--- batch MWQ (n=%zu, batch=%zu) ---\n", data.points.size(),
              batch_size);
  std::printf("%-10s %-14s %-10s\n", "threads", "time (ms)", "speedup");
  double serial_ms = 0.0;
  for (size_t threads : kThreadCounts) {
    // A fresh engine per row so every run pays the same cold caches.
    WhyNotEngine engine = MakeEngine(data, threads);
    reporter.Begin(StrFormat("%s-%zut", config_prefix.c_str(), threads));
    WallTimer timer;
    const std::vector<MwqResult> results = engine.ModifyBothBatch(whos, q);
    const double ms = timer.ElapsedMillis();
    reporter.End();
    WNRS_CHECK(results.size() == whos.size());
    if (threads == 1) serial_ms = ms;
    std::printf("%-10zu %-14.1f %-10.2f\n", threads, ms, serial_ms / ms);
  }
}

void BenchPrecompute(BenchReporter& reporter, const Dataset& data,
                     const std::string& config_prefix, size_t k) {
  std::printf("\n--- PrecomputeApproxDsls (n=%zu, k=%zu) ---\n",
              data.points.size(), k);
  std::printf("%-10s %-14s %-10s\n", "threads", "time (ms)", "speedup");
  double serial_ms = 0.0;
  for (size_t threads : kThreadCounts) {
    WhyNotEngine engine = MakeEngine(data, threads);
    reporter.Begin(StrFormat("%s-%zut", config_prefix.c_str(), threads));
    WallTimer timer;
    engine.PrecomputeApproxDsls(k);
    const double ms = timer.ElapsedMillis();
    reporter.End();
    if (threads == 1) serial_ms = ms;
    std::printf("%-10zu %-14.1f %-10.2f\n", threads, ms, serial_ms / ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Parallel scaling: batch MWQ and approx-DSL precompute ===\n"
      "hardware threads available: %zu\n",
      ThreadPool::HardwareConcurrency());
  BenchReporter reporter("parallel_scaling", args);

  const size_t n = args.short_mode ? 10000 : 20000;
  const size_t batch = args.short_mode ? 16 : 64;
  const size_t k = args.short_mode ? 4 : 8;

  const Dataset cardb = MakeDataset("CarDB", n, 9100);
  BenchBatchMwq(reporter, cardb,
                StrFormat("CarDB-%zuK-batch%zu", n / 1000, batch), batch);
  BenchPrecompute(reporter, cardb, StrFormat("CarDB-%zuK-precompute", n / 1000),
                  k);

  if (!args.short_mode) {
    const Dataset anti = MakeDataset("AC", n, 9200);
    BenchBatchMwq(reporter, anti,
                  StrFormat("AC-%zuK-batch%zu", n / 1000, batch), batch);
    BenchPrecompute(reporter, anti, StrFormat("AC-%zuK-precompute", n / 1000),
                    k);
  }
  return reporter.Write() ? 0 : 1;
}
