#ifndef WNRS_BENCH_FLAGS_H_
#define WNRS_BENCH_FLAGS_H_

// Command-line flag parsing shared by every bench binary. Extracted from
// bench_util.h so non-engine benches (e.g. the serve-throughput bench)
// can parse flags without pulling in dataset/workload scaffolding.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace wnrs::bench {

/// Common command-line flags of every paper-reproduction bench binary:
///   --short          reduced configurations for CI smoke runs
///   --json <path>    machine-readable per-config records (wall time +
///                    the QueryStats counter deltas) written to <path>
///   --threads <n>    caller-thread count for concurrency benches
///                    (0 = hardware concurrency; ignored by serial
///                    benches)
///   --qps <n>        target offered load for serving benches (0 = open
///                    throttle; ignored by non-serving benches)
struct BenchArgs {
  bool short_mode = false;
  std::string json_path;
  size_t threads = 0;
  size_t qps = 0;
};

/// Parses the common flags; exits with status 2 on unknown arguments so
/// CI catches typos instead of silently running the full bench.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      args.short_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--qps") == 0 && i + 1 < argc) {
      args.qps = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--short] [--json <path>] [--threads <n>] "
                   "[--qps <n>]\n"
                   "unknown argument: %s\n",
                   argv[0], argv[i]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace wnrs::bench

#endif  // WNRS_BENCH_FLAGS_H_
