// Quantifies Fig. 16: the approximated DSL's anti-dominance region misses
// the shaded staircase steps between sampled points. For random customers
// we report the area of the exact DDR̄ versus the approximated DDR̄ for
// several k, as a coverage ratio (1.0 = nothing missed). Larger k →
// better coverage, at the cost of more rectangles.

#include "bench_util.h"
#include "common/random.h"
#include "geometry/transform.h"
#include "skyline/approx.h"
#include "skyline/bbs.h"
#include "skyline/ddr.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Fig. 16: approximated DDR coverage vs k ===\n"
      "coverage = area(approx DDR) / area(exact DDR), averaged over "
      "customers\n");
  BenchReporter reporter("fig16_approx_coverage", args);
  const size_t kCustomers = args.short_mode ? 50 : 200;
  const size_t data_n = args.short_mode ? 20000 : 50000;
  const std::vector<const char*> kinds =
      args.short_mode ? std::vector<const char*>{"CarDB"}
                      : std::vector<const char*>{"CarDB", "AC"};
  const std::vector<size_t> ks =
      args.short_mode ? std::vector<size_t>{2, 10}
                      : std::vector<size_t>{2, 3, 5, 10, 20, 40};
  for (const char* kind : kinds) {
    reporter.Begin(StrFormat("%s-%zuK", kind, data_n / 1000));
    const Dataset ds = MakeDataset(kind, data_n, 616);
    WhyNotEngine engine{MakeDataset(kind, data_n, 616)};
    const Rectangle universe = engine.universe();
    Rng rng(617);
    std::printf("\n--- %s-%zuK (%zu sampled customers) ---\n", kind,
                data_n / 1000, kCustomers);
    std::printf("%-8s %-12s %-14s\n", "k", "coverage", "avg |DSL| kept");
    for (const size_t k : ks) {
      double coverage_sum = 0.0;
      double kept_sum = 0.0;
      size_t counted = 0;
      Rng local(618);  // Same customers for every k.
      for (size_t s = 0; s < kCustomers; ++s) {
        const size_t c_idx = local.NextUint64(ds.points.size());
        const Point& c = ds.points[c_idx];
        const std::vector<RStarTree::Id> dsl =
            BbsDynamicSkyline(engine.product_tree(), c,
                              static_cast<RStarTree::Id>(c_idx));
        std::vector<Point> dsl_t;
        dsl_t.reserve(dsl.size());
        for (RStarTree::Id id : dsl) {
          dsl_t.push_back(
              ToDistanceSpace(ds.points[static_cast<size_t>(id)], c));
        }
        const Point anchor = MaxExtents(c, universe);
        RectRegion exact = AntiDominanceRegion(c, dsl_t, anchor);
        exact.ClipTo(universe);
        const std::vector<Point> sampled = ApproximateSkyline(dsl_t, k);
        RectRegion approx = ApproxAntiDominanceRegion(c, sampled, anchor);
        approx.ClipTo(universe);
        const double exact_area = exact.UnionVolume();
        if (exact_area <= 0.0) continue;
        coverage_sum += approx.UnionVolume() / exact_area;
        kept_sum += static_cast<double>(sampled.size());
        ++counted;
      }
      std::printf("%-8zu %-12.6f %-14.1f\n", k, coverage_sum / counted,
                  kept_sum / counted);
    }
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
