#ifndef WNRS_BENCH_BENCH_UTIL_H_
#define WNRS_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches: dataset
// construction, |RSL|-bucketed workloads (queries with 1-15 reverse
// skyline points, following the data distribution), the three solution
// costs of Section VI-A, and table printing.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "flags.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/engine.h"
#include "data/generators.h"
#include "data/workload.h"

namespace wnrs::bench {

/// Collects one JSON record per bench configuration: wall time plus the
/// delta of every QueryStats counter over the measured region (captured
/// from the global MetricsRegistry). Usage:
///
///   BenchReporter reporter("fig15_exec_time", args);
///   reporter.Begin("CarDB-100K");
///   ... run the configuration ...
///   reporter.End();
///   ...
///   return reporter.Write() ? 0 : 1;
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, BenchArgs args)
      : bench_name_(std::move(bench_name)), args_(std::move(args)) {}

  const BenchArgs& args() const { return args_; }

  /// Starts measuring a configuration.
  void Begin(const std::string& config) {
    WNRS_CHECK(!in_config_);
    in_config_ = true;
    current_config_ = config;
    start_stats_ = MetricsRegistry::Default().CaptureQueryStats();
    timer_.Restart();
  }

  /// Finishes the configuration opened by Begin.
  void End() {
    WNRS_CHECK(in_config_);
    Record record;
    record.config = current_config_;
    record.wall_ms = timer_.ElapsedMillis();
    record.counters =
        MetricsRegistry::Default().CaptureQueryStats() - start_stats_;
    records_.push_back(std::move(record));
    in_config_ = false;
  }

  /// Writes the collected records to args.json_path (no-op without
  /// --json). Returns false if the file cannot be written.
  bool Write() const {
    WNRS_CHECK(!in_config_);
    if (args_.json_path.empty()) return true;
    std::string out = "{\n";
    out += StrFormat("  \"bench\": \"%s\",\n", bench_name_.c_str());
    out += StrFormat("  \"short_mode\": %s,\n",
                     args_.short_mode ? "true" : "false");
    // The regression checker reads this to skip speedup gates that are
    // meaningless on hosts with fewer cores than the gate assumes (the
    // `@MINCORES` suffix in tools/check_bench_regression.py).
    out += StrFormat("  \"host_cores\": %zu,\n",
                     ThreadPool::HardwareConcurrency());
    out += "  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out += StrFormat(
          "    {\"config\": \"%s\", \"wall_ms\": %.3f, \"counters\": %s}%s\n",
          r.config.c_str(), r.wall_ms, r.counters.ToJson().c_str(),
          i + 1 < records_.size() ? "," : "");
    }
    out += "  ]\n}\n";
    std::ofstream file(args_.json_path, std::ios::trunc);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   args_.json_path.c_str());
      return false;
    }
    file << out;
    file.flush();
    if (!file.good()) {
      std::fprintf(stderr, "write failure: %s\n", args_.json_path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu records)\n", args_.json_path.c_str(),
                records_.size());
    return true;
  }

 private:
  struct Record {
    std::string config;
    double wall_ms = 0.0;
    QueryStats counters;
  };

  std::string bench_name_;
  BenchArgs args_;
  std::vector<Record> records_;
  bool in_config_ = false;
  std::string current_config_;
  QueryStats start_stats_;
  WallTimer timer_;
};

/// Builds one of the evaluation datasets: "CarDB", "UN", "CO", "AC".
inline Dataset MakeDataset(const std::string& kind, size_t n,
                           uint64_t seed) {
  if (kind == "CarDB") return GenerateCarDb(n, seed);
  if (kind == "UN") return GenerateUniform(n, 2, seed);
  if (kind == "CO") return GenerateCorrelated(n, 2, seed);
  if (kind == "AC") return GenerateAnticorrelated(n, 2, seed);
  WNRS_CHECK(false) << "unknown dataset kind " << kind;
  return Dataset();
}

/// Samples the paper's workload: one query per reverse-skyline size in
/// [1, 15] where available, with a random why-not customer each.
inline std::vector<WhyNotWorkloadQuery> MakeWorkload(
    const WhyNotEngine& engine, size_t max_attempts, uint64_t seed,
    size_t min_rsl = 1, size_t max_rsl = 15) {
  return SampleQueriesByRslSize(
      engine.customers(),
      [&engine](const Point& q) { return engine.ReverseSkyline(q); },
      min_rsl, max_rsl, max_attempts, seed);
}

/// Best MWP cost (Algorithm 1), as reported in Tables III-VI.
inline double MwpCost(const WhyNotEngine& engine, size_t c,
                      const Point& q) {
  const MwpResult r = engine.ModifyWhyNot(c, q);
  return r.candidates.empty() ? 0.0 : r.candidates.front().cost;
}

/// Best MQP cost under the paper's evaluation formula (Section VI-A):
/// alpha-cost of leaving the safe region plus the beta-cost of winning
/// back every lost customer, minimized over Algorithm 2's candidates.
inline double MqpCost(const WhyNotEngine& engine, size_t c,
                      const Point& q) {
  const MqpResult r = engine.ModifyQuery(c, q);
  double best = -1.0;
  for (const Candidate& cand : r.candidates) {
    const double cost = engine.MqpEvaluationCost(q, cand.point);
    if (best < 0.0 || cost < best) best = cost;
  }
  return best < 0.0 ? 0.0 : best;
}

/// Best MWQ cost (Algorithm 4).
inline double MwqCost(const WhyNotEngine& engine, size_t c,
                      const Point& q) {
  return engine.ModifyBoth(c, q).best_cost;
}

/// Best Approx-MWQ cost (Algorithm 4 over the approximated safe region).
inline double ApproxMwqCost(const WhyNotEngine& engine, size_t c,
                            const Point& q) {
  return engine.ModifyBothApprox(c, q).best_cost;
}

/// One row of a quality table.
struct QualityRow {
  size_t rsl_size = 0;
  double mwp = 0.0;
  double mqp = 0.0;
  double mwq = 0.0;
  std::optional<double> approx_mwq;
};

/// Prints a Table III/IV/V/VI-style block.
inline void PrintQualityTable(const std::string& title,
                              const std::vector<QualityRow>& rows,
                              std::optional<size_t> approx_k) {
  std::printf("\n--- %s ---\n", title.c_str());
  if (approx_k.has_value()) {
    std::printf("%-22s %-12s %-12s %-12s %-16s\n", "Query", "MWP", "MQP",
                "MWQ",
                ("Approx-MWQ(k=" + std::to_string(*approx_k) + ")").c_str());
  } else {
    std::printf("%-22s %-12s %-12s %-12s\n", "Query", "MWP", "MQP", "MWQ");
  }
  size_t qi = 0;
  for (const QualityRow& row : rows) {
    ++qi;
    char label[64];
    std::snprintf(label, sizeof(label), "q%zu, |RSL(q%zu)| = %zu", qi, qi,
                  row.rsl_size);
    if (row.approx_mwq.has_value()) {
      std::printf("%-22s %-12.9f %-12.9f %-12.9f %-16.9f\n", label, row.mwp,
                  row.mqp, row.mwq, *row.approx_mwq);
    } else {
      std::printf("%-22s %-12.9f %-12.9f %-12.9f\n", label, row.mwp,
                  row.mqp, row.mwq);
    }
  }
}

/// Runs the full quality evaluation for a dataset configuration.
inline std::vector<QualityRow> EvaluateQuality(
    const WhyNotEngine& engine,
    const std::vector<WhyNotWorkloadQuery>& workload, bool with_approx) {
  std::vector<QualityRow> rows;
  rows.reserve(workload.size());
  for (const WhyNotWorkloadQuery& wq : workload) {
    QualityRow row;
    row.rsl_size = wq.rsl.size();
    row.mwp = MwpCost(engine, wq.why_not_index, wq.q);
    row.mqp = MqpCost(engine, wq.why_not_index, wq.q);
    row.mwq = MwqCost(engine, wq.why_not_index, wq.q);
    if (with_approx) {
      row.approx_mwq = ApproxMwqCost(engine, wq.why_not_index, wq.q);
    }
    rows.push_back(row);
  }
  return rows;
}

/// Sanity summary of the shapes the paper's discussion asserts; printed
/// below each table so the reproduction claims are machine-checkable in
/// bench_output.txt.
inline void PrintShapeChecks(const std::vector<QualityRow>& rows) {
  size_t mwq_le_mwp = 0;
  size_t mwq_lt_mqp = 0;
  size_t zero_cost_mwq = 0;
  for (const QualityRow& row : rows) {
    if (row.mwq <= row.mwp + 1e-9) ++mwq_le_mwp;
    if (row.mwq < row.mqp + 1e-9) ++mwq_lt_mqp;
    if (row.mwq <= 1e-12) ++zero_cost_mwq;
  }
  std::printf(
      "shape: MWQ<=MWP in %zu/%zu rows; MWQ<=MQP in %zu/%zu rows; "
      "zero-cost MWQ rows: %zu\n",
      mwq_le_mwp, rows.size(), mwq_lt_mqp, rows.size(), zero_cost_mwq);
}

}  // namespace wnrs::bench

#endif  // WNRS_BENCH_BENCH_UTIL_H_
