// Concurrent serving throughput: how many why-not requests per second one
// engine sustains as external caller threads are added, (a) hammering
// EngineSnapshot directly and (b) going through the deadline-aware
// RequestScheduler. Single-core CI shows ~1x scaling by construction; the
// bench still records the shape (QPS per thread count) in its JSON so
// multi-core runs can be compared.
//
// Flags: --short (CI smoke), --json <path>, --threads <n> (pin one caller
// thread count instead of the sweep), --qps <n> (throttle the offered
// scheduler load; 0 = open throttle).

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/scheduler.h"

namespace wnrs {
namespace bench {
namespace {

/// The mixed request stream: cycles over the workload's (c, q) pairs and
/// over request kinds, so every thread count sees the same request
/// multiset (work is identical; only the interleaving changes).
serve::WhyNotRequest MakeRequest(
    const std::vector<WhyNotWorkloadQuery>& workload, size_t i) {
  static constexpr serve::RequestKind kKinds[] = {
      serve::RequestKind::kReverseSkyline,
      serve::RequestKind::kModifyWhyNot,
      serve::RequestKind::kModifyBoth,
      serve::RequestKind::kSafeRegion,
  };
  const WhyNotWorkloadQuery& wq = workload[i % workload.size()];
  serve::WhyNotRequest request;
  request.kind = kKinds[i % (sizeof(kKinds) / sizeof(kKinds[0]))];
  request.q = wq.q;
  request.c = wq.why_not_index;
  return request;
}

/// Answers one request directly against a snapshot (the no-scheduler
/// baseline); aborts the bench on unexpected errors.
void AnswerDirect(const EngineSnapshot& snapshot,
                  const serve::WhyNotRequest& request) {
  switch (request.kind) {
    case serve::RequestKind::kReverseSkyline:
      WNRS_CHECK(snapshot.TryReverseSkyline(request.q).ok());
      break;
    case serve::RequestKind::kModifyWhyNot:
      WNRS_CHECK(snapshot.TryModifyWhyNot(request.c, request.q).ok());
      break;
    case serve::RequestKind::kModifyBoth:
      WNRS_CHECK(snapshot.TryModifyBoth(request.c, request.q).ok());
      break;
    case serve::RequestKind::kSafeRegion:
      WNRS_CHECK(snapshot.TrySafeRegion(request.q).ok());
      break;
    default:
      WNRS_CHECK(false);
  }
}

double RunDirect(const WhyNotEngine& engine,
                 const std::vector<WhyNotWorkloadQuery>& workload,
                 size_t num_threads, size_t num_requests) {
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  std::atomic<size_t> next{0};
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      EngineSnapshot snapshot = engine.Snapshot();
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_requests) break;
        AnswerDirect(snapshot, MakeRequest(workload, i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedMillis() / 1000.0;
  return secs > 0.0 ? static_cast<double>(num_requests) / secs : 0.0;
}

double RunScheduled(const WhyNotEngine& engine,
                    const std::vector<WhyNotWorkloadQuery>& workload,
                    size_t num_threads, size_t num_requests, size_t qps) {
  serve::RequestScheduler scheduler(&engine);
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  std::atomic<size_t> next{0};
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::future<serve::WhyNotResponse>> futures;
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_requests) break;
        futures.push_back(scheduler.Submit(MakeRequest(workload, i)));
        if (qps > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(1000000 / qps));
        }
      }
      for (std::future<serve::WhyNotResponse>& f : futures) {
        WNRS_CHECK(f.get().status.ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = timer.ElapsedMillis() / 1000.0;
  scheduler.Shutdown();
  return secs > 0.0 ? static_cast<double>(num_requests) / secs : 0.0;
}

int Run(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchReporter reporter("serve_throughput", args);

  const size_t n = args.short_mode ? 2000 : 20000;
  WhyNotEngineOptions options;
  // Engine-internal loops stay serial: the concurrency under test comes
  // from the external caller threads, not the engine's own pool.
  options.num_threads = 1;
  WhyNotEngine engine(MakeDataset("CarDB", n, /*seed=*/7), options);
  const std::vector<WhyNotWorkloadQuery> workload =
      MakeWorkload(engine, args.short_mode ? 400 : 4000, /*seed=*/11);
  WNRS_CHECK(!workload.empty());
  engine.ResetStats();

  const size_t num_requests = args.short_mode ? 64 : 512;
  std::vector<size_t> thread_counts;
  if (args.threads > 0) {
    thread_counts.push_back(args.threads);
  } else {
    thread_counts = {1, 2, 4, 8};
  }

  std::printf("%-24s %12s\n", "config", "qps");
  for (size_t t : thread_counts) {
    const std::string config = StrFormat("direct_threads=%zu", t);
    reporter.Begin(config);
    const double qps = RunDirect(engine, workload, t, num_requests);
    reporter.End();
    std::printf("%-24s %12.1f\n", config.c_str(), qps);
  }
  for (size_t t : thread_counts) {
    const std::string config = StrFormat("sched_threads=%zu", t);
    reporter.Begin(config);
    const double qps =
        RunScheduled(engine, workload, t, num_requests, args.qps);
    reporter.End();
    std::printf("%-24s %12.1f\n", config.c_str(), qps);
  }

  return reporter.Write() ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace wnrs

int main(int argc, char** argv) { return wnrs::bench::Run(argc, argv); }
