// Reproduces Table VI: quality of results in synthetic datasets including
// Approx-MWQ with k = 10 (UN/CO/AC at 100K, UN at 200K — the paper's
// configurations).

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Table VI: synthetic quality incl. Approx-MWQ ===\n");
  BenchReporter reporter("table6_synth_approx_quality", args);
  struct Config {
    const char* kind;
    size_t n;
  };
  const std::vector<Config> configs =
      args.short_mode
          ? std::vector<Config>{{"UN", 20000}}
          : std::vector<Config>{{"UN", 100000}, {"CO", 100000},
                                {"AC", 100000}, {"UN", 200000}};
  const size_t kApproxK = 10;
  for (const Config& config : configs) {
    const std::string label =
        StrFormat("%s-%zuK", config.kind, config.n / 1000);
    reporter.Begin(label);
    WallTimer timer;
    WhyNotEngine engine(
        MakeDataset(config.kind, config.n, 2000 + config.n));
    engine.PrecomputeApproxDsls(kApproxK);
    const auto workload = MakeWorkload(engine, 2500, 99 + config.n, 1, 8);
    const auto rows = EvaluateQuality(engine, workload, true);
    PrintQualityTable(label, rows, kApproxK);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
