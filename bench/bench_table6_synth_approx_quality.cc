// Reproduces Table VI: quality of results in synthetic datasets including
// Approx-MWQ with k = 10 (UN/CO/AC at 100K, UN at 200K — the paper's
// configurations).

#include "bench_util.h"

int main() {
  using namespace wnrs;
  using namespace wnrs::bench;
  std::printf("=== Table VI: synthetic quality incl. Approx-MWQ ===\n");
  const struct {
    const char* kind;
    size_t n;
    const char* label;
  } kConfigs[] = {
      {"UN", 100000, "(a) UN-100K"},
      {"CO", 100000, "(b) CO-100K"},
      {"AC", 100000, "(c) AC-100K"},
      {"UN", 200000, "(d) UN-200K"},
  };
  const size_t kApproxK = 10;
  for (const auto& config : kConfigs) {
    WallTimer timer;
    WhyNotEngine engine(
        MakeDataset(config.kind, config.n, 2000 + config.n));
    engine.PrecomputeApproxDsls(kApproxK);
    const auto workload = MakeWorkload(engine, 2500, 99 + config.n, 1, 8);
    const auto rows = EvaluateQuality(engine, workload, true);
    PrintQualityTable(config.label, rows, kApproxK);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
  }
  return 0;
}
