// Reproduces Table IV: "Quality of results in synthetic datasets" —
// MWP vs MQP vs MWQ on uniform (UN), correlated (CO) and anti-correlated
// (AC) data at 100K and 200K tuples. The paper's tables have fewer rows
// here (dense data keeps |RSL| small); our workload sampler reproduces
// that naturally by failing to fill large-|RSL| buckets.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Table IV: quality of results in synthetic datasets ===\n");
  BenchReporter reporter("table4_synth_quality", args);
  struct Config {
    const char* kind;
    size_t n;
  };
  const std::vector<Config> configs =
      args.short_mode
          ? std::vector<Config>{{"UN", 20000}, {"AC", 20000}}
          : std::vector<Config>{{"UN", 100000}, {"CO", 100000},
                                {"AC", 100000}, {"UN", 200000},
                                {"CO", 200000}, {"AC", 200000}};
  for (const Config& config : configs) {
    const std::string label =
        StrFormat("%s-%zuK", config.kind, config.n / 1000);
    reporter.Begin(label);
    WallTimer timer;
    WhyNotEngine engine(
        MakeDataset(config.kind, config.n, 2000 + config.n));
    // Dense synthetic data rarely yields |RSL| > ~6, as in the paper
    // (their synthetic tables stop at |RSL| = 4).
    const auto workload = MakeWorkload(engine, 2500, 99 + config.n, 1, 8);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(label, rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
