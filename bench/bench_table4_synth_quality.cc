// Reproduces Table IV: "Quality of results in synthetic datasets" —
// MWP vs MQP vs MWQ on uniform (UN), correlated (CO) and anti-correlated
// (AC) data at 100K and 200K tuples. The paper's tables have fewer rows
// here (dense data keeps |RSL| small); our workload sampler reproduces
// that naturally by failing to fill large-|RSL| buckets.

#include "bench_util.h"

int main() {
  using namespace wnrs;
  using namespace wnrs::bench;
  std::printf("=== Table IV: quality of results in synthetic datasets ===\n");
  const struct {
    const char* kind;
    size_t n;
    const char* label;
  } kConfigs[] = {
      {"UN", 100000, "(a) UN-100K"}, {"CO", 100000, "(b) CO-100K"},
      {"AC", 100000, "(c) AC-100K"}, {"UN", 200000, "(d) UN-200K"},
      {"CO", 200000, "(e) CO-200K"}, {"AC", 200000, "(f) AC-200K"},
  };
  for (const auto& config : kConfigs) {
    WallTimer timer;
    WhyNotEngine engine(
        MakeDataset(config.kind, config.n, 2000 + config.n));
    // Dense synthetic data rarely yields |RSL| > ~6, as in the paper
    // (their synthetic tables stop at |RSL| = 4).
    const auto workload = MakeWorkload(engine, 2500, 99 + config.n, 1, 8);
    const auto rows = EvaluateQuality(engine, workload, false);
    PrintQualityTable(config.label, rows, std::nullopt);
    PrintShapeChecks(rows);
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
  }
  return 0;
}
