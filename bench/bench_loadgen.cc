// Open-loop load harness for the wnrs binary protocol (tools/wnrs_server).
//
// Unlike the closed-loop serve bench (bench_serve_throughput), senders here
// pace requests by wall clock at a fixed offered rate regardless of when
// responses come back, so queueing delay shows up as latency instead of
// silently throttling the workload (no coordinated omission: latency is
// measured from each request's *scheduled* send time). Each connection runs
// a sender/reader thread pair over one pipelined WnrsClient.
//
// Default sweep (no --rate):
//   calibrate  closed-loop capacity estimate (depth-1 Call per connection)
//   steady     open loop at 0.5x the calibrated capacity
//   overload   open loop at 4x the calibrated capacity — the interesting
//              one: admission control + deadlines must shed the excess
//              without letting the latency of accepted requests collapse
//   slo-budget pseudo-record whose p99_us counter is the latency budget
//              derived from the calibration (8x the worst admitted queue
//              wait); check_bench_regression.py gates the overload p99
//              against it, and overload goodput against steady goodput
//
// Flags:
//   --connect <host:port>  load an external wnrs_server (it must serve the
//                          same generated dataset, i.e. --generate <n>:<seed>
//                          matching this binary's --n/--seed)
//   --rate <qps>           single fixed-rate "fixed" config instead of the
//                          calibrated sweep (calibration still runs)
//   --connections <n>      client connections (default 2)
//   --duration-ms <ms>     per-config duration (default 800 short / 4000)
//   --timeout-ms <ms>      per-request relative deadline (default 200;
//                          0 disables)
//   --max-queue <n>        admission depth of the self-spawned server, and
//                          the queue term of the slo budget (default 64)
//   --n <n>                generated dataset size (default 2000 short / 10000)
//   --seed <s>             dataset/workload seed (default 5)
//   --short --json <path>  as in every bench binary

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"

namespace wnrs {
namespace bench {
namespace {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = self-spawn an in-process server
  double rate = 0.0;  // fixed offered rate; 0 = calibrated sweep
  size_t connections = 2;
  size_t duration_ms = 0;  // 0 = mode default
  size_t timeout_ms = 200;
  size_t max_queue = 64;
  size_t dataset_n = 0;  // 0 = mode default
  uint64_t seed = 5;
  bool short_mode = false;
  std::string json_path;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--connect <host:port>] [--rate <qps>]\n"
               "         [--connections <n>] [--duration-ms <ms>]\n"
               "         [--timeout-ms <ms>] [--max-queue <n>] [--n <n>]\n"
               "         [--seed <s>] [--short] [--json <path>]\n",
               argv0);
  return 2;
}

bool ParseLoadgenArgs(int argc, char** argv, LoadgenOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--short") {
      opts->short_mode = true;
    } else if (arg == "--connect" && has_value) {
      const std::string spec = argv[++i];
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) return false;
      opts->host = spec.substr(0, colon);
      opts->port = static_cast<uint16_t>(
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
      if (opts->port == 0) return false;
    } else if (arg == "--rate" && has_value) {
      opts->rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--connections" && has_value) {
      opts->connections = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--duration-ms" && has_value) {
      opts->duration_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--timeout-ms" && has_value) {
      opts->timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-queue" && has_value) {
      opts->max_queue = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--n" && has_value) {
      opts->dataset_n = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && has_value) {
      opts->seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--json" && has_value) {
      opts->json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (opts->connections == 0) opts->connections = 1;
  if (opts->duration_ms == 0) opts->duration_ms = opts->short_mode ? 800 : 4000;
  if (opts->dataset_n == 0) opts->dataset_n = opts->short_mode ? 2000 : 10000;
  return true;
}

/// Per-connection tallies; merged across connections per config.
struct ConnResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t deadline_miss = 0;
  uint64_t admission_reject = 0;
  uint64_t other_error = 0;
  uint64_t io_errors = 0;
  std::vector<uint64_t> latencies_us;  // OK responses only
};

void Accumulate(ConnResult* into, ConnResult&& from) {
  into->sent += from.sent;
  into->ok += from.ok;
  into->deadline_miss += from.deadline_miss;
  into->admission_reject += from.admission_reject;
  into->other_error += from.other_error;
  into->io_errors += from.io_errors;
  into->latencies_us.insert(into->latencies_us.end(),
                            from.latencies_us.begin(),
                            from.latencies_us.end());
}

void Record(ConnResult* result, const Status& status, uint64_t latency_us) {
  switch (status.code()) {
    case StatusCode::kOk:
      ++result->ok;
      result->latencies_us.push_back(latency_us);
      break;
    case StatusCode::kDeadlineExceeded:
      ++result->deadline_miss;
      break;
    case StatusCode::kResourceExhausted:
      ++result->admission_reject;
      break;
    default:
      ++result->other_error;
      break;
  }
}

/// The serve bench's mixed request stream, with one twist: the kinds that
/// ignore the why-not customer get their query point jittered so not every
/// frame lands in the scheduler's same-q batching fast path (the workload
/// has only ~15 distinct points). The Modify* kinds keep the exact (q, c)
/// pair because their validity depends on c being a why-not customer of q.
serve::WhyNotRequest MakeLoadRequest(
    const std::vector<WhyNotWorkloadQuery>& workload, size_t i,
    size_t timeout_ms, std::mt19937_64* rng) {
  static constexpr serve::RequestKind kKinds[] = {
      serve::RequestKind::kReverseSkyline,
      serve::RequestKind::kModifyWhyNot,
      serve::RequestKind::kModifyBoth,
      serve::RequestKind::kSafeRegion,
  };
  const WhyNotWorkloadQuery& wq = workload[i % workload.size()];
  serve::WhyNotRequest request;
  request.kind = kKinds[i % (sizeof(kKinds) / sizeof(kKinds[0]))];
  request.q = wq.q;
  request.c = wq.why_not_index;
  if (request.kind == serve::RequestKind::kReverseSkyline ||
      request.kind == serve::RequestKind::kSafeRegion) {
    std::uniform_real_distribution<double> jitter(0.98, 1.02);
    for (size_t d = 0; d < request.q.dims(); ++d) request.q[d] *= jitter(*rng);
  }
  if (timeout_ms > 0) {
    request.timeout = std::chrono::milliseconds(timeout_ms);
  }
  return request;
}

/// Closed-loop calibration: depth-1 Call per connection until `stop_at`.
ConnResult ClosedLoopConn(const LoadgenOptions& opts, uint16_t port,
                          const std::vector<WhyNotWorkloadQuery>& workload,
                          size_t conn_index,
                          std::chrono::steady_clock::time_point stop_at) {
  ConnResult result;
  auto client = net::WnrsClient::Connect(opts.host, port);
  if (!client.ok()) {
    result.io_errors = 1;
    return result;
  }
  std::mt19937_64 rng(opts.seed * 1000003 + conn_index);
  size_t i = conn_index;  // offset so connections don't run in lockstep
  while (std::chrono::steady_clock::now() < stop_at) {
    const auto begin = std::chrono::steady_clock::now();
    auto response = client.value()->Call(
        MakeLoadRequest(workload, i, opts.timeout_ms, &rng));
    ++result.sent;
    i += opts.connections;
    if (!response.ok()) {
      ++result.io_errors;
      break;
    }
    const uint64_t us =
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - begin)
                                  .count());
    Record(&result, response.value().status, us);
  }
  return result;
}

/// One open-loop connection: the sender paces sends along a fixed schedule
/// (catching up without re-planning when it falls behind), the reader drains
/// responses until the server's EOF after FinishSending. Latency is measured
/// from the scheduled send time, so sender lag and queueing both count.
ConnResult OpenLoopConn(const LoadgenOptions& opts, uint16_t port,
                        const std::vector<WhyNotWorkloadQuery>& workload,
                        size_t conn_index, double rate_per_conn,
                        std::chrono::milliseconds duration) {
  ConnResult result;
  auto client = net::WnrsClient::Connect(opts.host, port);
  if (!client.ok()) {
    result.io_errors = 1;
    return result;
  }
  const size_t n_sends = static_cast<size_t>(
      rate_per_conn * std::chrono::duration<double>(duration).count());
  if (n_sends == 0) return result;
  const double interval_us = 1e6 / rate_per_conn;
  std::vector<std::chrono::steady_clock::time_point> scheduled(n_sends);
  const auto start =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  for (size_t i = 0; i < n_sends; ++i) {
    scheduled[i] = start + std::chrono::microseconds(
                               static_cast<uint64_t>(i * interval_us));
  }

  uint64_t responses = 0;
  std::thread reader([&result, &responses, &scheduled, &client, n_sends] {
    while (true) {
      auto frame = client.value()->Receive();
      if (!frame.ok()) break;  // server EOF after the last owed response
      const auto recv_time = std::chrono::steady_clock::now();
      ++responses;
      const uint64_t id = frame.value().request_id;
      if (id == 0 || id > n_sends) {
        ++result.other_error;
        continue;
      }
      const uint64_t us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              recv_time - scheduled[id - 1])
              .count());
      Record(&result, frame.value().response.status, us);
    }
  });

  std::mt19937_64 rng(opts.seed * 1000003 + conn_index);
  uint64_t sent = 0;
  for (size_t i = 0; i < n_sends; ++i) {
    std::this_thread::sleep_until(scheduled[i]);
    const Status status = client.value()->Send(
        i + 1, MakeLoadRequest(workload, conn_index + i * opts.connections,
                               opts.timeout_ms, &rng));
    if (!status.ok()) {
      ++result.io_errors;
      break;
    }
    ++sent;
  }
  client.value()->FinishSending();
  reader.join();
  result.sent = sent;
  // Every sent request is owed exactly one response; a shortfall means the
  // connection died under us.
  if (responses < sent) result.io_errors += sent - responses;
  return result;
}

/// One finished configuration, ready for JSON/console output.
struct LoadRecord {
  std::string config;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

uint64_t Percentile(const std::vector<uint64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

LoadRecord Summarize(const std::string& config, double offered_qps,
                     double wall_ms, ConnResult&& total) {
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  double mean_us = 0.0;
  for (const uint64_t us : total.latencies_us) {
    mean_us += static_cast<double>(us);
  }
  if (!total.latencies_us.empty()) {
    mean_us /= static_cast<double>(total.latencies_us.size());
  }
  const double wall_s = wall_ms / 1e3;
  LoadRecord record;
  record.config = config;
  record.wall_ms = wall_ms;
  record.counters = {
      {"offered_qps", offered_qps},
      {"sent", static_cast<double>(total.sent)},
      {"ok", static_cast<double>(total.ok)},
      {"goodput_qps",
       wall_s > 0.0 ? static_cast<double>(total.ok) / wall_s : 0.0},
      {"p50_us", static_cast<double>(Percentile(total.latencies_us, 50))},
      {"p95_us", static_cast<double>(Percentile(total.latencies_us, 95))},
      {"p99_us", static_cast<double>(Percentile(total.latencies_us, 99))},
      {"mean_us", mean_us},
      {"deadline_misses", static_cast<double>(total.deadline_miss)},
      {"admission_rejects", static_cast<double>(total.admission_reject)},
      {"errors", static_cast<double>(total.other_error + total.io_errors)},
  };
  return record;
}

double Counter(const LoadRecord& record, const char* name) {
  for (const auto& [key, value] : record.counters) {
    if (key == name) return value;
  }
  return 0.0;
}

/// Runs one config across all connections; `open_rate` 0 means closed loop.
LoadRecord RunConfig(const LoadgenOptions& opts, uint16_t port,
                     const std::vector<WhyNotWorkloadQuery>& workload,
                     const std::string& config, double open_rate) {
  const std::chrono::milliseconds duration(opts.duration_ms);
  WallTimer timer;
  std::vector<ConnResult> per_conn(opts.connections);
  std::vector<std::thread> threads;
  threads.reserve(opts.connections);
  const auto stop_at = std::chrono::steady_clock::now() + duration;
  for (size_t conn = 0; conn < opts.connections; ++conn) {
    threads.emplace_back([&, conn] {
      per_conn[conn] =
          open_rate > 0.0
              ? OpenLoopConn(opts, port, workload, conn,
                             open_rate / static_cast<double>(opts.connections),
                             duration)
              : ClosedLoopConn(opts, port, workload, conn, stop_at);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = timer.ElapsedMillis();
  ConnResult total;
  for (ConnResult& partial : per_conn) Accumulate(&total, std::move(partial));
  return Summarize(config, open_rate, wall_ms, std::move(total));
}

void PrintRecord(const LoadRecord& record) {
  std::fprintf(
      stderr,
      "%-10s offered %8.1f qps  goodput %8.1f qps  p50/p95/p99 "
      "%6.0f/%6.0f/%6.0f us  miss %.0f  reject %.0f  err %.0f\n",
      record.config.c_str(), Counter(record, "offered_qps"),
      Counter(record, "goodput_qps"), Counter(record, "p50_us"),
      Counter(record, "p95_us"), Counter(record, "p99_us"),
      Counter(record, "deadline_misses"), Counter(record, "admission_rejects"),
      Counter(record, "errors"));
}

bool WriteJson(const LoadgenOptions& opts,
               const std::vector<LoadRecord>& records) {
  std::string out = "{\n";
  out += StrFormat("  \"bench\": \"loadgen\",\n  \"short_mode\": %s,\n",
                   opts.short_mode ? "true" : "false");
  out += "  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const LoadRecord& record = records[i];
    out += StrFormat("    {\"config\": \"%s\", \"wall_ms\": %.3f",
                     record.config.c_str(), record.wall_ms);
    out += ", \"counters\": {";
    for (size_t c = 0; c < record.counters.size(); ++c) {
      out += StrFormat("%s\"%s\": %.3f", c == 0 ? "" : ", ",
                       record.counters[c].first.c_str(),
                       record.counters[c].second);
    }
    out += StrFormat("}}%s\n", i + 1 < records.size() ? "," : "");
  }
  out += "  ]\n}\n";
  std::ofstream file(opts.json_path, std::ios::trunc);
  file << out;
  return file.good();
}

int Run(int argc, char** argv) {
  LoadgenOptions opts;
  if (!ParseLoadgenArgs(argc, argv, &opts)) return Usage(argv[0]);

  // The dataset/engine pair is always built locally: it sources the query
  // workload, and in self-spawn mode it is also the served engine.
  WhyNotEngineOptions engine_options;
  auto engine = std::make_unique<WhyNotEngine>(
      GenerateCarDb(opts.dataset_n, opts.seed), engine_options);
  const std::vector<WhyNotWorkloadQuery> workload =
      MakeWorkload(*engine, 20000, opts.seed + 1);
  if (workload.empty()) {
    std::fprintf(stderr, "loadgen: workload sampling found no queries\n");
    return 1;
  }

  std::unique_ptr<net::WnrsServer> server;
  uint16_t port = opts.port;
  if (port == 0) {
    net::ServerOptions server_options;
    server_options.scheduler.max_queue_depth = opts.max_queue;
    auto started = net::WnrsServer::Start(engine.get(), server_options);
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: cannot self-spawn server: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(started).value();
    port = server->port();
    std::fprintf(stderr, "loadgen: self-spawned server on port %u\n",
                 static_cast<unsigned>(port));
  }

  std::vector<LoadRecord> records;
  records.push_back(RunConfig(opts, port, workload, "calibrate", 0.0));
  PrintRecord(records.back());
  const double capacity =
      std::max(10.0, Counter(records.back(), "goodput_qps"));
  const double calib_mean_us = Counter(records.back(), "mean_us");

  if (opts.rate > 0.0) {
    records.push_back(RunConfig(opts, port, workload, "fixed", opts.rate));
    PrintRecord(records.back());
  } else {
    records.push_back(
        RunConfig(opts, port, workload, "steady", 0.5 * capacity));
    PrintRecord(records.back());
    records.push_back(
        RunConfig(opts, port, workload, "overload", 4.0 * capacity));
    PrintRecord(records.back());
    // The latency budget the overload p99 is gated against: 8x the worst
    // admitted queue wait (a full admission queue of mean-cost requests).
    // A server that stops shedding (admission control or deadline checks
    // regressed) blows straight through it.
    LoadRecord budget;
    budget.config = "slo-budget";
    budget.counters = {
        {"p99_us", std::max(10'000.0, calib_mean_us *
                                          static_cast<double>(opts.max_queue) *
                                          8.0)}};
    std::fprintf(stderr, "slo-budget p99_us %.0f\n",
                 Counter(budget, "p99_us"));
    records.push_back(std::move(budget));
  }

  if (!opts.json_path.empty() && !WriteJson(opts, records)) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", opts.json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace wnrs

int main(int argc, char** argv) { return wnrs::bench::Run(argc, argv); }
