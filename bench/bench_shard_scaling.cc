// Throughput of batched reverse-skyline answering (the BBRS hot path)
// across shard counts: one single-core engine as the reference, then the
// sharded engine at 1/2/4/8 STR tiles over the same catalog, answering
// the identical query batch.
//
// The sharded rows win through the coordinator pool: per-shard
// candidate generation and per-candidate verification both fan out, and
// the verification probes are bbox-pruned to the shallow tile trees the
// membership window actually touches. Candidate generation itself is
// duplicated work, though — each tile confirms its whole tile-local
// global skyline, a superset of the global one — so on a single core
// the sharded rows run *slower* than one engine. The CI gate
// (`shard_scaling/shards-4/single-engine:wall_ms:1.0@4`) therefore
// asserts the 4-shard win only where the pool has >= 4 cores to fan
// out; the parity checksums are asserted everywhere.
//
// Every configuration folds its answers into a checksum and the run
// aborts on any mismatch with the single-engine reference: the rows are
// only comparable because they are provably computing the same thing.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "shard/sharded_engine.h"

namespace {

using namespace wnrs;
using namespace wnrs::bench;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

std::vector<Point> MakeQueries(const Dataset& data, size_t count,
                               uint64_t seed) {
  // Jittered data points, like the engine fuzz suites: queries land in
  // populated space so the reverse skylines are non-trivial. All
  // distinct, so no row is flattered by the RSL memo.
  Rng rng(seed);
  std::vector<Point> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point q = data.points[rng.NextUint64(data.points.size())];
    q[0] += rng.NextGaussian(0.0, 300.0);
    q[1] += rng.NextGaussian(0.0, 1500.0);
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Order-sensitive fold of one batch of answers: equal checksums across
/// configurations mean identical member ids in identical order for every
/// query.
template <typename EngineT>
uint64_t AnswerBatch(const EngineT& engine, const std::vector<Point>& queries) {
  uint64_t checksum = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<size_t> rsl = engine.ReverseSkyline(queries[qi]);
    checksum = checksum * 1099511628211ULL + qi;
    for (const size_t id : rsl) {
      checksum = checksum * 1099511628211ULL + id + 1;
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Shard scaling: batched BBRS across STR tile counts ===\n"
      "hardware threads available: %zu\n",
      ThreadPool::HardwareConcurrency());
  BenchReporter reporter("shard_scaling", args);

  const size_t n = args.short_mode ? 8000 : 20000;
  const size_t num_queries = args.short_mode ? 48 : 160;
  const Dataset data = MakeDataset("CarDB", n, 9300);
  const std::vector<Point> queries = MakeQueries(data, num_queries, 77);

  std::printf("\n--- batched reverse skyline (n=%zu, queries=%zu) ---\n", n,
              num_queries);
  std::printf("%-16s %-14s %-10s\n", "config", "time (ms)", "speedup");

  // Each configuration is measured exactly once, cold: the queries are
  // all distinct, so a second pass would answer from the RSL memo and
  // time the cache, not BBRS.
  uint64_t reference = 0;
  double single_ms = 0.0;
  {
    WhyNotEngine engine{Dataset(data)};
    reporter.Begin("single-engine");
    WallTimer timer;
    reference = AnswerBatch(engine, queries);
    single_ms = timer.ElapsedMillis();
    reporter.End();
    std::printf("%-16s %-14.1f %-10.2f\n", "single-engine", single_ms, 1.0);
  }

  for (const size_t shards : kShardCounts) {
    shard::ShardedEngineOptions options;
    options.num_shards = shards;
    const shard::ShardedEngine engine{Dataset(data), options};
    const std::string config = StrFormat("shards-%zu", shards);
    reporter.Begin(config);
    WallTimer timer;
    const uint64_t checksum = AnswerBatch(engine, queries);
    const double ms = timer.ElapsedMillis();
    reporter.End();
    WNRS_CHECK(checksum == reference)
        << "sharded answers diverged from the single engine at " << shards
        << " shards";
    std::printf("%-16s %-14.1f %-10.2f\n", config.c_str(), ms,
                single_ms / ms);
  }
  std::printf("parity: all configurations matched the single-engine "
              "checksum %llu\n",
              static_cast<unsigned long long>(reference));
  return reporter.Write() ? 0 : 1;
}
