// Reproduces every worked number of the paper's running example
// (Figs. 1-13 and the Section IV/V examples) and prints them next to the
// paper's values. All rows must show MATCH; this is the ground-truth
// anchor for the quality benches.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "data/generators.h"
#include "skyline/bnl.h"
#include "skyline/dynamic.h"

namespace {

using wnrs::Point;

std::string Names(const std::vector<size_t>& idx, const char* prefix) {
  std::string out;
  for (size_t i : idx) {
    if (!out.empty()) out += ",";
    out += prefix + std::to_string(i + 1);
  }
  return out;
}

void Row(const char* what, const std::string& paper,
         const std::string& measured) {
  std::printf("%-42s paper: %-28s measured: %-28s %s\n", what, paper.c_str(),
              measured.c_str(), paper == measured ? "MATCH" : "** MISMATCH **");
}

}  // namespace

int main(int argc, char** argv) {
  // The running example is a fixed 14-point dataset — short mode and full
  // mode run the identical workload; the flags exist so the CI harness can
  // invoke every bench uniformly.
  const wnrs::bench::BenchArgs args = wnrs::bench::ParseBenchArgs(argc, argv);
  wnrs::bench::BenchReporter reporter("paper_example", args);
  std::printf("=== Paper running example (Fig. 1(a), q = (8.5K, 55K)) ===\n");
  const wnrs::Dataset data = wnrs::PaperExampleDataset();
  const Point q = wnrs::PaperExampleQuery();
  wnrs::WhyNotEngine engine{wnrs::PaperExampleDataset()};
  reporter.Begin("example");

  Row("SK (Fig. 1b)", "p1,p3,p5",
      Names(wnrs::SkylineIndicesBnl(data.points), "p"));
  Row("DSL(q) (Fig. 2a)", "p2,p6",
      Names(wnrs::DynamicSkylineIndices(data.points, q), "p"));
  Row("DSL(c2) (Fig. 2b)", "p1,p4,p6",
      Names(wnrs::DynamicSkylineIndices(data.points, data.points[1], 1),
            "p"));
  Row("RSL(q) (Sec. V-B)", "c2,c3,c4,c6,c8",
      Names(engine.ReverseSkyline(q), "c"));

  const wnrs::WhyNotExplanation why = engine.Explain(0, q);
  std::vector<size_t> culprits(why.culprits.begin(), why.culprits.end());
  Row("window_query(c1,q) (Fig. 4b)", "p2", Names(culprits, "p"));

  const wnrs::MwpResult mwp = engine.ModifyWhyNot(0, q);
  std::string mwp_str;
  for (const auto& c : mwp.candidates) mwp_str += c.point.ToString();
  Row("MWP c1* (Sec. IV)", "(8, 30)(5, 48.5)", mwp_str);

  const wnrs::MqpResult mqp = engine.ModifyQuery(0, q);
  std::string mqp_str;
  for (const auto& c : mqp.candidates) mqp_str += c.point.ToString();
  Row("MQP q* (Sec. V-A)", "(7.5, 55)(8.5, 42)", mqp_str);

  const wnrs::SafeRegionResult& sr = engine.SafeRegion(q);
  {
    std::string s;
    auto rects = sr.region.rects();
    std::sort(rects.begin(), rects.end(),
              [](const wnrs::Rectangle& a, const wnrs::Rectangle& b) {
                return a.hi() < b.hi();
              });
    for (const auto& r : rects) s += r.ToString();
    std::printf("%-42s paper: %s\n%-42s ours:  %s\n", "SR(q) (Sec. V-B)",
                "[(7.5,50),(10,58)][(7.5,50),(12.5,54)]", "",
                s.c_str());
    std::printf(
        "%-42s (documented: ours is a strict, still-safe superset of the\n"
        "%-42s  paper's published region -- see EXPERIMENTS.md)\n",
        "", "");
  }

  const wnrs::MwqResult mwq_c7 = engine.ModifyBoth(6, q);
  Row("MWQ(c7) case C1 q* (Sec. V-B)", "(8.5, 60)",
      mwq_c7.overlap ? mwq_c7.query_candidates.front().point.ToString()
                     : std::string("<case C2>"));

  const wnrs::MwqResult mwq_c1 = engine.ModifyBoth(0, q);
  Row("MWQ(c1) case C2 q* (Sec. V-B)", "(7.5, 50)",
      !mwq_c1.overlap ? mwq_c1.query_candidates.front().point.ToString()
                      : std::string("<case C1>"));
  std::printf(
      "MWQ(c1) case C2 c1* candidates (the paper prints \"c1*(50K, 46)\" — a\n"
      "transcription typo for (5K, 46K), which we reproduce below):\n");
  for (const auto& c : mwq_c1.why_not_candidates) {
    std::printf("  c1* = %-18s cost %.6f\n", c.point.ToString().c_str(),
                c.cost);
  }
  reporter.End();
  return reporter.Write() ? 0 : 1;
}
