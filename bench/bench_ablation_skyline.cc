// Ablation micro-benchmarks for the skyline substrate: BNL vs BBS across
// distributions, dynamic skylines, and the DDR̄ rectangle construction
// that dominates safe-region building.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/transform.h"
#include "index/bulk_load.h"
#include "skyline/bbs.h"
#include "skyline/bnl.h"
#include "skyline/ddr.h"
#include "skyline/dnc.h"
#include "skyline/sfs.h"
#include "skyline/dynamic.h"

namespace wnrs {
namespace {

Dataset MakeData(int dist, size_t n) {
  switch (dist) {
    case 0:
      return GenerateUniform(n, 2, 42);
    case 1:
      return GenerateCorrelated(n, 2, 42);
    case 2:
      return GenerateAnticorrelated(n, 2, 42);
    default:
      return GenerateCarDb(n, 42);
  }
}

void BM_SkylineBnl(benchmark::State& state) {
  const Dataset ds =
      MakeData(static_cast<int>(state.range(0)), static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineIndicesBnl(ds.points).size());
  }
}
BENCHMARK(BM_SkylineBnl)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({2, 20000})
    ->Unit(benchmark::kMillisecond);

void BM_SkylineSfs(benchmark::State& state) {
  const Dataset ds =
      MakeData(static_cast<int>(state.range(0)), static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineIndicesSfs(ds.points).size());
  }
}
BENCHMARK(BM_SkylineSfs)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({2, 20000})
    ->Unit(benchmark::kMillisecond);

void BM_SkylineDnc(benchmark::State& state) {
  const Dataset ds =
      MakeData(static_cast<int>(state.range(0)), static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineIndicesDnc(ds.points).size());
  }
}
BENCHMARK(BM_SkylineDnc)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({2, 20000})
    ->Args({2, 200000})
    ->Unit(benchmark::kMillisecond);

void BM_SkylineBbs(benchmark::State& state) {
  const Dataset ds =
      MakeData(static_cast<int>(state.range(0)), static_cast<size_t>(state.range(1)));
  RStarTree tree = BulkLoadPoints(2, ds.points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BbsSkyline(tree).size());
  }
}
BENCHMARK(BM_SkylineBbs)
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Args({2, 20000})
    ->Args({0, 200000})
    ->Unit(benchmark::kMillisecond);

void BM_DynamicSkylineBbs(benchmark::State& state) {
  const Dataset ds = MakeData(3, static_cast<size_t>(state.range(0)));
  RStarTree tree = BulkLoadPoints(2, ds.points);
  Rng rng(5);
  for (auto _ : state) {
    const size_t c = rng.NextUint64(ds.points.size());
    benchmark::DoNotOptimize(
        BbsDynamicSkyline(tree, ds.points[c],
                          static_cast<RStarTree::Id>(c))
            .size());
  }
}
BENCHMARK(BM_DynamicSkylineBbs)->Arg(20000)->Arg(100000)->Arg(200000);

void BM_DynamicSkylineBrute(benchmark::State& state) {
  const Dataset ds = MakeData(3, static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    const size_t c = rng.NextUint64(ds.points.size());
    benchmark::DoNotOptimize(
        DynamicSkylineIndices(ds.points, ds.points[c], c).size());
  }
}
BENCHMARK(BM_DynamicSkylineBrute)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_AntiDominanceRegionBuild(benchmark::State& state) {
  const Dataset ds = MakeData(3, 100000);
  RStarTree tree = BulkLoadPoints(2, ds.points);
  const Rectangle universe = ds.Bounds();
  Rng rng(6);
  for (auto _ : state) {
    const size_t c_idx = rng.NextUint64(ds.points.size());
    const Point& c = ds.points[c_idx];
    const std::vector<RStarTree::Id> dsl = BbsDynamicSkyline(
        tree, c, static_cast<RStarTree::Id>(c_idx));
    std::vector<Point> dsl_t;
    dsl_t.reserve(dsl.size());
    for (RStarTree::Id id : dsl) {
      dsl_t.push_back(
          ToDistanceSpace(ds.points[static_cast<size_t>(id)], c));
    }
    benchmark::DoNotOptimize(
        AntiDominanceRegion(c, std::move(dsl_t), MaxExtents(c, universe))
            .size());
  }
}
BENCHMARK(BM_AntiDominanceRegionBuild);

}  // namespace
}  // namespace wnrs

BENCHMARK_MAIN();
