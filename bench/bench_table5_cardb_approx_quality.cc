// Reproduces Table V: quality of results in CarDB datasets including
// Approx-MWQ (k = 10 for 100K, k = 20 for 200K, as in the paper).
//
// Expected shapes: Approx-MWQ occasionally worse than exact MWQ (its safe
// region is a subset) but never worse than MWP.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wnrs;
  using namespace wnrs::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf(
      "=== Table V: CarDB quality incl. Approx-MWQ ===\n");
  BenchReporter reporter("table5_cardb_approx_quality", args);
  struct Config {
    size_t n;
    size_t k;
  };
  const std::vector<Config> configs =
      args.short_mode ? std::vector<Config>{{20000, 10}}
                      : std::vector<Config>{{100000, 10}, {200000, 20}};
  const size_t max_rsl = args.short_mode ? 8 : 15;
  for (const Config& config : configs) {
    const std::string label =
        StrFormat("CarDB-%zuK-k%zu", config.n / 1000, config.k);
    reporter.Begin(label);
    WallTimer timer;
    WhyNotEngine engine(MakeDataset("CarDB", config.n, 1000 + config.n));
    engine.PrecomputeApproxDsls(config.k);
    const auto workload =
        MakeWorkload(engine, 4000, 77 + config.n, 1, max_rsl);
    const auto rows = EvaluateQuality(engine, workload, true);
    PrintQualityTable(label, rows, config.k);
    PrintShapeChecks(rows);
    size_t approx_no_worse_than_mwp = 0;
    for (const QualityRow& row : rows) {
      if (row.approx_mwq.has_value() &&
          *row.approx_mwq <= row.mwp + 1e-9) {
        ++approx_no_worse_than_mwp;
      }
    }
    std::printf("shape: Approx-MWQ <= MWP in %zu/%zu rows\n",
                approx_no_worse_than_mwp, rows.size());
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
    reporter.End();
  }
  return reporter.Write() ? 0 : 1;
}
