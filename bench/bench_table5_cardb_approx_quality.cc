// Reproduces Table V: quality of results in CarDB datasets including
// Approx-MWQ (k = 10 for 100K, k = 20 for 200K, as in the paper).
//
// Expected shapes: Approx-MWQ occasionally worse than exact MWQ (its safe
// region is a subset) but never worse than MWP.

#include "bench_util.h"

int main() {
  using namespace wnrs;
  using namespace wnrs::bench;
  std::printf(
      "=== Table V: CarDB quality incl. Approx-MWQ ===\n");
  const struct {
    size_t n;
    size_t k;
    const char* label;
  } kConfigs[] = {
      {100000, 10, "(a) CarDB-100K, k=10"},
      {200000, 20, "(b) CarDB-200K, k=20"},
  };
  for (const auto& config : kConfigs) {
    WallTimer timer;
    WhyNotEngine engine(MakeDataset("CarDB", config.n, 1000 + config.n));
    engine.PrecomputeApproxDsls(config.k);
    const auto workload = MakeWorkload(engine, 4000, 77 + config.n);
    const auto rows = EvaluateQuality(engine, workload, true);
    PrintQualityTable(config.label, rows, config.k);
    PrintShapeChecks(rows);
    size_t approx_no_worse_than_mwp = 0;
    for (const QualityRow& row : rows) {
      if (row.approx_mwq.has_value() &&
          *row.approx_mwq <= row.mwp + 1e-9) {
        ++approx_no_worse_than_mwp;
      }
    }
    std::printf("shape: Approx-MWQ <= MWP in %zu/%zu rows\n",
                approx_no_worse_than_mwp, rows.size());
    std::printf("(%zu queries, %.1fs)\n", rows.size(),
                timer.ElapsedSeconds());
  }
  return 0;
}
