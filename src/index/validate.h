#ifndef WNRS_INDEX_VALIDATE_H_
#define WNRS_INDEX_VALIDATE_H_

#include "common/status.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"

namespace wnrs {

/// Deep structural validators for the index layer. Each returns
/// Status::Ok() or a Status::Internal whose message names the violated
/// invariant (in [brackets]) plus enough context to locate it — the
/// contract the seeded-corruption tests pin. They are read-only, walk the
/// whole structure (O(nodes)), and are meant for tests, fuzzers, and the
/// engine's WhyNotEngineOptions::paranoid_checks mode — not for hot
/// paths.
///
/// Invariants checked by ValidateTree, beyond RStarTree::CheckInvariants:
///   [mbr-containment]   every child entry MBR lies inside (and their
///                       union exactly equals) the parent entry MBR
///   [fanout-bounds]     min_entries <= |entries| <= max_entries for
///                       every non-root node; an internal root has >= 2
///   [leaf-depth]        all leaves at one depth, equal to height() - 1
///   [parent-links]      every node's parent pointer is its real parent
///   [entry-count]       leaf data entries sum to size()
Status ValidateTree(const RStarTree& tree);

/// Packed-image invariants: arena/slab bounds, child-index validity and
/// reachability ([slab-bounds], [child-links]), MBR containment between
/// internal entries and the nodes they reference ([mbr-containment]),
/// uniform leaf depth ([leaf-depth]), and data-entry count ([entry-count]).
Status ValidatePacked(const PackedRTree& packed);

/// Structural equality of a frozen image with its source tree: same
/// pre-order node sequence, leaf flags, entry counts, entry MBRs
/// (bit-identical doubles), leaf data ids, and child wiring
/// ([packed-parity]). This is the invariant the engine's bit-identical
/// packed read path rests on; a packed image frozen from any other tree
/// state (a "mismatched slab") must be rejected.
Status ValidatePackedMatchesDynamic(const PackedRTree& packed,
                                    const RStarTree& tree);

}  // namespace wnrs

#endif  // WNRS_INDEX_VALIDATE_H_
