#ifndef WNRS_INDEX_PACKED_RTREE_H_
#define WNRS_INDEX_PACKED_RTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "geometry/kernels.h"
#include "geometry/rectangle.h"
#include "index/rtree.h"

namespace wnrs {

namespace storage {
class PackedSlabIO;
}  // namespace storage

/// Arena-backed, immutable flat image of an RStarTree — the read-path
/// half of the engine's copy-on-write split. The dynamic pointer tree
/// stays the mutation path; at snapshot-publish time the engine freezes
/// it into this packed form and every query algorithm (BBS, BBRS, window
/// queries) traverses the frozen copy instead.
///
/// Layout: all nodes live contiguously in one arena and address their
/// children by uint32_t index, so a traversal touches a few dense arrays
/// instead of pointer-chasing heap nodes. Entry MBRs are stored as
/// structure-of-arrays coordinate *planes*: one contiguous double plane
/// per lower coordinate, then one per upper ([lo_0 of every entry][lo_1
/// of every entry]...[hi_0 of every entry]...), entries of one node
/// occupying a contiguous index range of every plane. Each plane is
/// padded to KernelPad(num_entries()) with quiet NaNs so the SIMD batch
/// kernels in geometry/kernels.h can stream full-width vectors over a
/// node's entries without tail masking — output lanes past a node's
/// entry count are scratch the traversals never read. Child links and
/// leaf data ids share one int64_t slab (disambiguated by the node's
/// is_leaf flag).
///
/// Freeze() is structure-preserving: node contents and entry order match
/// the source tree exactly, so a packed traversal makes the same pruning
/// decisions, visits the same nodes in the same order, and reports the
/// same node-read counts as the dynamic traversal it replaces — the
/// packed/dynamic parity tests pin this bit for bit.
///
/// The three slabs are accessed through const views so the backing can
/// be either owned vectors (Freeze, buffered slab load) or a read-only
/// file mapping held alive by `backing_` (storage::OpenPackedMapped) —
/// traversals are byte-for-byte the same code either way.
///
/// Move-only, like RStarTree. Immutable after Freeze, so concurrent
/// reads need no synchronization; the node-read counter is atomic.
class PackedRTree {
 public:
  using Id = RStarTree::Id;

  /// Sentinel child index ("no node"); also the data-entry marker in the
  /// packed traversal heaps. Freeze rejects trees with more than
  /// kNoNode - 1 nodes so a stored child index can never collide with
  /// the sentinel or truncate (child links ride in the int64_t refs
  /// slab and narrow to uint32_t on read).
  static constexpr uint32_t kNoNode = UINT32_MAX;

  /// One arena node: a [first_entry, first_entry + entry_count) slice of
  /// the entry slabs. Trivially copyable with a fixed 12-byte layout —
  /// the on-disk slab format (storage/packed_slab.h) stores the node
  /// arena as these raw structs and maps them back untranslated.
  struct Node {
    uint32_t first_entry = 0;
    uint32_t entry_count = 0;
    uint32_t is_leaf = 1;
  };
  static_assert(sizeof(Node) == 12 && std::is_trivially_copyable_v<Node>,
                "Node is memcpy'd into the on-disk slab format");

  /// Query-side traversal statistics (mirrors RStarTree::Stats).
  struct Stats {
    uint64_t node_reads = 0;
  };

  /// Freezes a packed image of `tree`. O(number of entries); the cost is
  /// recorded in the packed.freezes / packed.freeze_ns metrics so the
  /// mutation path's publish overhead stays observable.
  [[nodiscard]] static PackedRTree Freeze(const RStarTree& tree);

  PackedRTree(PackedRTree&& other) noexcept { *this = std::move(other); }
  PackedRTree& operator=(PackedRTree&& other) noexcept;
  PackedRTree(const PackedRTree&) = delete;
  PackedRTree& operator=(const PackedRTree&) = delete;

  size_t dims() const { return dims_; }
  /// Number of data entries (== source tree size()).
  size_t size() const { return size_; }
  size_t height() const { return height_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_entries() const { return num_entries_; }
  /// Largest entry_count over all nodes — the batch-kernel scratch bound
  /// (size per-node scratch with KernelPad(max_node_entries())).
  size_t max_node_entries() const { return max_node_entries_; }
  size_t plane_stride() const { return plane_stride_; }
  /// True when the slabs alias a read-only file mapping instead of owned
  /// memory (storage::OpenPackedMapped).
  bool is_mapped() const { return backing_ != nullptr; }

  /// Root node index; index 0 always exists (an empty tree freezes to a
  /// single empty leaf, like the dynamic root).
  uint32_t root() const { return 0; }

  const Node& node(uint32_t n) const { return nodes_[n]; }

  /// SoA view of the entry coordinate planes for the batch kernels.
  SoaPlanes planes() const { return {planes_, plane_stride_, dims_}; }

  /// Raw slab views for serialization (storage/packed_slab.cc).
  const Node* nodes_data() const { return nodes_; }
  const double* planes_data() const { return planes_; }
  const int64_t* refs_data() const { return refs_; }

  /// Coordinate j of entry e's lower / upper MBR corner.
  double entry_lo(uint32_t e, size_t j) const {
    return planes_[j * plane_stride_ + e];
  }
  double entry_hi(uint32_t e, size_t j) const {
    return planes_[(dims_ + j) * plane_stride_ + e];
  }

  /// Child node index of an internal entry. Checked against the node
  /// count: the refs slab is shared with 64-bit data ids, so a stale or
  /// corrupt ref must fail here rather than truncate into a plausible
  /// index.
  uint32_t entry_child(uint32_t e) const {
    const int64_t ref = refs_[e];
    WNRS_CHECK(ref >= 0 && static_cast<uint64_t>(ref) < num_nodes_);
    return static_cast<uint32_t>(ref);
  }

  /// Data id of a leaf entry.
  Id entry_id(uint32_t e) const { return refs_[e]; }

  /// Materializes entry `e`'s MBR as a Rectangle (cold paths only).
  Rectangle EntryRect(uint32_t e) const;

  /// Counts one node read, mirroring RStarTree::CountNodeRead: the local
  /// counter and the shared rtree.node_reads metric (so engine-level
  /// node-read totals stay identical whichever path served the query)
  /// plus packed.node_reads (so the packed path's share is observable).
  void CountNodeRead() const {
    node_reads_.fetch_add(1, std::memory_order_relaxed);
    MetricAdd(CounterId::kRTreeNodeReads);
    MetricAdd(CounterId::kPackedNodeReads);
  }

  Stats stats() const {
    Stats s;
    s.node_reads = node_reads_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() { node_reads_.store(0, std::memory_order_relaxed); }

  /// Ids of all entries intersecting `window` (closed semantics),
  /// ascending — same contract as RStarTree::RangeQueryIds.
  std::vector<Id> RangeQueryIds(const Rectangle& window) const;

  /// Structural self-check for tests: slab bounds, child-index and
  /// node-count validity, plane padding, MBR containment, uniform leaf
  /// depth, and entry count.
  Status CheckInvariants() const;

 private:
  friend class storage::PackedSlabIO;

  PackedRTree() = default;

  /// Points the slab views at the owned vectors. Every mutation of the
  /// vectors must re-run this before the views are read.
  void SetOwnedViews() {
    nodes_ = nodes_vec_.data();
    planes_ = planes_vec_.data();
    refs_ = refs_vec_.data();
    num_nodes_ = nodes_vec_.size();
    num_entries_ = refs_vec_.size();
  }

  size_t dims_ = 0;
  size_t size_ = 0;
  size_t height_ = 1;
  size_t max_node_entries_ = 0;
  size_t plane_stride_ = 0;

  /// Slab views — the only pointers the read path touches. They alias
  /// either the owned vectors below or the mapped region in backing_.
  const Node* nodes_ = nullptr;
  const double* planes_ = nullptr;
  const int64_t* refs_ = nullptr;
  size_t num_nodes_ = 0;
  size_t num_entries_ = 0;

  /// Owned backing (Freeze / buffered slab load). Empty when mapped.
  std::vector<Node> nodes_vec_;
  /// SoA coordinate planes: 2*dims_ planes of plane_stride_ doubles each
  /// (d lo planes then d hi planes), NaN-padded past num_entries().
  std::vector<double> planes_vec_;
  /// Child node index (internal entries) or data id (leaf entries).
  std::vector<int64_t> refs_vec_;

  /// Keeps a file mapping alive for the lifetime of the views (type-
  /// erased so this header does not depend on the storage layer).
  std::shared_ptr<const void> backing_;

  mutable std::atomic<uint64_t> node_reads_{0};
};

}  // namespace wnrs

#endif  // WNRS_INDEX_PACKED_RTREE_H_
