#ifndef WNRS_INDEX_PACKED_RTREE_H_
#define WNRS_INDEX_PACKED_RTREE_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "geometry/rectangle.h"
#include "index/rtree.h"

namespace wnrs {

/// Arena-backed, immutable flat image of an RStarTree — the read-path
/// half of the engine's copy-on-write split. The dynamic pointer tree
/// stays the mutation path; at snapshot-publish time the engine freezes
/// it into this packed form and every query algorithm (BBS, BBRS, window
/// queries) traverses the frozen copy instead.
///
/// Layout: all nodes live contiguously in one arena and address their
/// children by uint32_t index, so a traversal touches a few dense arrays
/// instead of pointer-chasing heap nodes. Entry MBRs are a single flat
/// double slab in min-max-interleaved order ([lo0, hi0, lo1, hi1, ...]
/// per entry, entries of one node adjacent), which is the layout the
/// geometry/kernels.h batch kernels consume directly. Child links and
/// leaf data ids share one int64_t slab (disambiguated by the node's
/// is_leaf flag).
///
/// Freeze() is structure-preserving: node contents and entry order match
/// the source tree exactly, so a packed traversal makes the same pruning
/// decisions, visits the same nodes in the same order, and reports the
/// same node-read counts as the dynamic traversal it replaces — the
/// packed/dynamic parity tests pin this bit for bit.
///
/// Move-only, like RStarTree. Immutable after Freeze, so concurrent
/// reads need no synchronization; the node-read counter is atomic.
class PackedRTree {
 public:
  using Id = RStarTree::Id;

  /// Sentinel child index ("no node"); also the data-entry marker in the
  /// packed traversal heaps.
  static constexpr uint32_t kNoNode = UINT32_MAX;

  /// One arena node: a [first_entry, first_entry + entry_count) slice of
  /// the entry slabs.
  struct Node {
    uint32_t first_entry = 0;
    uint32_t entry_count = 0;
    uint32_t is_leaf = 1;
  };

  /// Query-side traversal statistics (mirrors RStarTree::Stats).
  struct Stats {
    uint64_t node_reads = 0;
  };

  /// Freezes a packed image of `tree`. O(number of entries); the cost is
  /// recorded in the packed.freezes / packed.freeze_ns metrics so the
  /// mutation path's publish overhead stays observable.
  [[nodiscard]] static PackedRTree Freeze(const RStarTree& tree);

  PackedRTree(PackedRTree&& other) noexcept { *this = std::move(other); }
  PackedRTree& operator=(PackedRTree&& other) noexcept;
  PackedRTree(const PackedRTree&) = delete;
  PackedRTree& operator=(const PackedRTree&) = delete;

  size_t dims() const { return dims_; }
  /// Number of data entries (== source tree size()).
  size_t size() const { return size_; }
  size_t height() const { return height_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_entries() const { return refs_.size(); }

  /// Root node index; index 0 always exists (an empty tree freezes to a
  /// single empty leaf, like the dynamic root).
  uint32_t root() const { return 0; }

  const Node& node(uint32_t n) const { return nodes_[n]; }

  /// MBR span of entry `e`: 2*dims() doubles, min-max interleaved.
  const double* entry_mbr(uint32_t e) const {
    return mbrs_.data() + static_cast<size_t>(e) * 2 * dims_;
  }

  /// Child node index of an internal entry.
  uint32_t entry_child(uint32_t e) const {
    return static_cast<uint32_t>(refs_[e]);
  }

  /// Data id of a leaf entry.
  Id entry_id(uint32_t e) const { return refs_[e]; }

  /// Materializes entry `e`'s MBR as a Rectangle (cold paths only).
  Rectangle EntryRect(uint32_t e) const;

  /// Counts one node read, mirroring RStarTree::CountNodeRead: the local
  /// counter and the shared rtree.node_reads metric (so engine-level
  /// node-read totals stay identical whichever path served the query)
  /// plus packed.node_reads (so the packed path's share is observable).
  void CountNodeRead() const {
    node_reads_.fetch_add(1, std::memory_order_relaxed);
    MetricAdd(CounterId::kRTreeNodeReads);
    MetricAdd(CounterId::kPackedNodeReads);
  }

  Stats stats() const {
    Stats s;
    s.node_reads = node_reads_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() { node_reads_.store(0, std::memory_order_relaxed); }

  /// Ids of all entries intersecting `window` (closed semantics),
  /// ascending — same contract as RStarTree::RangeQueryIds.
  std::vector<Id> RangeQueryIds(const Rectangle& window) const;

  /// Structural self-check for tests: slab bounds, child-index validity,
  /// MBR containment, uniform leaf depth, and entry count.
  Status CheckInvariants() const;

 private:
  PackedRTree() = default;

  size_t dims_ = 0;
  size_t size_ = 0;
  size_t height_ = 1;
  std::vector<Node> nodes_;
  /// 2*dims_ doubles per entry, min-max interleaved.
  std::vector<double> mbrs_;
  /// Child node index (internal entries) or data id (leaf entries).
  std::vector<int64_t> refs_;
  mutable std::atomic<uint64_t> node_reads_{0};
};

}  // namespace wnrs

#endif  // WNRS_INDEX_PACKED_RTREE_H_
