#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace wnrs {

namespace {

// Entries are stored as (mbr, pointer-or-id); the byte model charges two
// corner points plus one 8-byte reference per entry and a small node
// header, matching how the paper's XXL R-tree pages would be laid out.
size_t ComputeMaxEntries(size_t dims, size_t page_size_bytes) {
  const size_t entry_bytes = dims * 2 * sizeof(double) + sizeof(int64_t);
  const size_t header_bytes = 16;
  const size_t budget =
      page_size_bytes > header_bytes ? page_size_bytes - header_bytes : 0;
  return std::max<size_t>(4, budget / entry_bytes);
}

}  // namespace

RStarTree::RStarTree(size_t dims, RTreeOptions options)
    : dims_(dims), options_(options) {
  WNRS_CHECK(dims >= 1);
  max_entries_ = ComputeMaxEntries(dims, options_.page_size_bytes);
  min_entries_ = std::max<size_t>(
      2, static_cast<size_t>(max_entries_ * options_.min_fill_ratio));
  WNRS_CHECK(min_entries_ * 2 <= max_entries_ + 1);
  root_ = new Node();
}

RStarTree::~RStarTree() { FreeSubtree(root_); }

RStarTree::RStarTree(RStarTree&& other) noexcept { *this = std::move(other); }

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this == &other) return *this;
  FreeSubtree(root_);
  dims_ = other.dims_;
  options_ = other.options_;
  max_entries_ = other.max_entries_;
  min_entries_ = other.min_entries_;
  root_ = other.root_;
  size_ = other.size_;
  height_ = other.height_;
  node_reads_.store(other.node_reads_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  other.root_ = nullptr;
  other.size_ = 0;
  other.height_ = 1;
  return *this;
}

RStarTree RStarTree::Clone() const {
  RStarTree copy(dims_, options_);
  // Iterative deep copy (pairs of source node / destination node), so
  // cloning is stack-safe at any tree height.
  copy.FreeSubtree(copy.root_);
  copy.root_ = new Node();
  std::vector<std::pair<const Node*, Node*>> pending = {{root_, copy.root_}};
  while (!pending.empty()) {
    const auto [src, dst] = pending.back();
    pending.pop_back();
    dst->is_leaf = src->is_leaf;
    dst->entries = src->entries;
    if (!src->is_leaf) {
      for (Entry& e : dst->entries) {
        Node* child = new Node();
        child->parent = dst;
        pending.emplace_back(e.child, child);
        e.child = child;
      }
    }
  }
  copy.size_ = size_;
  copy.height_ = height_;
  return copy;
}

void RStarTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (Entry& e : node->entries) {
      FreeSubtree(e.child);
    }
  }
  delete node;
}

Rectangle RStarTree::NodeMbr(const Node& node) {
  WNRS_CHECK(!node.entries.empty());
  Rectangle mbr = node.entries.front().mbr;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    mbr = mbr.BoundingUnion(node.entries[i].mbr);
  }
  return mbr;
}

size_t RStarTree::LevelOf(const Node* node) const {
  size_t hops = 0;
  for (const Node* n = node; n->parent != nullptr; n = n->parent) ++hops;
  return (height_ - 1) - hops;
}

void RStarTree::Insert(const Point& p, Id id) {
  Insert(Rectangle::FromPoint(p), id);
}

void RStarTree::Insert(const Rectangle& r, Id id) {
  WNRS_CHECK(r.dims() == dims_);
  Entry entry;
  entry.mbr = r;
  entry.id = id;
  std::vector<bool> reinserted(height_, false);
  InsertAtLevel(std::move(entry), /*target_level=*/0, /*is_data_level=*/true,
                &reinserted);
  ++size_;
}

RStarTree::Node* RStarTree::ChooseSubtree(const Rectangle& r,
                                          size_t target_level) const {
  Node* node = root_;
  size_t level = height_ - 1;
  while (level > target_level) {
    WNRS_CHECK(!node->is_leaf);
    std::vector<Entry>& entries = node->entries;
    size_t best = 0;
    if (level - 1 == 0) {
      // Children are leaves: minimize overlap enlargement (R* rule),
      // breaking ties by area enlargement, then by area.
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_area_delta = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < entries.size(); ++i) {
        const Rectangle enlarged = entries[i].mbr.BoundingUnion(r);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += entries[i].mbr.OverlapVolume(entries[j].mbr);
          overlap_after += enlarged.OverlapVolume(entries[j].mbr);
        }
        const double overlap_delta = overlap_after - overlap_before;
        const double area = entries[i].mbr.Volume();
        const double area_delta = enlarged.Volume() - area;
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             (area_delta < best_area_delta ||
              (area_delta == best_area_delta && area < best_area)))) {
          best = i;
          best_overlap_delta = overlap_delta;
          best_area_delta = area_delta;
          best_area = area;
        }
      }
    } else {
      // Children are internal: minimize area enlargement, ties by area.
      double best_area_delta = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < entries.size(); ++i) {
        const double area = entries[i].mbr.Volume();
        const double area_delta =
            entries[i].mbr.BoundingUnion(r).Volume() - area;
        if (area_delta < best_area_delta ||
            (area_delta == best_area_delta && area < best_area)) {
          best = i;
          best_area_delta = area_delta;
          best_area = area;
        }
      }
    }
    node = entries[best].child;
    --level;
  }
  return node;
}

void RStarTree::InsertAtLevel(Entry entry, size_t target_level,
                              bool is_data_level,
                              std::vector<bool>* reinserted_at_level) {
  Node* node = ChooseSubtree(entry.mbr, target_level);
  if (!is_data_level) {
    WNRS_CHECK(entry.child != nullptr);
    entry.child->parent = node;
  }
  node->entries.push_back(std::move(entry));
  MetricAdd(CounterId::kRTreeNodeWrites);
  AdjustUpward(node);
  if (node->entries.size() > max_entries_) {
    OverflowTreatment(node, target_level, reinserted_at_level);
  }
}

void RStarTree::OverflowTreatment(Node* node, size_t level,
                                  std::vector<bool>* reinserted_at_level) {
  if (node != root_ && level < reinserted_at_level->size() &&
      !(*reinserted_at_level)[level]) {
    (*reinserted_at_level)[level] = true;
    Reinsert(node, level, reinserted_at_level);
  } else {
    SplitNode(node);
  }
}

void RStarTree::Reinsert(Node* node, size_t level,
                         std::vector<bool>* reinserted_at_level) {
  const Point center = NodeMbr(*node).Center();
  // Order entries by distance of their centers from the node center.
  std::vector<std::pair<double, size_t>> order(node->entries.size());
  for (size_t i = 0; i < node->entries.size(); ++i) {
    const Point c = node->entries[i].mbr.Center();
    order[i] = {c.L2Distance(center), i};
  }
  std::sort(order.begin(), order.end());

  size_t p = std::max<size_t>(
      1, static_cast<size_t>(max_entries_ * options_.reinsert_fraction));
  p = std::min(p, node->entries.size() - min_entries_);

  // Evict the p farthest entries; keep the rest in original relative order.
  std::vector<Entry> keep;
  std::vector<Entry> evicted;
  keep.reserve(node->entries.size() - p);
  evicted.reserve(p);
  std::vector<bool> evict_mask(node->entries.size(), false);
  for (size_t k = 0; k < p; ++k) {
    evict_mask[order[order.size() - 1 - k].second] = true;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (evict_mask[i]) {
      evicted.push_back(std::move(node->entries[i]));
    } else {
      keep.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(keep);
  MetricAdd(CounterId::kRTreeReinserts, evicted.size());
  MetricAdd(CounterId::kRTreeNodeWrites);
  AdjustUpward(node);

  // "Close reinsert": nearest evictees first.
  std::reverse(evicted.begin(), evicted.end());
  const bool is_data_level = node->is_leaf;
  for (Entry& e : evicted) {
    InsertAtLevel(std::move(e), level, is_data_level, reinserted_at_level);
  }
}

void RStarTree::SplitNode(Node* node) {
  MetricAdd(CounterId::kRTreeSplits);
  MetricAdd(CounterId::kRTreeNodeWrites, 2);  // Both halves rewritten.
  std::vector<Entry>& entries = node->entries;
  const size_t total = entries.size();
  const size_t m = min_entries_;
  WNRS_CHECK(total >= 2 * m);

  // ChooseSplitAxis: pick the axis minimizing the total margin over all
  // candidate distributions of both (lo- and hi-) sorts.
  size_t best_axis = 0;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  for (size_t axis = 0; axis < dims_; ++axis) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::vector<size_t> idx(total);
      for (size_t i = 0; i < total; ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        const double ka =
            by_hi ? entries[a].mbr.hi()[axis] : entries[a].mbr.lo()[axis];
        const double kb =
            by_hi ? entries[b].mbr.hi()[axis] : entries[b].mbr.lo()[axis];
        return ka < kb;
      });
      double margin_sum = 0.0;
      for (size_t k = m; k <= total - m; ++k) {
        Rectangle g1 = entries[idx[0]].mbr;
        for (size_t i = 1; i < k; ++i) g1 = g1.BoundingUnion(entries[idx[i]].mbr);
        Rectangle g2 = entries[idx[k]].mbr;
        for (size_t i = k + 1; i < total; ++i) {
          g2 = g2.BoundingUnion(entries[idx[i]].mbr);
        }
        margin_sum += g1.Margin() + g2.Margin();
      }
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_axis = axis;
      }
    }
  }

  // ChooseSplitIndex along best_axis: minimize overlap, ties by total area.
  std::vector<size_t> best_idx;
  size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (int by_hi = 0; by_hi < 2; ++by_hi) {
    std::vector<size_t> idx(total);
    for (size_t i = 0; i < total; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      const double ka = by_hi ? entries[a].mbr.hi()[best_axis]
                              : entries[a].mbr.lo()[best_axis];
      const double kb = by_hi ? entries[b].mbr.hi()[best_axis]
                              : entries[b].mbr.lo()[best_axis];
      return ka < kb;
    });
    for (size_t k = m; k <= total - m; ++k) {
      Rectangle g1 = entries[idx[0]].mbr;
      for (size_t i = 1; i < k; ++i) g1 = g1.BoundingUnion(entries[idx[i]].mbr);
      Rectangle g2 = entries[idx[k]].mbr;
      for (size_t i = k + 1; i < total; ++i) {
        g2 = g2.BoundingUnion(entries[idx[i]].mbr);
      }
      const double overlap = g1.OverlapVolume(g2);
      const double area = g1.Volume() + g2.Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_idx = idx;
        best_k = k;
      }
    }
  }

  // Materialize the two groups.
  Node* sibling = new Node();
  sibling->is_leaf = node->is_leaf;
  std::vector<Entry> group1;
  group1.reserve(best_k);
  for (size_t i = 0; i < best_k; ++i) {
    group1.push_back(std::move(entries[best_idx[i]]));
  }
  for (size_t i = best_k; i < total; ++i) {
    sibling->entries.push_back(std::move(entries[best_idx[i]]));
  }
  node->entries = std::move(group1);
  if (!sibling->is_leaf) {
    for (Entry& e : sibling->entries) e.child->parent = sibling;
  }

  if (node == root_) {
    Node* new_root = new Node();
    new_root->is_leaf = false;
    Entry e1;
    e1.mbr = NodeMbr(*node);
    e1.child = node;
    Entry e2;
    e2.mbr = NodeMbr(*sibling);
    e2.child = sibling;
    new_root->entries.push_back(std::move(e1));
    new_root->entries.push_back(std::move(e2));
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    ++height_;
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  AdjustUpward(node);
  Entry sibling_entry;
  sibling_entry.mbr = NodeMbr(*sibling);
  sibling_entry.child = sibling;
  parent->entries.push_back(std::move(sibling_entry));
  AdjustUpward(parent);
  if (parent->entries.size() > max_entries_) {
    // Propagate the split upward. (Forced reinsertion applies once per
    // level per data insertion; upward propagation after a split goes
    // straight to splitting, which the caller's reinsert flags encode.)
    SplitNode(parent);
  }
}

void RStarTree::AdjustUpward(Node* node) {
  Node* child = node;
  Node* parent = child->parent;
  while (parent != nullptr) {
    bool found = false;
    for (Entry& e : parent->entries) {
      if (e.child == child) {
        e.mbr = NodeMbr(*child);
        found = true;
        break;
      }
    }
    WNRS_CHECK(found);
    child = parent;
    parent = child->parent;
  }
}

bool RStarTree::Delete(const Rectangle& r, Id id) {
  WNRS_CHECK(r.dims() == dims_);
  // Find the leaf holding (r, id).
  Node* target_leaf = nullptr;
  size_t target_slot = 0;
  std::vector<Node*> stack = {root_};
  while (!stack.empty() && target_leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    CountNodeRead();
    if (node->is_leaf) {
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (node->entries[i].id == id && node->entries[i].mbr == r) {
          target_leaf = node;
          target_slot = i;
          break;
        }
      }
    } else {
      for (Entry& e : node->entries) {
        if (e.mbr.ContainsRect(r)) stack.push_back(e.child);
      }
    }
  }
  if (target_leaf == nullptr) return false;

  target_leaf->entries.erase(target_leaf->entries.begin() +
                             static_cast<ptrdiff_t>(target_slot));
  MetricAdd(CounterId::kRTreeNodeWrites);
  --size_;

  // CondenseTree: walk up removing underfull nodes, collecting their
  // entries (with levels) for reinsertion.
  std::vector<std::pair<Entry, size_t>> orphans;
  Node* node = target_leaf;
  while (node != root_) {
    Node* parent = node->parent;
    if (node->entries.size() < min_entries_) {
      // Entries of a node at level L live at level L (data entries at 0).
      const size_t node_level = LevelOf(node);
      for (Entry& e : node->entries) {
        orphans.emplace_back(std::move(e), node->is_leaf ? 0 : node_level);
      }
      // Unlink from parent.
      for (size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child == node) {
          parent->entries.erase(parent->entries.begin() +
                                static_cast<ptrdiff_t>(i));
          break;
        }
      }
      delete node;
    } else {
      AdjustUpward(node);
    }
    node = parent;
  }

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf && root_->entries.size() == 1) {
    Node* child = root_->entries.front().child;
    child->parent = nullptr;
    delete root_;
    root_ = child;
    --height_;
  }
  if (!root_->is_leaf && root_->entries.empty()) {
    // All children condensed away; reset to an empty leaf root.
    root_->is_leaf = true;
    height_ = 1;
  }

  // Reinsert orphans, lower levels first. A subtree entry whose level no
  // longer exists (the tree shrank) is decomposed into its child's entries
  // one level down rather than force-placed, keeping leaf depth uniform.
  std::sort(orphans.begin(), orphans.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (size_t i = 0; i < orphans.size(); ++i) {
    Entry entry = std::move(orphans[i].first);
    const size_t level = orphans[i].second;
    const bool is_data = entry.child == nullptr;
    if (!is_data && level >= height_) {
      Node* child = entry.child;
      for (Entry& e : child->entries) {
        orphans.emplace_back(std::move(e), child->is_leaf ? 0 : level - 1);
      }
      delete child;
      continue;
    }
    std::vector<bool> reinserted(height_, false);
    InsertAtLevel(std::move(entry), is_data ? 0 : level, is_data,
                  &reinserted);
  }
  return true;
}

void RStarTree::RangeQuery(
    const Rectangle& window,
    const std::function<bool(const Rectangle&, Id)>& visit) const {
  WNRS_CHECK(window.dims() == dims_);
  std::vector<const Node*> stack = {root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    CountNodeRead();
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.mbr.Intersects(window)) {
          if (!visit(e.mbr, e.id)) return;
        }
      }
    } else {
      for (const Entry& e : node->entries) {
        if (e.mbr.Intersects(window)) stack.push_back(e.child);
      }
    }
  }
}

std::vector<RStarTree::Id> RStarTree::RangeQueryIds(
    const Rectangle& window) const {
  std::vector<Id> out;
  RangeQuery(window, [&](const Rectangle&, Id id) {
    out.push_back(id);
    return true;
  });
  // Sorted output: callers get a canonical order independent of tree
  // shape, so results compare equal across Clone()s and packed freezes.
  std::sort(out.begin(), out.end());
  return out;
}

bool RStarTree::AnyInRange(
    const Rectangle& window,
    const std::function<bool(const Rectangle&, Id)>& predicate) const {
  bool found = false;
  RangeQuery(window, [&](const Rectangle& mbr, Id id) {
    if (predicate == nullptr || predicate(mbr, id)) {
      found = true;
      return false;  // Stop the traversal.
    }
    return true;
  });
  return found;
}

std::vector<std::pair<RStarTree::Id, double>> RStarTree::NearestNeighbors(
    const Point& p, size_t k) const {
  WNRS_CHECK(p.dims() == dims_);
  struct QueueItem {
    double dist2;
    const Node* node;   // nullptr for leaf entries
    Rectangle mbr;      // valid for leaf entries
    Id id;
    bool operator>(const QueueItem& other) const {
      return dist2 > other.dist2;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({0.0, root_, Rectangle(), -1});
  std::vector<std::pair<Id, double>> out;
  while (!pq.empty() && out.size() < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out.emplace_back(item.id, std::sqrt(item.dist2));
      continue;
    }
    CountNodeRead();
    for (const Entry& e : item.node->entries) {
      if (item.node->is_leaf) {
        pq.push({e.mbr.MinDistSquared(p), nullptr, e.mbr, e.id});
      } else {
        pq.push({e.mbr.MinDistSquared(p), e.child, Rectangle(), -1});
      }
    }
  }
  return out;
}

namespace {

struct CheckContext {
  size_t leaf_depth = 0;
  bool leaf_depth_set = false;
  size_t data_entries = 0;
};

Status CheckNode(const RStarTree::Node* node, const RStarTree::Node* parent,
                 size_t depth, size_t min_entries, size_t max_entries,
                 bool is_root, CheckContext* ctx) {
  if (node->parent != parent) {
    return Status::Internal("bad parent pointer");
  }
  if (!is_root && node->entries.size() < min_entries) {
    return Status::Internal(
        StrFormat("underfull node: %zu < %zu", node->entries.size(),
                  min_entries));
  }
  if (node->entries.size() > max_entries) {
    return Status::Internal("overfull node");
  }
  if (is_root && !node->is_leaf && node->entries.size() < 2) {
    return Status::Internal("internal root with < 2 children");
  }
  if (node->is_leaf) {
    if (ctx->leaf_depth_set && ctx->leaf_depth != depth) {
      return Status::Internal("non-uniform leaf depth");
    }
    ctx->leaf_depth = depth;
    ctx->leaf_depth_set = true;
    ctx->data_entries += node->entries.size();
    return Status::Ok();
  }
  for (const RStarTree::Entry& e : node->entries) {
    if (e.child == nullptr) {
      return Status::Internal("internal entry without child");
    }
    const Rectangle child_mbr = [&] {
      Rectangle mbr = e.child->entries.front().mbr;
      for (size_t i = 1; i < e.child->entries.size(); ++i) {
        mbr = mbr.BoundingUnion(e.child->entries[i].mbr);
      }
      return mbr;
    }();
    if (!(e.mbr == child_mbr)) {
      return Status::Internal("stale parent MBR");
    }
    WNRS_RETURN_IF_ERROR(CheckNode(e.child, node, depth + 1, min_entries,
                                   max_entries, false, ctx));
  }
  return Status::Ok();
}

}  // namespace

Status RStarTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::Internal("null root");
  if (size_ == 0) {
    if (!root_->is_leaf || !root_->entries.empty()) {
      return Status::Internal("empty tree with non-empty root");
    }
    return Status::Ok();
  }
  CheckContext ctx;
  WNRS_RETURN_IF_ERROR(CheckNode(root_, nullptr, 0, min_entries_,
                                 max_entries_, true, &ctx));
  if (ctx.data_entries != size_) {
    return Status::Internal(StrFormat("size mismatch: %zu leaves vs size %zu",
                                      ctx.data_entries, size_));
  }
  if (ctx.leaf_depth_set && ctx.leaf_depth + 1 != height_) {
    return Status::Internal("height mismatch");
  }
  return Status::Ok();
}

}  // namespace wnrs
