#include "index/validate.h"

#include <cstdint>
#include <vector>

#include "common/string_util.h"

namespace wnrs {

namespace {

Rectangle UnionOfEntries(const RStarTree::Node& node) {
  Rectangle mbr = node.entries.front().mbr;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    mbr = mbr.BoundingUnion(node.entries[i].mbr);
  }
  return mbr;
}

Status ValidateNode(const RStarTree& tree, const RStarTree::Node* node,
                    const RStarTree::Node* parent, size_t depth,
                    size_t* leaf_depth, size_t* data_entries) {
  if (node == nullptr) {
    return Status::Internal(
        StrFormat("[child-links] null node at depth %zu", depth));
  }
  if (node->parent != parent) {
    return Status::Internal(
        StrFormat("[parent-links] node at depth %zu has a parent pointer "
                  "that is not its tree parent",
                  depth));
  }
  const bool is_root = parent == nullptr;
  if (!is_root && node->entries.size() < tree.min_entries()) {
    return Status::Internal(
        StrFormat("[fanout-bounds] underfull node at depth %zu: %zu entries "
                  "< min fan-out %zu",
                  depth, node->entries.size(), tree.min_entries()));
  }
  if (node->entries.size() > tree.max_entries()) {
    return Status::Internal(
        StrFormat("[fanout-bounds] overfull node at depth %zu: %zu entries "
                  "> max fan-out %zu",
                  depth, node->entries.size(), tree.max_entries()));
  }
  if (is_root && !node->is_leaf && node->entries.size() < 2) {
    return Status::Internal(
        "[fanout-bounds] internal root with fewer than 2 children");
  }
  if (node->is_leaf) {
    if (*leaf_depth == SIZE_MAX) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal(
          StrFormat("[leaf-depth] leaf at depth %zu but earlier leaves at "
                    "depth %zu",
                    depth, *leaf_depth));
    }
    *data_entries += node->entries.size();
    return Status::Ok();
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    const RStarTree::Entry& e = node->entries[i];
    if (e.child == nullptr) {
      return Status::Internal(StrFormat(
          "[child-links] internal entry %zu at depth %zu has no child", i,
          depth));
    }
    if (e.child->entries.empty()) {
      return Status::Internal(StrFormat(
          "[child-links] entry %zu at depth %zu references an empty node", i,
          depth));
    }
    const Rectangle child_union = UnionOfEntries(*e.child);
    if (!e.mbr.ContainsRect(child_union)) {
      return Status::Internal(StrFormat(
          "[mbr-containment] entry %zu at depth %zu has MBR %s that does not "
          "contain its child's entries (union %s)",
          i, depth, e.mbr.ToString().c_str(), child_union.ToString().c_str()));
    }
    if (!(e.mbr == child_union)) {
      return Status::Internal(StrFormat(
          "[mbr-containment] entry %zu at depth %zu has inflated MBR %s; the "
          "tight union of its child's entries is %s",
          i, depth, e.mbr.ToString().c_str(), child_union.ToString().c_str()));
    }
    WNRS_RETURN_IF_ERROR(ValidateNode(tree, e.child, node, depth + 1,
                                      leaf_depth, data_entries));
  }
  return Status::Ok();
}

}  // namespace

Status ValidateTree(const RStarTree& tree) {
  const RStarTree::Node* root = tree.root();
  if (root == nullptr) {
    return Status::Internal("[child-links] tree has a null root");
  }
  if (tree.size() == 0) {
    if (!root->is_leaf || !root->entries.empty()) {
      return Status::Internal(
          "[entry-count] empty tree whose root still holds entries");
    }
    return Status::Ok();
  }
  size_t leaf_depth = SIZE_MAX;
  size_t data_entries = 0;
  WNRS_RETURN_IF_ERROR(
      ValidateNode(tree, root, nullptr, 0, &leaf_depth, &data_entries));
  if (data_entries != tree.size()) {
    return Status::Internal(
        StrFormat("[entry-count] %zu leaf data entries but size() is %zu",
                  data_entries, tree.size()));
  }
  if (leaf_depth != SIZE_MAX && leaf_depth + 1 != tree.height()) {
    return Status::Internal(
        StrFormat("[leaf-depth] leaves at depth %zu but height() is %zu",
                  leaf_depth, tree.height()));
  }
  return Status::Ok();
}

Status ValidatePacked(const PackedRTree& packed) {
  // Slab bounds, reachability, leaf depth and entry count are the packed
  // tree's own self-check; re-tag its failures so callers see the same
  // invariant vocabulary as ValidateTree.
  Status base = packed.CheckInvariants();
  if (!base.ok()) {
    return Status::Internal("[slab-bounds] " + base.message());
  }
  // The node arena must leave the child-index range unambiguous: every
  // stored child index has to fit uint32_t strictly below the kNoNode
  // sentinel (Freeze rejects larger trees; assert the bound held).
  if (packed.num_nodes() > static_cast<size_t>(PackedRTree::kNoNode) - 1) {
    return Status::Internal(StrFormat(
        "[slab-bounds] node arena holds %zu nodes, exceeding the %u "
        "child-index bound",
        packed.num_nodes(), PackedRTree::kNoNode - 1));
  }
  // MBR containment between internal entries and the nodes they reference
  // (the self-check covers wiring, not geometry).
  const size_t dims = packed.dims();
  for (uint32_t ni = 0; ni < packed.num_nodes(); ++ni) {
    const PackedRTree::Node& n = packed.node(ni);
    if (n.is_leaf != 0) continue;
    for (uint32_t e = n.first_entry; e < n.first_entry + n.entry_count; ++e) {
      const PackedRTree::Node& child = packed.node(packed.entry_child(e));
      for (uint32_t ce = child.first_entry;
           ce < child.first_entry + child.entry_count; ++ce) {
        for (size_t j = 0; j < dims; ++j) {
          if (packed.entry_lo(ce, j) < packed.entry_lo(e, j) ||
              packed.entry_hi(ce, j) > packed.entry_hi(e, j)) {
            return Status::Internal(StrFormat(
                "[mbr-containment] packed entry %u of node %u does not "
                "contain entry %u of child node %u in dimension %zu",
                e, ni, ce, packed.entry_child(e), j));
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status ValidatePackedMatchesDynamic(const PackedRTree& packed,
                                    const RStarTree& tree) {
  if (packed.dims() != tree.dims()) {
    return Status::Internal(
        StrFormat("[packed-parity] dimensionality mismatch: packed %zu vs "
                  "dynamic %zu",
                  packed.dims(), tree.dims()));
  }
  if (packed.size() != tree.size()) {
    return Status::Internal(
        StrFormat("[packed-parity] data-entry count mismatch: packed %zu vs "
                  "dynamic %zu",
                  packed.size(), tree.size()));
  }
  if (packed.height() != tree.height()) {
    return Status::Internal(
        StrFormat("[packed-parity] height mismatch: packed %zu vs dynamic %zu",
                  packed.height(), tree.height()));
  }
  // Freeze() assigns arena indices in pre-order with children in entry
  // order; replay the same walk over the dynamic tree and compare node by
  // node. `expect[i]` is the dynamic node that packed node i must mirror.
  std::vector<const RStarTree::Node*> expect;
  std::vector<const RStarTree::Node*> stack = {tree.root()};
  while (!stack.empty()) {
    const RStarTree::Node* src = stack.back();
    stack.pop_back();
    expect.push_back(src);
    if (!src->is_leaf) {
      for (size_t i = src->entries.size(); i > 0; --i) {
        stack.push_back(src->entries[i - 1].child);
      }
    }
  }
  if (expect.size() != packed.num_nodes()) {
    return Status::Internal(
        StrFormat("[packed-parity] node count mismatch: packed %zu vs "
                  "dynamic %zu",
                  packed.num_nodes(), expect.size()));
  }
  for (uint32_t ni = 0; ni < packed.num_nodes(); ++ni) {
    const PackedRTree::Node& pn = packed.node(ni);
    const RStarTree::Node* dn = expect[ni];
    if ((pn.is_leaf != 0) != dn->is_leaf) {
      return Status::Internal(
          StrFormat("[packed-parity] node %u leaf flag mismatch", ni));
    }
    if (pn.entry_count != dn->entries.size()) {
      return Status::Internal(StrFormat(
          "[packed-parity] node %u has %u packed entries vs %zu dynamic", ni,
          pn.entry_count, dn->entries.size()));
    }
    for (uint32_t i = 0; i < pn.entry_count; ++i) {
      const uint32_t e = pn.first_entry + i;
      const RStarTree::Entry& de = dn->entries[i];
      for (size_t j = 0; j < packed.dims(); ++j) {
        if (packed.entry_lo(e, j) != de.mbr.lo()[j] ||
            packed.entry_hi(e, j) != de.mbr.hi()[j]) {
          return Status::Internal(StrFormat(
              "[packed-parity] node %u entry %u MBR differs from the dynamic "
              "tree in dimension %zu",
              ni, i, j));
        }
      }
      if (pn.is_leaf != 0) {
        if (packed.entry_id(e) != de.id) {
          return Status::Internal(StrFormat(
              "[packed-parity] node %u entry %u data id mismatch: packed "
              "%lld vs dynamic %lld",
              ni, i, static_cast<long long>(packed.entry_id(e)),
              static_cast<long long>(de.id)));
        }
      } else {
        const uint32_t child = packed.entry_child(e);
        if (child >= expect.size() || expect[child] != de.child) {
          return Status::Internal(StrFormat(
              "[packed-parity] node %u entry %u child link %u does not "
              "reference the pre-order twin of the dynamic child",
              ni, i, child));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace wnrs
