#ifndef WNRS_INDEX_RTREE_H_
#define WNRS_INDEX_RTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace wnrs {

/// Tuning knobs for the R*-tree. The defaults mirror the paper's setup
/// ("Each dataset is indexed by an R-tree, where the page size is set to
/// 1536 bytes") and the classic R*-tree parameters (Beckmann et al.,
/// SIGMOD'90): 40% minimum fill and 30% forced reinsertion.
struct RTreeOptions {
  /// Byte budget per node; fan-out is derived from it and the
  /// dimensionality.
  size_t page_size_bytes = 1536;
  /// Minimum fill m as a fraction of the maximum fan-out M.
  double min_fill_ratio = 0.4;
  /// Fraction of entries evicted on the first overflow per level.
  double reinsert_fraction = 0.3;
};

/// Disk-page-modelled R*-tree over rectangles (points are degenerate
/// rectangles). Supports insertion with forced reinsertion, the R* split,
/// deletion with tree condensation, window (range) queries with early
/// termination, best-first nearest-neighbor search, and direct node access
/// for branch-and-bound algorithms (BBS, BBRS). Node reads are counted so
/// benchmarks can report I/O-equivalent work.
///
/// Move-only. Not thread-safe for concurrent mutation; concurrent reads of
/// a quiescent tree are safe, including the node-access counter, which is
/// atomic so I/O statistics stay exact under the engine's parallel loops.
class RStarTree {
 public:
  using Id = int64_t;

  struct Node;

  /// One slot of a node: an MBR plus either a child (internal node) or a
  /// data id (leaf).
  struct Entry {
    Rectangle mbr;
    Node* child = nullptr;  // Internal nodes only.
    Id id = -1;             // Leaves only.
  };

  struct Node {
    bool is_leaf = true;
    Node* parent = nullptr;
    std::vector<Entry> entries;
  };

  /// Query-side traversal statistics.
  struct Stats {
    uint64_t node_reads = 0;
  };

  RStarTree(size_t dims, RTreeOptions options = RTreeOptions());
  ~RStarTree();

  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Structure-preserving deep copy: the clone has the exact same node
  /// layout, so an Insert/Delete applied to the clone yields the same tree
  /// a direct mutation of the original would have. This is what lets the
  /// engine publish copy-on-write snapshots on mutation without changing
  /// any query answer or I/O count. Traversal counters start at zero.
  [[nodiscard]] RStarTree Clone() const;

  size_t dims() const { return dims_; }
  size_t size() const { return size_; }
  /// Number of levels; 1 for a tree holding only a root leaf.
  size_t height() const { return height_; }
  /// Maximum fan-out derived from the page size.
  size_t max_entries() const { return max_entries_; }
  size_t min_entries() const { return min_entries_; }

  /// Inserts a point (stored as a degenerate rectangle).
  void Insert(const Point& p, Id id);

  /// Inserts a rectangle entry.
  void Insert(const Rectangle& r, Id id);

  /// Removes the entry with exactly this rectangle and id. Returns false if
  /// no such entry exists. [[nodiscard]]: the bool is the only signal that
  /// the tree was not modified.
  [[nodiscard]] bool Delete(const Rectangle& r, Id id);

  /// Visits every leaf entry whose MBR intersects `window` (closed
  /// semantics). The visitor returns false to stop the query early — the
  /// emptiness probes of reverse-skyline window queries rely on this.
  void RangeQuery(const Rectangle& window,
                  const std::function<bool(const Rectangle&, Id)>& visit) const;

  /// Ids of all entries intersecting `window`.
  std::vector<Id> RangeQueryIds(const Rectangle& window) const;

  /// True iff at least one entry intersects `window` and satisfies
  /// `predicate` (pass nullptr to accept all). Stops at the first hit.
  bool AnyInRange(const Rectangle& window,
                  const std::function<bool(const Rectangle&, Id)>& predicate =
                      nullptr) const;

  /// The k entries nearest to `p` by Euclidean distance, closest first,
  /// via best-first MINDIST traversal. Returns fewer if size() < k.
  std::vector<std::pair<Id, double>> NearestNeighbors(const Point& p,
                                                      size_t k) const;

  /// Root node for external branch-and-bound traversals; nullptr only
  /// before construction completes (never observable). Callers must not
  /// mutate.
  const Node* root() const { return root_; }

  /// Counts a node read for an externally-driven traversal, so BBS/BBRS
  /// accesses show up in stats() too. Safe to call from concurrent query
  /// threads; the count stays exact.
  void CountNodeRead() const {
    node_reads_.fetch_add(1, std::memory_order_relaxed);
    MetricAdd(CounterId::kRTreeNodeReads);
  }

  /// Snapshot of the traversal counters.
  Stats stats() const {
    Stats s;
    s.node_reads = node_reads_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() { node_reads_.store(0, std::memory_order_relaxed); }

  /// Structural self-check for tests: parent pointers, MBR containment,
  /// fill-factor bounds, uniform leaf depth, and entry count.
  Status CheckInvariants() const;

 private:
  friend class RTreeBulkLoader;
  friend class RTreeSerializer;
  friend class RTreePageStore;

  Node* ChooseSubtree(const Rectangle& r, size_t target_level) const;
  void InsertAtLevel(Entry entry, size_t target_level, bool is_data_level,
                     std::vector<bool>* reinserted_at_level);
  void OverflowTreatment(Node* node, size_t level,
                         std::vector<bool>* reinserted_at_level);
  void Reinsert(Node* node, size_t level,
                std::vector<bool>* reinserted_at_level);
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  static Rectangle NodeMbr(const Node& node);
  size_t LevelOf(const Node* node) const;
  void FreeSubtree(Node* node);

  size_t dims_ = 0;
  RTreeOptions options_;
  size_t max_entries_ = 0;
  size_t min_entries_ = 0;
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t height_ = 1;
  mutable std::atomic<uint64_t> node_reads_{0};
};

}  // namespace wnrs

#endif  // WNRS_INDEX_RTREE_H_
