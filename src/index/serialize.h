#ifndef WNRS_INDEX_SERIALIZE_H_
#define WNRS_INDEX_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "index/rtree.h"

namespace wnrs {

/// Persists the full tree structure (every node, fan-out configuration,
/// parent wiring implied by nesting) to a versioned text format, so a
/// bulk-loaded index over a large market can be reopened without
/// re-packing. Coordinates round-trip exactly (%.17g).
Status SaveTree(const RStarTree& tree, const std::string& path);

/// Loads a tree written by SaveTree. The structure is restored verbatim
/// (same nodes, same page-size configuration), then re-validated with
/// RStarTree::CheckInvariants; a corrupt or truncated file fails cleanly.
Result<RStarTree> LoadTree(const std::string& path);

}  // namespace wnrs

#endif  // WNRS_INDEX_SERIALIZE_H_
