#include "index/serialize.h"

#include <fstream>

#include "common/string_util.h"

namespace wnrs {

/// Friend of RStarTree; owns the node wiring of load.
class RTreeSerializer {
 public:
  static Status Save(const RStarTree& tree, const std::string& path) {
    std::ofstream out(path, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot open for writing: " + path);
    }
    out << "wnrs-rtree 1\n";
    out << tree.dims_ << ' ' << tree.options_.page_size_bytes << ' '
        << StrFormat("%.17g", tree.options_.min_fill_ratio) << ' '
        << StrFormat("%.17g", tree.options_.reinsert_fraction) << ' '
        << tree.size_ << ' ' << tree.height_ << '\n';
    WriteNode(out, *tree.root_, tree.dims_);
    out.flush();
    if (!out.good()) return Status::IoError("write failure: " + path);
    return Status::Ok();
  }

  static Result<RStarTree> Load(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status::IoError("cannot open for reading: " + path);
    }
    std::string magic;
    int version = 0;
    in >> magic >> version;
    if (!in.good() || magic != "wnrs-rtree" || version != 1) {
      return Status::InvalidArgument("not a wnrs rtree file: " + path);
    }
    size_t dims = 0;
    RTreeOptions options;
    size_t size = 0;
    size_t height = 0;
    in >> dims >> options.page_size_bytes >> options.min_fill_ratio >>
        options.reinsert_fraction >> size >> height;
    if (!in.good() || dims == 0) {
      return Status::InvalidArgument("bad rtree header: " + path);
    }
    RStarTree tree(dims, options);
    RStarTree::Node* root = ReadNode(in, dims);
    if (root == nullptr) {
      return Status::InvalidArgument("truncated rtree file: " + path);
    }
    delete tree.root_;
    tree.root_ = root;
    tree.root_->parent = nullptr;
    tree.size_ = size;
    tree.height_ = height;
    // The root's subtree consumed everything the header promised; any
    // leftover non-whitespace is a second document or corruption, not a
    // longer tree — reject it rather than silently ignore it.
    char trailing = 0;
    if (in >> trailing) {
      return Status::InvalidArgument(
          "[trailing-bytes] data after the last node of rtree file: " +
          path);
    }
    const Status check = tree.CheckInvariants();
    if (!check.ok()) {
      return Status::InvalidArgument("corrupt rtree file (" +
                                     check.message() + "): " + path);
    }
    return tree;
  }

 private:
  static void WriteNode(std::ofstream& out, const RStarTree::Node& node,
                        size_t dims) {
    out << (node.is_leaf ? 'L' : 'I') << ' ' << node.entries.size() << '\n';
    for (const RStarTree::Entry& e : node.entries) {
      for (size_t i = 0; i < dims; ++i) {
        out << StrFormat("%.17g ", e.mbr.lo()[i]);
      }
      for (size_t i = 0; i < dims; ++i) {
        out << StrFormat("%.17g ", e.mbr.hi()[i]);
      }
      if (node.is_leaf) {
        out << e.id << '\n';
      } else {
        out << '\n';
        WriteNode(out, *e.child, dims);
      }
    }
  }

  static RStarTree::Node* ReadNode(std::ifstream& in, size_t dims) {
    char kind = 0;
    size_t count = 0;
    in >> kind >> count;
    if (!in.good() || (kind != 'L' && kind != 'I')) return nullptr;
    auto* node = new RStarTree::Node();
    node->is_leaf = kind == 'L';
    node->entries.reserve(count);
    for (size_t k = 0; k < count; ++k) {
      Point lo(dims);
      Point hi(dims);
      for (size_t i = 0; i < dims; ++i) in >> lo[i];
      for (size_t i = 0; i < dims; ++i) in >> hi[i];
      RStarTree::Entry e;
      e.mbr = Rectangle(std::move(lo), std::move(hi));
      if (node->is_leaf) {
        in >> e.id;
        if (!in.good()) {
          DeleteNode(node);
          return nullptr;
        }
      } else {
        e.child = ReadNode(in, dims);
        if (e.child == nullptr) {
          DeleteNode(node);
          return nullptr;
        }
        e.child->parent = node;
      }
      node->entries.push_back(std::move(e));
    }
    return node;
  }

  static void DeleteNode(RStarTree::Node* node) {
    if (node == nullptr) return;
    if (!node->is_leaf) {
      for (RStarTree::Entry& e : node->entries) DeleteNode(e.child);
    }
    delete node;
  }
};

Status SaveTree(const RStarTree& tree, const std::string& path) {
  return RTreeSerializer::Save(tree, path);
}

Result<RStarTree> LoadTree(const std::string& path) {
  return RTreeSerializer::Load(path);
}

}  // namespace wnrs
