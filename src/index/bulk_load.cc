#include "index/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wnrs {

/// Friend of RStarTree; owns the node-wiring details of STR packing.
class RTreeBulkLoader {
 public:
  static RStarTree Build(size_t dims, std::vector<BulkEntry> input,
                         RTreeOptions options) {
    RStarTree tree(dims, options);
    if (input.empty()) return tree;

    const size_t capacity = tree.max_entries_;
    // Convert to node entries.
    std::vector<RStarTree::Entry> level;
    level.reserve(input.size());
    for (BulkEntry& be : input) {
      RStarTree::Entry e;
      e.mbr = std::move(be.mbr);
      e.id = be.id;
      level.push_back(std::move(e));
    }
    const size_t data_count = level.size();

    bool leaves = true;
    size_t height = 0;
    while (true) {
      // Pack the current level's entries into nodes.
      std::vector<RStarTree::Node*> nodes =
          PackLevel(dims, &level, capacity, tree.min_entries_, leaves);
      ++height;
      if (nodes.size() == 1) {
        delete tree.root_;
        tree.root_ = nodes.front();
        tree.root_->parent = nullptr;
        tree.size_ = data_count;
        tree.height_ = height;
        return tree;
      }
      // Build the next level's entries from the packed nodes.
      std::vector<RStarTree::Entry> next;
      next.reserve(nodes.size());
      for (RStarTree::Node* n : nodes) {
        RStarTree::Entry e;
        e.mbr = RStarTree::NodeMbr(*n);
        e.child = n;
        next.push_back(std::move(e));
      }
      level = std::move(next);
      leaves = false;
    }
  }

 private:
  /// Recursively tiles `entries` (whole vector consumed) into nodes of at
  /// most `capacity` entries using center-coordinate STR ordering, and
  /// wires child parent pointers.
  static std::vector<RStarTree::Node*> PackLevel(
      size_t dims, std::vector<RStarTree::Entry>* entries, size_t capacity,
      size_t min_fill, bool leaves) {
    std::vector<RStarTree::Node*> nodes;
    TileRecursive(*entries, 0, dims, capacity, min_fill, &nodes, leaves);
    entries->clear();
    return nodes;
  }

  static void TileRecursive(std::vector<RStarTree::Entry>& entries,
                            size_t dim, size_t dims, size_t capacity,
                            size_t min_fill,
                            std::vector<RStarTree::Node*>* out, bool leaves) {
    const size_t n = entries.size();
    const size_t node_count =
        (n + capacity - 1) / capacity;  // Pages needed overall.
    if (node_count <= 1 || dim + 1 == dims) {
      // Final dimension (or everything fits): sort by this dimension's
      // center and cut into consecutive full nodes.
      std::sort(entries.begin(), entries.end(),
                [dim](const RStarTree::Entry& a, const RStarTree::Entry& b) {
                  return a.mbr.lo()[dim] + a.mbr.hi()[dim] <
                         b.mbr.lo()[dim] + b.mbr.hi()[dim];
                });
      for (size_t start = 0; start < n;) {
        size_t end = std::min(n, start + capacity);
        // Balance the remainder so no node (except a lone root) falls
        // below the R*-tree minimum fill.
        if (end < n && n - end < min_fill) {
          end = n - min_fill;
        }
        auto* node = new RStarTree::Node();
        node->is_leaf = leaves;
        node->entries.assign(std::make_move_iterator(entries.begin() +
                                                     static_cast<ptrdiff_t>(start)),
                             std::make_move_iterator(entries.begin() +
                                                     static_cast<ptrdiff_t>(end)));
        if (!leaves) {
          for (RStarTree::Entry& e : node->entries) e.child->parent = node;
        }
        out->push_back(node);
        start = end;
      }
      return;
    }
    // Slice into ~node_count^(1/remaining_dims) slabs along this dimension.
    const size_t remaining_dims = dims - dim;
    const auto slabs = static_cast<size_t>(std::ceil(
        std::pow(static_cast<double>(node_count), 1.0 / remaining_dims)));
    const size_t slab_size = (n + slabs - 1) / slabs;
    std::sort(entries.begin(), entries.end(),
              [dim](const RStarTree::Entry& a, const RStarTree::Entry& b) {
                return a.mbr.lo()[dim] + a.mbr.hi()[dim] <
                       b.mbr.lo()[dim] + b.mbr.hi()[dim];
              });
    for (size_t start = 0; start < n;) {
      size_t end = std::min(n, start + slab_size);
      // Absorb a too-small tail into the current slab; the final cut pass
      // re-balances node sizes.
      if (end < n && n - end < min_fill) {
        end = n;
      }
      std::vector<RStarTree::Entry> slab(
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(start)),
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(end)));
      TileRecursive(slab, dim + 1, dims, capacity, min_fill, out, leaves);
      start = end;
    }
  }
};

RStarTree BulkLoadStr(size_t dims, std::vector<BulkEntry> entries,
                      RTreeOptions options) {
  return RTreeBulkLoader::Build(dims, std::move(entries), options);
}

RStarTree BulkLoadPoints(size_t dims, const std::vector<Point>& points,
                         RTreeOptions options) {
  std::vector<BulkEntry> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    WNRS_CHECK(points[i].dims() == dims);
    entries.push_back(
        {Rectangle::FromPoint(points[i]), static_cast<RStarTree::Id>(i)});
  }
  return BulkLoadStr(dims, std::move(entries), options);
}

}  // namespace wnrs
