#include "index/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wnrs {

/// Friend of RStarTree; owns the node-wiring details of STR packing.
class RTreeBulkLoader {
 public:
  static RStarTree Build(size_t dims, std::vector<BulkEntry> input,
                         RTreeOptions options) {
    RStarTree tree(dims, options);
    if (input.empty()) return tree;

    const size_t capacity = tree.max_entries_;
    // Convert to node entries.
    std::vector<RStarTree::Entry> level;
    level.reserve(input.size());
    for (BulkEntry& be : input) {
      RStarTree::Entry e;
      e.mbr = std::move(be.mbr);
      e.id = be.id;
      level.push_back(std::move(e));
    }
    const size_t data_count = level.size();

    bool leaves = true;
    size_t height = 0;
    while (true) {
      // Pack the current level's entries into nodes.
      std::vector<RStarTree::Node*> nodes =
          PackLevel(dims, &level, capacity, tree.min_entries_, leaves);
      ++height;
      if (nodes.size() == 1) {
        delete tree.root_;
        tree.root_ = nodes.front();
        tree.root_->parent = nullptr;
        tree.size_ = data_count;
        tree.height_ = height;
        return tree;
      }
      // Build the next level's entries from the packed nodes.
      std::vector<RStarTree::Entry> next;
      next.reserve(nodes.size());
      for (RStarTree::Node* n : nodes) {
        RStarTree::Entry e;
        e.mbr = RStarTree::NodeMbr(*n);
        e.child = n;
        next.push_back(std::move(e));
      }
      level = std::move(next);
      leaves = false;
    }
  }

 private:
  /// Recursively tiles `entries` (whole vector consumed) into nodes of at
  /// most `capacity` entries using center-coordinate STR ordering, and
  /// wires child parent pointers.
  static std::vector<RStarTree::Node*> PackLevel(
      size_t dims, std::vector<RStarTree::Entry>* entries, size_t capacity,
      size_t min_fill, bool leaves) {
    std::vector<RStarTree::Node*> nodes;
    TileRecursive(*entries, 0, dims, capacity, min_fill, &nodes, leaves);
    entries->clear();
    return nodes;
  }

  static void TileRecursive(std::vector<RStarTree::Entry>& entries,
                            size_t dim, size_t dims, size_t capacity,
                            size_t min_fill,
                            std::vector<RStarTree::Node*>* out, bool leaves) {
    const size_t n = entries.size();
    const size_t node_count =
        (n + capacity - 1) / capacity;  // Pages needed overall.
    if (node_count <= 1 || dim + 1 == dims) {
      // Final dimension (or everything fits): sort by this dimension's
      // center and cut into consecutive full nodes.
      std::sort(entries.begin(), entries.end(),
                [dim](const RStarTree::Entry& a, const RStarTree::Entry& b) {
                  return a.mbr.lo()[dim] + a.mbr.hi()[dim] <
                         b.mbr.lo()[dim] + b.mbr.hi()[dim];
                });
      for (size_t start = 0; start < n;) {
        size_t end = std::min(n, start + capacity);
        // Balance the remainder so no node (except a lone root) falls
        // below the R*-tree minimum fill.
        if (end < n && n - end < min_fill) {
          end = n - min_fill;
        }
        auto* node = new RStarTree::Node();
        node->is_leaf = leaves;
        node->entries.assign(std::make_move_iterator(entries.begin() +
                                                     static_cast<ptrdiff_t>(start)),
                             std::make_move_iterator(entries.begin() +
                                                     static_cast<ptrdiff_t>(end)));
        if (!leaves) {
          for (RStarTree::Entry& e : node->entries) e.child->parent = node;
        }
        out->push_back(node);
        start = end;
      }
      return;
    }
    // Slice into ~node_count^(1/remaining_dims) slabs along this dimension.
    const size_t remaining_dims = dims - dim;
    const auto slabs = static_cast<size_t>(std::ceil(
        std::pow(static_cast<double>(node_count), 1.0 / remaining_dims)));
    const size_t slab_size = (n + slabs - 1) / slabs;
    std::sort(entries.begin(), entries.end(),
              [dim](const RStarTree::Entry& a, const RStarTree::Entry& b) {
                return a.mbr.lo()[dim] + a.mbr.hi()[dim] <
                       b.mbr.lo()[dim] + b.mbr.hi()[dim];
              });
    for (size_t start = 0; start < n;) {
      size_t end = std::min(n, start + slab_size);
      // Absorb a too-small tail into the current slab; the final cut pass
      // re-balances node sizes.
      if (end < n && n - end < min_fill) {
        end = n;
      }
      std::vector<RStarTree::Entry> slab(
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(start)),
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(end)));
      TileRecursive(slab, dim + 1, dims, capacity, min_fill, out, leaves);
      start = end;
    }
  }
};

RStarTree BulkLoadStr(size_t dims, std::vector<BulkEntry> entries,
                      RTreeOptions options) {
  return RTreeBulkLoader::Build(dims, std::move(entries), options);
}

RStarTree BulkLoadPoints(size_t dims, const std::vector<Point>& points,
                         RTreeOptions options) {
  std::vector<BulkEntry> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    WNRS_CHECK(points[i].dims() == dims);
    entries.push_back(
        {Rectangle::FromPoint(points[i]), static_cast<RStarTree::Id>(i)});
  }
  return BulkLoadStr(dims, std::move(entries), options);
}

namespace {

/// Recursive STR sweep over index spans: sorts [begin, end) of `order` by
/// the current dimension, slices into slabs sized proportionally to each
/// slab's tile budget, and recurses until the budget is one tile. The
/// budget split (not a fixed page capacity) is what guarantees exactly
/// `tiles` cuts with sizes within one of each other at every level.
void StrTileRecursive(const std::vector<Point>& points,
                      std::vector<size_t>& order, size_t begin, size_t end,
                      size_t dim, size_t dims, size_t tiles,
                      std::vector<std::vector<size_t>>* out) {
  const size_t n = end - begin;
  if (tiles <= 1) {
    std::vector<size_t> tile(order.begin() + static_cast<ptrdiff_t>(begin),
                             order.begin() + static_cast<ptrdiff_t>(end));
    std::sort(tile.begin(), tile.end());
    out->push_back(std::move(tile));
    return;
  }
  std::sort(order.begin() + static_cast<ptrdiff_t>(begin),
            order.begin() + static_cast<ptrdiff_t>(end),
            [&points, dim](size_t a, size_t b) {
              if (points[a][dim] != points[b][dim]) {
                return points[a][dim] < points[b][dim];
              }
              if (points[a] != points[b]) return points[a] < points[b];
              return a < b;
            });
  // Number of slabs along this dimension: tiles^(1/remaining_dims) as in
  // node packing, except the last dimension cuts straight into tiles.
  const size_t remaining_dims = dims - dim;
  const size_t slabs =
      remaining_dims <= 1
          ? tiles
          : std::min(tiles, static_cast<size_t>(std::ceil(std::pow(
                                static_cast<double>(tiles),
                                1.0 / static_cast<double>(remaining_dims)))));
  // Distribute the tile budget over slabs (first `tiles % slabs` slabs get
  // one extra), then cut the span proportionally to each slab's budget so
  // every leaf tile ends up within one point of n / tiles.
  size_t tile_offset = 0;
  size_t point_offset = 0;
  for (size_t s = 0; s < slabs; ++s) {
    const size_t slab_tiles = tiles / slabs + (s < tiles % slabs ? 1 : 0);
    const size_t next_tile_offset = tile_offset + slab_tiles;
    // Proportional boundary: points assigned to tiles [0, next_tile_offset).
    const size_t next_point_offset = n * next_tile_offset / tiles;
    StrTileRecursive(points, order, begin + point_offset,
                     begin + next_point_offset,
                     std::min(dim + 1, dims - 1), dims, slab_tiles, out);
    tile_offset = next_tile_offset;
    point_offset = next_point_offset;
  }
}

}  // namespace

std::vector<std::vector<size_t>> StrTiles(size_t dims,
                                          const std::vector<Point>& points,
                                          size_t num_tiles) {
  WNRS_CHECK(num_tiles >= 1);
  std::vector<std::vector<size_t>> out;
  if (points.empty()) return out;
  const size_t tiles = std::min(num_tiles, points.size());
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    WNRS_CHECK(points[i].dims() == dims);
    order[i] = i;
  }
  out.reserve(tiles);
  StrTileRecursive(points, order, 0, points.size(), 0, dims, tiles, &out);
  return out;
}

}  // namespace wnrs
