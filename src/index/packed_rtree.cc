#include "index/packed_rtree.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "geometry/kernels.h"

namespace wnrs {

PackedRTree& PackedRTree::operator=(PackedRTree&& other) noexcept {
  if (this == &other) return *this;
  dims_ = other.dims_;
  size_ = other.size_;
  height_ = other.height_;
  max_node_entries_ = other.max_node_entries_;
  plane_stride_ = other.plane_stride_;
  // Moving the vectors preserves their data() pointers, so the views in
  // `other` stay valid for the moved-to object; mapped backings transfer
  // wholesale via the shared_ptr.
  nodes_vec_ = std::move(other.nodes_vec_);
  planes_vec_ = std::move(other.planes_vec_);
  refs_vec_ = std::move(other.refs_vec_);
  backing_ = std::move(other.backing_);
  nodes_ = other.nodes_;
  planes_ = other.planes_;
  refs_ = other.refs_;
  num_nodes_ = other.num_nodes_;
  num_entries_ = other.num_entries_;
  node_reads_.store(other.node_reads_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return *this;
}

PackedRTree PackedRTree::Freeze(const RStarTree& tree) {
  const auto start = std::chrono::steady_clock::now();
  PackedRTree out;
  out.dims_ = tree.dims();
  out.size_ = tree.size();
  out.height_ = tree.height();

  // Pass 1: pre-order walk assigning arena indices, so every subtree is
  // contiguous (parent before children, children in entry order — the
  // order best-first and stack traversals touch them).
  std::vector<const RStarTree::Node*> order;
  std::vector<std::pair<const RStarTree::Node*, uint32_t>> index;
  std::vector<const RStarTree::Node*> stack = {tree.root()};
  size_t total_entries = 0;
  while (!stack.empty()) {
    const RStarTree::Node* src = stack.back();
    stack.pop_back();
    index.emplace_back(src, static_cast<uint32_t>(order.size()));
    order.push_back(src);
    total_entries += src->entries.size();
    if (!src->is_leaf) {
      // Reverse push so the pre-order visits children in entry order.
      for (size_t i = src->entries.size(); i > 0; --i) {
        stack.push_back(src->entries[i - 1].child);
      }
    }
  }
  // Strictly below the sentinel: a child index equal to kNoNode would be
  // indistinguishable from "no node" in the traversal heaps, and
  // anything larger would truncate when entry_child narrows the ref.
  WNRS_CHECK(order.size() <= static_cast<size_t>(kNoNode) - 1);
  WNRS_CHECK(total_entries < static_cast<size_t>(kNoNode));

  // index was appended in pre-order; child lookups need the mapping by
  // pointer. The vector doubles as the map: sort once, binary search per
  // child link.
  std::sort(index.begin(), index.end());
  auto index_of = [&index](const RStarTree::Node* n) {
    auto it = std::lower_bound(
        index.begin(), index.end(), n,
        [](const auto& a, const RStarTree::Node* key) { return a.first < key; });
    WNRS_CHECK(it != index.end() && it->first == n);
    return it->second;
  };

  // Pass 2: fill the arena and the entry slabs. The coordinate planes
  // are NaN-filled first so the KernelPad padding lanes past the last
  // entry read as quiet NaN (which fails every kernel predicate), then
  // live entries overwrite their column in each plane.
  out.plane_stride_ = KernelPad(total_entries);
  out.planes_vec_.assign(2 * out.dims_ * out.plane_stride_,
                         std::numeric_limits<double>::quiet_NaN());
  out.nodes_vec_.reserve(order.size());
  out.refs_vec_.reserve(total_entries);
  for (const RStarTree::Node* src : order) {
    Node node;
    node.first_entry = static_cast<uint32_t>(out.refs_vec_.size());
    node.entry_count = static_cast<uint32_t>(src->entries.size());
    node.is_leaf = src->is_leaf ? 1 : 0;
    out.nodes_vec_.push_back(node);
    out.max_node_entries_ =
        std::max(out.max_node_entries_, src->entries.size());
    for (const RStarTree::Entry& e : src->entries) {
      const size_t col = out.refs_vec_.size();
      const Point& lo = e.mbr.lo();
      const Point& hi = e.mbr.hi();
      for (size_t j = 0; j < out.dims_; ++j) {
        out.planes_vec_[j * out.plane_stride_ + col] = lo[j];
        out.planes_vec_[(out.dims_ + j) * out.plane_stride_ + col] = hi[j];
      }
      out.refs_vec_.push_back(src->is_leaf
                                  ? e.id
                                  : static_cast<int64_t>(index_of(e.child)));
    }
  }
  out.SetOwnedViews();

  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  MetricAdd(CounterId::kPackedFreezes);
  MetricAdd(CounterId::kPackedFreezeNanos, static_cast<uint64_t>(ns));
  return out;
}

Rectangle PackedRTree::EntryRect(uint32_t e) const {
  Point lo(dims_);
  Point hi(dims_);
  for (size_t j = 0; j < dims_; ++j) {
    lo[j] = entry_lo(e, j);
    hi[j] = entry_hi(e, j);
  }
  return Rectangle(std::move(lo), std::move(hi));
}

std::vector<PackedRTree::Id> PackedRTree::RangeQueryIds(
    const Rectangle& window) const {
  WNRS_CHECK(window.dims() == dims_);
  const double* wlo = window.lo().coords().data();
  const double* whi = window.hi().coords().data();
  const SoaPlanes p = planes();
  std::vector<unsigned char> hit(KernelPad(max_node_entries_));
  std::vector<Id> out;
  std::vector<uint32_t> stack = {root()};
  while (!stack.empty()) {
    const uint32_t ni = stack.back();
    stack.pop_back();
    CountNodeRead();
    const Node& n = nodes_[ni];
    BoxOverlapMaskSoa(p, n.first_entry, n.entry_count, wlo, whi, hit.data());
    for (uint32_t k = 0; k < n.entry_count; ++k) {
      if (hit[k] == 0) continue;
      const uint32_t e = n.first_entry + k;
      if (n.is_leaf != 0) {
        out.push_back(refs_[e]);
      } else {
        stack.push_back(entry_child(e));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status PackedRTree::CheckInvariants() const {
  if (num_nodes_ == 0) {
    return Status::Internal("packed tree has no nodes");
  }
  if (num_nodes_ > static_cast<size_t>(kNoNode) - 1) {
    return Status::Internal(StrFormat(
        "node count %zu exceeds the child-index range", num_nodes_));
  }
  if (plane_stride_ < KernelPad(num_entries_)) {
    return Status::Internal("coordinate planes not padded to kernel width");
  }
  for (size_t j = 0; j < 2 * dims_; ++j) {
    const double* plane = planes_ + j * plane_stride_;
    for (size_t e = num_entries_; e < plane_stride_; ++e) {
      if (plane[e] == plane[e]) {
        return Status::Internal(
            StrFormat("plane %zu padding lane %zu is not NaN", j, e));
      }
    }
  }
  size_t data_entries = 0;
  std::vector<std::pair<uint32_t, size_t>> stack = {{root(), 1}};
  std::vector<bool> visited(num_nodes_, false);
  size_t leaf_depth = 0;
  while (!stack.empty()) {
    const auto [ni, depth] = stack.back();
    stack.pop_back();
    if (ni >= num_nodes_) {
      return Status::Internal(StrFormat("child index %u out of range", ni));
    }
    if (visited[ni]) {
      return Status::Internal(StrFormat("node %u reachable twice", ni));
    }
    visited[ni] = true;
    const Node& n = nodes_[ni];
    const size_t end = static_cast<size_t>(n.first_entry) + n.entry_count;
    if (end > num_entries_) {
      return Status::Internal(StrFormat("node %u entry slice out of range", ni));
    }
    if (n.is_leaf != 0) {
      data_entries += n.entry_count;
      if (leaf_depth == 0) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        return Status::Internal("leaves at non-uniform depth");
      }
      if (depth != height_) {
        return Status::Internal(
            StrFormat("leaf depth %zu != height %zu", depth, height_));
      }
    } else {
      for (uint32_t e = n.first_entry; e < n.first_entry + n.entry_count;
           ++e) {
        // Range-check the raw ref before it narrows to a child index:
        // refs_ is shared with 64-bit data ids, so corruption must
        // surface as a status, not a silent truncation.
        const int64_t ref = refs_[e];
        if (ref < 0 || static_cast<uint64_t>(ref) >= num_nodes_) {
          return Status::Internal(StrFormat(
              "internal entry %u ref %lld outside the node arena", e,
              static_cast<long long>(ref)));
        }
        stack.emplace_back(static_cast<uint32_t>(ref), depth + 1);
      }
    }
  }
  if (data_entries != size_) {
    return Status::Internal(StrFormat("entry count %zu != size %zu",
                                      data_entries, size_));
  }
  for (size_t ni = 0; ni < num_nodes_; ++ni) {
    if (!visited[ni]) {
      return Status::Internal(StrFormat("node %zu unreachable", ni));
    }
  }
  return Status::Ok();
}

}  // namespace wnrs
