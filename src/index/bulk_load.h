#ifndef WNRS_INDEX_BULK_LOAD_H_
#define WNRS_INDEX_BULK_LOAD_H_

#include <vector>

#include "index/rtree.h"

namespace wnrs {

/// One record for bulk loading: MBR plus caller-assigned id.
struct BulkEntry {
  Rectangle mbr;
  RStarTree::Id id = -1;
};

/// Builds an R*-tree bottom-up with Sort-Tile-Recursive packing
/// (Leutenegger et al.): entries are tiled into near-full leaves by
/// recursive center-coordinate sorting, then each level is packed the same
/// way until a single root remains. Produces much better-clustered pages
/// than repeated insertion and is how benchmark datasets are indexed.
[[nodiscard]] RStarTree BulkLoadStr(size_t dims,
                                    std::vector<BulkEntry> entries,
                                    RTreeOptions options = RTreeOptions());

/// Convenience: bulk-loads points, assigning id = position in `points`.
[[nodiscard]] RStarTree BulkLoadPoints(size_t dims,
                                       const std::vector<Point>& points,
                                       RTreeOptions options = RTreeOptions());

/// Partitions `points` into spatially coherent tiles with the same
/// Sort-Tile-Recursive sweep the bulk loader packs nodes with: recursive
/// center-coordinate slabs, one dimension per level. Returns exactly
/// min(num_tiles, points.size()) non-empty tiles whose sizes differ by at
/// most one; each tile lists ascending point indices and every index
/// appears in exactly one tile. Deterministic: coordinate ties are broken
/// lexicographically on the full point, then by index — so equal points
/// split across a tile boundary in index order.
[[nodiscard]] std::vector<std::vector<size_t>> StrTiles(
    size_t dims, const std::vector<Point>& points, size_t num_tiles);

}  // namespace wnrs

#endif  // WNRS_INDEX_BULK_LOAD_H_
