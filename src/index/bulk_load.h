#ifndef WNRS_INDEX_BULK_LOAD_H_
#define WNRS_INDEX_BULK_LOAD_H_

#include <vector>

#include "index/rtree.h"

namespace wnrs {

/// One record for bulk loading: MBR plus caller-assigned id.
struct BulkEntry {
  Rectangle mbr;
  RStarTree::Id id = -1;
};

/// Builds an R*-tree bottom-up with Sort-Tile-Recursive packing
/// (Leutenegger et al.): entries are tiled into near-full leaves by
/// recursive center-coordinate sorting, then each level is packed the same
/// way until a single root remains. Produces much better-clustered pages
/// than repeated insertion and is how benchmark datasets are indexed.
[[nodiscard]] RStarTree BulkLoadStr(size_t dims,
                                    std::vector<BulkEntry> entries,
                                    RTreeOptions options = RTreeOptions());

/// Convenience: bulk-loads points, assigning id = position in `points`.
[[nodiscard]] RStarTree BulkLoadPoints(size_t dims,
                                       const std::vector<Point>& points,
                                       RTreeOptions options = RTreeOptions());

}  // namespace wnrs

#endif  // WNRS_INDEX_BULK_LOAD_H_
