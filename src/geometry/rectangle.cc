#include "geometry/rectangle.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wnrs {

Rectangle::Rectangle(Point lo, Point hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  WNRS_CHECK(lo_.dims() == hi_.dims());
}

Rectangle Rectangle::FromCorners(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  Point lo(a.dims());
  Point hi(a.dims());
  for (size_t i = 0; i < a.dims(); ++i) {
    lo[i] = std::min(a[i], b[i]);
    hi[i] = std::max(a[i], b[i]);
  }
  return Rectangle(std::move(lo), std::move(hi));
}

bool Rectangle::IsEmpty() const {
  if (lo_.dims() == 0) return true;
  for (size_t i = 0; i < dims(); ++i) {
    if (lo_[i] > hi_[i]) return true;
  }
  return false;
}

bool Rectangle::Contains(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rectangle::ContainsRect(const Rectangle& other) const {
  WNRS_CHECK(other.dims() == dims());
  if (other.IsEmpty()) return true;
  for (size_t i = 0; i < dims(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rectangle::Intersects(const Rectangle& other) const {
  WNRS_CHECK(other.dims() == dims());
  if (IsEmpty() || other.IsEmpty()) return false;
  for (size_t i = 0; i < dims(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

std::optional<Rectangle> Rectangle::Intersection(
    const Rectangle& other) const {
  if (!Intersects(other)) return std::nullopt;
  Point lo(dims());
  Point hi(dims());
  for (size_t i = 0; i < dims(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return Rectangle(std::move(lo), std::move(hi));
}

Rectangle Rectangle::BoundingUnion(const Rectangle& other) const {
  WNRS_CHECK(other.dims() == dims());
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  Point lo(dims());
  Point hi(dims());
  for (size_t i = 0; i < dims(); ++i) {
    lo[i] = std::min(lo_[i], other.lo_[i]);
    hi[i] = std::max(hi_[i], other.hi_[i]);
  }
  return Rectangle(std::move(lo), std::move(hi));
}

double Rectangle::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (size_t i = 0; i < dims(); ++i) {
    v *= hi_[i] - lo_[i];
  }
  return v;
}

double Rectangle::Margin() const {
  if (IsEmpty()) return 0.0;
  double m = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    m += hi_[i] - lo_[i];
  }
  return m;
}

Point Rectangle::Center() const {
  Point c(dims());
  for (size_t i = 0; i < dims(); ++i) {
    c[i] = 0.5 * (lo_[i] + hi_[i]);
  }
  return c;
}

double Rectangle::Extent(size_t i) const {
  return std::max(0.0, hi_[i] - lo_[i]);
}

Point Rectangle::NearestPointTo(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  Point out(dims());
  for (size_t i = 0; i < dims(); ++i) {
    out[i] = std::clamp(p[i], lo_[i], hi_[i]);
  }
  return out;
}

double Rectangle::MinL1Distance(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i]) {
      sum += lo_[i] - p[i];
    } else if (p[i] > hi_[i]) {
      sum += p[i] - hi_[i];
    }
  }
  return sum;
}

double Rectangle::MinDistSquared(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    double d = 0.0;
    if (p[i] < lo_[i]) {
      d = lo_[i] - p[i];
    } else if (p[i] > hi_[i]) {
      d = p[i] - hi_[i];
    }
    sum += d * d;
  }
  return sum;
}

double Rectangle::EnlargementToInclude(const Rectangle& other) const {
  return BoundingUnion(other).Volume() - Volume();
}

double Rectangle::OverlapVolume(const Rectangle& other) const {
  const std::optional<Rectangle> inter = Intersection(other);
  return inter.has_value() ? inter->Volume() : 0.0;
}

std::string Rectangle::ToString() const {
  // Built by append rather than operator+ chaining, which trips a GCC 12
  // -Wrestrict false positive (GCC bug 105651) under -O2 -Werror.
  std::string out = "[";
  out += lo_.ToString();
  out += ", ";
  out += hi_.ToString();
  out += "]";
  return out;
}

}  // namespace wnrs
