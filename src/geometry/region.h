#ifndef WNRS_GEOMETRY_REGION_H_
#define WNRS_GEOMETRY_REGION_H_

#include <string>
#include <vector>

#include "geometry/rectangle.h"

namespace wnrs {

/// A region represented as a (possibly overlapping) union of axis-aligned
/// rectangles — the representation the paper uses for dynamic
/// anti-dominance regions and for the safe region of a query point
/// (Section V-B: "+ and · represent the union and the intersection
/// operation"). Constituent rectangles may overlap; this keeps the
/// rectangle count low (Fig. 10) at the cost of union-aware volume math.
class RectRegion {
 public:
  RectRegion() = default;
  explicit RectRegion(std::vector<Rectangle> rects);

  /// Appends a rectangle; empty rectangles are dropped.
  void Add(Rectangle rect);

  bool empty() const { return rects_.empty(); }
  size_t size() const { return rects_.size(); }
  const std::vector<Rectangle>& rects() const { return rects_; }

  /// Closed membership: true iff some constituent rectangle contains `p`.
  bool Contains(const Point& p) const;

  /// Region intersection: pairwise rectangle intersections
  /// (r_11·r_21 + r_11·r_22 + ... in the paper's notation), with empty
  /// results dropped and rectangles contained in another result rectangle
  /// pruned. The pruning keeps iterated intersections (Algorithm 3) from
  /// blowing up.
  RectRegion Intersect(const RectRegion& other) const;

  /// Removes constituent rectangles fully covered by a single other
  /// constituent. (Does not detect coverage by a union of several.)
  void PruneContained();

  /// Rewrites the region as a compact set of rectangles covering the same
  /// point set. In 2-D this is an exact slab decomposition (disjoint
  /// interiors, adjacent slabs with identical interval structure merged),
  /// which collapses the pairwise-product redundancy that iterated
  /// Intersect calls accumulate; degenerate (zero-extent) rectangles are
  /// preserved unless covered. In other dimensionalities it falls back to
  /// PruneContained().
  void Canonicalize();

  /// Exact volume of the union (overlaps counted once), via recursive slab
  /// decomposition along dimension 0. Exponential only in dimensionality,
  /// polynomial in rectangle count; exact in any dimension.
  double UnionVolume() const;

  /// Smallest rectangle containing the region; empty rectangle if the
  /// region is empty.
  Rectangle BoundingBox() const;

  /// Nearest point of the region to `p` under L1 (any constituent
  /// rectangle's clamp), together with that distance. Precondition:
  /// !empty().
  Point NearestPointTo(const Point& p, double* out_distance = nullptr) const;

  /// Intersects every constituent with `bounds`, dropping what falls
  /// outside.
  void ClipTo(const Rectangle& bounds);

  std::string ToString() const;

 private:
  std::vector<Rectangle> rects_;
};

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_REGION_H_
