#include "geometry/svg.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/file_io.h"

namespace wnrs {

SvgCanvas::SvgCanvas(const Rectangle& viewport, double width_px,
                     double height_px)
    : viewport_(viewport), width_px_(width_px) {
  WNRS_CHECK(viewport.dims() == 2);
  WNRS_CHECK(!viewport.IsEmpty());
  WNRS_CHECK(width_px > 0.0);
  if (height_px > 0.0) {
    height_px_ = height_px;
  } else {
    const double aspect =
        viewport.Extent(0) > 0.0 ? viewport.Extent(1) / viewport.Extent(0)
                                 : 1.0;
    height_px_ = width_px_ * (aspect > 0.0 ? aspect : 1.0);
  }
}

double SvgCanvas::PxX(double x) const {
  return (x - viewport_.lo()[0]) / viewport_.Extent(0) * width_px_;
}

double SvgCanvas::PxY(double y) const {
  // SVG y grows downward; data y grows upward.
  return height_px_ -
         (y - viewport_.lo()[1]) / viewport_.Extent(1) * height_px_;
}

void SvgCanvas::AddRect(const Rectangle& rect, const std::string& fill,
                        const std::string& stroke, double opacity) {
  WNRS_CHECK(rect.dims() == 2);
  if (rect.IsEmpty()) return;
  const double x = PxX(rect.lo()[0]);
  const double y = PxY(rect.hi()[1]);
  const double w = PxX(rect.hi()[0]) - x;
  const double h = PxY(rect.lo()[1]) - y;
  elements_.push_back(StrFormat(
      "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" "
      "fill=\"%s\" stroke=\"%s\" fill-opacity=\"%.3f\"/>",
      x, y, w, h, fill.c_str(), stroke.c_str(), opacity));
}

void SvgCanvas::AddRegion(const RectRegion& region, const std::string& fill,
                          const std::string& stroke, double opacity) {
  for (const Rectangle& rect : region.rects()) {
    AddRect(rect, fill, stroke, opacity);
  }
}

void SvgCanvas::AddPoint(const Point& p, const std::string& fill,
                         double radius_px, const std::string& label) {
  WNRS_CHECK(p.dims() == 2);
  elements_.push_back(
      StrFormat("<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>",
                PxX(p[0]), PxY(p[1]), radius_px, fill.c_str()));
  if (!label.empty()) {
    AddText(p, label);
  }
}

void SvgCanvas::AddText(const Point& at, const std::string& text,
                        double font_px) {
  WNRS_CHECK(at.dims() == 2);
  elements_.push_back(StrFormat(
      "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" "
      "font-family=\"sans-serif\">%s</text>",
      PxX(at[0]) + 6.0, PxY(at[1]) - 6.0, font_px, text.c_str()));
}

std::string SvgCanvas::ToString() const {
  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
      width_px_, height_px_, width_px_, height_px_);
  out += StrFormat(
      "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" "
      "fill=\"white\"/>\n",
      width_px_, height_px_);
  for (const std::string& el : elements_) {
    out += el;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

Status SvgCanvas::WriteTo(const std::string& path) const {
  return storage::WriteStringToFile(path, ToString());
}

}  // namespace wnrs
