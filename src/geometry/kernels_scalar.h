#ifndef WNRS_GEOMETRY_KERNELS_SCALAR_H_
#define WNRS_GEOMETRY_KERNELS_SCALAR_H_

#include <cmath>
#include <cstddef>

/// One-point scalar primitives shared by the scalar reference kernels
/// (geometry/kernels.cc) and the SIMD kernels' tail loops
/// (geometry/kernels_simd.cc). Keeping a single definition is what makes
/// the bit-identical-fallback guarantee checkable instead of aspirational:
/// both translation units inline exactly this arithmetic, so a parity
/// failure can only come from the vector lanes, never from a drifted
/// scalar copy.
///
/// Everything here is branch-free in the accumulators (bitwise `&`/`|`
/// over comparison results) rather than early-exit, which is also the
/// IEEE-754-correct reading of the paper's Definition 1: a NaN coordinate
/// fails every ordered comparison, so it can never satisfy `<=` and the
/// point never dominates. The early-exit predicates in
/// geometry/dominance.cc are written to agree (`!(a <= b)` exits, not
/// `a > b`).

namespace wnrs::kernel_detail {

/// Block width of the any-dominator scan: wide enough that the inner
/// loop vectorizes (8 doubles = one cache line), small enough that a
/// fruitless tail block costs little. The SIMD path scans two 4-lane
/// groups per block so its early-exit points line up with the scalar
/// reference exactly.
inline constexpr size_t kScanBlock = 8;

/// Dominance of one dense point over another with bitwise accumulators
/// instead of early-exit branches. D == 0 selects the runtime-d loop.
template <size_t D>
inline unsigned char DominatesOne(const double* a, const double* b,
                                  size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  if constexpr (D != 0) {
    (void)d;
    for (size_t j = 0; j < D; ++j) {
      all_le &= static_cast<unsigned>(a[j] <= b[j]);
      any_lt |= static_cast<unsigned>(a[j] < b[j]);
    }
  } else {
    for (size_t j = 0; j < d; ++j) {
      all_le &= static_cast<unsigned>(a[j] <= b[j]);
      any_lt |= static_cast<unsigned>(a[j] < b[j]);
    }
  }
  return static_cast<unsigned char>(all_le & any_lt);
}

template <size_t D>
inline unsigned char DynamicallyDominatesOne(const double* a, const double* b,
                                             const double* origin, size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  const size_t n = D != 0 ? D : d;
  for (size_t j = 0; j < n; ++j) {
    const double da = std::fabs(origin[j] - a[j]);
    const double db = std::fabs(origin[j] - b[j]);
    all_le &= static_cast<unsigned>(da <= db);
    any_lt |= static_cast<unsigned>(da < db);
  }
  return static_cast<unsigned char>(all_le & any_lt);
}

/// Transformed lower-corner coordinate of one box interval; same
/// expression tree as RectToDistanceSpace, so packed MinDist values are
/// bit-identical to the Point/Rectangle path. At ±0 the `dlo >= 0.0 &&
/// dhi <= 0.0` containment test accepts both zero signs, matching the
/// transform; a NaN bound falls through to std::min(fabs, fabs), which
/// propagates the first operand exactly like the transform does.
inline double IntervalMinDist(double lo, double hi, double origin) {
  const double dlo = origin - lo;
  const double dhi = origin - hi;
  if (dlo >= 0.0 && dhi <= 0.0) return 0.0;
  return std::min(std::fabs(dlo), std::fabs(dhi));
}

/// InWindow on one point stored with coordinate stride `stride`: |c - p|
/// dynamically dominates |c - q|.
inline bool InWindowOne(const double* p, size_t stride, const double* c,
                        const double* q, size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  for (size_t j = 0; j < d; ++j) {
    const double dp = std::fabs(c[j] - p[j * stride]);
    const double dq = std::fabs(c[j] - q[j]);
    all_le &= static_cast<unsigned>(dp <= dq);
    any_lt |= static_cast<unsigned>(dp < dq);
  }
  return (all_le & any_lt) != 0u;
}

}  // namespace wnrs::kernel_detail

#endif  // WNRS_GEOMETRY_KERNELS_SCALAR_H_
