#include "geometry/transform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "geometry/dominance.h"

namespace wnrs {

Point ToDistanceSpace(const Point& p, const Point& origin) {
  WNRS_CHECK(p.dims() == origin.dims());
  Point out(p.dims());
  for (size_t i = 0; i < p.dims(); ++i) {
    out[i] = std::fabs(origin[i] - p[i]);
  }
  return out;
}

Rectangle RectToDistanceSpace(const Rectangle& r, const Point& origin) {
  WNRS_CHECK(r.dims() == origin.dims());
  Point lo(r.dims());
  Point hi(r.dims());
  for (size_t i = 0; i < r.dims(); ++i) {
    const double dlo = origin[i] - r.lo()[i];
    const double dhi = origin[i] - r.hi()[i];
    if (dlo >= 0.0 && dhi <= 0.0) {
      // Origin coordinate inside the interval.
      lo[i] = 0.0;
      hi[i] = std::max(std::fabs(dlo), std::fabs(dhi));
    } else {
      lo[i] = std::min(std::fabs(dlo), std::fabs(dhi));
      hi[i] = std::max(std::fabs(dlo), std::fabs(dhi));
    }
  }
  return Rectangle(std::move(lo), std::move(hi));
}

Rectangle SymmetricRectAround(const Point& center, const Point& u) {
  WNRS_CHECK(center.dims() == u.dims());
  Point lo(center.dims());
  Point hi(center.dims());
  for (size_t i = 0; i < center.dims(); ++i) {
    const double ext = std::fabs(center[i] - u[i]);
    lo[i] = center[i] - ext;
    hi[i] = center[i] + ext;
  }
  return Rectangle(std::move(lo), std::move(hi));
}

bool InWindow(const Point& p, const Point& c, const Point& q) {
  return DynamicallyDominates(p, q, c);
}

}  // namespace wnrs
