#ifndef WNRS_GEOMETRY_KERNELS_H_
#define WNRS_GEOMETRY_KERNELS_H_

#include <cstddef>

namespace wnrs {

/// Branch-free dominance and distance kernels over raw coordinate spans.
///
/// The `Point`/`Rectangle` classes each own a heap-allocated
/// `std::vector<double>`, which is the right shape for the mutation path
/// but poison for the query hot loops: every dominance test chases two
/// pointers and the per-point allocations defeat vectorization. These
/// kernels are the packed read path's counterpart. They come in two input
/// shapes:
///
///  - *dense spans*: n points of d coordinates, densely packed
///    (point-major, "AoS") — the layout of the query-local skyline
///    buffers that grow while a traversal runs;
///  - *SoA planes* (`SoaPlanes`): one contiguous double plane per min/max
///    coordinate — the frozen `PackedRTree` entry-slab layout, where a
///    node's entries occupy a contiguous index range of every plane and a
///    batch kernel streams full vectors with no shuffling.
///
/// Each dispatched kernel has two implementations with bit-identical
/// outputs: the scalar reference (`scalar_kernels::`, always compiled,
/// auto-vectorizable but branch-free by hand) and an explicit SIMD
/// version (geometry/kernels_simd.cc, AVX2/NEON behind the portable
/// wrapper in geometry/simd.h). The public entry points resolve to the
/// SIMD version once at startup when it was compiled in (`WNRS_SIMD=ON`)
/// and the CPU supports the ISA, else to the scalar reference;
/// `KernelBackend()` names the active choice. CI parity-tests both
/// builds, including NaN/±0/±inf inputs, so the fallback cannot drift.
///
/// Semantics mirror geometry/dominance.h bit for bit: the kernels are
/// drop-in replacements for the scalar predicates, and the packed/dynamic
/// parity tests depend on that. Where IEEE comparisons make the branchy
/// and branch-free formulations differ (NaN coordinates), the Point-based
/// predicates are defined to agree with the branch-free form: a NaN
/// coordinate fails every ordered comparison, so it can never satisfy
/// dominance.

/// Rounds a span length up so that full-width vector blocks may read and
/// write a little past `n` without leaving the allocation: the result is
/// a multiple of 8 and at least n + 8. Scratch buffers handed to the SoA
/// batch kernels must be sized with KernelPad (lanes in [count,
/// KernelPad(count)) hold unspecified values after a kernel runs), and
/// the PackedRTree pads its coordinate planes the same way.
constexpr size_t KernelPad(size_t n) { return (n & ~size_t{7}) + 16; }

/// View of structure-of-arrays min/max coordinate planes (the frozen
/// PackedRTree entry slab): plane j (0 <= j < d) holds the j-th *lower*
/// coordinate of every entry, plane d + j the j-th *upper*. Each plane is
/// `stride` doubles long with stride >= KernelPad(entry count), so batch
/// kernels may read full vectors beyond the last live entry (padding
/// lanes are quiet NaNs; the matching output lanes are scratch).
struct SoaPlanes {
  const double* data = nullptr;  ///< 2*d planes: d lo planes, then d hi.
  size_t stride = 0;             ///< Doubles per plane (KernelPad'ed).
  size_t d = 0;

  const double* lo(size_t j) const { return data + j * stride; }
  const double* hi(size_t j) const { return data + (d + j) * stride; }
};

// ---------------------------------------------------------------------------
// Dense-span kernels (point-major layout).
// ---------------------------------------------------------------------------

/// out[i] = 1 iff point i of `points` dominates `p` (paper Definition 1:
/// points[i*d+j] <= p[j] for all j, strict for some j), else 0.
/// `points` holds n points of d coordinates, densely packed.
void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out);

/// out[i] = 1 iff point i of `points` dynamically dominates `p` w.r.t.
/// `origin` (paper Definition 2), else 0. Equivalent to DominatesBatch
/// after mapping both sides with x -> |origin - x|, fused into one pass.
void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out);

/// True iff any of the n points dominates `p` — the batch twin of the
/// skyline-buffer scan in BBS/window-skyline loops. Scans in blocks so
/// the inner comparisons vectorize while retaining early exit between
/// blocks; the boolean result is identical to the scalar first-hit scan.
bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p);

// ---------------------------------------------------------------------------
// SoA node-scan kernels. All take an entry range [first, first + count)
// of the planes; `count` may be 0. Output buffers must be sized with
// KernelPad(count) (or larger): lanes beyond `count` are scratch.
// ---------------------------------------------------------------------------

/// out[k] = 1 iff box first+k intersects the closed window [wlo, whi]:
/// the negated exclusion test !(hi_j < wlo_j) && !(lo_j > whi_j) per
/// dimension, exactly Rectangle::Intersects. The negated form matters on
/// non-finite data: a NaN coordinate fails the exclusion comparisons, so
/// such a box conservatively *intersects* — overlap is a pruning filter
/// and must never drop a box the Point-based traversal would visit.
void BoxOverlapMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                       const double* wlo, const double* whi,
                       unsigned char* out);

/// Transformed-lower-corner batch: for each box first+k, corner j (the
/// lower corner of the box image under x -> |origin - x|, exactly
/// RectToDistanceSpace(...).lo()[j]) is written to
/// corners[j * corner_stride + k] — SoA scratch layout — and dist[k]
/// receives the corner's L1 norm accumulated in ascending-j order
/// (matching RectToDistanceSpace(...).lo() + L1Norm(), bit for bit).
/// origin == nullptr selects the identity map (static skyline): corners
/// copy the lo planes and dist[k] = sum_j |lo_j|.
void MinDistCornerBatchSoa(const SoaPlanes& planes, size_t first,
                           size_t count, const double* origin,
                           double* corners, size_t corner_stride,
                           double* dist);

/// Point-entry transform batch (entries are degenerate boxes; reads the
/// lo planes): out[j * out_stride + k] = |origin[j] - lo_j(first+k)| and
/// dist[k] = the L1 norm in ascending-j order — ToDistanceSpaceSpan +
/// L1NormSpan on spans, bit for bit. origin == nullptr is the identity
/// map: coordinates are copied and dist[k] = sum_j |lo_j|.
void ToDistanceSpaceBatchSoa(const SoaPlanes& planes, size_t first,
                             size_t count, const double* origin, double* out,
                             size_t out_stride, double* dist);

/// out[k] = 1 iff point entry first+k lies inside customer `c`'s window
/// w.r.t. `q` (InWindow: |c - x| <= |c - q| everywhere, strict
/// somewhere), else 0. Reads the lo planes.
void InWindowMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                     const double* c, const double* q, unsigned char* out);

// ---------------------------------------------------------------------------
// Span primitives shared by the packed traversals. These replicate the
// arithmetic of geometry/transform.cc exactly (same operations in the
// same order), which is what keeps the packed read path bit-identical to
// the Point-based one. They are scalar by design: callers use them on
// single mapped points (heap pops, pool rows), not node scans.
// ---------------------------------------------------------------------------

/// out[j] = |origin[j] - p[j]| for j < d (ToDistanceSpace on spans).
/// `stride` is the distance between consecutive coordinates of `p`.
void ToDistanceSpaceSpan(const double* p, size_t stride, const double* origin,
                         size_t d, double* out);

/// Sum of |p[j]| for j < d (Point::L1Norm on spans).
double L1NormSpan(const double* p, size_t d);

/// True iff `a` dominates `b` (Definition 1) on dense d-spans.
bool DominatesSpan(const double* a, const double* b, size_t d);

/// True iff `p` (a point stored with coordinate stride `stride`)
/// dynamically dominates `q` w.r.t. `c` — InWindow on spans.
bool InWindowSpan(const double* p, size_t stride, const double* c,
                  const double* q, size_t d);

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

/// Name of the kernel implementation the public entry points resolved
/// to: "avx2", "neon", or "scalar".
const char* KernelBackend();

/// Scalar reference implementations of every dispatched kernel — always
/// compiled, never vectorized by hand. The parity tests (and the
/// microbench's scalar configs) call these directly; the public entry
/// points above forward here when no SIMD backend is active.
namespace scalar_kernels {

void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out);
void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out);
bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p);
void BoxOverlapMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                       const double* wlo, const double* whi,
                       unsigned char* out);
void MinDistCornerBatchSoa(const SoaPlanes& planes, size_t first,
                           size_t count, const double* origin,
                           double* corners, size_t corner_stride,
                           double* dist);
void ToDistanceSpaceBatchSoa(const SoaPlanes& planes, size_t first,
                             size_t count, const double* origin, double* out,
                             size_t out_stride, double* dist);
void InWindowMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                     const double* c, const double* q, unsigned char* out);

}  // namespace scalar_kernels

namespace internal {

/// Function table one kernel implementation fills in. Public entry points
/// resolve the active table once (thread-safe local static) and forward.
struct KernelOps {
  void (*dominates_batch)(const double*, size_t, size_t, const double*,
                          unsigned char*);
  void (*dyn_dominates_batch)(const double*, size_t, size_t, const double*,
                              const double*, unsigned char*);
  bool (*dominated_by_any)(const double*, size_t, size_t, const double*);
  void (*box_overlap_mask_soa)(const SoaPlanes&, size_t, size_t,
                               const double*, const double*, unsigned char*);
  void (*mindist_corner_batch_soa)(const SoaPlanes&, size_t, size_t,
                                   const double*, double*, size_t, double*);
  void (*to_distance_space_batch_soa)(const SoaPlanes&, size_t, size_t,
                                      const double*, double*, size_t,
                                      double*);
  void (*in_window_mask_soa)(const SoaPlanes&, size_t, size_t, const double*,
                             const double*, unsigned char*);
  const char* backend;
};

/// Defined in geometry/kernels_simd.cc. Returns the vector kernel table,
/// or nullptr when SIMD kernels were compiled out (WNRS_SIMD=OFF) or the
/// CPU lacks the required ISA at run time.
const KernelOps* SimdKernelOps();

}  // namespace internal

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_KERNELS_H_
