#ifndef WNRS_GEOMETRY_KERNELS_H_
#define WNRS_GEOMETRY_KERNELS_H_

#include <cstddef>

namespace wnrs {

/// Branch-free dominance and distance kernels over raw coordinate spans.
///
/// The `Point`/`Rectangle` classes each own a heap-allocated
/// `std::vector<double>`, which is the right shape for the mutation path
/// but poison for the query hot loops: every dominance test chases two
/// pointers and the per-point allocations defeat vectorization. These
/// kernels are the packed read path's counterpart — they take plain
/// `const double*` spans (d coordinates per point, densely packed unless
/// a stride is taken) and reduce with bitwise accumulators instead of
/// early-exit branches, so the compiler can unroll and auto-vectorize
/// them. A dimension-templated fast path covers d in {2, 3, 4} (the
/// paper's experiment space); other dimensionalities fall back to a
/// generic loop with identical semantics.
///
/// Semantics mirror geometry/dominance.h bit for bit: the kernels are
/// drop-in replacements for the scalar predicates, and the packed/dynamic
/// parity tests depend on that.

/// out[i] = 1 iff point i of `points` dominates `p` (paper Definition 1:
/// points[i*d+j] <= p[j] for all j, strict for some j), else 0.
/// `points` holds n points of d coordinates, densely packed.
void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out);

/// out[i] = 1 iff point i of `points` dynamically dominates `p` w.r.t.
/// `origin` (paper Definition 2), else 0. Equivalent to DominatesBatch
/// after mapping both sides with x -> |origin - x|, fused into one pass.
void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out);

/// True iff any of the n points dominates `p` — the batch twin of the
/// skyline-buffer scan in BBS/window-skyline loops. Scans in blocks so
/// the inner comparisons vectorize while retaining early exit between
/// blocks; the boolean result is identical to the scalar first-hit scan.
bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p);

/// out[i] = L1 MINDIST of box i to `origin`'s distance space: the L1 norm
/// of the transformed lower corner (RectToDistanceSpace(box, origin).lo()
/// computed without materializing the rectangle). `boxes` holds n boxes
/// of 2*d doubles each in min-max-interleaved order
/// [lo0, hi0, lo1, hi1, ...] — the PackedRTree MBR slab layout.
void MinDistBatch(const double* boxes, size_t n, size_t d,
                  const double* origin, double* out);

// ---------------------------------------------------------------------------
// Span primitives shared by the packed traversals. These replicate the
// arithmetic of geometry/transform.cc exactly (same operations in the
// same order), which is what keeps the packed read path bit-identical to
// the Point-based one.
// ---------------------------------------------------------------------------

/// out[j] = |origin[j] - p[j]| for j < d (ToDistanceSpace on spans).
/// `stride` is the distance between consecutive coordinates of `p`
/// (2 for a point stored as a degenerate min-max-interleaved box).
void ToDistanceSpaceSpan(const double* p, size_t stride, const double* origin,
                         size_t d, double* out);

/// out[j] = lower corner of the box image under x -> |origin - x|
/// (RectToDistanceSpace(...).lo() on a min-max-interleaved box span).
void BoxMinDistCornerSpan(const double* box, const double* origin, size_t d,
                          double* out);

/// Sum of |p[j]| for j < d (Point::L1Norm on spans).
double L1NormSpan(const double* p, size_t d);

/// True iff `a` dominates `b` (Definition 1) on dense d-spans.
bool DominatesSpan(const double* a, const double* b, size_t d);

/// True iff `p` (a point stored with coordinate stride `stride`)
/// dynamically dominates `q` w.r.t. `c` — InWindow on spans.
bool InWindowSpan(const double* p, size_t stride, const double* c,
                  const double* q, size_t d);

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_KERNELS_H_
