#ifndef WNRS_GEOMETRY_TRANSFORM_H_
#define WNRS_GEOMETRY_TRANSFORM_H_

#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace wnrs {

/// Maps `p` into the distance space of `origin`: each coordinate becomes
/// f_i(p_i) = |origin_i - p_i| (paper, Section II). Dynamic skylines are
/// ordinary skylines after this mapping.
Point ToDistanceSpace(const Point& p, const Point& origin);

/// Maps a rectangle into the distance space of `origin`: the image of each
/// coordinate interval [lo_i, hi_i] under x -> |origin_i - x| is
/// [minDist_i, maxDist_i], where minDist is 0 when origin_i lies inside the
/// interval. The result tightly bounds the images of all contained points
/// (used by BBS/BBRS pruning over R-tree entries).
Rectangle RectToDistanceSpace(const Rectangle& r, const Point& origin);

/// Symmetric rectangle around `center` with half-extent |center_i - u_i| in
/// each dimension: the original-space preimage of the transformed-space
/// rectangle [0, |center - u|]. This is the rectangle primitive of the
/// paper's anti-dominance-region representation (Fig. 10).
Rectangle SymmetricRectAround(const Point& center, const Point& u);

/// True iff `q` lies in the open "window" of `c` spanned by `p`:
/// |c_i - p_i| <= |c_i - q_i| in every dimension with strict inequality in
/// at least one, i.e. p dynamically dominates q w.r.t. c. Convenience alias
/// of DynamicallyDominates with window-query naming.
bool InWindow(const Point& p, const Point& c, const Point& q);

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_TRANSFORM_H_
