#ifndef WNRS_GEOMETRY_RECTANGLE_H_
#define WNRS_GEOMETRY_RECTANGLE_H_

#include <optional>
#include <string>

#include "geometry/point.h"

namespace wnrs {

/// Axis-aligned hyper-rectangle represented by its lower-left and
/// upper-right corner points (the paper's rectangle representation for
/// anti-dominance regions, Fig. 10(b)). Degenerate rectangles (zero extent
/// in some dimension) are valid; rectangles with lo > hi in any dimension
/// are "empty".
class Rectangle {
 public:
  Rectangle() = default;

  /// Precondition: lo.dims() == hi.dims(). lo > hi in a dimension is
  /// allowed and yields an empty rectangle.
  Rectangle(Point lo, Point hi);

  /// A degenerate rectangle covering exactly one point.
  static Rectangle FromPoint(const Point& p) { return Rectangle(p, p); }

  /// The smallest rectangle containing both corners regardless of their
  /// relative order.
  static Rectangle FromCorners(const Point& a, const Point& b);

  size_t dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// True if lo > hi in some dimension (contains no point).
  bool IsEmpty() const;

  /// Closed containment: lo_i <= p_i <= hi_i for all i.
  bool Contains(const Point& p) const;

  /// True if `other` is fully inside this rectangle (closed semantics).
  bool ContainsRect(const Rectangle& other) const;

  /// Closed intersection test.
  bool Intersects(const Rectangle& other) const;

  /// Intersection; nullopt if the rectangles do not meet. A shared face or
  /// corner yields a degenerate (zero-volume) rectangle.
  std::optional<Rectangle> Intersection(const Rectangle& other) const;

  /// Smallest rectangle containing both.
  Rectangle BoundingUnion(const Rectangle& other) const;

  /// Product of extents; 0 for empty or degenerate rectangles.
  double Volume() const;

  /// Sum of extents (the R*-tree margin heuristic).
  double Margin() const;

  /// Geometric center.
  Point Center() const;

  /// Extent in dimension i (0 if empty in that dimension).
  double Extent(size_t i) const;

  /// The point of this rectangle closest to `p` under any monotone metric
  /// (clamps each coordinate into [lo_i, hi_i]).
  Point NearestPointTo(const Point& p) const;

  /// Minimum L1 distance from `p` to the rectangle (0 if contained).
  double MinL1Distance(const Point& p) const;

  /// Minimum squared Euclidean distance from `p` (the R-tree MINDIST).
  double MinDistSquared(const Point& p) const;

  /// Volume increase if this rectangle were enlarged to cover `other`.
  double EnlargementToInclude(const Rectangle& other) const;

  /// Volume of the intersection with `other` (0 if disjoint).
  double OverlapVolume(const Rectangle& other) const;

  friend bool operator==(const Rectangle& a, const Rectangle& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  /// "[(lo...), (hi...)]".
  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_RECTANGLE_H_
