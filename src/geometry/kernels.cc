#include "geometry/kernels.h"

#include <cmath>

#include "geometry/kernels_scalar.h"

namespace wnrs {

// ---------------------------------------------------------------------------
// Scalar reference implementations. These are the semantics: the SIMD
// path in geometry/kernels_simd.cc must reproduce them bit for bit, and
// the kernel parity tests enforce that with NaN/±0/±inf fuzzing.
// ---------------------------------------------------------------------------

namespace scalar_kernels {
namespace {

using kernel_detail::DominatesOne;
using kernel_detail::DynamicallyDominatesOne;
using kernel_detail::IntervalMinDist;
using kernel_detail::kScanBlock;

template <size_t D>
void DominatesBatchImpl(const double* points, size_t n, size_t d,
                        const double* p, unsigned char* out) {
  const size_t step = D != 0 ? D : d;
  for (size_t i = 0; i < n; ++i) {
    out[i] = DominatesOne<D>(points + i * step, p, d);
  }
}

template <size_t D>
void DynamicallyDominatesBatchImpl(const double* points, size_t n, size_t d,
                                   const double* p, const double* origin,
                                   unsigned char* out) {
  const size_t step = D != 0 ? D : d;
  for (size_t i = 0; i < n; ++i) {
    out[i] = DynamicallyDominatesOne<D>(points + i * step, p, origin, d);
  }
}

template <size_t D>
bool DominatedByAnyImpl(const double* points, size_t n, size_t d,
                        const double* p) {
  const size_t step = D != 0 ? D : d;
  size_t i = 0;
  for (; i + kScanBlock <= n; i += kScanBlock) {
    unsigned any = 0;
    for (size_t k = 0; k < kScanBlock; ++k) {
      any |= DominatesOne<D>(points + (i + k) * step, p, d);
    }
    if (any != 0) return true;
  }
  for (; i < n; ++i) {
    if (DominatesOne<D>(points + i * step, p, d) != 0) return true;
  }
  return false;
}

}  // namespace

void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out) {
  switch (d) {
    case 2: DominatesBatchImpl<2>(points, n, d, p, out); return;
    case 3: DominatesBatchImpl<3>(points, n, d, p, out); return;
    case 4: DominatesBatchImpl<4>(points, n, d, p, out); return;
    default: DominatesBatchImpl<0>(points, n, d, p, out); return;
  }
}

void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out) {
  switch (d) {
    case 2:
      DynamicallyDominatesBatchImpl<2>(points, n, d, p, origin, out);
      return;
    case 3:
      DynamicallyDominatesBatchImpl<3>(points, n, d, p, origin, out);
      return;
    case 4:
      DynamicallyDominatesBatchImpl<4>(points, n, d, p, origin, out);
      return;
    default:
      DynamicallyDominatesBatchImpl<0>(points, n, d, p, origin, out);
      return;
  }
}

bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p) {
  switch (d) {
    case 2: return DominatedByAnyImpl<2>(points, n, d, p);
    case 3: return DominatedByAnyImpl<3>(points, n, d, p);
    case 4: return DominatedByAnyImpl<4>(points, n, d, p);
    default: return DominatedByAnyImpl<0>(points, n, d, p);
  }
}

void BoxOverlapMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                       const double* wlo, const double* whi,
                       unsigned char* out) {
  for (size_t k = 0; k < count; ++k) out[k] = 1;
  for (size_t j = 0; j < planes.d; ++j) {
    const double* lo = planes.lo(j) + first;
    const double* hi = planes.hi(j) + first;
    for (size_t k = 0; k < count; ++k) {
      const unsigned excluded = static_cast<unsigned>(hi[k] < wlo[j]) |
                                static_cast<unsigned>(lo[k] > whi[j]);
      out[k] = static_cast<unsigned char>(out[k] & (excluded ^ 1u));
    }
  }
}

void MinDistCornerBatchSoa(const SoaPlanes& planes, size_t first,
                           size_t count, const double* origin,
                           double* corners, size_t corner_stride,
                           double* dist) {
  for (size_t k = 0; k < count; ++k) dist[k] = 0.0;
  for (size_t j = 0; j < planes.d; ++j) {
    const double* lo = planes.lo(j) + first;
    const double* hi = planes.hi(j) + first;
    double* cj = corners + j * corner_stride;
    if (origin == nullptr) {
      for (size_t k = 0; k < count; ++k) {
        cj[k] = lo[k];
        dist[k] += std::fabs(lo[k]);
      }
    } else {
      const double oj = origin[j];
      for (size_t k = 0; k < count; ++k) {
        const double c = IntervalMinDist(lo[k], hi[k], oj);
        cj[k] = c;
        dist[k] += c;
      }
    }
  }
}

void ToDistanceSpaceBatchSoa(const SoaPlanes& planes, size_t first,
                             size_t count, const double* origin, double* out,
                             size_t out_stride, double* dist) {
  for (size_t k = 0; k < count; ++k) dist[k] = 0.0;
  for (size_t j = 0; j < planes.d; ++j) {
    const double* lo = planes.lo(j) + first;
    double* oj = out + j * out_stride;
    if (origin == nullptr) {
      for (size_t k = 0; k < count; ++k) {
        oj[k] = lo[k];
        dist[k] += std::fabs(lo[k]);
      }
    } else {
      const double o = origin[j];
      for (size_t k = 0; k < count; ++k) {
        const double t = std::fabs(o - lo[k]);
        oj[k] = t;
        dist[k] += t;
      }
    }
  }
}

void InWindowMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                     const double* c, const double* q, unsigned char* out) {
  if (planes.d == 0) {
    for (size_t k = 0; k < count; ++k) out[k] = 0;
    return;
  }
  // all_le rides in bit 0 of out[k], any_lt in bit 1; collapsed at the end.
  for (size_t k = 0; k < count; ++k) out[k] = 1;
  for (size_t j = 0; j < planes.d; ++j) {
    const double* lo = planes.lo(j) + first;
    const double cj = c[j];
    const double dq = std::fabs(cj - q[j]);
    for (size_t k = 0; k < count; ++k) {
      const double dp = std::fabs(cj - lo[k]);
      const unsigned le = static_cast<unsigned>(dp <= dq);
      const unsigned lt = static_cast<unsigned>(dp < dq) << 1;
      out[k] = static_cast<unsigned char>((out[k] & (le | 2u)) | lt);
    }
  }
  for (size_t k = 0; k < count; ++k) {
    out[k] = static_cast<unsigned char>((out[k] & 1u) & (out[k] >> 1));
  }
}

}  // namespace scalar_kernels

// ---------------------------------------------------------------------------
// Span primitives — scalar by design (single mapped points, not node
// scans); see kernels.h.
// ---------------------------------------------------------------------------

void ToDistanceSpaceSpan(const double* p, size_t stride, const double* origin,
                         size_t d, double* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = std::fabs(origin[j] - p[j * stride]);
  }
}

double L1NormSpan(const double* p, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) sum += std::fabs(p[j]);
  return sum;
}

bool DominatesSpan(const double* a, const double* b, size_t d) {
  using kernel_detail::DominatesOne;
  switch (d) {
    case 2: return DominatesOne<2>(a, b, d) != 0;
    case 3: return DominatesOne<3>(a, b, d) != 0;
    case 4: return DominatesOne<4>(a, b, d) != 0;
    default: return DominatesOne<0>(a, b, d) != 0;
  }
}

bool InWindowSpan(const double* p, size_t stride, const double* c,
                  const double* q, size_t d) {
  return kernel_detail::InWindowOne(p, stride, c, q, d);
}

// ---------------------------------------------------------------------------
// Dispatch: resolve once, forward ever after.
// ---------------------------------------------------------------------------

namespace {

internal::KernelOps ScalarOps() {
  internal::KernelOps ops;
  ops.dominates_batch = &scalar_kernels::DominatesBatch;
  ops.dyn_dominates_batch = &scalar_kernels::DynamicallyDominatesBatch;
  ops.dominated_by_any = &scalar_kernels::DominatedByAny;
  ops.box_overlap_mask_soa = &scalar_kernels::BoxOverlapMaskSoa;
  ops.mindist_corner_batch_soa = &scalar_kernels::MinDistCornerBatchSoa;
  ops.to_distance_space_batch_soa = &scalar_kernels::ToDistanceSpaceBatchSoa;
  ops.in_window_mask_soa = &scalar_kernels::InWindowMaskSoa;
  ops.backend = "scalar";
  return ops;
}

const internal::KernelOps& ActiveOps() {
  static const internal::KernelOps ops = [] {
    const internal::KernelOps* simd = internal::SimdKernelOps();
    return simd != nullptr ? *simd : ScalarOps();
  }();
  return ops;
}

}  // namespace

const char* KernelBackend() { return ActiveOps().backend; }

void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out) {
  ActiveOps().dominates_batch(points, n, d, p, out);
}

void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out) {
  ActiveOps().dyn_dominates_batch(points, n, d, p, origin, out);
}

bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p) {
  return ActiveOps().dominated_by_any(points, n, d, p);
}

void BoxOverlapMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                       const double* wlo, const double* whi,
                       unsigned char* out) {
  ActiveOps().box_overlap_mask_soa(planes, first, count, wlo, whi, out);
}

void MinDistCornerBatchSoa(const SoaPlanes& planes, size_t first,
                           size_t count, const double* origin,
                           double* corners, size_t corner_stride,
                           double* dist) {
  ActiveOps().mindist_corner_batch_soa(planes, first, count, origin, corners,
                                       corner_stride, dist);
}

void ToDistanceSpaceBatchSoa(const SoaPlanes& planes, size_t first,
                             size_t count, const double* origin, double* out,
                             size_t out_stride, double* dist) {
  ActiveOps().to_distance_space_batch_soa(planes, first, count, origin, out,
                                          out_stride, dist);
}

void InWindowMaskSoa(const SoaPlanes& planes, size_t first, size_t count,
                     const double* c, const double* q, unsigned char* out) {
  ActiveOps().in_window_mask_soa(planes, first, count, c, q, out);
}

}  // namespace wnrs
