#include "geometry/kernels.h"

#include <algorithm>
#include <cmath>

namespace wnrs {
namespace {

/// Block width of the any-dominator scan: wide enough that the inner
/// loop vectorizes (8 doubles = one cache line), small enough that a
/// fruitless tail block costs little.
constexpr size_t kScanBlock = 8;

/// Dominance of one dense point over another with bitwise accumulators
/// instead of early-exit branches. D == 0 selects the runtime-d loop.
template <size_t D>
inline unsigned char DominatesOne(const double* a, const double* b,
                                  size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  if constexpr (D != 0) {
    (void)d;
    for (size_t j = 0; j < D; ++j) {
      all_le &= static_cast<unsigned>(a[j] <= b[j]);
      any_lt |= static_cast<unsigned>(a[j] < b[j]);
    }
  } else {
    for (size_t j = 0; j < d; ++j) {
      all_le &= static_cast<unsigned>(a[j] <= b[j]);
      any_lt |= static_cast<unsigned>(a[j] < b[j]);
    }
  }
  return static_cast<unsigned char>(all_le & any_lt);
}

template <size_t D>
inline unsigned char DynamicallyDominatesOne(const double* a, const double* b,
                                             const double* origin, size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  const size_t n = D != 0 ? D : d;
  for (size_t j = 0; j < n; ++j) {
    const double da = std::fabs(origin[j] - a[j]);
    const double db = std::fabs(origin[j] - b[j]);
    all_le &= static_cast<unsigned>(da <= db);
    any_lt |= static_cast<unsigned>(da < db);
  }
  return static_cast<unsigned char>(all_le & any_lt);
}

template <size_t D>
void DominatesBatchImpl(const double* points, size_t n, size_t d,
                        const double* p, unsigned char* out) {
  const size_t step = D != 0 ? D : d;
  for (size_t i = 0; i < n; ++i) {
    out[i] = DominatesOne<D>(points + i * step, p, d);
  }
}

template <size_t D>
void DynamicallyDominatesBatchImpl(const double* points, size_t n, size_t d,
                                   const double* p, const double* origin,
                                   unsigned char* out) {
  const size_t step = D != 0 ? D : d;
  for (size_t i = 0; i < n; ++i) {
    out[i] = DynamicallyDominatesOne<D>(points + i * step, p, origin, d);
  }
}

template <size_t D>
bool DominatedByAnyImpl(const double* points, size_t n, size_t d,
                        const double* p) {
  const size_t step = D != 0 ? D : d;
  size_t i = 0;
  for (; i + kScanBlock <= n; i += kScanBlock) {
    unsigned any = 0;
    for (size_t k = 0; k < kScanBlock; ++k) {
      any |= DominatesOne<D>(points + (i + k) * step, p, d);
    }
    if (any != 0) return true;
  }
  for (; i < n; ++i) {
    if (DominatesOne<D>(points + i * step, p, d) != 0) return true;
  }
  return false;
}

/// Transformed lower-corner coordinate of one box interval; same
/// expression tree as RectToDistanceSpace.
inline double IntervalMinDist(double lo, double hi, double origin) {
  const double dlo = origin - lo;
  const double dhi = origin - hi;
  if (dlo >= 0.0 && dhi <= 0.0) return 0.0;
  return std::min(std::fabs(dlo), std::fabs(dhi));
}

}  // namespace

void DominatesBatch(const double* points, size_t n, size_t d, const double* p,
                    unsigned char* out) {
  switch (d) {
    case 2: DominatesBatchImpl<2>(points, n, d, p, out); return;
    case 3: DominatesBatchImpl<3>(points, n, d, p, out); return;
    case 4: DominatesBatchImpl<4>(points, n, d, p, out); return;
    default: DominatesBatchImpl<0>(points, n, d, p, out); return;
  }
}

void DynamicallyDominatesBatch(const double* points, size_t n, size_t d,
                               const double* p, const double* origin,
                               unsigned char* out) {
  switch (d) {
    case 2:
      DynamicallyDominatesBatchImpl<2>(points, n, d, p, origin, out);
      return;
    case 3:
      DynamicallyDominatesBatchImpl<3>(points, n, d, p, origin, out);
      return;
    case 4:
      DynamicallyDominatesBatchImpl<4>(points, n, d, p, origin, out);
      return;
    default:
      DynamicallyDominatesBatchImpl<0>(points, n, d, p, origin, out);
      return;
  }
}

bool DominatedByAny(const double* points, size_t n, size_t d,
                    const double* p) {
  switch (d) {
    case 2: return DominatedByAnyImpl<2>(points, n, d, p);
    case 3: return DominatedByAnyImpl<3>(points, n, d, p);
    case 4: return DominatedByAnyImpl<4>(points, n, d, p);
    default: return DominatedByAnyImpl<0>(points, n, d, p);
  }
}

void MinDistBatch(const double* boxes, size_t n, size_t d,
                  const double* origin, double* out) {
  for (size_t i = 0; i < n; ++i) {
    const double* box = boxes + i * 2 * d;
    double sum = 0.0;
    for (size_t j = 0; j < d; ++j) {
      sum += IntervalMinDist(box[2 * j], box[2 * j + 1], origin[j]);
    }
    out[i] = sum;
  }
}

void ToDistanceSpaceSpan(const double* p, size_t stride, const double* origin,
                         size_t d, double* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = std::fabs(origin[j] - p[j * stride]);
  }
}

void BoxMinDistCornerSpan(const double* box, const double* origin, size_t d,
                          double* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = IntervalMinDist(box[2 * j], box[2 * j + 1], origin[j]);
  }
}

double L1NormSpan(const double* p, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) sum += std::fabs(p[j]);
  return sum;
}

bool DominatesSpan(const double* a, const double* b, size_t d) {
  switch (d) {
    case 2: return DominatesOne<2>(a, b, d) != 0;
    case 3: return DominatesOne<3>(a, b, d) != 0;
    case 4: return DominatesOne<4>(a, b, d) != 0;
    default: return DominatesOne<0>(a, b, d) != 0;
  }
}

bool InWindowSpan(const double* p, size_t stride, const double* c,
                  const double* q, size_t d) {
  unsigned all_le = 1u;
  unsigned any_lt = 0u;
  for (size_t j = 0; j < d; ++j) {
    const double dp = std::fabs(c[j] - p[j * stride]);
    const double dq = std::fabs(c[j] - q[j]);
    all_le &= static_cast<unsigned>(dp <= dq);
    any_lt |= static_cast<unsigned>(dp < dq);
  }
  return (all_le & any_lt) != 0u;
}

}  // namespace wnrs
