#include "geometry/point.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace wnrs {

bool Point::ApproxEquals(const Point& other, double tolerance) const {
  if (dims() != other.dims()) return false;
  for (size_t i = 0; i < dims(); ++i) {
    if (std::fabs(coords_[i] - other.coords_[i]) > tolerance) return false;
  }
  return true;
}

double Point::L1Norm() const {
  double sum = 0.0;
  for (double c : coords_) sum += std::fabs(c);
  return sum;
}

double Point::L1Distance(const Point& other) const {
  WNRS_CHECK(dims() == other.dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    sum += std::fabs(coords_[i] - other.coords_[i]);
  }
  return sum;
}

double Point::WeightedL1Distance(const Point& other,
                                 const std::vector<double>& weights) const {
  WNRS_CHECK(dims() == other.dims());
  WNRS_CHECK(weights.size() == dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    sum += weights[i] * std::fabs(coords_[i] - other.coords_[i]);
  }
  return sum;
}

double Point::L2Distance(const Point& other) const {
  WNRS_CHECK(dims() == other.dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    const double d = coords_[i] - other.coords_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::string Point::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < dims(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%g", coords_[i]);
  }
  out += ")";
  return out;
}

}  // namespace wnrs
