#ifndef WNRS_GEOMETRY_SVG_H_
#define WNRS_GEOMETRY_SVG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "geometry/region.h"

namespace wnrs {

/// Minimal SVG writer for 2-D geometry: renders points, rectangles and
/// rectangle regions into a viewport mapped from a data-space bounding
/// box (y axis flipped so larger data values draw upward). Used by the
/// documentation examples to visualize safe regions, anti-dominance
/// regions, and staircases. Only 2-D geometry is accepted.
class SvgCanvas {
 public:
  /// `viewport` is the data-space rectangle mapped onto a width_px-wide
  /// image. Height follows the data aspect ratio unless `height_px` is
  /// given (> 0), which stretches the axes independently — usually what a
  /// figure with incommensurable units (price vs mileage) wants.
  SvgCanvas(const Rectangle& viewport, double width_px = 800.0,
            double height_px = 0.0);

  /// Adds a filled rectangle. Colors are any SVG color string
  /// ("#88c0d0", "none", "rgba(...)").
  void AddRect(const Rectangle& rect, const std::string& fill,
               const std::string& stroke = "none", double opacity = 1.0);

  /// Adds every constituent rectangle of a region with shared styling.
  void AddRegion(const RectRegion& region, const std::string& fill,
                 const std::string& stroke = "none", double opacity = 0.5);

  /// Adds a circle marker with an optional text label.
  void AddPoint(const Point& p, const std::string& fill, double radius_px = 4.0,
                const std::string& label = "");

  /// Adds free text at a data-space position.
  void AddText(const Point& at, const std::string& text,
               double font_px = 12.0);

  /// Serializes the accumulated scene.
  std::string ToString() const;

  /// Writes the scene to a file.
  Status WriteTo(const std::string& path) const;

 private:
  /// Maps a data-space coordinate to pixel space.
  double PxX(double x) const;
  double PxY(double y) const;

  Rectangle viewport_;
  double width_px_;
  double height_px_;
  std::vector<std::string> elements_;
};

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_SVG_H_
