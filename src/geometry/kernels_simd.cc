#include "geometry/kernels.h"

// Explicit SIMD implementations of the dispatched kernels. This TU is
// always part of the build; the vector code inside is compiled only when
// CMake defines WNRS_SIMD_KERNELS (the WNRS_SIMD=ON leg), in which case
// the TU is built with the ISA flags (-mavx2 on x86-64; NEON is baseline
// on AArch64) and -ffp-contract=off so the compiler cannot fuse the
// kernels' adds and subs into FMAs that would round differently from the
// scalar reference.
//
// Bit-identity discipline (checked by tests/kernels_test.cc): vectorize
// across *entries* — four points or boxes per group — and loop the
// dimensions in ascending order inside, so each lane performs exactly
// the scalar per-point operation sequence. Comparisons are ordered-quiet
// (simd.h), min is MinStd (std::min semantics, not the ISA min), abs is
// a sign-bit clear, and tails fall through to the same one-point helpers
// the scalar reference inlines (geometry/kernels_scalar.h).

#if defined(WNRS_SIMD_KERNELS)

#include <cmath>

#include "geometry/kernels_scalar.h"
#include "geometry/simd.h"

#endif  // defined(WNRS_SIMD_KERNELS)

#if defined(WNRS_SIMD_KERNELS) && !defined(WNRS_SIMD_BACKEND_SCALAR)

namespace wnrs {
namespace {

using kernel_detail::DominatesOne;
using kernel_detail::DynamicallyDominatesOne;
using kernel_detail::kScanBlock;

/// Spreads the low four mask bits into 0/1 bytes.
inline void StoreMaskBytes(unsigned bits, unsigned char* out) {
  out[0] = static_cast<unsigned char>(bits & 1u);
  out[1] = static_cast<unsigned char>((bits >> 1) & 1u);
  out[2] = static_cast<unsigned char>((bits >> 2) & 1u);
  out[3] = static_cast<unsigned char>((bits >> 3) & 1u);
}

/// Dominance masks for four dense points starting at `base` against `p`.
inline unsigned DominatesGroup(const double* base, size_t d,
                               const double* p) {
  simd::Mask4d all_le = simd::TrueMask();
  simd::Mask4d any_lt = simd::FalseMask();
  for (size_t j = 0; j < d; ++j) {
    const simd::Vec4d a = simd::LoadStride(base + j, d);
    const simd::Vec4d b = simd::Set1(p[j]);
    all_le = simd::And(all_le, simd::CmpLE(a, b));
    any_lt = simd::Or(any_lt, simd::CmpLT(a, b));
  }
  return simd::MoveMask(simd::And(all_le, any_lt));
}

inline unsigned DynDominatesGroup(const double* base, size_t d,
                                  const double* p, const double* origin) {
  simd::Mask4d all_le = simd::TrueMask();
  simd::Mask4d any_lt = simd::FalseMask();
  for (size_t j = 0; j < d; ++j) {
    const simd::Vec4d oj = simd::Set1(origin[j]);
    const simd::Vec4d da =
        simd::Abs(simd::Sub(oj, simd::LoadStride(base + j, d)));
    const simd::Vec4d db = simd::Set1(std::fabs(origin[j] - p[j]));
    all_le = simd::And(all_le, simd::CmpLE(da, db));
    any_lt = simd::Or(any_lt, simd::CmpLT(da, db));
  }
  return simd::MoveMask(simd::And(all_le, any_lt));
}

void DominatesBatchSimd(const double* points, size_t n, size_t d,
                        const double* p, unsigned char* out) {
  size_t i = 0;
  for (; i + simd::kWidth <= n; i += simd::kWidth) {
    StoreMaskBytes(DominatesGroup(points + i * d, d, p), out + i);
  }
  for (; i < n; ++i) {
    out[i] = DominatesOne<0>(points + i * d, p, d);
  }
}

void DynamicallyDominatesBatchSimd(const double* points, size_t n, size_t d,
                                   const double* p, const double* origin,
                                   unsigned char* out) {
  size_t i = 0;
  for (; i + simd::kWidth <= n; i += simd::kWidth) {
    StoreMaskBytes(DynDominatesGroup(points + i * d, d, p, origin), out + i);
  }
  for (; i < n; ++i) {
    out[i] = DynamicallyDominatesOne<0>(points + i * d, p, origin, d);
  }
}

bool DominatedByAnySimd(const double* points, size_t n, size_t d,
                        const double* p) {
  static_assert(kScanBlock % simd::kWidth == 0,
                "scan blocks must split into whole vector groups");
  size_t i = 0;
  // Same blocking as the scalar reference: any-hit is checked once per
  // kScanBlock entries, so both paths inspect identical entry prefixes.
  for (; i + kScanBlock <= n; i += kScanBlock) {
    unsigned any = 0;
    for (size_t g = 0; g < kScanBlock; g += simd::kWidth) {
      any |= DominatesGroup(points + (i + g) * d, d, p);
    }
    if (any != 0) return true;
  }
  for (; i < n; ++i) {
    if (DominatesOne<0>(points + i * d, p, d) != 0) return true;
  }
  return false;
}

void BoxOverlapMaskSoaSimd(const SoaPlanes& planes, size_t first,
                           size_t count, const double* wlo,
                           const double* whi, unsigned char* out) {
  for (size_t k = 0; k < count; k += simd::kWidth) {
    simd::Mask4d acc = simd::TrueMask();
    for (size_t j = 0; j < planes.d; ++j) {
      const simd::Vec4d lo = simd::LoadU(planes.lo(j) + first + k);
      const simd::Vec4d hi = simd::LoadU(planes.hi(j) + first + k);
      // Rectangle::Intersects' negated exclusion test, so NaN
      // conservatively intersects (see kernels.h).
      const simd::Mask4d excluded =
          simd::Or(simd::CmpLT(hi, simd::Set1(wlo[j])),
                   simd::CmpLT(simd::Set1(whi[j]), lo));
      acc = simd::AndNot(excluded, acc);
    }
    StoreMaskBytes(simd::MoveMask(acc), out + k);
  }
}

void MinDistCornerBatchSoaSimd(const SoaPlanes& planes, size_t first,
                               size_t count, const double* origin,
                               double* corners, size_t corner_stride,
                               double* dist) {
  for (size_t k = 0; k < count; k += simd::kWidth) {
    simd::Vec4d sum = simd::Zero();
    for (size_t j = 0; j < planes.d; ++j) {
      const simd::Vec4d lo = simd::LoadU(planes.lo(j) + first + k);
      simd::Vec4d corner;
      if (origin == nullptr) {
        corner = lo;
        sum = simd::Add(sum, simd::Abs(lo));
      } else {
        const simd::Vec4d hi = simd::LoadU(planes.hi(j) + first + k);
        const simd::Vec4d oj = simd::Set1(origin[j]);
        const simd::Vec4d dlo = simd::Sub(oj, lo);
        const simd::Vec4d dhi = simd::Sub(oj, hi);
        const simd::Mask4d inside =
            simd::And(simd::CmpGE(dlo, simd::Zero()),
                      simd::CmpLE(dhi, simd::Zero()));
        corner = simd::Select(
            inside, simd::Zero(),
            simd::MinStd(simd::Abs(dlo), simd::Abs(dhi)));
        sum = simd::Add(sum, corner);
      }
      simd::StoreU(corners + j * corner_stride + k, corner);
    }
    simd::StoreU(dist + k, sum);
  }
}

void ToDistanceSpaceBatchSoaSimd(const SoaPlanes& planes, size_t first,
                                 size_t count, const double* origin,
                                 double* out, size_t out_stride,
                                 double* dist) {
  for (size_t k = 0; k < count; k += simd::kWidth) {
    simd::Vec4d sum = simd::Zero();
    for (size_t j = 0; j < planes.d; ++j) {
      const simd::Vec4d lo = simd::LoadU(planes.lo(j) + first + k);
      simd::Vec4d t;
      if (origin == nullptr) {
        t = lo;
        sum = simd::Add(sum, simd::Abs(lo));
      } else {
        t = simd::Abs(simd::Sub(simd::Set1(origin[j]), lo));
        sum = simd::Add(sum, t);
      }
      simd::StoreU(out + j * out_stride + k, t);
    }
    simd::StoreU(dist + k, sum);
  }
}

void InWindowMaskSoaSimd(const SoaPlanes& planes, size_t first, size_t count,
                         const double* c, const double* q,
                         unsigned char* out) {
  for (size_t k = 0; k < count; k += simd::kWidth) {
    simd::Mask4d all_le = simd::TrueMask();
    simd::Mask4d any_lt = simd::FalseMask();
    for (size_t j = 0; j < planes.d; ++j) {
      const simd::Vec4d cj = simd::Set1(c[j]);
      const simd::Vec4d dp =
          simd::Abs(simd::Sub(cj, simd::LoadU(planes.lo(j) + first + k)));
      const simd::Vec4d dq = simd::Set1(std::fabs(c[j] - q[j]));
      all_le = simd::And(all_le, simd::CmpLE(dp, dq));
      any_lt = simd::Or(any_lt, simd::CmpLT(dp, dq));
    }
    StoreMaskBytes(simd::MoveMask(simd::And(all_le, any_lt)), out + k);
  }
}

}  // namespace

namespace internal {

const KernelOps* SimdKernelOps() {
#if defined(__x86_64__) || defined(_M_X64)
  // Compiled with -mavx2, so refuse to dispatch on older silicon.
  if (!__builtin_cpu_supports("avx2")) return nullptr;
#endif
  static const KernelOps ops = [] {
    KernelOps o;
    o.dominates_batch = &DominatesBatchSimd;
    o.dyn_dominates_batch = &DynamicallyDominatesBatchSimd;
    o.dominated_by_any = &DominatedByAnySimd;
    o.box_overlap_mask_soa = &BoxOverlapMaskSoaSimd;
    o.mindist_corner_batch_soa = &MinDistCornerBatchSoaSimd;
    o.to_distance_space_batch_soa = &ToDistanceSpaceBatchSoaSimd;
    o.in_window_mask_soa = &InWindowMaskSoaSimd;
    o.backend = simd::BackendName();
    return o;
  }();
  return &ops;
}

}  // namespace internal
}  // namespace wnrs

#else  // !WNRS_SIMD_KERNELS or no usable vector backend

namespace wnrs::internal {

const KernelOps* SimdKernelOps() { return nullptr; }

}  // namespace wnrs::internal

#endif  // WNRS_SIMD_KERNELS && backend
