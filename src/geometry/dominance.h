#ifndef WNRS_GEOMETRY_DOMINANCE_H_
#define WNRS_GEOMETRY_DOMINANCE_H_

#include "geometry/point.h"

namespace wnrs {

/// Static dominance (paper Definition 1, smaller-is-better in every
/// dimension): `a` dominates `b` iff a_i <= b_i for all i and a_j < b_j for
/// some j. IEEE-754 reading on non-finite data: a NaN coordinate fails
/// every ordered comparison, so a point with a NaN dimension neither
/// dominates nor is dominated — bit-identical to the branch-free kernels
/// in geometry/kernels.h (the kernel parity fuzz test pins this).
bool Dominates(const Point& a, const Point& b);

/// True iff a_i < b_i in every dimension.
bool StrictlyDominatesAllDims(const Point& a, const Point& b);

/// True iff a_i <= b_i in every dimension (a == b qualifies).
bool WeaklyDominates(const Point& a, const Point& b);

/// Dynamic dominance w.r.t. a query point (paper Definition 2):
/// `a` dynamically dominates `b` w.r.t. `origin` iff
/// |origin_i - a_i| <= |origin_i - b_i| for all i, strict for some j.
/// This is plain dominance after mapping both points with f_i(x) =
/// |origin_i - x_i|.
bool DynamicallyDominates(const Point& a, const Point& b, const Point& origin);

/// Dominance comparison outcome for algorithms that want one pass.
enum class DominanceRelation {
  kFirstDominates,
  kSecondDominates,
  kEqual,
  kIncomparable,
};

/// Relates `a` and `b` under static dominance in a single coordinate scan.
DominanceRelation CompareDominance(const Point& a, const Point& b);

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_DOMINANCE_H_
