#ifndef WNRS_GEOMETRY_SIMD_H_
#define WNRS_GEOMETRY_SIMD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

/// Portable 4-wide double vector used by the SIMD kernels in
/// geometry/kernels_simd.cc. The backend is chosen at compile time of the
/// *including translation unit*:
///
///   - AVX2 when __AVX2__ is defined (x86-64 TUs built with -mavx2),
///   - NEON when targeting AArch64 (two float64x2_t halves emulate the
///     4-wide shape, so kernel code is width-agnostic),
///   - a plain-array scalar fallback otherwise.
///
/// Every operation is defined to be bit-identical to the scalar
/// expression it replaces, including the annoying corners:
///
///   - comparisons are ordered and quiet (NaN compares false, like the
///     scalar <, <=, >= operators),
///   - MinStd(a, b) replicates std::min(a, b) = (b < a) ? b : a exactly,
///     so a NaN in `a` propagates `a` (raw _mm256_min_pd would return the
///     second operand instead),
///   - Abs clears the sign bit only (fabs semantics: -0.0 -> +0.0, NaN
///     payloads preserved).
///
/// That contract is what lets the vector kernels promise bit-identical
/// outputs to the scalar reference implementations in
/// geometry/kernels_scalar.h — the kernel parity tests fuzz it with
/// NaN/±0/±inf inputs.

#if defined(__AVX2__)
#include <immintrin.h>
#define WNRS_SIMD_BACKEND_AVX2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define WNRS_SIMD_BACKEND_NEON 1
#else
#define WNRS_SIMD_BACKEND_SCALAR 1
#endif

namespace wnrs::simd {

/// Lane count of Vec4d. Kernels step spans in chunks of kWidth.
inline constexpr size_t kWidth = 4;

/// Compile-time name of the backend this TU sees.
constexpr const char* BackendName() {
#if defined(WNRS_SIMD_BACKEND_AVX2)
  return "avx2";
#elif defined(WNRS_SIMD_BACKEND_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

#if defined(WNRS_SIMD_BACKEND_AVX2)

struct Vec4d {
  __m256d v;
};

/// Lane mask: each lane is all-ones (true) or all-zeros (false).
struct Mask4d {
  __m256d m;
};

inline Vec4d LoadU(const double* p) { return {_mm256_loadu_pd(p)}; }
inline Vec4d Set1(double x) { return {_mm256_set1_pd(x)}; }
inline Vec4d Zero() { return {_mm256_setzero_pd()}; }
/// Lanes p[0], p[stride], p[2*stride], p[3*stride] in natural order.
inline Vec4d LoadStride(const double* p, size_t stride) {
  return {_mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0])};
}
inline void StoreU(double* p, Vec4d a) { _mm256_storeu_pd(p, a.v); }
inline Vec4d Add(Vec4d a, Vec4d b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec4d Sub(Vec4d a, Vec4d b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec4d Abs(Vec4d a) {
  const __m256d sign =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  return {_mm256_and_pd(a.v, sign)};
}
/// std::min(a, b) bit for bit: (b < a) ? b : a, `a` on unordered input.
inline Vec4d MinStd(Vec4d a, Vec4d b) {
  const __m256d lt = _mm256_cmp_pd(b.v, a.v, _CMP_LT_OQ);
  return {_mm256_blendv_pd(a.v, b.v, lt)};
}
inline Mask4d CmpLE(Vec4d a, Vec4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline Mask4d CmpLT(Vec4d a, Vec4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline Mask4d CmpGE(Vec4d a, Vec4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline Mask4d And(Mask4d a, Mask4d b) { return {_mm256_and_pd(a.m, b.m)}; }
inline Mask4d Or(Mask4d a, Mask4d b) { return {_mm256_or_pd(a.m, b.m)}; }
/// ~a & b per lane.
inline Mask4d AndNot(Mask4d a, Mask4d b) {
  return {_mm256_andnot_pd(a.m, b.m)};
}
/// m ? a : b per lane.
inline Vec4d Select(Mask4d m, Vec4d a, Vec4d b) {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}
/// Bit k of the result is lane k's truth value.
inline unsigned MoveMask(Mask4d m) {
  return static_cast<unsigned>(_mm256_movemask_pd(m.m));
}
inline Mask4d TrueMask() {
  const __m256d z = _mm256_setzero_pd();
  return {_mm256_cmp_pd(z, z, _CMP_EQ_OQ)};
}
inline Mask4d FalseMask() { return {_mm256_setzero_pd()}; }

#elif defined(WNRS_SIMD_BACKEND_NEON)

struct Vec4d {
  float64x2_t lo;
  float64x2_t hi;
};

struct Mask4d {
  uint64x2_t lo;
  uint64x2_t hi;
};

inline Vec4d LoadU(const double* p) {
  return {vld1q_f64(p), vld1q_f64(p + 2)};
}
inline Vec4d Set1(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline Vec4d Zero() { return Set1(0.0); }
inline Vec4d LoadStride(const double* p, size_t stride) {
  const float64x2_t lo =
      vcombine_f64(vld1_f64(p), vld1_f64(p + stride));
  const float64x2_t hi =
      vcombine_f64(vld1_f64(p + 2 * stride), vld1_f64(p + 3 * stride));
  return {lo, hi};
}
inline void StoreU(double* p, Vec4d a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}
inline Vec4d Add(Vec4d a, Vec4d b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline Vec4d Sub(Vec4d a, Vec4d b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline Vec4d Abs(Vec4d a) { return {vabsq_f64(a.lo), vabsq_f64(a.hi)}; }
inline Mask4d CmpLE(Vec4d a, Vec4d b) {
  return {vcleq_f64(a.lo, b.lo), vcleq_f64(a.hi, b.hi)};
}
inline Mask4d CmpLT(Vec4d a, Vec4d b) {
  return {vcltq_f64(a.lo, b.lo), vcltq_f64(a.hi, b.hi)};
}
inline Mask4d CmpGE(Vec4d a, Vec4d b) {
  return {vcgeq_f64(a.lo, b.lo), vcgeq_f64(a.hi, b.hi)};
}
inline Mask4d And(Mask4d a, Mask4d b) {
  return {vandq_u64(a.lo, b.lo), vandq_u64(a.hi, b.hi)};
}
inline Mask4d Or(Mask4d a, Mask4d b) {
  return {vorrq_u64(a.lo, b.lo), vorrq_u64(a.hi, b.hi)};
}
/// ~a & b per lane.
inline Mask4d AndNot(Mask4d a, Mask4d b) {
  return {vbicq_u64(b.lo, a.lo), vbicq_u64(b.hi, a.hi)};
}
inline Vec4d Select(Mask4d m, Vec4d a, Vec4d b) {
  return {vbslq_f64(m.lo, a.lo, b.lo), vbslq_f64(m.hi, a.hi, b.hi)};
}
inline Vec4d MinStd(Vec4d a, Vec4d b) { return Select(CmpLT(b, a), b, a); }
inline unsigned MoveMask(Mask4d m) {
  return static_cast<unsigned>(vgetq_lane_u64(m.lo, 0) >> 63) |
         (static_cast<unsigned>(vgetq_lane_u64(m.lo, 1) >> 63) << 1) |
         (static_cast<unsigned>(vgetq_lane_u64(m.hi, 0) >> 63) << 2) |
         (static_cast<unsigned>(vgetq_lane_u64(m.hi, 1) >> 63) << 3);
}
inline Mask4d TrueMask() {
  return {vdupq_n_u64(~0ULL), vdupq_n_u64(~0ULL)};
}
inline Mask4d FalseMask() { return {vdupq_n_u64(0), vdupq_n_u64(0)}; }

#else  // WNRS_SIMD_BACKEND_SCALAR

struct Vec4d {
  double v[4];
};

struct Mask4d {
  bool m[4];
};

inline Vec4d LoadU(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline Vec4d Set1(double x) { return {{x, x, x, x}}; }
inline Vec4d Zero() { return Set1(0.0); }
inline Vec4d LoadStride(const double* p, size_t stride) {
  return {{p[0], p[stride], p[2 * stride], p[3 * stride]}};
}
inline void StoreU(double* p, Vec4d a) {
  for (size_t k = 0; k < 4; ++k) p[k] = a.v[k];
}
inline Vec4d Add(Vec4d a, Vec4d b) {
  Vec4d r;
  for (size_t k = 0; k < 4; ++k) r.v[k] = a.v[k] + b.v[k];
  return r;
}
inline Vec4d Sub(Vec4d a, Vec4d b) {
  Vec4d r;
  for (size_t k = 0; k < 4; ++k) r.v[k] = a.v[k] - b.v[k];
  return r;
}
inline Vec4d Abs(Vec4d a) {
  Vec4d r;
  for (size_t k = 0; k < 4; ++k) r.v[k] = std::fabs(a.v[k]);
  return r;
}
inline Vec4d MinStd(Vec4d a, Vec4d b) {
  Vec4d r;
  for (size_t k = 0; k < 4; ++k) r.v[k] = b.v[k] < a.v[k] ? b.v[k] : a.v[k];
  return r;
}
inline Mask4d CmpLE(Vec4d a, Vec4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = a.v[k] <= b.v[k];
  return r;
}
inline Mask4d CmpLT(Vec4d a, Vec4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = a.v[k] < b.v[k];
  return r;
}
inline Mask4d CmpGE(Vec4d a, Vec4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = a.v[k] >= b.v[k];
  return r;
}
inline Mask4d And(Mask4d a, Mask4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = a.m[k] && b.m[k];
  return r;
}
inline Mask4d Or(Mask4d a, Mask4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = a.m[k] || b.m[k];
  return r;
}
inline Mask4d AndNot(Mask4d a, Mask4d b) {
  Mask4d r;
  for (size_t k = 0; k < 4; ++k) r.m[k] = !a.m[k] && b.m[k];
  return r;
}
inline Vec4d Select(Mask4d m, Vec4d a, Vec4d b) {
  Vec4d r;
  for (size_t k = 0; k < 4; ++k) r.v[k] = m.m[k] ? a.v[k] : b.v[k];
  return r;
}
inline unsigned MoveMask(Mask4d m) {
  unsigned bits = 0;
  for (size_t k = 0; k < 4; ++k) bits |= (m.m[k] ? 1u : 0u) << k;
  return bits;
}
inline Mask4d TrueMask() { return {{true, true, true, true}}; }
inline Mask4d FalseMask() { return {{false, false, false, false}}; }

#endif  // backend selection

}  // namespace wnrs::simd

#endif  // WNRS_GEOMETRY_SIMD_H_
