#ifndef WNRS_GEOMETRY_POINT_H_
#define WNRS_GEOMETRY_POINT_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace wnrs {

/// A point in the d-dimensional numeric data space `D = (D^1, ..., D^d)`
/// (paper, Section II). Products, customer preferences, and query points are
/// all `Point`s; which role a point plays is decided by the API it is passed
/// to.
///
/// Points are copyable value types. Dimensionality is fixed per instance and
/// mixing dimensionalities in one operation is a programming error (checked).
class Point {
 public:
  /// Zero-dimensional point; useful only as a placeholder before assignment.
  Point() = default;

  /// Origin of a d-dimensional space (all coordinates zero).
  explicit Point(size_t dims) : coords_(dims, 0.0) {}

  /// Point with explicit coordinates, e.g. `Point({8.5, 55.0})`.
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  /// Adopts an existing coordinate vector.
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}

  size_t dims() const { return coords_.size(); }
  bool empty() const { return coords_.empty(); }

  double operator[](size_t i) const { return coords_[i]; }
  double& operator[](size_t i) { return coords_[i]; }

  const std::vector<double>& coords() const { return coords_; }

  /// Exact coordinate-wise equality.
  friend bool operator==(const Point& a, const Point& b) {
    return a.coords_ == b.coords_;
  }

  /// Lexicographic order, so points can key ordered containers.
  friend bool operator<(const Point& a, const Point& b) {
    return a.coords_ < b.coords_;
  }

  /// True if every coordinate differs from `other` by at most `tolerance`.
  bool ApproxEquals(const Point& other, double tolerance = 1e-9) const;

  /// Sum of |coords|.
  double L1Norm() const;

  /// L1 distance to `other`. Precondition: same dims.
  double L1Distance(const Point& other) const;

  /// Sum over i of weights[i] * |this[i] - other[i]| — the paper's cost
  /// atom (Eqn. 9). Precondition: weights.size() == dims().
  double WeightedL1Distance(const Point& other,
                            const std::vector<double>& weights) const;

  /// Euclidean distance to `other`.
  double L2Distance(const Point& other) const;

  /// "(x, y, ...)" with shortest round-trip formatting.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

}  // namespace wnrs

#endif  // WNRS_GEOMETRY_POINT_H_
