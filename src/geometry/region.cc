#include "geometry/region.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace wnrs {
namespace {

/// Volume of the union of `rects` restricted to dimensions [dim, dims).
/// Slices dimension `dim` at every rectangle boundary; within a slab the
/// active set is constant, so the remaining dimensions recurse.
double UnionVolumeFromDim(const std::vector<const Rectangle*>& rects,
                          size_t dim) {
  if (rects.empty()) return 0.0;
  const size_t dims = rects.front()->dims();
  if (dim + 1 == dims) {
    // Base case: 1-D interval union.
    std::vector<std::pair<double, double>> intervals;
    intervals.reserve(rects.size());
    for (const Rectangle* r : rects) {
      intervals.emplace_back(r->lo()[dim], r->hi()[dim]);
    }
    std::sort(intervals.begin(), intervals.end());
    double total = 0.0;
    double cur_lo = intervals.front().first;
    double cur_hi = intervals.front().second;
    for (size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first > cur_hi) {
        total += cur_hi - cur_lo;
        cur_lo = intervals[i].first;
        cur_hi = intervals[i].second;
      } else {
        cur_hi = std::max(cur_hi, intervals[i].second);
      }
    }
    total += cur_hi - cur_lo;
    return total;
  }

  std::vector<double> cuts;
  cuts.reserve(rects.size() * 2);
  for (const Rectangle* r : rects) {
    cuts.push_back(r->lo()[dim]);
    cuts.push_back(r->hi()[dim]);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  double total = 0.0;
  std::vector<const Rectangle*> active;
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    const double slab_lo = cuts[s];
    const double slab_hi = cuts[s + 1];
    const double width = slab_hi - slab_lo;
    if (width <= 0.0) continue;
    active.clear();
    for (const Rectangle* r : rects) {
      if (r->lo()[dim] <= slab_lo && r->hi()[dim] >= slab_hi) {
        active.push_back(r);
      }
    }
    if (!active.empty()) {
      total += width * UnionVolumeFromDim(active, dim + 1);
    }
  }
  return total;
}

}  // namespace

RectRegion::RectRegion(std::vector<Rectangle> rects) {
  rects_.reserve(rects.size());
  for (auto& r : rects) {
    Add(std::move(r));
  }
}

void RectRegion::Add(Rectangle rect) {
  if (rect.IsEmpty()) return;
  rects_.push_back(std::move(rect));
}

bool RectRegion::Contains(const Point& p) const {
  for (const Rectangle& r : rects_) {
    if (r.Contains(p)) return true;
  }
  return false;
}

RectRegion RectRegion::Intersect(const RectRegion& other) const {
  RectRegion out;
  for (const Rectangle& a : rects_) {
    for (const Rectangle& b : other.rects_) {
      std::optional<Rectangle> inter = a.Intersection(b);
      if (inter.has_value()) {
        out.Add(*std::move(inter));
      }
    }
  }
  out.PruneContained();
  return out;
}

void RectRegion::PruneContained() {
  std::vector<Rectangle> kept;
  kept.reserve(rects_.size());
  for (size_t i = 0; i < rects_.size(); ++i) {
    bool covered = false;
    for (size_t j = 0; j < rects_.size() && !covered; ++j) {
      if (i == j) continue;
      if (!rects_[j].ContainsRect(rects_[i])) continue;
      // Break ties between identical rectangles by index so exactly one
      // survives.
      if (rects_[i] == rects_[j]) {
        covered = j < i;
      } else {
        covered = true;
      }
    }
    if (!covered) kept.push_back(rects_[i]);
  }
  rects_ = std::move(kept);
}

void RectRegion::Canonicalize() {
  if (rects_.size() <= 1) return;
  if (rects_.front().dims() != 2) {
    PruneContained();
    return;
  }
  // Separate full-dimensional rectangles from degenerate ones; only the
  // former drive the slab decomposition.
  std::vector<Rectangle> full;
  std::vector<Rectangle> degenerate;
  for (Rectangle& r : rects_) {
    if (r.Extent(0) > 0.0 && r.Extent(1) > 0.0) {
      full.push_back(std::move(r));
    } else {
      degenerate.push_back(std::move(r));
    }
  }
  std::vector<Rectangle> out;
  if (!full.empty()) {
    std::vector<double> cuts;
    cuts.reserve(full.size() * 2);
    for (const Rectangle& r : full) {
      cuts.push_back(r.lo()[0]);
      cuts.push_back(r.hi()[0]);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    using Intervals = std::vector<std::pair<double, double>>;
    double run_x0 = 0.0;
    double run_x1 = 0.0;
    Intervals run;  // Current horizontal run of identical slabs.
    auto flush = [&] {
      for (const auto& [y0, y1] : run) {
        out.push_back(Rectangle(Point({run_x0, y0}), Point({run_x1, y1})));
      }
      run.clear();
    };
    for (size_t s = 0; s + 1 < cuts.size(); ++s) {
      const double x0 = cuts[s];
      const double x1 = cuts[s + 1];
      // Merged y-interval union of rectangles spanning this slab.
      Intervals intervals;
      for (const Rectangle& r : full) {
        if (r.lo()[0] <= x0 && r.hi()[0] >= x1) {
          intervals.emplace_back(r.lo()[1], r.hi()[1]);
        }
      }
      std::sort(intervals.begin(), intervals.end());
      Intervals merged;
      for (const auto& iv : intervals) {
        if (!merged.empty() && iv.first <= merged.back().second) {
          merged.back().second = std::max(merged.back().second, iv.second);
        } else {
          merged.push_back(iv);
        }
      }
      if (!run.empty() && merged == run) {
        run_x1 = x1;  // Extend the current run.
      } else {
        flush();
        run = std::move(merged);
        run_x0 = x0;
        run_x1 = x1;
      }
    }
    flush();
  }
  // Re-attach degenerate rectangles not already covered.
  for (Rectangle& d : degenerate) {
    bool covered = false;
    for (const Rectangle& r : out) {
      if (r.ContainsRect(d)) {
        covered = true;
        break;
      }
    }
    if (!covered) out.push_back(std::move(d));
  }
  rects_ = std::move(out);
  PruneContained();
}

double RectRegion::UnionVolume() const {
  std::vector<const Rectangle*> ptrs;
  ptrs.reserve(rects_.size());
  for (const Rectangle& r : rects_) {
    if (!r.IsEmpty()) ptrs.push_back(&r);
  }
  if (ptrs.empty()) return 0.0;
  return UnionVolumeFromDim(ptrs, 0);
}

Rectangle RectRegion::BoundingBox() const {
  if (rects_.empty()) return Rectangle();
  Rectangle box = rects_.front();
  for (size_t i = 1; i < rects_.size(); ++i) {
    box = box.BoundingUnion(rects_[i]);
  }
  return box;
}

Point RectRegion::NearestPointTo(const Point& p, double* out_distance) const {
  WNRS_CHECK(!rects_.empty());
  double best = std::numeric_limits<double>::infinity();
  Point best_point;
  for (const Rectangle& r : rects_) {
    const double d = r.MinL1Distance(p);
    if (d < best) {
      best = d;
      best_point = r.NearestPointTo(p);
    }
  }
  if (out_distance != nullptr) *out_distance = best;
  return best_point;
}

void RectRegion::ClipTo(const Rectangle& bounds) {
  std::vector<Rectangle> kept;
  kept.reserve(rects_.size());
  for (const Rectangle& r : rects_) {
    std::optional<Rectangle> inter = r.Intersection(bounds);
    if (inter.has_value() && !inter->IsEmpty()) {
      kept.push_back(*std::move(inter));
    }
  }
  rects_ = std::move(kept);
}

std::string RectRegion::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i > 0) out += ", ";
    out += rects_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace wnrs
