#include "geometry/dominance.h"

#include <cmath>

#include "common/logging.h"

namespace wnrs {

// NaN discipline, shared with the branch-free kernels in
// geometry/kernels.cc: every early exit tests the *negation* of the
// comparison the definition requires (`!(a <= b)`, not `a > b`), so an
// unordered dimension fails the requirement and the point does not
// dominate. The `a > b` form looks equivalent but silently treats NaN
// dimensions as ties, which made these predicates disagree with the
// kernels' `all_le &= (a <= b)` accumulators on non-finite data.

bool Dominates(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  bool strict = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    if (!(a[i] <= b[i])) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool StrictlyDominatesAllDims(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  for (size_t i = 0; i < a.dims(); ++i) {
    if (!(a[i] < b[i])) return false;
  }
  return true;
}

bool WeaklyDominates(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  for (size_t i = 0; i < a.dims(); ++i) {
    if (!(a[i] <= b[i])) return false;
  }
  return true;
}

bool DynamicallyDominates(const Point& a, const Point& b,
                          const Point& origin) {
  WNRS_CHECK(a.dims() == b.dims());
  WNRS_CHECK(a.dims() == origin.dims());
  bool strict = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    const double da = std::fabs(origin[i] - a[i]);
    const double db = std::fabs(origin[i] - b[i]);
    if (!(da <= db)) return false;
    if (da < db) strict = true;
  }
  return strict;
}

DominanceRelation CompareDominance(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  bool a_better = false;
  bool b_better = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (b[i] < a[i]) {
      b_better = true;
    } else if (!(a[i] == b[i])) {
      // Unordered dimension: neither point can dominate, and they are
      // not equal — consistent with Dominates() returning false both
      // ways.
      return DominanceRelation::kIncomparable;
    }
    if (a_better && b_better) return DominanceRelation::kIncomparable;
  }
  if (a_better) return DominanceRelation::kFirstDominates;
  if (b_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

}  // namespace wnrs
