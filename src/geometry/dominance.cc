#include "geometry/dominance.h"

#include <cmath>

#include "common/logging.h"

namespace wnrs {

bool Dominates(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  bool strict = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool StrictlyDominatesAllDims(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  for (size_t i = 0; i < a.dims(); ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

bool WeaklyDominates(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  for (size_t i = 0; i < a.dims(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool DynamicallyDominates(const Point& a, const Point& b,
                          const Point& origin) {
  WNRS_CHECK(a.dims() == b.dims());
  WNRS_CHECK(a.dims() == origin.dims());
  bool strict = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    const double da = std::fabs(origin[i] - a[i]);
    const double db = std::fabs(origin[i] - b[i]);
    if (da > db) return false;
    if (da < db) strict = true;
  }
  return strict;
}

DominanceRelation CompareDominance(const Point& a, const Point& b) {
  WNRS_CHECK(a.dims() == b.dims());
  bool a_better = false;
  bool b_better = false;
  for (size_t i = 0; i < a.dims(); ++i) {
    if (a[i] < b[i]) a_better = true;
    if (b[i] < a[i]) b_better = true;
    if (a_better && b_better) return DominanceRelation::kIncomparable;
  }
  if (a_better) return DominanceRelation::kFirstDominates;
  if (b_better) return DominanceRelation::kSecondDominates;
  return DominanceRelation::kEqual;
}

}  // namespace wnrs
