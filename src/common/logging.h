#ifndef WNRS_COMMON_LOGGING_H_
#define WNRS_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace wnrs {

/// Log severities in increasing order. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Global log threshold; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wnrs

/// Usage: WNRS_LOG(kInfo) << "built tree with " << n << " entries";
#define WNRS_LOG(severity)                                          \
  ::wnrs::internal::LogMessage(::wnrs::LogLevel::severity, __FILE__, \
                               __LINE__)                             \
      .stream()

/// Invariant check that is active in all build types. On failure logs the
/// condition and aborts. Use for programmer errors, not data errors.
#define WNRS_CHECK(cond)                                            \
  if (!(cond))                                                      \
  ::wnrs::internal::LogMessage(::wnrs::LogLevel::kFatal, __FILE__,  \
                               __LINE__)                            \
          .stream()                                                 \
      << "Check failed: " #cond " "

// WNRS_DCHECK (the debug-only sibling of WNRS_CHECK) lives in
// common/check.h together with its comparison helpers.

#endif  // WNRS_COMMON_LOGGING_H_
