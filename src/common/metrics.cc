#include "common/metrics.h"

#include <bit>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/string_util.h"

namespace wnrs {

namespace {

size_t Index(CounterId id) { return static_cast<size_t>(id); }
size_t Index(GaugeId id) { return static_cast<size_t>(id); }
size_t Index(HistogramId id) { return static_cast<size_t>(id); }

/// Bucket i holds values in (2^(i-1), 2^i]; bucket 0 holds [0, 1]; the
/// last bucket absorbs the tail.
size_t BucketFor(uint64_t value) {
  if (value <= 1) return 0;
  const size_t i = static_cast<size_t>(std::bit_width(value - 1));
  return i < kHistogramBuckets ? i : kHistogramBuckets - 1;
}

/// Relaxed add on a cell only the calling thread writes: a plain
/// load/store pair, so the hot path never issues a read-modify-write.
void CellAdd(std::atomic<uint64_t>& cell, uint64_t delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void AtomicMin(std::atomic<uint64_t>& cell, uint64_t value) {
  uint64_t cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& cell, uint64_t value) {
  uint64_t cur = cell.load(std::memory_order_relaxed);
  while (value > cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

/// One thread's private cells. Only the owning thread writes; readers
/// merge with relaxed loads (metrics tolerate slightly stale sums).
struct MetricsRegistry::Shard {
  std::atomic<uint64_t> counters[kNumCounters] = {};
  std::atomic<uint64_t> hist_count[kNumHistograms] = {};
  std::atomic<uint64_t> hist_sum[kNumHistograms] = {};
  std::atomic<uint64_t> hist_buckets[kNumHistograms][kHistogramBuckets] = {};

  void MergeInto(Shard* into) const {
    for (size_t i = 0; i < kNumCounters; ++i) {
      CellAdd(into->counters[i], counters[i].load(std::memory_order_relaxed));
    }
    for (size_t h = 0; h < kNumHistograms; ++h) {
      CellAdd(into->hist_count[h],
              hist_count[h].load(std::memory_order_relaxed));
      CellAdd(into->hist_sum[h],
              hist_sum[h].load(std::memory_order_relaxed));
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        CellAdd(into->hist_buckets[h][b],
                hist_buckets[h][b].load(std::memory_order_relaxed));
      }
    }
  }

  void Zero() {
    for (size_t i = 0; i < kNumCounters; ++i) {
      counters[i].store(0, std::memory_order_relaxed);
    }
    for (size_t h = 0; h < kNumHistograms; ++h) {
      hist_count[h].store(0, std::memory_order_relaxed);
      hist_sum[h].store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        hist_buckets[h][b].store(0, std::memory_order_relaxed);
      }
    }
  }
};

struct MetricsRegistry::Impl {
  /// Guards `shards` and `retired`; never taken by Add/Record.
  mutable Mutex mu;
  std::vector<Shard*> shards WNRS_GUARDED_BY(mu);
  /// Folded totals of threads that have exited. The Shard itself is all
  /// atomics; mu only guards its membership in the fold set (merging a
  /// retiring thread's cells into it races with readers otherwise).
  Shard retired WNRS_GUARDED_BY(mu);
  std::atomic<int64_t> gauges[kNumGauges] = {};
  std::atomic<uint64_t> hist_min[kNumHistograms];
  std::atomic<uint64_t> hist_max[kNumHistograms] = {};

  Impl() {
    for (size_t h = 0; h < kNumHistograms; ++h) {
      hist_min[h].store(UINT64_MAX, std::memory_order_relaxed);
    }
  }
};

namespace {

/// Thread-local shard directory: which shard this thread owns in each
/// registry it has reported into. On thread exit the destructor folds
/// every shard back into its registry. Registries other than the (leaked)
/// default must therefore outlive all threads that reported into them.
struct ShardDirectory {
  static constexpr size_t kMaxRegistries = 16;
  struct Entry {
    MetricsRegistry* registry = nullptr;
    void* shard = nullptr;  // MetricsRegistry::Shard*, opaque here.
  };
  Entry entries[kMaxRegistries];
  size_t count = 0;

  ~ShardDirectory();
};

thread_local ShardDirectory tls_shard_directory;

}  // namespace

/// Named, non-local friend hook so ShardDirectory's destructor can reach
/// the private Unregister.
struct ShardHandle {
  static void Release(MetricsRegistry* registry, void* shard) {
    registry->Unregister(static_cast<MetricsRegistry::Shard*>(shard));
  }
};

namespace {
ShardDirectory::~ShardDirectory() {
  for (size_t i = 0; i < count; ++i) {
    ShardHandle::Release(entries[i].registry, entries[i].shard);
  }
  count = 0;
}
}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked: worker threads may flush shards during process teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry::~MetricsRegistry() {
  // Drop the destroying thread's own directory entry first: without this,
  // its exit-time fold (and any later same-address registry lookup) would
  // dereference this dead registry. Entries owned by *other* threads are
  // unreachable from here — hence the documented requirement that any
  // non-default registry outlive every other thread that reported into it.
  ShardDirectory& dir = tls_shard_directory;
  for (size_t i = 0; i < dir.count;) {
    if (dir.entries[i].registry == this) {
      dir.entries[i] = dir.entries[dir.count - 1];
      dir.entries[dir.count - 1] = {};
      --dir.count;
    } else {
      ++i;
    }
  }
  {
    MutexLock lock(impl_->mu);
    for (Shard* shard : impl_->shards) delete shard;
    impl_->shards.clear();
  }
  delete impl_;
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  ShardDirectory& dir = tls_shard_directory;
  for (size_t i = 0; i < dir.count; ++i) {
    if (dir.entries[i].registry == this) {
      return static_cast<Shard*>(dir.entries[i].shard);
    }
  }
  Shard* shard = new Shard();
  {
    MutexLock lock(impl_->mu);
    if (dir.count >= ShardDirectory::kMaxRegistries) {
      // Directory overflow (a thread reporting into 17+ registries):
      // fold the increment target into `retired` instead of tracking a
      // per-thread shard. Correct, merely slower.
      delete shard;
      return &impl_->retired;
    }
    impl_->shards.push_back(shard);
  }
  dir.entries[dir.count] = {this, shard};
  ++dir.count;
  return shard;
}

void MetricsRegistry::Unregister(Shard* shard) {
  MutexLock lock(impl_->mu);
  shard->MergeInto(&impl_->retired);
  for (size_t i = 0; i < impl_->shards.size(); ++i) {
    if (impl_->shards[i] == shard) {
      impl_->shards.erase(impl_->shards.begin() +
                          static_cast<ptrdiff_t>(i));
      break;
    }
  }
  delete shard;
}

void MetricsRegistry::Add(CounterId id, uint64_t delta) {
  CellAdd(LocalShard()->counters[Index(id)], delta);
}

void MetricsRegistry::SetGauge(GaugeId id, int64_t value) {
  impl_->gauges[Index(id)].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Record(HistogramId id, uint64_t value) {
  Shard* shard = LocalShard();
  const size_t h = Index(id);
  CellAdd(shard->hist_buckets[h][BucketFor(value)], 1);
  CellAdd(shard->hist_count[h], 1);
  CellAdd(shard->hist_sum[h], value);
  AtomicMin(impl_->hist_min[h], value);
  AtomicMax(impl_->hist_max[h], value);
}

uint64_t MetricsRegistry::CounterValue(CounterId id) const {
  const size_t i = Index(id);
  MutexLock lock(impl_->mu);
  uint64_t total = impl_->retired.counters[i].load(std::memory_order_relaxed);
  for (const Shard* shard : impl_->shards) {
    total += shard->counters[i].load(std::memory_order_relaxed);
  }
  return total;
}

int64_t MetricsRegistry::GaugeValue(GaugeId id) const {
  return impl_->gauges[Index(id)].load(std::memory_order_relaxed);
}

HistogramSnapshot MetricsRegistry::HistogramValue(HistogramId id) const {
  const size_t h = Index(id);
  HistogramSnapshot snap;
  MutexLock lock(impl_->mu);
  auto merge = [&](const Shard& shard) {
    snap.count += shard.hist_count[h].load(std::memory_order_relaxed);
    snap.sum += shard.hist_sum[h].load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] +=
          shard.hist_buckets[h][b].load(std::memory_order_relaxed);
    }
  };
  merge(impl_->retired);
  for (const Shard* shard : impl_->shards) merge(*shard);
  if (snap.count > 0) {
    snap.min = impl_->hist_min[h].load(std::memory_order_relaxed);
    snap.max = impl_->hist_max[h].load(std::memory_order_relaxed);
  }
  return snap;
}

QueryStats MetricsRegistry::CaptureQueryStats() const {
  uint64_t totals[kNumCounters] = {};
  {
    MutexLock lock(impl_->mu);
    auto merge = [&](const Shard& shard) {
      for (size_t i = 0; i < kNumCounters; ++i) {
        totals[i] += shard.counters[i].load(std::memory_order_relaxed);
      }
    };
    merge(impl_->retired);
    for (const Shard* shard : impl_->shards) merge(*shard);
  }
  auto value = [&](CounterId id) { return totals[Index(id)]; };
  QueryStats s;
  s.rtree_node_reads = value(CounterId::kRTreeNodeReads);
  s.rtree_node_writes = value(CounterId::kRTreeNodeWrites);
  s.rtree_splits = value(CounterId::kRTreeSplits);
  s.rtree_reinserts = value(CounterId::kRTreeReinserts);
  s.bbrs_heap_pops = value(CounterId::kBbrsHeapPops);
  s.bbrs_dominance_tests = value(CounterId::kBbrsDominanceTests);
  s.bbrs_pruned_entries = value(CounterId::kBbrsPrunedEntries);
  s.window_probes = value(CounterId::kWindowProbes);
  s.window_heap_pops = value(CounterId::kWindowHeapPops);
  s.window_dominance_tests = value(CounterId::kWindowDominanceTests);
  s.window_pruned_entries = value(CounterId::kWindowPrunedEntries);
  s.rsl_cache_hits = value(CounterId::kRslCacheHits);
  s.rsl_cache_misses = value(CounterId::kRslCacheMisses);
  s.rsl_cache_evictions = value(CounterId::kRslCacheEvictions);
  s.candidates_generated = value(CounterId::kCandidatesGenerated);
  s.candidates_examined = value(CounterId::kCandidatesExamined);
  s.safe_regions_computed = value(CounterId::kSafeRegionsComputed);
  s.safe_region_rects = value(CounterId::kSafeRegionRects);
  s.pool_parallel_fors = value(CounterId::kPoolParallelFors);
  s.pool_tasks_executed = value(CounterId::kPoolTasksExecuted);
  s.engine_queries = value(CounterId::kEngineQueries);
  s.packed_freezes = value(CounterId::kPackedFreezes);
  s.packed_freeze_ns = value(CounterId::kPackedFreezeNanos);
  s.packed_node_reads = value(CounterId::kPackedNodeReads);
  s.serve_requests = value(CounterId::kServeRequests);
  s.serve_admission_rejects = value(CounterId::kServeAdmissionRejects);
  s.serve_deadline_misses = value(CounterId::kServeDeadlineMisses);
  s.serve_batch_share_hits = value(CounterId::kServeBatchShareHits);
  s.storage_page_reads = value(CounterId::kStoragePageReads);
  s.storage_page_writes = value(CounterId::kStoragePageWrites);
  s.storage_cache_hits = value(CounterId::kStorageCacheHits);
  s.storage_cache_misses = value(CounterId::kStorageCacheMisses);
  return s;
}

void MetricsRegistry::Reset() {
  MutexLock lock(impl_->mu);
  impl_->retired.Zero();
  for (Shard* shard : impl_->shards) shard->Zero();
  for (size_t g = 0; g < kNumGauges; ++g) {
    impl_->gauges[g].store(0, std::memory_order_relaxed);
  }
  for (size_t h = 0; h < kNumHistograms; ++h) {
    impl_->hist_min[h].store(UINT64_MAX, std::memory_order_relaxed);
    impl_->hist_max[h].store(0, std::memory_order_relaxed);
  }
}

const char* MetricsRegistry::Name(CounterId id) {
  switch (id) {
    case CounterId::kRTreeNodeReads: return "rtree.node_reads";
    case CounterId::kRTreeNodeWrites: return "rtree.node_writes";
    case CounterId::kRTreeSplits: return "rtree.splits";
    case CounterId::kRTreeReinserts: return "rtree.reinserts";
    case CounterId::kBbrsHeapPops: return "bbrs.heap_pops";
    case CounterId::kBbrsDominanceTests: return "bbrs.dominance_tests";
    case CounterId::kBbrsPrunedEntries: return "bbrs.pruned_entries";
    case CounterId::kWindowProbes: return "window.probes";
    case CounterId::kWindowHeapPops: return "window.heap_pops";
    case CounterId::kWindowDominanceTests: return "window.dominance_tests";
    case CounterId::kWindowPrunedEntries: return "window.pruned_entries";
    case CounterId::kRslCacheHits: return "rsl_cache.hits";
    case CounterId::kRslCacheMisses: return "rsl_cache.misses";
    case CounterId::kRslCacheEvictions: return "rsl_cache.evictions";
    case CounterId::kCandidatesGenerated: return "candidates.generated";
    case CounterId::kCandidatesExamined: return "candidates.examined";
    case CounterId::kSafeRegionsComputed: return "safe_region.computed";
    case CounterId::kSafeRegionRects: return "safe_region.rects";
    case CounterId::kPoolParallelFors: return "pool.parallel_fors";
    case CounterId::kPoolTasksExecuted: return "pool.tasks_executed";
    case CounterId::kEngineQueries: return "engine.queries";
    case CounterId::kPackedFreezes: return "packed.freezes";
    case CounterId::kPackedFreezeNanos: return "packed.freeze_ns";
    case CounterId::kPackedNodeReads: return "packed.node_reads";
    case CounterId::kServeRequests: return "serve.requests";
    case CounterId::kServeAdmissionRejects: return "serve.admission_rejects";
    case CounterId::kServeDeadlineMisses: return "serve.deadline_misses";
    case CounterId::kServeBatchShareHits: return "serve.batch_share_hits";
    case CounterId::kStoragePageReads: return "storage.page_reads";
    case CounterId::kStoragePageWrites: return "storage.page_writes";
    case CounterId::kStorageCacheHits: return "storage.cache_hits";
    case CounterId::kStorageCacheMisses: return "storage.cache_misses";
    case CounterId::kCounterIdCount: break;
  }
  return "unknown";
}

const char* MetricsRegistry::Name(GaugeId id) {
  switch (id) {
    case GaugeId::kRslCacheSize: return "rsl_cache.size";
    case GaugeId::kPoolThreads: return "pool.threads";
    case GaugeId::kServeQueueDepth: return "serve.queue_depth";
    case GaugeId::kGaugeIdCount: break;
  }
  return "unknown";
}

const char* MetricsRegistry::Name(HistogramId id) {
  switch (id) {
    case HistogramId::kEngineQueryMicros: return "engine.query_us";
    case HistogramId::kPoolQueueWaitMicros: return "pool.queue_wait_us";
    case HistogramId::kSafeRegionRectsPerQuery:
      return "safe_region.rects_per_query";
    case HistogramId::kServeQueueWaitMicros: return "serve.queue_wait_us";
    case HistogramId::kHistogramIdCount: break;
  }
  return "unknown";
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {\n";
  for (size_t i = 0; i < kNumCounters; ++i) {
    const CounterId id = static_cast<CounterId>(i);
    out += StrFormat("    \"%s\": %llu%s\n", Name(id),
                     static_cast<unsigned long long>(CounterValue(id)),
                     i + 1 < kNumCounters ? "," : "");
  }
  out += "  },\n  \"gauges\": {\n";
  for (size_t i = 0; i < kNumGauges; ++i) {
    const GaugeId id = static_cast<GaugeId>(i);
    out += StrFormat("    \"%s\": %lld%s\n", Name(id),
                     static_cast<long long>(GaugeValue(id)),
                     i + 1 < kNumGauges ? "," : "");
  }
  out += "  },\n  \"histograms\": {\n";
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const HistogramId id = static_cast<HistogramId>(i);
    const HistogramSnapshot snap = HistogramValue(id);
    out += StrFormat(
        "    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"mean\": %.3f, \"buckets\": [",
        Name(id), static_cast<unsigned long long>(snap.count),
        static_cast<unsigned long long>(snap.sum),
        static_cast<unsigned long long>(snap.min),
        static_cast<unsigned long long>(snap.max), snap.Mean());
    // Only occupied buckets, to keep the document readable; the bounds
    // are implicit in `le` (the last bucket is unbounded -> null).
    bool first = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      if (b + 1 >= kHistogramBuckets) {
        out += StrFormat("{\"le\": null, \"count\": %llu}",
                         static_cast<unsigned long long>(snap.buckets[b]));
      } else {
        out += StrFormat(
            "{\"le\": %llu, \"count\": %llu}",
            static_cast<unsigned long long>(
                HistogramSnapshot::BucketUpperBound(b)),
            static_cast<unsigned long long>(snap.buckets[b]));
      }
    }
    out += StrFormat("]}%s\n", i + 1 < kNumHistograms ? "," : "");
  }
  out += "  }\n}\n";
  return out;
}

QueryStats QueryStats::operator-(const QueryStats& other) const {
  QueryStats d;
  d.rtree_node_reads = rtree_node_reads - other.rtree_node_reads;
  d.rtree_node_writes = rtree_node_writes - other.rtree_node_writes;
  d.rtree_splits = rtree_splits - other.rtree_splits;
  d.rtree_reinserts = rtree_reinserts - other.rtree_reinserts;
  d.bbrs_heap_pops = bbrs_heap_pops - other.bbrs_heap_pops;
  d.bbrs_dominance_tests = bbrs_dominance_tests - other.bbrs_dominance_tests;
  d.bbrs_pruned_entries = bbrs_pruned_entries - other.bbrs_pruned_entries;
  d.window_probes = window_probes - other.window_probes;
  d.window_heap_pops = window_heap_pops - other.window_heap_pops;
  d.window_dominance_tests =
      window_dominance_tests - other.window_dominance_tests;
  d.window_pruned_entries = window_pruned_entries - other.window_pruned_entries;
  d.rsl_cache_hits = rsl_cache_hits - other.rsl_cache_hits;
  d.rsl_cache_misses = rsl_cache_misses - other.rsl_cache_misses;
  d.rsl_cache_evictions = rsl_cache_evictions - other.rsl_cache_evictions;
  d.candidates_generated = candidates_generated - other.candidates_generated;
  d.candidates_examined = candidates_examined - other.candidates_examined;
  d.safe_regions_computed =
      safe_regions_computed - other.safe_regions_computed;
  d.safe_region_rects = safe_region_rects - other.safe_region_rects;
  d.pool_parallel_fors = pool_parallel_fors - other.pool_parallel_fors;
  d.pool_tasks_executed = pool_tasks_executed - other.pool_tasks_executed;
  d.engine_queries = engine_queries - other.engine_queries;
  d.packed_freezes = packed_freezes - other.packed_freezes;
  d.packed_freeze_ns = packed_freeze_ns - other.packed_freeze_ns;
  d.packed_node_reads = packed_node_reads - other.packed_node_reads;
  d.serve_requests = serve_requests - other.serve_requests;
  d.serve_admission_rejects =
      serve_admission_rejects - other.serve_admission_rejects;
  d.serve_deadline_misses =
      serve_deadline_misses - other.serve_deadline_misses;
  d.serve_batch_share_hits =
      serve_batch_share_hits - other.serve_batch_share_hits;
  d.storage_page_reads = storage_page_reads - other.storage_page_reads;
  d.storage_page_writes = storage_page_writes - other.storage_page_writes;
  d.storage_cache_hits = storage_cache_hits - other.storage_cache_hits;
  d.storage_cache_misses = storage_cache_misses - other.storage_cache_misses;
  return d;
}

QueryStats& QueryStats::operator+=(const QueryStats& other) {
  rtree_node_reads += other.rtree_node_reads;
  rtree_node_writes += other.rtree_node_writes;
  rtree_splits += other.rtree_splits;
  rtree_reinserts += other.rtree_reinserts;
  bbrs_heap_pops += other.bbrs_heap_pops;
  bbrs_dominance_tests += other.bbrs_dominance_tests;
  bbrs_pruned_entries += other.bbrs_pruned_entries;
  window_probes += other.window_probes;
  window_heap_pops += other.window_heap_pops;
  window_dominance_tests += other.window_dominance_tests;
  window_pruned_entries += other.window_pruned_entries;
  rsl_cache_hits += other.rsl_cache_hits;
  rsl_cache_misses += other.rsl_cache_misses;
  rsl_cache_evictions += other.rsl_cache_evictions;
  candidates_generated += other.candidates_generated;
  candidates_examined += other.candidates_examined;
  safe_regions_computed += other.safe_regions_computed;
  safe_region_rects += other.safe_region_rects;
  pool_parallel_fors += other.pool_parallel_fors;
  pool_tasks_executed += other.pool_tasks_executed;
  engine_queries += other.engine_queries;
  packed_freezes += other.packed_freezes;
  packed_freeze_ns += other.packed_freeze_ns;
  packed_node_reads += other.packed_node_reads;
  serve_requests += other.serve_requests;
  serve_admission_rejects += other.serve_admission_rejects;
  serve_deadline_misses += other.serve_deadline_misses;
  serve_batch_share_hits += other.serve_batch_share_hits;
  storage_page_reads += other.storage_page_reads;
  storage_page_writes += other.storage_page_writes;
  storage_cache_hits += other.storage_cache_hits;
  storage_cache_misses += other.storage_cache_misses;
  return *this;
}

std::string QueryStats::ToJson() const {
  auto field = [](const char* name, uint64_t v, bool last = false) {
    return StrFormat("\"%s\": %llu%s", name,
                     static_cast<unsigned long long>(v), last ? "" : ", ");
  };
  std::string out = "{";
  out += field("rtree_node_reads", rtree_node_reads);
  out += field("rtree_node_writes", rtree_node_writes);
  out += field("rtree_splits", rtree_splits);
  out += field("rtree_reinserts", rtree_reinserts);
  out += field("bbrs_heap_pops", bbrs_heap_pops);
  out += field("bbrs_dominance_tests", bbrs_dominance_tests);
  out += field("bbrs_pruned_entries", bbrs_pruned_entries);
  out += field("window_probes", window_probes);
  out += field("window_heap_pops", window_heap_pops);
  out += field("window_dominance_tests", window_dominance_tests);
  out += field("window_pruned_entries", window_pruned_entries);
  out += field("rsl_cache_hits", rsl_cache_hits);
  out += field("rsl_cache_misses", rsl_cache_misses);
  out += field("rsl_cache_evictions", rsl_cache_evictions);
  out += field("candidates_generated", candidates_generated);
  out += field("candidates_examined", candidates_examined);
  out += field("safe_regions_computed", safe_regions_computed);
  out += field("safe_region_rects", safe_region_rects);
  out += field("pool_parallel_fors", pool_parallel_fors);
  out += field("pool_tasks_executed", pool_tasks_executed);
  out += field("engine_queries", engine_queries);
  out += field("packed_freezes", packed_freezes);
  out += field("packed_freeze_ns", packed_freeze_ns);
  out += field("packed_node_reads", packed_node_reads);
  out += field("serve_requests", serve_requests);
  out += field("serve_admission_rejects", serve_admission_rejects);
  out += field("serve_deadline_misses", serve_deadline_misses);
  out += field("serve_batch_share_hits", serve_batch_share_hits);
  out += field("storage_page_reads", storage_page_reads);
  out += field("storage_page_writes", storage_page_writes);
  out += field("storage_cache_hits", storage_cache_hits);
  out += field("storage_cache_misses", storage_cache_misses,
               /*last=*/true);
  out += "}";
  return out;
}

}  // namespace wnrs
