#ifndef WNRS_COMMON_VERSION_H_
#define WNRS_COMMON_VERSION_H_

namespace wnrs {

/// Library version, bumped on API-visible changes.
constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;
constexpr int kVersionPatch = 0;

/// "major.minor.patch".
constexpr const char* kVersionString = "1.0.0";

}  // namespace wnrs

#endif  // WNRS_COMMON_VERSION_H_
