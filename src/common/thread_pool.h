#ifndef WNRS_COMMON_THREAD_POOL_H_
#define WNRS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace wnrs {

/// Fixed-size fork-join thread pool behind the engine's embarrassingly
/// parallel loops (per-customer DSL precomputation, per-why-not batch
/// answering, per-candidate reverse-skyline verification).
///
/// Design constraints, in priority order: determinism, simplicity, zero
/// dependencies. There is no work stealing and no task graph — the only
/// primitive is a blocking ParallelFor over an index range, with indices
/// handed out one at a time from an atomic cursor. Callers write results
/// into per-index slots, which keeps outputs bit-identical to the serial
/// loop no matter how the indices are scheduled.
///
/// Nested ParallelFor calls — from inside a worker, or from the
/// submitting thread while it participates in its own loop — degrade to
/// the plain serial loop, so parallel code composes freely without
/// deadlock or thread oversubscription. Concurrent ParallelFor calls from
/// distinct external threads are serialized against each other.
///
/// A pool with `num_threads == 1` owns no worker threads and runs every
/// loop inline in the calling thread: the bit-exact serial fallback.
class ThreadPool {
 public:
  /// `num_threads == 0` uses HardwareConcurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of this pool's loops, including the submitting
  /// thread (the pool owns num_threads() - 1 workers).
  size_t num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static size_t HardwareConcurrency();

  /// Runs fn(i) for every i in [begin, end), each exactly once, and
  /// blocks until all calls have returned. The submitting thread
  /// participates in the work.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Maps [0, n) through fn into a vector: out[i] = fn(i), exactly as the
  /// serial loop would produce. T must be default-constructible.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(0, n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// One ParallelFor invocation; lives on the submitter's stack. `next`
  /// is the work cursor, `completed` counts finished indices, and
  /// `active` (guarded by mu_) counts workers still inside RunJob so the
  /// submitter never returns — destroying the job — under a live worker.
  struct Job {
    size_t begin = 0;
    size_t end = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    /// Guarded by the owning pool's mu_ (GUARDED_BY cannot name another
    /// object's mutex, so the protocol is documented rather than
    /// annotated here; every access site locks mu_).
    int active = 0;
    /// Submission time, for the queue-wait histogram.
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop();
  void RunJob(Job* job);

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  /// Serializes concurrent ParallelFor submissions from distinct threads.
  /// Ordered strictly before mu_ (never acquire submit_mu_ with mu_ held).
  Mutex submit_mu_;

  /// Guards job_, job_seq_, stop_, and Job::active.
  Mutex mu_;
  CondVar work_cv_;  // Workers wait here for a new job.
  CondVar done_cv_;  // The submitter waits for completion.
  Job* job_ WNRS_GUARDED_BY(mu_) = nullptr;
  uint64_t job_seq_ WNRS_GUARDED_BY(mu_) = 0;
  bool stop_ WNRS_GUARDED_BY(mu_) = false;
};

}  // namespace wnrs

#endif  // WNRS_COMMON_THREAD_POOL_H_
