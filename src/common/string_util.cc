#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace wnrs {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool ParseDouble(std::string_view input, double* out) {
  const std::string_view stripped = StripWhitespace(input);
  if (stripped.empty()) return false;
  // strtod needs a NUL-terminated buffer.
  std::string buf(stripped);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace wnrs
