#include "common/thread_pool.h"

#include "common/metrics.h"

namespace wnrs {
namespace {

/// True while the current thread executes loop bodies of some ParallelFor
/// (a pool worker, or the submitter participating in its own loop).
/// Nested ParallelFor calls observe it and run inline.
thread_local bool tls_in_parallel_region = false;

}  // namespace

size_t ThreadPool::HardwareConcurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareConcurrency() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  MetricSetGauge(GaugeId::kPoolThreads,
                 static_cast<int64_t>(num_threads_));
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob(Job* job) {
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  const size_t total = job->end - job->begin;
  uint64_t executed = 0;
  size_t i;
  while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) < job->end) {
    (*job->fn)(i);
    ++executed;
    // acq_rel so the submitter's acquire read of `completed == total`
    // orders every loop body's writes before ParallelFor returns.
    if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      MutexLock lock(mu_);
      done_cv_.NotifyAll();
    }
  }
  if (executed > 0) MetricAdd(CounterId::kPoolTasksExecuted, executed);
  tls_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop() {
  uint64_t last_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && !(job_ != nullptr && job_seq_ != last_seq)) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      job = job_;
      last_seq = job_seq_;
      ++job->active;
    }
    MetricRecord(HistogramId::kPoolQueueWaitMicros,
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - job->submitted)
                         .count()));
    RunJob(job);
    {
      MutexLock lock(mu_);
      --job->active;
      done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  const size_t total = end - begin;
  // Serial paths: a 1-thread pool, a single-element range (fn may still
  // parallelize internally), or a nested call from inside a running loop
  // (must not re-enter submit_mu_, and the pool is busy anyway).
  if (workers_.empty() || total == 1 || tls_in_parallel_region) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  MutexLock submit_lock(submit_mu_);
  MetricAdd(CounterId::kPoolParallelFors);
  Job job;
  job.begin = begin;
  job.end = end;
  job.fn = &fn;
  job.next.store(begin, std::memory_order_relaxed);
  job.submitted = std::chrono::steady_clock::now();
  {
    MutexLock lock(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.NotifyAll();
  RunJob(&job);
  {
    MutexLock lock(mu_);
    while (!(job.completed.load(std::memory_order_acquire) == total &&
             job.active == 0)) {
      done_cv_.Wait(mu_);
    }
    job_ = nullptr;
  }
}

}  // namespace wnrs
