#include "common/random.h"

#include <cmath>

namespace wnrs {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 must be strictly positive for the log.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace wnrs
