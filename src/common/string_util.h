#ifndef WNRS_COMMON_STRING_UTIL_H_
#define WNRS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wnrs {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view input, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wnrs

#endif  // WNRS_COMMON_STRING_UTIL_H_
