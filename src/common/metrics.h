#ifndef WNRS_COMMON_METRICS_H_
#define WNRS_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace wnrs {

/// Process-wide counter identifiers. One cell per id lives in every
/// thread-local shard, so incrementing is a relaxed store on memory no
/// other thread writes — the hot paths (R*-tree traversals, dominance
/// loops) stay uncontended no matter how many pool workers run.
enum class CounterId : uint32_t {
  // R*-tree structural work.
  kRTreeNodeReads = 0,   ///< Nodes visited by any traversal (I/O proxy).
  kRTreeNodeWrites,      ///< Nodes structurally modified (insert/delete).
  kRTreeSplits,          ///< R* node splits.
  kRTreeReinserts,       ///< Entries evicted for forced reinsertion.
  // BBRS (global-skyline candidate generation + verification).
  kBbrsHeapPops,         ///< Best-first heap pops in ComputeGlobalSkyline.
  kBbrsDominanceTests,   ///< Global-dominance tests (point and rectangle).
  kBbrsPrunedEntries,    ///< Entries/subtrees discarded as dominated.
  // Window queries (probe, emptiness, branch-and-bound skyline).
  kWindowProbes,         ///< WindowQuery/WindowEmpty/WindowSkyline calls.
  kWindowHeapPops,       ///< Heap pops in WindowSkyline.
  kWindowDominanceTests, ///< Dominance tests in WindowSkyline.
  kWindowPrunedEntries,  ///< Entries pruned as dominated in WindowSkyline.
  // Query-keyed reverse-skyline memo in the engine.
  kRslCacheHits,
  kRslCacheMisses,
  kRslCacheEvictions,
  // MWP/MQP/MWQ candidate funnels.
  kCandidatesGenerated,  ///< Staircase/corner candidates produced.
  kCandidatesExamined,   ///< Candidates surviving feasibility/validation.
  // Safe regions (Algorithm 3 and the approximated variant).
  kSafeRegionsComputed,
  kSafeRegionRects,      ///< Rectangles in every computed safe region.
  // Thread pool.
  kPoolParallelFors,     ///< ParallelFor calls that actually fanned out.
  kPoolTasksExecuted,    ///< Loop indices executed on any thread.
  // Engine facade.
  kEngineQueries,        ///< Outermost public engine calls.
  // Packed (frozen) read path.
  kPackedFreezes,        ///< PackedRTree::Freeze calls (one per publish).
  kPackedFreezeNanos,    ///< Nanoseconds spent freezing packed trees.
  kPackedNodeReads,      ///< Node reads served by the packed read path.
  // Request scheduler (src/serve).
  kServeRequests,        ///< Requests admitted into the scheduler queue.
  kServeAdmissionRejects,///< Requests rejected by queue-depth admission.
  kServeDeadlineMisses,  ///< Requests whose deadline expired (pre- or mid-run).
  kServeBatchShareHits,  ///< Requests answered by sharing a same-q batch.
  // Storage backend (src/storage): page-level I/O and the buffer pool.
  kStoragePageReads,     ///< Pages fetched from a backing store (real I/O).
  kStoragePageWrites,    ///< Pages written to a backing store.
  kStorageCacheHits,     ///< Buffer-pool reads served from a resident frame.
  kStorageCacheMisses,   ///< Buffer-pool reads that went to the store.
  kCounterIdCount,       // Keep last.
};

/// Last-value-wins metrics; set rarely, stored as single process-global
/// atomics (no sharding needed).
enum class GaugeId : uint32_t {
  kRslCacheSize = 0,  ///< Entries currently in the reverse-skyline memo.
  kPoolThreads,       ///< Concurrency of the most recently built pool.
  kServeQueueDepth,   ///< Requests currently queued in the scheduler.
  kGaugeIdCount,      // Keep last.
};

/// Fixed-bucket histograms with power-of-two bucket bounds: bucket i
/// counts values in (2^(i-1), 2^i], bucket 0 counts values <= 1, and the
/// last bucket absorbs everything larger. 32 buckets cover [0, 2^31),
/// which spans nanoseconds to half an hour when recording microseconds.
enum class HistogramId : uint32_t {
  kEngineQueryMicros = 0,   ///< Latency of outermost engine calls.
  kPoolQueueWaitMicros,     ///< Submit-to-pickup delay of pool jobs.
  kSafeRegionRectsPerQuery, ///< Rectangle count of each safe region.
  kServeQueueWaitMicros,    ///< Submit-to-dispatch delay of serve requests.
  kHistogramIdCount,        // Keep last.
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(CounterId::kCounterIdCount);
inline constexpr size_t kNumGauges =
    static_cast<size_t>(GaugeId::kGaugeIdCount);
inline constexpr size_t kNumHistograms =
    static_cast<size_t>(HistogramId::kHistogramIdCount);
inline constexpr size_t kHistogramBuckets = 32;

/// Merged view of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0.
  uint64_t max = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of bucket i (inclusive); the last bucket is unbounded.
  static uint64_t BucketUpperBound(size_t i) {
    return i + 1 >= kHistogramBuckets ? UINT64_MAX : (uint64_t{1} << i);
  }
};

/// Per-call I/O and work statistics, snapshotted from the registry around
/// every outermost WhyNotEngine call. Field values are deltas (or totals
/// when accumulated); subtraction of two registry captures yields the
/// work done in between.
struct QueryStats {
  uint64_t rtree_node_reads = 0;
  uint64_t rtree_node_writes = 0;
  uint64_t rtree_splits = 0;
  uint64_t rtree_reinserts = 0;
  uint64_t bbrs_heap_pops = 0;
  uint64_t bbrs_dominance_tests = 0;
  uint64_t bbrs_pruned_entries = 0;
  uint64_t window_probes = 0;
  uint64_t window_heap_pops = 0;
  uint64_t window_dominance_tests = 0;
  uint64_t window_pruned_entries = 0;
  uint64_t rsl_cache_hits = 0;
  uint64_t rsl_cache_misses = 0;
  uint64_t rsl_cache_evictions = 0;
  uint64_t candidates_generated = 0;
  uint64_t candidates_examined = 0;
  uint64_t safe_regions_computed = 0;
  uint64_t safe_region_rects = 0;
  uint64_t pool_parallel_fors = 0;
  uint64_t pool_tasks_executed = 0;
  uint64_t engine_queries = 0;
  uint64_t packed_freezes = 0;
  uint64_t packed_freeze_ns = 0;
  uint64_t packed_node_reads = 0;
  uint64_t serve_requests = 0;
  uint64_t serve_admission_rejects = 0;
  uint64_t serve_deadline_misses = 0;
  uint64_t serve_batch_share_hits = 0;
  uint64_t storage_page_reads = 0;
  uint64_t storage_page_writes = 0;
  uint64_t storage_cache_hits = 0;
  uint64_t storage_cache_misses = 0;

  QueryStats operator-(const QueryStats& other) const;
  QueryStats& operator+=(const QueryStats& other);
  /// One-line JSON object ({"rtree_node_reads": ..., ...}).
  std::string ToJson() const;
};

/// Dependency-free metrics registry. Counters are sharded per thread
/// (lock-free increments, merged on read); gauges and histogram min/max
/// are process-global atomics; histogram buckets are sharded like
/// counters. The default instance is a leaked singleton, so worker
/// threads may report into it at any point of process teardown.
///
/// Compile with WNRS_METRICS_DISABLED to turn every mutation into a
/// no-op (the read side then reports zeros) — the reference point for
/// measuring instrumentation overhead.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Default();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Hot path: relaxed add on this thread's shard cell.
  void Add(CounterId id, uint64_t delta = 1);

  void SetGauge(GaugeId id, int64_t value);

  /// Records one histogram observation (bucket + count/sum shard cells,
  /// global min/max).
  void Record(HistogramId id, uint64_t value);

  /// Merged counter value across live shards and exited threads.
  uint64_t CounterValue(CounterId id) const;
  int64_t GaugeValue(GaugeId id) const;
  HistogramSnapshot HistogramValue(HistogramId id) const;

  /// Snapshot of every counter as a QueryStats (totals since the last
  /// Reset); subtract two captures for a per-call delta.
  QueryStats CaptureQueryStats() const;

  /// All metrics as a pretty-printed JSON document:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;

  /// Zeroes every counter, gauge, and histogram. Not linearizable with
  /// concurrent writers (a racing increment may survive or vanish), which
  /// is acceptable for its bench/test audience.
  void Reset();

  static const char* Name(CounterId id);
  static const char* Name(GaugeId id);
  static const char* Name(HistogramId id);

 private:
  struct Shard;
  friend struct ShardHandle;

  /// This thread's shard, registered on first use.
  Shard* LocalShard();
  void Unregister(Shard* shard);

  struct Impl;
  Impl* impl_;
};

/// Convenience wrappers against the default registry — the form all
/// instrumentation sites use.
#ifdef WNRS_METRICS_DISABLED
inline void MetricAdd(CounterId, uint64_t = 1) {}
inline void MetricSetGauge(GaugeId, int64_t) {}
inline void MetricRecord(HistogramId, uint64_t) {}
#else
inline void MetricAdd(CounterId id, uint64_t delta = 1) {
  MetricsRegistry::Default().Add(id, delta);
}
inline void MetricSetGauge(GaugeId id, int64_t value) {
  MetricsRegistry::Default().SetGauge(id, value);
}
inline void MetricRecord(HistogramId id, uint64_t value) {
  MetricsRegistry::Default().Record(id, value);
}
#endif

}  // namespace wnrs

#endif  // WNRS_COMMON_METRICS_H_
