#ifndef WNRS_COMMON_STATUS_H_
#define WNRS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace wnrs {

/// Error categories used across the library. The project builds without
/// exceptions; fallible operations return `Status` (or `Result<T>`), in the
/// style of RocksDB/Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  /// A per-request deadline expired before (or while) the request ran —
  /// the serve layer's graceful degradation signal.
  kDeadlineExceeded,
  /// Admission control rejected the request (queue depth cap reached).
  kResourceExhausted,
  /// The serving component is shutting down or not accepting work.
  kUnavailable,
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type status: a code plus an optional message. Cheap to copy in the
/// OK case (empty message).
///
/// The class-level [[nodiscard]] makes ignoring any function that returns a
/// Status by value a -Werror diagnostic: an unobserved failure is a bug.
/// The rare legitimate discard is written `(void)expr;` with a
/// `// wnrs-lint: allow-discard(<reason>)` justification, which
/// tools/wnrs_lint.py verifies.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<CodeName>: <message>" or "Ok".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Modeled after
/// absl::StatusOr / arrow::Result, reduced to what this library needs.
/// [[nodiscard]] for the same reason as Status: a dropped Result hides
/// both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the result; Status::Ok() when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok(). Accessing the value of an error result is a
  /// programming error; callers must check ok() first.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define WNRS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::wnrs::Status wnrs_status_macro_tmp_ = (expr); \
    if (!wnrs_status_macro_tmp_.ok()) {             \
      return wnrs_status_macro_tmp_;                \
    }                                               \
  } while (false)

}  // namespace wnrs

#endif  // WNRS_COMMON_STATUS_H_
