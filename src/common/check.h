#ifndef WNRS_COMMON_CHECK_H_
#define WNRS_COMMON_CHECK_H_

#include "common/logging.h"

/// Debug-only invariant checks, in the WNRS_CHECK family but compiled out
/// of optimized builds. Use WNRS_DCHECK for invariants that are (a) hot
/// enough that an always-on check would show up in profiles, or (b) so
/// internal that a violation can only come from a bug in this library,
/// never from caller input. Everything user-triggerable stays behind
/// WNRS_CHECK (aborting API) or the Try* Status layer (validating API).
///
/// Activation: WNRS_DCHECK_IS_ON() is 1 in builds without NDEBUG (plain
/// Debug) and in any build compiled with -DWNRS_FORCE_DCHECKS (the CMake
/// option WNRS_FORCE_DCHECKS=ON; the sanitizer CI jobs use it so DCHECKs
/// run under ASan/TSan). In Release/RelWithDebInfo the macros compile to
/// a dead `while (false)` — the condition is still parsed and name-looked
/// up (so DCHECK-only expressions cannot bit-rot and variables used only
/// in checks are odr-used, avoiding -Wunused warnings) but the optimizer
/// removes it entirely: zero instructions, zero side effects.

#if !defined(NDEBUG) || defined(WNRS_FORCE_DCHECKS)
#define WNRS_DCHECK_IS_ON() 1
#else
#define WNRS_DCHECK_IS_ON() 0
#endif

#if WNRS_DCHECK_IS_ON()

#define WNRS_DCHECK(cond) WNRS_CHECK(cond)

#else  // !WNRS_DCHECK_IS_ON()

namespace wnrs {
namespace internal {

/// Swallows the `<< "context"` tail of a compiled-out WNRS_DCHECK.
struct NullCheckStream {
  template <typename T>
  NullCheckStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace wnrs

#define WNRS_DCHECK(cond)    \
  while (false && !!(cond)) \
  ::wnrs::internal::NullCheckStream()

#endif  // WNRS_DCHECK_IS_ON()

/// Comparison helpers; evaluate each operand once when on, never when off.
#define WNRS_DCHECK_EQ(a, b) WNRS_DCHECK((a) == (b))
#define WNRS_DCHECK_NE(a, b) WNRS_DCHECK((a) != (b))
#define WNRS_DCHECK_LT(a, b) WNRS_DCHECK((a) < (b))
#define WNRS_DCHECK_LE(a, b) WNRS_DCHECK((a) <= (b))
#define WNRS_DCHECK_GT(a, b) WNRS_DCHECK((a) > (b))
#define WNRS_DCHECK_GE(a, b) WNRS_DCHECK((a) >= (b))

#endif  // WNRS_COMMON_CHECK_H_
