#ifndef WNRS_COMMON_TIMER_H_
#define WNRS_COMMON_TIMER_H_

#include <chrono>

namespace wnrs {

/// Monotonic wall-clock stopwatch for the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wnrs

#endif  // WNRS_COMMON_TIMER_H_
