#ifndef WNRS_COMMON_RANDOM_H_
#define WNRS_COMMON_RANDOM_H_

#include <cstdint>

namespace wnrs {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// All data generators and workload samplers in the library draw from this
/// engine so that every experiment is reproducible from a single seed. The
/// engine is cheap to copy; copies continue independent but identical
/// streams.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances built from the same seed
  /// produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller (no trig-table state kept: the spare
  /// value is cached).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential with the given rate (mean 1/rate). Precondition: rate > 0.
  double NextExponential(double rate);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace wnrs

#endif  // WNRS_COMMON_RANDOM_H_
