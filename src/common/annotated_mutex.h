#ifndef WNRS_COMMON_ANNOTATED_MUTEX_H_
#define WNRS_COMMON_ANNOTATED_MUTEX_H_

// Capability-annotated locking primitives: the one place in the repo that
// may name std::mutex / std::shared_mutex / std::condition_variable
// (tools/wnrs_lint.py rule `raw-mutex` enforces the funnel). Every
// subsystem locks through wnrs::Mutex / wnrs::SharedMutex / wnrs::CondVar
// and the RAII guards below, so Clang Thread Safety Analysis
// (-Wthread-safety, the WNRS_THREAD_SAFETY build option and the
// `thread-safety` CI job) can prove at compile time that
//
//   - every WNRS_GUARDED_BY field is only touched with its mutex held,
//   - every WNRS_REQUIRES helper is only called with the lock held,
//   - no lock is acquired twice or leaked past a function's end.
//
// Under non-Clang compilers the attribute macros expand to nothing and
// the wrappers compile down to the plain std types — zero overhead, no
// behavioural difference. DESIGN.md §16 documents the capability model
// and the repo's lock-ordering rules; tests/thread_safety/ holds the
// negative-compile snippets proving the analysis fires.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --- Attribute macros ------------------------------------------------------
//
// Names follow the canonical mutex.h from the Clang TSA documentation,
// prefixed WNRS_ like the rest of the repo's macros.

#if defined(__clang__)
#define WNRS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WNRS_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define WNRS_CAPABILITY(x) WNRS_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define WNRS_SCOPED_CAPABILITY WNRS_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be read/written with the named mutex held.
#define WNRS_GUARDED_BY(x) WNRS_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer field whose *pointee* is guarded by the named mutex.
#define WNRS_PT_GUARDED_BY(x) WNRS_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function may only be called with the named mutex(es) held exclusively.
#define WNRS_REQUIRES(...) \
  WNRS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function may only be called with the named mutex(es) held (shared ok).
#define WNRS_REQUIRES_SHARED(...) \
  WNRS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires the mutex(es) (held on return, not on entry).
#define WNRS_ACQUIRE(...) \
  WNRS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define WNRS_ACQUIRE_SHARED(...) \
  WNRS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the mutex(es) (held on entry, not on return).
#define WNRS_RELEASE(...) \
  WNRS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define WNRS_RELEASE_SHARED(...) \
  WNRS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define WNRS_TRY_ACQUIRE(...) \
  WNRS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the named mutex(es) held (deadlock
/// guard for self-calling APIs).
#define WNRS_EXCLUDES(...) WNRS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named mutex (accessor pattern).
#define WNRS_RETURN_CAPABILITY(x) WNRS_THREAD_ANNOTATION_(lock_returned(x))
/// Opts a function out of the analysis. Every use MUST carry a
/// `// Justification:` comment explaining why the protocol holds anyway
/// (see DESIGN.md §16 for the acceptable cases — init/teardown phases
/// proven single-threaded by joins, and conservative analysis limits).
#define WNRS_NO_THREAD_SAFETY_ANALYSIS \
  WNRS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace wnrs {

class CondVar;

/// std::mutex carrying the `capability` attribute. Prefer the RAII guards
/// below; Lock/Unlock exist for the rare hand-over-hand pattern and for
/// the negative-compile harness.
class WNRS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WNRS_ACQUIRE() { mu_.lock(); }
  void Unlock() WNRS_RELEASE() { mu_.unlock(); }
  bool TryLock() WNRS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex carrying the `capability` attribute: exclusive
/// writers (MutexLock) against concurrent shared readers (ReaderLock).
class WNRS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() WNRS_ACQUIRE() { mu_.lock(); }
  void Unlock() WNRS_RELEASE() { mu_.unlock(); }
  void LockShared() WNRS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() WNRS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over a Mutex or a SharedMutex; the drop-in
/// replacement for std::lock_guard at every locking site in the repo.
class WNRS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WNRS_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  explicit MutexLock(SharedMutex& mu) WNRS_ACQUIRE(mu) : shared_(&mu) {
    shared_->Lock();
  }
  ~MutexLock() WNRS_RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    } else {
      shared_->Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_ = nullptr;
  SharedMutex* shared_ = nullptr;
};

/// Scoped shared (reader) lock over a SharedMutex: many ReaderLock
/// holders may overlap; WNRS_GUARDED_BY fields are readable, not
/// writable, under it.
class WNRS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) WNRS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() WNRS_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive lock that can be released before the end of scope —
/// the annotated replacement for the `unique_lock` + early `unlock()`
/// pattern (e.g. dropping the queue lock before fulfilling a promise).
class WNRS_SCOPED_CAPABILITY ReleasableLock {
 public:
  explicit ReleasableLock(Mutex& mu) WNRS_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableLock() WNRS_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  /// Releases the lock now; the destructor becomes a no-op. May be
  /// called at most once.
  void Release() WNRS_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ReleasableLock(const ReleasableLock&) = delete;
  ReleasableLock& operator=(const ReleasableLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to wnrs::Mutex. Wait takes the *Mutex* (the
/// caller already holds it — enforced by WNRS_REQUIRES), not a lock
/// object, so scoped guards stay usable around the wait loop:
///
///   MutexLock lock(mu_);
///   while (!wake_condition) cv_.Wait(mu_);   // loop re-checks; see below
///
/// Wait deliberately has no predicate overload: Clang's analysis treats
/// lambda bodies as separate uninstrumented functions, so a predicate
/// lambda reading WNRS_GUARDED_BY fields would defeat the very checking
/// this header exists for. Callers therefore loop at the call site —
/// which is also exactly the shape clang-tidy's
/// bugprone-spuriously-wake-up-functions demands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen: always call in a loop that
  /// re-checks the condition.
  void Wait(Mutex& mu) WNRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    // The caller is required (and statically checked) to re-test its
    // condition in a loop around this call — the wrapper cannot see the
    // condition, so the loop cannot live here.
    cv_.wait(lk);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lk.release();
  }

  /// Timed Wait; returns false on timeout (condition must be re-checked
  /// either way, in the caller's loop).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      WNRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lk, timeout);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wnrs

#endif  // WNRS_COMMON_ANNOTATED_MUTEX_H_
