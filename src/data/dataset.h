#ifndef WNRS_DATA_DATASET_H_
#define WNRS_DATA_DATASET_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace wnrs {

/// A named collection of points of uniform dimensionality; serves as the
/// product set P or the customer-preference set C (or both, as in the
/// paper's worked example).
struct Dataset {
  std::string name;
  size_t dims = 0;
  std::vector<Point> points;

  size_t size() const { return points.size(); }

  /// Tight bounding box of all points. Precondition: non-empty.
  Rectangle Bounds() const;
};

/// Min-max normalization into the unit hypercube, the paper's cost
/// normalization ("first normalizing the point using min-max
/// normalization", Section VI-A). Degenerate dimensions (zero range) map
/// to 0.
class MinMaxNormalizer {
 public:
  /// Identity transform over zero dimensions; useful as a placeholder.
  MinMaxNormalizer() = default;

  /// Normalizes relative to `bounds` (usually Dataset::Bounds()).
  explicit MinMaxNormalizer(const Rectangle& bounds);

  size_t dims() const { return lo_.dims(); }

  /// Maps each coordinate into [0, 1] (values outside the bounds

  /// extrapolate linearly rather than clamp, so distances stay faithful).
  Point Normalize(const Point& p) const;

  /// Inverse of Normalize.
  Point Denormalize(const Point& p) const;

  /// Normalized weighted-L1 distance between two raw-space points: the
  /// cost atom used by every quality table in the paper.
  double NormalizedWeightedL1(const Point& a, const Point& b,
                              const std::vector<double>& weights) const;

 private:
  Point lo_;
  Point range_;  // hi - lo, with 0 for degenerate dimensions.
};

/// Equal weights summing to 1 (the paper's default: "assigning equal
/// weight to each dimension (also sum beta_i = 1)").
std::vector<double> EqualWeights(size_t dims);

}  // namespace wnrs

#endif  // WNRS_DATA_DATASET_H_
