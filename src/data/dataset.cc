#include "data/dataset.h"

#include <cmath>

#include "common/logging.h"

namespace wnrs {

Rectangle Dataset::Bounds() const {
  WNRS_CHECK(!points.empty());
  Point lo = points.front();
  Point hi = points.front();
  for (const Point& p : points) {
    WNRS_CHECK(p.dims() == dims);
    for (size_t i = 0; i < dims; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  return Rectangle(std::move(lo), std::move(hi));
}

MinMaxNormalizer::MinMaxNormalizer(const Rectangle& bounds)
    : lo_(bounds.lo()), range_(bounds.dims()) {
  for (size_t i = 0; i < bounds.dims(); ++i) {
    range_[i] = bounds.hi()[i] - bounds.lo()[i];
  }
}

Point MinMaxNormalizer::Normalize(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  Point out(p.dims());
  for (size_t i = 0; i < p.dims(); ++i) {
    out[i] = range_[i] > 0.0 ? (p[i] - lo_[i]) / range_[i] : 0.0;
  }
  return out;
}

Point MinMaxNormalizer::Denormalize(const Point& p) const {
  WNRS_CHECK(p.dims() == dims());
  Point out(p.dims());
  for (size_t i = 0; i < p.dims(); ++i) {
    out[i] = lo_[i] + p[i] * range_[i];
  }
  return out;
}

double MinMaxNormalizer::NormalizedWeightedL1(
    const Point& a, const Point& b, const std::vector<double>& weights) const {
  WNRS_CHECK(a.dims() == dims());
  WNRS_CHECK(b.dims() == dims());
  WNRS_CHECK(weights.size() == dims());
  double sum = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    if (range_[i] <= 0.0) continue;
    sum += weights[i] * std::fabs(a[i] - b[i]) / range_[i];
  }
  return sum;
}

std::vector<double> EqualWeights(size_t dims) {
  WNRS_CHECK(dims > 0);
  return std::vector<double>(dims, 1.0 / static_cast<double>(dims));
}

}  // namespace wnrs
