#include "data/workload.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace wnrs {

std::vector<WhyNotWorkloadQuery> SampleQueriesByRslSize(
    const Dataset& customers, const RslFn& rsl_fn, size_t min_rsl,
    size_t max_rsl, size_t max_attempts, uint64_t seed) {
  WNRS_CHECK(!customers.points.empty());
  WNRS_CHECK(min_rsl <= max_rsl);
  Rng rng(seed);
  const Rectangle bounds = customers.Bounds();

  // bucket[s - min_rsl] holds the first query found with |RSL| == s.
  std::vector<WhyNotWorkloadQuery> buckets(max_rsl - min_rsl + 1);
  std::vector<bool> filled(buckets.size(), false);
  size_t remaining = buckets.size();

  for (size_t attempt = 0; attempt < max_attempts && remaining > 0;
       ++attempt) {
    // Draw q from the data distribution: a dataset point with small
    // relative jitter, so q behaves like a plausible new product.
    const Point& base =
        customers.points[rng.NextUint64(customers.points.size())];
    Point q(customers.dims);
    for (size_t i = 0; i < customers.dims; ++i) {
      const double extent = bounds.hi()[i] - bounds.lo()[i];
      q[i] = base[i] + rng.NextGaussian(0.0, 0.02 * extent);
    }

    std::vector<size_t> rsl = rsl_fn(q);
    const size_t s = rsl.size();
    if (s < min_rsl || s > max_rsl || filled[s - min_rsl]) continue;

    // Pick a why-not customer uniformly among non-members.
    std::unordered_set<size_t> members(rsl.begin(), rsl.end());
    if (members.size() == customers.points.size()) continue;
    size_t why_not = 0;
    do {
      why_not = rng.NextUint64(customers.points.size());
    } while (members.count(why_not) > 0);

    WhyNotWorkloadQuery& slot = buckets[s - min_rsl];
    slot.q = std::move(q);
    slot.rsl = std::move(rsl);
    slot.why_not_index = why_not;
    filled[s - min_rsl] = true;
    --remaining;
  }

  std::vector<WhyNotWorkloadQuery> out;
  out.reserve(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (filled[i]) out.push_back(std::move(buckets[i]));
  }
  return out;
}

}  // namespace wnrs
