#ifndef WNRS_DATA_CSV_H_
#define WNRS_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace wnrs {

/// Writes `dataset` as CSV: a header row "d0,d1,..." then one row per
/// point. Overwrites existing files.
Status SaveCsv(const Dataset& dataset, const std::string& path);

/// Reads a CSV written by SaveCsv (or any numeric CSV with a header row).
/// All rows must have the same number of fields.
Result<Dataset> LoadCsv(const std::string& path);

}  // namespace wnrs

#endif  // WNRS_DATA_CSV_H_
