#ifndef WNRS_DATA_GENERATORS_H_
#define WNRS_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"

namespace wnrs {

/// Independent uniform coordinates in [0, 1) — the paper's "UN" synthetic
/// family (Börzsönyi et al.).
Dataset GenerateUniform(size_t n, size_t dims, uint64_t seed);

/// Correlated coordinates ("CO"): points cluster around the main diagonal,
/// so points good in one dimension tend to be good in the others; skylines
/// are small.
Dataset GenerateCorrelated(size_t n, size_t dims, uint64_t seed);

/// Anti-correlated coordinates ("AC"): points cluster around a hyperplane
/// of constant coordinate sum, so points good in one dimension are bad in
/// others; skylines are large.
Dataset GenerateAnticorrelated(size_t n, size_t dims, uint64_t seed);

/// Gaussian clusters at random centers; used by ablation benches.
Dataset GenerateClustered(size_t n, size_t dims, uint64_t seed,
                          size_t num_clusters, double stddev);

/// Surrogate for the paper's Yahoo! Autos "CarDB" (see DESIGN.md §5):
/// 2-D (price $, mileage mi) points drawn from a vehicle-segment mixture —
/// log-normal price clusters per segment, mileage decreasing with price
/// plus heavy-tailed noise — giving the sparse, mildly anti-correlated
/// cloud the real snapshot had. Prices land in roughly [0.5K, 80K] and
/// mileages in [0, 250K].
Dataset GenerateCarDb(size_t n, uint64_t seed);

/// The paper's Fig. 1(a) running-example relation (8 tuples:
/// price in $K, mileage in K-miles). Used by tests, examples, and the
/// paper-example bench.
Dataset PaperExampleDataset();

/// The paper's example query product q(price 8.5K, mileage 55K).
Point PaperExampleQuery();

}  // namespace wnrs

#endif  // WNRS_DATA_GENERATORS_H_
