#include "data/csv.h"

#include <sstream>

#include "common/string_util.h"
#include "storage/file_io.h"

namespace wnrs {

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ostringstream out;
  for (size_t i = 0; i < dataset.dims; ++i) {
    if (i > 0) out << ',';
    out << 'd' << i;
  }
  out << '\n';
  for (const Point& p : dataset.points) {
    for (size_t i = 0; i < dataset.dims; ++i) {
      if (i > 0) out << ',';
      out << StrFormat("%.17g", p[i]);
    }
    out << '\n';
  }
  return storage::WriteStringToFile(path, out.str());
}

Result<Dataset> LoadCsv(const std::string& path) {
  std::string contents;
  WNRS_RETURN_IF_ERROR(storage::ReadFileToString(path, &contents));
  std::istringstream in(std::move(contents));
  Dataset ds;
  ds.name = path;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  ds.dims = Split(line, ',').size();
  if (ds.dims == 0) {
    return Status::InvalidArgument("header has no fields: " + path);
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != ds.dims) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected %zu fields, got %zu", line_no,
                    ds.dims, fields.size()));
    }
    Point p(ds.dims);
    for (size_t i = 0; i < ds.dims; ++i) {
      if (!ParseDouble(fields[i], &p[i])) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad number '%s'", line_no,
                      fields[i].c_str()));
      }
    }
    ds.points.push_back(std::move(p));
  }
  return ds;
}

}  // namespace wnrs
