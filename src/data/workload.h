#ifndef WNRS_DATA_WORKLOAD_H_
#define WNRS_DATA_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"

namespace wnrs {

/// A benchmark query: a query point (drawn from the dataset's own
/// distribution, as the paper does), its reverse skyline, and a randomly
/// chosen why-not customer (a customer outside the reverse skyline).
struct WhyNotWorkloadQuery {
  Point q;
  /// Indices into the customer dataset of RSL(q).
  std::vector<size_t> rsl;
  /// Index into the customer dataset of the chosen why-not point.
  size_t why_not_index = 0;
};

/// Computes RSL(q) as customer indices; injected so the workload sampler
/// does not depend on the reverse-skyline layer.
using RslFn = std::function<std::vector<size_t>(const Point& q)>;

/// Samples query points following the distribution of `customers`
/// (perturbed dataset points), evaluates their reverse skylines via
/// `rsl_fn`, and keeps the first query found for each |RSL| bucket in
/// [min_rsl, max_rsl] — reproducing the paper's "queries with 1-15 reverse
/// skyline points" workloads. Each kept query also gets a random why-not
/// customer (uniform over customers outside RSL(q) whose window is
/// non-empty by construction). Gives up on a bucket after `max_attempts`
/// total samples.
std::vector<WhyNotWorkloadQuery> SampleQueriesByRslSize(
    const Dataset& customers, const RslFn& rsl_fn, size_t min_rsl,
    size_t max_rsl, size_t max_attempts, uint64_t seed);

}  // namespace wnrs

#endif  // WNRS_DATA_WORKLOAD_H_
