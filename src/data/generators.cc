#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace wnrs {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

Dataset GenerateUniform(size_t n, size_t dims, uint64_t seed) {
  WNRS_CHECK(dims >= 1);
  Rng rng(seed);
  Dataset ds;
  ds.name = StrFormat("UN-%zu", n);
  ds.dims = dims;
  ds.points.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) p[i] = rng.NextDouble();
    ds.points.push_back(std::move(p));
  }
  return ds;
}

Dataset GenerateCorrelated(size_t n, size_t dims, uint64_t seed) {
  WNRS_CHECK(dims >= 1);
  Rng rng(seed);
  Dataset ds;
  ds.name = StrFormat("CO-%zu", n);
  ds.dims = dims;
  ds.points.reserve(n);
  while (ds.points.size() < n) {
    // A common value along the diagonal plus small per-dimension jitter;
    // out-of-range samples are rejected (clamping would pile mass onto
    // the domain boundary and create exact coordinate ties).
    const double base = rng.NextDouble();
    Point p(dims);
    bool ok = true;
    for (size_t i = 0; i < dims; ++i) {
      p[i] = base + rng.NextGaussian(0.0, 0.06);
      if (p[i] < 0.0 || p[i] >= 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) ds.points.push_back(std::move(p));
  }
  return ds;
}

Dataset GenerateAnticorrelated(size_t n, size_t dims, uint64_t seed) {
  WNRS_CHECK(dims >= 1);
  Rng rng(seed);
  Dataset ds;
  ds.name = StrFormat("AC-%zu", n);
  ds.dims = dims;
  ds.points.reserve(n);
  while (ds.points.size() < n) {
    // Target coordinate sum near dims/2; spread it across dimensions with
    // uniform proportions, rejecting out-of-range samples.
    const double target_sum =
        std::max(0.05, dims * 0.5 + rng.NextGaussian(0.0, 0.12));
    Point p(dims);
    double raw_sum = 0.0;
    for (size_t i = 0; i < dims; ++i) {
      p[i] = rng.NextDouble() + 1e-9;
      raw_sum += p[i];
    }
    bool ok = true;
    for (size_t i = 0; i < dims; ++i) {
      p[i] = p[i] / raw_sum * target_sum;
      if (p[i] > 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) ds.points.push_back(std::move(p));
  }
  return ds;
}

Dataset GenerateClustered(size_t n, size_t dims, uint64_t seed,
                          size_t num_clusters, double stddev) {
  WNRS_CHECK(dims >= 1);
  WNRS_CHECK(num_clusters >= 1);
  Rng rng(seed);
  std::vector<Point> centers;
  centers.reserve(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    Point center(dims);
    for (size_t i = 0; i < dims; ++i) center[i] = rng.NextDouble();
    centers.push_back(std::move(center));
  }
  Dataset ds;
  ds.name = StrFormat("CL-%zu", n);
  ds.dims = dims;
  ds.points.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const Point& center = centers[rng.NextUint64(num_clusters)];
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) {
      p[i] = Clamp01(center[i] + rng.NextGaussian(0.0, stddev));
    }
    ds.points.push_back(std::move(p));
  }
  return ds;
}

Dataset GenerateCarDb(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = StrFormat("CarDB-%zu", n);
  ds.dims = 2;
  ds.points.reserve(n);

  // Vehicle segments: {weight, median price $, price spread (log-space),
  // expected mileage at the median price}.
  struct Segment {
    double weight;
    double median_price;
    double log_sigma;
    double base_mileage;
  };
  constexpr Segment kSegments[] = {
      {0.30, 6500.0, 0.55, 110000.0},   // Older economy cars.
      {0.35, 14000.0, 0.45, 70000.0},   // Mainstream used.
      {0.22, 26000.0, 0.40, 35000.0},   // Near-new / entry luxury.
      {0.10, 45000.0, 0.35, 15000.0},   // Luxury.
      {0.03, 70000.0, 0.30, 8000.0},    // Exotic tail.
  };

  while (ds.points.size() < n) {
    // Pick a segment by weight.
    double pick = rng.NextDouble();
    const Segment* seg = &kSegments[0];
    for (const Segment& s : kSegments) {
      if (pick < s.weight) {
        seg = &s;
        break;
      }
      pick -= s.weight;
    }
    const double price =
        seg->median_price * std::exp(rng.NextGaussian(0.0, seg->log_sigma));
    if (price < 500.0 || price > 90000.0) continue;
    // Mileage anti-correlates with price within a segment; heavy right
    // tail from high-mileage outliers.
    const double price_factor = seg->median_price / price;
    double mileage = seg->base_mileage * std::pow(price_factor, 0.6) *
                     std::exp(rng.NextGaussian(0.0, 0.5));
    if (rng.NextBool(0.05)) mileage *= 1.0 + rng.NextExponential(1.0);
    // Rejection rather than clamping: clamping would create exact-tie
    // pile-ups at the cap, which real (continuous) listings do not have.
    if (mileage > 250000.0) continue;
    ds.points.push_back(Point({price, mileage}));
  }
  return ds;
}

Dataset PaperExampleDataset() {
  Dataset ds;
  ds.name = "paper-example";
  ds.dims = 2;
  ds.points = {
      Point({5.0, 30.0}),   // pt1
      Point({7.5, 42.0}),   // pt2
      Point({2.5, 70.0}),   // pt3
      Point({7.5, 90.0}),   // pt4
      Point({24.0, 20.0}),  // pt5
      Point({20.0, 50.0}),  // pt6
      Point({26.0, 70.0}),  // pt7
      Point({16.0, 80.0}),  // pt8
  };
  return ds;
}

Point PaperExampleQuery() { return Point({8.5, 55.0}); }

}  // namespace wnrs
