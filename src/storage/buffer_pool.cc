#include "storage/buffer_pool.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace wnrs {
namespace storage {

BufferPool::BufferPool(std::shared_ptr<IStorageManager> base, size_t capacity)
    : base_(std::move(base)),
      capacity_(capacity == 0 ? 1 : capacity),
      frames_(capacity_) {
  WNRS_CHECK(base_ != nullptr);
}

size_t BufferPool::resident() const {
  MutexLock lock(mu_);
  return frame_of_.size();
}

void BufferPool::InstallLocked(PageId id,
                               std::shared_ptr<const std::string> data) {
  // Clock sweep: clear reference bits until a cold (or empty) frame
  // comes around. Terminates within two revolutions.
  for (;;) {
    Frame& frame = frames_[hand_];
    if (frame.data != nullptr && frame.referenced) {
      frame.referenced = false;
      hand_ = (hand_ + 1) % frames_.size();
      continue;
    }
    if (frame.data != nullptr) {
      frame_of_.erase(frame.id);
    }
    frame.id = id;
    frame.data = std::move(data);
    frame.referenced = true;
    frame_of_[id] = hand_;
    hand_ = (hand_ + 1) % frames_.size();
    return;
  }
}

Result<std::shared_ptr<const std::string>> BufferPool::FetchPage(PageId id) {
  {
    MutexLock lock(mu_);
    auto it = frame_of_.find(id);
    if (it != frame_of_.end()) {
      MetricAdd(CounterId::kStorageCacheHits);
      Frame& frame = frames_[it->second];
      frame.referenced = true;
      return frame.data;
    }
  }
  // Miss: fetch outside the lock so slow I/O does not serialize hits.
  // Racing fetchers of the same page each do the read; last install wins
  // (the page bytes are identical, so this is waste, not inconsistency).
  MetricAdd(CounterId::kStorageCacheMisses);
  auto data = std::make_shared<std::string>();
  WNRS_RETURN_IF_ERROR(base_->ReadPage(id, data.get()));
  std::shared_ptr<const std::string> page = std::move(data);
  {
    MutexLock lock(mu_);
    if (frame_of_.find(id) == frame_of_.end()) {
      InstallLocked(id, page);
    }
  }
  return page;
}

Status BufferPool::ReadPage(PageId id, std::string* out) {
  Result<std::shared_ptr<const std::string>> page = FetchPage(id);
  WNRS_RETURN_IF_ERROR(page.status());
  *out = *page.value();
  return Status::Ok();
}

Result<PageId> BufferPool::WritePage(PageId id, const std::string& data) {
  Result<PageId> written = base_->WritePage(id, data);
  WNRS_RETURN_IF_ERROR(written.status());
  MutexLock lock(mu_);
  auto it = frame_of_.find(written.value());
  auto page = std::make_shared<const std::string>(data);
  if (it != frame_of_.end()) {
    frames_[it->second].data = std::move(page);
    frames_[it->second].referenced = true;
  } else {
    InstallLocked(written.value(), std::move(page));
  }
  return written.value();
}

}  // namespace storage
}  // namespace wnrs
