#ifndef WNRS_STORAGE_CRC32_H_
#define WNRS_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace wnrs {
namespace storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding every
/// page and slab section of the on-disk formats. `seed` chains partial
/// computations: Crc32(b, n2, Crc32(a, n1)) == Crc32(concat(a, b)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_CRC32_H_
