#include "storage/engine_store.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "geometry/point.h"
#include "storage/codec.h"
#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/storage_manager.h"

namespace wnrs {
namespace storage {
namespace {

constexpr uint32_t kBundleMagic = 0x42454E57u;  // "WNEB" little-endian.
constexpr uint32_t kBundleVersion = 1;

constexpr uint32_t kFlagShared = 1u << 0;
constexpr uint32_t kFlagHasCustomers = 1u << 1;
constexpr uint32_t kFlagHasPacked = 1u << 2;
constexpr uint32_t kFlagHasPackedCustomers = 1u << 3;
constexpr uint32_t kAllFlags = kFlagShared | kFlagHasCustomers |
                               kFlagHasPacked | kFlagHasPackedCustomers;

constexpr uint64_t kMaxReasonableDims = 64;
constexpr uint64_t kMaxReasonableCount = uint64_t{1} << 40;

void AppendString(std::string* out, const std::string& s) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  AppendRaw(out, s.data(), s.size());
}

void AppendDataset(std::string* out, const Dataset& ds, size_t dims) {
  AppendString(out, ds.name);
  AppendPod<uint64_t>(out, ds.points.size());
  for (const Point& p : ds.points) {
    for (size_t i = 0; i < dims; ++i) AppendPod<double>(out, p[i]);
  }
}

Status ReadString(ByteReader* r, std::string* out, const std::string& path) {
  uint32_t len = 0;
  if (!r->ReadPod(&len) || len > r->remaining()) {
    return Status::InvalidArgument("[truncated] bundle string field: " + path);
  }
  out->assign(reinterpret_cast<const char*>(r->cursor()), len);
  WNRS_CHECK(r->Skip(len));
  return Status::Ok();
}

Status ReadDataset(ByteReader* r, Dataset* ds, size_t dims, bool is_shared,
                   const std::string& path) {
  WNRS_RETURN_IF_ERROR(ReadString(r, &ds->name, path));
  uint64_t count = 0;
  if (!r->ReadPod(&count) || count == 0 || count > kMaxReasonableCount ||
      count * dims * sizeof(double) > r->remaining()) {
    return Status::InvalidArgument(
        "[truncated] bundle dataset shorter than its declared point "
        "count: " +
        path);
  }
  ds->dims = dims;
  ds->points.reserve(static_cast<size_t>(count));
  for (uint64_t n = 0; n < count; ++n) {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) {
      double v = 0;
      WNRS_CHECK(r->ReadPod(&v));
      // Datasets hold finite coordinates by construction (the engine
      // validates every inserted point); a NaN here is file corruption
      // that slipped past the CRC, not a legal value. Tombstoned slots
      // keep their (finite) coordinates too.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrFormat("[coordinate] non-finite coordinate in %s point %llu "
                      "of bundle %s",
                      is_shared ? "shared" : "stored",
                      static_cast<unsigned long long>(n), path.c_str()));
      }
      p[i] = v;
    }
    ds->points.push_back(std::move(p));
  }
  return Status::Ok();
}

}  // namespace

Status SaveBundleData(const EngineBundleData& data, const std::string& path) {
  const size_t dims = data.products.dims;
  uint32_t flags = 0;
  if (data.shared_relation) flags |= kFlagShared;
  if (data.has_customers) flags |= kFlagHasCustomers;
  if (data.has_packed) flags |= kFlagHasPacked;
  if (data.has_packed_customers) flags |= kFlagHasPackedCustomers;

  std::string out;
  AppendPod<uint32_t>(&out, kBundleMagic);
  AppendPod<uint32_t>(&out, kBundleVersion);
  AppendPod<uint32_t>(&out, kEndianMarker);
  AppendPod<uint32_t>(&out, flags);
  AppendPod<uint64_t>(&out, static_cast<uint64_t>(dims));
  for (size_t i = 0; i < dims; ++i) {
    AppendPod<double>(&out, data.universe.lo()[i]);
  }
  for (size_t i = 0; i < dims; ++i) {
    AppendPod<double>(&out, data.universe.hi()[i]);
  }
  AppendDataset(&out, data.products, dims);
  if (data.has_customers) AppendDataset(&out, data.customers, dims);
  AppendPod<uint64_t>(&out, static_cast<uint64_t>(data.removed.size()));
  for (size_t i = 0; i < data.removed.size(); i += 8) {
    uint8_t byte = 0;
    for (size_t b = 0; b < 8 && i + b < data.removed.size(); ++b) {
      if (data.removed[i + b]) byte |= static_cast<uint8_t>(1u << b);
    }
    AppendPod<uint8_t>(&out, byte);
  }
  AppendPod<uint32_t>(&out, Crc32(out.data(), out.size()));
  return WriteStringToFile(path, out);
}

Result<EngineBundleData> LoadBundleData(const std::string& path) {
  std::string bytes;
  WNRS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  if (bytes.size() < 24 + sizeof(uint32_t)) {
    return Status::InvalidArgument("[truncated] bundle data file shorter "
                                   "than its header: " +
                                   path);
  }
  // Whole-payload CRC first: everything after it parses trusted bytes.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32(bytes.data(), bytes.size() - sizeof(uint32_t)) != stored_crc) {
    return Status::InvalidArgument("[data-crc] bundle data corrupt: " + path);
  }
  ByteReader r(bytes.data(), bytes.size() - sizeof(uint32_t));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t flags = 0;
  uint64_t dims = 0;
  WNRS_CHECK(r.ReadPod(&magic) && r.ReadPod(&version) && r.ReadPod(&endian) &&
             r.ReadPod(&flags) && r.ReadPod(&dims));
  if (magic != kBundleMagic) {
    return Status::InvalidArgument("[magic] not a wnrs engine bundle: " +
                                   path);
  }
  if (version != kBundleVersion) {
    return Status::InvalidArgument(
        StrFormat("[version] bundle version %u, expected %u", version,
                  kBundleVersion));
  }
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "[endianness] bundle written on a foreign-endian host: " + path);
  }
  if ((flags & ~kAllFlags) != 0 ||
      ((flags & kFlagShared) != 0 && (flags & kFlagHasCustomers) != 0)) {
    return Status::InvalidArgument(
        StrFormat("[bundle-flags] inconsistent bundle flags 0x%x", flags));
  }
  if (dims == 0 || dims > kMaxReasonableDims) {
    return Status::InvalidArgument(
        StrFormat("[dimension] bundle declares %llu dimensions",
                  static_cast<unsigned long long>(dims)));
  }

  EngineBundleData data;
  data.shared_relation = (flags & kFlagShared) != 0;
  data.has_customers = (flags & kFlagHasCustomers) != 0;
  data.has_packed = (flags & kFlagHasPacked) != 0;
  data.has_packed_customers = (flags & kFlagHasPackedCustomers) != 0;

  if (2 * dims * sizeof(double) > r.remaining()) {
    return Status::InvalidArgument("[truncated] bundle universe: " + path);
  }
  Point lo(static_cast<size_t>(dims));
  Point hi(static_cast<size_t>(dims));
  for (size_t i = 0; i < dims; ++i) WNRS_CHECK(r.ReadPod(&lo[i]));
  for (size_t i = 0; i < dims; ++i) WNRS_CHECK(r.ReadPod(&hi[i]));
  for (size_t i = 0; i < dims; ++i) {
    if (!std::isfinite(lo[i]) || !std::isfinite(hi[i]) || lo[i] > hi[i]) {
      return Status::InvalidArgument(
          StrFormat("[mbr-order] bundle universe malformed in dimension "
                    "%zu",
                    i));
    }
  }
  data.universe = Rectangle(std::move(lo), std::move(hi));

  WNRS_RETURN_IF_ERROR(ReadDataset(&r, &data.products,
                                   static_cast<size_t>(dims),
                                   data.shared_relation, path));
  if (data.has_customers) {
    WNRS_RETURN_IF_ERROR(ReadDataset(&r, &data.customers,
                                     static_cast<size_t>(dims), false, path));
  }

  uint64_t removed_count = 0;
  if (!r.ReadPod(&removed_count) ||
      removed_count > data.products.points.size()) {
    return Status::InvalidArgument(
        "[truncated] bundle tombstone bitmap header: " + path);
  }
  const size_t removed_bytes = static_cast<size_t>((removed_count + 7) / 8);
  if (removed_bytes > r.remaining()) {
    return Status::InvalidArgument(
        "[truncated] bundle tombstone bitmap shorter than declared: " + path);
  }
  data.removed.resize(static_cast<size_t>(removed_count), false);
  for (size_t i = 0; i < removed_count; i += 8) {
    uint8_t byte = 0;
    WNRS_CHECK(r.ReadPod(&byte));
    for (size_t b = 0; b < 8 && i + b < removed_count; ++b) {
      data.removed[i + b] = (byte & (1u << b)) != 0;
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("[trailing-bytes] %zu bytes after the bundle payload: %s",
                  r.remaining(), path.c_str()));
  }
  return data;
}

}  // namespace storage
}  // namespace wnrs
