#ifndef WNRS_STORAGE_BUFFER_POOL_H_
#define WNRS_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace wnrs {
namespace storage {

/// Fixed-capacity page cache in front of an IStorageManager, evicting by
/// the clock (second-chance) policy — the gtsat buffer.c design: one
/// reference bit per frame, a sweeping hand that clears bits until it
/// finds a cold frame. Hits and misses are exported through
/// storage.cache_hits / storage.cache_misses; the wrapped store's own
/// storage.page_reads counter then measures real I/O, so `hits / (hits +
/// misses)` is directly observable in every bench --json dump.
///
/// Pages come back as shared_ptr<const string>: eviction drops the
/// pool's reference only, so a caller may keep using a page it holds.
/// Thread-safe; reads of distinct pages serialize only on the frame map.
class BufferPool final : public IStorageManager {
 public:
  /// `capacity` is the frame count (>= 1). The pool does not own `base`
  /// beyond the shared_ptr.
  BufferPool(std::shared_ptr<IStorageManager> base, size_t capacity);

  /// Cached read. Hot path of the paged tree load.
  [[nodiscard]] Result<std::shared_ptr<const std::string>> FetchPage(
      PageId id);

  // IStorageManager: ReadPage copies out of the cache; WritePage goes
  // through to the base store and updates (or installs) the frame so
  // subsequent reads see the new bytes.
  Status ReadPage(PageId id, std::string* out) override;
  Result<PageId> WritePage(PageId id, const std::string& data) override;
  size_t page_count() const override { return base_->page_count(); }
  size_t page_size() const override { return base_->page_size(); }
  Status Flush() override { return base_->Flush(); }

  size_t capacity() const { return capacity_; }
  /// Frames currently holding a page (<= capacity).
  size_t resident() const;

 private:
  struct Frame {
    PageId id = kNewPage;
    std::shared_ptr<const std::string> data;
    bool referenced = false;
  };

  /// Installs `data` for `id`, evicting via the clock hand if no frame
  /// is free.
  void InstallLocked(PageId id, std::shared_ptr<const std::string> data)
      WNRS_REQUIRES(mu_);

  std::shared_ptr<IStorageManager> base_;
  /// Frame count, fixed at construction (frames_.size() never changes;
  /// kept outside mu_ so capacity() stays lock-free).
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<Frame> frames_ WNRS_GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> frame_of_ WNRS_GUARDED_BY(mu_);
  size_t hand_ WNRS_GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_BUFFER_POOL_H_
