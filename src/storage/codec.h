#ifndef WNRS_STORAGE_CODEC_H_
#define WNRS_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace wnrs {
namespace storage {

/// Byte-level encode/decode helpers shared by the binary formats. Values
/// are stored host-endian via memcpy; every format stamps kEndianMarker
/// into its header, so a file from a foreign-endian host is rejected at
/// open ([endianness]) instead of decoding transposed — the same policy
/// that lets the packed slab's coordinate planes map back zero-copy.

inline void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendRaw(out, &value, sizeof(T));
}

/// Bounds-checked forward reader over an immutable byte range. Every
/// Read* returns false instead of reading past the end, so truncated
/// files surface as clean parse failures.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}

  [[nodiscard]] bool ReadRaw(void* out, size_t len) {
    if (len > remaining()) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  template <typename T>
  [[nodiscard]] bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(T));
  }

  [[nodiscard]] bool Skip(size_t len) {
    if (len > remaining()) return false;
    pos_ += len;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  const uint8_t* cursor() const { return data_ + pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_CODEC_H_
