#include "storage/tree_store.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "storage/buffer_pool.h"
#include "storage/codec.h"

namespace wnrs {
namespace {

using storage::AppendPod;
using storage::ByteReader;
using storage::IStorageManager;
using storage::PageId;

constexpr uint32_t kTreeMagic = 0x52544E57u;  // "WNTR" little-endian.
constexpr uint32_t kTreeVersion = 1;

/// Serialized size of one node: leaf flag, entry count, and per entry
/// the MBR corners plus an 8-byte ref (data id or child page).
size_t NodeBytes(size_t dims, size_t entries) {
  return 1 + 4 + entries * (2 * dims * sizeof(double) + 8);
}

std::string EncodeMeta(const RStarTree& tree, const RTreeOptions& options,
                       uint32_t node_pages) {
  std::string m;
  AppendPod<uint32_t>(&m, kTreeMagic);
  AppendPod<uint32_t>(&m, kTreeVersion);
  AppendPod<uint32_t>(&m, storage::kEndianMarker);
  AppendPod<uint32_t>(&m, static_cast<uint32_t>(tree.dims()));
  AppendPod<uint64_t>(&m, static_cast<uint64_t>(tree.size()));
  AppendPod<uint32_t>(&m, static_cast<uint32_t>(tree.height()));
  AppendPod<uint32_t>(&m, static_cast<uint32_t>(tree.max_entries()));
  AppendPod<uint32_t>(&m, static_cast<uint32_t>(tree.min_entries()));
  // The R* tuning knobs, so mutations applied after a reload behave
  // exactly like mutations of the saved tree.
  AppendPod<uint64_t>(&m, static_cast<uint64_t>(options.page_size_bytes));
  AppendPod<double>(&m, options.min_fill_ratio);
  AppendPod<double>(&m, options.reinsert_fraction);
  AppendPod<uint32_t>(&m, node_pages);
  return m;
}

}  // namespace

size_t RTreePageStore::RequiredPageSize(const RStarTree& tree) {
  // max_entries() bounds every node's fan-out, and the metadata page is
  // tiny; one splitting node may briefly hold max_entries + 1 entries,
  // but never when quiescent for Save.
  return std::max<size_t>(NodeBytes(tree.dims(), tree.max_entries()), 64);
}

Status RTreePageStore::Save(const RStarTree& tree,
                            storage::IStorageManager* store) {
  WNRS_CHECK(store != nullptr);
  if (store->page_count() != 0) {
    return Status::InvalidArgument(
        "tree page store requires an empty storage manager");
  }
  // Reserve page 0 for metadata; it is rewritten with the real node-page
  // count once the post-order walk below has assigned every page.
  Result<PageId> meta_page = store->WritePage(storage::kNewPage, "");
  WNRS_RETURN_IF_ERROR(meta_page.status());
  WNRS_CHECK(meta_page.value() == 0);

  // Post-order: children land on lower page ids than their parent, so
  // Load can resolve every child link in one ascending pass. An explicit
  // two-phase stack avoids recursion on tall trees.
  uint32_t node_pages = 0;
  struct Pending {
    const RStarTree::Node* node;
    bool expanded;
  };
  std::vector<Pending> stack = {{tree.root_, false}};
  std::vector<std::pair<const RStarTree::Node*, PageId>> page_of;
  auto lookup = [&page_of](const RStarTree::Node* n) {
    for (auto it = page_of.rbegin(); it != page_of.rend(); ++it) {
      if (it->first == n) return it->second;
    }
    WNRS_CHECK(false) << "child node missing from the post-order map";
    return storage::kNewPage;
  };
  while (!stack.empty()) {
    if (!stack.back().expanded && !stack.back().node->is_leaf) {
      stack.back().expanded = true;
      // Copy before push_back: growing the stack invalidates back().
      const RStarTree::Node* parent = stack.back().node;
      for (const RStarTree::Entry& e : parent->entries) {
        stack.push_back({e.child, false});
      }
      continue;
    }
    const RStarTree::Node* node = stack.back().node;
    stack.pop_back();
    std::string payload;
    payload.reserve(NodeBytes(tree.dims(), node->entries.size()));
    AppendPod<uint8_t>(&payload, node->is_leaf ? 1 : 0);
    AppendPod<uint32_t>(&payload,
                        static_cast<uint32_t>(node->entries.size()));
    for (const RStarTree::Entry& e : node->entries) {
      for (size_t j = 0; j < tree.dims(); ++j) {
        AppendPod<double>(&payload, e.mbr.lo()[j]);
      }
      for (size_t j = 0; j < tree.dims(); ++j) {
        AppendPod<double>(&payload, e.mbr.hi()[j]);
      }
      if (node->is_leaf) {
        AppendPod<int64_t>(&payload, e.id);
      } else {
        AppendPod<int64_t>(&payload, static_cast<int64_t>(lookup(e.child)));
      }
    }
    Result<PageId> page = store->WritePage(storage::kNewPage, payload);
    WNRS_RETURN_IF_ERROR(page.status());
    page_of.emplace_back(node, page.value());
    ++node_pages;
  }
  WNRS_RETURN_IF_ERROR(
      store->WritePage(0, EncodeMeta(tree, tree.options_, node_pages))
          .status());
  return store->Flush();
}

Result<RStarTree> RTreePageStore::Load(storage::IStorageManager* store) {
  WNRS_CHECK(store != nullptr);
  std::string meta;
  WNRS_RETURN_IF_ERROR(store->ReadPage(0, &meta));
  ByteReader r(meta.data(), meta.size());
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t dims = 0;
  uint64_t size = 0;
  uint32_t height = 0;
  uint32_t max_entries = 0;
  uint32_t min_entries = 0;
  uint64_t page_size_bytes = 0;
  double min_fill_ratio = 0.0;
  double reinsert_fraction = 0.0;
  uint32_t node_pages = 0;
  if (!r.ReadPod(&magic) || !r.ReadPod(&version) || !r.ReadPod(&endian) ||
      !r.ReadPod(&dims) || !r.ReadPod(&size) || !r.ReadPod(&height) ||
      !r.ReadPod(&max_entries) || !r.ReadPod(&min_entries) ||
      !r.ReadPod(&page_size_bytes) || !r.ReadPod(&min_fill_ratio) ||
      !r.ReadPod(&reinsert_fraction) || !r.ReadPod(&node_pages)) {
    return Status::InvalidArgument("[truncated] tree metadata page too short");
  }
  if (magic != kTreeMagic) {
    return Status::InvalidArgument("[magic] not a wnrs tree page store");
  }
  if (version != kTreeVersion) {
    return Status::InvalidArgument(
        StrFormat("[version] tree store version %u, expected %u", version,
                  kTreeVersion));
  }
  if (endian != storage::kEndianMarker) {
    return Status::InvalidArgument(
        "[endianness] tree store written on a foreign-endian host");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "[trailing-bytes] tree metadata page has trailing bytes");
  }
  if (dims == 0 || dims > 64) {
    return Status::InvalidArgument(
        StrFormat("[dimension] tree store declares %u dimensions", dims));
  }
  if (max_entries < 2 || min_entries < 1 || min_entries > max_entries ||
      height == 0 || node_pages == 0 ||
      static_cast<size_t>(node_pages) + 1 > store->page_count()) {
    return Status::InvalidArgument(
        StrFormat("[tree-shape] implausible tree geometry (h=%u, %u node "
                  "pages, store has %zu)",
                  height, node_pages, store->page_count()));
  }

  // Validate the knobs before they reach the RStarTree constructor,
  // whose WNRS_CHECKs abort instead of returning a clean status.
  if (!(min_fill_ratio > 0.0) || !(min_fill_ratio <= 0.5) ||
      !(reinsert_fraction >= 0.0) || !(reinsert_fraction < 1.0) ||
      page_size_bytes == 0 || page_size_bytes > (uint64_t{1} << 30)) {
    return Status::InvalidArgument(
        "[tree-shape] implausible R*-tree tuning knobs in metadata");
  }
  RTreeOptions options;
  options.page_size_bytes = static_cast<size_t>(page_size_bytes);
  options.min_fill_ratio = min_fill_ratio;
  options.reinsert_fraction = reinsert_fraction;
  RStarTree tree(dims, options);
  tree.FreeSubtree(tree.root_);
  tree.root_ = nullptr;
  tree.max_entries_ = max_entries;
  tree.min_entries_ = min_entries;

  // Ascending pass; children precede parents by construction.
  std::vector<RStarTree::Node*> node_of_page(node_pages + 1, nullptr);
  std::string payload;
  Status fail = Status::Ok();
  for (PageId p = 1; p <= node_pages && fail.ok(); ++p) {
    Status read = store->ReadPage(p, &payload);
    if (!read.ok()) {
      fail = read;
      break;
    }
    ByteReader nr(payload.data(), payload.size());
    uint8_t is_leaf = 0;
    uint32_t entry_count = 0;
    if (!nr.ReadPod(&is_leaf) || !nr.ReadPod(&entry_count) || is_leaf > 1 ||
        entry_count > max_entries) {
      fail = Status::InvalidArgument(
          StrFormat("[node-header] page %u has a malformed node header", p));
      break;
    }
    auto node = std::make_unique<RStarTree::Node>();
    node->is_leaf = is_leaf != 0;
    node->entries.reserve(entry_count);
    for (uint32_t k = 0; k < entry_count && fail.ok(); ++k) {
      Point lo(dims);
      Point hi(dims);
      bool ok = true;
      for (uint32_t j = 0; j < dims && ok; ++j) ok = nr.ReadPod(&lo[j]);
      for (uint32_t j = 0; j < dims && ok; ++j) ok = nr.ReadPod(&hi[j]);
      int64_t ref = 0;
      ok = ok && nr.ReadPod(&ref);
      if (!ok) {
        fail = Status::InvalidArgument(
            StrFormat("[truncated] page %u ends mid-entry", p));
        break;
      }
      for (uint32_t j = 0; j < dims; ++j) {
        if (std::isnan(lo[j]) || std::isnan(hi[j]) || lo[j] > hi[j]) {
          fail = Status::InvalidArgument(
              StrFormat("[mbr-order] page %u entry %u has an invalid MBR", p,
                        k));
          break;
        }
      }
      if (!fail.ok()) break;
      RStarTree::Entry entry;
      entry.mbr = Rectangle(std::move(lo), std::move(hi));
      if (node->is_leaf) {
        entry.id = ref;
      } else {
        if (ref < 1 || static_cast<uint64_t>(ref) >= p ||
            node_of_page[static_cast<size_t>(ref)] == nullptr) {
          fail = Status::InvalidArgument(
              StrFormat("[child-page] page %u references child page %lld", p,
                        static_cast<long long>(ref)));
          break;
        }
        entry.child = node_of_page[static_cast<size_t>(ref)];
        // A child already claimed by another parent would alias (and
        // double-free); claiming clears the slot.
        node_of_page[static_cast<size_t>(ref)] = nullptr;
        entry.child->parent = node.get();
      }
      node->entries.push_back(std::move(entry));
    }
    if (!fail.ok()) break;
    if (nr.remaining() != 0) {
      fail = Status::InvalidArgument(
          StrFormat("[trailing-bytes] page %u has %zu bytes after the last "
                    "entry",
                    p, nr.remaining()));
      break;
    }
    node_of_page[p] = node.release();
  }
  if (fail.ok()) {
    // Exactly the root (the highest page) may remain unclaimed.
    for (PageId p = 1; p + 1 <= node_pages; ++p) {
      if (node_of_page[p] != nullptr) {
        fail = Status::InvalidArgument(
            StrFormat("[orphan-node] page %u is referenced by no parent", p));
        break;
      }
    }
  }
  if (!fail.ok()) {
    // Unwind every node built so far (unclaimed slots own whole
    // subtrees).
    for (RStarTree::Node* n : node_of_page) {
      if (n != nullptr) tree.FreeSubtree(n);
    }
    return fail;
  }
  tree.root_ = node_of_page[node_pages];
  tree.root_->parent = nullptr;
  tree.size_ = static_cast<size_t>(size);
  tree.height_ = height;
  WNRS_RETURN_IF_ERROR(tree.CheckInvariants());
  return tree;
}

namespace storage {

Status SavePagedTree(const RStarTree& tree, const std::string& path) {
  Result<std::unique_ptr<DiskStorageManager>> disk =
      DiskStorageManager::Create(path, RTreePageStore::RequiredPageSize(tree));
  WNRS_RETURN_IF_ERROR(disk.status());
  return RTreePageStore::Save(tree, disk.value().get());
}

Result<RStarTree> LoadPagedTree(const std::string& path,
                                size_t buffer_pool_pages) {
  Result<std::unique_ptr<DiskStorageManager>> disk =
      DiskStorageManager::Open(path);
  WNRS_RETURN_IF_ERROR(disk.status());
  BufferPool pool(std::shared_ptr<IStorageManager>(std::move(disk.value())),
                  buffer_pool_pages);
  return RTreePageStore::Load(&pool);
}

}  // namespace storage
}  // namespace wnrs
