#ifndef WNRS_STORAGE_ENGINE_STORE_H_
#define WNRS_STORAGE_ENGINE_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "geometry/rectangle.h"

namespace wnrs {
namespace storage {

/// File names inside an engine bundle directory (WhyNotEngine::Save /
/// WhyNotEngine::Open). A bundle is a directory, not a single file, so
/// the large components keep their own formats: the page-granular tree
/// files reopen through the buffer pool, and the packed slab mmaps.
inline constexpr char kBundleDataFile[] = "data.bin";
inline constexpr char kBundleTreeFile[] = "tree.pages";
inline constexpr char kBundleCustomerTreeFile[] = "customers.pages";
inline constexpr char kBundlePackedFile[] = "packed.slab";
inline constexpr char kBundlePackedCustomerFile[] = "packed_customers.slab";

/// Everything in an engine core that is not an index: the datasets, the
/// tombstone bitmap, the universe rectangle (mutable post-construction —
/// AddProduct can widen it, so it cannot be recomputed from the points),
/// and which optional bundle files to expect.
struct EngineBundleData {
  bool shared_relation = false;
  Dataset products;
  /// Bichromatic mode only; empty (and has_customers false) otherwise.
  Dataset customers;
  bool has_customers = false;
  std::vector<bool> removed;
  Rectangle universe;
  /// Packed slab files written alongside data.bin.
  bool has_packed = false;
  bool has_packed_customers = false;
};

/// Writes `data` to `path` as a versioned binary blob (magic,
/// endianness marker, whole-payload CRC-32).
[[nodiscard]] Status SaveBundleData(const EngineBundleData& data,
                                    const std::string& path);

/// Reads a SaveBundleData file. Corruption (truncation, bad CRC, wrong
/// magic/version/endianness, implausible geometry, trailing bytes) comes
/// back as a Status naming the violated invariant in [brackets].
[[nodiscard]] Result<EngineBundleData> LoadBundleData(
    const std::string& path);

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_ENGINE_STORE_H_
