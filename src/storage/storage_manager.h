#ifndef WNRS_STORAGE_STORAGE_MANAGER_H_
#define WNRS_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace wnrs {
namespace storage {

/// Logical page identifier within one storage manager.
using PageId = uint32_t;

/// Pass to WritePage to allocate a fresh page instead of overwriting.
inline constexpr PageId kNewPage = UINT32_MAX;

/// Little-endian marker stamped into every binary header. A file written
/// on a big-endian host would read back as 0xD4C3B2A1 and be rejected
/// with [endianness] instead of silently transposing every coordinate.
inline constexpr uint32_t kEndianMarker = 0xA1B2C3D4u;

/// Page-granular storage seam (the brepdb-style split): the tree page
/// store and buffer pool talk to this interface only, so the same code
/// serves an all-in-RAM index, a file-backed one, and the tests'
/// fault-injection wrappers.
///
/// Pages are variable-length up to page_size() bytes. Implementations
/// count real page transfers in the storage.page_reads /
/// storage.page_writes metrics; the BufferPool in front adds the
/// hit/miss split.
class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  /// Reads page `id` into `out` (replacing its contents).
  [[nodiscard]] virtual Status ReadPage(PageId id, std::string* out) = 0;

  /// Writes `data` to page `id`, or to a newly allocated page when
  /// `id == kNewPage`. Returns the page id actually written.
  [[nodiscard]] virtual Result<PageId> WritePage(PageId id,
                                                 const std::string& data) = 0;

  /// Number of allocated pages; valid ids are [0, page_count()).
  virtual size_t page_count() const = 0;

  /// Maximum payload bytes per page.
  virtual size_t page_size() const = 0;

  /// Durably persists all writes (no-op for memory managers).
  [[nodiscard]] virtual Status Flush() = 0;
};

/// Stores pages in a plain in-memory vector. The reference
/// implementation for tests and the fast path when persistence is not
/// wanted — the page store code is identical either way.
class MemoryStorageManager final : public IStorageManager {
 public:
  explicit MemoryStorageManager(size_t page_size = 4096)
      : page_size_(page_size) {}

  Status ReadPage(PageId id, std::string* out) override;
  Result<PageId> WritePage(PageId id, const std::string& data) override;
  size_t page_count() const override { return pages_.size(); }
  size_t page_size() const override { return page_size_; }
  Status Flush() override { return Status::Ok(); }

 private:
  size_t page_size_;
  std::vector<std::string> pages_;
};

/// File-backed page store. One fixed-size slot per page, each guarded by
/// its own CRC-32, behind a versioned header carrying magic, format
/// version, endianness marker, and page geometry. Every corruption mode
/// (truncation, flipped bits, wrong magic/version/endianness, oversized
/// page index or length) is rejected with a Status naming the violated
/// invariant in [brackets] — never undefined behavior.
///
/// File layout (all integers little-endian):
///   header (32 bytes): magic "WNPG" | version u32 | endian u32 |
///                      page_size u32 | page_count u64 | crc u32 (header)
///   page i at 32 + i*(page_size+8): len u32 | crc u32 | payload | zeros
class DiskStorageManager final : public IStorageManager {
  /// Passkey: construction goes through Create()/Open() only, but the
  /// constructor must stay public for make_unique.
  struct Badge {};

 public:
  explicit DiskStorageManager(Badge) {}

  /// Creates (truncates) `path` for writing with the given payload size.
  [[nodiscard]] static Result<std::unique_ptr<DiskStorageManager>> Create(
      const std::string& path, size_t page_size = 4096);

  /// Opens an existing file read-only; WritePage fails on it.
  [[nodiscard]] static Result<std::unique_ptr<DiskStorageManager>> Open(
      const std::string& path);

  ~DiskStorageManager() override;
  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status ReadPage(PageId id, std::string* out) override;
  Result<PageId> WritePage(PageId id, const std::string& data) override;
  size_t page_count() const override { return page_count_; }
  size_t page_size() const override { return page_size_; }
  /// Rewrites the header (with the current page count) and syncs stdio
  /// buffers to the OS.
  Status Flush() override;

 private:
  uint64_t PageOffset(PageId id) const;

  void* file_ = nullptr;  // std::FILE*, type-erased out of the header.
  std::string path_;
  bool writable_ = false;
  size_t page_size_ = 0;
  size_t page_count_ = 0;
};

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_STORAGE_MANAGER_H_
