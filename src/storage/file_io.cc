#include "storage/file_io.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define WNRS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WNRS_HAVE_MMAP 0
#include <sys/stat.h>
#endif

namespace wnrs {
namespace storage {
namespace {

/// RAII stdio handle so every early return closes the file.
struct FileCloser {
  std::FILE* f = nullptr;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

class OwnedBufferFile : public MappedFile {
 public:
  explicit OwnedBufferFile(std::string bytes) : bytes_(std::move(bytes)) {}
  const void* data() const override { return bytes_.data(); }
  size_t size() const override { return bytes_.size(); }
  bool zero_copy() const override { return false; }

 private:
  std::string bytes_;
};

#if WNRS_HAVE_MMAP
class PosixMappedFile : public MappedFile {
 public:
  PosixMappedFile(void* addr, size_t len) : addr_(addr), len_(len) {}
  ~PosixMappedFile() override {
    if (addr_ != nullptr && len_ > 0) ::munmap(addr_, len_);
  }
  PosixMappedFile(const PosixMappedFile&) = delete;
  PosixMappedFile& operator=(const PosixMappedFile&) = delete;
  const void* data() const override { return addr_; }
  size_t size() const override { return len_; }
  bool zero_copy() const override { return true; }

 private:
  void* addr_;
  size_t len_;
};
#endif

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  FileCloser fc;
  fc.f = std::fopen(path.c_str(), "rb");
  if (fc.f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fc.f)) > 0) {
    out->append(buf, n);
  }
  if (std::ferror(fc.f) != 0) {
    return Status::IoError("read failure: " + path);
  }
  return Status::Ok();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  FileCloser fc;
  fc.f = std::fopen(path.c_str(), "wb");
  if (fc.f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), fc.f) !=
          contents.size()) {
    return Status::IoError("write failure: " + path);
  }
  if (std::fflush(fc.f) != 0) {
    return Status::IoError("flush failure: " + path);
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && (st.st_mode & S_IFREG) != 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0 || (st.st_mode & S_IFREG) == 0) {
    return Status::IoError("cannot stat: " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status EnsureDirectory(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) {
    if ((st.st_mode & S_IFDIR) != 0) return Status::Ok();
    return Status::IoError("exists but is not a directory: " + path);
  }
#if defined(_WIN32)
  return Status::Unimplemented("EnsureDirectory is POSIX-only");
#else
  if (::mkdir(path.c_str(), 0755) != 0) {
    return Status::IoError("cannot create directory: " + path);
  }
  return Status::Ok();
#endif
}

Result<std::shared_ptr<const MappedFile>> MapFileReadOnly(
    const std::string& path) {
#if WNRS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for mapping: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat for mapping: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    // mmap rejects zero-length mappings; an empty file maps to an empty
    // buffered view instead.
    ::close(fd);
    return std::shared_ptr<const MappedFile>(
        std::make_shared<const OwnedBufferFile>(std::string()));
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  return std::shared_ptr<const MappedFile>(
      std::make_shared<const PosixMappedFile>(addr, len));
#else
  std::string bytes;
  WNRS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return std::shared_ptr<const MappedFile>(
      std::make_shared<const OwnedBufferFile>(std::move(bytes)));
#endif
}

}  // namespace storage
}  // namespace wnrs
