#include "storage/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace wnrs {
namespace storage {
namespace {

/// Slicing-by-eight tables for the reflected IEEE polynomial 0xEDB88320,
/// built once at first use. Slice s advances the CRC by s+1 bytes at
/// once, so the hot loop folds 8 input bytes per iteration with eight
/// independent table loads — roughly an order of magnitude faster than
/// the classic byte-at-a-time loop, which matters because every page
/// read and every slab open runs the input through here.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (size_t s = 1; s < 8; ++s) {
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    }
  }
  return t;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> t = BuildTables();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  // The word loads below assume little-endian lane order; the byte loop
  // is the (equally correct) fallback for big-endian hosts.
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 8) {
      uint32_t lo = 0;
      uint32_t hi = 0;
      std::memcpy(&lo, p, sizeof(lo));
      std::memcpy(&hi, p + 4, sizeof(hi));
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
          t[0][hi >> 24];
      p += 8;
      len -= 8;
    }
  }
  for (size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace wnrs
