#include "storage/packed_slab.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "geometry/kernels.h"
#include "index/validate.h"
#include "storage/codec.h"
#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/storage_manager.h"

namespace wnrs {
namespace storage {
namespace {

constexpr uint32_t kSlabMagic = 0x4C534E57u;  // "WNSL" little-endian.
constexpr uint32_t kSlabVersion = 1;
/// Fixed header size; sections start 64-byte aligned beyond it so mapped
/// double planes satisfy the SIMD kernels' natural alignment.
constexpr uint64_t kSlabHeaderBytes = 128;
constexpr uint64_t kSectionAlign = 64;

constexpr uint64_t kMaxReasonableDims = 64;
constexpr uint64_t kMaxReasonableCount = uint64_t{1} << 40;

uint64_t AlignUp(uint64_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/// Everything the header stores, in file order. Offsets are absolute.
struct SlabHeader {
  uint64_t dims = 0;
  uint64_t size = 0;
  uint64_t height = 0;
  uint64_t max_node_entries = 0;
  uint64_t plane_stride = 0;
  uint64_t num_nodes = 0;
  uint64_t num_entries = 0;
  uint64_t nodes_off = 0;
  uint64_t planes_off = 0;
  uint64_t refs_off = 0;
  uint64_t file_size = 0;
  uint32_t nodes_crc = 0;
  uint32_t planes_crc = 0;
  uint32_t refs_crc = 0;
};

uint64_t NodesBytes(const SlabHeader& h) {
  return h.num_nodes * sizeof(PackedRTree::Node);
}
uint64_t PlanesBytes(const SlabHeader& h) {
  return 2 * h.dims * h.plane_stride * sizeof(double);
}
uint64_t RefsBytes(const SlabHeader& h) {
  return h.num_entries * sizeof(int64_t);
}

std::string EncodeHeader(const SlabHeader& h) {
  std::string out;
  out.reserve(kSlabHeaderBytes);
  AppendPod<uint32_t>(&out, kSlabMagic);
  AppendPod<uint32_t>(&out, kSlabVersion);
  AppendPod<uint32_t>(&out, kEndianMarker);
  AppendPod<uint32_t>(&out, 0);  // Reserved.
  AppendPod<uint64_t>(&out, h.dims);
  AppendPod<uint64_t>(&out, h.size);
  AppendPod<uint64_t>(&out, h.height);
  AppendPod<uint64_t>(&out, h.max_node_entries);
  AppendPod<uint64_t>(&out, h.plane_stride);
  AppendPod<uint64_t>(&out, h.num_nodes);
  AppendPod<uint64_t>(&out, h.num_entries);
  AppendPod<uint64_t>(&out, h.nodes_off);
  AppendPod<uint64_t>(&out, h.planes_off);
  AppendPod<uint64_t>(&out, h.refs_off);
  AppendPod<uint64_t>(&out, h.file_size);
  AppendPod<uint32_t>(&out, h.nodes_crc);
  AppendPod<uint32_t>(&out, h.planes_crc);
  AppendPod<uint32_t>(&out, h.refs_crc);
  AppendPod<uint32_t>(&out, Crc32(out.data(), out.size()));
  out.resize(kSlabHeaderBytes, '\0');
  return out;
}

Status DecodeHeader(const void* data, size_t len, SlabHeader* h,
                    const std::string& path) {
  if (len < kSlabHeaderBytes) {
    return Status::InvalidArgument("[truncated] slab shorter than its "
                                   "header: " +
                                   path);
  }
  ByteReader r(data, static_cast<size_t>(kSlabHeaderBytes));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t reserved = 0;
  uint32_t header_crc = 0;
  WNRS_CHECK(r.ReadPod(&magic) && r.ReadPod(&version) && r.ReadPod(&endian) &&
             r.ReadPod(&reserved) && r.ReadPod(&h->dims) &&
             r.ReadPod(&h->size) && r.ReadPod(&h->height) &&
             r.ReadPod(&h->max_node_entries) && r.ReadPod(&h->plane_stride) &&
             r.ReadPod(&h->num_nodes) && r.ReadPod(&h->num_entries) &&
             r.ReadPod(&h->nodes_off) && r.ReadPod(&h->planes_off) &&
             r.ReadPod(&h->refs_off) && r.ReadPod(&h->file_size) &&
             r.ReadPod(&h->nodes_crc) && r.ReadPod(&h->planes_crc) &&
             r.ReadPod(&h->refs_crc) && r.ReadPod(&header_crc));
  if (magic != kSlabMagic) {
    return Status::InvalidArgument("[magic] not a wnrs packed slab: " + path);
  }
  if (version != kSlabVersion) {
    return Status::InvalidArgument(
        StrFormat("[version] slab version %u, expected %u", version,
                  kSlabVersion));
  }
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "[endianness] slab written on a foreign-endian host: " + path);
  }
  if (Crc32(data, r.pos() - sizeof(uint32_t)) != header_crc) {
    return Status::InvalidArgument("[header-crc] slab header corrupt: " +
                                   path);
  }
  // Geometry sanity before any section arithmetic: all offsets in range,
  // sections in order and non-overlapping, counts plausible. Every
  // multiplication below is then safe from overflow.
  if (h->dims == 0 || h->dims > kMaxReasonableDims ||
      h->num_nodes == 0 || h->num_nodes > kMaxReasonableCount ||
      h->num_entries > kMaxReasonableCount ||
      h->plane_stride > kMaxReasonableCount ||
      h->max_node_entries > h->num_entries + 1 ||
      h->plane_stride < KernelPad(h->num_entries) ||
      h->size > h->num_entries || h->height == 0 ||
      h->height > h->num_nodes) {
    return Status::InvalidArgument("[slab-geometry] implausible slab "
                                   "geometry: " +
                                   path);
  }
  if (h->nodes_off != kSlabHeaderBytes ||
      h->planes_off != AlignUp(h->nodes_off + NodesBytes(*h)) ||
      h->refs_off != AlignUp(h->planes_off + PlanesBytes(*h)) ||
      h->file_size != h->refs_off + RefsBytes(*h) || h->file_size != len) {
    return Status::InvalidArgument(
        StrFormat("[slab-layout] section offsets inconsistent with file "
                  "size %zu: %s",
                  len, path.c_str()));
  }
  return Status::Ok();
}

Status VerifySectionCrcs(const uint8_t* base, const SlabHeader& h,
                         const std::string& path) {
  if (Crc32(base + h.nodes_off, static_cast<size_t>(NodesBytes(h))) !=
      h.nodes_crc) {
    return Status::InvalidArgument("[nodes-crc] node arena corrupt: " + path);
  }
  if (Crc32(base + h.planes_off, static_cast<size_t>(PlanesBytes(h))) !=
      h.planes_crc) {
    return Status::InvalidArgument("[planes-crc] coordinate planes "
                                   "corrupt: " +
                                   path);
  }
  if (Crc32(base + h.refs_off, static_cast<size_t>(RefsBytes(h))) !=
      h.refs_crc) {
    return Status::InvalidArgument("[refs-crc] refs slab corrupt: " + path);
  }
  return Status::Ok();
}

}  // namespace

/// Fills the scalar fields shared by both open paths. Must be a member:
/// PackedRTree befriends PackedSlabIO, not this file's free helpers.
void PackedSlabIO::SetShape(PackedRTree* out, const void* header) {
  const auto& h = *static_cast<const SlabHeader*>(header);
  out->dims_ = static_cast<size_t>(h.dims);
  out->size_ = static_cast<size_t>(h.size);
  out->height_ = static_cast<size_t>(h.height);
  out->max_node_entries_ = static_cast<size_t>(h.max_node_entries);
  out->plane_stride_ = static_cast<size_t>(h.plane_stride);
}

Status PackedSlabIO::Save(const PackedRTree& packed, const std::string& path) {
  SlabHeader h;
  h.dims = packed.dims();
  h.size = packed.size();
  h.height = packed.height();
  h.max_node_entries = packed.max_node_entries();
  h.plane_stride = packed.plane_stride();
  h.num_nodes = packed.num_nodes();
  h.num_entries = packed.num_entries();
  h.nodes_off = kSlabHeaderBytes;
  h.planes_off = AlignUp(h.nodes_off + NodesBytes(h));
  h.refs_off = AlignUp(h.planes_off + PlanesBytes(h));
  h.file_size = h.refs_off + RefsBytes(h);
  h.nodes_crc =
      Crc32(packed.nodes_data(), static_cast<size_t>(NodesBytes(h)));
  h.planes_crc =
      Crc32(packed.planes_data(), static_cast<size_t>(PlanesBytes(h)));
  h.refs_crc = Crc32(packed.refs_data(), static_cast<size_t>(RefsBytes(h)));

  std::string file = EncodeHeader(h);
  file.resize(static_cast<size_t>(h.file_size), '\0');
  std::memcpy(file.data() + h.nodes_off, packed.nodes_data(),
              static_cast<size_t>(NodesBytes(h)));
  std::memcpy(file.data() + h.planes_off, packed.planes_data(),
              static_cast<size_t>(PlanesBytes(h)));
  std::memcpy(file.data() + h.refs_off, packed.refs_data(),
              static_cast<size_t>(RefsBytes(h)));
  return WriteStringToFile(path, file);
}

Result<PackedRTree> PackedSlabIO::OpenMapped(const std::string& path,
                                             bool verify_checksums) {
  Result<std::shared_ptr<const MappedFile>> mapped = MapFileReadOnly(path);
  WNRS_RETURN_IF_ERROR(mapped.status());
  const std::shared_ptr<const MappedFile>& file = mapped.value();
  SlabHeader h;
  WNRS_RETURN_IF_ERROR(DecodeHeader(file->data(), file->size(), &h, path));
  const auto* base = static_cast<const uint8_t*>(file->data());
  if (verify_checksums) {
    WNRS_RETURN_IF_ERROR(VerifySectionCrcs(base, h, path));
  }
  // The plane section must be 8-byte aligned to read doubles in place;
  // mmap guarantees page alignment, but the bufferred fallback behind
  // MapFileReadOnly on mmap-less platforms does not. Re-open through the
  // copying path in that case rather than read misaligned.
  if (reinterpret_cast<uintptr_t>(base + h.planes_off) % alignof(double) !=
      0) {
    return OpenBuffered(path, verify_checksums);
  }
  PackedRTree out;
  SetShape(&out, &h);
  out.nodes_ =
      reinterpret_cast<const PackedRTree::Node*>(base + h.nodes_off);
  out.planes_ = reinterpret_cast<const double*>(base + h.planes_off);
  out.refs_ = reinterpret_cast<const int64_t*>(base + h.refs_off);
  out.num_nodes_ = static_cast<size_t>(h.num_nodes);
  out.num_entries_ = static_cast<size_t>(h.num_entries);
  out.backing_ = std::shared_ptr<const void>(file, file->data());
  WNRS_RETURN_IF_ERROR(ValidatePacked(out));
  return out;
}

Result<PackedRTree> PackedSlabIO::OpenBuffered(const std::string& path,
                                               bool verify_checksums) {
  std::string bytes;
  WNRS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  SlabHeader h;
  WNRS_RETURN_IF_ERROR(DecodeHeader(bytes.data(), bytes.size(), &h, path));
  const auto* base = reinterpret_cast<const uint8_t*>(bytes.data());
  if (verify_checksums) {
    WNRS_RETURN_IF_ERROR(VerifySectionCrcs(base, h, path));
  }
  PackedRTree out;
  SetShape(&out, &h);
  out.nodes_vec_.resize(static_cast<size_t>(h.num_nodes));
  out.planes_vec_.resize(static_cast<size_t>(PlanesBytes(h) /
                                             sizeof(double)));
  out.refs_vec_.resize(static_cast<size_t>(h.num_entries));
  std::memcpy(out.nodes_vec_.data(), base + h.nodes_off,
              static_cast<size_t>(NodesBytes(h)));
  std::memcpy(out.planes_vec_.data(), base + h.planes_off,
              static_cast<size_t>(PlanesBytes(h)));
  std::memcpy(out.refs_vec_.data(), base + h.refs_off,
              static_cast<size_t>(RefsBytes(h)));
  out.SetOwnedViews();
  WNRS_RETURN_IF_ERROR(ValidatePacked(out));
  return out;
}

}  // namespace storage
}  // namespace wnrs
