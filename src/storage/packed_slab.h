#ifndef WNRS_STORAGE_PACKED_SLAB_H_
#define WNRS_STORAGE_PACKED_SLAB_H_

#include <string>

#include "common/status.h"
#include "index/packed_rtree.h"

namespace wnrs {
namespace storage {

/// Binary on-disk form of the frozen PackedRTree slab. The file is the
/// in-memory image laid out verbatim — node arena, NaN-padded SoA
/// coordinate planes (64-byte aligned so the SIMD kernels can stream
/// them straight out of the mapping), refs slab — behind a versioned
/// header carrying magic, endianness marker, dimensionality, and a
/// CRC-32 per section. OpenPackedMapped therefore costs one mmap plus
/// validation: zero copies, zero allocation proportional to the data,
/// which is what makes a serving process cold-start in milliseconds
/// instead of re-bulk-loading and re-freezing the catalog.
///
/// Every corruption mode (truncation, flipped section bytes, wrong
/// magic/version/endianness/dimension, implausible geometry) is rejected
/// with a Status naming the violated invariant in [brackets], and every
/// successful open ends with ValidatePacked over the resulting tree —
/// the same deep validator the paranoid engine mode runs.
class PackedSlabIO {
 public:
  /// Writes `packed` to `path` (truncating).
  [[nodiscard]] static Status Save(const PackedRTree& packed,
                                   const std::string& path);

  /// Opens `path` zero-copy: the returned tree's slabs alias a read-only
  /// file mapping held alive by the tree. `verify_checksums` toggles the
  /// section CRC pass (one sequential sweep of the file; ValidatePacked
  /// still runs either way).
  [[nodiscard]] static Result<PackedRTree> OpenMapped(
      const std::string& path, bool verify_checksums = true);

  /// Opens `path` by copying the sections into owned memory — the
  /// fallback for platforms without mmap and for callers that want the
  /// file closed after load. Query-identical to OpenMapped.
  [[nodiscard]] static Result<PackedRTree> OpenBuffered(
      const std::string& path, bool verify_checksums = true);

 private:
  /// Writes the header's shape scalars into `out` (the header type is
  /// private to packed_slab.cc, hence the erased pointer).
  static void SetShape(PackedRTree* out, const void* header);
};

/// Free-function aliases matching the engine-facing vocabulary.
[[nodiscard]] inline Status SavePacked(const PackedRTree& packed,
                                       const std::string& path) {
  return PackedSlabIO::Save(packed, path);
}
[[nodiscard]] inline Result<PackedRTree> OpenPackedMapped(
    const std::string& path, bool verify_checksums = true) {
  return PackedSlabIO::OpenMapped(path, verify_checksums);
}
[[nodiscard]] inline Result<PackedRTree> OpenPackedBuffered(
    const std::string& path, bool verify_checksums = true) {
  return PackedSlabIO::OpenBuffered(path, verify_checksums);
}

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_PACKED_SLAB_H_
