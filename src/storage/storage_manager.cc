#include "storage/storage_manager.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "storage/codec.h"
#include "storage/crc32.h"

namespace wnrs {
namespace storage {
namespace {

constexpr uint32_t kPageFileMagic = 0x47504E57u;  // "WNPG" little-endian.
constexpr uint32_t kPageFileVersion = 1;
constexpr size_t kFileHeaderBytes = 32;
constexpr size_t kPageHeaderBytes = 8;  // len u32 + crc u32.

/// Hard ceiling on header-declared geometry so a corrupt header cannot
/// drive a multi-terabyte allocation before any page CRC is checked.
constexpr uint64_t kMaxReasonablePageSize = uint64_t{1} << 30;
constexpr uint64_t kMaxReasonablePageCount = uint64_t{1} << 32;

std::string EncodeHeader(size_t page_size, size_t page_count) {
  std::string h;
  h.reserve(kFileHeaderBytes);
  AppendPod<uint32_t>(&h, kPageFileMagic);
  AppendPod<uint32_t>(&h, kPageFileVersion);
  AppendPod<uint32_t>(&h, kEndianMarker);
  AppendPod<uint32_t>(&h, static_cast<uint32_t>(page_size));
  AppendPod<uint64_t>(&h, static_cast<uint64_t>(page_count));
  AppendPod<uint32_t>(&h, 0);  // Reserved.
  AppendPod<uint32_t>(&h, Crc32(h.data(), h.size()));
  return h;
}

std::FILE* AsFile(void* f) { return static_cast<std::FILE*>(f); }

}  // namespace

// ---------------------------------------------------------------------------
// MemoryStorageManager

Status MemoryStorageManager::ReadPage(PageId id, std::string* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("[page-index] page %u out of range (%zu pages)", id,
                  pages_.size()));
  }
  MetricAdd(CounterId::kStoragePageReads);
  *out = pages_[id];
  return Status::Ok();
}

Result<PageId> MemoryStorageManager::WritePage(PageId id,
                                               const std::string& data) {
  if (data.size() > page_size_) {
    return Status::InvalidArgument(
        StrFormat("[page-length] payload %zu exceeds page size %zu",
                  data.size(), page_size_));
  }
  MetricAdd(CounterId::kStoragePageWrites);
  if (id == kNewPage) {
    pages_.push_back(data);
    return static_cast<PageId>(pages_.size() - 1);
  }
  if (id >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("[page-index] page %u out of range (%zu pages)", id,
                  pages_.size()));
  }
  pages_[id] = data;
  return id;
}

// ---------------------------------------------------------------------------
// DiskStorageManager

Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Create(
    const std::string& path, size_t page_size) {
  if (page_size == 0 || page_size > kMaxReasonablePageSize) {
    return Status::InvalidArgument(
        StrFormat("[page-size] unreasonable page size %zu", page_size));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError("cannot create page file: " + path);
  }
  auto mgr = std::make_unique<DiskStorageManager>(Badge{});
  mgr->file_ = f;
  mgr->path_ = path;
  mgr->writable_ = true;
  mgr->page_size_ = page_size;
  mgr->page_count_ = 0;
  WNRS_RETURN_IF_ERROR(mgr->Flush());
  return mgr;
}

Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open page file: " + path);
  }
  auto mgr = std::make_unique<DiskStorageManager>(Badge{});
  mgr->file_ = f;
  mgr->path_ = path;
  mgr->writable_ = false;

  char raw[kFileHeaderBytes];
  if (std::fread(raw, 1, sizeof(raw), f) != sizeof(raw)) {
    return Status::InvalidArgument("[truncated] page file shorter than its "
                                   "header: " +
                                   path);
  }
  ByteReader r(raw, sizeof(raw));
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t page_size = 0;
  uint64_t page_count = 0;
  uint32_t reserved = 0;
  uint32_t crc = 0;
  WNRS_CHECK(r.ReadPod(&magic) && r.ReadPod(&version) && r.ReadPod(&endian) &&
             r.ReadPod(&page_size) && r.ReadPod(&page_count) &&
             r.ReadPod(&reserved) && r.ReadPod(&crc));
  if (magic != kPageFileMagic) {
    return Status::InvalidArgument("[magic] not a wnrs page file: " + path);
  }
  if (version != kPageFileVersion) {
    return Status::InvalidArgument(
        StrFormat("[version] page file version %u, expected %u", version,
                  kPageFileVersion));
  }
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "[endianness] page file written on a foreign-endian host: " + path);
  }
  if (Crc32(raw, kFileHeaderBytes - sizeof(uint32_t)) != crc) {
    return Status::InvalidArgument("[header-crc] page file header corrupt: " +
                                   path);
  }
  if (page_size == 0 || page_size > kMaxReasonablePageSize ||
      page_count > kMaxReasonablePageCount) {
    return Status::InvalidArgument(
        StrFormat("[page-size] unreasonable geometry (%u-byte pages, %llu "
                  "pages)",
                  page_size, static_cast<unsigned long long>(page_count)));
  }
  mgr->page_size_ = page_size;
  mgr->page_count_ = static_cast<size_t>(page_count);
  // The declared page count must fit inside the file, or page reads past
  // the end would report truncation one page at a time.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failure: " + path);
  }
  const long end = std::ftell(f);
  if (end < 0 ||
      static_cast<uint64_t>(end) <
          kFileHeaderBytes +
              page_count * (uint64_t{page_size} + kPageHeaderBytes)) {
    return Status::InvalidArgument(
        StrFormat("[truncated] page file holds fewer than the declared %llu "
                  "pages",
                  static_cast<unsigned long long>(page_count)));
  }
  return mgr;
}

DiskStorageManager::~DiskStorageManager() {
  if (file_ != nullptr) {
    if (writable_) {
      // Best-effort header refresh; callers that care checked Flush().
      Status s = Flush();
      (void)s;
    }
    std::fclose(AsFile(file_));
  }
}

uint64_t DiskStorageManager::PageOffset(PageId id) const {
  return kFileHeaderBytes +
         static_cast<uint64_t>(id) * (page_size_ + kPageHeaderBytes);
}

Status DiskStorageManager::ReadPage(PageId id, std::string* out) {
  if (id >= page_count_) {
    return Status::OutOfRange(
        StrFormat("[page-index] page %u out of range (%zu pages)", id,
                  page_count_));
  }
  std::FILE* f = AsFile(file_);
  if (std::fseek(f, static_cast<long>(PageOffset(id)), SEEK_SET) != 0) {
    return Status::IoError(StrFormat("seek failure for page %u", id));
  }
  std::string slot(page_size_ + kPageHeaderBytes, '\0');
  if (std::fread(slot.data(), 1, slot.size(), f) != slot.size()) {
    return Status::InvalidArgument(
        StrFormat("[truncated] page %u extends past end of file", id));
  }
  MetricAdd(CounterId::kStoragePageReads);
  ByteReader r(slot.data(), slot.size());
  uint32_t len = 0;
  uint32_t crc = 0;
  WNRS_CHECK(r.ReadPod(&len) && r.ReadPod(&crc));
  if (len > page_size_) {
    return Status::InvalidArgument(
        StrFormat("[page-length] page %u declares %u payload bytes, page "
                  "size is %zu",
                  id, len, page_size_));
  }
  if (Crc32(r.cursor(), len) != crc) {
    return Status::InvalidArgument(
        StrFormat("[page-crc] page %u payload corrupt", id));
  }
  out->assign(reinterpret_cast<const char*>(r.cursor()), len);
  return Status::Ok();
}

Result<PageId> DiskStorageManager::WritePage(PageId id,
                                             const std::string& data) {
  if (!writable_) {
    return Status::FailedPrecondition("page file opened read-only: " + path_);
  }
  if (data.size() > page_size_) {
    return Status::InvalidArgument(
        StrFormat("[page-length] payload %zu exceeds page size %zu",
                  data.size(), page_size_));
  }
  PageId target = id;
  if (target == kNewPage) {
    target = static_cast<PageId>(page_count_);
  } else if (target >= page_count_) {
    return Status::OutOfRange(
        StrFormat("[page-index] page %u out of range (%zu pages)", target,
                  page_count_));
  }
  std::string slot;
  slot.reserve(page_size_ + kPageHeaderBytes);
  AppendPod<uint32_t>(&slot, static_cast<uint32_t>(data.size()));
  AppendPod<uint32_t>(&slot, Crc32(data.data(), data.size()));
  slot += data;
  slot.resize(page_size_ + kPageHeaderBytes, '\0');
  std::FILE* f = AsFile(file_);
  if (std::fseek(f, static_cast<long>(PageOffset(target)), SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), f) != slot.size()) {
    return Status::IoError(StrFormat("write failure for page %u", target));
  }
  MetricAdd(CounterId::kStoragePageWrites);
  if (target == page_count_) ++page_count_;
  return target;
}

Status DiskStorageManager::Flush() {
  if (!writable_) return Status::Ok();
  std::FILE* f = AsFile(file_);
  const std::string header = EncodeHeader(page_size_, page_count_);
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    return Status::IoError("header flush failure: " + path_);
  }
  return Status::Ok();
}

}  // namespace storage
}  // namespace wnrs
