#ifndef WNRS_STORAGE_FILE_IO_H_
#define WNRS_STORAGE_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace wnrs {
namespace storage {

/// The repo's single funnel for raw file access (enforced by the
/// wnrs_lint `raw-file-io` rule): every subsystem above the storage
/// layer reads and writes files through these helpers, so error
/// handling, atomicity, and platform quirks live in one place.

/// Reads the whole file into `out` (replacing its contents).
[[nodiscard]] Status ReadFileToString(const std::string& path,
                                      std::string* out);

/// Writes `contents` to `path`, truncating any existing file.
[[nodiscard]] Status WriteStringToFile(const std::string& path,
                                       const std::string& contents);

/// True iff `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Size of a regular file in bytes, or IoError.
[[nodiscard]] Result<uint64_t> FileSize(const std::string& path);

/// Creates `path` as a directory (parents must exist). Ok if it already
/// exists as a directory.
[[nodiscard]] Status EnsureDirectory(const std::string& path);

/// A read-only mapping (or full in-memory copy, on platforms without
/// mmap) of one file, alive until the last shared_ptr drops. `data()`
/// stays valid for the object's lifetime; the mapping is never written.
class MappedFile {
 public:
  virtual ~MappedFile() = default;
  virtual const void* data() const = 0;
  virtual size_t size() const = 0;
  /// True when backed by a real file mapping (zero-copy); false for the
  /// buffered fallback that read the file into owned memory.
  virtual bool zero_copy() const = 0;
};

/// Maps `path` read-only. Uses POSIX mmap where available; elsewhere
/// falls back to a buffered read (zero_copy() == false) with identical
/// semantics.
[[nodiscard]] Result<std::shared_ptr<const MappedFile>> MapFileReadOnly(
    const std::string& path);

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_FILE_IO_H_
