#ifndef WNRS_STORAGE_TREE_STORE_H_
#define WNRS_STORAGE_TREE_STORE_H_

#include <string>

#include "common/status.h"
#include "index/rtree.h"
#include "storage/storage_manager.h"

namespace wnrs {

/// Binary, page-granular serialization of the dynamic R*-tree — the
/// paper's "one node per disk page" made literal. One tree node becomes
/// one storage page (children written before their parent, so a single
/// ascending-page pass rebuilds the tree without fixups); page 0 holds
/// the versioned metadata (magic, format version, endianness marker,
/// dimensionality, tree shape, and the R* tuning knobs), so a loaded
/// tree is structurally identical to the saved one — same node layout,
/// same fan-out, same traversal order, bit-identical query answers.
///
/// Works against any IStorageManager: a DiskStorageManager persists the
/// pages (CRC-checked individually), a BufferPool in front of it
/// exercises the cache, and a MemoryStorageManager round-trips in RAM
/// for tests. Structural corruption below the page layer (bad child
/// links, impossible counts) is rejected with bracketed invariant names,
/// never undefined behavior.
///
/// Friend of RStarTree (like RTreeSerializer, which owns the line-based
/// text format that remains as a migration path).
class RTreePageStore {
 public:
  /// Serializes `tree` into `store` (which should be empty). Every node
  /// payload must fit in one page: use RequiredPageSize to size the
  /// store.
  [[nodiscard]] static Status Save(const RStarTree& tree,
                                   storage::IStorageManager* store);

  /// Rebuilds a tree from pages written by Save.
  [[nodiscard]] static Result<RStarTree> Load(storage::IStorageManager* store);

  /// Smallest page payload size (bytes) that fits every node of `tree`
  /// plus the metadata page.
  static size_t RequiredPageSize(const RStarTree& tree);
};

namespace storage {

/// Saves `tree` as a CRC-per-page file at `path` (DiskStorageManager
/// format), sizing pages automatically.
[[nodiscard]] Status SavePagedTree(const RStarTree& tree,
                                   const std::string& path);

/// Reopens a SavePagedTree file through a BufferPool of
/// `buffer_pool_pages` frames, so the load's page fetches report
/// storage.cache_hits / storage.cache_misses.
[[nodiscard]] Result<RStarTree> LoadPagedTree(const std::string& path,
                                              size_t buffer_pool_pages = 256);

}  // namespace storage
}  // namespace wnrs

#endif  // WNRS_STORAGE_TREE_STORE_H_
