#ifndef WNRS_SKYLINE_DNC_H_
#define WNRS_SKYLINE_DNC_H_

#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Divide-and-conquer skyline (Börzsönyi et al. [8], the D&C variant):
/// splits on the median of dimension 0, recurses, and removes points of
/// the "worse" half dominated by the "better" half's skyline. O(n log n)
/// for 2-D, matching BNL/SFS output exactly (duplicates of skyline points
/// all reported; indices ascending). Third cross-validation baseline and
/// the fastest of the three on large anti-correlated inputs.
std::vector<size_t> SkylineIndicesDnc(const std::vector<Point>& points);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_DNC_H_
