#include "skyline/sfs.h"

#include <algorithm>
#include <numeric>

#include "geometry/dominance.h"

namespace wnrs {

std::vector<size_t> SkylineIndicesSfs(const std::vector<Point>& points) {
  const size_t n = points.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Monotone score: if a dominates b then score(a) < score(b) or they tie
  // with a lexicographically smaller; sorting by (sum, lex) guarantees a
  // dominator precedes everything it dominates.
  std::vector<double> score(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (size_t d = 0; d < points[i].dims(); ++d) sum += points[i][d];
    score[i] = sum;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (score[a] != score[b]) return score[a] < score[b];
    return points[a] < points[b];
  });

  std::vector<size_t> skyline;
  for (size_t idx : order) {
    bool dominated = false;
    for (size_t s : skyline) {
      if (Dominates(points[s], points[idx])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace wnrs
