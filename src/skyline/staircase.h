#ifndef WNRS_SKYLINE_STAIRCASE_H_
#define WNRS_SKYLINE_STAIRCASE_H_

#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Merge operator of the staircase candidate construction.
enum class StaircaseMerge { kMin, kMax };

/// The candidate-generation primitive shared by Algorithms 1, 2 and 3 of
/// the paper. Given k mutually non-dominated points, sorts them ascending
/// on `sort_dim` and emits k+1 candidates:
///
///   [ first', merge(u_1,u_2), ..., merge(u_{k-1},u_k), last' ]
///
/// where merge is the coordinate-wise min (Algorithm 1 / Eqn. 2) or max
/// (Algorithms 2-3 / Eqn. 5), and the end candidates are anchored copies
/// (Eqns. 3/6 and the safe-region extension rule):
///
///  * kMin  (why-not movement, Alg. 1): first' replaces the sort-dim
///    coordinate of u_1 with anchor's; last' replaces every other
///    coordinate of u_k with anchor's. These are the minimal corners of
///    the escape region's boundary (Fig. 6(b)).
///  * kMax  (query movement / anti-dominance rectangles, Algs. 2-3):
///    roles are mirrored — first' keeps u_1's sort-dim coordinate and
///    anchors the others; last' anchors the sort-dim coordinate of u_k.
///    These are the outer staircase corners (Figs. 8, 10).
///
/// The assignment of the two end rules follows the geometry (Figs. 6, 8,
/// 10) rather than the paper's pseudocode line order, which is ambiguous
/// for |M| = 1; for the paper's worked examples both readings coincide.
///
/// Duplicates in the output are removed. k = 0 yields an empty vector.
std::vector<Point> StaircaseCandidates(std::vector<Point> points,
                                       size_t sort_dim, StaircaseMerge merge,
                                       const Point& anchor);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_STAIRCASE_H_
