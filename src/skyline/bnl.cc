#include "skyline/bnl.h"

#include <algorithm>

#include "geometry/dominance.h"

namespace wnrs {

std::vector<size_t> SkylineIndicesBnl(const std::vector<Point>& points) {
  // Window of current skyline candidates. A new point evicts candidates it
  // dominates and is discarded if any candidate dominates it.
  std::vector<size_t> window;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    size_t kept = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const DominanceRelation rel =
          CompareDominance(points[window[w]], points[i]);
      if (rel == DominanceRelation::kFirstDominates) {
        dominated = true;
        // Everything still in the window stays (none of it can be
        // dominated by i, which is itself dominated).
        for (size_t r = w; r < window.size(); ++r) {
          window[kept++] = window[r];
        }
        break;
      }
      if (rel != DominanceRelation::kSecondDominates) {
        window[kept++] = window[w];
      }
      // kSecondDominates: candidate evicted (not copied).
    }
    window.resize(kept);
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

std::vector<Point> SkylineBnl(const std::vector<Point>& points) {
  std::vector<Point> out;
  for (size_t i : SkylineIndicesBnl(points)) {
    out.push_back(points[i]);
  }
  return out;
}

}  // namespace wnrs
