#include "skyline/ddr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "skyline/staircase.h"

namespace wnrs {

Point MaxExtents(const Point& c, const Rectangle& universe) {
  WNRS_CHECK(c.dims() == universe.dims());
  Point ext(c.dims());
  for (size_t i = 0; i < c.dims(); ++i) {
    ext[i] = std::max(std::fabs(c[i] - universe.lo()[i]),
                      std::fabs(c[i] - universe.hi()[i]));
  }
  return ext;
}

RectRegion AntiDominanceRegion(const Point& c,
                               std::vector<Point> dsl_transformed,
                               const Point& anchor_extent, size_t sort_dim) {
  const size_t dims = c.dims();
  WNRS_CHECK(anchor_extent.dims() == dims);

  auto rect_from_extent = [&c, dims](const Point& u) {
    Point lo(dims);
    Point hi(dims);
    for (size_t i = 0; i < dims; ++i) {
      lo[i] = c[i] - u[i];
      hi[i] = c[i] + u[i];
    }
    return Rectangle(std::move(lo), std::move(hi));
  };

  RectRegion region;
  if (dsl_transformed.empty()) {
    region.Add(rect_from_extent(anchor_extent));
    return region;
  }
  const std::vector<Point> extents = StaircaseCandidates(
      std::move(dsl_transformed), sort_dim, StaircaseMerge::kMax,
      anchor_extent);
  for (const Point& u : extents) {
    region.Add(rect_from_extent(u));
  }
  return region;
}

RectRegion ApproxAntiDominanceRegion(const Point& c,
                                     std::vector<Point> sampled_transformed,
                                     const Point& anchor_extent,
                                     size_t sort_dim) {
  const size_t dims = c.dims();
  WNRS_CHECK(anchor_extent.dims() == dims);

  auto rect_from_extent = [&c, dims](const Point& u) {
    Point lo(dims);
    Point hi(dims);
    for (size_t i = 0; i < dims; ++i) {
      lo[i] = c[i] - u[i];
      hi[i] = c[i] + u[i];
    }
    return Rectangle(std::move(lo), std::move(hi));
  };

  RectRegion region;
  if (sampled_transformed.empty()) {
    region.Add(rect_from_extent(anchor_extent));
    return region;
  }
  std::sort(sampled_transformed.begin(), sampled_transformed.end(),
            [sort_dim](const Point& a, const Point& b) {
              if (a[sort_dim] != b[sort_dim]) {
                return a[sort_dim] < b[sort_dim];
              }
              return a < b;
            });
  for (size_t l = 0; l < sampled_transformed.size(); ++l) {
    Point u = sampled_transformed[l];
    if (l == 0) {
      // First of the sorted sequence: extend the non-sort dimensions.
      for (size_t i = 0; i < dims; ++i) {
        if (i != sort_dim) u[i] = anchor_extent[i];
      }
    } else if (l + 1 == sampled_transformed.size()) {
      // Last: extend the sort dimension.
      u[sort_dim] = anchor_extent[sort_dim];
    }
    region.Add(rect_from_extent(u));
  }
  region.PruneContained();
  return region;
}

}  // namespace wnrs
