#ifndef WNRS_SKYLINE_DYNAMIC_H_
#define WNRS_SKYLINE_DYNAMIC_H_

#include <optional>
#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Dynamic skyline DSL(origin) by explicit transformation + BNL: maps
/// every point into `origin`'s distance space and runs the block-nested-
/// loop skyline. The reference implementation that BBS-based DSL is
/// validated against. Indices into `points` are returned in ascending
/// order; `exclude_index` (if set) is skipped.
std::vector<size_t> DynamicSkylineIndices(
    const std::vector<Point>& points, const Point& origin,
    std::optional<size_t> exclude_index = std::nullopt);

/// True iff `q` would belong to the dynamic skyline of `origin` computed
/// over `points`: no point (other than `exclude_index`) dynamically
/// dominates q w.r.t. origin. This is the membership test behind reverse
/// skylines (Definition 3).
bool InDynamicSkyline(const std::vector<Point>& points, const Point& origin,
                      const Point& q,
                      std::optional<size_t> exclude_index = std::nullopt);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_DYNAMIC_H_
