#include "skyline/bbs.h"

#include <queue>

#include "common/logging.h"
#include "geometry/dominance.h"
#include "geometry/kernels.h"
#include "geometry/transform.h"

namespace wnrs {
namespace {

/// Capacity hint for the confirmed-skyline buffers: skylines are tiny
/// compared to the dataset, so the hint is capped — enough to absorb the
/// common case without ever reallocating, without committing O(n) memory
/// up front for large trees.
size_t SkylineReserveHint(size_t tree_size) {
  return std::min<size_t>(tree_size, 256);
}

/// Shared BBS core: operates on entries already mapped into the target
/// space by `map_rect` / `map_point`.
template <typename MapRect, typename MapPoint>
std::vector<RStarTree::Id> BbsCore(
    const RStarTree& tree, const MapRect& map_rect, const MapPoint& map_point,
    std::optional<RStarTree::Id> exclude_id) {
  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point lower;                  // mapped lower corner (or mapped point)
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<Point> skyline_points;
  std::vector<RStarTree::Id> skyline_ids;

  auto dominated_by_skyline = [&](const Point& p) {
    for (const Point& s : skyline_points) {
      if (Dominates(s, p)) return true;
    }
    return false;
  };

  if (tree.size() == 0) return skyline_ids;
  skyline_points.reserve(SkylineReserveHint(tree.size()));
  skyline_ids.reserve(SkylineReserveHint(tree.size()));
  heap.push({0.0, tree.root(), Point(), -1});
  while (!heap.empty()) {
    // top() is const, but the element is discarded by the pop right
    // after — moving it out saves a Point copy per pop.
    Item item = std::move(const_cast<Item&>(heap.top()));
    heap.pop();
    if (item.node == nullptr) {
      // Data entry: re-check dominance (skyline may have grown since it
      // was enqueued).
      if (!dominated_by_skyline(item.lower)) {
        skyline_points.push_back(std::move(item.lower));
        skyline_ids.push_back(item.id);
      }
      continue;
    }
    tree.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        Point mapped = map_point(e.mbr.lo());
        if (dominated_by_skyline(mapped)) continue;
        const double dist = mapped.L1Norm();
        heap.push({dist, nullptr, std::move(mapped), e.id});
      } else {
        const Rectangle mapped = map_rect(e.mbr);
        if (dominated_by_skyline(mapped.lo())) continue;
        heap.push({mapped.lo().L1Norm(), e.child, mapped.lo(), -1});
      }
    }
  }
  return skyline_ids;
}

/// Packed BBS core. Candidate coordinates live in one append-only flat
/// pool (heap items hold offsets, not Points) and the confirmed skyline
/// is a dense coordinate slab scanned by the batch dominance kernel.
/// Each popped node is mapped in one batch-kernel pass over the SoA
/// coordinate planes (transformed corners in SoA scratch columns plus
/// their L1 norms), then the per-entry decision loop consumes the
/// precomputed columns. The push/pop sequence — and with it the
/// traversal order and node-read count — matches BbsCore exactly:
/// mindists are computed with the same arithmetic and entries are
/// visited in the same order, and precomputing a transform for an entry
/// the decision loop later skips is unobservable because the skyline
/// only grows on heap pops.
std::vector<PackedRTree::Id> PackedBbsCore(
    const PackedRTree& tree,
    const double* origin,  // nullptr => identity map (static skyline)
    std::optional<PackedRTree::Id> exclude_id) {
  const size_t d = tree.dims();
  struct Item {
    double mindist;
    uint32_t node;  // kNoNode => data entry
    size_t coord;   // offset of the mapped point in `pool` (data entries)
    PackedRTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<double> pool;          // mapped candidate points, d-strided
  std::vector<double> skyline;       // confirmed skyline coords, d-strided
  std::vector<PackedRTree::Id> skyline_ids;
  if (tree.size() == 0) return skyline_ids;
  skyline.reserve(SkylineReserveHint(tree.size()) * d);
  skyline_ids.reserve(SkylineReserveHint(tree.size()));
  pool.reserve(SkylineReserveHint(tree.size()) * d);

  const SoaPlanes planes = tree.planes();
  const size_t cap = KernelPad(tree.max_node_entries());
  std::vector<double> tcoords(d * cap);  // mapped corners, SoA columns
  std::vector<double> tdist(cap);        // their L1 norms
  std::vector<double> buf(d);
  heap.push({0.0, tree.root(), 0, -1});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.node == PackedRTree::kNoNode) {
      const double* t = pool.data() + item.coord;
      if (!DominatedByAny(skyline.data(), skyline_ids.size(), d, t)) {
        skyline.insert(skyline.end(), t, t + d);
        skyline_ids.push_back(item.id);
      }
      continue;
    }
    tree.CountNodeRead();
    const PackedRTree::Node& n = tree.node(item.node);
    if (n.is_leaf != 0) {
      ToDistanceSpaceBatchSoa(planes, n.first_entry, n.entry_count, origin,
                              tcoords.data(), cap, tdist.data());
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        const PackedRTree::Id id = tree.entry_id(n.first_entry + k);
        if (exclude_id.has_value() && id == *exclude_id) continue;
        for (size_t j = 0; j < d; ++j) buf[j] = tcoords[j * cap + k];
        if (DominatedByAny(skyline.data(), skyline_ids.size(), d,
                           buf.data())) {
          continue;
        }
        const size_t off = pool.size();
        pool.insert(pool.end(), buf.begin(), buf.end());
        heap.push({tdist[k], PackedRTree::kNoNode, off, id});
      }
    } else {
      MinDistCornerBatchSoa(planes, n.first_entry, n.entry_count, origin,
                            tcoords.data(), cap, tdist.data());
      for (uint32_t k = 0; k < n.entry_count; ++k) {
        for (size_t j = 0; j < d; ++j) buf[j] = tcoords[j * cap + k];
        if (DominatedByAny(skyline.data(), skyline_ids.size(), d,
                           buf.data())) {
          continue;
        }
        heap.push({tdist[k], tree.entry_child(n.first_entry + k), 0, -1});
      }
    }
  }
  return skyline_ids;
}

}  // namespace

std::vector<RStarTree::Id> BbsSkyline(const RStarTree& tree) {
  return BbsCore(
      tree, [](const Rectangle& r) { return r; },
      [](const Point& p) { return p; }, std::nullopt);
}

std::vector<RStarTree::Id> BbsDynamicSkyline(
    const RStarTree& tree, const Point& origin,
    std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(origin.dims() == tree.dims());
  return BbsCore(
      tree,
      [&origin](const Rectangle& r) { return RectToDistanceSpace(r, origin); },
      [&origin](const Point& p) { return ToDistanceSpace(p, origin); },
      exclude_id);
}

std::vector<PackedRTree::Id> BbsSkyline(const PackedRTree& tree) {
  return PackedBbsCore(tree, nullptr, std::nullopt);
}

std::vector<PackedRTree::Id> BbsDynamicSkyline(
    const PackedRTree& tree, const Point& origin,
    std::optional<PackedRTree::Id> exclude_id) {
  WNRS_CHECK(origin.dims() == tree.dims());
  return PackedBbsCore(tree, origin.coords().data(), exclude_id);
}

}  // namespace wnrs
