#include "skyline/bbs.h"

#include <queue>

#include "common/logging.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"

namespace wnrs {
namespace {

/// Shared BBS core: operates on entries already mapped into the target
/// space by `map_rect` / `map_point`.
template <typename MapRect, typename MapPoint>
std::vector<RStarTree::Id> BbsCore(
    const RStarTree& tree, const MapRect& map_rect, const MapPoint& map_point,
    std::optional<RStarTree::Id> exclude_id) {
  struct Item {
    double mindist;
    const RStarTree::Node* node;  // nullptr => data entry
    Point lower;                  // mapped lower corner (or mapped point)
    RStarTree::Id id;
    bool operator>(const Item& other) const {
      return mindist > other.mindist;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<Point> skyline_points;
  std::vector<RStarTree::Id> skyline_ids;

  auto dominated_by_skyline = [&](const Point& p) {
    for (const Point& s : skyline_points) {
      if (Dominates(s, p)) return true;
    }
    return false;
  };

  if (tree.size() == 0) return skyline_ids;
  heap.push({0.0, tree.root(), Point(), -1});
  while (!heap.empty()) {
    Item item = heap.top();
    heap.pop();
    if (item.node == nullptr) {
      // Data entry: re-check dominance (skyline may have grown since it
      // was enqueued).
      if (!dominated_by_skyline(item.lower)) {
        skyline_points.push_back(std::move(item.lower));
        skyline_ids.push_back(item.id);
      }
      continue;
    }
    tree.CountNodeRead();
    for (const RStarTree::Entry& e : item.node->entries) {
      if (item.node->is_leaf) {
        if (exclude_id.has_value() && e.id == *exclude_id) continue;
        Point mapped = map_point(e.mbr.lo());
        if (dominated_by_skyline(mapped)) continue;
        const double dist = mapped.L1Norm();
        heap.push({dist, nullptr, std::move(mapped), e.id});
      } else {
        const Rectangle mapped = map_rect(e.mbr);
        if (dominated_by_skyline(mapped.lo())) continue;
        heap.push({mapped.lo().L1Norm(), e.child, mapped.lo(), -1});
      }
    }
  }
  return skyline_ids;
}

}  // namespace

std::vector<RStarTree::Id> BbsSkyline(const RStarTree& tree) {
  return BbsCore(
      tree, [](const Rectangle& r) { return r; },
      [](const Point& p) { return p; }, std::nullopt);
}

std::vector<RStarTree::Id> BbsDynamicSkyline(
    const RStarTree& tree, const Point& origin,
    std::optional<RStarTree::Id> exclude_id) {
  WNRS_CHECK(origin.dims() == tree.dims());
  return BbsCore(
      tree,
      [&origin](const Rectangle& r) { return RectToDistanceSpace(r, origin); },
      [&origin](const Point& p) { return ToDistanceSpace(p, origin); },
      exclude_id);
}

}  // namespace wnrs
