#ifndef WNRS_SKYLINE_APPROX_H_
#define WNRS_SKYLINE_APPROX_H_

#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Approximates a dynamic skyline for the precomputed safe-region store
/// (paper, Section VI-B.1): the transformed skyline points are sorted on
/// `sort_dim` and every (|DSL|/k)-th point is kept — always including the
/// first and the last of the sorted sequence, which maximizes the chance
/// that the approximated anti-dominance region still overlaps the safe
/// region. k >= 2; if |DSL| <= k the skyline is returned unchanged.
///
/// The input points must be mutually non-dominated (a skyline); they may
/// be in any space (typically the transformed distance space of the
/// customer the DSL belongs to).
std::vector<Point> ApproximateSkyline(std::vector<Point> skyline, size_t k,
                                      size_t sort_dim = 0);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_APPROX_H_
