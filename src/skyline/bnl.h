#ifndef WNRS_SKYLINE_BNL_H_
#define WNRS_SKYLINE_BNL_H_

#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Block-nested-loop skyline (Börzsönyi et al. [8]): indices of all points
/// in `points` not dominated by any other (Definition 1,
/// smaller-is-better). Duplicate points do not dominate each other, so all
/// copies of a skyline point are reported. O(n * |skyline|); the baseline
/// against which BBS is validated.
std::vector<size_t> SkylineIndicesBnl(const std::vector<Point>& points);

/// Convenience wrapper returning the points themselves.
std::vector<Point> SkylineBnl(const std::vector<Point>& points);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_BNL_H_
