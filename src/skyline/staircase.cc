#include "skyline/staircase.h"

#include <algorithm>

#include "common/logging.h"

namespace wnrs {

std::vector<Point> StaircaseCandidates(std::vector<Point> points,
                                       size_t sort_dim, StaircaseMerge merge,
                                       const Point& anchor) {
  std::vector<Point> out;
  if (points.empty()) return out;
  const size_t dims = anchor.dims();
  WNRS_CHECK(sort_dim < dims);
  for (const Point& p : points) {
    WNRS_CHECK(p.dims() == dims);
  }
  std::sort(points.begin(), points.end(),
            [sort_dim](const Point& a, const Point& b) {
              if (a[sort_dim] != b[sort_dim]) {
                return a[sort_dim] < b[sort_dim];
              }
              return a < b;
            });

  const size_t k = points.size();
  out.reserve(k + 1);

  // End candidate anchored per the merge flavor (see header).
  Point first = points.front();
  Point last = points.back();
  if (merge == StaircaseMerge::kMin) {
    first[sort_dim] = anchor[sort_dim];
    for (size_t i = 0; i < dims; ++i) {
      if (i != sort_dim) last[i] = anchor[i];
    }
  } else {
    for (size_t i = 0; i < dims; ++i) {
      if (i != sort_dim) first[i] = anchor[i];
    }
    last[sort_dim] = anchor[sort_dim];
  }

  out.push_back(std::move(first));
  for (size_t l = 0; l + 1 < k; ++l) {
    Point merged(dims);
    for (size_t i = 0; i < dims; ++i) {
      merged[i] = merge == StaircaseMerge::kMin
                      ? std::min(points[l][i], points[l + 1][i])
                      : std::max(points[l][i], points[l + 1][i]);
    }
    out.push_back(std::move(merged));
  }
  out.push_back(std::move(last));

  // Deduplicate exact repeats (possible with |M| = 1 or tied coords).
  std::vector<Point> unique;
  unique.reserve(out.size());
  for (Point& p : out) {
    bool seen = false;
    for (const Point& u : unique) {
      if (u == p) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(std::move(p));
  }
  return unique;
}

}  // namespace wnrs
