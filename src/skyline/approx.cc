#include "skyline/approx.h"

#include <algorithm>

#include "common/logging.h"

namespace wnrs {

std::vector<Point> ApproximateSkyline(std::vector<Point> skyline, size_t k,
                                      size_t sort_dim) {
  WNRS_CHECK(k >= 2);
  if (skyline.size() <= k) return skyline;
  std::sort(skyline.begin(), skyline.end(),
            [sort_dim](const Point& a, const Point& b) {
              if (a[sort_dim] != b[sort_dim]) {
                return a[sort_dim] < b[sort_dim];
              }
              return a < b;
            });
  const size_t n = skyline.size();
  const size_t stride = std::max<size_t>(1, n / k);
  std::vector<Point> out;
  // The loop emits ceil(n / stride) points and the tail append at most
  // one more; when n % k != 0 that exceeds the naive k + 2 estimate.
  out.reserve((n + stride - 1) / stride + 1);
  for (size_t i = 0; i < n; i += stride) {
    out.push_back(skyline[i]);
  }
  // Always keep the last point of the sorted sequence (Section VI-B.1).
  if (!(out.back() == skyline.back())) {
    out.push_back(skyline.back());
  }
  return out;
}

}  // namespace wnrs
