#ifndef WNRS_SKYLINE_BBS_H_
#define WNRS_SKYLINE_BBS_H_

#include <optional>
#include <vector>

#include "index/rtree.h"

namespace wnrs {

/// Branch-and-bound skyline (Papadias et al. [7]) over an R*-tree of
/// points: best-first traversal by L1 MINDIST with dominance pruning.
/// Returns the ids of the skyline (Definition 1). Duplicates of a skyline
/// point are all reported, matching BNL.
std::vector<RStarTree::Id> BbsSkyline(const RStarTree& tree);

/// Dynamic skyline DSL(origin) via BBS with on-the-fly transformation into
/// `origin`'s distance space (paper, Definition 2): node MBRs are mapped
/// with RectToDistanceSpace and point entries with ToDistanceSpace, so no
/// transformed copy of the data is materialized. Entries whose id equals
/// `exclude_id` are skipped (used when the same relation serves as both
/// products and customers). Pass std::nullopt to keep all.
std::vector<RStarTree::Id> BbsDynamicSkyline(
    const RStarTree& tree, const Point& origin,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_BBS_H_
