#ifndef WNRS_SKYLINE_BBS_H_
#define WNRS_SKYLINE_BBS_H_

#include <optional>
#include <vector>

#include "index/packed_rtree.h"
#include "index/rtree.h"

namespace wnrs {

/// Branch-and-bound skyline (Papadias et al. [7]) over an R*-tree of
/// points: best-first traversal by L1 MINDIST with dominance pruning.
/// Returns the ids of the skyline (Definition 1). Duplicates of a skyline
/// point are all reported, matching BNL.
std::vector<RStarTree::Id> BbsSkyline(const RStarTree& tree);

/// Dynamic skyline DSL(origin) via BBS with on-the-fly transformation into
/// `origin`'s distance space (paper, Definition 2): node MBRs are mapped
/// with RectToDistanceSpace and point entries with ToDistanceSpace, so no
/// transformed copy of the data is materialized. Entries whose id equals
/// `exclude_id` are skipped (used when the same relation serves as both
/// products and customers). Pass std::nullopt to keep all.
std::vector<RStarTree::Id> BbsDynamicSkyline(
    const RStarTree& tree, const Point& origin,
    std::optional<RStarTree::Id> exclude_id = std::nullopt);

/// BBS over the packed (frozen) read path: identical traversal order,
/// pruning decisions, node-read counts, and output as the dynamic-tree
/// overload, but running on the flat arena with the geometry/kernels.h
/// batch dominance kernels and a flat coordinate pool instead of
/// per-point heap allocations.
std::vector<PackedRTree::Id> BbsSkyline(const PackedRTree& tree);

/// Packed twin of BbsDynamicSkyline; bit-identical results.
std::vector<PackedRTree::Id> BbsDynamicSkyline(
    const PackedRTree& tree, const Point& origin,
    std::optional<PackedRTree::Id> exclude_id = std::nullopt);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_BBS_H_
