#ifndef WNRS_SKYLINE_SFS_H_
#define WNRS_SKYLINE_SFS_H_

#include <vector>

#include "geometry/point.h"

namespace wnrs {

/// Sort-Filter-Skyline (Chomicki et al.): presorts by a monotone scoring
/// function (coordinate sum), after which a point can only be dominated by
/// points already confirmed as skyline members — the window never needs
/// eviction, unlike BNL. Same output as SkylineIndicesBnl (indices
/// ascending); a second baseline used to cross-validate BNL and BBS and
/// to ablate presorting.
std::vector<size_t> SkylineIndicesSfs(const std::vector<Point>& points);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_SFS_H_
