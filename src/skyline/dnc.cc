#include "skyline/dnc.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "skyline/sfs.h"

namespace wnrs {

std::vector<size_t> SkylineIndicesDnc(const std::vector<Point>& points) {
  if (points.empty()) return {};
  if (points.front().dims() != 2) {
    // The plane-sweep merge below is 2-D; higher dimensionalities defer
    // to the presorted filter, which is the same asymptotic class for
    // small skylines.
    return SkylineIndicesSfs(points);
  }
  const size_t n = points.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
    return points[a][1] < points[b][1];
  });

  // Sweep in x order. A point is dominated iff some strictly-poorer-x
  // predecessor has y <= its y, or an equal-x point has strictly smaller
  // y. Duplicates of a skyline point all survive.
  std::vector<size_t> skyline;
  double min_y_before = std::numeric_limits<double>::infinity();
  size_t g = 0;
  while (g < n) {
    // Group of equal x.
    size_t end = g;
    const double x = points[order[g]][0];
    while (end < n && points[order[end]][0] == x) ++end;
    const double group_min_y = points[order[g]][1];  // y-ascending sort.
    if (group_min_y < min_y_before) {
      for (size_t i = g; i < end; ++i) {
        if (points[order[i]][1] == group_min_y) {
          skyline.push_back(order[i]);
        } else {
          break;  // y ascending within the group.
        }
      }
      min_y_before = group_min_y;
    }
    g = end;
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace wnrs
