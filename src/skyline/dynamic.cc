#include "skyline/dynamic.h"

#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "skyline/bnl.h"

namespace wnrs {

std::vector<size_t> DynamicSkylineIndices(
    const std::vector<Point>& points, const Point& origin,
    std::optional<size_t> exclude_index) {
  std::vector<Point> transformed;
  std::vector<size_t> original_index;
  transformed.reserve(points.size());
  original_index.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (exclude_index.has_value() && i == *exclude_index) continue;
    transformed.push_back(ToDistanceSpace(points[i], origin));
    original_index.push_back(i);
  }
  std::vector<size_t> skyline = SkylineIndicesBnl(transformed);
  for (size_t& idx : skyline) {
    idx = original_index[idx];
  }
  return skyline;
}

bool InDynamicSkyline(const std::vector<Point>& points, const Point& origin,
                      const Point& q, std::optional<size_t> exclude_index) {
  for (size_t i = 0; i < points.size(); ++i) {
    if (exclude_index.has_value() && i == *exclude_index) continue;
    if (DynamicallyDominates(points[i], q, origin)) return false;
  }
  return true;
}

}  // namespace wnrs
