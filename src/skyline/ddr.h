#ifndef WNRS_SKYLINE_DDR_H_
#define WNRS_SKYLINE_DDR_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "geometry/region.h"

namespace wnrs {

/// Per-dimension extents that cover the whole `universe` from `c`:
/// max(|c_i - lo_i|, |c_i - hi_i|). Used as the staircase anchor so the
/// unbounded tails of an anti-dominance region are represented out to the
/// edge of the data space.
Point MaxExtents(const Point& c, const Rectangle& universe);

/// Rectangle representation of the dynamic anti-dominance region
/// DDR̄(c) (paper Definition 4 and Fig. 10): |DSL(c)|+1 rectangles in the
/// ORIGINAL data space, each symmetric around `c`, whose transformed-space
/// images [0, u] tile the staircase under the dynamic skyline.
///
/// `dsl_transformed` is DSL(c) mapped into c's distance space (mutually
/// non-dominated, all coordinates >= 0); `anchor_extent` bounds the
/// region's unbounded directions (use MaxExtents of the data universe).
/// An empty DSL yields the single rectangle covering the whole reachable
/// box — every query point then keeps c as a reverse-skyline point.
RectRegion AntiDominanceRegion(const Point& c,
                               std::vector<Point> dsl_transformed,
                               const Point& anchor_extent,
                               size_t sort_dim = 0);

/// Approximated DDR̄ from a sampled dynamic skyline (paper, Section
/// VI-B.1): one rectangle [0, u] per sampled point — successive pairs are
/// NOT merged — with the first and last of the sorted sequence extended to
/// the anchor as in the exact construction. The result is a subset of the
/// exact region (Fig. 16's shaded staircase steps are missed), so safe
/// regions built from it never lose customers; they may cost more.
RectRegion ApproxAntiDominanceRegion(const Point& c,
                                     std::vector<Point> sampled_transformed,
                                     const Point& anchor_extent,
                                     size_t sort_dim = 0);

}  // namespace wnrs

#endif  // WNRS_SKYLINE_DDR_H_
