#ifndef WNRS_SHARD_SHARDED_BACKEND_H_
#define WNRS_SHARD_SHARDED_BACKEND_H_

#include <memory>

#include "serve/backend.h"
#include "shard/sharded_engine.h"

namespace wnrs {
namespace shard {

/// serve::QueryBackend over a ShardedEngine: the adapter that puts the
/// sharded execution layout behind the same scheduler, server, and wire
/// protocol as the single-core engine. Each Snapshot() pins one
/// ShardedSnapshot (and with it every per-shard engine core), so dispatch
/// batches are isolated from concurrent tile re-freezes.
///
/// The engine must outlive the backend.
class ShardedBackend : public serve::QueryBackend {
 public:
  explicit ShardedBackend(const ShardedEngine* engine);

  std::shared_ptr<const serve::QuerySnapshot> Snapshot() const override;

 private:
  const ShardedEngine* engine_;
};

}  // namespace shard
}  // namespace wnrs

#endif  // WNRS_SHARD_SHARDED_BACKEND_H_
