#ifndef WNRS_SHARD_SHARDED_ENGINE_H_
#define WNRS_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace wnrs {
namespace shard {

/// Sharded-engine configuration. `engine` carries the per-shard and
/// cost-model knobs (sort_dim, alpha/beta, fast_frontier, epsilon,
/// packed read path, ...); its num_threads sizes the *coordinator* pool —
/// every shard engine runs with num_threads = 1, so shard-internal loops
/// degrade serial under the coordinator's fan-out instead of
/// oversubscribing.
struct ShardedEngineOptions {
  /// Requested shard count; clamped to the product count (StrTiles never
  /// produces an empty tile). 1 shard is the degenerate single-engine
  /// layout, useful for differential testing.
  size_t num_shards = 4;
  WhyNotEngineOptions engine;
};

namespace internal {
/// Immutable coordinator state (global catalog, shard snapshots, routing
/// maps, caches). Defined in sharded_engine.cc.
struct ShardState;
}  // namespace internal

/// An immutable, concurrency-safe view of one sharded-engine state: the
/// sharded counterpart of EngineSnapshot. Cheap to copy (one shared_ptr);
/// pins every per-shard engine core, so it stays valid across mutations
/// and may outlive the ShardedEngine.
///
/// Every query merges per-shard answers into the exact result the
/// single-core engine would produce — same values, same ordering, same
/// error strings (see DESIGN.md §15 for the per-kind merge arguments).
class ShardedSnapshot {
 public:
  ShardedSnapshot(const ShardedSnapshot&) = default;
  ShardedSnapshot& operator=(const ShardedSnapshot&) = default;
  ShardedSnapshot(ShardedSnapshot&&) noexcept = default;
  ShardedSnapshot& operator=(ShardedSnapshot&&) noexcept = default;

  const Dataset& products() const;
  const Dataset& customers() const;
  bool shared_relation() const;
  const CostModel& cost_model() const;
  const Rectangle& universe() const;
  size_t num_shards() const;
  bool HasApproxDsls() const;
  size_t approx_k() const;
  bool IsLiveProduct(size_t id) const;

  /// RSL(q) as customer indices (ascending); memoized per query point.
  std::vector<size_t> ReverseSkyline(const Point& q) const;
  bool IsReverseSkylineMember(size_t c, const Point& q) const;
  WhyNotExplanation Explain(size_t c, const Point& q) const;
  MwpResult ModifyWhyNot(size_t c, const Point& q,
                         Semantics semantics = Semantics::kBoundary) const;
  MqpResult ModifyQuery(size_t c, const Point& q,
                        Semantics semantics = Semantics::kBoundary) const;
  std::shared_ptr<const SafeRegionResult> SafeRegion(const Point& q) const;
  std::shared_ptr<const SafeRegionResult> ApproxSafeRegion(
      const Point& q) const;
  MwqResult ModifyBoth(size_t c, const Point& q,
                       Semantics semantics = Semantics::kBoundary) const;
  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics = Semantics::kBoundary) const;
  std::vector<MwqResult> ModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;

  /// Validating variants, mirroring EngineSnapshot's Try* layer: same
  /// checks, same Status codes, same messages.
  Result<std::vector<size_t>> TryReverseSkyline(const Point& q) const;
  Result<WhyNotExplanation> TryExplain(size_t c, const Point& q) const;
  Result<MwpResult> TryModifyWhyNot(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MqpResult> TryModifyQuery(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const;
  Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const;
  Result<MwqResult> TryModifyBoth(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<MwqResult> TryModifyBothApprox(
      size_t c, const Point& q,
      Semantics semantics = Semantics::kBoundary) const;
  Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const;

 private:
  friend class ShardedEngine;
  explicit ShardedSnapshot(std::shared_ptr<const internal::ShardState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal::ShardState> state_;
};

/// The why-not engine over an STR-tiled product catalog: the product set
/// is partitioned into spatially coherent tiles (index/bulk_load.h
/// StrTiles), each tile frozen into its own single-threaded WhyNotEngine,
/// and every request kind answered by per-shard fan-out on a shared
/// coordinator pool followed by an exact merge:
///
///  - Reverse skyline (shared relation): every member is a global-skyline
///    candidate and the global skyline of a union is the dominance filter
///    of the per-part global skylines, so the shards run only BBRS's
///    candidate-generation phase; the coordinator collapses the union and
///    verifies each survivor once with bbox-pruned window-emptiness
///    probes across the tiles.
///    Bichromatic: the customer relation is replicated per shard and the
///    global RSL is the intersection of the per-shard RSLs.
///  - Explain / MWP / MQP: the culprit set (or branch-and-bound frontier)
///    is the dominance-filtered union of per-shard window queries, fed to
///    the index-free FromCulprits/FromFrontier tails of the single-core
///    algorithms.
///  - Safe region / MWQ: the per-customer dynamic skylines are
///    cross-shard merges plugged into ComputeSafeRegionWithDsls, and
///    Algorithm 4 runs over MwqPrimitives whose probes fan out per shard.
///
/// Each merge reproduces the single-core answer bit-for-bit (values and
/// ordering); tests/sharded_engine_test.cc asserts this differentially
/// for all seven request kinds at several shard counts.
///
/// Concurrency contract matches WhyNotEngine: the read path is safe for
/// concurrent callers, mutations are serialized and publish a new
/// coordinator state copy-on-write. A mutation re-freezes only the shard
/// whose tile absorbed it — the other shards' packed slabs and snapshots
/// are reused unchanged.
class ShardedEngine {
 public:
  using Session = ShardedSnapshot;

  /// Shared-relation constructor: one dataset plays both roles, customer
  /// index == global product id.
  explicit ShardedEngine(Dataset data, ShardedEngineOptions options = {});

  /// Bichromatic constructor: products are tiled, customers replicated.
  ShardedEngine(Dataset products, Dataset customers,
                ShardedEngineOptions options = {});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// The current immutable state as a shareable session object. O(1).
  ShardedSnapshot Snapshot() const { return ShardedSnapshot(CurrentState()); }

  const Dataset& products() const;
  const Dataset& customers() const;
  bool shared_relation() const;
  const CostModel& cost_model() const;
  const Rectangle& universe() const;
  size_t num_shards() const;

  /// Serial query facade (delegates to a fresh snapshot).
  std::vector<size_t> ReverseSkyline(const Point& q) const {
    return Snapshot().ReverseSkyline(q);
  }
  bool IsReverseSkylineMember(size_t c, const Point& q) const {
    return Snapshot().IsReverseSkylineMember(c, q);
  }
  WhyNotExplanation Explain(size_t c, const Point& q) const {
    return Snapshot().Explain(c, q);
  }
  MwpResult ModifyWhyNot(size_t c, const Point& q,
                         Semantics semantics = Semantics::kBoundary) const {
    return Snapshot().ModifyWhyNot(c, q, semantics);
  }
  MqpResult ModifyQuery(size_t c, const Point& q,
                        Semantics semantics = Semantics::kBoundary) const {
    return Snapshot().ModifyQuery(c, q, semantics);
  }
  std::shared_ptr<const SafeRegionResult> SafeRegion(const Point& q) const {
    return Snapshot().SafeRegion(q);
  }
  std::shared_ptr<const SafeRegionResult> ApproxSafeRegion(
      const Point& q) const {
    return Snapshot().ApproxSafeRegion(q);
  }
  MwqResult ModifyBoth(size_t c, const Point& q,
                       Semantics semantics = Semantics::kBoundary) const {
    return Snapshot().ModifyBoth(c, q, semantics);
  }
  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics = Semantics::kBoundary) const {
    return Snapshot().ModifyBothApprox(c, q, semantics);
  }
  std::vector<MwqResult> ModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx = false,
      Semantics semantics = Semantics::kBoundary) const {
    return Snapshot().ModifyBothBatch(whos, q, use_approx, semantics);
  }

  /// Appends a product under the global id space (ids shared with the
  /// unsharded engine: id = arrival position). The tuple is routed to the
  /// shard whose bounds contain it (lowest index on ties), else to the
  /// shard needing the least bounds enlargement; only that shard's tile
  /// re-freezes. Drops the approximated-DSL store, like the single engine.
  [[nodiscard]] size_t AddProduct(const Point& p);
  Result<size_t> TryAddProduct(const Point& p);

  /// Removes global product `id` (tombstone + home-shard tile re-freeze).
  [[nodiscard]] bool RemoveProduct(size_t id);
  Status TryRemoveProduct(size_t id);
  bool IsLiveProduct(size_t id) const;

  /// Section VI-B.1 offline pass over the sharded DSL merge. The stored
  /// per-customer samples are query-equivalent to the single engine's
  /// (identical point sets; for customers whose DSL has <= k points the
  /// in-store order may differ, which no consumer observes — the
  /// approximated anti-dominance construction re-sorts).
  void PrecomputeApproxDsls(size_t k);
  bool HasApproxDsls() const;
  size_t approx_k() const;

 private:
  std::shared_ptr<const internal::ShardState> CurrentState() const;
  void PublishState(std::shared_ptr<const internal::ShardState> state);

  /// Routes a new product to a shard; see AddProduct.
  size_t RouteToShard(const internal::ShardState& state, const Point& p) const;

  ShardedEngineOptions options_;

  /// Coordinator pool driving per-shard fan-out and candidate probes;
  /// shared into every state so snapshots can outlive the engine.
  std::shared_ptr<ThreadPool> pool_;

  /// Serializes mutations (AddProduct/RemoveProduct/PrecomputeApproxDsls).
  /// Ordered strictly before state_mu_ (PublishState runs with it held);
  /// never acquire mutation_mu_ with state_mu_ held.
  Mutex mutation_mu_;

  /// The live shard engines, mutated in place under mutation_mu_; readers
  /// only ever touch the EngineSnapshots pinned inside a ShardState.
  std::vector<std::unique_ptr<WhyNotEngine>> shard_engines_
      WNRS_GUARDED_BY(mutation_mu_);

  /// Exclusive for the COW republish, shared for the snapshot read path.
  mutable SharedMutex state_mu_;
  std::shared_ptr<const internal::ShardState> state_
      WNRS_GUARDED_BY(state_mu_);
};

}  // namespace shard
}  // namespace wnrs

#endif  // WNRS_SHARD_SHARDED_ENGINE_H_
