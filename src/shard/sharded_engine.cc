#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iterator>
#include <limits>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/strict.h"
#include "geometry/dominance.h"
#include "geometry/transform.h"
#include "index/bulk_load.h"
#include "reverse_skyline/window_query.h"
#include "skyline/approx.h"

namespace wnrs {
namespace shard {

namespace {

/// Coordinator-cache bounds, matching the single engine's (engine.cc):
/// the sharded engine answers the same workloads, so the same working-set
/// assumptions apply.
constexpr size_t kRslCacheCapacity = 64;
constexpr size_t kSrCacheCapacity = 8;

/// The global cost model mirrors MakeCostModel in engine.cc: weight
/// vectors from the options, equal weights when empty, normalized over
/// the *global* universe — shard-local cost models are never used.
CostModel MakeGlobalCostModel(const Rectangle& universe,
                              const WhyNotEngineOptions& options) {
  std::vector<double> alpha = options.alpha;
  std::vector<double> beta = options.beta;
  if (alpha.empty()) alpha = EqualWeights(universe.dims());
  if (beta.empty()) beta = EqualWeights(universe.dims());
  return CostModel(universe, std::move(alpha), std::move(beta));
}

/// Per-shard engines never fan out internally: the coordinator pool owns
/// all parallelism, and a shard's nested loops degrade to the bit-exact
/// serial path instead of oversubscribing the host.
WhyNotEngineOptions ShardEngineOptions(const WhyNotEngineOptions& base) {
  WhyNotEngineOptions options = base;
  options.num_threads = 1;
  return options;
}

/// Global (quadrant-aware) dominance over distance-space coordinates and
/// quadrant signs, mirroring bbrs.cc's candidate pruning exactly: `g`
/// disqualifies `x` as a reverse-skyline candidate iff g sits on x's side
/// of q in every dimension where g is off-center, is no farther from q
/// anywhere, and differs from q somewhere. The coordinator uses it to
/// collapse the union of per-shard candidate sets to the global-skyline
/// candidate set a single index would have produced.
bool GloballyDominates(const Point& g_t, const std::vector<int>& g_signs,
                       const Point& x_t, const std::vector<int>& x_signs) {
  bool strict = false;
  for (size_t i = 0; i < g_t.dims(); ++i) {
    if (g_signs[i] != 0 && g_signs[i] != x_signs[i]) return false;
    if (g_t[i] > x_t[i]) return false;
    if (g_t[i] > 0.0) strict = true;
  }
  return strict;
}

}  // namespace

namespace internal {

/// The coordinator's immutable state: the global catalog and routing maps
/// plus one pinned EngineSnapshot per shard. Like EngineCore, everything
/// set up at construction is read-only afterwards and the caches at the
/// bottom are internally synchronized; mutations copy the state (fresh
/// caches) and publish the copy.
struct ShardState {
  ShardedEngineOptions options;
  bool shared_relation = true;
  /// Global product catalog (append-only, tombstoned) — the id space
  /// shared with the unsharded engine.
  std::shared_ptr<const Dataset> products;
  /// Bichromatic mode only; null when the relation is shared.
  std::shared_ptr<const Dataset> customers;
  /// Global tombstones (shared-relation customers disappear with their
  /// product).
  std::vector<bool> removed;
  Rectangle universe;
  CostModel cost_model;
  /// One pinned engine state per shard; probes and per-shard BBRS run
  /// against these, never against the live engines.
  std::vector<EngineSnapshot> shards;
  /// shard -> local product id -> global product id (ascending at
  /// construction; appended in arrival order afterwards).
  std::vector<std::vector<size_t>> shard_members;
  /// global product id -> owning shard / local id within it.
  std::vector<size_t> home_shard;
  std::vector<size_t> local_id;
  /// Section VI-B.1 offline store, held at the coordinator (per-shard
  /// stores would sample per-tile DSL fragments, which is wrong).
  std::shared_ptr<const std::vector<std::vector<Point>>> approx_dsls;
  size_t approx_k = 0;
  std::shared_ptr<ThreadPool> pool;

  // Derived caches, same discipline as EngineCore: mutex-guarded FIFO
  // memos keyed by query point, computed outside the lock, first insert
  // wins.
  mutable Mutex rsl_mu;
  mutable std::vector<std::pair<Point, std::vector<size_t>>> rsl_memo
      WNRS_GUARDED_BY(rsl_mu);
  mutable Mutex sr_mu;
  mutable std::vector<std::pair<Point, std::shared_ptr<const SafeRegionResult>>>
      sr_cache WNRS_GUARDED_BY(sr_mu);
  mutable Mutex approx_sr_mu;
  mutable std::vector<std::pair<Point, std::shared_ptr<const SafeRegionResult>>>
      approx_sr_cache WNRS_GUARDED_BY(approx_sr_mu);

  ShardState() = default;

  /// Copy-on-write seed: copies the state, starts with fresh caches.
  ShardState(const ShardState& other)
      : options(other.options),
        shared_relation(other.shared_relation),
        products(other.products),
        customers(other.customers),
        removed(other.removed),
        universe(other.universe),
        cost_model(other.cost_model),
        shards(other.shards),
        shard_members(other.shard_members),
        home_shard(other.home_shard),
        local_id(other.local_id),
        approx_dsls(other.approx_dsls),
        approx_k(other.approx_k),
        pool(other.pool) {}
  ShardState& operator=(const ShardState&) = delete;

  const Dataset& customer_dataset() const {
    return shared_relation ? *products : *customers;
  }

  bool HasApproxDsls() const {
    return approx_dsls != nullptr && !approx_dsls->empty();
  }

  const Point& CustomerPoint(size_t c) const {
    const Dataset& ds = customer_dataset();
    WNRS_CHECK(c < ds.points.size());
    return ds.points[c];
  }

  /// The shard-local exclusion of customer `c`'s own tuple: only the home
  /// shard holds it, and there it lives under the local id.
  std::optional<RStarTree::Id> ExcludeIn(size_t s, size_t c) const {
    if (!shared_relation) return std::nullopt;
    if (home_shard[c] != s) return std::nullopt;
    return static_cast<RStarTree::Id>(local_id[c]);
  }

  // ---- Input validation: byte-identical to EngineCore's, so the serve
  // layer's error responses do not reveal the execution layout. ----

  Status ValidatePoint(const Point& p, const char* what) const {
    if (p.dims() != products->dims) {
      return Status::InvalidArgument(
          StrFormat("%s has %zu dimensions, engine has %zu", what, p.dims(),
                    products->dims));
    }
    for (size_t i = 0; i < p.dims(); ++i) {
      if (!std::isfinite(p[i])) {
        return Status::InvalidArgument(
            StrFormat("%s has a non-finite coordinate at dimension %zu", what,
                      i));
      }
    }
    return Status::Ok();
  }

  Status ValidateQuery(const Point& q) const {
    return ValidatePoint(q, "query point");
  }

  Status ValidateCustomer(size_t c) const {
    const Dataset& ds = customer_dataset();
    if (c >= ds.points.size()) {
      return Status::OutOfRange(
          StrFormat("customer index %zu out of range (engine has %zu)", c,
                    ds.points.size()));
    }
    if (shared_relation && c < removed.size() && removed[c]) {
      return Status::NotFound(
          StrFormat("customer %zu refers to a removed product", c));
    }
    return Status::Ok();
  }

  Status ValidateApproxStore() const {
    if (!HasApproxDsls()) {
      return Status::FailedPrecondition(
          "approximated-DSL store missing; run PrecomputeApproxDsls or "
          "LoadApproxDsls first");
    }
    return Status::Ok();
  }

  // ---- Cross-shard probes. Each one is the sharded twin of an EngineCore
  // probe, proven to merge into the identical answer (DESIGN.md §15). ----

  /// W(c_pt, q) holds no product across all shards, `exclude_customer`'s
  /// own tuple excluded in its home shard. Shards whose bounds miss the
  /// window are skipped without a probe — the pruning that makes the
  /// conjunction cheaper than one big-tree probe: a spatially tight window
  /// touches few tiles, and the per-tile early exit fires sooner on the
  /// smaller trees.
  bool AllShardsWindowEmpty(const Point& c_pt, const Point& q,
                            size_t exclude_customer) const {
    const Rectangle window = WindowRect(c_pt, q);
    // Probe the tile containing c first: window witnesses concentrate
    // near c's corner of the window, so a non-empty window is usually
    // caught by the home tile and the early exit skips the rest. The
    // conjunction's value is order-independent, so this is purely a
    // probe-count heuristic.
    const size_t home = shared_relation && exclude_customer < home_shard.size()
                            ? home_shard[exclude_customer]
                            : shards.size();
    auto probe = [&](size_t s) {
      return !shards[s].universe().Intersects(window) ||
             shards[s].ProbeWindowEmpty(c_pt, q,
                                        ExcludeIn(s, exclude_customer));
    };
    if (home < shards.size() && !probe(home)) return false;
    for (size_t s = 0; s < shards.size(); ++s) {
      if (s == home) continue;
      if (!probe(s)) return false;
    }
    return true;
  }

  /// Culprit set Λ(c_pt, q) as ascending *global* ids: per-shard window
  /// queries (each ascending local, bbox-pruned), mapped through the
  /// membership tables and merged. Tiles partition the id space, so the
  /// union is duplicate-free.
  std::vector<RStarTree::Id> ShardedWindowHits(const Point& c_pt,
                                               const Point& q,
                                               size_t exclude_customer) const {
    const Rectangle window = WindowRect(c_pt, q);
    const std::vector<std::vector<RStarTree::Id>> per_shard =
        pool->ParallelMap<std::vector<RStarTree::Id>>(
            shards.size(), [&](size_t s) {
              if (!shards[s].universe().Intersects(window)) {
                return std::vector<RStarTree::Id>();
              }
              std::vector<RStarTree::Id> local = shards[s].ProbeWindowHits(
                  c_pt, q, ExcludeIn(s, exclude_customer));
              for (RStarTree::Id& id : local) {
                id = static_cast<RStarTree::Id>(
                    shard_members[s][static_cast<size_t>(id)]);
              }
              return local;
            });
    std::vector<RStarTree::Id> merged;
    for (const std::vector<RStarTree::Id>& ids : per_shard) {
      merged.insert(merged.end(), ids.begin(), ids.end());
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  }

  /// Keeps the entries of `ids` not dynamically dominated w.r.t. `origin`
  /// by another entry, ascending. skyline(A ∪ B) = skyline(skyline(A) ∪
  /// skyline(B)), and strict dominance never holds between equal points,
  /// so duplicate skyline points survive exactly as the single tree
  /// reports them.
  std::vector<RStarTree::Id> DominanceFilter(std::vector<RStarTree::Id> ids,
                                             const Point& origin) const {
    const std::vector<Point>& pts = products->points;
    std::vector<RStarTree::Id> kept;
    kept.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      const Point& a = pts[static_cast<size_t>(ids[i])];
      bool dominated = false;
      for (size_t j = 0; j < ids.size() && !dominated; ++j) {
        if (j == i) continue;
        dominated =
            DynamicallyDominates(pts[static_cast<size_t>(ids[j])], a, origin);
      }
      if (!dominated) kept.push_back(ids[i]);
    }
    std::sort(kept.begin(), kept.end());
    return kept;
  }

  /// Window skyline of (c_pt, q) in `origin`'s distance space as ascending
  /// global ids: dominance-filtered union of per-shard branch-and-bound
  /// frontiers — the form ModifyWhyNotPointFromFrontier /
  /// ModifyQueryPointFromFrontier document as equivalent to one
  /// WindowSkyline traversal.
  std::vector<RStarTree::Id> ShardedFrontier(const Point& c_pt, const Point& q,
                                             const Point& origin,
                                             size_t exclude_customer) const {
    const Rectangle window = WindowRect(c_pt, q);
    const std::vector<std::vector<RStarTree::Id>> per_shard =
        pool->ParallelMap<std::vector<RStarTree::Id>>(
            shards.size(), [&](size_t s) {
              if (!shards[s].universe().Intersects(window)) {
                return std::vector<RStarTree::Id>();
              }
              std::vector<RStarTree::Id> local = shards[s].ProbeWindowFrontier(
                  c_pt, q, origin, ExcludeIn(s, exclude_customer));
              for (RStarTree::Id& id : local) {
                id = static_cast<RStarTree::Id>(
                    shard_members[s][static_cast<size_t>(id)]);
              }
              return local;
            });
    std::vector<RStarTree::Id> merged;
    for (const std::vector<RStarTree::Id>& ids : per_shard) {
      merged.insert(merged.end(), ids.begin(), ids.end());
    }
    return DominanceFilter(std::move(merged), origin);
  }

  /// DSL(c) as ascending global ids: dominance-filtered union of per-shard
  /// BBS dynamic skylines. Satisfies the DslProviderFn contract (order
  /// immaterial, duplicates all reported).
  std::vector<RStarTree::Id> ShardedDsl(size_t c) const {
    const Point& cp = CustomerPoint(c);
    const std::vector<std::vector<RStarTree::Id>> per_shard =
        pool->ParallelMap<std::vector<RStarTree::Id>>(
            shards.size(), [&](size_t s) {
              std::vector<RStarTree::Id> local =
                  shards[s].ProbeDynamicSkyline(cp, ExcludeIn(s, c));
              for (RStarTree::Id& id : local) {
                id = static_cast<RStarTree::Id>(
                    shard_members[s][static_cast<size_t>(id)]);
              }
              return local;
            });
    std::vector<RStarTree::Id> merged;
    for (const std::vector<RStarTree::Id>& ids : per_shard) {
      merged.insert(merged.end(), ids.begin(), ids.end());
    }
    return DominanceFilter(std::move(merged), cp);
  }

  /// The strict-semantics window probe (core/strict.h) with customer `c`'s
  /// own-tuple exclusion bound in, as the conjunction over shards.
  StrictWindowEmptyFn StrictProbeFor(size_t c) const {
    return [this, c](const Point& cc, const Point& qq) {
      return AllShardsWindowEmpty(cc, qq, c);
    };
  }

  // ---- Read path. ----

  std::vector<size_t> ComputeReverseSkyline(const Point& q) const {
    if (!shared_relation) {
      // Per-shard BBRS in parallel. Customers are replicated per shard,
      // so c is a global member iff its window is empty in every shard —
      // the intersection of the (ascending) per-shard reverse skylines.
      const std::vector<std::vector<size_t>> locals =
          pool->ParallelMap<std::vector<size_t>>(
              shards.size(),
              [&](size_t s) { return shards[s].ReverseSkyline(q); });
      std::vector<size_t> acc = locals[0];
      for (size_t s = 1; s < locals.size(); ++s) {
        std::vector<size_t> next;
        std::set_intersection(acc.begin(), acc.end(), locals[s].begin(),
                              locals[s].end(), std::back_inserter(next));
        acc = std::move(next);
      }
      return acc;
    }
    // Shared relation: every reverse-skyline member is a global-skyline
    // candidate (Dellis & Seeger), and the global skyline of a union is
    // the dominance filter of the per-part global skylines. So the shards
    // run only BBRS's candidate-generation phase — no per-shard window
    // verification — the coordinator collapses the union to the exact
    // candidate set a single index would produce, and each survivor is
    // verified once with bbox-pruned emptiness probes across the shards.
    const std::vector<std::vector<RStarTree::Id>> locals =
        pool->ParallelMap<std::vector<RStarTree::Id>>(
            shards.size(), [&](size_t s) {
              return shards[s].ProbeGlobalSkylineCandidates(q, std::nullopt);
            });
    std::vector<size_t> ids;
    for (size_t s = 0; s < locals.size(); ++s) {
      for (const RStarTree::Id local : locals[s]) {
        ids.push_back(shard_members[s][static_cast<size_t>(local)]);
      }
    }
    const size_t m = ids.size();
    std::vector<Point> transformed(m);
    std::vector<std::vector<int>> signs(m);
    for (size_t i = 0; i < m; ++i) {
      const Point& p = products->points[ids[i]];
      transformed[i] = ToDistanceSpace(p, q);
      std::vector<int> sg(q.dims());
      for (size_t d = 0; d < q.dims(); ++d) {
        sg[d] = p[d] > q[d] ? 1 : (p[d] < q[d] ? -1 : 0);
      }
      signs[i] = std::move(sg);
    }
    // Membership in the filtered set is "no other candidate dominates
    // me" — order-independent, so the result is deterministic regardless
    // of shard enumeration. Coincident duplicates kill each other here,
    // which is sound: each is the other's window witness, so neither
    // could have survived verification.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < m; ++i) {
      bool dominated = false;
      for (size_t j = 0; j < m && !dominated; ++j) {
        dominated = j != i && GloballyDominates(transformed[j], signs[j],
                                                transformed[i], signs[i]);
      }
      if (!dominated) candidates.push_back(ids[i]);
    }
    const std::vector<unsigned char> keep = pool->ParallelMap<unsigned char>(
        candidates.size(), [&](size_t i) {
          const size_t c = candidates[i];
          return static_cast<unsigned char>(
              AllShardsWindowEmpty(products->points[c], q, c) ? 1 : 0);
        });
    std::vector<size_t> out;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i] != 0) out.push_back(candidates[i]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<size_t> ReverseSkyline(const Point& q) const {
    {
      MutexLock lock(rsl_mu);
      for (const auto& [key, rsl] : rsl_memo) {
        if (key == q) return rsl;
      }
    }
    std::vector<size_t> out = ComputeReverseSkyline(q);
    MutexLock lock(rsl_mu);
    for (const auto& [key, rsl] : rsl_memo) {
      if (key == q) return rsl;
    }
    if (rsl_memo.size() >= kRslCacheCapacity) {
      rsl_memo.erase(rsl_memo.begin());
    }
    rsl_memo.emplace_back(q, out);
    return out;
  }

  bool IsReverseSkylineMember(size_t c, const Point& q) const {
    return AllShardsWindowEmpty(CustomerPoint(c), q, c);
  }

  WhyNotExplanation Explain(size_t c, const Point& q) const {
    return ExplainWhyNotFromCulprits(
        products->points, ShardedWindowHits(CustomerPoint(c), q, c), q);
  }

  MwpResult ModifyWhyNotBoundary(size_t c, const Point& q) const {
    const Point& cp = CustomerPoint(c);
    if (options.engine.fast_frontier) {
      return ModifyWhyNotPointFromFrontier(
          products->points, ShardedFrontier(cp, q, /*origin=*/q, c), cp, q,
          cost_model, options.engine.sort_dim);
    }
    return ModifyWhyNotPointFromCulprits(products->points,
                                         ShardedWindowHits(cp, q, c), cp, q,
                                         cost_model, options.engine.sort_dim);
  }

  MwpResult ModifyWhyNot(size_t c, const Point& q, Semantics semantics) const {
    MwpResult out = ModifyWhyNotBoundary(c, q);
    if (semantics == Semantics::kStrict) {
      ApplyStrictMwpImpl(CustomerPoint(c), q, cost_model, universe,
                         options.engine.epsilon_fraction, StrictProbeFor(c),
                         &out);
    }
    return out;
  }

  MqpResult ModifyQuery(size_t c, const Point& q, Semantics semantics) const {
    const Point& cp = CustomerPoint(c);
    MqpResult out;
    if (options.engine.fast_frontier) {
      out = ModifyQueryPointFromFrontier(
          products->points, ShardedFrontier(cp, q, /*origin=*/cp, c), cp, q,
          cost_model, options.engine.sort_dim);
    } else {
      out = ModifyQueryPointFromCulprits(products->points,
                                         ShardedWindowHits(cp, q, c), cp, q,
                                         cost_model, options.engine.sort_dim);
    }
    if (semantics == Semantics::kStrict) {
      ApplyStrictMqpImpl(cp, q, cost_model, universe,
                         options.engine.epsilon_fraction, StrictProbeFor(c),
                         &out);
    }
    return out;
  }

  std::shared_ptr<const SafeRegionResult> SafeRegion(const Point& q) const {
    {
      MutexLock lock(sr_mu);
      for (const auto& [key, sr] : sr_cache) {
        if (key == q) return sr;
      }
    }
    SafeRegionOptions sr_options;
    sr_options.sort_dim = options.engine.sort_dim;
    sr_options.max_rectangles = options.engine.max_safe_region_rectangles;
    const std::vector<size_t> rsl = ReverseSkyline(q);
    auto computed = std::make_shared<const SafeRegionResult>(
        ComputeSafeRegionWithDsls(
            products->points, customer_dataset().points, rsl, q, universe,
            [this](size_t customer) { return ShardedDsl(customer); },
            sr_options));
    MutexLock lock(sr_mu);
    for (const auto& [key, sr] : sr_cache) {
      if (key == q) return sr;
    }
    if (sr_cache.size() >= kSrCacheCapacity) {
      sr_cache.erase(sr_cache.begin());
    }
    sr_cache.emplace_back(q, computed);
    return computed;
  }

  std::shared_ptr<const SafeRegionResult> ApproxSafeRegion(
      const Point& q) const {
    WNRS_CHECK(HasApproxDsls());
    {
      MutexLock lock(approx_sr_mu);
      for (const auto& [key, sr] : approx_sr_cache) {
        if (key == q) return sr;
      }
    }
    SafeRegionOptions sr_options;
    sr_options.sort_dim = options.engine.sort_dim;
    sr_options.max_rectangles = options.engine.max_safe_region_rectangles;
    const std::vector<size_t> rsl = ReverseSkyline(q);
    auto computed = std::make_shared<const SafeRegionResult>(
        ComputeApproxSafeRegion(customer_dataset().points, *approx_dsls, rsl,
                                q, universe, sr_options));
    MutexLock lock(approx_sr_mu);
    for (const auto& [key, sr] : approx_sr_cache) {
      if (key == q) return sr;
    }
    if (approx_sr_cache.size() >= kSrCacheCapacity) {
      approx_sr_cache.erase(approx_sr_cache.begin());
    }
    approx_sr_cache.emplace_back(q, computed);
    return computed;
  }

  KeepsMembersFn MakeKeepsMembersFn(const Point& q) const {
    std::vector<size_t> rsl = ReverseSkyline(q);
    return [this, rsl = std::move(rsl)](const Point& q_star) {
      std::atomic<bool> keeps{true};
      pool->ParallelFor(0, rsl.size(), [&](size_t i) {
        if (!keeps.load(std::memory_order_relaxed)) return;
        if (!AllShardsWindowEmpty(CustomerPoint(rsl[i]), q_star, rsl[i])) {
          keeps.store(false, std::memory_order_relaxed);
        }
      });
      return keeps.load(std::memory_order_relaxed);
    };
  }

  /// Algorithm 4's three index probes, routed across the tiles. The
  /// primitives overload of ModifyQueryAndWhyNotPoint shares the whole
  /// surrounding control flow with the tree overload, so the case split,
  /// corner generation and costing are bit-identical by construction.
  MwqPrimitives MakePrimitives(size_t c) const {
    MwqPrimitives primitives;
    primitives.window_empty = [this, c](const Point& probe_q) {
      return AllShardsWindowEmpty(CustomerPoint(c), probe_q, c);
    };
    primitives.dynamic_skyline = [this, c]() { return ShardedDsl(c); };
    primitives.modify_why_not = [this, c](const Point& probe_q) {
      return ModifyWhyNotBoundary(c, probe_q);
    };
    return primitives;
  }

  MwqResult ModifyBoth(size_t c, const Point& q, Semantics semantics) const {
    std::shared_ptr<const SafeRegionResult> sr = SafeRegion(q);
    MwqResult out = ModifyQueryAndWhyNotPoint(
        MakePrimitives(c), products->points, CustomerPoint(c), q, sr->region,
        universe, cost_model, options.engine.sort_dim, MakeKeepsMembersFn(q));
    if (semantics == Semantics::kStrict) {
      ApplyStrictMwqImpl(CustomerPoint(c), cost_model, universe,
                         options.engine.epsilon_fraction, StrictProbeFor(c),
                         &out);
    }
    return out;
  }

  MwqResult ModifyBothApprox(size_t c, const Point& q,
                             Semantics semantics) const {
    std::shared_ptr<const SafeRegionResult> sr = ApproxSafeRegion(q);
    MwqResult out = ModifyQueryAndWhyNotPoint(
        MakePrimitives(c), products->points, CustomerPoint(c), q, sr->region,
        universe, cost_model, options.engine.sort_dim, MakeKeepsMembersFn(q));
    if (semantics == Semantics::kStrict) {
      ApplyStrictMwqImpl(CustomerPoint(c), cost_model, universe,
                         options.engine.epsilon_fraction, StrictProbeFor(c),
                         &out);
    }
    return out;
  }

  std::vector<MwqResult> ModifyBothBatch(const std::vector<size_t>& whos,
                                         const Point& q, bool use_approx,
                                         Semantics semantics) const {
    // Materialize the safe region and RSL(q) once before fanning out,
    // exactly like the single engine's batch path.
    if (use_approx) {
      // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
      (void)ApproxSafeRegion(q);
    } else {
      // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
      (void)SafeRegion(q);
    }
    // wnrs-lint: allow-discard(cache prewarm; workers re-read the value)
    (void)ReverseSkyline(q);
    return pool->ParallelMap<MwqResult>(whos.size(), [&](size_t i) {
      return use_approx ? ModifyBothApprox(whos[i], q, semantics)
                        : ModifyBoth(whos[i], q, semantics);
    });
  }
};

}  // namespace internal

// ---------------------------------------------------------------------------
// ShardedSnapshot: thin const delegation onto the pinned state.
// ---------------------------------------------------------------------------

const Dataset& ShardedSnapshot::products() const { return *state_->products; }
const Dataset& ShardedSnapshot::customers() const {
  return state_->customer_dataset();
}
bool ShardedSnapshot::shared_relation() const {
  return state_->shared_relation;
}
const CostModel& ShardedSnapshot::cost_model() const {
  return state_->cost_model;
}
const Rectangle& ShardedSnapshot::universe() const { return state_->universe; }
size_t ShardedSnapshot::num_shards() const { return state_->shards.size(); }
bool ShardedSnapshot::HasApproxDsls() const { return state_->HasApproxDsls(); }
size_t ShardedSnapshot::approx_k() const { return state_->approx_k; }

bool ShardedSnapshot::IsLiveProduct(size_t id) const {
  if (id >= state_->products->points.size()) return false;
  return id >= state_->removed.size() || !state_->removed[id];
}

std::vector<size_t> ShardedSnapshot::ReverseSkyline(const Point& q) const {
  return state_->ReverseSkyline(q);
}
bool ShardedSnapshot::IsReverseSkylineMember(size_t c, const Point& q) const {
  return state_->IsReverseSkylineMember(c, q);
}
WhyNotExplanation ShardedSnapshot::Explain(size_t c, const Point& q) const {
  return state_->Explain(c, q);
}
MwpResult ShardedSnapshot::ModifyWhyNot(size_t c, const Point& q,
                                        Semantics semantics) const {
  return state_->ModifyWhyNot(c, q, semantics);
}
MqpResult ShardedSnapshot::ModifyQuery(size_t c, const Point& q,
                                       Semantics semantics) const {
  return state_->ModifyQuery(c, q, semantics);
}
std::shared_ptr<const SafeRegionResult> ShardedSnapshot::SafeRegion(
    const Point& q) const {
  return state_->SafeRegion(q);
}
std::shared_ptr<const SafeRegionResult> ShardedSnapshot::ApproxSafeRegion(
    const Point& q) const {
  return state_->ApproxSafeRegion(q);
}
MwqResult ShardedSnapshot::ModifyBoth(size_t c, const Point& q,
                                      Semantics semantics) const {
  return state_->ModifyBoth(c, q, semantics);
}
MwqResult ShardedSnapshot::ModifyBothApprox(size_t c, const Point& q,
                                            Semantics semantics) const {
  return state_->ModifyBothApprox(c, q, semantics);
}
std::vector<MwqResult> ShardedSnapshot::ModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  return state_->ModifyBothBatch(whos, q, use_approx, semantics);
}

Result<std::vector<size_t>> ShardedSnapshot::TryReverseSkyline(
    const Point& q) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  return state_->ReverseSkyline(q);
}
Result<WhyNotExplanation> ShardedSnapshot::TryExplain(size_t c,
                                                      const Point& q) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  return state_->Explain(c, q);
}
Result<MwpResult> ShardedSnapshot::TryModifyWhyNot(size_t c, const Point& q,
                                                   Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  return state_->ModifyWhyNot(c, q, semantics);
}
Result<MqpResult> ShardedSnapshot::TryModifyQuery(size_t c, const Point& q,
                                                  Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  return state_->ModifyQuery(c, q, semantics);
}
Result<std::shared_ptr<const SafeRegionResult>> ShardedSnapshot::TrySafeRegion(
    const Point& q) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  return state_->SafeRegion(q);
}
Result<std::shared_ptr<const SafeRegionResult>>
ShardedSnapshot::TryApproxSafeRegion(const Point& q) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateApproxStore());
  return state_->ApproxSafeRegion(q);
}
Result<MwqResult> ShardedSnapshot::TryModifyBoth(size_t c, const Point& q,
                                                 Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  return state_->ModifyBoth(c, q, semantics);
}
Result<MwqResult> ShardedSnapshot::TryModifyBothApprox(
    size_t c, const Point& q, Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  WNRS_RETURN_IF_ERROR(state_->ValidateApproxStore());
  return state_->ModifyBothApprox(c, q, semantics);
}
Result<std::vector<MwqResult>> ShardedSnapshot::TryModifyBothBatch(
    const std::vector<size_t>& whos, const Point& q, bool use_approx,
    Semantics semantics) const {
  WNRS_RETURN_IF_ERROR(state_->ValidateQuery(q));
  for (size_t c : whos) {
    WNRS_RETURN_IF_ERROR(state_->ValidateCustomer(c));
  }
  if (use_approx) {
    WNRS_RETURN_IF_ERROR(state_->ValidateApproxStore());
  }
  return state_->ModifyBothBatch(whos, q, use_approx, semantics);
}

// ---------------------------------------------------------------------------
// ShardedEngine: construction, state management, mutations.
// ---------------------------------------------------------------------------

ShardedEngine::ShardedEngine(Dataset data, ShardedEngineOptions options)
    : options_(std::move(options)),
      pool_(std::make_shared<ThreadPool>(options_.engine.num_threads)) {
  WNRS_CHECK(!data.points.empty());
  const size_t num_tiles = std::max<size_t>(1, options_.num_shards);
  auto state = std::make_shared<internal::ShardState>();
  state->options = options_;
  state->shared_relation = true;
  state->universe = data.Bounds();
  state->cost_model = MakeGlobalCostModel(state->universe, options_.engine);
  state->removed.assign(data.points.size(), false);
  state->home_shard.resize(data.points.size());
  state->local_id.resize(data.points.size());
  state->shard_members = StrTiles(data.dims, data.points, num_tiles);
  const WhyNotEngineOptions shard_options =
      ShardEngineOptions(options_.engine);
  for (size_t s = 0; s < state->shard_members.size(); ++s) {
    const std::vector<size_t>& members = state->shard_members[s];
    Dataset shard_data;
    shard_data.name = data.name + "/shard" + std::to_string(s);
    shard_data.dims = data.dims;
    shard_data.points.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      shard_data.points.push_back(data.points[members[i]]);
      state->home_shard[members[i]] = s;
      state->local_id[members[i]] = i;
    }
    shard_engines_.push_back(
        std::make_unique<WhyNotEngine>(std::move(shard_data), shard_options));
    state->shards.push_back(shard_engines_.back()->Snapshot());
  }
  state->products = std::make_shared<const Dataset>(std::move(data));
  state->pool = pool_;
  state_ = std::move(state);
}

ShardedEngine::ShardedEngine(Dataset products, Dataset customers,
                             ShardedEngineOptions options)
    : options_(std::move(options)),
      pool_(std::make_shared<ThreadPool>(options_.engine.num_threads)) {
  WNRS_CHECK(products.dims == customers.dims);
  WNRS_CHECK(!products.points.empty());
  WNRS_CHECK(!customers.points.empty());
  const size_t num_tiles = std::max<size_t>(1, options_.num_shards);
  auto state = std::make_shared<internal::ShardState>();
  state->options = options_;
  state->shared_relation = false;
  state->universe = products.Bounds().BoundingUnion(customers.Bounds());
  state->cost_model = MakeGlobalCostModel(state->universe, options_.engine);
  state->removed.assign(products.points.size(), false);
  state->home_shard.resize(products.points.size());
  state->local_id.resize(products.points.size());
  state->shard_members =
      StrTiles(products.dims, products.points, num_tiles);
  const WhyNotEngineOptions shard_options =
      ShardEngineOptions(options_.engine);
  for (size_t s = 0; s < state->shard_members.size(); ++s) {
    const std::vector<size_t>& members = state->shard_members[s];
    Dataset shard_data;
    shard_data.name = products.name + "/shard" + std::to_string(s);
    shard_data.dims = products.dims;
    shard_data.points.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      shard_data.points.push_back(products.points[members[i]]);
      state->home_shard[members[i]] = s;
      state->local_id[members[i]] = i;
    }
    // Each shard carries a full customer replica: the bichromatic merge
    // is an intersection of per-shard reverse skylines, which needs every
    // shard to see every customer.
    shard_engines_.push_back(std::make_unique<WhyNotEngine>(
        std::move(shard_data), customers, shard_options));
    state->shards.push_back(shard_engines_.back()->Snapshot());
  }
  state->products = std::make_shared<const Dataset>(std::move(products));
  state->customers = std::make_shared<const Dataset>(std::move(customers));
  state->pool = pool_;
  state_ = std::move(state);
}

std::shared_ptr<const internal::ShardState> ShardedEngine::CurrentState()
    const {
  ReaderLock lock(state_mu_);
  return state_;
}

void ShardedEngine::PublishState(
    std::shared_ptr<const internal::ShardState> state) {
  MutexLock lock(state_mu_);
  state_ = std::move(state);
}

const Dataset& ShardedEngine::products() const {
  return *CurrentState()->products;
}
const Dataset& ShardedEngine::customers() const {
  return CurrentState()->customer_dataset();
}
bool ShardedEngine::shared_relation() const {
  return CurrentState()->shared_relation;
}
const CostModel& ShardedEngine::cost_model() const {
  return CurrentState()->cost_model;
}
const Rectangle& ShardedEngine::universe() const {
  return CurrentState()->universe;
}
size_t ShardedEngine::num_shards() const {
  return CurrentState()->shards.size();
}

size_t ShardedEngine::RouteToShard(const internal::ShardState& state,
                                   const Point& p) const {
  const Rectangle point_rect = Rectangle::FromPoint(p);
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < state.shards.size(); ++s) {
    if (state.shards[s].universe().Contains(p)) return s;
    const double enlargement =
        state.shards[s].universe().EnlargementToInclude(point_rect);
    if (enlargement < best_enlargement) {
      best_enlargement = enlargement;
      best = s;
    }
  }
  return best;
}

size_t ShardedEngine::AddProduct(const Point& p) {
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::ShardState> cur = CurrentState();
  WNRS_CHECK(p.dims() == cur->products->dims);
  const size_t s = RouteToShard(*cur, p);
  const size_t local = shard_engines_[s]->AddProduct(p);
  WNRS_CHECK(local == cur->shard_members[s].size());
  auto new_products = std::make_shared<Dataset>(*cur->products);
  const size_t id = new_products->points.size();
  new_products->points.push_back(p);
  auto next = std::make_shared<internal::ShardState>(*cur);
  next->products = std::move(new_products);
  next->removed.resize(id + 1, false);
  next->shard_members[s].push_back(id);
  next->home_shard.push_back(s);
  next->local_id.push_back(local);
  // Only the shard that absorbed the tuple re-froze; re-pin its snapshot
  // and keep the others as they were.
  next->shards[s] = shard_engines_[s]->Snapshot();
  if (!next->universe.Contains(p)) {
    next->universe = next->universe.BoundingUnion(Rectangle::FromPoint(p));
    next->cost_model = MakeGlobalCostModel(next->universe, options_.engine);
  }
  // The approximated-DSL store is a function of the product set; drop it
  // with the snapshot, exactly like the single engine.
  next->approx_dsls.reset();
  next->approx_k = 0;
  PublishState(std::move(next));
  return id;
}

Result<size_t> ShardedEngine::TryAddProduct(const Point& p) {
  {
    std::shared_ptr<const internal::ShardState> cur = CurrentState();
    WNRS_RETURN_IF_ERROR(cur->ValidatePoint(p, "product point"));
  }
  return AddProduct(p);
}

bool ShardedEngine::RemoveProduct(size_t id) {
  return TryRemoveProduct(id).ok();
}

Status ShardedEngine::TryRemoveProduct(size_t id) {
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::ShardState> cur = CurrentState();
  if (id >= cur->products->points.size()) {
    return Status::NotFound(StrFormat("no product with id %zu", id));
  }
  if (id < cur->removed.size() && cur->removed[id]) {
    return Status::NotFound(StrFormat("product %zu was already removed", id));
  }
  const size_t s = cur->home_shard[id];
  const Status shard_status =
      shard_engines_[s]->TryRemoveProduct(cur->local_id[id]);
  WNRS_CHECK(shard_status.ok())
      << "sharded remove out of sync: " << shard_status.ToString();
  auto next = std::make_shared<internal::ShardState>(*cur);
  next->removed.resize(cur->products->points.size(), false);
  next->removed[id] = true;
  next->shards[s] = shard_engines_[s]->Snapshot();
  next->approx_dsls.reset();
  next->approx_k = 0;
  PublishState(std::move(next));
  return Status::Ok();
}

bool ShardedEngine::IsLiveProduct(size_t id) const {
  std::shared_ptr<const internal::ShardState> cur = CurrentState();
  if (id >= cur->products->points.size()) return false;
  return id >= cur->removed.size() || !cur->removed[id];
}

void ShardedEngine::PrecomputeApproxDsls(size_t k) {
  WNRS_CHECK(k >= 2);
  MutexLock mlock(mutation_mu_);
  std::shared_ptr<const internal::ShardState> cur = CurrentState();
  const Dataset& ds = cur->customer_dataset();
  auto store =
      std::make_shared<std::vector<std::vector<Point>>>(ds.points.size());
  // One cross-shard dynamic skyline per customer. The merged DSL is the
  // same point set the single engine samples from; see the header note on
  // in-store ordering for DSLs of <= k points.
  cur->pool->ParallelFor(0, ds.points.size(), [&](size_t c) {
    const std::vector<RStarTree::Id> dsl = cur->ShardedDsl(c);
    std::vector<Point> transformed;
    transformed.reserve(dsl.size());
    for (RStarTree::Id id : dsl) {
      transformed.push_back(ToDistanceSpace(
          cur->products->points[static_cast<size_t>(id)], ds.points[c]));
    }
    (*store)[c] =
        ApproximateSkyline(std::move(transformed), k, options_.engine.sort_dim);
  });
  auto next = std::make_shared<internal::ShardState>(*cur);
  next->approx_dsls = std::move(store);
  next->approx_k = k;
  PublishState(std::move(next));
}

bool ShardedEngine::HasApproxDsls() const {
  return CurrentState()->HasApproxDsls();
}

size_t ShardedEngine::approx_k() const { return CurrentState()->approx_k; }

}  // namespace shard
}  // namespace wnrs
