#include "shard/sharded_backend.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace wnrs {
namespace shard {

namespace {

/// QuerySnapshot over one pinned ShardedSnapshot: pure delegation onto
/// the snapshot's Try* layer.
class ShardedQuerySnapshot final : public serve::QuerySnapshot {
 public:
  explicit ShardedQuerySnapshot(ShardedSnapshot snapshot)
      : snapshot_(std::move(snapshot)) {}

  Result<std::vector<size_t>> TryReverseSkyline(const Point& q) const override {
    return snapshot_.TryReverseSkyline(q);
  }
  Result<WhyNotExplanation> TryExplain(size_t c, const Point& q) const override {
    return snapshot_.TryExplain(c, q);
  }
  Result<MwpResult> TryModifyWhyNot(size_t c, const Point& q,
                                    Semantics semantics) const override {
    return snapshot_.TryModifyWhyNot(c, q, semantics);
  }
  Result<MqpResult> TryModifyQuery(size_t c, const Point& q,
                                   Semantics semantics) const override {
    return snapshot_.TryModifyQuery(c, q, semantics);
  }
  Result<std::shared_ptr<const SafeRegionResult>> TrySafeRegion(
      const Point& q) const override {
    return snapshot_.TrySafeRegion(q);
  }
  Result<std::shared_ptr<const SafeRegionResult>> TryApproxSafeRegion(
      const Point& q) const override {
    return snapshot_.TryApproxSafeRegion(q);
  }
  Result<MwqResult> TryModifyBoth(size_t c, const Point& q,
                                  Semantics semantics) const override {
    return snapshot_.TryModifyBoth(c, q, semantics);
  }
  Result<MwqResult> TryModifyBothApprox(size_t c, const Point& q,
                                        Semantics semantics) const override {
    return snapshot_.TryModifyBothApprox(c, q, semantics);
  }
  Result<std::vector<MwqResult>> TryModifyBothBatch(
      const std::vector<size_t>& whos, const Point& q, bool use_approx,
      Semantics semantics) const override {
    return snapshot_.TryModifyBothBatch(whos, q, use_approx, semantics);
  }

 private:
  ShardedSnapshot snapshot_;
};

}  // namespace

ShardedBackend::ShardedBackend(const ShardedEngine* engine) : engine_(engine) {
  WNRS_CHECK(engine != nullptr);
}

std::shared_ptr<const serve::QuerySnapshot> ShardedBackend::Snapshot() const {
  return std::make_shared<ShardedQuerySnapshot>(engine_->Snapshot());
}

}  // namespace shard
}  // namespace wnrs
