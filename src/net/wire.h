#ifndef WNRS_NET_WIRE_H_
#define WNRS_NET_WIRE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wnrs {
namespace net {

/// Byte-level primitives of the wnrs wire protocol. This header (with
/// wire.cc) is the ONLY place in the repo where bytes are packed or
/// unpacked manually — everything else composes WireWriter/WireReader, a
/// rule tools/wnrs_lint.py enforces (`wire-packing`). Keeping the byte
/// order in one auditable file is what makes the frozen frame layout in
/// DESIGN.md §14 trustworthy.
///
/// All integers are little-endian on the wire, written and read with
/// shift arithmetic (endian-agnostic: the same code is correct on BE
/// hosts, no hton*/bswap needed). Doubles travel as the little-endian
/// bytes of their IEEE-754 bit pattern via std::bit_cast, so decoded
/// coordinates and costs are bit-identical to what was encoded — the
/// loopback parity test relies on exactly this.

/// Appends little-endian primitives to a growing byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }

  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }

  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  /// Length-prefixed byte string (u32 length + raw bytes).
  void Bytes(std::string_view bytes) {
    U32(static_cast<uint32_t>(bytes.size()));
    out_->append(bytes.data(), bytes.size());
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian reader over an immutable byte range.
/// Every accessor returns false instead of reading past the end, so a
/// truncated or garbage frame surfaces as a clean decode failure.
class WireReader {
 public:
  WireReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit WireReader(std::string_view bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] bool U8(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool U16(uint16_t* out) {
    if (remaining() < 2) return false;
    *out = static_cast<uint16_t>(data_[pos_]) |
           static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool U32(uint32_t* out) {
    uint16_t lo = 0;
    uint16_t hi = 0;
    if (!U16(&lo) || !U16(&hi)) return false;
    *out = static_cast<uint32_t>(lo) | static_cast<uint32_t>(hi) << 16;
    return true;
  }

  [[nodiscard]] bool U64(uint64_t* out) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *out = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return true;
  }

  [[nodiscard]] bool I32(int32_t* out) {
    uint32_t v = 0;
    if (!U32(&v)) return false;
    *out = static_cast<int32_t>(v);
    return true;
  }

  [[nodiscard]] bool I64(int64_t* out) {
    uint64_t v = 0;
    if (!U64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }

  [[nodiscard]] bool F64(double* out) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  /// Length-prefixed byte string; `max_len` bounds the declared length so
  /// a corrupt prefix cannot trigger a huge allocation.
  [[nodiscard]] bool Bytes(std::string* out, size_t max_len) {
    uint32_t n = 0;
    if (!U32(&n) || n > max_len || n > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Host/network byte-order helpers for the BSD socket API (sockaddr_in
/// wants big-endian ports). Defined here so server/client code never
/// touches htons/ntohs directly — byte order stays in this file.
inline uint16_t HostToNetU16(uint16_t v) {
  return static_cast<uint16_t>((v >> 8) | (v << 8));
}
inline uint16_t NetToHostU16(uint16_t v) { return HostToNetU16(v); }

}  // namespace net
}  // namespace wnrs

#endif  // WNRS_NET_WIRE_H_
