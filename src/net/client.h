#ifndef WNRS_NET_CLIENT_H_
#define WNRS_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/protocol.h"

namespace wnrs {
namespace net {

/// Blocking client for the wnrs binary protocol. One TCP connection;
/// requests may be pipelined (many Sends before the first Receive) and
/// responses matched by request_id — on one connection the server
/// answers in submission order.
///
/// Thread model: one thread may Send while another Receives (the load
/// generator's sender/reader pair does exactly this); concurrent Sends
/// or concurrent Receives need external serialization.
class WnrsClient {
 private:
  struct PrivateTag {
    explicit PrivateTag() = default;
  };

 public:
  static Result<std::unique_ptr<WnrsClient>> Connect(const std::string& host,
                                                     uint16_t port);

  WnrsClient(PrivateTag, int fd);
  ~WnrsClient();

  WnrsClient(const WnrsClient&) = delete;
  WnrsClient& operator=(const WnrsClient&) = delete;

  /// Encodes and writes one request frame.
  Status Send(uint64_t request_id, const serve::WhyNotRequest& request);

  /// Blocks for the next response frame. Fails with IoError when the
  /// connection closes (also after Shutdown()).
  Result<ResponseFrame> Receive();

  /// Send + Receive for the simple one-at-a-time case; fails if the
  /// echoed request_id does not match.
  Result<serve::WhyNotResponse> Call(const serve::WhyNotRequest& request);

  /// Half-closes the *write* side: the server sees EOF, flushes every
  /// response still owed to this connection, then closes — so after
  /// FinishSending a pipelining caller keeps Receiving until the final
  /// Receive fails with IoError (connection closed). Further Sends fail.
  void FinishSending();

  /// Shuts the socket down in both directions: unblocks a Receive parked
  /// in recv; further Sends fail. Idempotent; the destructor closes fully.
  void Shutdown();

 private:
  int fd_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace wnrs

#endif  // WNRS_NET_CLIENT_H_
