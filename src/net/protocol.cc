#include "net/protocol.h"

#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/wire.h"

namespace wnrs {
namespace net {

namespace {

using serve::WhyNotRequest;
using serve::WhyNotResponse;

Status DecodeError(const char* what) {
  return Status::InvalidArgument(std::string("wire decode: ") + what);
}

void WritePoint(WireWriter& w, const Point& p) {
  w.U16(static_cast<uint16_t>(p.dims()));
  for (size_t i = 0; i < p.dims(); ++i) w.F64(p[i]);
}

[[nodiscard]] bool ReadPoint(WireReader& r, Point* out) {
  uint16_t dims = 0;
  if (!r.U16(&dims) || dims > kMaxWireDims) return false;
  // Each coordinate needs 8 bytes; reject counts the buffer cannot hold
  // before allocating.
  if (r.remaining() < static_cast<size_t>(dims) * 8) return false;
  std::vector<double> coords(dims);
  for (auto& c : coords) {
    if (!r.F64(&c)) return false;
  }
  *out = Point(std::move(coords));
  return true;
}

void WriteIdList(WireWriter& w, const std::vector<RStarTree::Id>& ids) {
  w.U32(static_cast<uint32_t>(ids.size()));
  for (RStarTree::Id id : ids) w.I64(id);
}

[[nodiscard]] bool ReadIdList(WireReader& r, std::vector<RStarTree::Id>* out) {
  uint32_t count = 0;
  if (!r.U32(&count) || r.remaining() < static_cast<size_t>(count) * 8) {
    return false;
  }
  out->resize(count);
  for (auto& id : *out) {
    if (!r.I64(&id)) return false;
  }
  return true;
}

void WriteIndexList(WireWriter& w, const std::vector<size_t>& indices) {
  w.U32(static_cast<uint32_t>(indices.size()));
  for (size_t v : indices) w.U64(static_cast<uint64_t>(v));
}

[[nodiscard]] bool ReadIndexList(WireReader& r, std::vector<size_t>* out) {
  uint32_t count = 0;
  if (!r.U32(&count) || r.remaining() < static_cast<size_t>(count) * 8) {
    return false;
  }
  out->resize(count);
  for (auto& v : *out) {
    uint64_t raw = 0;
    if (!r.U64(&raw)) return false;
    v = static_cast<size_t>(raw);
  }
  return true;
}

void WriteCandidates(WireWriter& w, const std::vector<Candidate>& candidates) {
  w.U32(static_cast<uint32_t>(candidates.size()));
  for (const Candidate& c : candidates) {
    WritePoint(w, c.point);
    w.F64(c.cost);
  }
}

[[nodiscard]] bool ReadCandidates(WireReader& r,
                                  std::vector<Candidate>* out) {
  uint32_t count = 0;
  // A candidate is at least dims(u16) + cost(f64) = 10 bytes.
  if (!r.U32(&count) || r.remaining() < static_cast<size_t>(count) * 10) {
    return false;
  }
  out->resize(count);
  for (auto& c : *out) {
    if (!ReadPoint(r, &c.point) || !r.F64(&c.cost)) return false;
  }
  return true;
}

void WriteSafeRegion(WireWriter& w,
                     const std::shared_ptr<const SafeRegionResult>& sr) {
  // A held-but-null pointer (possible variant state, never produced by the
  // scheduler) round-trips via the has_region flag.
  w.U8(sr != nullptr ? 1 : 0);
  if (sr == nullptr) return;
  w.U64(static_cast<uint64_t>(sr->customers_processed));
  w.U8(sr->truncated ? 1 : 0);
  const auto& rects = sr->region.rects();
  w.U32(static_cast<uint32_t>(rects.size()));
  for (const Rectangle& rect : rects) {
    WritePoint(w, rect.lo());
    WritePoint(w, rect.hi());
  }
}

[[nodiscard]] bool ReadSafeRegion(
    WireReader& r, std::shared_ptr<const SafeRegionResult>* out) {
  uint8_t has_region = 0;
  if (!r.U8(&has_region)) return false;
  if (has_region == 0) {
    out->reset();
    return true;
  }
  if (has_region != 1) return false;
  auto sr = std::make_shared<SafeRegionResult>();
  uint64_t processed = 0;
  uint8_t truncated = 0;
  uint32_t count = 0;
  // A rectangle is at least two dims prefixes = 4 bytes.
  if (!r.U64(&processed) || !r.U8(&truncated) || !r.U32(&count) ||
      truncated > 1 || r.remaining() < static_cast<size_t>(count) * 4) {
    return false;
  }
  sr->customers_processed = static_cast<size_t>(processed);
  sr->truncated = truncated != 0;
  std::vector<Rectangle> rects;
  rects.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Point lo;
    Point hi;
    if (!ReadPoint(r, &lo) || !ReadPoint(r, &hi) || lo.dims() != hi.dims()) {
      return false;
    }
    rects.emplace_back(std::move(lo), std::move(hi));
  }
  // Safe regions never contain empty (lo > hi) rectangles, so the
  // RectRegion constructor's empty-rect filtering cannot drop anything
  // here and the round trip is exact.
  sr->region = RectRegion(std::move(rects));
  *out = std::move(sr);
  return true;
}

void WritePayload(WireWriter& w, const WhyNotResponse& response) {
  switch (response.payload_tag()) {
    case WhyNotResponse::kNoPayload:
      break;
    case WhyNotResponse::kReverseSkylinePayload:
      WriteIndexList(w, response.reverse_skyline());
      break;
    case WhyNotResponse::kExplanationPayload: {
      const WhyNotExplanation& e = response.explanation();
      w.U8(e.already_member ? 1 : 0);
      WriteIdList(w, e.culprits);
      WriteIdList(w, e.frontier);
      break;
    }
    case WhyNotResponse::kMwpPayload: {
      const MwpResult& m = response.mwp();
      w.U8(m.already_member ? 1 : 0);
      WriteIdList(w, m.culprits);
      WriteCandidates(w, m.candidates);
      break;
    }
    case WhyNotResponse::kMqpPayload: {
      const MqpResult& m = response.mqp();
      w.U8(m.already_member ? 1 : 0);
      WriteIdList(w, m.culprits);
      WriteCandidates(w, m.candidates);
      break;
    }
    case WhyNotResponse::kSafeRegionPayload:
      WriteSafeRegion(w, response.safe_region());
      break;
    case WhyNotResponse::kMwqPayload: {
      const MwqResult& m = response.mwq();
      w.U8(m.already_member ? 1 : 0);
      w.U8(m.overlap ? 1 : 0);
      WriteCandidates(w, m.query_candidates);
      WriteCandidates(w, m.why_not_candidates);
      w.F64(m.best_cost);
      break;
    }
  }
}

[[nodiscard]] bool ReadPayload(WireReader& r, uint8_t tag,
                               WhyNotResponse* response) {
  switch (tag) {
    case WhyNotResponse::kNoPayload:
      response->payload = std::monostate{};
      return true;
    case WhyNotResponse::kReverseSkylinePayload: {
      std::vector<size_t> rsl;
      if (!ReadIndexList(r, &rsl)) return false;
      response->payload = std::move(rsl);
      return true;
    }
    case WhyNotResponse::kExplanationPayload: {
      WhyNotExplanation e;
      uint8_t member = 0;
      if (!r.U8(&member) || member > 1 || !ReadIdList(r, &e.culprits) ||
          !ReadIdList(r, &e.frontier)) {
        return false;
      }
      e.already_member = member != 0;
      response->payload = std::move(e);
      return true;
    }
    case WhyNotResponse::kMwpPayload: {
      MwpResult m;
      uint8_t member = 0;
      if (!r.U8(&member) || member > 1 || !ReadIdList(r, &m.culprits) ||
          !ReadCandidates(r, &m.candidates)) {
        return false;
      }
      m.already_member = member != 0;
      response->payload = std::move(m);
      return true;
    }
    case WhyNotResponse::kMqpPayload: {
      MqpResult m;
      uint8_t member = 0;
      if (!r.U8(&member) || member > 1 || !ReadIdList(r, &m.culprits) ||
          !ReadCandidates(r, &m.candidates)) {
        return false;
      }
      m.already_member = member != 0;
      response->payload = std::move(m);
      return true;
    }
    case WhyNotResponse::kSafeRegionPayload: {
      std::shared_ptr<const SafeRegionResult> sr;
      if (!ReadSafeRegion(r, &sr)) return false;
      response->payload = std::move(sr);
      return true;
    }
    case WhyNotResponse::kMwqPayload: {
      MwqResult m;
      uint8_t member = 0;
      uint8_t overlap = 0;
      if (!r.U8(&member) || member > 1 || !r.U8(&overlap) || overlap > 1 ||
          !ReadCandidates(r, &m.query_candidates) ||
          !ReadCandidates(r, &m.why_not_candidates) || !r.F64(&m.best_cost)) {
        return false;
      }
      m.already_member = member != 0;
      m.overlap = overlap != 0;
      response->payload = std::move(m);
      return true;
    }
    default:
      return false;
  }
}

void WriteFrameHeader(WireWriter& w, FrameType type, size_t payload_len) {
  w.U32(kWireMagic);
  w.U8(kWireVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U16(0);  // reserved
  w.U32(static_cast<uint32_t>(payload_len));
}

/// Encodes the payload with `body`, then stamps the header in front.
template <typename Body>
std::string EncodeFrame(FrameType type, Body&& body) {
  std::string out;
  WireWriter w(&out);
  WriteFrameHeader(w, type, 0);
  body(w);
  const size_t payload_len = out.size() - kFrameHeaderSize;
  // Patch payload_len (last 4 header bytes) now that it is known.
  std::string patched;
  WireWriter pw(&patched);
  pw.U32(static_cast<uint32_t>(payload_len));
  out.replace(kFrameHeaderSize - 4, 4, patched);
  return out;
}

}  // namespace

std::string EncodeRequestFrame(uint64_t request_id,
                               const WhyNotRequest& request) {
  return EncodeFrame(FrameType::kRequest, [&](WireWriter& w) {
    w.U64(request_id);
    w.U8(serve::RequestKindToWire(request.kind));
    w.U8(serve::SemanticsToWire(request.semantics));
    w.U8(request.timeout.has_value() ? 1 : 0);
    w.U8(0);  // reserved
    w.I32(request.priority);
    w.U64(request.timeout.has_value()
              ? static_cast<uint64_t>(request.timeout->count())
              : 0);
    w.U64(static_cast<uint64_t>(request.c));
    WritePoint(w, request.q);
  });
}

std::string EncodeResponseFrame(uint64_t request_id,
                                const WhyNotResponse& response) {
  return EncodeFrame(FrameType::kResponse, [&](WireWriter& w) {
    w.U64(request_id);
    w.U8(serve::RequestKindToWire(response.kind));
    w.U8(serve::StatusCodeToWire(response.status.code()));
    w.U8(response.completed ? 1 : 0);
    w.U8(response.shared_batch ? 1 : 0);
    w.U8(static_cast<uint8_t>(response.payload_tag()));
    w.U64(static_cast<uint64_t>(response.queue_wait.count()));
    std::string_view message = response.status.message();
    if (message.size() > kMaxWireStringLen) {
      message = message.substr(0, kMaxWireStringLen);
    }
    w.Bytes(message);
    WritePayload(w, response);
  });
}

Result<FrameHeader> DecodeFrameHeader(const void* data, size_t len) {
  WireReader r(data, len);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  FrameHeader header;
  if (!r.U32(&magic) || !r.U8(&version) || !r.U8(&type) || !r.U16(&reserved) ||
      !r.U32(&header.payload_len)) {
    return DecodeError("short frame header");
  }
  if (magic != kWireMagic) return DecodeError("bad magic");
  if (version != kWireVersion) return DecodeError("unsupported version");
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return DecodeError("unknown frame type");
  }
  if (header.payload_len > kMaxFramePayload) {
    return DecodeError("payload length over limit");
  }
  header.type = static_cast<FrameType>(type);
  return header;
}

Result<RequestFrame> DecodeRequestPayload(std::string_view payload) {
  WireReader r(payload);
  RequestFrame frame;
  uint8_t kind = 0;
  uint8_t semantics = 0;
  uint8_t has_timeout = 0;
  uint8_t reserved = 0;
  uint64_t timeout_micros = 0;
  uint64_t c = 0;
  if (!r.U64(&frame.request_id) || !r.U8(&kind) || !r.U8(&semantics) ||
      !r.U8(&has_timeout) || !r.U8(&reserved) || !r.I32(&frame.request.priority) ||
      !r.U64(&timeout_micros) || !r.U64(&c) || !ReadPoint(r, &frame.request.q)) {
    return DecodeError("truncated request payload");
  }
  if (r.remaining() != 0) return DecodeError("trailing bytes after request");
  const auto decoded_kind = serve::RequestKindFromWire(kind);
  if (!decoded_kind.has_value()) return DecodeError("unknown request kind");
  const auto decoded_semantics = serve::SemanticsFromWire(semantics);
  if (!decoded_semantics.has_value()) return DecodeError("unknown semantics");
  if (has_timeout > 1) return DecodeError("bad timeout flag");
  frame.request.kind = *decoded_kind;
  frame.request.semantics = *decoded_semantics;
  frame.request.c = static_cast<size_t>(c);
  if (has_timeout != 0) {
    frame.request.timeout =
        std::chrono::microseconds(static_cast<int64_t>(timeout_micros));
  }
  return frame;
}

Result<ResponseFrame> DecodeResponsePayload(std::string_view payload) {
  WireReader r(payload);
  ResponseFrame frame;
  uint8_t kind = 0;
  uint8_t status_code = 0;
  uint8_t completed = 0;
  uint8_t shared_batch = 0;
  uint8_t tag = 0;
  uint64_t queue_wait_micros = 0;
  std::string message;
  if (!r.U64(&frame.request_id) || !r.U8(&kind) || !r.U8(&status_code) ||
      !r.U8(&completed) || !r.U8(&shared_batch) || !r.U8(&tag) ||
      !r.U64(&queue_wait_micros) || !r.Bytes(&message, kMaxWireStringLen)) {
    return DecodeError("truncated response payload");
  }
  const auto decoded_kind = serve::RequestKindFromWire(kind);
  if (!decoded_kind.has_value()) return DecodeError("unknown response kind");
  const auto decoded_code = serve::StatusCodeFromWire(status_code);
  if (!decoded_code.has_value()) return DecodeError("unknown status code");
  if (completed > 1 || shared_batch > 1) return DecodeError("bad bool field");
  WhyNotResponse& response = frame.response;
  response.kind = *decoded_kind;
  response.status = *decoded_code == StatusCode::kOk
                        ? Status::Ok()
                        : Status(*decoded_code, std::move(message));
  response.completed = completed != 0;
  response.shared_batch = shared_batch != 0;
  response.queue_wait =
      std::chrono::microseconds(static_cast<int64_t>(queue_wait_micros));
  if (!ReadPayload(r, tag, &response)) {
    return DecodeError("bad response payload");
  }
  if (r.remaining() != 0) return DecodeError("trailing bytes after response");
  return frame;
}

}  // namespace net
}  // namespace wnrs
