#include "net/client.h"

#include <utility>

#include "net/socket_io.h"

namespace wnrs {
namespace net {

Result<std::unique_ptr<WnrsClient>> WnrsClient::Connect(
    const std::string& host, uint16_t port) {
  auto fd = TcpConnect(host, port);
  if (!fd.ok()) return fd.status();
  return std::make_unique<WnrsClient>(PrivateTag{}, fd.value());
}

WnrsClient::WnrsClient(PrivateTag, int fd) : fd_(fd) {}

WnrsClient::~WnrsClient() { CloseFd(fd_); }

Status WnrsClient::Send(uint64_t request_id,
                        const serve::WhyNotRequest& request) {
  return SendAll(fd_, EncodeRequestFrame(request_id, request));
}

Result<ResponseFrame> WnrsClient::Receive() {
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (!frame.value().has_value()) {
    return Status::IoError("connection closed by server");
  }
  if (frame.value()->first.type != FrameType::kResponse) {
    return Status::InvalidArgument("expected a response frame");
  }
  return DecodeResponsePayload(frame.value()->second);
}

Result<serve::WhyNotResponse> WnrsClient::Call(
    const serve::WhyNotRequest& request) {
  const uint64_t id = next_request_id_++;
  WNRS_RETURN_IF_ERROR(Send(id, request));
  auto response = Receive();
  if (!response.ok()) return response.status();
  if (response.value().request_id != id) {
    return Status::Internal("response id mismatch");
  }
  return std::move(response).value().response;
}

void WnrsClient::FinishSending() { ShutdownWrite(fd_); }

void WnrsClient::Shutdown() { ShutdownFd(fd_); }

}  // namespace net
}  // namespace wnrs
