#ifndef WNRS_NET_SOCKET_IO_H_
#define WNRS_NET_SOCKET_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "net/protocol.h"

namespace wnrs {
namespace net {

/// Thin blocking-TCP helpers shared by WnrsServer and WnrsClient: plain
/// POSIX sockets, no library dependency. All functions return Status /
/// Result instead of aborting; EINTR is retried internally.

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port; read it back with LocalPort). Returns the fd.
Result<int> TcpListen(const std::string& host, uint16_t port, int backlog);

/// The locally bound port of a socket fd.
Result<uint16_t> LocalPort(int fd);

/// Connects to host:port; returns the fd.
Result<int> TcpConnect(const std::string& host, uint16_t port);

/// Writes all of `data`, looping over partial sends. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a closed peer surfaces as IoError.
Status SendAll(int fd, std::string_view data);

/// Outcome of a blocking read of an exact byte count.
enum class RecvStatus {
  kOk,    ///< All bytes read.
  kEof,   ///< Clean close before the first byte.
  kError, ///< Socket error, or close mid-object (torn read).
};

/// Reads exactly `len` bytes into `buf`.
RecvStatus RecvAll(int fd, void* buf, size_t len);

/// Reads one complete frame (header + payload). Returns nullopt on clean
/// EOF at a frame boundary; fails on torn reads and on header validation
/// errors (bad magic/version/oversized length).
Result<std::optional<std::pair<FrameHeader, std::string>>> ReadFrame(int fd);

/// shutdown(2) both directions — unblocks any thread parked in recv/send
/// on this fd (used by Stop paths); ignores errors.
void ShutdownFd(int fd);

/// shutdown(2) the read side only: a parked recv returns EOF while
/// writes still flush — how WnrsServer::Stop stops intake but still
/// delivers the responses of already-admitted requests.
void ShutdownRead(int fd);

/// shutdown(2) the write side only: the peer sees EOF but this end can
/// still recv — how a pipelining client says "no more requests" and then
/// drains every outstanding response (see WnrsClient::FinishSending).
void ShutdownWrite(int fd);

/// close(2), ignoring errors and -1.
void CloseFd(int fd);

}  // namespace net
}  // namespace wnrs

#endif  // WNRS_NET_SOCKET_IO_H_
